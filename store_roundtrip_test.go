package cloversim

import (
	"math"
	"testing"

	"cloversim/internal/store"
	"cloversim/internal/sweep"
	"cloversim/internal/workload"
)

// TestStoreRoundTripMatchesColdRun is the differential property behind
// resumable campaigns: for EVERY registered workload under EVERY
// write-allocate-evasion mode, writing a cold RunScenario result to
// the persistent store, reopening the store from disk, and reading the
// record back must reproduce the metrics bit-identically (names,
// order, and IEEE-754 bit patterns). If this holds, a warm campaign
// cannot drift from the cold one by even an ULP, which is what makes
// byte-identical emitter output possible.
func TestStoreRoundTripMatchesColdRun(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, PhysicsVersion)
	if err != nil {
		t.Fatal(err)
	}

	var scenarios []sweep.Scenario
	for _, wl := range workload.Names() {
		for _, mode := range sweep.AllModes() {
			scenarios = append(scenarios, sweep.Scenario{
				Machine:  "icx",
				Workload: wl,
				Mode:     mode,
				Ranks:    2,
				Mesh:     sweep.Mesh{X: 768, Y: 768},
				Threads:  2,
				MaxRows:  4,
				Seed:     0x5eed,
			})
		}
	}
	if len(scenarios) < 20 {
		t.Fatalf("only %d workload x mode combinations; registry shrank?", len(scenarios))
	}

	cold := make(map[string]sweep.Metrics, len(scenarios))
	for _, sc := range scenarios {
		m, err := RunScenario(sc)
		if err != nil {
			t.Fatalf("%s: cold run: %v", sc.Label(), err)
		}
		if len(m) == 0 {
			t.Fatalf("%s: cold run produced no metrics", sc.Label())
		}
		cold[sc.ID()] = m
		if err := st.Put(sc, m); err != nil {
			t.Fatalf("%s: store write: %v", sc.Label(), err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: everything below is served from the JSONL
	// segments, not process memory.
	st2, err := store.Open(dir, PhysicsVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != len(scenarios) {
		t.Fatalf("reopened store holds %d records, want %d", st2.Len(), len(scenarios))
	}
	for _, sc := range scenarios {
		want := cold[sc.ID()]
		got, ok := st2.Get(sc)
		if !ok {
			t.Errorf("%s: record missing after reopen", sc.Label())
			continue
		}
		if len(got) != len(want) {
			t.Errorf("%s: %d metrics after round trip, want %d", sc.Label(), len(got), len(want))
			continue
		}
		for i := range want {
			if got[i].Name != want[i].Name {
				t.Errorf("%s: metric %d named %q after round trip, want %q",
					sc.Label(), i, got[i].Name, want[i].Name)
			}
			gb, wb := math.Float64bits(got[i].Value), math.Float64bits(want[i].Value)
			if gb != wb {
				t.Errorf("%s: metric %s bits %#016x after round trip, want %#016x (Δ=%g)",
					sc.Label(), want[i].Name, gb, wb, got[i].Value-want[i].Value)
			}
		}
		// The stored record also reconstructs the scenario itself.
		rec, ok := st2.Lookup(sc.ID())
		if !ok || rec.Scenario != sc {
			t.Errorf("%s: scenario did not survive the key round trip: %+v", sc.Label(), rec.Scenario)
		}
	}

	// Determinism cross-check: a second cold run bit-matches the first,
	// so the property above really is "store == simulation", not
	// "store == one lucky sample".
	for _, sc := range scenarios[:4] {
		m, err := RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		want := cold[sc.ID()]
		for i := range want {
			if math.Float64bits(m[i].Value) != math.Float64bits(want[i].Value) {
				t.Errorf("%s: cold re-run not deterministic at metric %s", sc.Label(), want[i].Name)
			}
		}
	}

	// Maintenance must preserve the property: compact the store (merging
	// segments, rewriting the index sidecar) and reopen once more — this
	// open recovers through the sidecar, so every record below is read
	// lazily at its byte offset. Bits must still match the cold run.
	if _, err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := store.Open(dir, PhysicsVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if stats := st3.Stats(); stats.Sidecars != 1 || stats.Segments != 1 {
		t.Fatalf("post-compact reopen did not recover via sidecar: %s", stats)
	}
	for _, sc := range scenarios {
		want := cold[sc.ID()]
		got, ok := st3.Get(sc)
		if !ok {
			t.Errorf("%s: record missing after compact + lazy reopen", sc.Label())
			continue
		}
		if len(got) != len(want) {
			t.Errorf("%s: %d metrics after compacted round trip, want %d", sc.Label(), len(got), len(want))
			continue
		}
		for i := range want {
			if got[i].Name != want[i].Name ||
				math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
				t.Errorf("%s: metric %s drifted through compaction + lazy load", sc.Label(), want[i].Name)
			}
		}
	}
}
