// Command experiments regenerates every table and figure of the paper's
// evaluation section and writes CSV files plus terminal tables.
//
// Usage:
//
//	experiments -exp all -out results/
//	experiments -exp table1
//	experiments -exp stores -machine spr8480
//	experiments -exp scaling -full       # paper-faithful y extents (slow)
//
// Experiments: profile (Listing 2), table1 (Table I), scaling (Fig 2),
// balance (Fig 3), mpi (Fig 4), stores (Figs 5/9/10 depending on
// -machine), copyvol (Fig 6), model (Fig 7), halo (Figs 8/11).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cloversim"
	"cloversim/internal/asciiplot"
	"cloversim/internal/csvout"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all|profile|table1|scaling|balance|mpi|stores|copyvol|model|halo")
		machine = flag.String("machine", "icx", fmt.Sprintf("machine preset %v", cloversim.Machines()))
		out     = flag.String("out", "results", "output directory for CSV files")
		full    = flag.Bool("full", false, "paper-faithful y extents (much slower)")
		ranks   = flag.String("ranks", "", "comma-separated rank counts (default: all)")
		pfoff   = flag.Bool("pfoff", true, "include PF-off series in the halo experiment")
		plot    = flag.Bool("plot", false, "render ASCII charts for figure experiments")
		quiet   = flag.Bool("q", false, "suppress terminal tables")
	)
	flag.Parse()

	opts := cloversim.Options{MachineName: *machine}
	if *full {
		opts.MaxRows = -1 // negative disables truncation downstream
	}
	if *ranks != "" {
		for _, s := range strings.Split(*ranks, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad -ranks entry %q: %w", s, err))
			}
			opts.Ranks = append(opts.Ranks, n)
		}
	}

	show := func(name string, t *csvout.Table, err error) {
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		path := filepath.Join(*out, name+".csv")
		if err := t.SaveCSV(path); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("== %s -> %s\n%s\n", name, path, t.Format())
		} else {
			fmt.Printf("== %s -> %s\n", name, path)
		}
	}

	run := func(name string) {
		switch name {
		case "profile":
			p, t, err := cloversim.Listing2Profile(opts)
			show("listing2_profile", t, err)
			if err == nil && !*quiet {
				fmt.Println(p.Format(10))
			}
		case "table1":
			_, t, err := cloversim.TableI(opts)
			show("table1", t, err)
		case "scaling":
			pts, t, err := cloversim.Figure2Scaling(opts)
			show("fig2_scaling", t, err)
			if err == nil && *plot {
				var x, y, bw []float64
				for _, p := range pts {
					x = append(x, float64(p.Ranks))
					y = append(y, p.Speedup)
					bw = append(bw, p.BandwidthGBs)
				}
				fmt.Println(asciiplot.Plot{
					Title: "Fig. 2: speedup vs ranks (note the prime dips)", XLabel: "ranks",
					Series: []asciiplot.Series{{Name: "speedup", X: x, Y: y}},
				}.Render())
				fmt.Println(asciiplot.Plot{
					Title: "Fig. 2: memory bandwidth [GB/s]", XLabel: "ranks",
					Series: []asciiplot.Series{{Name: "bandwidth", X: x, Y: bw}},
				}.Render())
			}
		case "balance":
			_, t, err := cloversim.Figure3CodeBalance(opts)
			show("fig3_code_balance", t, err)
		case "mpi":
			_, t, err := cloversim.Figure4MPIShare(opts)
			show("fig4_mpi_share", t, err)
		case "stores":
			pts, t, err := cloversim.FigureStoreRatio(opts)
			show("stores_"+opts.MachineName, t, err)
			if err == nil && *plot {
				var x, st1, nt1 []float64
				for _, p := range pts {
					x = append(x, float64(p.Cores))
					st1 = append(st1, p.Normal[0])
					nt1 = append(nt1, p.NT[0])
				}
				fmt.Println(asciiplot.Plot{
					Title: "Store ratio on " + opts.MachineName, XLabel: "cores",
					Series: []asciiplot.Series{
						{Name: "ST-1", X: x, Y: st1},
						{Name: "ST-NT-1", X: x, Y: nt1},
					},
				}.Render())
			}
		case "copyvol":
			_, t, err := cloversim.Figure6CopyVolumes(opts)
			show("fig6_copy_volumes", t, err)
		case "model":
			_, t, err := cloversim.Figure7RefinedModel(opts)
			show("fig7_refined_model", t, err)
		case "halo":
			_, t, err := cloversim.FigureHaloCopy(opts, *pfoff)
			show("halo_"+opts.MachineName, t, err)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *exp == "all" {
		for _, name := range []string{"profile", "table1", "scaling", "balance", "mpi", "stores", "copyvol", "model", "halo"} {
			run(name)
		}
		// The SPR figures (9, 10, 11) on their machines.
		for _, m := range []string{"spr8470+s", "spr8480"} {
			opts.MachineName = m
			run("stores")
		}
		opts.MachineName = "spr8480"
		run("halo")
		return
	}
	run(*exp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
