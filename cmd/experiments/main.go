// Command experiments regenerates every table and figure of the paper's
// evaluation section and writes CSV files plus terminal tables. The
// full suite ("-exp all") runs the experiments concurrently on the
// sweep worker pool while keeping output and CSVs in deterministic
// order.
//
// Usage:
//
//	experiments -exp all -out results/
//	experiments -exp table1
//	experiments -exp stores -machine spr8480
//	experiments -exp scaling -full       # paper-faithful y extents (slow)
//
// Experiments: profile (Listing 2), table1 (Table I), scaling (Fig 2),
// balance (Fig 3), mpi (Fig 4), stores (Figs 5/9/10 depending on
// -machine), copyvol (Fig 6), model (Fig 7), halo (Figs 8/11).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cloversim"
	"cloversim/internal/asciiplot"
	"cloversim/internal/csvout"
	"cloversim/internal/sweep"
)

// job is one experiment invocation; the full suite is a list of these.
type job struct {
	exp     string
	machine string
}

// output is a finished experiment: the CSV base name, table and any
// extra terminal rendering (profile listing, ASCII plots), or the
// experiment's error (isolated so the rest of the suite still lands).
type output struct {
	name  string
	table *csvout.Table
	extra string
	err   error
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all|profile|table1|scaling|balance|mpi|stores|copyvol|model|halo")
		machine = flag.String("machine", "icx", fmt.Sprintf("machine preset %v", cloversim.Machines()))
		out     = flag.String("out", "results", "output directory for CSV files")
		full    = flag.Bool("full", false, "paper-faithful y extents (much slower)")
		ranks   = flag.String("ranks", "", "comma-separated rank counts (default: all)")
		pfoff   = flag.Bool("pfoff", true, "include PF-off series in the halo experiment")
		plot    = flag.Bool("plot", false, "render ASCII charts for figure experiments")
		quiet   = flag.Bool("q", false, "suppress terminal tables")
		par     = flag.Int("workers", 3, "concurrent experiments for -exp all")
	)
	flag.Parse()

	opts := cloversim.Options{MachineName: *machine}
	if *full {
		opts.MaxRows = -1 // negative disables truncation downstream
	}
	if *ranks != "" {
		for _, s := range strings.Split(*ranks, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad -ranks entry %q: %w", s, err))
			}
			opts.Ranks = append(opts.Ranks, n)
		}
	}

	jobs := []job{{*exp, *machine}}
	if *exp == "all" {
		jobs = jobs[:0]
		for _, name := range []string{"profile", "table1", "scaling", "balance", "mpi", "stores", "copyvol", "model", "halo"} {
			jobs = append(jobs, job{name, *machine})
		}
		// The SPR figures (9, 10, 11) on their machines.
		jobs = append(jobs, job{"stores", "spr8470+s"}, job{"stores", "spr8480"}, job{"halo", "spr8480"})
	}

	outs := make([]output, len(jobs))
	_ = sweep.ForEach(*par, len(jobs), func(i int) error {
		o := opts
		o.MachineName = jobs[i].machine
		res, err := runExperiment(jobs[i].exp, o, *pfoff, *plot)
		if err != nil {
			// Isolate per-experiment failures: the rest of the suite
			// still computes, saves and prints.
			res.err = fmt.Errorf("%s (machine %s): %w", jobs[i].exp, o.MachineName, err)
		}
		outs[i] = res
		return nil
	})

	failed := 0
	for _, r := range outs {
		if r.err != nil {
			failed++
			fmt.Fprintln(os.Stderr, "experiments:", r.err)
			continue
		}
		path := filepath.Join(*out, r.name+".csv")
		if err := r.table.SaveCSV(path); err != nil {
			fatal(err)
		}
		if *quiet {
			fmt.Printf("== %s -> %s\n", r.name, path)
		} else {
			fmt.Printf("== %s -> %s\n%s\n", r.name, path, r.table.Format())
		}
		// ASCII plots were asked for explicitly (-plot); print them
		// even under -q, like the pre-engine CLI did.
		if r.extra != "" && (!*quiet || *plot) {
			fmt.Println(r.extra)
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d experiments failed", failed, len(jobs)))
	}
}

// runExperiment executes one experiment and renders its extras.
func runExperiment(name string, opts cloversim.Options, pfoff, plot bool) (output, error) {
	switch name {
	case "profile":
		p, t, err := cloversim.Listing2Profile(opts)
		if err != nil {
			return output{}, err
		}
		return output{name: "listing2_profile", table: t, extra: p.Format(10)}, nil
	case "table1":
		_, t, err := cloversim.TableI(opts)
		return output{name: "table1", table: t}, err
	case "scaling":
		pts, t, err := cloversim.Figure2Scaling(opts)
		if err != nil {
			return output{}, err
		}
		o := output{name: "fig2_scaling", table: t}
		if plot {
			var x, y, bw []float64
			for _, p := range pts {
				x = append(x, float64(p.Ranks))
				y = append(y, p.Speedup)
				bw = append(bw, p.BandwidthGBs)
			}
			o.extra = asciiplot.Plot{
				Title: "Fig. 2: speedup vs ranks (note the prime dips)", XLabel: "ranks",
				Series: []asciiplot.Series{{Name: "speedup", X: x, Y: y}},
			}.Render() + "\n" + asciiplot.Plot{
				Title: "Fig. 2: memory bandwidth [GB/s]", XLabel: "ranks",
				Series: []asciiplot.Series{{Name: "bandwidth", X: x, Y: bw}},
			}.Render()
		}
		return o, nil
	case "balance":
		_, t, err := cloversim.Figure3CodeBalance(opts)
		return output{name: "fig3_code_balance", table: t}, err
	case "mpi":
		_, t, err := cloversim.Figure4MPIShare(opts)
		return output{name: "fig4_mpi_share", table: t}, err
	case "stores":
		pts, t, err := cloversim.FigureStoreRatio(opts)
		if err != nil {
			return output{}, err
		}
		o := output{name: "stores_" + opts.MachineName, table: t}
		if plot {
			var x, st1, nt1 []float64
			for _, p := range pts {
				x = append(x, float64(p.Cores))
				st1 = append(st1, p.Normal[0])
				nt1 = append(nt1, p.NT[0])
			}
			o.extra = asciiplot.Plot{
				Title: "Store ratio on " + opts.MachineName, XLabel: "cores",
				Series: []asciiplot.Series{
					{Name: "ST-1", X: x, Y: st1},
					{Name: "ST-NT-1", X: x, Y: nt1},
				},
			}.Render()
		}
		return o, nil
	case "copyvol":
		_, t, err := cloversim.Figure6CopyVolumes(opts)
		return output{name: "fig6_copy_volumes", table: t}, err
	case "model":
		_, t, err := cloversim.Figure7RefinedModel(opts)
		return output{name: "fig7_refined_model", table: t}, err
	case "halo":
		_, t, err := cloversim.FigureHaloCopy(opts, pfoff)
		return output{name: "halo_" + opts.MachineName, table: t}, err
	default:
		return output{}, fmt.Errorf("unknown experiment %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
