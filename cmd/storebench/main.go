// Command storebench runs the store-ratio microbenchmark (the
// likwid-bench store_avx512 / store_mem_avx512 analogue, Figs. 5/9/10):
// 1-3 store streams, normal or non-temporal, swept over core counts in
// parallel on the sweep engine.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloversim/internal/bench"
	"cloversim/internal/machine"
	"cloversim/internal/sweep"
)

func main() {
	var (
		mach    = flag.String("machine", "icx", fmt.Sprintf("machine preset %v", machine.Names()))
		streams = flag.Int("streams", 1, "number of store streams (1-3)")
		nt      = flag.Bool("nt", false, "non-temporal stores")
		cores   = flag.Int("cores", 0, "core count (0 = sweep all)")
		pfoff   = flag.Bool("pfoff", false, "disable hardware prefetchers")
		volume  = flag.Int64("bytes", 2<<20, "bytes stored per stream per core")
		workers = flag.Int("workers", 0, "max concurrent runs (0 = GOMAXPROCS)")
		csvPath = flag.String("csv", "", "also write the sweep as CSV to this path")
	)
	flag.Parse()

	spec, ok := machine.ByName(*mach)
	if !ok {
		fmt.Fprintf(os.Stderr, "storebench: unknown machine %q\n", *mach)
		os.Exit(1)
	}
	mode := sweep.Mode{Name: "cli", NTStores: *nt, PFOff: *pfoff}
	grid := sweep.Grid{Machines: []string{*mach}, Modes: []sweep.Mode{mode}}
	if *cores > 0 {
		grid.Threads = []int{*cores}
	} else {
		for n := 1; n <= spec.Cores(); n++ {
			grid.Threads = append(grid.Threads, n)
		}
	}

	c := sweep.NewEngine(*workers).Run(grid, func(s sweep.Scenario) (sweep.Metrics, error) {
		r, err := bench.RunStore(bench.StoreOptions{
			Machine: spec, Streams: *streams, NT: s.Mode.NTStores, Cores: s.Threads,
			BytesPerStream: *volume, PFOff: s.Mode.PFOff,
		})
		if err != nil {
			return nil, err
		}
		var m sweep.Metrics
		m.Add("stored_mb", r.Stored/1e6)
		m.Add("read_mb", r.V.Read/1e6)
		m.Add("write_mb", r.V.Write/1e6)
		m.Add("itom_mb", r.V.ItoM/1e6)
		m.Add("ratio", r.Ratio())
		return m, nil
	})
	if err := c.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "storebench:", err)
		os.Exit(1)
	}
	for _, r := range c.Results {
		stored, _ := r.Metrics.Get("stored_mb")
		read, _ := r.Metrics.Get("read_mb")
		write, _ := r.Metrics.Get("write_mb")
		itom, _ := r.Metrics.Get("itom_mb")
		ratio, _ := r.Metrics.Get("ratio")
		fmt.Printf("%3d cores: stored %.2f MB  read %.2f MB  write %.2f MB  ItoM %.2f MB  ratio %.3f\n",
			r.Scenario.Threads, stored, read, write, itom, ratio)
	}
	if *csvPath != "" {
		if err := c.Table().SaveCSV(*csvPath); err != nil {
			fmt.Fprintln(os.Stderr, "storebench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
