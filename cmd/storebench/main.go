// Command storebench runs the store-ratio microbenchmark (the
// likwid-bench store_avx512 / store_mem_avx512 analogue, Figs. 5/9/10):
// 1-3 store streams, normal or non-temporal, swept over core counts.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloversim/internal/bench"
	"cloversim/internal/machine"
)

func main() {
	var (
		mach    = flag.String("machine", "icx", fmt.Sprintf("machine preset %v", machine.Names()))
		streams = flag.Int("streams", 1, "number of store streams (1-3)")
		nt      = flag.Bool("nt", false, "non-temporal stores")
		cores   = flag.Int("cores", 0, "core count (0 = sweep all)")
		pfoff   = flag.Bool("pfoff", false, "disable hardware prefetchers")
		volume  = flag.Int64("bytes", 2<<20, "bytes stored per stream per core")
	)
	flag.Parse()

	spec, ok := machine.ByName(*mach)
	if !ok {
		fmt.Fprintf(os.Stderr, "storebench: unknown machine %q\n", *mach)
		os.Exit(1)
	}
	run := func(n int) {
		r, err := bench.RunStore(bench.StoreOptions{
			Machine: spec, Streams: *streams, NT: *nt, Cores: n,
			BytesPerStream: *volume, PFOff: *pfoff,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "storebench:", err)
			os.Exit(1)
		}
		fmt.Printf("%3d cores: stored %.2f MB  read %.2f MB  write %.2f MB  ItoM %.2f MB  ratio %.3f\n",
			n, r.Stored/1e6, r.V.Read/1e6, r.V.Write/1e6, r.V.ItoM/1e6, r.Ratio())
	}
	if *cores > 0 {
		run(*cores)
		return
	}
	for n := 1; n <= spec.Cores(); n++ {
		run(n)
	}
}
