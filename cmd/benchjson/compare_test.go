package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bm(pkg, name string, procs int, nsop float64) Benchmark {
	return Benchmark{Package: pkg, Name: name, Procs: procs, Iterations: 10,
		Metrics: map[string]float64{"ns/op": nsop}}
}

func TestCompareClassifiesDeltas(t *testing.T) {
	oldDoc := &Doc{Benchmarks: []Benchmark{
		bm("cloversim/internal/sweep", "BenchmarkEngine", 8, 1000),
		bm("cloversim/internal/sweep", "BenchmarkGone", 8, 50),
		bm("cloversim/internal/memsim", "BenchmarkRange", 8, 200),
	}}
	newDoc := &Doc{Benchmarks: []Benchmark{
		bm("cloversim/internal/sweep", "BenchmarkEngine", 8, 1190), // +19%: under threshold
		bm("cloversim/internal/memsim", "BenchmarkRange", 8, 260),  // +30%: regressed
		bm("cloversim/internal/search", "BenchmarkNew", 8, 10),     // no baseline
	}}
	var buf bytes.Buffer
	regs := Compare(oldDoc, newDoc, 0.20, &buf)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1:\n%s", len(regs), buf.String())
	}
	r := regs[0]
	if r.Key != "cloversim/internal/memsim.BenchmarkRange-8" {
		t.Errorf("regression key %q", r.Key)
	}
	if r.Old != 200 || r.New != 260 {
		t.Errorf("regression ns/op %v -> %v, want 200 -> 260", r.Old, r.New)
	}
	if r.Delta < 0.29 || r.Delta > 0.31 {
		t.Errorf("regression delta %v, want ~0.30", r.Delta)
	}
	report := buf.String()
	for _, want := range []string{"REGRESSED", "ok ", "NEW", "REMOVED", "BenchmarkGone"} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
}

// TestCompareProcsSeparate: the same benchmark at different -cpu values
// compares against its own baseline, never cross-procs.
func TestCompareProcsSeparate(t *testing.T) {
	oldDoc := &Doc{Benchmarks: []Benchmark{
		bm("p", "BenchmarkX", 1, 100),
		bm("p", "BenchmarkX", 8, 1000),
	}}
	newDoc := &Doc{Benchmarks: []Benchmark{
		bm("p", "BenchmarkX", 1, 500), // 5x slower at procs=1
		bm("p", "BenchmarkX", 8, 1000),
	}}
	regs := Compare(oldDoc, newDoc, 0.20, &bytes.Buffer{})
	if len(regs) != 1 || regs[0].Key != "p.BenchmarkX-1" {
		t.Fatalf("regressions %+v, want exactly p.BenchmarkX-1", regs)
	}
}

// TestCompareImprovementsAndZeroBaseline: speedups and a zero ns/op
// baseline (malformed but survivable) are never regressions.
func TestCompareImprovementsAndZeroBaseline(t *testing.T) {
	oldDoc := &Doc{Benchmarks: []Benchmark{
		bm("p", "BenchmarkFast", 8, 1000),
		bm("p", "BenchmarkZero", 8, 0),
	}}
	newDoc := &Doc{Benchmarks: []Benchmark{
		bm("p", "BenchmarkFast", 8, 100),
		bm("p", "BenchmarkZero", 8, 999),
	}}
	if regs := Compare(oldDoc, newDoc, 0.20, &bytes.Buffer{}); len(regs) != 0 {
		t.Fatalf("regressions %+v, want none", regs)
	}
}

// TestRunCompareExitCodes: the CLI contract — 0 clean, 1 regression,
// 2 unreadable input.
func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, d *Doc) string {
		t.Helper()
		path := filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("old.json", &Doc{Benchmarks: []Benchmark{bm("p", "BenchmarkX", 8, 100)}})
	same := write("same.json", &Doc{Benchmarks: []Benchmark{bm("p", "BenchmarkX", 8, 105)}})
	slow := write("slow.json", &Doc{Benchmarks: []Benchmark{bm("p", "BenchmarkX", 8, 200)}})
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := runCompare(base, same, 0.20, &stdout, &stderr); code != 0 {
		t.Errorf("clean compare exit %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if code := runCompare(base, slow, 0.20, &stdout, &stderr); code != 1 {
		t.Errorf("regressed compare exit %d, want 1", code)
	}
	// A generous threshold tolerates the same slowdown.
	if code := runCompare(base, slow, 1.50, &stdout, &stderr); code != 0 {
		t.Errorf("compare with 150%% threshold exit %d, want 0", code)
	}
	if code := runCompare(junk, same, 0.20, &stdout, &stderr); code != 2 {
		t.Errorf("unreadable old baseline exit %d, want 2", code)
	}
	if code := runCompare(base, filepath.Join(dir, "missing.json"), 0.20, &stdout, &stderr); code != 2 {
		t.Errorf("missing new baseline exit %d, want 2", code)
	}
}

// TestReadJSONRoundTrip: ReadJSON inverts WriteJSON including custom
// ReportMetric units.
func TestReadJSONRoundTrip(t *testing.T) {
	doc := &Doc{GoOS: "linux", GoArch: "amd64", Benchmarks: []Benchmark{
		{Package: "p", Name: "BenchmarkX", Procs: 8, Iterations: 42,
			Metrics: map[string]float64{"ns/op": 123.5, "cells/op": 24}},
	}}
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoOS != "linux" || len(got.Benchmarks) != 1 {
		t.Fatalf("round-trip lost fields: %+v", got)
	}
	if got.Benchmarks[0].Metrics["cells/op"] != 24 {
		t.Errorf("custom metric lost: %+v", got.Benchmarks[0].Metrics)
	}
}
