// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so CI can publish a machine-
// readable benchmark baseline (BENCH_sweep.json) per commit and the
// perf trajectory of the engine, the memsim range kinds and RunTraffic
// is tracked across PRs instead of eyeballed.
//
// Usage:
//
//	go test -run - -bench . ./internal/sweep | benchjson > BENCH_sweep.json
//	benchjson -compare old.json new.json [-threshold 0.20]
//
// Multiple `go test` outputs may be concatenated on stdin; the pkg
// lines partition the benchmarks. Lines that are not benchmark results
// (PASS, ok, goos/goarch headers) are ignored.
//
// -compare diffs two previously written documents on ns/op and exits 1
// when any benchmark present in both slowed by more than -threshold
// (default 0.20 = 20%), which is how CI reads the previous run's
// baseline artifact instead of merely publishing a new one.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	compare := flag.Bool("compare", false, "compare two baseline JSON files (old new) instead of converting bench output")
	threshold := flag.Float64("threshold", 0.20, "with -compare: fractional ns/op slowdown that fails the comparison (0.20 = +20%)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare wants exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout, os.Stderr))
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "benchjson: positional arguments need -compare; bench output is read from stdin")
		os.Exit(2)
	}
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	if err := doc.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
