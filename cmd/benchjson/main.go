// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so CI can publish a machine-
// readable benchmark baseline (BENCH_sweep.json) per commit and the
// perf trajectory of the engine, the memsim range kinds and RunTraffic
// is tracked across PRs instead of eyeballed.
//
// Usage:
//
//	go test -run - -bench . ./internal/sweep | benchjson > BENCH_sweep.json
//
// Multiple `go test` outputs may be concatenated on stdin; the pkg
// lines partition the benchmarks. Lines that are not benchmark results
// (PASS, ok, goos/goarch headers) are ignored.
package main

import (
	"fmt"
	"os"
)

func main() {
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	if err := doc.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
