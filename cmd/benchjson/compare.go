package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ReadJSON loads a document benchjson previously wrote — the inverse
// of WriteJSON, used by -compare to diff two baselines.
func ReadJSON(r io.Reader) (*Doc, error) {
	var d Doc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}

// benchKey identifies one benchmark across baselines: package, name and
// GOMAXPROCS all participate, so the same benchmark at different -cpu
// values compares independently.
func benchKey(b Benchmark) string {
	return fmt.Sprintf("%s.%s-%d", b.Package, b.Name, b.Procs)
}

// Regression is one benchmark whose ns/op slowed beyond the threshold.
type Regression struct {
	Key      string
	Old, New float64 // ns/op
	Delta    float64 // fractional slowdown (0.35 = +35%)
}

// Compare diffs two baselines on ns/op and writes a per-benchmark
// report to w: benchmarks present in both documents get a delta line
// (new-document order), baseline-only and new-only benchmarks are
// noted but never regressions. It returns the benchmarks that slowed
// by more than threshold (0.20 = fail at >20% slower).
func Compare(oldDoc, newDoc *Doc, threshold float64, w io.Writer) []Regression {
	oldNs := map[string]float64{}
	for _, b := range oldDoc.Benchmarks {
		oldNs[benchKey(b)] = b.Metrics["ns/op"]
	}
	fmt.Fprintf(w, "benchjson: comparing %d baseline vs %d new benchmarks (threshold +%.0f%% ns/op)\n",
		len(oldDoc.Benchmarks), len(newDoc.Benchmarks), threshold*100)
	var regressions []Regression
	matched := map[string]bool{}
	for _, b := range newDoc.Benchmarks {
		key := benchKey(b)
		newV := b.Metrics["ns/op"]
		oldV, ok := oldNs[key]
		if !ok {
			fmt.Fprintf(w, "  NEW       %-60s %14.1f ns/op (no baseline)\n", key, newV)
			continue
		}
		matched[key] = true
		delta := 0.0
		if oldV > 0 {
			delta = newV/oldV - 1
		}
		mark := "ok "
		if delta > threshold {
			mark = "REGRESSED"
			regressions = append(regressions, Regression{Key: key, Old: oldV, New: newV, Delta: delta})
		}
		fmt.Fprintf(w, "  %-9s %-60s %14.1f -> %14.1f ns/op  %+7.1f%%\n", mark, key, oldV, newV, delta*100)
	}
	var removed []string
	for _, b := range oldDoc.Benchmarks {
		if key := benchKey(b); !matched[key] {
			removed = append(removed, key)
		}
	}
	sort.Strings(removed)
	for _, key := range removed {
		fmt.Fprintf(w, "  REMOVED   %-60s (baseline only)\n", key)
	}
	if len(regressions) == 0 {
		fmt.Fprintln(w, "benchjson: no regressions beyond threshold")
	} else {
		fmt.Fprintf(w, "benchjson: %d benchmark(s) regressed beyond +%.0f%%\n", len(regressions), threshold*100)
	}
	return regressions
}

// runCompare is the -compare entrypoint: load both files, diff, exit 1
// on a regression beyond the threshold (2 on unreadable input, the
// usage contract of cmd/sweep).
func runCompare(oldPath, newPath string, threshold float64, stdout, stderr io.Writer) int {
	load := func(path string) (*Doc, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		d, err := ReadJSON(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return d, nil
	}
	oldDoc, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := load(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	if len(Compare(oldDoc, newDoc, threshold, stdout)) > 0 {
		return 1
	}
	return 0
}
