package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Doc is the JSON document: one entry per benchmark result line, in
// input order (which `go test` keeps deterministic per package), plus
// the environment headers go test prints.
type Doc struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line. Metrics maps unit -> value and always
// carries ns/op; custom b.ReportMetric units (scenarios/op, bytes/cell)
// ride alongside B/op and allocs/op.
type Benchmark struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Parse reads concatenated `go test -bench` output.
//
// A result line is "BenchmarkName[-P] <iterations> (<value> <unit>)+",
// e.g.
//
//	BenchmarkEngineThroughput/workers8-8  100  1234567 ns/op  256 scenarios/op
//
// Header lines (goos:, goarch:, pkg:, cpu:) set document/package
// context; everything else is ignored.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok, err := parseResult(line, pkg)
		if err != nil {
			return nil, err
		}
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseResult parses one candidate result line. Lines that start with
// "Benchmark" but are not results (e.g. a benchmark's own log output)
// are skipped, not errors — go test interleaves them freely.
func parseResult(line, pkg string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	// Shortest valid result: name, iterations, value, unit.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{
		Package:    pkg,
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The -P suffix is GOMAXPROCS; subtests keep it after the last dash.
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad value %q in %q", fields[i], line)
		}
		b.Metrics[fields[i+1]] = v
	}
	if _, ok := b.Metrics["ns/op"]; !ok {
		// Every go test result line carries ns/op; without it this is
		// some other Benchmark-prefixed text.
		return Benchmark{}, false, nil
	}
	return b, true, nil
}

// WriteJSON renders the document with a stable field order and indent.
func (d *Doc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
