package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cloversim/internal/sweep
cpu: Intel(R) Xeon(R) CPU
BenchmarkEngineThroughput/workers1-8         	     100	  12345678 ns/op	     256 scenarios/op	  4096 B/op	      12 allocs/op
BenchmarkEngineThroughput/workers8-8         	     400	   3456789 ns/op	     256 scenarios/op
PASS
ok  	cloversim/internal/sweep	2.345s
goos: linux
goarch: amd64
pkg: cloversim/internal/cloverleaf
BenchmarkRunTraffic/ranks1-8                 	      10	 111222333 ns/op	      22.5 bytes/cell
Benchmark log line that is not a result
PASS
ok  	cloversim/internal/cloverleaf	1.234s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GoOS != "linux" || doc.GoArch != "amd64" || doc.CPU != "Intel(R) Xeon(R) CPU" {
		t.Errorf("headers = %q/%q/%q", doc.GoOS, doc.GoArch, doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("%d benchmarks, want 3", len(doc.Benchmarks))
	}

	b := doc.Benchmarks[0]
	if b.Package != "cloversim/internal/sweep" ||
		b.Name != "BenchmarkEngineThroughput/workers1" ||
		b.Procs != 8 || b.Iterations != 100 {
		t.Errorf("first benchmark = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 12345678, "scenarios/op": 256, "B/op": 4096, "allocs/op": 12,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %s = %v, want %v", unit, got, want)
		}
	}

	traffic := doc.Benchmarks[2]
	if traffic.Package != "cloversim/internal/cloverleaf" {
		t.Errorf("pkg context not tracked across outputs: %q", traffic.Package)
	}
	if got := traffic.Metrics["bytes/cell"]; got != 22.5 {
		t.Errorf("custom metric bytes/cell = %v, want 22.5", got)
	}
}

func TestParseSkipsNonResults(t *testing.T) {
	doc, err := Parse(strings.NewReader("PASS\nok x 1s\nBenchmark something\nBenchmarkX-4 notanumber 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(doc.Benchmarks))
	}
}

func TestParseRoundTripJSON(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := doc.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"goos": "linux"`,
		`"name": "BenchmarkEngineThroughput/workers8"`,
		`"scenarios/op": 256`,
		`"bytes/cell": 22.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
}
