// Command clvleaf runs the CloverLeaf mini-app: real hydrodynamics on an
// in-process MPI world, optionally with a simulated memory-traffic
// measurement (the likwid-perfctr analogue). Flags mirror the paper's
// config.mk knobs where they affect the traffic study.
//
// Examples:
//
//	clvleaf -cells 960 -steps 87 -np 4
//	clvleaf -cells 480 -steps 20 -np 7 -measure
//	clvleaf -measure -np 72 -nt -optimize-loops
package main

import (
	"flag"
	"fmt"
	"os"

	"cloversim/internal/cloverleaf"
	"cloversim/internal/machine"
	"cloversim/internal/model"
)

func main() {
	var (
		deck     = flag.String("deck", "", "clover.in input deck (overrides -cells/-steps)")
		cells    = flag.Int("cells", 480, "grid cells per dimension (physics run)")
		steps    = flag.Int("steps", 20, "number of hydro steps (physics run)")
		np       = flag.Int("np", 1, "number of in-process MPI ranks")
		threads  = flag.Int("threads", 1, "OpenMP-style kernel threads per rank (-1 = all cores)")
		measure  = flag.Bool("measure", false, "run the memory-traffic study instead of physics")
		mach     = flag.String("machine", "icx", fmt.Sprintf("machine preset %v", machine.Names()))
		nt       = flag.Bool("nt", false, "use non-temporal store directives (NT_STORE_DIR)")
		optimize = flag.Bool("optimize-loops", false, "restructure ac01/ac05 for SpecI2M (OPTIMIZE_LOOPS)")
		noI2M    = flag.Bool("no-speci2m", false, "disable the SpecI2M feature (MSR knob)")
		unalign  = flag.Bool("unaligned", false, "skip 64-byte array alignment (ALIGN_ARRAYS=OFF)")
		maxRows  = flag.Int("max-rows", 32, "truncated y extent for the traffic study (0 = full)")
	)
	flag.Parse()

	if *measure {
		spec, ok := machine.ByName(*mach)
		if !ok {
			fatal(fmt.Errorf("unknown machine %q", *mach))
		}
		res, err := cloverleaf.RunTraffic(cloverleaf.TrafficOptions{
			Machine:       spec,
			Ranks:         *np,
			MaxRows:       *maxRows,
			AlignArrays:   !*unalign,
			NTStores:      *nt,
			OptimizeLoops: *optimize,
			SpecI2MOff:    *noI2M,
			HotspotOnly:   true,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Traffic study: %d ranks on %s (SpecI2M %v, NT %v)\n",
			*np, spec.Name, !*noI2M, *nt)
		fmt.Printf("%-6s %12s %12s %12s %10s\n", "loop", "read B/it", "write B/it", "total B/it", "paper 1c")
		for _, name := range model.HotspotLoopNames() {
			l := res.Loop(name)
			row, _ := model.Table1ByName(name)
			fmt.Printf("%-6s %12.2f %12.2f %12.2f %10.2f\n", name,
				l.ReadPerIt(res.InnerCells), l.WritePerIt(res.InnerCells),
				l.BytesPerIt(res.InnerCells), row.MeasuredSingleCore)
		}
		fmt.Printf("node volume per step: %.3f GB\n", res.BytesPerStep()/1e9)
		return
	}

	cfg := cloverleaf.Small(*cells, *steps)
	if *deck != "" {
		f, err := os.Open(*deck)
		if err != nil {
			fatal(err)
		}
		cfg, err = cloverleaf.ParseDeck(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("CloverLeaf %dx%d, %d steps, %d ranks\n", cfg.GridX, cfg.GridY, cfg.EndStep, *np)
	var (
		s   cloverleaf.Summary
		err error
	)
	if *np == 1 {
		r := cloverleaf.NewSerialRank(cfg)
		r.Chunk.SetThreads(*threads)
		s, err = r.Run()
	} else {
		s, _, err = cloverleaf.RunMPIThreaded(cfg, *np, *threads)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  volume          %.6e\n", s.Volume)
	fmt.Printf("  mass            %.6e\n", s.Mass)
	fmt.Printf("  internal energy %.6e\n", s.InternalEnergy)
	fmt.Printf("  kinetic energy  %.6e\n", s.KineticEnergy)
	fmt.Printf("  pressure        %.6e\n", s.Pressure)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clvleaf:", err)
	os.Exit(1)
}
