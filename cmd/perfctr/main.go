// Command perfctr is the likwid-perfctr analogue: it runs a registry
// microbenchmark kernel on simulated cores under a performance group and
// prints LIKWID-style event/metric tables. The SPECI2M group reproduces
// the custom group of the paper's Listing 4.
//
// Examples:
//
//	perfctr -g SPECI2M -k copy -C 17
//	perfctr -g MEM -k store_mem -C 72
//	perfctr -g MEM_DP -k stream -C 36 -d HW_PREFETCHER,CL_PREFETCHER
package main

import (
	"flag"
	"fmt"
	"os"

	"cloversim/internal/bench"
	"cloversim/internal/likwid"
	"cloversim/internal/machine"
	"cloversim/internal/memsim"
)

func main() {
	var (
		group   = flag.String("g", "MEM", "performance group: MEM | MEM_DP | SPECI2M")
		kernel  = flag.String("k", "copy", fmt.Sprintf("kernel %v", bench.KernelNames()))
		cores   = flag.Int("C", 1, "number of cores (compact pinning)")
		mach    = flag.String("machine", "icx", fmt.Sprintf("machine preset %v", machine.Names()))
		elems   = flag.Int64("elems", 256<<10, "elements per stream per core")
		disable = flag.String("d", "", "disable features (likwid-features style list)")
	)
	flag.Parse()

	spec, ok := machine.ByName(*mach)
	if !ok {
		fatal(fmt.Errorf("unknown machine %q", *mach))
	}
	g, ok := likwid.GroupByName(*group)
	if !ok {
		fatal(fmt.Errorf("unknown group %q", *group))
	}
	feats := likwid.AllOn()
	if *disable != "" {
		var err error
		feats, err = feats.Parse(*disable, false)
		if err != nil {
			fatal(err)
		}
	}

	res, err := bench.RunKernel(bench.KernelOptions{
		Machine:        spec,
		Kernel:         *kernel,
		Cores:          *cores,
		ElemsPerStream: *elems,
		PFOff:          !feats.AnyStreamerOn(),
	})
	if err != nil {
		fatal(err)
	}

	// Convert aggregate volumes back to line counts for the event view.
	counts := memsim.Counts{
		MemReadLines:  int64(res.V.Read / 64),
		MemWriteLines: int64(res.V.Write / 64),
		ItoMLines:     int64(res.V.ItoM / 64),
		NTLines:       int64(res.V.NT / 64),
	}
	// Model wall time from the machine's bandwidth curve.
	bw := 0.0
	for d := 0; d < spec.NUMADomains(); d++ {
		bw += spec.Mem.Bandwidth(spec.ActiveInDomain(*cores, d))
	}
	seconds := (res.V.Read + res.V.Write) / bw

	m := likwid.Measure(g, res.Kernel.Name, counts, int64(res.Flops), seconds)
	fmt.Print(m.Format())
	if res.WriteVolume > 0 {
		fmt.Printf("Store ratio (traffic/explicit stores): %.4f\n", res.StoreRatio())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfctr:", err)
	os.Exit(1)
}
