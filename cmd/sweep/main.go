// Command sweep runs a whole-paper experiment campaign: a declarative
// parameter grid (machine preset x workload x evasion mode x ranks x
// mesh x threads) executed in parallel on the sweep engine, with
// deterministic CSV/JSON output and an ASCII summary chart.
//
// Usage:
//
//	sweep                                  # full campaign: machines x workloads x modes
//	sweep -machines icx,spr8480 -modes nt,baseline
//	sweep -workloads cloverleaf,stream,jacobi,riemann
//	sweep -ranks 18,36,72 -threads 1,18,36
//	sweep -mesh 3840x3840,15360x15360 -out results/sweep
//
// Grid syntax: every axis flag is a comma-separated value list (or
// "all" where noted); the campaign is the full cross product of the
// axes. Unset axes use the runner default (full node, paper mesh).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"cloversim"
	"cloversim/internal/machine"
	"cloversim/internal/sweep"
	"cloversim/internal/workload"
)

func main() {
	var (
		machines  = flag.String("machines", "all", "comma-separated machine presets, or all of "+strings.Join(machine.Names(), ","))
		workloads = flag.String("workloads", "all", "comma-separated workloads, or all of "+strings.Join(workload.Names(), ","))
		modes     = flag.String("modes", "all", "comma-separated evasion modes, or all of "+strings.Join(sweep.ModeNames(), ","))
		ranks     = flag.String("ranks", "", "comma-separated rank counts (default: full node)")
		threads   = flag.String("threads", "", "comma-separated microbenchmark core counts (default: full node)")
		mesh      = flag.String("mesh", "", "comma-separated problem sizes WxH (default: 15360x15360)")
		maxRows   = flag.Int("maxrows", 0, "y-extent truncation (0 = fast default 32, -1 = paper-faithful full extent)")
		seed      = flag.Uint64("seed", 0, "deterministic PRNG seed (0 = default)")
		workers   = flag.Int("workers", 0, "max concurrent scenarios (0 = GOMAXPROCS)")
		out       = flag.String("out", "results/sweep", "output directory for campaign.csv and campaign.json")
		plot      = flag.String("plot", "store_ratio", "metric for the ASCII summary chart (empty = first metric)")
		quiet     = flag.Bool("q", false, "suppress per-scenario progress and the result table")
	)
	flag.Parse()

	grid := cloversim.CampaignGrid(*seed)
	grid.MaxRows = *maxRows
	if *machines != "all" {
		grid.Machines = splitList(*machines)
		for _, m := range grid.Machines {
			if _, ok := machine.ByName(m); !ok {
				fatal(fmt.Errorf("unknown machine %q (have %v)", m, machine.Names()))
			}
		}
	}
	if *workloads != "all" {
		grid.Workloads = splitList(*workloads)
		for _, w := range grid.Workloads {
			if _, ok := workload.ByName(w); !ok {
				fatal(fmt.Errorf("unknown workload %q (have %v)", w, workload.Names()))
			}
		}
	}
	if *modes != "all" {
		// Fresh slice: grid.Modes aliases the shared sweep.AllModes
		// backing array, which a reslice-append would corrupt.
		var picked []sweep.Mode
		for _, name := range splitList(*modes) {
			m, ok := sweep.ModeByName(name)
			if !ok {
				fatal(fmt.Errorf("unknown mode %q (have %v)", name, sweep.ModeNames()))
			}
			picked = append(picked, m)
		}
		grid.Modes = picked
	}
	var err error
	if grid.Ranks, err = intList(*ranks); err != nil {
		fatal(err)
	}
	if grid.Threads, err = intList(*threads); err != nil {
		fatal(err)
	}
	for _, s := range splitList(*mesh) {
		m, err := sweep.ParseMesh(s)
		if err != nil {
			fatal(err)
		}
		grid.Meshes = append(grid.Meshes, m)
	}

	eng := sweep.NewEngine(*workers)
	if !*quiet {
		nw := *workers
		if nw <= 0 {
			nw = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("sweep: %d scenarios (%d machines x %d workloads x %d modes), %d workers\n",
			grid.Size(), len(grid.Machines), len(grid.Workloads), len(grid.Modes), nw)
		eng.Progress = func(done, total int, r sweep.Result) {
			fmt.Println(sweep.ProgressLine(done, total, r))
		}
	}
	c := eng.Run(grid, cloversim.RunScenario)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	csvPath := filepath.Join(*out, "campaign.csv")
	if err := emitFile(csvPath, sweep.CSVEmitter{}, c); err != nil {
		fatal(err)
	}
	jsonPath := filepath.Join(*out, "campaign.json")
	if err := emitFile(jsonPath, sweep.JSONEmitter{Indent: true}, c); err != nil {
		fatal(err)
	}

	if !*quiet {
		fmt.Printf("\n%s\n", c.Table().Format())
	}
	if err := (sweep.SummaryEmitter{Metric: *plot}).Emit(os.Stdout, c); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s and %s\n", csvPath, jsonPath)
	// Error isolation means the campaign always completes and both
	// files are written — but scripts still need a failure signal.
	if err := c.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func intList(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func emitFile(path string, e sweep.Emitter, c sweep.Campaign) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := e.Emit(f, c); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
