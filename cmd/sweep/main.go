// Command sweep runs a whole-paper experiment campaign: a declarative
// parameter grid (machine preset x workload x evasion mode x ranks x
// mesh x threads) executed in parallel on the sweep engine, with
// deterministic CSV/JSON output and an ASCII summary chart.
//
// Usage:
//
//	sweep                                  # full campaign: machines x workloads x modes
//	sweep -machines icx,spr8480 -modes nt,baseline
//	sweep -workloads cloverleaf,stream,jacobi,riemann
//	sweep -ranks 18,36,72 -threads 1,18,36
//	sweep -mesh 3840x3840,15360x15360 -out results/sweep
//	sweep -store results/store             # resumable: warm scenarios skip simulation
//	sweep -workers host1:8075,host2:8075   # shard cold cells across a sweepd fleet
//
// Grid syntax: every axis flag is a comma-separated value list (or
// "all" where noted); the campaign is the full cross product of the
// axes. Unset axes use the runner default (full node, paper mesh).
//
// With -store, every simulated result is appended to a persistent
// content-addressed store and every already-stored scenario is served
// from it: re-running a campaign performs zero simulation work and
// emits byte-identical output.
//
// -workers is overloaded: an integer sizes the local worker pool,
// while a comma-separated list of sweepd URLs selects the remote
// dispatch backend — the campaign's cold cells are sharded across the
// fleet (weighted by each worker's advertised capacity, with retry on
// worker failure and straggler re-dispatch), results are merged back
// into deterministic grid order, and the output is byte-identical to
// a local run. Combined with -store, remote results are written
// through locally, so a distributed campaign is resumable exactly
// like a local one. Fleets must run the same physics version as this
// binary; mixed fleets are refused.
//
// -stream writes campaign.csv and campaign.json incrementally as
// scenarios complete instead of buffering the whole campaign: rows
// spill to disk in grid order and only out-of-order completions are
// held in memory, while the final bytes stay identical to the
// buffered default. -progress keeps a live completion counter on
// stderr (updated per scenario, including failures); it combines with
// -q for quiet-but-visible long campaigns. Under a fleet backend the
// workers stream results back per cell over NDJSON, so -progress
// advances as remote cells finish rather than per chunk.
//
// Ctrl-C (SIGINT) or SIGTERM interrupts a campaign cleanly: running
// scenarios finish and persist, unstarted ones are skipped, and the
// partial campaign is emitted before exit.
//
// Exit codes: 0 = campaign complete and durable; 1 = runtime failure
// (a scenario failed, output I/O failed, or store writes/sync failed);
// 2 = usage error; 3 = interrupted — partial results emitted and, with
// -store, persisted, so re-running the same command resumes the
// campaign.
//
// The program logic lives in internal/sweepcli, where the e2e test
// harness runs it in-process.
package main

import (
	"os"

	"cloversim/internal/sweepcli"
)

func main() {
	os.Exit(sweepcli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
