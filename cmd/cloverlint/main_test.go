package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsLintClean is the suite's own acceptance gate: the shipped
// tree must produce zero findings. If this fails, either fix the code
// or annotate it with a reasoned //lint:allow.
func TestRepoIsLintClean(t *testing.T) {
	t.Chdir("../..")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("cloverlint ./... = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, name := range []string{"mapiter", "exactbits", "ctxflow", "nondet"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownOnly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-only=bogus = %d, want 2", code)
	}
}

// TestVetHandshake checks the two go-vet tool handshakes: -V=full must
// print "<name> version <id>" and -flags must print a JSON flag list.
func TestVetHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full = %d, want 0", code)
	}
	f := strings.Fields(stdout.String())
	if len(f) < 3 || f[0] != "cloverlint" || f[1] != "version" || f[2] == "devel" {
		t.Errorf("-V=full output %q does not satisfy go vet's buildID handshake", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags = %d, want 0", code)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(stdout.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, stdout.String())
	}
}

// TestVetTool drives the full unitchecker protocol through the real
// `go vet -vettool=...`: a clean repo package passes, and a fixture
// module with an un-annotated entropy source fails with the nondet
// diagnostic.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool binary and invokes go vet")
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "cloverlint")

	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cloverlint: %v\n%s", err, out)
	}

	// A determinism-scoped repo package must vet clean.
	vet := exec.Command("go", "vet", "-vettool="+tool, "./internal/sweep")
	vet.Dir = "../.."
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool on ./internal/sweep: %v\n%s", err, out)
	}

	// A fixture module with raw time.Now in a scoped package must fail.
	mod := filepath.Join(tmp, "mod")
	dir := filepath.Join(mod, "internal", "memsim")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(mod, "go.mod"): "module cloversim\n\ngo 1.24\n",
		filepath.Join(dir, "clock.go"): "package memsim\n\nimport \"time\"\n\n" +
			"func Stamp() int64 { return time.Now().UnixNano() }\n",
	}
	for path, body := range files {
		if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	vet = exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on dirty fixture module succeeded, want failure\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now is nondeterministic") {
		t.Errorf("go vet output missing the nondet diagnostic:\n%s", out)
	}
}
