// Command cloverlint runs the repo's invariant analyzer suite
// (internal/lint): mapiter, exactbits, ctxflow, nondet.
//
// Standalone:
//
//	cloverlint [-only a,b] [packages...]     # default ./...
//
// Exit codes: 0 clean, 1 findings, 2 usage/load failure — the same
// contract as cmd/sweep.
//
// As a vet tool (the unitchecker protocol: -V=full / -flags
// handshakes, then one JSON .cfg per package):
//
//	go vet -vettool=$(which cloverlint) ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cloversim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cloverlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		vFlag     = fs.String("V", "", "print version and exit (go-tool handshake; use -V=full)")
		flagsFlag = fs.Bool("flags", false, "print analyzer flags as JSON and exit (go-vet handshake)")
		listFlag  = fs.Bool("list", false, "list analyzers and exit")
		onlyFlag  = fs.String("only", "", "comma-separated analyzer subset to run")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cloverlint [-only a,b] [packages...]\n\nanalyzers:\n")
		for _, a := range lint.All {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *vFlag != "":
		// go vet's buildID handshake wants "<name> version <id>",
		// where id changes when the tool does: hash our own binary.
		fmt.Fprintf(stdout, "cloverlint version v1.0.0-%s\n", selfHash())
		return 0
	case *flagsFlag:
		// go vet validates user vet flags against this list.
		type jf struct {
			Name  string
			Bool  bool
			Usage string
		}
		out := []jf{{Name: "only", Usage: "comma-separated analyzer subset to run"}}
		json.NewEncoder(stdout).Encode(out)
		return 0
	case *listFlag:
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *onlyFlag != "" {
		var ok bool
		if analyzers, ok = lint.ByName(strings.Split(*onlyFlag, ",")); !ok {
			fmt.Fprintf(stderr, "cloverlint: unknown analyzer in -only=%s\n", *onlyFlag)
			return 2
		}
	}

	// Unitchecker mode: a single positional argument ending in .cfg.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], analyzers, stderr)
	}

	pkgs, err := lint.Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "cloverlint: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers, lint.Names())
		if err != nil {
			fmt.Fprintf(stderr, "cloverlint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(stdout, relativize(d))
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "cloverlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// vetConfig mirrors cmd/go's per-package vet configuration (the
// unitchecker protocol input).
type vetConfig struct {
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package described by a go-vet .cfg file.
func runUnit(cfgPath string, analyzers []*lint.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "cloverlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "cloverlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// go vet expects the facts output file to exist afterwards; the
	// suite is factless, so write it empty up front.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "cloverlint: %v\n", err)
			return 2
		}
	}
	// Fact-computation-only runs cover every dependency of the vetted
	// packages (go vet cannot know the suite is factless); skip the
	// analysis entirely there.
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The invariants guard shipped code; vet also feeds us test
		// variants, whose _test.go files we skip (the standalone
		// loader never sees them at all).
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "cloverlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	imp := lint.ExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := lint.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "cloverlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkg, analyzers, lint.Names())
	if err != nil {
		fmt.Fprintf(stderr, "cloverlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, relativize(d))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relativize renders a diagnostic with the filename relative to the
// working directory when possible — shorter, clickable output.
func relativize(d lint.Diagnostic) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
	}
	return d.String()
}

// selfHash hashes the running binary for the -V=full build ID.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}
