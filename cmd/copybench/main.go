// Command copybench runs the copy microbenchmark a(:) = b(:) — either
// contiguous (Fig. 6: per-iteration read/write/SpecI2M volumes vs thread
// count) or strip-mined with a halo gap (Figs. 8/11: read/write ratio vs
// halo size for inner dimensions 216/530/1920).
package main

import (
	"flag"
	"fmt"
	"os"

	"cloversim/internal/bench"
	"cloversim/internal/machine"
)

func main() {
	var (
		mach  = flag.String("machine", "icx", fmt.Sprintf("machine preset %v", machine.Names()))
		inner = flag.Int("inner", 0, "batch length in elements (0 = contiguous)")
		halo  = flag.Int("halo", 0, "elements skipped between batches")
		cores = flag.Int("cores", 0, "core count (0 = sweep all)")
		pfoff = flag.Bool("pfoff", false, "disable hardware prefetchers")
		nt    = flag.Bool("nt", false, "non-temporal destination stores")
		elems = flag.Int64("elems", 1<<19, "elements copied per core")
	)
	flag.Parse()

	spec, ok := machine.ByName(*mach)
	if !ok {
		fmt.Fprintf(os.Stderr, "copybench: unknown machine %q\n", *mach)
		os.Exit(1)
	}
	run := func(n int) {
		r, err := bench.RunCopy(bench.CopyOptions{
			Machine: spec, Cores: n, Inner: *inner, Halo: *halo,
			Elems: *elems, NT: *nt, PFOff: *pfoff,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "copybench:", err)
			os.Exit(1)
		}
		fmt.Printf("%3d cores: read/it %.3f B  write/it %.3f B  ItoM/it %.3f B  R/W ratio %.3f\n",
			n, r.ReadPerIt(), r.WritePerIt(), r.ItoMPerIt(), r.RWRatio())
	}
	if *cores > 0 {
		run(*cores)
		return
	}
	for n := 1; n <= spec.Cores(); n++ {
		run(n)
	}
}
