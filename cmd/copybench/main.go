// Command copybench runs the copy microbenchmark a(:) = b(:) — either
// contiguous (Fig. 6: per-iteration read/write/SpecI2M volumes vs thread
// count) or strip-mined with a halo gap (Figs. 8/11: read/write ratio vs
// halo size for inner dimensions 216/530/1920) — swept over core counts
// in parallel on the sweep engine.
package main

import (
	"flag"
	"fmt"
	"os"

	"cloversim/internal/bench"
	"cloversim/internal/machine"
	"cloversim/internal/sweep"
)

func main() {
	var (
		mach    = flag.String("machine", "icx", fmt.Sprintf("machine preset %v", machine.Names()))
		inner   = flag.Int("inner", 0, "batch length in elements (0 = contiguous)")
		halo    = flag.Int("halo", 0, "elements skipped between batches")
		cores   = flag.Int("cores", 0, "core count (0 = sweep all)")
		pfoff   = flag.Bool("pfoff", false, "disable hardware prefetchers")
		nt      = flag.Bool("nt", false, "non-temporal destination stores")
		elems   = flag.Int64("elems", 1<<19, "elements copied per core")
		workers = flag.Int("workers", 0, "max concurrent runs (0 = GOMAXPROCS)")
		csvPath = flag.String("csv", "", "also write the sweep as CSV to this path")
	)
	flag.Parse()

	spec, ok := machine.ByName(*mach)
	if !ok {
		fmt.Fprintf(os.Stderr, "copybench: unknown machine %q\n", *mach)
		os.Exit(1)
	}
	mode := sweep.Mode{Name: "cli", NTStores: *nt, PFOff: *pfoff}
	grid := sweep.Grid{Machines: []string{*mach}, Modes: []sweep.Mode{mode}}
	if *cores > 0 {
		grid.Threads = []int{*cores}
	} else {
		for n := 1; n <= spec.Cores(); n++ {
			grid.Threads = append(grid.Threads, n)
		}
	}

	c := sweep.NewEngine(*workers).Run(grid, func(s sweep.Scenario) (sweep.Metrics, error) {
		r, err := bench.RunCopy(bench.CopyOptions{
			Machine: spec, Cores: s.Threads, Inner: *inner, Halo: *halo,
			Elems: *elems, NT: s.Mode.NTStores, PFOff: s.Mode.PFOff,
		})
		if err != nil {
			return nil, err
		}
		var m sweep.Metrics
		m.Add("read_bpi", r.ReadPerIt())
		m.Add("write_bpi", r.WritePerIt())
		m.Add("itom_bpi", r.ItoMPerIt())
		m.Add("rw_ratio", r.RWRatio())
		return m, nil
	})
	if err := c.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "copybench:", err)
		os.Exit(1)
	}
	for _, r := range c.Results {
		read, _ := r.Metrics.Get("read_bpi")
		write, _ := r.Metrics.Get("write_bpi")
		itom, _ := r.Metrics.Get("itom_bpi")
		ratio, _ := r.Metrics.Get("rw_ratio")
		fmt.Printf("%3d cores: read/it %.3f B  write/it %.3f B  ItoM/it %.3f B  R/W ratio %.3f\n",
			r.Scenario.Threads, read, write, itom, ratio)
	}
	if *csvPath != "" {
		if err := c.Table().SaveCSV(*csvPath); err != nil {
			fmt.Fprintln(os.Stderr, "copybench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
