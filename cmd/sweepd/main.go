// Command sweepd serves a persistent campaign result store over HTTP:
// many clients can list stored scenarios, fetch results by config
// hash, and trigger grid expansions whose cold cells are simulated on
// a bounded worker pool and written through to the store.
//
// Usage:
//
//	sweepd -store results/store            # serve on :8075
//	sweepd -store results/store -addr :9000 -workers 8
//
// Endpoints (see internal/sweepd for the JSON shapes):
//
//	GET  /v1/healthz
//	GET  /v1/scenarios
//	GET  /v1/results/{id}
//	POST /v1/expand
//
// The store directory is shared with cmd/sweep -store: campaigns run
// offline become servable immediately, and expansions triggered over
// HTTP warm the store for later CLI runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloversim"
	"cloversim/internal/store"
	"cloversim/internal/sweepd"
)

func main() {
	var (
		storeDir = flag.String("store", "", "persistent result store directory (required)")
		addr     = flag.String("addr", ":8075", "HTTP listen address")
		workers  = flag.Int("workers", 0, "max concurrent cold-cell simulations across all requests (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *storeDir == "" {
		fatal(errors.New("-store is required"))
	}

	st, err := store.Open(*storeDir, cloversim.PhysicsVersion)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweepd: store %s: %s (physics %s)\n", *storeDir, st.Stats(), st.Physics())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           sweepd.New(st, cloversim.RunScenario, *workers).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		fmt.Fprintf(os.Stderr, "sweepd: listening on %s\n", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Fprintln(os.Stderr, "sweepd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
	}
	if err := st.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepd:", err)
	os.Exit(1)
}
