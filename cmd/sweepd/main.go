// Command sweepd serves a persistent campaign result store over HTTP:
// many clients can list stored scenarios, fetch results by config
// hash, and trigger grid expansions whose cold cells are simulated on
// a bounded worker pool and written through to the store.
//
// Usage:
//
//	sweepd -store results/store            # serve on :8075
//	sweepd -store results/store -addr :9000 -workers 8
//	sweepd -store results/store -expand-timeout 2m
//
// Endpoints (see internal/sweepd for the JSON shapes):
//
//	GET  /v1/healthz
//	GET  /v1/scenarios
//	GET  /v1/results/{id}
//	POST /v1/expand
//	GET  /v1/sync
//	POST /v1/admin/compact
//
// Daemons replicate from each other: -sync-from points at peer
// sweepd base URLs and this daemon pulls their missing records every
// -sync-every via GET /v1/sync, converging to the peers' result sets
// with no shared filesystem. Mixed-physics peers are refused on both
// ends. POST /v1/admin/compact merges the store's segments into one
// deduplicated, index-sidecar'd segment while the daemon runs.
//
// Expand requests are cancellation-correct: a client that disconnects
// mid-expand stops the server scheduling that grid's remaining cold
// cells and releases its simulation slots immediately, and
// -expand-timeout (0 = off) bounds each request server-side.
//
// The daemon is also a fleet worker: POST /v1/expand accepts an
// explicit scenario-key list (cells this store has never seen), and
// /v1/healthz advertises the simulation capacity (-workers), in-flight
// expand count, per-request cell cap (-max-cells) and physics version
// that cmd/sweep's dispatch backend shards by. Point cmd/sweep
// -workers at a set of sweepd addresses to run distributed campaigns.
//
// Expand responses stream on request: "Accept: application/x-ndjson"
// switches POST /v1/expand to NDJSON frames emitting each cell's
// result the moment it finalizes, with a terminal summary line
// carrying the completion and durability status that the buffered
// mode reports in headers.
//
// Shutdown is graceful: on SIGINT/SIGTERM the daemon stops accepting
// connections, drains in-flight requests (up to -drain-timeout), then
// cancels whatever is still simulating, and finally syncs and closes
// the store so every completed result is durable. A second signal
// skips the drain and aborts in-flight expands at once.
//
// The store directory is shared with cmd/sweep -store: campaigns run
// offline become servable immediately, and expansions triggered over
// HTTP warm the store for later CLI runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cloversim"
	"cloversim/internal/memsim"
	"cloversim/internal/store"
	"cloversim/internal/sweepd"
)

func main() {
	var (
		storeDir      = flag.String("store", "", "persistent result store directory (required)")
		addr          = flag.String("addr", ":8075", "HTTP listen address")
		workers       = flag.Int("workers", 0, "max concurrent cold-cell simulations across all requests (0 = GOMAXPROCS)")
		expandTimeout = flag.Duration("expand-timeout", 0, "per-request deadline for POST /v1/expand (0 = no server-side deadline)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests before aborting them")
		maxCells      = flag.Int("max-cells", sweepd.DefaultMaxCells, "largest cell count one POST /v1/expand may carry; advertised in /v1/healthz so dispatchers clamp chunk sizes")
		analytic      = flag.String("analytic", "auto", "memsim analytic fast path: auto, off or force — all three simulate identical physics, so workers with different settings still produce store-compatible results")
		syncFrom      = flag.String("sync-from", "", "comma-separated peer sweepd base URLs to replicate from via GET /v1/sync (converges this store to the peers' result sets)")
		syncEvery     = flag.Duration("sync-every", 30*time.Second, "interval between replication pulls when -sync-from is set")
	)
	flag.Parse()
	if *storeDir == "" {
		fatal(errors.New("-store is required"))
	}
	amode, err := memsim.ParseAnalyticMode(*analytic)
	if err != nil {
		fatal(err)
	}
	memsim.DefaultAnalytic = amode

	st, err := store.Open(*storeDir, cloversim.PhysicsVersion)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweepd: store %s: %s (physics %s)\n", *storeDir, st.Stats(), st.Physics())

	server := sweepd.New(st, cloversim.RunScenarioContext, *workers)
	server.ExpandTimeout = *expandTimeout
	server.MaxCells = *maxCells

	// Every request context descends from baseCtx, so cancelling it
	// aborts in-flight expands: their engines stop scheduling cold
	// cells and the handlers return with partial campaigns. The
	// replication pullers share it, so shutdown stops them too before
	// the store closes.
	baseCtx, abortInflight := context.WithCancel(context.Background())
	defer abortInflight()
	if *syncFrom != "" {
		for _, peer := range strings.Split(*syncFrom, ",") {
			peer = strings.TrimSpace(peer)
			if peer == "" {
				continue
			}
			client := sweepd.NewClient(peer)
			client.Physics = st.Physics() // refuse mixed-physics peers
			p := &sweepd.Puller{Client: client, Store: st}
			fmt.Fprintf(os.Stderr, "sweepd: replicating from %s every %s\n", client.BaseURL, *syncEvery)
			go p.Run(baseCtx, *syncEvery)
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	go func() {
		fmt.Fprintf(os.Stderr, "sweepd: listening on %s\n", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Fprintln(os.Stderr, "sweepd: shutting down: draining in-flight requests (signal again to abort them)")
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "sweepd: aborting in-flight expands")
		abortInflight()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// The drain window closed with requests still running: cancel
		// their contexts so the engines stop scheduling, then force the
		// connections closed. Completed cells are already in the store.
		fmt.Fprintf(os.Stderr, "sweepd: drain incomplete (%v); aborting in-flight expands\n", err)
		abortInflight()
		srv.Close()
	}
	// Shutdown drained (or we gave up): make everything that finished
	// durable. Close syncs the active segment before closing it.
	if err := st.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "sweepd: store synced and closed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepd:", err)
	os.Exit(1)
}
