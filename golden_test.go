package cloversim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cloversim/internal/machine"
	"cloversim/internal/sweep"
)

// updateGolden regenerates the golden-campaign fixtures:
//
//	go test -run TestGoldenCampaign -update-golden .
//
// Review the diff before committing — a changed fixture means the
// simulated physics changed.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_campaign.{csv,json}")

// goldenGrid is the canonical regression campaign: 2 machines x 3
// evasion modes x 2 workloads on a reduced mesh. Small enough to run in
// every CI pass, broad enough that a change to the memsim hierarchy,
// the store engine, the traffic generators, the time model or the
// emitters shows up as a byte diff.
func goldenGrid() sweep.Grid {
	baseline, _ := sweep.ModeByName("baseline")
	i2mOff, _ := sweep.ModeByName("speci2m-off")
	nt, _ := sweep.ModeByName("nt")
	return sweep.Grid{
		Machines:  []string{machine.NameICX8360Y, machine.NameSPR8480},
		Workloads: []string{"cloverleaf", "jacobi"},
		Modes:     []sweep.Mode{baseline, i2mOff, nt},
		Ranks:     []int{4},
		Threads:   []int{8},
		Meshes:    []sweep.Mesh{{X: 1536, Y: 1536}},
		MaxRows:   8,
		Seed:      0x5eed,
	}
}

// runGolden executes the canonical campaign and renders both emitters.
func runGolden(t *testing.T) (csv, json []byte) {
	t.Helper()
	c := sweep.NewEngine(0).Run(goldenGrid(), RunScenario)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if err := (sweep.CSVEmitter{}).Emit(&cb, c); err != nil {
		t.Fatal(err)
	}
	if err := (sweep.JSONEmitter{Indent: true}).Emit(&jb, c); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// TestGoldenCampaign re-runs the checked-in canonical campaign and
// byte-compares its CSV and JSON output against testdata/ fixtures, so
// performance work on the simulation hot paths cannot silently change
// the physics. On a mismatch, inspect the diff; if the change is an
// intended model change, regenerate with -update-golden.
func TestGoldenCampaign(t *testing.T) {
	csvPath := filepath.Join("testdata", "golden_campaign.csv")
	jsonPath := filepath.Join("testdata", "golden_campaign.json")
	csv, json := runGolden(t)

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(csvPath, csv, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, json, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s and %s", csvPath, jsonPath)
		return
	}

	wantCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create the fixture)", err)
	}
	wantJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Errorf("campaign CSV deviates from golden fixture %s.\nThe simulated physics changed — if intended, regenerate with -update-golden.\ngot:\n%s\nwant:\n%s",
			csvPath, csv, wantCSV)
	}
	if !bytes.Equal(json, wantJSON) {
		t.Errorf("campaign JSON deviates from golden fixture %s (run with -update-golden if the change is intended)", jsonPath)
	}
}
