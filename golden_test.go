package cloversim

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cloversim/internal/machine"
	"cloversim/internal/memsim"
	"cloversim/internal/sweep"
)

// updateGolden regenerates the golden-campaign fixtures:
//
//	go test -run TestGoldenCampaign -update-golden .
//
// Review the diff before committing — a changed fixture means the
// simulated physics changed.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_campaign.{csv,json}")

// goldenGrid is the canonical regression campaign: 2 machines x 3
// evasion modes x 2 workloads on a reduced mesh. Small enough to run in
// every CI pass, broad enough that a change to the memsim hierarchy,
// the store engine, the traffic generators, the time model or the
// emitters shows up as a byte diff.
func goldenGrid() sweep.Grid {
	baseline, _ := sweep.ModeByName("baseline")
	i2mOff, _ := sweep.ModeByName("speci2m-off")
	nt, _ := sweep.ModeByName("nt")
	return sweep.Grid{
		Machines:  []string{machine.NameICX8360Y, machine.NameSPR8480},
		Workloads: []string{"cloverleaf", "jacobi"},
		Modes:     []sweep.Mode{baseline, i2mOff, nt},
		Ranks:     []int{4},
		Threads:   []int{8},
		Meshes:    []sweep.Mesh{{X: 1536, Y: 1536}},
		MaxRows:   8,
		Seed:      0x5eed,
	}
}

// runGolden executes the canonical campaign and renders both emitters.
func runGolden(t *testing.T) (csv, json []byte) {
	t.Helper()
	c := sweep.NewEngine(0).Run(goldenGrid(), RunScenario)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if err := (sweep.CSVEmitter{}).Emit(&cb, c); err != nil {
		t.Fatal(err)
	}
	if err := (sweep.JSONEmitter{Indent: true}).Emit(&jb, c); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// runGoldenAnalytic is runGolden with the memsim analytic tier pinned
// to one mode for the whole campaign. The mode is deliberately NOT part
// of the scenario config (it must never change a scenario's store key:
// both paths simulate identical physics), so it is pinned through the
// process-wide default that Hierarchy construction reads.
func runGoldenAnalytic(t *testing.T, mode memsim.AnalyticMode) (csv, json []byte) {
	t.Helper()
	prev := memsim.DefaultAnalytic
	memsim.DefaultAnalytic = mode
	defer func() { memsim.DefaultAnalytic = prev }()
	return runGolden(t)
}

// TestGoldenCampaign re-runs the checked-in canonical campaign and
// byte-compares its CSV and JSON output against testdata/ fixtures, so
// performance work on the simulation hot paths cannot silently change
// the physics. On a mismatch, inspect the diff; if the change is an
// intended model change, regenerate with -update-golden.
func TestGoldenCampaign(t *testing.T) {
	csvPath := filepath.Join("testdata", "golden_campaign.csv")
	jsonPath := filepath.Join("testdata", "golden_campaign.json")
	versionPath := filepath.Join("testdata", "physics_version")
	csv, json := runGolden(t)

	if *updateGolden {
		// Refuse to rewrite fixtures while the analytic and simulated
		// memsim paths disagree: a fixture captured from a diverged
		// fast path would launder the divergence into "expected"
		// physics. Fix the divergence (the differential suites in
		// internal/memsim localize it) before regenerating.
		onCSV, onJSON := runGoldenAnalytic(t, memsim.AnalyticForce)
		offCSV, offJSON := runGoldenAnalytic(t, memsim.AnalyticOff)
		if !bytes.Equal(onCSV, offCSV) || !bytes.Equal(onJSON, offJSON) {
			t.Fatalf("refusing -update-golden: analytic forced-on and forced-off campaigns diverge; " +
				"fix the memsim analytic tier (see TestAnalyticDifferential) before regenerating fixtures")
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		// A fixture rewrite that changes simulated bytes under an
		// unchanged PhysicsVersion would let the persistent store serve
		// results from the old physics as if they were current — flag it
		// loudly so the author bumps the constant in the same change.
		oldCSV, csvErr := os.ReadFile(csvPath)
		oldVersion, verErr := os.ReadFile(versionPath)
		if csvErr == nil && verErr == nil && !bytes.Equal(oldCSV, csv) &&
			string(bytes.TrimSpace(oldVersion)) == PhysicsVersion {
			// Stderr, not t.Logf: the warning must be visible on a
			// passing -update-golden run without -v.
			fmt.Fprintf(os.Stderr, "WARNING: golden fixtures changed but PhysicsVersion is still %q — "+
				"if this rewrite reflects a physics/model change, bump PhysicsVersion "+
				"in scenario.go so stale store records are invalidated\n", PhysicsVersion)
		}
		if err := os.WriteFile(csvPath, csv, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, json, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(versionPath, []byte(PhysicsVersion+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s, %s and %s", csvPath, jsonPath, versionPath)
		return
	}

	wantCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create the fixture)", err)
	}
	wantJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Errorf("campaign CSV deviates from golden fixture %s.\nThe simulated physics changed — if intended, regenerate with -update-golden.\ngot:\n%s\nwant:\n%s",
			csvPath, csv, wantCSV)
	}
	if !bytes.Equal(json, wantJSON) {
		t.Errorf("campaign JSON deviates from golden fixture %s (run with -update-golden if the change is intended)", jsonPath)
	}
}

// TestGoldenCampaignAnalyticBothWays re-runs the canonical campaign
// with the memsim analytic tier forced on and forced off and requires
// both to reproduce the committed fixtures byte for byte. Together with
// the default-mode run in TestGoldenCampaign this pins all three knob
// positions to one set of physics: the analytic tier is an optimization
// that must never be observable in campaign output.
func TestGoldenCampaignAnalyticBothWays(t *testing.T) {
	wantCSV, err := os.ReadFile(filepath.Join("testdata", "golden_campaign.csv"))
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create the fixture)", err)
	}
	wantJSON, err := os.ReadFile(filepath.Join("testdata", "golden_campaign.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []memsim.AnalyticMode{memsim.AnalyticForce, memsim.AnalyticOff} {
		csv, json := runGoldenAnalytic(t, mode)
		if !bytes.Equal(csv, wantCSV) {
			t.Errorf("analytic %v: campaign CSV deviates from golden fixture — the analytic and simulated paths disagree", mode)
		}
		if !bytes.Equal(json, wantJSON) {
			t.Errorf("analytic %v: campaign JSON deviates from golden fixture", mode)
		}
	}
}

// TestPhysicsVersionPinned ties PhysicsVersion to the golden fixtures:
// the constant must match the pin committed next to them, so bumping
// one without regenerating/reviewing the other fails CI. The pin is
// what lets the persistent store trust that two processes agreeing on
// PhysicsVersion simulate identical physics.
func TestPhysicsVersionPinned(t *testing.T) {
	pin, err := os.ReadFile(filepath.Join("testdata", "physics_version"))
	if err != nil {
		t.Fatalf("%v (run go test -run TestGoldenCampaign -update-golden . to create the pin)", err)
	}
	if got := string(bytes.TrimSpace(pin)); got != PhysicsVersion {
		t.Errorf("PhysicsVersion = %q but testdata/physics_version pins %q; "+
			"regenerate fixtures with -update-golden when bumping the physics version", PhysicsVersion, got)
	}
}
