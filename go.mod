module cloversim

go 1.24
