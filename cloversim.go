// Package cloversim is the public API of the CloverLeaf write-allocate
// evasion study: a Go reproduction of "CloverLeaf on Intel Multi-Core
// CPUs: A Case Study in Write-Allocate Evasion" (IPDPS 2024).
//
// The package exposes one runner per paper artifact (Listing 2, Table I,
// Figures 2-11); each returns the underlying data plus a CSV-ready table.
// The heavy lifting lives in the internal packages:
//
//   - internal/core     — SpecI2M write-allocate-evasion store engine
//   - internal/memsim   — cache hierarchy simulator
//   - internal/machine  — ICX/SPR machine models
//   - internal/trace    — loop replay
//   - internal/cloverleaf — the hydro mini-app (physics + traffic specs)
//   - internal/bench    — store/copy microbenchmarks
//   - internal/mpi      — in-process message passing
package cloversim

import (
	"fmt"

	"cloversim/internal/machine"
)

// Options configures experiment fidelity.
type Options struct {
	// MachineName selects a preset ("icx", "spr8470", "spr8470+s",
	// "spr8480"); default "icx".
	MachineName string
	// MaxRows truncates each rank's y extent in traffic studies
	// (0 = paper-faithful full extent; default 32 for tractability).
	MaxRows int
	// Ranks restricts scaling sweeps to these rank counts (default: all
	// 1..cores).
	Ranks []int
	// Steps for physics-executing experiments (default 5).
	Steps int
	// Seed for the deterministic store-engine PRNG.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MachineName == "" {
		o.MachineName = machine.NameICX8360Y
	}
	if o.MaxRows == 0 {
		o.MaxRows = 32
	}
	if o.Steps == 0 {
		o.Steps = 5
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

func (o Options) machine() (*machine.Spec, error) {
	spec, ok := machine.ByName(o.MachineName)
	if !ok {
		return nil, fmt.Errorf("cloversim: unknown machine %q (have %v)", o.MachineName, machine.Names())
	}
	return spec, nil
}

func (o Options) rankList(max int) []int {
	if len(o.Ranks) > 0 {
		out := make([]int, 0, len(o.Ranks))
		for _, r := range o.Ranks {
			if r >= 1 && r <= max {
				out = append(out, r)
			}
		}
		return out
	}
	out := make([]int, max)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// Machines lists the available machine presets.
func Machines() []string { return machine.Names() }
