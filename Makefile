# Local invocations identical to CI's blocking gates.

GO ?= go

.PHONY: build test lint vettool fmt tidy bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the exact command CI runs as its blocking static-analysis
# step: the cloverlint invariant suite (mapiter, exactbits, ctxflow,
# nondet) over every package. Exit 0 clean, 1 findings, 2 load failure.
lint:
	$(GO) run ./cmd/cloverlint ./...

# vettool runs the same suite through go vet's unitchecker protocol —
# per-package caching, dependency export data from the build cache.
vettool:
	$(GO) build -o $(or $(TMPDIR),/tmp)/cloverlint ./cmd/cloverlint
	$(GO) vet -vettool=$(or $(TMPDIR),/tmp)/cloverlint ./...

# bench mirrors CI's bench-baseline job: the same benchmark set, piped
# through benchjson into BENCH_sweep.json. Compare two runs with
#   $(GO) run ./cmd/benchjson -compare old.json BENCH_sweep.json
bench:
	set -o pipefail; \
	{ $(GO) test -run - -bench 'BenchmarkEngineThroughput|BenchmarkEngineWarmCampaign' ./internal/sweep && \
	  $(GO) test -run - -bench 'Range$$|StreamRange' ./internal/memsim && \
	  $(GO) test -run - -bench 'BenchmarkRunTraffic$$' ./internal/cloverleaf && \
	  $(GO) test -run - -bench 'BenchmarkExpandBuffered$$|BenchmarkExpandStreaming$$' ./internal/sweepd && \
	  $(GO) test -run - -bench 'BenchmarkStoreOpen' -timeout 25m ./internal/store && \
	  $(GO) test -run - -bench 'BenchmarkAdaptiveVsExhaustive' ./internal/search; } | tee /tmp/bench_raw.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_raw.txt > BENCH_sweep.json
	@echo wrote BENCH_sweep.json

fmt:
	gofmt -l -w .

tidy:
	$(GO) mod tidy
