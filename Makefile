# Local invocations identical to CI's blocking gates.

GO ?= go

.PHONY: build test lint vettool fmt tidy

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the exact command CI runs as its blocking static-analysis
# step: the cloverlint invariant suite (mapiter, exactbits, ctxflow,
# nondet) over every package. Exit 0 clean, 1 findings, 2 load failure.
lint:
	$(GO) run ./cmd/cloverlint ./...

# vettool runs the same suite through go vet's unitchecker protocol —
# per-package caching, dependency export data from the build cache.
vettool:
	$(GO) build -o $(or $(TMPDIR),/tmp)/cloverlint ./cmd/cloverlint
	$(GO) vet -vettool=$(or $(TMPDIR),/tmp)/cloverlint ./...

fmt:
	gofmt -l -w .

tidy:
	$(GO) mod tidy
