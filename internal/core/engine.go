// Package core implements the paper's primary subject: the store path of
// a modern Intel core with dynamic write-allocate evasion ("SpecI2M"),
// classic write-allocates (read-for-ownership), and non-temporal stores
// with write-combine buffers.
//
// The engine is mechanistic where the paper's findings are mechanistic:
//
//   - a per-stream run detector claims a store line as ItoM (no memory
//     read) only after MinRunLines consecutive full-line stores, so short
//     inner loops — the prime-number effect — mechanically lose evasion;
//   - holes of up to BridgeLines full lines (aligned halos) do not reset
//     the detector, larger or misaligned holes do (Fig. 8);
//   - partially written cache lines always cost a write-allocate;
//   - NT stores bypass the hierarchy via write-combine semantics, with a
//     machine-calibrated fraction reverting to write-allocates under high
//     core counts (Fig. 5).
//
// The evasion *efficiency* under bandwidth pressure is taken from
// machine-specific calibration curves (see internal/machine), mirroring
// the paper's own phenomenological factor.
package core

import (
	"fmt"

	"cloversim/internal/machine"
)

// LineBytes is the cache-line size of all modeled machines.
const LineBytes = 64

const fullMask = ^uint64(0)

// Backend is the cache/memory hierarchy the store engine drives.
// internal/memsim provides the canonical implementation.
type Backend interface {
	// Load performs a demand load of the given cache line (line index =
	// byte address / 64).
	Load(line int64)
	// RFO performs a read-for-ownership (write-allocate): the line is
	// fetched and installed dirty.
	RFO(line int64)
	// ClaimI2M claims the line dirty at the L3 without any memory read
	// and counts an ItoM event (Intel SpecI2M).
	ClaimI2M(line int64)
	// ClaimL2 claims the line dirty in the private L2 without a memory
	// read (A64FX cache-line zero).
	ClaimL2(line int64)
	// WriteStreamed writes the line straight to memory, bypassing the
	// hierarchy (ARM write-streaming mode; distinct from WriteNT only in
	// accounting).
	WriteStreamed(line int64)
	// WriteNT writes a full or partial line directly to memory,
	// bypassing the hierarchy.
	WriteNT(line int64)
	// WriteNTReverted accounts for an NT store that the hardware
	// reverted into a regular write-allocate store.
	WriteNTReverted(line int64)
}

// Context describes the run conditions of one loop execution on one core.
type Context struct {
	// Pressure is the bandwidth-saturation fraction of this core's
	// ccNUMA domain (0..1).
	Pressure float64
	// NodeFraction is the fraction of the node's cores that are active
	// (drives NT revert behaviour).
	NodeFraction float64
	// ActiveSockets is the number of sockets with at least one active core.
	ActiveSockets int
	// Class is the kernel class (pure store / copy / stencil).
	Class machine.KernelClass
	// StoreStreams is the number of concurrent write streams.
	StoreStreams int
	// Eligible marks the loop's stores as recognizable by SpecI2M. The
	// paper found that some loop shapes (pure copy ac01/ac05, branchy
	// ac02/ac06) are never claimed on ICX.
	Eligible bool
	// PFOn reflects the hardware prefetcher state.
	PFOn bool
}

// RangeBackend is an optional Backend extension: a backend that can
// replay a run of consecutive same-kind line operations in one batched
// call (memsim.Hierarchy.AccessRange). The engine retires store lines
// one at a time — the run detector and the per-line evasion dice demand
// it — but the resulting backend operations come in long same-kind runs
// (every line of a CLX row pays an RFO, every line of an NT row goes
// out non-temporally), which the engine coalesces and hands over
// batched, in original order, when the backend supports it. Handing
// over whole runs is also what lets the backend solve regular runs in
// closed form instead of simulating them (the memsim analytic tier):
// the engine's only obligation is to keep runs maximal — never split a
// coalescible run — since the backend's eligibility checks are per
// call.
type RangeBackend interface {
	RFORange(start, n int64)
	ClaimI2MRange(start, n int64)
	ClaimL2Range(start, n int64)
	WriteStreamedRange(start, n int64)
	WriteNTRange(start, n int64)
	WriteNTRevertedRange(start, n int64)
}

// pendKind tags the operation kind of the engine's pending run.
type pendKind uint8

const (
	pendNone pendKind = iota
	pendRFO
	pendClaimI2M
	pendClaimL2
	pendWS
	pendNT
	pendNTRev
)

// streamState tracks the open store line of one write stream.
type streamState struct {
	line   int64  // currently open (partially filled) line index, or -1
	mask   uint64 // byte-valid mask of the open line
	last   int64  // last retired line index, or -1 (run-detector anchor)
	runLen int    // consecutive full-line stores ending at `last`
	nt     bool   // this stream uses non-temporal stores
}

// Stats counts store-path decisions (per engine since last ResetStats).
type Stats struct {
	FullLines    int64 // full-line stores retired
	PartialLines int64 // partially written lines retired
	Claimed      int64 // full lines claimed via SpecI2M (ItoM)
	RFOs         int64 // lines that paid a write-allocate
	NTLines      int64 // lines written via NT path
	NTReverted   int64 // NT lines reverted to write-allocate
}

// StoreEngine models one core's store path.
type StoreEngine struct {
	be      Backend
	rb      RangeBackend // non-nil when be supports batched runs
	spec    *machine.Spec
	ctx     Context
	eff     float64 // cached evasion efficiency for ctx
	ntRev   float64 // cached NT revert fraction for ctx
	minRun  int
	bridge  int
	rng     uint64
	streams []streamState
	stats   Stats
	// pending run of same-kind consecutive-line backend operations,
	// flushed on any kind/contiguity break and at call boundaries
	// (StoreRange returns with nothing pending, so interleaved direct
	// backend traffic from the caller stays ordered).
	pendKind  pendKind
	pendStart int64
	pendN     int64
}

// NewStoreEngine creates a store engine over the backend for the machine.
func NewStoreEngine(be Backend, spec *machine.Spec) *StoreEngine {
	rb, _ := be.(RangeBackend)
	return &StoreEngine{be: be, rb: rb, spec: spec, rng: 0x9e3779b97f4a7c15}
}

// emit hands one backend line operation over: batched through the
// pending run when the backend supports ranges, directly otherwise.
func (e *StoreEngine) emit(kind pendKind, line int64) {
	if e.rb == nil {
		switch kind {
		case pendRFO:
			e.be.RFO(line)
		case pendClaimI2M:
			e.be.ClaimI2M(line)
		case pendClaimL2:
			e.be.ClaimL2(line)
		case pendWS:
			e.be.WriteStreamed(line)
		case pendNT:
			e.be.WriteNT(line)
		case pendNTRev:
			e.be.WriteNTReverted(line)
		}
		return
	}
	if kind == e.pendKind && line == e.pendStart+e.pendN {
		e.pendN++
		return
	}
	e.flushPending()
	e.pendKind, e.pendStart, e.pendN = kind, line, 1
}

// flushPending replays the pending run on the batched backend path.
func (e *StoreEngine) flushPending() {
	if e.pendN == 0 {
		return
	}
	switch e.pendKind {
	case pendRFO:
		e.rb.RFORange(e.pendStart, e.pendN)
	case pendClaimI2M:
		e.rb.ClaimI2MRange(e.pendStart, e.pendN)
	case pendClaimL2:
		e.rb.ClaimL2Range(e.pendStart, e.pendN)
	case pendWS:
		e.rb.WriteStreamedRange(e.pendStart, e.pendN)
	case pendNT:
		e.rb.WriteNTRange(e.pendStart, e.pendN)
	case pendNTRev:
		e.rb.WriteNTRevertedRange(e.pendStart, e.pendN)
	}
	e.pendKind, e.pendStart, e.pendN = pendNone, 0, 0
}

// Seed reseeds the engine's deterministic PRNG.
func (e *StoreEngine) Seed(s uint64) {
	if s == 0 {
		s = 1
	}
	e.rng = s
}

// SetContext installs the run conditions and recomputes the cached
// efficiency values. Open lines of a previous context are flushed first.
func (e *StoreEngine) SetContext(ctx Context) {
	e.CloseAll()
	e.ctx = ctx
	e.eff = 0
	if ctx.Eligible {
		e.eff = e.spec.EvasionEff(ctx.Pressure, ctx.Class, ctx.StoreStreams, ctx.ActiveSockets, ctx.PFOn)
	}
	e.ntRev = e.spec.NTRevert(ctx.NodeFraction)
	e.minRun = e.spec.MinRun(ctx.PFOn)
	e.bridge = e.spec.I2M.BridgeLines
}

// Context returns the active context.
func (e *StoreEngine) Context() Context { return e.ctx }

// Eff returns the cached evasion efficiency of the active context.
func (e *StoreEngine) Eff() float64 { return e.eff }

// ConfigureStreams sets the number of write streams and which of them use
// non-temporal stores. It flushes all previously open lines.
func (e *StoreEngine) ConfigureStreams(n int, nt []bool) {
	e.CloseAll()
	if cap(e.streams) < n {
		e.streams = make([]streamState, n)
	}
	e.streams = e.streams[:n]
	for i := range e.streams {
		e.streams[i] = streamState{line: -1, last: -1}
		if nt != nil && i < len(nt) {
			e.streams[i].nt = nt[i]
		}
	}
}

// Stats returns the accumulated store-path statistics.
func (e *StoreEngine) Stats() Stats { return e.stats }

// ResetStats clears the statistics.
func (e *StoreEngine) ResetStats() { e.stats = Stats{} }

// xorshift64* PRNG; deterministic given Seed.
func (e *StoreEngine) rand() float64 {
	x := e.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	e.rng = x
	return float64(x*0x2545F4914F6CDD1D>>11) / (1 << 53)
}

// StoreRange stores nBytes starting at byte address addr into the given
// write stream, handling partial head/tail lines exactly and full lines on
// a fast path. Addresses must be element-aligned; overlapping re-stores of
// the same byte are idempotent within an open line.
func (e *StoreEngine) StoreRange(stream int, addr, nBytes int64) {
	if nBytes <= 0 {
		return
	}
	s := &e.streams[stream]
	end := addr + nBytes
	line := addr >> 6
	endLine := (end - 1) >> 6

	// Head: partial first line (or full if aligned and long enough).
	headStart := addr & 63
	if headStart != 0 || end-addr < LineBytes {
		hi := int64(LineBytes)
		if end-line*LineBytes < LineBytes {
			hi = end - line*LineBytes
		}
		e.storeBytes(s, line, headStart, hi)
		line++
		if line > endLine {
			e.flushPending()
			return
		}
		addr = line * LineBytes
	}

	// Middle: full lines.
	for ; line < endLine; line++ {
		e.storeFullLine(s, line)
	}

	// Tail: last line, possibly partial.
	tail := end - endLine*LineBytes
	if line == endLine {
		if tail == LineBytes {
			e.storeFullLine(s, line)
		} else {
			e.storeBytes(s, line, 0, tail)
		}
	}
	// Return with nothing pending so backend traffic the caller issues
	// directly (demand loads of the next row) stays globally ordered.
	e.flushPending()
}

// storeBytes merges a byte range [lo,hi) into the stream's open line.
func (e *StoreEngine) storeBytes(s *streamState, line, lo, hi int64) {
	if s.line != line {
		e.switchLine(s, line)
	}
	// Build mask bits lo..hi-1.
	n := hi - lo
	var m uint64
	if n >= 64 {
		m = fullMask
	} else {
		m = ((uint64(1) << uint(n)) - 1) << uint(lo)
	}
	s.mask |= m
	if s.mask == fullMask {
		e.retireFull(s)
		s.line = -1
		s.mask = 0
	}
}

// storeFullLine is the fast path for a complete 64-byte store.
func (e *StoreEngine) storeFullLine(s *streamState, line int64) {
	if s.line != line {
		e.switchLine(s, line)
	}
	s.mask = fullMask
	e.retireFull(s)
	s.line = -1
	s.mask = 0
}

// switchLine retires the currently open line (if any) and opens `line`,
// updating the run detector according to the gap since the last retired
// line.
func (e *StoreEngine) switchLine(s *streamState, line int64) {
	if s.line >= 0 && s.mask != 0 {
		e.retirePartial(s)
	}
	switch {
	case s.last < 0:
		// cold detector: first line of the stream
	case line == s.last+1:
		// contiguous: run continues (runLen updated at retire time)
	case line > s.last+1 && line-s.last-1 <= int64(e.bridge):
		// small aligned hole: bridged, run survives
	default:
		s.runLen = 0
	}
	s.line = line
	s.mask = 0
}

// retireFull decides the fate of a completely written line.
func (e *StoreEngine) retireFull(s *streamState) {
	e.stats.FullLines++
	line := s.line
	s.last = line
	if s.nt {
		if e.ntRev > 0 && e.rand() < e.ntRev {
			e.stats.NTReverted++
			e.emit(pendNTRev, line)
		} else {
			e.stats.NTLines++
			e.emit(pendNT, line)
		}
		s.runLen++ // NT streams keep their own run notion (harmless)
		return
	}
	s.runLen++
	if e.eff > 0 && s.runLen > e.minRun && e.rand() < e.eff {
		e.stats.Claimed++
		switch e.spec.I2M.Mode {
		case machine.EvasionWriteStream:
			e.emit(pendWS, line)
		case machine.EvasionClaimZero:
			e.emit(pendClaimL2, line)
		default:
			e.emit(pendClaimI2M, line)
		}
		return
	}
	e.stats.RFOs++
	e.emit(pendRFO, line)
}

// retirePartial handles a line evicted from the store window while only
// partially written: it always costs a write-allocate (or a masked NT
// write-combine flush for NT streams) and resets the run detector.
func (e *StoreEngine) retirePartial(s *streamState) {
	e.stats.PartialLines++
	s.last = s.line
	if s.nt {
		// Partial WC flush: masked write transactions, no ownership read.
		e.stats.NTLines++
		e.emit(pendNT, s.line)
	} else {
		e.stats.RFOs++
		e.emit(pendRFO, s.line)
	}
	s.runLen = 0
}

// CloseAll flushes all open (partial) lines, e.g. at the end of a loop.
func (e *StoreEngine) CloseAll() {
	for i := range e.streams {
		s := &e.streams[i]
		if s.line >= 0 && s.mask != 0 {
			if s.mask == fullMask {
				e.retireFull(s)
			} else {
				e.retirePartial(s)
			}
		}
		s.line = -1
		s.mask = 0
		s.last = -1
		s.runLen = 0
	}
	e.flushPending()
}

// Validate sanity-checks the engine configuration.
func (e *StoreEngine) Validate() error {
	if e.be == nil {
		return fmt.Errorf("core: nil backend")
	}
	if e.spec == nil {
		return fmt.Errorf("core: nil machine spec")
	}
	return nil
}
