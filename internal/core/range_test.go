package core

import (
	"testing"

	"cloversim/internal/machine"
	"cloversim/internal/memsim"
)

// plainBackend wraps a Hierarchy but hides its RangeBackend methods, so
// a StoreEngine over it takes the per-line path.
type plainBackend struct{ h *memsim.Hierarchy }

func (p plainBackend) Load(line int64)            { p.h.Load(line) }
func (p plainBackend) RFO(line int64)             { p.h.RFO(line) }
func (p plainBackend) ClaimI2M(line int64)        { p.h.ClaimI2M(line) }
func (p plainBackend) ClaimL2(line int64)         { p.h.ClaimL2(line) }
func (p plainBackend) WriteStreamed(line int64)   { p.h.WriteStreamed(line) }
func (p plainBackend) WriteNT(line int64)         { p.h.WriteNT(line) }
func (p plainBackend) WriteNTReverted(line int64) { p.h.WriteNTReverted(line) }

// storeWorkout drives one engine through the store shapes the traffic
// generators emit: long aligned rows, misaligned partial heads/tails,
// bridged halo gaps, NT streams, and mid-row interleaving across
// streams, with a context switch partway.
func storeWorkout(e *StoreEngine, ctx Context, nt bool) {
	e.Seed(0xd1ce)
	e.ConfigureStreams(3, []bool{nt, false, nt})
	e.SetContext(ctx)
	base := int64(1 << 22)
	for row := int64(0); row < 40; row++ {
		for s := 0; s < 3; s++ {
			addr := base + int64(s)*(1<<20) + row*4096
			// Misalign every third row and leave a bridged hole.
			if row%3 == 1 {
				addr += 24
			}
			e.StoreRange(s, addr, 1800)
			e.StoreRange(s, addr+1984, 2100)
		}
	}
	ctx2 := ctx
	ctx2.Class = machine.ClassPureStore
	e.SetContext(ctx2)
	e.StoreRange(0, base+(1<<21)+8, 64*37+17)
	e.CloseAll()
}

// TestEngineRangeBackendDifferential: a StoreEngine over the batched
// RangeBackend path must produce bit-identical hierarchy Counts to the
// same engine over the per-line Backend path — the pending-run
// coalescing may only group calls, never reorder or drop them.
func TestEngineRangeBackendDifferential(t *testing.T) {
	for _, name := range machine.Names() {
		spec, _ := machine.ByName(name)
		for _, nt := range []bool{false, true} {
			ctx := Context{
				Pressure:      1,
				NodeFraction:  1,
				ActiveSockets: spec.Sockets,
				Class:         machine.ClassStencil,
				StoreStreams:  3,
				Eligible:      true,
				PFOn:          true,
			}
			hPlain := memsim.New(spec)
			ePlain := NewStoreEngine(plainBackend{hPlain}, spec)
			storeWorkout(ePlain, ctx, nt)

			hRange := memsim.New(spec)
			eRange := NewStoreEngine(hRange, spec)
			if eRange.rb == nil {
				t.Fatal("memsim.Hierarchy must implement RangeBackend")
			}
			storeWorkout(eRange, ctx, nt)

			if ePlain.Stats() != eRange.Stats() {
				t.Fatalf("%s nt=%t: engine stats diverge: %+v vs %+v",
					name, nt, eRange.Stats(), ePlain.Stats())
			}
			if hPlain.Counts() != hRange.Counts() {
				t.Fatalf("%s nt=%t: hierarchy counts diverge\nbatched:  %+v\nper-line: %+v",
					name, nt, hRange.Counts(), hPlain.Counts())
			}
			hPlain.Flush()
			hRange.Flush()
			if hPlain.Counts() != hRange.Counts() {
				t.Fatalf("%s nt=%t: post-flush counts diverge (dirty state differs)", name, nt)
			}
		}
	}
}
