package core

import (
	"testing"

	"cloversim/internal/machine"
)

// fakeBackend records store-path decisions per line.
type fakeBackend struct {
	loads, rfos, claims, nts, reverts, l2claims, streamed []int64
}

func (f *fakeBackend) Load(line int64)            { f.loads = append(f.loads, line) }
func (f *fakeBackend) RFO(line int64)             { f.rfos = append(f.rfos, line) }
func (f *fakeBackend) ClaimI2M(line int64)        { f.claims = append(f.claims, line) }
func (f *fakeBackend) ClaimL2(line int64)         { f.l2claims = append(f.l2claims, line) }
func (f *fakeBackend) WriteStreamed(line int64)   { f.streamed = append(f.streamed, line) }
func (f *fakeBackend) WriteNT(line int64)         { f.nts = append(f.nts, line) }
func (f *fakeBackend) WriteNTReverted(line int64) { f.reverts = append(f.reverts, line) }

func newEngine(t *testing.T, ctx Context) (*StoreEngine, *fakeBackend) {
	t.Helper()
	be := &fakeBackend{}
	e := NewStoreEngine(be, machine.ICX8360Y())
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	e.ConfigureStreams(2, []bool{false, false})
	e.SetContext(ctx)
	return e, be
}

func ctxNoEvasion() Context {
	return Context{Pressure: 0, Class: machine.ClassStencil, StoreStreams: 1, Eligible: true, PFOn: true}
}

func ctxFullEvasion() Context {
	// Saturated single socket, copy class: efficiency ~0.99.
	return Context{Pressure: 1, NodeFraction: 0.25, ActiveSockets: 1,
		Class: machine.ClassCopy, StoreStreams: 1, Eligible: true, PFOn: true}
}

func TestFullLineStoresNoEvasionAreRFOs(t *testing.T) {
	e, be := newEngine(t, ctxNoEvasion())
	e.StoreRange(0, 0, 64*10)
	e.CloseAll()
	if len(be.rfos) != 10 {
		t.Fatalf("10 full lines stored, %d RFOs recorded", len(be.rfos))
	}
	if len(be.claims) != 0 || len(be.nts) != 0 {
		t.Fatalf("unexpected claims/NT at zero pressure: %d/%d", len(be.claims), len(be.nts))
	}
	s := e.Stats()
	if s.FullLines != 10 || s.PartialLines != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestEvasionClaimsAfterWarmup(t *testing.T) {
	e, be := newEngine(t, ctxFullEvasion())
	const lines = 1000
	e.StoreRange(0, 0, 64*lines)
	e.CloseAll()
	warm := e.spec.MinRun(true)
	if len(be.rfos) < warm {
		t.Fatalf("first %d lines must warm the detector, got %d RFOs", warm, len(be.rfos))
	}
	claimFrac := float64(len(be.claims)) / float64(lines)
	if claimFrac < 0.9 {
		t.Fatalf("claim fraction %.2f, want > 0.9 at full evasion", claimFrac)
	}
	if len(be.claims)+len(be.rfos) != lines {
		t.Fatalf("claims %d + RFOs %d != %d", len(be.claims), len(be.rfos), lines)
	}
}

func TestShortRunsNeverClaim(t *testing.T) {
	// Rows shorter than the warm-up (3 lines < MinRunLines=5) with big
	// gaps: the detector never opens — the prime-number-effect mechanism.
	e, be := newEngine(t, ctxFullEvasion())
	addr := int64(0)
	for row := 0; row < 50; row++ {
		e.StoreRange(0, addr, 64*3)
		addr += 64 * 100 // far jump: reset
	}
	e.CloseAll()
	if len(be.claims) != 0 {
		t.Fatalf("short rows claimed %d lines, want 0", len(be.claims))
	}
}

func TestBridgedHolesKeepTheRun(t *testing.T) {
	// Aligned 1-line holes (halo 8 elements) are bridged on ICX
	// (BridgeLines=2), so long strip-mined streams still claim.
	e, be := newEngine(t, ctxFullEvasion())
	addr := int64(0)
	for row := 0; row < 100; row++ {
		e.StoreRange(0, addr, 64*27) // 216 elements
		addr += 64 * 28              // skip exactly one line
	}
	e.CloseAll()
	frac := float64(len(be.claims)) / float64(100*27)
	if frac < 0.75 {
		t.Fatalf("bridged strip-mining claim fraction %.2f, want > 0.75", frac)
	}

	// A 3-line hole exceeds BridgeLines and resets the detector:
	// 4-line rows never reach the warm-up of 5 again.
	e2, be2 := newEngine(t, ctxFullEvasion())
	addr = 0
	for row := 0; row < 100; row++ {
		e2.StoreRange(0, addr, 64*4)
		addr += 64 * 7 // hole of 3 lines
	}
	e2.CloseAll()
	if len(be2.claims) != 0 {
		t.Fatalf("unbridged holes still claimed %d lines", len(be2.claims))
	}
}

func TestPartialLinesAlwaysRFO(t *testing.T) {
	e, be := newEngine(t, ctxFullEvasion())
	// Misaligned rows: 216 elements with halo 1 -> period 217 elements.
	addr := int64(0)
	for row := 0; row < 40; row++ {
		e.StoreRange(0, addr, 216*8)
		addr += 217 * 8
	}
	e.CloseAll()
	s := e.Stats()
	if s.PartialLines == 0 {
		t.Fatal("misaligned rows must produce partial lines")
	}
	if len(be.rfos) < int(s.PartialLines) {
		t.Fatalf("every partial line needs an RFO: %d partials, %d RFOs",
			s.PartialLines, len(be.rfos))
	}
}

func TestNTStoresBypass(t *testing.T) {
	e, be := newEngine(t, Context{
		Pressure: 0, NodeFraction: 0.01, ActiveSockets: 1,
		Class: machine.ClassPureStore, StoreStreams: 1, Eligible: true, PFOn: true,
	})
	e.ConfigureStreams(1, []bool{true})
	e.SetContext(e.Context()) // recompute with NT revert ~0 at 1 core
	e.StoreRange(0, 0, 64*100)
	e.CloseAll()
	if len(be.nts) != 100 {
		t.Fatalf("NT lines = %d, want 100", len(be.nts))
	}
	if len(be.rfos) != 0 || len(be.claims) != 0 {
		t.Fatalf("NT stores must bypass RFO/claim: %d/%d", len(be.rfos), len(be.claims))
	}
}

func TestNTRevertsUnderLoad(t *testing.T) {
	e, be := newEngine(t, Context{
		Pressure: 1, NodeFraction: 1, ActiveSockets: 2,
		Class: machine.ClassPureStore, StoreStreams: 1, Eligible: true, PFOn: true,
	})
	e.ConfigureStreams(1, []bool{true})
	e.SetContext(e.Context())
	const lines = 20000
	e.StoreRange(0, 0, 64*lines)
	e.CloseAll()
	frac := float64(len(be.reverts)) / float64(lines)
	// Fig. 5: ~16.5% of NT stores revert at the full node.
	if frac < 0.13 || frac > 0.20 {
		t.Fatalf("NT revert fraction %.3f, want ~0.165", frac)
	}
	if len(be.nts)+len(be.reverts) != lines {
		t.Fatalf("NT + reverts = %d, want %d", len(be.nts)+len(be.reverts), lines)
	}
}

func TestIneligibleLoopsNeverClaim(t *testing.T) {
	ctx := ctxFullEvasion()
	ctx.Eligible = false // ac01/ac05 behaviour on ICX
	e, be := newEngine(t, ctx)
	e.StoreRange(0, 0, 64*500)
	e.CloseAll()
	if len(be.claims) != 0 {
		t.Fatalf("ineligible loop claimed %d lines", len(be.claims))
	}
	if len(be.rfos) != 500 {
		t.Fatalf("want 500 RFOs, got %d", len(be.rfos))
	}
}

func TestTwoStreamsIndependentRuns(t *testing.T) {
	e, be := newEngine(t, Context{
		Pressure: 1, NodeFraction: 0.25, ActiveSockets: 1,
		Class: machine.ClassCopy, StoreStreams: 2, Eligible: true, PFOn: true,
	})
	// Interleave two streams line by line; each stream is contiguous in
	// its own address range, so both runs stay warm.
	a, b := int64(0), int64(1<<20)
	for i := 0; i < 200; i++ {
		e.StoreRange(0, a, 64)
		e.StoreRange(1, b, 64)
		a += 64
		b += 64
	}
	e.CloseAll()
	frac := float64(len(be.claims)) / 400
	if frac < 0.9 {
		t.Fatalf("interleaved streams claim fraction %.2f, want > 0.9", frac)
	}
}

func TestByteGranularMask(t *testing.T) {
	e, be := newEngine(t, ctxNoEvasion())
	// Fill one line in 8 separate 8-byte stores: exactly one RFO.
	for i := int64(0); i < 8; i++ {
		e.StoreRange(0, i*8, 8)
	}
	e.CloseAll()
	if len(be.rfos) != 1 {
		t.Fatalf("one full line from 8 partial stores: %d RFOs", len(be.rfos))
	}
	if e.Stats().FullLines != 1 || e.Stats().PartialLines != 0 {
		t.Fatalf("stats %+v", e.Stats())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		e, _ := newEngine(t, ctxFullEvasion())
		e.Seed(42)
		e.StoreRange(0, 0, 64*5000)
		e.CloseAll()
		return e.Stats()
	}
	if run() != run() {
		t.Fatal("engine is not deterministic under a fixed seed")
	}
}

func TestCloseAllFlushesPartials(t *testing.T) {
	e, be := newEngine(t, ctxNoEvasion())
	e.StoreRange(0, 0, 32) // half a line
	if len(be.rfos) != 0 {
		t.Fatal("partial line retired too early")
	}
	e.CloseAll()
	if len(be.rfos) != 1 {
		t.Fatalf("CloseAll did not retire the partial line: %d", len(be.rfos))
	}
}

func TestSetContextRecomputesEff(t *testing.T) {
	e, _ := newEngine(t, ctxNoEvasion())
	if e.Eff() != 0 {
		t.Fatalf("zero-pressure eff = %g", e.Eff())
	}
	e.SetContext(ctxFullEvasion())
	if e.Eff() < 0.9 {
		t.Fatalf("full-evasion eff = %g, want > 0.9", e.Eff())
	}
}
