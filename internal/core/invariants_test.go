package core

import (
	"testing"
	"testing/quick"

	"cloversim/internal/machine"
)

// TestStorePathConservation: for ANY random sequence of store ranges,
// every retired line has exactly one fate:
//
//	FullLines + PartialLines == Claimed + RFOs + NTLines + NTReverted
func TestStorePathConservation(t *testing.T) {
	f := func(ops []uint32, nt bool, pressure uint8) bool {
		be := &fakeBackend{}
		e := NewStoreEngine(be, machine.ICX8360Y())
		e.ConfigureStreams(2, []bool{nt, false})
		e.SetContext(Context{
			Pressure:      float64(pressure%101) / 100,
			NodeFraction:  0.5,
			ActiveSockets: 1,
			Class:         machine.ClassStencil,
			StoreStreams:  2,
			Eligible:      true,
			PFOn:          true,
		})
		for _, op := range ops {
			stream := int(op & 1)
			addr := int64((op >> 1) % 65536)
			n := int64(op>>17)%512 + 1
			e.StoreRange(stream, addr*8, n*8)
		}
		e.CloseAll()
		s := e.Stats()
		retired := s.FullLines + s.PartialLines
		fates := s.Claimed + s.RFOs + s.NTLines + s.NTReverted
		return retired == fates &&
			int64(len(be.claims)) == s.Claimed &&
			int64(len(be.rfos)) == s.RFOs &&
			int64(len(be.nts)) == s.NTLines &&
			int64(len(be.reverts)) == s.NTReverted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestClaimsNeverExceedFullLines: partial lines can never be claimed.
func TestClaimsNeverExceedFullLines(t *testing.T) {
	f := func(lens []uint16) bool {
		be := &fakeBackend{}
		e := NewStoreEngine(be, machine.ICX8360Y())
		e.ConfigureStreams(1, nil)
		e.SetContext(ctxFullEvasion())
		addr := int64(0)
		for _, l := range lens {
			n := int64(l%300) + 1
			e.StoreRange(0, addr, n)
			addr += n + int64(l%7)*64 // occasional gaps
		}
		e.CloseAll()
		s := e.Stats()
		return s.Claimed <= s.FullLines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestZeroLengthStore is a no-op.
func TestZeroLengthStore(t *testing.T) {
	be := &fakeBackend{}
	e := NewStoreEngine(be, machine.ICX8360Y())
	e.ConfigureStreams(1, nil)
	e.SetContext(ctxNoEvasion())
	e.StoreRange(0, 128, 0)
	e.StoreRange(0, 128, -64)
	e.CloseAll()
	if s := e.Stats(); s.FullLines != 0 || s.PartialLines != 0 {
		t.Fatalf("zero-length stores retired lines: %+v", s)
	}
}

// TestRevisitedLineIdempotent: storing the same bytes twice in an open
// line retires it once.
func TestRevisitedLineIdempotent(t *testing.T) {
	be := &fakeBackend{}
	e := NewStoreEngine(be, machine.ICX8360Y())
	e.ConfigureStreams(1, nil)
	e.SetContext(ctxNoEvasion())
	e.StoreRange(0, 0, 32)
	e.StoreRange(0, 0, 32) // same half-line again
	e.StoreRange(0, 32, 32)
	e.CloseAll()
	s := e.Stats()
	if s.FullLines != 1 || s.PartialLines != 0 {
		t.Fatalf("idempotence broken: %+v", s)
	}
}
