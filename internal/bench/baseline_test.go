package bench

import (
	"math"
	"testing"

	"cloversim/internal/machine"
)

// TestCLXNoEvasionBaseline: Cascade Lake (pre-SpecI2M) keeps the store
// ratio at 2.0 at every core count — the contrast that makes the ICX
// behaviour (Fig. 5) attributable to the new feature.
func TestCLXNoEvasionBaseline(t *testing.T) {
	clx := machine.CLX8280()
	for _, n := range []int{1, 14, 28, 56} {
		r, err := RunStore(StoreOptions{Machine: clx, Streams: 1, Cores: n, BytesPerStream: 1 << 19})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Ratio()-2.0) > 0.01 {
			t.Errorf("CLX at %d cores: ratio %.3f, want 2.0 (no SpecI2M)", n, r.Ratio())
		}
	}
	// NT stores still work on CLX (they predate SpecI2M by decades).
	nt, err := RunStore(StoreOptions{Machine: clx, Streams: 1, NT: true, Cores: 28, BytesPerStream: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	if nt.Ratio() > 1.06 {
		t.Errorf("CLX NT ratio %.3f, want ~1.0", nt.Ratio())
	}
}

// TestCLXCopyKeepsWA: the copy kernel on CLX reads 16 B/it at every
// thread count (the Fig. 6 curve never drops without SpecI2M).
func TestCLXCopyKeepsWA(t *testing.T) {
	clx := machine.CLX8280()
	for _, n := range []int{1, 28} {
		r, err := RunCopy(CopyOptions{Machine: clx, Cores: n, Elems: 1 << 17})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.ReadPerIt()-16) > 0.3 {
			t.Errorf("CLX copy at %d threads reads %.2f B/it, want 16", n, r.ReadPerIt())
		}
		if r.ItoMPerIt() != 0 {
			t.Errorf("CLX claimed %.2f B/it", r.ItoMPerIt())
		}
	}
}
