package bench

import (
	"fmt"
	"sort"
	"sync"

	"cloversim/internal/core"
	"cloversim/internal/machine"
	"cloversim/internal/memsim"
)

// Kernel is a named likwid-bench-style microbenchmark kernel. The paper's
// artifact uses store_avx512, store_mem_avx512 (NT), the 2/3-stream
// variants, and copy_avx; the classic STREAM kernels are included so the
// library covers the usual bandwidth-characterization suite.
type Kernel struct {
	Name        string
	Description string
	// ReadStreams and WriteStreams per iteration chunk.
	ReadStreams  int
	WriteStreams int
	// NT marks non-temporal write streams.
	NT bool
	// Update marks kernels whose write stream is also read (no WA).
	Update bool
	// FlopsPerElem for MEM_DP-style accounting.
	FlopsPerElem int
}

// kernelTable mirrors likwid-bench's kernel registry.
var kernelTable = []Kernel{
	{"store", "1 store stream (store_avx512)", 0, 1, false, false, 0},
	{"store2", "2 store streams", 0, 2, false, false, 0},
	{"store3", "3 store streams", 0, 3, false, false, 0},
	{"store_mem", "1 NT store stream (store_mem_avx512)", 0, 1, true, false, 0},
	{"store2_mem", "2 NT store streams", 0, 2, true, false, 0},
	{"store3_mem", "3 NT store streams", 0, 3, true, false, 0},
	{"copy", "a(:) = b(:) (copy_avx)", 1, 1, false, false, 0},
	{"copy_mem", "NT copy", 1, 1, true, false, 0},
	{"stream", "STREAM triad a = b + s*c", 2, 1, false, false, 2},
	{"stream_mem", "NT STREAM triad", 2, 1, true, false, 2},
	{"update", "a = s*a (no write-allocate by construction)", 0, 1, false, true, 1},
	{"daxpy", "a = a + s*b", 2, 1, false, true, 2},
	{"sum", "reduction s += a(i) (read only)", 1, 0, false, false, 1},
}

// KernelByName resolves a kernel name.
func KernelByName(name string) (Kernel, bool) {
	for _, k := range kernelTable {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// KernelNames lists the registry in sorted order.
func KernelNames() []string {
	out := make([]string, len(kernelTable))
	for i, k := range kernelTable {
		out[i] = k.Name
	}
	sort.Strings(out)
	return out
}

// Class derives the calibration class of the kernel.
func (k Kernel) Class() machine.KernelClass {
	switch {
	case k.ReadStreams == 0:
		return machine.ClassPureStore
	case k.ReadStreams+k.WriteStreams <= 2:
		return machine.ClassCopy
	default:
		return machine.ClassStencil
	}
}

// KernelOptions configures a registry-kernel run.
type KernelOptions struct {
	Machine *machine.Spec
	Kernel  string
	Cores   int
	// ElemsPerStream per core (default 256 Ki).
	ElemsPerStream int64
	PFOff          bool
	Seed           uint64
}

// KernelResult reports a registry-kernel run.
type KernelResult struct {
	Kernel Kernel
	Cores  int
	// Explicit per-stream volumes.
	ReadVolume, WriteVolume float64
	V                       Volumes
	Flops                   float64
}

// StoreRatio returns actual traffic over explicit store volume (only
// meaningful for kernels with write streams).
func (r KernelResult) StoreRatio() float64 {
	if r.WriteVolume == 0 {
		return 0
	}
	return (r.V.Read + r.V.Write) / r.WriteVolume
}

// ExcessReadRatio returns measured reads over explicit read volume.
func (r KernelResult) ExcessReadRatio() float64 {
	if r.ReadVolume == 0 {
		return 0
	}
	return r.V.Read / r.ReadVolume
}

// RunKernel executes a registry kernel across cores (compact pinning).
//
//lint:allow ctxflow bounded single-scenario kernel; campaign cancellation is scenario-granular at the sweep engine
func RunKernel(o KernelOptions) (KernelResult, error) {
	k, ok := KernelByName(o.Kernel)
	if !ok {
		return KernelResult{}, fmt.Errorf("bench: unknown kernel %q (have %v)", o.Kernel, KernelNames())
	}
	if err := checkCores(o.Machine, o.Cores); err != nil {
		return KernelResult{}, err
	}
	if o.ElemsPerStream == 0 {
		o.ElemsPerStream = 256 << 10
	}
	if o.Seed == 0 {
		o.Seed = 0xbe7c4
	}
	spec := o.Machine

	res := KernelResult{Kernel: k, Cores: o.Cores}
	bytesPerStream := float64(o.ElemsPerStream) * 8 * float64(o.Cores)
	res.ReadVolume = bytesPerStream * float64(k.ReadStreams)
	res.WriteVolume = bytesPerStream * float64(k.WriteStreams)
	if k.Update {
		// The write stream is also a read stream.
		res.ReadVolume += bytesPerStream * float64(k.WriteStreams)
	}
	res.Flops = float64(k.FlopsPerElem) * float64(o.ElemsPerStream) * float64(o.Cores)

	groups := groupCores(spec, o.Cores)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g coreGroup) {
			defer wg.Done()
			h := memsim.New(spec)
			h.SetPrefetch(!o.PFOff)
			e := core.NewStoreEngine(h, spec)
			e.Seed(o.Seed ^ uint64(g.firstCore+1)*0x9e3779b97f4a7c15)
			nt := make([]bool, k.WriteStreams)
			for i := range nt {
				nt[i] = k.NT
			}
			e.ConfigureStreams(k.WriteStreams, nt)
			e.SetContext(core.Context{
				Pressure:      g.pressure,
				NodeFraction:  float64(o.Cores) / float64(spec.Cores()),
				ActiveSockets: spec.ActiveSockets(o.Cores),
				Class:         k.Class(),
				StoreStreams:  k.WriteStreams,
				Eligible:      true,
				PFOn:          !o.PFOff,
			})

			gap := (o.ElemsPerStream*8 + (1 << 20)) &^ 63
			// Stream base addresses: reads first, then writes.
			readBase := make([]int64, k.ReadStreams)
			for i := range readBase {
				readBase[i] = int64(1<<24) + int64(i)*gap
			}
			writeBase := make([]int64, k.WriteStreams)
			for i := range writeBase {
				writeBase[i] = int64(1<<24) + int64(k.ReadStreams+i)*gap
			}

			// Process in chunks to interleave streams like a real kernel.
			const chunk = 512 // elements
			for pos := int64(0); pos < o.ElemsPerStream; pos += chunk {
				n := chunk
				if o.ElemsPerStream-pos < chunk {
					n = int(o.ElemsPerStream - pos)
				}
				bytes := int64(n) * 8
				for _, base := range readBase {
					addr := base + pos*8
					for line := addr >> 6; line <= (addr+bytes-1)>>6; line++ {
						h.Load(line)
					}
				}
				for i, base := range writeBase {
					addr := base + pos*8
					if k.Update {
						for line := addr >> 6; line <= (addr+bytes-1)>>6; line++ {
							h.Load(line)
							h.RFO(line)
						}
						continue
					}
					e.StoreRange(i, addr, bytes)
				}
			}
			e.CloseAll()
			h.Flush()
			mu.Lock()
			res.V.Add(volumesOf(h.Counts()), float64(g.count))
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return res, nil
}
