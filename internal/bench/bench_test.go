package bench

import (
	"math"
	"testing"
	"testing/quick"

	"cloversim/internal/machine"
)

func TestStoreSerialRatioIsTwo(t *testing.T) {
	// One core, no bandwidth pressure: every store write-allocates.
	r, err := RunStore(StoreOptions{Machine: machine.ICX8360Y(), Streams: 1, Cores: 1, BytesPerStream: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Ratio()-2.0) > 0.01 {
		t.Fatalf("serial store ratio = %.3f, want 2.0", r.Ratio())
	}
}

func TestStoreNTSerialRatioIsOne(t *testing.T) {
	r, err := RunStore(StoreOptions{Machine: machine.ICX8360Y(), Streams: 1, NT: true, Cores: 1, BytesPerStream: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Ratio()-1.0) > 0.01 {
		t.Fatalf("serial NT store ratio = %.3f, want 1.0", r.Ratio())
	}
}

// TestStoreICXFigure5Anchors checks the paper's headline numbers: ~1.06
// at a full socket, 1.20-1.25 at the full node for one stream; NT rises
// to 1.16-1.17.
func TestStoreICXFigure5Anchors(t *testing.T) {
	icx := machine.ICX8360Y()
	socket, err := RunStore(StoreOptions{Machine: icx, Streams: 1, Cores: 36, BytesPerStream: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if socket.Ratio() < 1.02 || socket.Ratio() > 1.09 {
		t.Errorf("full-socket ratio %.3f, paper says ~1.06", socket.Ratio())
	}
	node, _ := RunStore(StoreOptions{Machine: icx, Streams: 1, Cores: 72, BytesPerStream: 2 << 20})
	if node.Ratio() < 1.17 || node.Ratio() > 1.28 {
		t.Errorf("full-node ratio %.3f, paper says 1.20-1.25", node.Ratio())
	}
	nt, _ := RunStore(StoreOptions{Machine: icx, Streams: 1, NT: true, Cores: 72, BytesPerStream: 2 << 20})
	if nt.Ratio() < 1.13 || nt.Ratio() > 1.20 {
		t.Errorf("full-node NT ratio %.3f, paper says 1.16-1.17", nt.Ratio())
	}
}

// TestStoreStreamPenaltyICX: Fig. 5 shows SpecI2M effectiveness
// diminishing with the number of store streams on ICX.
func TestStoreStreamPenaltyICX(t *testing.T) {
	icx := machine.ICX8360Y()
	var prev float64
	for s := 1; s <= 3; s++ {
		r, err := RunStore(StoreOptions{Machine: icx, Streams: s, Cores: 18, BytesPerStream: 2 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if s > 1 && r.Ratio() < prev {
			t.Errorf("%d streams ratio %.3f below %d-stream %.3f", s, r.Ratio(), s-1, prev)
		}
		prev = r.Ratio()
	}
}

// TestStoreSPRKickIn: Fig. 10 — no SpecI2M benefit below ~18 cores on
// SPR, and only about half the WAs evaded at a full socket.
func TestStoreSPRKickIn(t *testing.T) {
	spr := machine.SPR8480()
	low, err := RunStore(StoreOptions{Machine: spr, Streams: 1, Cores: 15, BytesPerStream: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if low.Ratio() < 1.98 {
		t.Errorf("SPR at 15 cores evades already: ratio %.3f", low.Ratio())
	}
	sock, _ := RunStore(StoreOptions{Machine: spr, Streams: 1, Cores: 56, BytesPerStream: 1 << 20})
	if sock.Ratio() < 1.4 || sock.Ratio() > 1.6 {
		t.Errorf("SPR socket ratio %.3f, paper says ~1.5", sock.Ratio())
	}
	// No stream-count sensitivity on SPR (unlike ICX).
	s3, _ := RunStore(StoreOptions{Machine: spr, Streams: 3, Cores: 56, BytesPerStream: 1 << 20})
	if math.Abs(s3.Ratio()-sock.Ratio()) > 0.05 {
		t.Errorf("SPR stream sensitivity: 1 stream %.3f vs 3 streams %.3f", sock.Ratio(), s3.Ratio())
	}
}

// TestStoreSNCKickInFaster: Fig. 9 — with SNC on, domains are smaller
// and SpecI2M activates at fewer cores.
func TestStoreSNCKickInFaster(t *testing.T) {
	sncOn := machine.SPR8470SNCOn()
	sncOff := machine.SPR8470()
	on, err := RunStore(StoreOptions{Machine: sncOn, Streams: 1, Cores: 10, BytesPerStream: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunStore(StoreOptions{Machine: sncOff, Streams: 1, Cores: 10, BytesPerStream: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if on.Ratio() >= off.Ratio() {
		t.Errorf("SNC on at 10 cores (%.3f) should already evade vs off (%.3f)",
			on.Ratio(), off.Ratio())
	}
}

// TestStoreRatioBoundsProperty: the ratio is always within [1, 2+eps]
// for any core count, stream count and NT mode.
func TestStoreRatioBoundsProperty(t *testing.T) {
	icx := machine.ICX8360Y()
	f := func(cores, streams uint8, nt bool) bool {
		c := int(cores)%72 + 1
		s := int(streams)%3 + 1
		r, err := RunStore(StoreOptions{Machine: icx, Streams: s, NT: nt, Cores: c, BytesPerStream: 1 << 18})
		if err != nil {
			return false
		}
		return r.Ratio() >= 0.99 && r.Ratio() <= 2.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCopySerialVolumes(t *testing.T) {
	// One thread: 8B read + 8B WA read + 8B write per element (Fig. 6).
	r, err := RunCopy(CopyOptions{Machine: machine.ICX8360Y(), Cores: 1, Elems: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ReadPerIt()-16) > 0.2 {
		t.Errorf("serial copy read/it = %.2f, want 16", r.ReadPerIt())
	}
	if math.Abs(r.WritePerIt()-8) > 0.2 {
		t.Errorf("serial copy write/it = %.2f, want 8", r.WritePerIt())
	}
	if r.ItoMPerIt() > 0.01 {
		t.Errorf("serial copy claimed %.2f B/it", r.ItoMPerIt())
	}
}

func TestCopyEvasionAt17Threads(t *testing.T) {
	// Fig. 6: WAs almost fully evaded at 17 threads (one SNC domain).
	r, err := RunCopy(CopyOptions{Machine: machine.ICX8360Y(), Cores: 17, Elems: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadPerIt() > 8.5 {
		t.Errorf("17-thread copy read/it = %.2f, want ~8", r.ReadPerIt())
	}
	if r.ItoMPerIt() < 7 {
		t.Errorf("17-thread SpecI2M volume = %.2f B/it, want ~8", r.ItoMPerIt())
	}
}

// TestHaloCopyDimensionOrdering: Fig. 8 — longer inner dimensions give
// lower read/write ratios (216 worst, 1920 best), averaged over halos.
func TestHaloCopyDimensionOrdering(t *testing.T) {
	icx := machine.ICX8360Y()
	avg := func(dim int) float64 {
		var s float64
		for h := 0; h <= 17; h++ {
			r, err := RunCopy(CopyOptions{Machine: icx, Cores: 72, Elems: 1 << 17, Inner: dim, Halo: h})
			if err != nil {
				t.Fatal(err)
			}
			s += r.RWRatio()
		}
		return s / 18
	}
	a216, a530, a1920 := avg(216), avg(530), avg(1920)
	if !(a216 > a530 && a530 > a1920) {
		t.Errorf("halo-copy ordering violated: 216=%.3f 530=%.3f 1920=%.3f", a216, a530, a1920)
	}
	if a1920 > 1.10 {
		t.Errorf("1920 average ratio %.3f, paper says ~1.04", a1920)
	}
	if a216 < 1.15 {
		t.Errorf("216 average ratio %.3f, paper says ~1.35", a216)
	}
}

// TestHaloAlignedGapsBridge: halo sizes that are multiples of 8 elements
// (full-line holes) keep evasion alive (dips in Fig. 8).
func TestHaloAlignedGapsBridge(t *testing.T) {
	icx := machine.ICX8360Y()
	get := func(h int) float64 {
		r, err := RunCopy(CopyOptions{Machine: icx, Cores: 72, Elems: 1 << 17, Inner: 216, Halo: h})
		if err != nil {
			t.Fatal(err)
		}
		return r.RWRatio()
	}
	if h8, h3 := get(8), get(3); h8 >= h3 {
		t.Errorf("aligned halo 8 (%.3f) should beat misaligned halo 3 (%.3f)", h8, h3)
	}
	if h16, h5 := get(16), get(5); h16 >= h5 {
		t.Errorf("aligned halo 16 (%.3f) should beat misaligned halo 5 (%.3f)", h16, h5)
	}
}

// TestHaloPFOffWorse: disabling prefetchers drastically degrades
// evasion for strip-mined streams (Fig. 8 "PF off").
func TestHaloPFOffWorse(t *testing.T) {
	icx := machine.ICX8360Y()
	on, err := RunCopy(CopyOptions{Machine: icx, Cores: 72, Elems: 1 << 17, Inner: 1920, Halo: 8})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunCopy(CopyOptions{Machine: icx, Cores: 72, Elems: 1 << 17, Inner: 1920, Halo: 8, PFOff: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.RWRatio() <= on.RWRatio()+0.05 {
		t.Errorf("PF off ratio %.3f not clearly above PF on %.3f", off.RWRatio(), on.RWRatio())
	}
}

// TestHaloSPRShortRowsBetter: Fig. 11 — SPR handles short aligned rows
// better than ICX (shorter detector warm-up).
func TestHaloSPRShortRowsBetter(t *testing.T) {
	run := func(m *machine.Spec) float64 {
		r, err := RunCopy(CopyOptions{Machine: m, Cores: m.Cores(), Elems: 1 << 17, Inner: 216, Halo: 8})
		if err != nil {
			t.Fatal(err)
		}
		return r.RWRatio()
	}
	icx, spr := run(machine.ICX8360Y()), run(machine.SPR8480())
	if spr >= icx {
		t.Errorf("SPR aligned-short-row ratio %.3f should beat ICX %.3f", spr, icx)
	}
}

func TestNTCopyRWRatio(t *testing.T) {
	// NT destination: no write-allocates at all at low core counts.
	r, err := RunCopy(CopyOptions{Machine: machine.ICX8360Y(), Cores: 1, Elems: 1 << 18, NT: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.RWRatio()-1.0) > 0.02 {
		t.Errorf("serial NT copy R/W ratio = %.3f, want 1.0", r.RWRatio())
	}
}

func TestBenchValidation(t *testing.T) {
	if _, err := RunStore(StoreOptions{Streams: 1, Cores: 1}); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := RunStore(StoreOptions{Machine: machine.ICX8360Y(), Cores: 100}); err == nil {
		t.Error("too many cores accepted")
	}
	if _, err := RunCopy(CopyOptions{Machine: machine.ICX8360Y(), Cores: 0}); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestVolumesAdd(t *testing.T) {
	var v Volumes
	v.Add(Volumes{Read: 10, Write: 5, ItoM: 2, NT: 1}, 3)
	if v.Read != 30 || v.Write != 15 || v.ItoM != 6 || v.NT != 3 {
		t.Fatalf("weighted add: %+v", v)
	}
}

func TestGroupCoresPartition(t *testing.T) {
	spec := machine.ICX8360Y()
	for _, n := range []int{1, 17, 18, 19, 36, 71, 72} {
		total := 0
		for _, g := range groupCores(spec, n) {
			total += g.count
		}
		if total != n {
			t.Errorf("groupCores(%d) covers %d cores", n, total)
		}
	}
}
