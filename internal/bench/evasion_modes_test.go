package bench

import (
	"math"
	"testing"

	"cloversim/internal/machine"
)

// TestN1WriteStreamingWorksSerially: the defining contrast with SpecI2M
// (Sec. II-D): ARM's write-streaming mode needs no bandwidth pressure,
// so a single core already avoids write-allocates.
func TestN1WriteStreamingWorksSerially(t *testing.T) {
	n1 := machine.NeoverseN1()
	r, err := RunStore(StoreOptions{Machine: n1, Streams: 1, Cores: 1, BytesPerStream: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio() > 1.10 {
		t.Errorf("N1 serial store ratio %.3f, want ~1.03 (write-streaming)", r.Ratio())
	}
	// ICX at the same single-core point is 2.0.
	icx, _ := RunStore(StoreOptions{Machine: machine.ICX8360Y(), Streams: 1, Cores: 1, BytesPerStream: 1 << 20})
	if icx.Ratio() < 1.95 {
		t.Errorf("ICX serial should write-allocate fully: %.3f", icx.Ratio())
	}
}

// TestN1ShortLoopsStillSuffer: write-streaming also uses a run detector,
// so the prime-number-effect mechanism (short inner loops) carries over
// to ARM — an extension prediction of the model.
func TestN1ShortLoopsStillSuffer(t *testing.T) {
	n1 := machine.NeoverseN1()
	long, err := RunCopy(CopyOptions{Machine: n1, Cores: 8, Elems: 1 << 17, Inner: 1920, Halo: 3})
	if err != nil {
		t.Fatal(err)
	}
	short, err := RunCopy(CopyOptions{Machine: n1, Cores: 8, Elems: 1 << 17, Inner: 32, Halo: 3})
	if err != nil {
		t.Fatal(err)
	}
	if short.RWRatio() <= long.RWRatio()+0.05 {
		t.Errorf("short rows %.3f should degrade vs long %.3f on N1 too",
			short.RWRatio(), long.RWRatio())
	}
}

// TestA64FXClaimZero: cache-line claim avoids the memory read and —
// unlike NT/write-streaming — leaves the data reusable in cache.
func TestA64FXClaimZero(t *testing.T) {
	fx := machine.A64FX()
	r, err := RunStore(StoreOptions{Machine: fx, Streams: 1, Cores: 1, BytesPerStream: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio() > 1.06 {
		t.Errorf("A64FX serial store ratio %.3f, want ~1.02 (DC ZVA)", r.Ratio())
	}
	if r.V.ItoM == 0 {
		t.Error("claim events not recorded")
	}
}

// TestA64FXShortLoopsFine: DC ZVA is compiler-issued (MinRunLines 1), so
// short inner loops barely hurt — the A64FX would not show the paper's
// prime-number effect.
func TestA64FXShortLoopsFine(t *testing.T) {
	fx := machine.A64FX()
	long, err := RunCopy(CopyOptions{Machine: fx, Cores: 4, Elems: 1 << 17, Inner: 1920, Halo: 8})
	if err != nil {
		t.Fatal(err)
	}
	short, err := RunCopy(CopyOptions{Machine: fx, Cores: 4, Elems: 1 << 17, Inner: 216, Halo: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(short.RWRatio()-long.RWRatio()) > 0.05 {
		t.Errorf("A64FX should be loop-length insensitive: short %.3f vs long %.3f",
			short.RWRatio(), long.RWRatio())
	}
}

func TestARMPresetsValidate(t *testing.T) {
	for _, name := range []string{machine.NameNeoverseN1, machine.NameA64FX} {
		s, ok := machine.ByName(name)
		if !ok {
			t.Fatalf("preset %s missing", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
