package bench

import (
	"math"
	"testing"

	"cloversim/internal/machine"
)

func TestKernelRegistry(t *testing.T) {
	names := KernelNames()
	if len(names) < 10 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, n := range names {
		k, ok := KernelByName(n)
		if !ok || k.Name != n {
			t.Errorf("kernel %s not resolvable", n)
		}
	}
	if _, ok := KernelByName("triad_sse"); ok {
		t.Error("bogus kernel resolved")
	}
}

func TestKernelClasses(t *testing.T) {
	cases := map[string]machine.KernelClass{
		"store":  machine.ClassPureStore,
		"store3": machine.ClassPureStore,
		"copy":   machine.ClassCopy,
		"stream": machine.ClassStencil,
	}
	for name, want := range cases {
		k, _ := KernelByName(name)
		if k.Class() != want {
			t.Errorf("%s class = %v, want %v", name, k.Class(), want)
		}
	}
}

func TestRunKernelStoreMatchesRunStore(t *testing.T) {
	// The registry "store" kernel and the dedicated RunStore harness must
	// agree on the serial ratio.
	icx := machine.ICX8360Y()
	kr, err := RunKernel(KernelOptions{Machine: icx, Kernel: "store", Cores: 1, ElemsPerStream: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kr.StoreRatio()-2.0) > 0.02 {
		t.Errorf("registry store serial ratio %.3f, want 2.0", kr.StoreRatio())
	}
	kr72, err := RunKernel(KernelOptions{Machine: icx, Kernel: "store", Cores: 72, ElemsPerStream: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	if kr72.StoreRatio() < 1.15 || kr72.StoreRatio() > 1.3 {
		t.Errorf("registry store node ratio %.3f, want ~1.22", kr72.StoreRatio())
	}
}

func TestRunKernelNTStore(t *testing.T) {
	kr, err := RunKernel(KernelOptions{Machine: machine.ICX8360Y(), Kernel: "store_mem", Cores: 1, ElemsPerStream: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kr.StoreRatio()-1.0) > 0.02 {
		t.Errorf("NT serial ratio %.3f, want 1.0", kr.StoreRatio())
	}
	if kr.V.NT == 0 {
		t.Error("NT volume not recorded")
	}
}

func TestRunKernelUpdateNoWA(t *testing.T) {
	// "update" reads its write target: write-allocates are free, so the
	// total traffic equals read + write volume exactly (ratio of reads to
	// the explicit read volume ~1).
	kr, err := RunKernel(KernelOptions{Machine: machine.ICX8360Y(), Kernel: "update", Cores: 1, ElemsPerStream: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	if r := kr.ExcessReadRatio(); math.Abs(r-1.0) > 0.02 {
		t.Errorf("update excess read ratio %.3f, want 1.0 (one pass, no WA)", r)
	}
	if math.Abs(kr.V.Write/kr.WriteVolume-1.0) > 0.02 {
		t.Errorf("update write traffic %.3f of explicit", kr.V.Write/kr.WriteVolume)
	}
}

func TestRunKernelTriad(t *testing.T) {
	// STREAM triad serial: reads b, c and write-allocates a: traffic
	// reads = 3x stream volume, writes = 1x.
	kr, err := RunKernel(KernelOptions{Machine: machine.ICX8360Y(), Kernel: "stream", Cores: 1, ElemsPerStream: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	perStream := float64(1<<17) * 8
	if math.Abs(kr.V.Read/perStream-3.0) > 0.05 {
		t.Errorf("triad reads %.2f streams, want 3 (b, c, WA of a)", kr.V.Read/perStream)
	}
	if kr.Flops != 2*float64(1<<17) {
		t.Errorf("triad flops %g", kr.Flops)
	}
}

func TestRunKernelSumReadOnly(t *testing.T) {
	kr, err := RunKernel(KernelOptions{Machine: machine.ICX8360Y(), Kernel: "sum", Cores: 2, ElemsPerStream: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if kr.V.Write != 0 {
		t.Errorf("read-only kernel wrote %.0f bytes", kr.V.Write)
	}
	if kr.StoreRatio() != 0 {
		t.Error("store ratio should be undefined (0) for read-only kernels")
	}
}

func TestRunKernelErrors(t *testing.T) {
	if _, err := RunKernel(KernelOptions{Machine: machine.ICX8360Y(), Kernel: "nope", Cores: 1}); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := RunKernel(KernelOptions{Kernel: "copy", Cores: 1}); err == nil {
		t.Error("nil machine accepted")
	}
}
