// Package bench implements the paper's microbenchmarks: the 1-3-stream
// store kernels with and without non-temporal hints (likwid-bench
// store_avx512 / store_mem_avx512 and the 2/3-stream variants, Figs. 5,
// 9, 10), the array-copy kernel (Fig. 6), and the strided halo-copy
// kernel (Figs. 8 and 11).
//
// Each active core is simulated with its own hierarchy and store engine;
// cores sharing the same bandwidth pressure are simulated once and
// weighted (compact pinning fills ccNUMA domains in order).
package bench

import (
	"fmt"
	"sync"

	"cloversim/internal/core"
	"cloversim/internal/machine"
	"cloversim/internal/memsim"
)

// coreGroup is a set of cores with identical simulation conditions.
type coreGroup struct {
	pressure  float64
	count     int
	firstCore int
}

// groupCores buckets the first n cores by ccNUMA-domain pressure.
func groupCores(spec *machine.Spec, n int) []coreGroup {
	m := map[int64]*coreGroup{}
	var order []int64
	for c := 0; c < n; c++ {
		p := spec.PressureAt(c, n)
		key := int64(p * 1e9)
		g, ok := m[key]
		if !ok {
			m[key] = &coreGroup{pressure: p, count: 1, firstCore: c}
			order = append(order, key)
			continue
		}
		g.count++
	}
	out := make([]coreGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *m[k])
	}
	return out
}

// Volumes aggregates measured memory volumes in bytes.
type Volumes struct {
	Read  float64
	Write float64
	ItoM  float64
	NT    float64
}

// Add accumulates o scaled by w.
func (v *Volumes) Add(o Volumes, w float64) {
	v.Read += w * o.Read
	v.Write += w * o.Write
	v.ItoM += w * o.ItoM
	v.NT += w * o.NT
}

func volumesOf(c memsim.Counts) Volumes {
	return Volumes{
		Read:  float64(c.ReadBytes()),
		Write: float64(c.WriteBytes()),
		ItoM:  float64(c.ItoMLines * 64),
		NT:    float64(c.NTLines * 64),
	}
}

// StoreOptions configures the store-ratio benchmark.
type StoreOptions struct {
	Machine *machine.Spec
	// Streams is the number of independent store streams (1-3).
	Streams int
	// NT selects non-temporal stores.
	NT bool
	// Cores is the number of active cores (compact pinning).
	Cores int
	// BytesPerStream is the volume stored per core per stream.
	// Default 8 MiB (the 10 GB of the paper is traffic-equivalent).
	BytesPerStream int64
	// PFOff disables hardware prefetchers.
	PFOff bool
	Seed  uint64
}

// StoreResult is the outcome of a store-ratio run.
type StoreResult struct {
	Cores  int
	Stored float64 // explicitly initiated store volume, bytes
	V      Volumes
}

// Ratio returns actual memory traffic over explicitly initiated traffic
// (the y axis of Figs. 5, 9, 10): 1.0 = all write-allocates evaded,
// 2.0 = every store pays a read-for-ownership.
func (r StoreResult) Ratio() float64 {
	if r.Stored == 0 {
		return 0
	}
	return (r.V.Read + r.V.Write) / r.Stored
}

// RunStore executes the store microbenchmark.
//
//lint:allow ctxflow bounded single-scenario kernel; campaign cancellation is scenario-granular at the sweep engine
func RunStore(o StoreOptions) (StoreResult, error) {
	if err := checkCores(o.Machine, o.Cores); err != nil {
		return StoreResult{}, err
	}
	if o.Streams < 1 {
		o.Streams = 1
	}
	if o.BytesPerStream == 0 {
		o.BytesPerStream = 8 << 20
	}
	if o.Seed == 0 {
		o.Seed = 0x57073
	}
	spec := o.Machine

	var res StoreResult
	res.Cores = o.Cores
	res.Stored = float64(o.Cores) * float64(o.Streams) * float64(o.BytesPerStream)

	groups := groupCores(spec, o.Cores)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g coreGroup) {
			defer wg.Done()
			h := memsim.New(spec)
			h.SetPrefetch(!o.PFOff)
			e := core.NewStoreEngine(h, spec)
			e.Seed(o.Seed ^ uint64(g.firstCore+1)*0x9e3779b97f4a7c15)
			nt := make([]bool, o.Streams)
			for i := range nt {
				nt[i] = o.NT
			}
			e.ConfigureStreams(o.Streams, nt)
			e.SetContext(core.Context{
				Pressure:      g.pressure,
				NodeFraction:  float64(o.Cores) / float64(spec.Cores()),
				ActiveSockets: spec.ActiveSockets(o.Cores),
				Class:         machine.ClassPureStore,
				StoreStreams:  o.Streams,
				Eligible:      true,
				PFOn:          !o.PFOff,
			})
			// Independent aligned streams with a generous gap.
			gap := (o.BytesPerStream + (1 << 20)) &^ 63
			for s := 0; s < o.Streams; s++ {
				base := int64(1<<24) + int64(s)*gap
				e.StoreRange(s, base, o.BytesPerStream)
			}
			e.CloseAll()
			h.Flush()
			mu.Lock()
			res.V.Add(volumesOf(h.Counts()), float64(g.count))
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return res, nil
}

// CopyOptions configures the copy / halo-copy benchmark (a(:) = b(:)).
type CopyOptions struct {
	Machine *machine.Spec
	Cores   int
	// Inner is the batch length in elements; Halo elements are skipped
	// between batches (Fig. 8: 216/530/1920 with halo 0-17). Inner 0
	// means one contiguous stream.
	Inner int
	Halo  int
	// Elems is the total number of elements copied per core.
	Elems int64
	// NT uses non-temporal stores for the destination.
	NT    bool
	PFOff bool
	Seed  uint64
}

// CopyResult is the outcome of a copy benchmark.
type CopyResult struct {
	Cores int
	Iters float64 // elements actually copied (node aggregate)
	V     Volumes
}

// ReadPerIt returns read bytes per copied element (Fig. 6 y axis).
func (r CopyResult) ReadPerIt() float64 { return r.V.Read / r.Iters }

// WritePerIt returns write bytes per copied element.
func (r CopyResult) WritePerIt() float64 { return r.V.Write / r.Iters }

// ItoMPerIt returns SpecI2M volume per copied element.
func (r CopyResult) ItoMPerIt() float64 { return r.V.ItoM / r.Iters }

// RWRatio returns the read/write volume ratio (Figs. 8 and 11 y axis).
func (r CopyResult) RWRatio() float64 {
	if r.V.Write == 0 {
		return 0
	}
	return r.V.Read / r.V.Write
}

// RunCopy executes the copy benchmark.
//
//lint:allow ctxflow bounded single-scenario kernel; campaign cancellation is scenario-granular at the sweep engine
func RunCopy(o CopyOptions) (CopyResult, error) {
	if err := checkCores(o.Machine, o.Cores); err != nil {
		return CopyResult{}, err
	}
	if o.Elems == 0 {
		o.Elems = 1 << 20
	}
	if o.Seed == 0 {
		o.Seed = 0xC0B1
	}
	spec := o.Machine
	inner := o.Inner
	if inner <= 0 {
		inner = int(o.Elems)
	}

	var res CopyResult
	res.Cores = o.Cores
	res.Iters = float64(o.Cores) * float64(o.Elems)

	groups := groupCores(spec, o.Cores)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g coreGroup) {
			defer wg.Done()
			h := memsim.New(spec)
			h.SetPrefetch(!o.PFOff)
			e := core.NewStoreEngine(h, spec)
			e.Seed(o.Seed ^ uint64(g.firstCore+1)*0x9e3779b97f4a7c15)
			e.ConfigureStreams(1, []bool{o.NT})
			e.SetContext(core.Context{
				Pressure:      g.pressure,
				NodeFraction:  float64(o.Cores) / float64(spec.Cores()),
				ActiveSockets: spec.ActiveSockets(o.Cores),
				Class:         machine.ClassCopy,
				StoreStreams:  1,
				Eligible:      true,
				PFOn:          !o.PFOff,
			})

			period := int64(inner + o.Halo)
			aBase := int64(1 << 24)
			bBase := aBase + (o.Elems*8*2+(1<<20))&^63

			copied := int64(0)
			pos := int64(0)
			for copied < o.Elems {
				n := int64(inner)
				if o.Elems-copied < n {
					n = o.Elems - copied
				}
				aAddr := aBase + pos*8
				bAddr := bBase + pos*8
				lo := bAddr >> 6
				h.AccessRange(lo, (bAddr+n*8-1)>>6-lo+1, memsim.AccessLoad)
				e.StoreRange(0, aAddr, n*8)
				copied += n
				pos += period
			}
			e.CloseAll()
			h.Flush()
			mu.Lock()
			res.V.Add(volumesOf(h.Counts()), float64(g.count))
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return res, nil
}

func checkCores(spec *machine.Spec, cores int) error {
	if spec == nil {
		return fmt.Errorf("bench: nil machine spec")
	}
	if cores < 1 || cores > spec.Cores() {
		return fmt.Errorf("bench: core count %d outside 1..%d", cores, spec.Cores())
	}
	return nil
}
