// Package likwid emulates the measurement surface of the LIKWID tool
// suite used throughout the paper: performance groups (MEM, MEM_DP, and
// the custom SPECI2M group of Listing 4), uncore event aggregation
// (CAS_COUNT_RD/WR at the MBOXes, TOR_INSERTS_IA_ITOM at the CBOXes),
// derived metrics, likwid-perfctr-style formatted output, and the
// likwid-features prefetcher toggles.
//
// The "hardware" behind the events is internal/memsim; a Session wraps
// one or more simulated cores and renders the same tables an operator
// would read off likwid-perfctr.
package likwid

import (
	"fmt"
	"sort"
	"strings"

	"cloversim/internal/memsim"
)

// Event names, following Intel/LIKWID nomenclature for ICX and SPR.
const (
	EventCASCountRD     = "CAS_COUNT_RD"            // memory controller reads
	EventCASCountWR     = "CAS_COUNT_WR"            // memory controller writes
	EventTORInsertsIToM = "TOR_INSERTS_IA_ITOM"     // SpecI2M claims (CHA)
	EventL1Hits         = "MEM_LOAD_RETIRED_L1_HIT" // core-side cache hits
	EventL2Hits         = "MEM_LOAD_RETIRED_L2_HIT"
	EventL3Hits         = "MEM_LOAD_RETIRED_L3_HIT"
	EventPrefetchFills  = "L2_LINES_IN_PREFETCH"
	EventNTStores       = "OCR_STREAMING_WR"
	EventFlopsDP        = "FP_ARITH_INST_RETIRED_SCALAR_DOUBLE"
	EventInstrRetired   = "INSTR_RETIRED_ANY"
)

// Group is a performance group: a set of events plus derived metrics.
type Group struct {
	Name        string
	Description string
	Events      []string
	// Metrics maps metric name to a function over raw event counts and
	// the measurement time.
	Metrics []Metric
}

// Metric is one derived quantity of a group.
type Metric struct {
	Name string
	Unit string
	Eval func(ev map[string]float64, seconds float64) float64
}

// lineBytes is the cache-line size used for volume conversion.
const lineBytes = 64

func volGB(lines float64) float64 { return lines * lineBytes * 1e-9 }

// MEM returns the MEM group: read/write data volume and bandwidth.
func MEM() *Group {
	return &Group{
		Name:        "MEM",
		Description: "Memory read/write data volume and bandwidth",
		Events:      []string{EventCASCountRD, EventCASCountWR},
		Metrics: []Metric{
			{"Memory read data volume [GBytes]", "GB", func(ev map[string]float64, _ float64) float64 {
				return volGB(ev[EventCASCountRD])
			}},
			{"Memory write data volume [GBytes]", "GB", func(ev map[string]float64, _ float64) float64 {
				return volGB(ev[EventCASCountWR])
			}},
			{"Memory data volume [GBytes]", "GB", func(ev map[string]float64, _ float64) float64 {
				return volGB(ev[EventCASCountRD] + ev[EventCASCountWR])
			}},
			{"Memory bandwidth [MBytes/s]", "MB/s", func(ev map[string]float64, s float64) float64 {
				if s <= 0 {
					return 0
				}
				return (ev[EventCASCountRD] + ev[EventCASCountWR]) * lineBytes * 1e-6 / s
			}},
		},
	}
}

// MEMDP returns the MEM_DP group: MEM plus double-precision flops.
func MEMDP() *Group {
	g := MEM()
	g.Name = "MEM_DP"
	g.Description = "Memory volume/bandwidth and double-precision flops"
	g.Events = append(g.Events, EventFlopsDP)
	g.Metrics = append(g.Metrics,
		Metric{"DP [MFLOP/s]", "MFLOP/s", func(ev map[string]float64, s float64) float64 {
			if s <= 0 {
				return 0
			}
			return ev[EventFlopsDP] * 1e-6 / s
		}},
		Metric{"Operational intensity [FLOP/byte]", "F/B", func(ev map[string]float64, _ float64) float64 {
			v := (ev[EventCASCountRD] + ev[EventCASCountWR]) * lineBytes
			if v == 0 {
				return 0
			}
			return ev[EventFlopsDP] / v
		}},
	)
	return g
}

// SPECI2M returns the custom group of the paper's Listing 4: memory
// volumes plus the SpecI2M claim volume counted at the CHAs.
func SPECI2M() *Group {
	g := MEM()
	g.Name = "SPECI2M"
	g.Description = "Memory bandwidth in MBytes/s including SpecI2M"
	g.Events = append(g.Events, EventTORInsertsIToM)
	g.Metrics = append(g.Metrics,
		Metric{"SpecI2M data volume [GBytes]", "GB", func(ev map[string]float64, _ float64) float64 {
			return volGB(ev[EventTORInsertsIToM])
		}},
		Metric{"SpecI2M evasion ratio", "", func(ev map[string]float64, _ float64) float64 {
			wr := ev[EventCASCountWR]
			if wr == 0 {
				return 0
			}
			return ev[EventTORInsertsIToM] / wr
		}},
	)
	return g
}

// Groups lists all built-in groups by name.
func Groups() map[string]*Group {
	return map[string]*Group{"MEM": MEM(), "MEM_DP": MEMDP(), "SPECI2M": SPECI2M()}
}

// GroupByName resolves a group name (case-insensitive).
func GroupByName(name string) (*Group, bool) {
	g, ok := Groups()[strings.ToUpper(name)]
	return g, ok
}

// EventsFromCounts converts simulator counters into raw event counts.
// Flops are attributed externally (the simulator replays addresses, not
// arithmetic), hence the explicit parameter.
func EventsFromCounts(c memsim.Counts, flops int64) map[string]float64 {
	return map[string]float64{
		EventCASCountRD:     float64(c.MemReadLines),
		EventCASCountWR:     float64(c.MemWriteLines),
		EventTORInsertsIToM: float64(c.ItoMLines),
		EventL1Hits:         float64(c.L1Hits),
		EventL2Hits:         float64(c.L2Hits),
		EventL3Hits:         float64(c.L3Hits),
		EventPrefetchFills:  float64(c.PFLines),
		EventNTStores:       float64(c.NTLines),
		EventFlopsDP:        float64(flops),
		EventInstrRetired:   float64(c.Loads + c.RFOs),
	}
}

// Measurement is one region's rendered result.
type Measurement struct {
	Region  string
	Group   string
	Seconds float64
	Events  map[string]float64
	Metrics map[string]float64
}

// Measure evaluates a group over simulator counts.
func Measure(g *Group, region string, c memsim.Counts, flops int64, seconds float64) Measurement {
	ev := EventsFromCounts(c, flops)
	m := Measurement{
		Region:  region,
		Group:   g.Name,
		Seconds: seconds,
		Events:  map[string]float64{},
		Metrics: map[string]float64{},
	}
	for _, name := range g.Events {
		m.Events[name] = ev[name]
	}
	for _, metric := range g.Metrics {
		m.Metrics[metric.Name] = metric.Eval(ev, seconds)
	}
	return m
}

// Format renders the measurement in the likwid-perfctr table style.
func (m Measurement) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Region %s, Group %s\n", m.Region, m.Group)
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", 58))
	fmt.Fprintf(&b, "| %-40s | %13s |\n", "Event", "Count")
	names := make([]string, 0, len(m.Events))
	for n := range m.Events {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "| %-40s | %13.0f |\n", n, m.Events[n])
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", 58))
	fmt.Fprintf(&b, "| %-40s | %13s |\n", "Metric", "Value")
	names = names[:0]
	for n := range m.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "| %-40s | %13.4f |\n", n, m.Metrics[n])
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", 58))
	return b.String()
}

// Features emulates likwid-features: named prefetcher toggles.
type Features struct {
	HWPrefetcher  bool // L2 streamer
	CLPrefetcher  bool // adjacent cache line
	DCUPrefetcher bool // L1 streamer (modeled as part of HW)
	IPPrefetcher  bool // L1 IP-stride (modeled as part of HW)
}

// AllOn returns the default feature state.
func AllOn() Features {
	return Features{HWPrefetcher: true, CLPrefetcher: true, DCUPrefetcher: true, IPPrefetcher: true}
}

// Parse applies a likwid-features-style list ("HW_PREFETCHER,CL_PREFETCHER")
// with enable=true for -e and false for -d.
func (f Features) Parse(list string, enable bool) (Features, error) {
	for _, tok := range strings.Split(list, ",") {
		switch strings.TrimSpace(strings.ToUpper(tok)) {
		case "HW_PREFETCHER":
			f.HWPrefetcher = enable
		case "CL_PREFETCHER":
			f.CLPrefetcher = enable
		case "DCU_PREFETCHER":
			f.DCUPrefetcher = enable
		case "IP_PREFETCHER":
			f.IPPrefetcher = enable
		case "":
		default:
			return f, fmt.Errorf("likwid: unknown feature %q", tok)
		}
	}
	return f, nil
}

// AnyStreamerOn reports whether any streaming prefetcher remains active
// (the simulator models the streamers collectively).
func (f Features) AnyStreamerOn() bool {
	return f.HWPrefetcher || f.DCUPrefetcher || f.IPPrefetcher
}

// Apply configures a hierarchy according to the feature state.
func (f Features) Apply(h *memsim.Hierarchy) {
	h.SetPrefetch(f.AnyStreamerOn())
}
