package likwid

import (
	"math"
	"strings"
	"testing"

	"cloversim/internal/machine"
	"cloversim/internal/memsim"
)

func TestGroupsExist(t *testing.T) {
	for _, name := range []string{"MEM", "MEM_DP", "SPECI2M"} {
		g, ok := GroupByName(name)
		if !ok {
			t.Fatalf("group %s missing", name)
		}
		if len(g.Events) == 0 || len(g.Metrics) == 0 {
			t.Errorf("group %s empty", name)
		}
	}
	if _, ok := GroupByName("mem_dp"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := GroupByName("L2CACHE"); ok {
		t.Error("unknown group resolved")
	}
}

func TestMeasureMEM(t *testing.T) {
	c := memsim.Counts{MemReadLines: 1000, MemWriteLines: 500}
	m := Measure(MEM(), "r0", c, 0, 2.0)
	if got := m.Metrics["Memory read data volume [GBytes]"]; math.Abs(got-64000e-9) > 1e-15 {
		t.Errorf("read volume = %g", got)
	}
	if got := m.Metrics["Memory bandwidth [MBytes/s]"]; math.Abs(got-1500*64*1e-6/2) > 1e-12 {
		t.Errorf("bandwidth = %g", got)
	}
}

func TestMeasureSPECI2M(t *testing.T) {
	// Listing 4's headline metric: ItoM volume at the CHAs.
	c := memsim.Counts{MemReadLines: 10, MemWriteLines: 1000, ItoMLines: 900}
	m := Measure(SPECI2M(), "copy", c, 0, 1)
	if got := m.Metrics["SpecI2M data volume [GBytes]"]; math.Abs(got-900*64e-9) > 1e-15 {
		t.Errorf("ItoM volume = %g", got)
	}
	if got := m.Metrics["SpecI2M evasion ratio"]; math.Abs(got-0.9) > 1e-12 {
		t.Errorf("evasion ratio = %g", got)
	}
}

func TestMeasureMEMDP(t *testing.T) {
	c := memsim.Counts{MemReadLines: 100, MemWriteLines: 100}
	m := Measure(MEMDP(), "k", c, 12800, 1)
	if got := m.Metrics["DP [MFLOP/s]"]; math.Abs(got-0.0128) > 1e-12 {
		t.Errorf("MFLOP/s = %g", got)
	}
	if got := m.Metrics["Operational intensity [FLOP/byte]"]; math.Abs(got-1.0) > 1e-12 {
		t.Errorf("intensity = %g", got)
	}
}

func TestZeroTimeGuards(t *testing.T) {
	m := Measure(MEMDP(), "z", memsim.Counts{}, 0, 0)
	for name, v := range m.Metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("metric %s = %g at zero time", name, v)
		}
	}
}

func TestFormat(t *testing.T) {
	m := Measure(SPECI2M(), "am04", memsim.Counts{MemReadLines: 42}, 0, 1)
	out := m.Format()
	for _, want := range []string{"Region am04", "CAS_COUNT_RD", "SpecI2M data volume", "| Metric"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestEventsFromCounts(t *testing.T) {
	c := memsim.Counts{
		MemReadLines: 1, MemWriteLines: 2, ItoMLines: 3, NTLines: 4,
		PFLines: 5, L1Hits: 6, L2Hits: 7, L3Hits: 8, Loads: 9, RFOs: 10,
	}
	ev := EventsFromCounts(c, 11)
	checks := map[string]float64{
		EventCASCountRD: 1, EventCASCountWR: 2, EventTORInsertsIToM: 3,
		EventNTStores: 4, EventPrefetchFills: 5, EventL1Hits: 6,
		EventL2Hits: 7, EventL3Hits: 8, EventFlopsDP: 11, EventInstrRetired: 19,
	}
	for name, want := range checks {
		if ev[name] != want {
			t.Errorf("%s = %g, want %g", name, ev[name], want)
		}
	}
}

func TestFeaturesParse(t *testing.T) {
	f := AllOn()
	f, err := f.Parse("HW_PREFETCHER,CL_PREFETCHER", false)
	if err != nil {
		t.Fatal(err)
	}
	if f.HWPrefetcher || f.CLPrefetcher {
		t.Error("disable list not applied")
	}
	if !f.AnyStreamerOn() { // DCU and IP still on
		t.Error("DCU/IP should keep the streamer model on")
	}
	f, err = f.Parse("dcu_prefetcher, ip_prefetcher", false)
	if err != nil {
		t.Fatal(err)
	}
	if f.AnyStreamerOn() {
		t.Error("all streamers disabled but AnyStreamerOn")
	}
	if _, err := f.Parse("TURBO_BOOST", false); err == nil {
		t.Error("unknown feature accepted")
	}
}

func TestFeaturesApply(t *testing.T) {
	h := memsim.New(machine.ICX8360Y())
	f := AllOn()
	f, _ = f.Parse("HW_PREFETCHER,CL_PREFETCHER,DCU_PREFETCHER,IP_PREFETCHER", false)
	f.Apply(h)
	if h.PrefetchOn() {
		t.Error("prefetch still on after disabling all features")
	}
	AllOn().Apply(h)
	if !h.PrefetchOn() {
		t.Error("prefetch off after enabling all features")
	}
}
