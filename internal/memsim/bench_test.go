package memsim

import (
	"testing"

	"cloversim/internal/machine"
)

// Benchmarks for the cache-hierarchy hot operations that dominate
// every traffic study: the per-line Load/RFO/ClaimI2M/WriteNT paths.
//
//	go test -bench BenchmarkHierarchy ./internal/memsim

const benchLines = 1 << 14 // 1 MiB of cache lines: spills L1/L2, busy L3

func benchHierarchy() *Hierarchy { return New(machine.ICX8360Y()) }

func BenchmarkHierarchyLoad(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Load(int64(i % benchLines))
	}
	if h.Counts().MemReadLines == 0 {
		b.Fatal("no memory traffic simulated")
	}
}

func BenchmarkHierarchyRFO(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.RFO(int64(i % benchLines))
	}
}

func BenchmarkHierarchyClaimI2M(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ClaimI2M(int64(i % benchLines))
	}
}

func BenchmarkHierarchyWriteNT(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.WriteNT(int64(i % benchLines))
	}
}

// BenchmarkHierarchyStencilMix approximates a stencil loop's access
// pattern: two streamed reads plus one written stream per iteration.
func BenchmarkHierarchyStencilMix(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		line := int64(i % benchLines)
		h.Load(line)
		h.Load(line + benchLines)
		h.RFO(line + 2*benchLines)
	}
}

func BenchmarkHierarchyFlush(b *testing.B) {
	h := benchHierarchy()
	for i := int64(0); i < benchLines; i++ {
		h.RFO(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Flush()
	}
}
