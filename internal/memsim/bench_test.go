package memsim

import (
	"testing"

	"cloversim/internal/machine"
)

// Benchmarks for the cache-hierarchy hot operations that dominate
// every traffic study: the per-line Load/RFO/ClaimI2M/WriteNT paths.
//
//	go test -bench BenchmarkHierarchy ./internal/memsim

const benchLines = 1 << 14 // 1 MiB of cache lines: spills L1/L2, busy L3

func benchHierarchy() *Hierarchy { return New(machine.ICX8360Y()) }

func BenchmarkHierarchyLoad(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Load(int64(i % benchLines))
	}
	if h.Counts().MemReadLines == 0 {
		b.Fatal("no memory traffic simulated")
	}
}

func BenchmarkHierarchyRFO(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.RFO(int64(i % benchLines))
	}
}

func BenchmarkHierarchyClaimI2M(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ClaimI2M(int64(i % benchLines))
	}
}

func BenchmarkHierarchyWriteNT(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.WriteNT(int64(i % benchLines))
	}
}

// BenchmarkHierarchyStencilMix approximates a stencil loop's access
// pattern: two streamed reads plus one written stream per iteration.
func BenchmarkHierarchyStencilMix(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		line := int64(i % benchLines)
		h.Load(line)
		h.Load(line + benchLines)
		h.RFO(line + 2*benchLines)
	}
}

// Batched-path benchmarks: the same access streams as the per-line
// benchmarks above, replayed through AccessRange in spans of rangeLen
// lines. Compare e.g. HierarchyLoad vs HierarchyLoadRange (both report
// ns per simulated line access):
//
//	go test -bench 'BenchmarkHierarchy(Load|RFO)' ./internal/memsim
const rangeLen = 256

func benchRange(b *testing.B, kind AccessKind) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i += rangeLen {
		h.AccessRange(int64(i%benchLines), rangeLen, kind)
	}
}

func BenchmarkHierarchyLoadRange(b *testing.B) {
	benchRange(b, AccessLoad)
}

func BenchmarkHierarchyRFORange(b *testing.B) {
	benchRange(b, AccessRFO)
}

func BenchmarkHierarchyClaimI2MRange(b *testing.B) {
	benchRange(b, AccessClaimI2M)
}

func BenchmarkHierarchyWriteNTRange(b *testing.B) {
	benchRange(b, AccessWriteNT)
}

// BenchmarkHierarchyStencilMixRange is BenchmarkHierarchyStencilMix on
// the batched API: two read streams and one written stream per span.
func BenchmarkHierarchyStencilMixRange(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i += rangeLen {
		line := int64(i % benchLines)
		h.AccessRange(line, rangeLen, AccessLoad)
		h.AccessRange(line+benchLines, rangeLen, AccessLoad)
		h.AccessRange(line+2*benchLines, rangeLen, AccessRFO)
	}
}

// Streaming-run benchmarks: whole-array sequential sweeps (the shape
// stream/jacobi/cloverleaf rows produce), long enough that the
// analytic tier's closed form applies. Each *Analytic/*Simulated pair
// runs the identical access stream with the tier forced on and off, so
// BENCH_sweep.json reports the two implementations of the same physics
// side by side (both in ns per simulated line access):
//
//	go test -bench 'StreamRange' ./internal/memsim
const streamLen = 1 << 20 // 64 MiB of lines: ~23x the whole ICX hierarchy

func benchStream(b *testing.B, kind AccessKind, mode AnalyticMode, expectTaken bool) {
	h := benchHierarchy()
	h.SetPrefetch(false)
	h.SetAnalytic(mode)
	b.ReportAllocs()
	start := int64(0)
	for i := 0; i < b.N; i += streamLen {
		// Fresh state per sweep: streaming kernels touch each array
		// once, and residue (dirty write-back state especially) would
		// turn the steady-state comparison into a residue comparison.
		h.Invalidate()
		h.AccessRange(start, streamLen, kind)
		start += streamLen
	}
	if mode == AnalyticForce {
		if as := h.AnalyticStats(); expectTaken && as.TakenRuns == 0 {
			b.Fatal("analytic benchmark never took the analytic path")
		} else if !expectTaken && as.TakenRuns != 0 {
			b.Fatal("fallback benchmark unexpectedly took the analytic path")
		}
	}
}

func BenchmarkHierarchyLoadStreamRangeAnalytic(b *testing.B) {
	benchStream(b, AccessLoad, AnalyticForce, true)
}

func BenchmarkHierarchyLoadStreamRangeSimulated(b *testing.B) {
	benchStream(b, AccessLoad, AnalyticOff, true)
}

// RFO streams past one L1 fill per set are NOT closed-form (their own
// dirty self-evictions cascade), so this pair documents fallback
// parity: the analytic tier must cost nothing on runs it rejects.
func BenchmarkHierarchyRFOStreamRangeAnalytic(b *testing.B) {
	benchStream(b, AccessRFO, AnalyticForce, false)
}

func BenchmarkHierarchyRFOStreamRangeSimulated(b *testing.B) {
	benchStream(b, AccessRFO, AnalyticOff, false)
}

func BenchmarkHierarchyClaimI2MStreamRangeAnalytic(b *testing.B) {
	benchStream(b, AccessClaimI2M, AnalyticForce, true)
}

func BenchmarkHierarchyClaimI2MStreamRangeSimulated(b *testing.B) {
	benchStream(b, AccessClaimI2M, AnalyticOff, true)
}

func BenchmarkHierarchyFlush(b *testing.B) {
	h := benchHierarchy()
	for i := int64(0); i < benchLines; i++ {
		h.RFO(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Flush()
	}
}
