package memsim

import (
	"testing"

	"cloversim/internal/machine"
)

// Benchmarks for the cache-hierarchy hot operations that dominate
// every traffic study: the per-line Load/RFO/ClaimI2M/WriteNT paths.
//
//	go test -bench BenchmarkHierarchy ./internal/memsim

const benchLines = 1 << 14 // 1 MiB of cache lines: spills L1/L2, busy L3

func benchHierarchy() *Hierarchy { return New(machine.ICX8360Y()) }

func BenchmarkHierarchyLoad(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Load(int64(i % benchLines))
	}
	if h.Counts().MemReadLines == 0 {
		b.Fatal("no memory traffic simulated")
	}
}

func BenchmarkHierarchyRFO(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.RFO(int64(i % benchLines))
	}
}

func BenchmarkHierarchyClaimI2M(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ClaimI2M(int64(i % benchLines))
	}
}

func BenchmarkHierarchyWriteNT(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.WriteNT(int64(i % benchLines))
	}
}

// BenchmarkHierarchyStencilMix approximates a stencil loop's access
// pattern: two streamed reads plus one written stream per iteration.
func BenchmarkHierarchyStencilMix(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		line := int64(i % benchLines)
		h.Load(line)
		h.Load(line + benchLines)
		h.RFO(line + 2*benchLines)
	}
}

// Batched-path benchmarks: the same access streams as the per-line
// benchmarks above, replayed through AccessRange in spans of rangeLen
// lines. Compare e.g. HierarchyLoad vs HierarchyLoadRange (both report
// ns per simulated line access):
//
//	go test -bench 'BenchmarkHierarchy(Load|RFO)' ./internal/memsim
const rangeLen = 256

func benchRange(b *testing.B, kind AccessKind) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i += rangeLen {
		h.AccessRange(int64(i%benchLines), rangeLen, kind)
	}
}

func BenchmarkHierarchyLoadRange(b *testing.B) {
	benchRange(b, AccessLoad)
}

func BenchmarkHierarchyRFORange(b *testing.B) {
	benchRange(b, AccessRFO)
}

func BenchmarkHierarchyClaimI2MRange(b *testing.B) {
	benchRange(b, AccessClaimI2M)
}

func BenchmarkHierarchyWriteNTRange(b *testing.B) {
	benchRange(b, AccessWriteNT)
}

// BenchmarkHierarchyStencilMixRange is BenchmarkHierarchyStencilMix on
// the batched API: two read streams and one written stream per span.
func BenchmarkHierarchyStencilMixRange(b *testing.B) {
	h := benchHierarchy()
	b.ReportAllocs()
	for i := 0; i < b.N; i += rangeLen {
		line := int64(i % benchLines)
		h.AccessRange(line, rangeLen, AccessLoad)
		h.AccessRange(line+benchLines, rangeLen, AccessLoad)
		h.AccessRange(line+2*benchLines, rangeLen, AccessRFO)
	}
}

func BenchmarkHierarchyFlush(b *testing.B) {
	h := benchHierarchy()
	for i := int64(0); i < benchLines; i++ {
		h.RFO(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Flush()
	}
}
