package memsim

import (
	"testing"

	"cloversim/internal/machine"
)

// TestAdjacentLinePrefetch: with the adjacent-cache-line prefetcher
// enabled, a miss also fetches the buddy line (effectively doubling the
// line size, Sec. V-C).
func TestAdjacentLinePrefetch(t *testing.T) {
	spec := machine.ICX8360Y()
	spec.PF.AdjacentEnabled = true
	h := New(spec)

	h.Load(100) // even line: buddy is 101
	c := h.Counts()
	if c.MemReadLines != 2 {
		t.Fatalf("adjacent PF reads = %d, want 2 (line + buddy)", c.MemReadLines)
	}
	before := c
	h.Load(101) // must now hit (the buddy was prefetched into L3)
	c = h.Counts()
	if c.MemReadLines != before.MemReadLines {
		t.Fatal("buddy line was not resident")
	}
	if c.L3Hits != before.L3Hits+1 {
		t.Fatal("buddy should hit in L3")
	}
}

// TestAdjacentPFIncreasesStridedTraffic: strided access (one line used
// out of every two) doubles memory traffic with the adjacent prefetcher.
func TestAdjacentPFIncreasesStridedTraffic(t *testing.T) {
	on := machine.ICX8360Y()
	on.PF.AdjacentEnabled = true
	on.PF.StreamEnabled = false
	hOn := New(on)

	off := machine.ICX8360Y()
	off.PF.StreamEnabled = false
	hOff := New(off)

	for l := int64(0); l < 4000; l += 2 {
		hOn.Load(l)
		hOff.Load(l)
	}
	rOn, rOff := hOn.Counts().MemReadLines, hOff.Counts().MemReadLines
	if rOff != 2000 {
		t.Fatalf("baseline strided reads = %d", rOff)
	}
	if rOn < 3900 {
		t.Fatalf("adjacent PF strided reads = %d, want ~4000", rOn)
	}
}

// TestConflictMisses: more lines mapping to one set than its
// associativity thrash even though the total footprint is tiny.
func TestConflictMisses(t *testing.T) {
	spec := machine.ICX8360Y()
	h := New(spec)
	h.SetPrefetch(false)
	l1Sets := int64(64) // 48K/12/64
	l2Sets := int64(1024)
	l3Sets := int64(2048)
	_ = l2Sets
	// 40 lines all in L1 set 0 and (since 2048 | multiples) also
	// conflicting in L2/L3 sets: stride by l3Sets to hit the same set in
	// every level (l3Sets is a multiple of l1Sets).
	stride := l3Sets
	if stride%l1Sets != 0 {
		t.Fatal("test setup: stride must alias in L1 too")
	}
	const n = 40
	rounds := 10
	for r := 0; r < rounds; r++ {
		for i := int64(0); i < n; i++ {
			h.Load(i * stride)
		}
	}
	c := h.Counts()
	// 40 ways needed; L1 has 12, L2 20, L3 slice 12 — every level
	// thrashes, so most accesses go to memory despite a 2.5 KB footprint.
	if c.MemReadLines < int64(rounds*n)*7/10 {
		t.Fatalf("conflict thrashing expected: %d memory reads of %d accesses",
			c.MemReadLines, rounds*n)
	}
}
