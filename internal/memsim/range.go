package memsim

// AccessKind names one per-line hierarchy operation for batched replay.
// The kinds mirror the core.Backend methods one-to-one.
type AccessKind uint8

const (
	AccessLoad AccessKind = iota
	AccessRFO
	AccessClaimI2M
	AccessClaimL2
	AccessWriteNT
	AccessWriteNTReverted
	AccessWriteStreamed
)

func (k AccessKind) String() string {
	switch k {
	case AccessLoad:
		return "load"
	case AccessRFO:
		return "rfo"
	case AccessClaimI2M:
		return "claim-i2m"
	case AccessClaimL2:
		return "claim-l2"
	case AccessWriteNT:
		return "write-nt"
	case AccessWriteNTReverted:
		return "write-nt-reverted"
	case AccessWriteStreamed:
		return "write-streamed"
	}
	return "unknown"
}

// AccessRange performs n accesses of one kind to the consecutive lines
// start..start+n-1. It is semantically identical to calling the matching
// per-line method (Load, RFO, ClaimI2M, ...) in a loop — cache state and
// Counts are bit-identical, which the differential tests in
// range_test.go and analytic_test.go enforce — but runs on two stacked
// fast paths. Regular runs (see analytic.go) are solved in closed form,
// O(sets x ways) regardless of length. Everything else runs on the
// flattened simulation that exploits sequential-line locality: hits
// resolve via a predicted-way compare (a stream lands on the same way
// across consecutive sets), tag scans are unrolled, victim scans run
// only when a line is actually installed, and per-access counters are
// batched. Streaming loop nests spend most of their simulated accesses
// here.
func (h *Hierarchy) AccessRange(start, n int64, kind AccessKind) {
	if n <= 0 {
		return
	}
	switch kind {
	case AccessWriteNT:
		// WriteNT touches no cache state: pure counter batch.
		h.c.NTLines += n
		h.c.MemWriteLines += n
		return
	case AccessWriteStreamed:
		h.c.WSLines += n
		h.c.MemWriteLines += n
		return
	case AccessLoad:
		h.c.Loads += n
	case AccessRFO:
		h.c.RFOs += n
	case AccessWriteNTReverted:
		h.c.NTReverted += n
		h.c.RFOs += n
	}
	if h.amode != AnalyticOff && h.tryAnalytic(start, n, kind) {
		return
	}
	switch kind {
	case AccessLoad:
		h.accessRange(start, n, false, true)
	case AccessRFO, AccessWriteNTReverted:
		h.accessRange(start, n, true, false)
	case AccessClaimI2M:
		for line := start; line < start+n; line++ {
			h.claimI2MFast(line)
		}
	case AccessClaimL2:
		for line := start; line < start+n; line++ {
			h.claimL2Fast(line)
		}
	}
}

// RFORange implements core.RangeBackend.
func (h *Hierarchy) RFORange(start, n int64) { h.AccessRange(start, n, AccessRFO) }

// ClaimI2MRange implements core.RangeBackend.
func (h *Hierarchy) ClaimI2MRange(start, n int64) { h.AccessRange(start, n, AccessClaimI2M) }

// ClaimL2Range implements core.RangeBackend.
func (h *Hierarchy) ClaimL2Range(start, n int64) { h.AccessRange(start, n, AccessClaimL2) }

// WriteStreamedRange implements core.RangeBackend.
func (h *Hierarchy) WriteStreamedRange(start, n int64) { h.AccessRange(start, n, AccessWriteStreamed) }

// WriteNTRange implements core.RangeBackend.
func (h *Hierarchy) WriteNTRange(start, n int64) { h.AccessRange(start, n, AccessWriteNT) }

// WriteNTRevertedRange implements core.RangeBackend.
func (h *Hierarchy) WriteNTRevertedRange(start, n int64) {
	h.AccessRange(start, n, AccessWriteNTReverted)
}

// accessRange is the batched equivalent of n calls to access() on
// consecutive lines (minus the Loads/RFOs counter, which the caller
// batches). The L1 probe fuses hit detection with victim selection —
// every L1 miss installs into L1, so the victim scan is never wasted;
// the fused slot v1 stays valid on the hit paths because nothing below
// mutates L1 before the install. On a full miss with active
// prefetchers, memFetch may touch any level, so that case falls back
// to the exact per-line miss sequence with victims recomputed.
func (h *Hierarchy) accessRange(start, n int64, dirty, allowPF bool) {
	l1, l2, l3 := h.l1, h.l2, h.l3
	fusedMiss := !allowPF || (!h.pfOn && !h.adjacentOn)
	for line := start; line < start+n; line++ {
		v1, hit := l1.probe(line)
		if hit {
			h.c.L1Hits++
			if dirty {
				l1.dirty[v1] = true
			}
			continue
		}
		if _, hit := l2.lookupFast(line); hit {
			h.c.L2Hits++
			if ev, d := l1.installAt(v1, line, dirty); d && ev >= 0 {
				h.writebackToL2Fast(ev)
			}
			continue
		}
		if _, hit := l3.lookupFast(line); hit {
			h.c.L3Hits++
			if ev, d := l2.installFast(line, false); d && ev >= 0 {
				h.writebackToL3Fast(ev)
			}
			if ev, d := l1.installAt(v1, line, dirty); d && ev >= 0 {
				h.writebackToL2Fast(ev)
			}
			continue
		}
		if fusedMiss {
			h.c.MemReadLines++
			if ev, d := l3.installFast(line, false); d && ev >= 0 {
				h.c.MemWriteLines++
			}
			if ev, d := l2.installFast(line, false); d && ev >= 0 {
				h.writebackToL3Fast(ev)
			}
			if ev, d := l1.installAt(v1, line, dirty); d && ev >= 0 {
				h.writebackToL2Fast(ev)
			}
			continue
		}
		h.memFetchFast(line, allowPF)
		h.installThroughFast(line, dirty)
	}
}

// The Fast install/write-back/prefetch chain below mirrors the per-line
// chain operation for operation — same probe order, same LRU clock
// increments, same short-circuiting — swapping only the scan internals
// (unrolled tag scans, presliced victim scans).

// installToL1Fast is installToL1 on the fast chain.
func (h *Hierarchy) installToL1Fast(line int64, dirty bool) {
	if ev, d := h.l1.installFast(line, dirty); d && ev >= 0 {
		h.writebackToL2Fast(ev)
	}
}

// installL2L1Fast is installL2L1 on the fast chain.
func (h *Hierarchy) installL2L1Fast(line int64, dirty bool) {
	if ev, d := h.l2.installFast(line, false); d && ev >= 0 {
		h.writebackToL3Fast(ev)
	}
	h.installToL1Fast(line, dirty)
}

// installThroughFast is installThrough on the fast chain.
func (h *Hierarchy) installThroughFast(line int64, dirty bool) {
	if ev, d := h.l3.installFast(line, false); d && ev >= 0 {
		h.c.MemWriteLines++
	}
	h.installL2L1Fast(line, dirty)
}

// writebackToL2Fast is writebackToL2 on the fast chain.
func (h *Hierarchy) writebackToL2Fast(line int64) {
	if slot, hit := h.l2.lookupWB(line); hit {
		h.l2.dirty[slot] = true
		return
	}
	if ev, d := h.l2.installFast(line, true); d && ev >= 0 {
		h.writebackToL3Fast(ev)
	}
}

// writebackToL3Fast is writebackToL3 on the fast chain.
func (h *Hierarchy) writebackToL3Fast(line int64) {
	if slot, hit := h.l3.lookupWB(line); hit {
		h.l3.dirty[slot] = true
		return
	}
	if ev, d := h.l3.installFast(line, true); d && ev >= 0 {
		h.c.MemWriteLines++
	}
}

// memFetchFast is memFetch on the fast chain.
func (h *Hierarchy) memFetchFast(line int64, allowPF bool) {
	h.c.MemReadLines++
	if !allowPF {
		return
	}
	if h.adjacentOn {
		buddy := line ^ 1
		_, l3hit := h.l3.lookupScan(buddy)
		if !l3hit {
			if _, l2hit := h.l2.lookupScan(buddy); !l2hit {
				h.c.MemReadLines++
				h.c.PFLines++
				if ev, d := h.l3.installFast(buddy, false); d && ev >= 0 {
					h.c.MemWriteLines++
				}
			}
		}
	}
	if h.pfOn {
		h.prefetchFast(line)
	}
}

// prefetchFast is prefetch on the fast chain.
func (h *Hierarchy) prefetchFast(line int64) {
	armed := false
	for i := range h.pfSlots {
		if h.pfSlots[i] == line-1 || h.pfSlots[i] == line-2 {
			h.pfSlots[i] = line
			armed = true
			break
		}
	}
	if !armed {
		h.pfSlots[h.pfNext] = line
		h.pfNext = (h.pfNext + 1) % pfSlotCount
		return
	}
	for d := int64(1); d <= h.pfDist; d++ {
		l := line + d
		if _, hit := h.l3.lookupScan(l); hit {
			continue
		}
		if _, hit := h.l2.lookupScan(l); hit {
			continue
		}
		if _, hit := h.l1.lookupScan(l); hit {
			continue
		}
		h.c.MemReadLines++
		h.c.PFLines++
		if ev, dd := h.l3.installFast(l, false); dd && ev >= 0 {
			h.c.MemWriteLines++
		}
	}
}

// claimI2MFast is ClaimI2M on the fast chain.
func (h *Hierarchy) claimI2MFast(line int64) {
	h.c.ItoMLines++
	if slot, hit := h.l1.lookupScan(line); hit {
		h.l1.tags[slot] = -1
		h.l1.dirty[slot] = false
		h.l1.vqClear(line)
	}
	if slot, hit := h.l2.lookupScan(line); hit {
		h.l2.tags[slot] = -1
		h.l2.dirty[slot] = false
		h.l2.vqClear(line)
	}
	if slot, hit := h.l3.lookupFast(line); hit {
		h.l3.dirty[slot] = true
		return
	}
	if ev, d := h.l3.installFast(line, true); d && ev >= 0 {
		h.c.MemWriteLines++
	}
}

// claimL2Fast is ClaimL2 on the fast chain.
func (h *Hierarchy) claimL2Fast(line int64) {
	h.c.ItoMLines++
	if slot, hit := h.l1.lookupScan(line); hit {
		h.l1.tags[slot] = -1
		h.l1.dirty[slot] = false
		h.l1.vqClear(line)
	}
	if slot, hit := h.l2.lookupFast(line); hit {
		h.l2.dirty[slot] = true
		return
	}
	if ev, d := h.l2.installFast(line, true); d && ev >= 0 {
		h.writebackToL3Fast(ev)
	}
}
