package memsim

import (
	"testing"
	"testing/quick"

	"cloversim/internal/machine"
)

func newH() *Hierarchy { return New(machine.ICX8360Y()) }

func TestColdLoadMissesToMemory(t *testing.T) {
	h := newH()
	h.SetPrefetch(false)
	h.Load(100)
	c := h.Counts()
	if c.MemReadLines != 1 || c.L1Hits != 0 {
		t.Fatalf("cold load: %+v", c)
	}
	h.Load(100)
	c = h.Counts()
	if c.MemReadLines != 1 || c.L1Hits != 1 {
		t.Fatalf("warm load should hit L1: %+v", c)
	}
}

func TestCleanEvictionsCostNothing(t *testing.T) {
	h := newH()
	h.SetPrefetch(false)
	// Stream far more lines than the hierarchy holds.
	for l := int64(0); l < 200000; l++ {
		h.Load(l)
	}
	c := h.Counts()
	if c.MemReadLines != 200000 {
		t.Fatalf("streaming reads = %d, want 200000", c.MemReadLines)
	}
	if c.MemWriteLines != 0 {
		t.Fatalf("clean data wrote %d lines back", c.MemWriteLines)
	}
}

func TestDirtyLineWrittenBackExactlyOnce(t *testing.T) {
	h := newH()
	h.SetPrefetch(false)
	const n = 100000
	for l := int64(0); l < n; l++ {
		h.RFO(l)
	}
	h.Flush()
	c := h.Counts()
	if c.MemReadLines != n {
		t.Fatalf("RFO reads = %d, want %d", c.MemReadLines, n)
	}
	if c.MemWriteLines != n {
		t.Fatalf("dirty write-backs = %d, want exactly %d", c.MemWriteLines, n)
	}
}

func TestClaimI2MSkipsTheRead(t *testing.T) {
	h := newH()
	const n = 50000
	for l := int64(0); l < n; l++ {
		h.ClaimI2M(l)
	}
	h.Flush()
	c := h.Counts()
	if c.MemReadLines != 0 {
		t.Fatalf("ItoM claims read %d lines", c.MemReadLines)
	}
	if c.MemWriteLines != n || c.ItoMLines != n {
		t.Fatalf("claims: writes %d itom %d, want %d", c.MemWriteLines, c.ItoMLines, n)
	}
}

func TestWriteNT(t *testing.T) {
	h := newH()
	h.WriteNT(7)
	c := h.Counts()
	if c.MemWriteLines != 1 || c.MemReadLines != 0 || c.NTLines != 1 {
		t.Fatalf("NT write: %+v", c)
	}
	h.WriteNTReverted(8)
	c = h.Counts()
	if c.MemReadLines != 1 || c.NTReverted != 1 {
		t.Fatalf("NT revert: %+v", c)
	}
}

func TestLRUWithinSet(t *testing.T) {
	spec := machine.ICX8360Y()
	h := New(spec)
	h.SetPrefetch(false)
	l1sets := int64(spec.L1.Sets())
	// Fill one L1 set (12 ways) plus one more line mapping to it.
	for w := int64(0); w <= 12; w++ {
		h.Load(w * l1sets) // same set, different tags
	}
	// The first line was LRU and must have been evicted from L1; it may
	// still hit in L2.
	before := h.Counts()
	h.Load(0)
	after := h.Counts()
	if after.L1Hits != before.L1Hits {
		t.Fatal("LRU victim still resident in L1")
	}
	if after.L2Hits != before.L2Hits+1 {
		t.Fatal("victim should have been found in L2")
	}
}

// TestLayerConditionEmerges: a 2-row stencil read pattern over rows that
// fit in cache loads each line from memory exactly once.
func TestLayerConditionEmerges(t *testing.T) {
	h := newH()
	h.SetPrefetch(false)
	rowLines := int64(1920 / 8) // 1920 doubles per row
	rows := int64(64)
	// Sweep: per row k, read rows k and k+1 (like am04's mass_flux_x).
	for k := int64(0); k < rows; k++ {
		for _, dk := range []int64{0, 1} {
			base := (k + dk) * rowLines
			for j := int64(0); j < rowLines; j++ {
				h.Load(base + j)
			}
		}
	}
	c := h.Counts()
	want := (rows + 1) * rowLines // every line exactly once
	if c.MemReadLines != want {
		t.Fatalf("LC reads = %d, want %d (LC satisfied => one miss per line)",
			c.MemReadLines, want)
	}
}

// TestLayerConditionBreaks: rows far larger than the hierarchy defeat
// inter-row reuse and double the read traffic of the same pattern.
func TestLayerConditionBreaks(t *testing.T) {
	h := newH()
	h.SetPrefetch(false)
	// Row of 1 M doubles = 8 MB >> L1+L2+L3slice (~2.8 MB).
	rowLines := int64(1 << 20 / 8 * 8 / 8) // 131072 lines = 8 MiB
	rows := int64(4)
	for k := int64(0); k < rows; k++ {
		for _, dk := range []int64{0, 1} {
			base := (k + dk) * rowLines
			for j := int64(0); j < rowLines; j++ {
				h.Load(base + j)
			}
		}
	}
	c := h.Counts()
	min := 2 * rows * rowLines * 95 / 100
	if c.MemReadLines < min {
		t.Fatalf("broken LC reads = %d, want near %d", c.MemReadLines, 2*rows*rowLines)
	}
}

func TestPrefetcherCoversStreams(t *testing.T) {
	h := newH()
	// A long sequential read stream: the streamer must not change net
	// volume (every line is read exactly once, demand or prefetch).
	const n = 50000
	for l := int64(0); l < n; l++ {
		h.Load(l)
	}
	c := h.Counts()
	if c.PFLines == 0 {
		t.Fatal("stream prefetcher never fired")
	}
	slack := int64(machine.ICX8360Y().PF.StreamDistance + 1)
	if c.MemReadLines < n || c.MemReadLines > n+slack*pfSlotCount {
		t.Fatalf("prefetched stream reads = %d, want ~%d", c.MemReadLines, n)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	h := newH()
	h.SetPrefetch(false)
	for l := int64(0); l < 1000; l++ {
		h.Load(l)
	}
	if h.Counts().PFLines != 0 {
		t.Fatal("prefetcher fired while disabled")
	}
}

func TestFlushIdempotent(t *testing.T) {
	h := newH()
	h.RFO(1)
	h.Flush()
	w := h.Counts().MemWriteLines
	h.Flush()
	if h.Counts().MemWriteLines != w {
		t.Fatal("second flush wrote data again")
	}
	if h.DirtyLines() != 0 {
		t.Fatal("dirty lines remain after flush")
	}
}

func TestInvalidateDropsWithoutTraffic(t *testing.T) {
	h := newH()
	h.RFO(1)
	h.Invalidate()
	if h.Counts().MemWriteLines != 0 {
		t.Fatal("invalidate must not write back")
	}
	if h.DirtyLines() != 0 {
		t.Fatal("dirty lines survived invalidate")
	}
}

func TestCountsArithmetic(t *testing.T) {
	a := Counts{MemReadLines: 10, MemWriteLines: 4, ItoMLines: 2}
	b := Counts{MemReadLines: 3, MemWriteLines: 1, ItoMLines: 1}
	d := a.Sub(b)
	if d.MemReadLines != 7 || d.MemWriteLines != 3 || d.ItoMLines != 1 {
		t.Fatalf("Sub: %+v", d)
	}
	s := d.Add(b)
	if s != a {
		t.Fatalf("Add(Sub) != identity: %+v", s)
	}
	if a.ReadBytes() != 640 || a.WriteBytes() != 256 || a.TotalBytes() != 896 {
		t.Fatal("byte conversions wrong")
	}
}

// Property: memory traffic is non-negative and reads never exceed
// accesses for arbitrary random access sequences; flush leaves no dirty
// lines.
func TestRandomAccessProperty(t *testing.T) {
	f := func(seq []uint16, writes []bool) bool {
		h := newH()
		h.SetPrefetch(false)
		nw := 0
		for i, s := range seq {
			line := int64(s % 4096)
			if i < len(writes) && writes[i] {
				h.RFO(line)
				nw++
			} else {
				h.Load(line)
			}
		}
		h.Flush()
		c := h.Counts()
		return c.MemReadLines >= 0 &&
			c.MemReadLines <= int64(len(seq)) &&
			c.MemWriteLines <= int64(nw) &&
			h.DirtyLines() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
