package memsim

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"cloversim/internal/machine"
)

// The analytic tier's contract is bit-exactness: Counts AND semantic
// cache state (tags, dirty bits, LRU stamps, per-level clocks) must be
// indistinguishable from the per-line reference, whichever mix of
// analytic-taken and fallback-simulated runs a trace produces. The
// suites below enforce it over randomized tiny geometries (so a few
// hundred lines sweep a whole hierarchy through fill, conflict and
// steady state), every access kind, and the boundary run lengths the
// closed form special-cases.

// tinySpec builds a machine spec whose memsim hierarchy has exactly the
// given per-level sets x ways (sets must be powers of two — newLevel
// rounds down otherwise and the test would lie about its geometry).
func tinySpec(l1s, l1w, l2s, l2w, l3s, l3w int) *machine.Spec {
	s := machine.ICX8360Y()
	s.Name = fmt.Sprintf("tiny-%dx%d-%dx%d-%dx%d", l1s, l1w, l2s, l2w, l3s, l3w)
	s.L1 = machine.CacheGeom{SizeBytes: l1s * l1w * 64, Ways: l1w, LineBytes: 64}
	s.L2 = machine.CacheGeom{SizeBytes: l2s * l2w * 64, Ways: l2w, LineBytes: 64}
	s.L3 = machine.CacheGeom{SizeBytes: l3s * l3w * 64 * s.CoresPerSocket, Ways: l3w, LineBytes: 64}
	s.L3SliceWays = l3w
	return s
}

// levelState is one level's semantic state: everything the replacement
// and write-back policies read. The search-acceleration state (filt,
// vq, pred) is deliberately excluded — it is allowed to diverge.
type levelState struct {
	tags  []int64
	dirty []bool
	stamp []uint32
	clock uint32
}

func captureState(h *Hierarchy) [3]levelState {
	var out [3]levelState
	for i, l := range []*level{h.l1, h.l2, h.l3} {
		out[i] = levelState{
			tags:  append([]int64(nil), l.tags...),
			dirty: append([]bool(nil), l.dirty...),
			stamp: append([]uint32(nil), l.stamp...),
			clock: l.clock,
		}
	}
	return out
}

// diffState returns "" when equal, else a description of the first
// diverging level.
func diffState(got, want [3]levelState) string {
	names := [3]string{"L1", "L2", "L3"}
	for i := range got {
		if got[i].clock != want[i].clock {
			return fmt.Sprintf("%s clock %d != %d", names[i], got[i].clock, want[i].clock)
		}
		for s := range got[i].tags {
			if got[i].tags[s] != want[i].tags[s] || got[i].dirty[s] != want[i].dirty[s] ||
				got[i].stamp[s] != want[i].stamp[s] {
				return fmt.Sprintf("%s slot %d: got tag=%d dirty=%t stamp=%d, want tag=%d dirty=%t stamp=%d",
					names[i], s, got[i].tags[s], got[i].dirty[s], got[i].stamp[s],
					want[i].tags[s], want[i].dirty[s], want[i].stamp[s])
			}
		}
	}
	return ""
}

// replayFull runs a trace, captures counts + semantic state, then
// probes the residual state through the public per-line API (a load
// sweep whose hit/miss pattern depends on every resident line) and
// flushes (whose write-back count depends on every dirty bit).
func replayFull(spec *machine.Spec, pfOn bool, mode AnalyticMode, probe int64,
	trace []pattern, usePerLine bool) (mid Counts, st [3]levelState, fin Counts, as AnalyticStats) {
	h := New(spec)
	h.SetPrefetch(pfOn)
	h.SetAnalytic(mode)
	for _, p := range trace {
		if usePerLine {
			perLine(h, p.start, p.n, p.kind)
		} else {
			h.AccessRange(p.start, p.n, p.kind)
		}
	}
	mid, st, as = h.Counts(), captureState(h), h.AnalyticStats()
	for line := int64(0); line < probe; line++ {
		h.Load(line)
	}
	h.Flush()
	return mid, st, h.Counts(), as
}

// TestAnalyticDifferential sweeps randomized tiny geometries x all
// seven access kinds x the boundary run lengths {1, ways-1, ways,
// sets x ways, > cache} per level, each run preceded by a random
// prelude that leaves mixed clean/dirty residency, and asserts the
// analytic path (forced, auto, and off) is bit-identical to the
// per-line reference in counts, semantic state, and post-probe
// behaviour.
func TestAnalyticDifferential(t *testing.T) {
	r := &rng{s: 0xA11A}
	var taken, fell int64
	for g := 0; g < 6; g++ {
		l1s, l1w := 1<<(r.next()%3), int(r.next()%4)+1
		l2s, l2w := 1<<(r.next()%3+1), int(r.next()%6)+1
		l3s, l3w := 1<<(r.next()%4+1), int(r.next()%8)+1
		spec := tinySpec(l1s, l1w, l2s, l2w, l3s, l3w)
		cache := int64(l1s*l1w + l2s*l2w + l3s*l3w)
		lens := []int64{1, int64(l1w) - 1, int64(l1w), int64(l1s * l1w),
			int64(l2s * l2w), int64(l3s * l3w), cache, 2*cache + 7}
		span := int64(256)
		for _, pfOn := range []bool{true, false} {
			for _, kind := range allKinds {
				for _, n := range lens {
					if n <= 0 {
						continue
					}
					trace := make([]pattern, 0, 18)
					for i := 0; i < 16; i++ {
						trace = append(trace, pattern{
							start: int64(r.next() % uint64(span)),
							n:     int64(r.next()%24) + 1,
							kind:  allKinds[r.next()%uint64(len(allKinds))],
						})
					}
					// One run in dirtied territory, one far away on
					// clean sets.
					trace = append(trace,
						pattern{start: int64(r.next() % uint64(span)), n: n, kind: kind},
						pattern{start: 4 * span, n: n, kind: kind})

					wm, ws, wf, _ := replayFull(spec, pfOn, AnalyticOff, 2*span, trace, true)
					for _, mode := range []AnalyticMode{AnalyticForce, AnalyticAuto, AnalyticOff} {
						gm, gs, gf, as := replayFull(spec, pfOn, mode, 2*span, trace, false)
						if gm != wm {
							t.Fatalf("%s pf=%t %v n=%d mode=%v: counts diverge\nanalytic: %+v\nper-line: %+v",
								spec.Name, pfOn, kind, n, mode, gm, wm)
						}
						if d := diffState(gs, ws); d != "" {
							t.Fatalf("%s pf=%t %v n=%d mode=%v: state diverges: %s",
								spec.Name, pfOn, kind, n, mode, d)
						}
						if gf != wf {
							t.Fatalf("%s pf=%t %v n=%d mode=%v: post-probe counts diverge\nanalytic: %+v\nper-line: %+v",
								spec.Name, pfOn, kind, n, mode, gf, wf)
						}
						if mode == AnalyticForce {
							taken += as.TakenRuns
							fell += as.FallbackRuns()
						} else if mode == AnalyticOff && (as.TakenRuns != 0 || as.FallbackRuns() != 0) {
							t.Fatalf("AnalyticOff recorded analytic activity: %+v", as)
						}
					}
				}
			}
		}
	}
	// The suite must exercise BOTH sides of the predicate, or it proves
	// nothing about either.
	if taken == 0 {
		t.Fatal("differential suite never took the analytic path")
	}
	if fell == 0 {
		t.Fatal("differential suite never exercised a fallback")
	}
}

// TestAnalyticFallbackReasons pins each documented irregularity to the
// fallback reason it must trigger — and the regular shapes to
// analytic-taken — so the predicate can neither rot into
// "always fallback" nor silently widen past what the closed form
// handles. Every case is also differentially checked against the
// per-line reference.
func TestAnalyticFallbackReasons(t *testing.T) {
	// L1 2 sets x 2 ways, L2 4x2, L3 4x4: 28 lines total, so aMin = 28.
	mk := func() *machine.Spec { return tinySpec(2, 2, 4, 2, 4, 4) }
	cases := []struct {
		name   string
		pfOn   bool
		mode   AnalyticMode
		setup  []pattern
		run    pattern
		taken  bool
		reason FallbackReason
	}{
		{name: "load-prefetch-on", pfOn: true, mode: AnalyticForce,
			run: pattern{0, 64, AccessLoad}, reason: FallbackPrefetch},
		{name: "auto-short-run", mode: AnalyticAuto,
			run: pattern{0, 8, AccessLoad}, reason: FallbackShort},
		{name: "mixed-residency", mode: AnalyticForce,
			setup: []pattern{{0, 64, AccessLoad}},
			run:   pattern{32, 64, AccessLoad}, reason: FallbackResident},
		{name: "dirty-private-set", mode: AnalyticForce,
			setup: []pattern{{0, 1, AccessRFO}},
			run:   pattern{64, 64, AccessLoad}, reason: FallbackDirty},
		{name: "rfo-l1-self-evict", mode: AnalyticForce,
			run: pattern{0, 5, AccessRFO}, reason: FallbackOverflow},
		{name: "claiml2-l2-self-evict", mode: AnalyticForce,
			run: pattern{0, 9, AccessClaimL2}, reason: FallbackOverflow},
		{name: "load-regular", mode: AnalyticForce,
			run: pattern{0, 64, AccessLoad}, taken: true},
		{name: "load-auto-long", mode: AnalyticAuto,
			run: pattern{0, 28, AccessLoad}, taken: true},
		{name: "rfo-regular", mode: AnalyticForce,
			run: pattern{0, 4, AccessRFO}, taken: true},
		{name: "ntreverted-regular", mode: AnalyticForce,
			run: pattern{0, 4, AccessWriteNTReverted}, taken: true},
		{name: "claimi2m-regular", mode: AnalyticForce,
			run: pattern{0, 64, AccessClaimI2M}, taken: true},
		{name: "claimi2m-l3-resident-ok", mode: AnalyticForce,
			setup: []pattern{{0, 64, AccessClaimI2M}},
			run:   pattern{48, 32, AccessClaimI2M}, taken: true},
		{name: "claiml2-regular", mode: AnalyticForce,
			run: pattern{0, 8, AccessClaimL2}, taken: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(h *Hierarchy, per bool) {
				h.SetPrefetch(tc.pfOn)
				for _, p := range tc.setup {
					h.AccessRange(p.start, p.n, p.kind)
				}
				h.ResetAnalyticStats()
				if per {
					perLine(h, tc.run.start, tc.run.n, tc.run.kind)
				} else {
					h.AccessRange(tc.run.start, tc.run.n, tc.run.kind)
				}
			}
			h := New(mk())
			h.SetAnalytic(tc.mode)
			run(h, false)
			as := h.AnalyticStats()
			if tc.taken {
				if as.TakenRuns != 1 || as.FallbackRuns() != 0 {
					t.Fatalf("want analytic-taken, got %+v", as)
				}
				if as.TakenLines != tc.run.n {
					t.Fatalf("taken lines %d, want %d", as.TakenLines, tc.run.n)
				}
			} else {
				if as.TakenRuns != 0 {
					t.Fatalf("want fallback %v, but run was taken: %+v", tc.reason, as)
				}
				if as.Fallback[tc.reason] != 1 {
					t.Fatalf("want fallback %v exactly once, got %+v", tc.reason, as)
				}
			}
			ref := New(mk())
			ref.SetAnalytic(AnalyticOff)
			run(ref, true)
			if g, w := h.Counts(), ref.Counts(); g != w {
				t.Fatalf("counts diverge from per-line: %+v vs %+v", g, w)
			}
			if d := diffState(captureState(h), captureState(ref)); d != "" {
				t.Fatalf("state diverges from per-line: %s", d)
			}
		})
	}
}

// TestAnalyticClockWrapFallback: a run that would wrap a level's uint32
// LRU clock must be simulated (the closed form assumes fresh stamps
// order after old ones), and the wrapped simulation must still match
// per-line exactly.
func TestAnalyticClockWrapFallback(t *testing.T) {
	mkWrapped := func() *Hierarchy {
		h := New(tinySpec(2, 2, 4, 2, 4, 4))
		h.SetPrefetch(false)
		h.l1.clock = math.MaxUint32 - 10
		return h
	}
	h := mkWrapped()
	h.SetAnalytic(AnalyticForce)
	h.AccessRange(0, 64, AccessLoad)
	if as := h.AnalyticStats(); as.TakenRuns != 0 || as.Fallback[FallbackOverflow] != 1 {
		t.Fatalf("near-wrap run not rejected: %+v", as)
	}
	ref := mkWrapped()
	ref.SetAnalytic(AnalyticOff)
	perLine(ref, 0, 64, AccessLoad)
	if g, w := h.Counts(), ref.Counts(); g != w {
		t.Fatalf("wrapped counts diverge: %+v vs %+v", g, w)
	}
	if d := diffState(captureState(h), captureState(ref)); d != "" {
		t.Fatalf("wrapped state diverges: %s", d)
	}
}

// TestAnalyticModeRoundTrip pins the flag spelling of the modes.
func TestAnalyticModeRoundTrip(t *testing.T) {
	for _, m := range []AnalyticMode{AnalyticAuto, AnalyticOff, AnalyticForce} {
		got, err := ParseAnalyticMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: got %v, err %v", m, got, err)
		}
	}
	if _, err := ParseAnalyticMode("fast"); err == nil {
		t.Fatal("bad mode accepted")
	}
	if DefaultAnalytic != AnalyticAuto {
		t.Fatalf("DefaultAnalytic = %v, want auto", DefaultAnalytic)
	}
	h := New(machine.ICX8360Y())
	if h.Analytic() != AnalyticAuto {
		t.Fatalf("New did not adopt DefaultAnalytic: %v", h.Analytic())
	}
}

// fuzzGeoms are the hierarchies FuzzAnalyticRange rotates through:
// tiny enough that every batch sweeps whole levels, shaped to hit
// direct-mapped, single-set and skewed-associativity corners.
var fuzzGeoms = [4][6]int{
	{2, 2, 4, 2, 4, 4},
	{1, 3, 2, 4, 8, 2},
	{4, 1, 4, 6, 2, 8},
	{2, 4, 8, 1, 16, 3},
}

// analyticTrace draws batches biased toward the analytic boundary:
// long eligible runs, ways+-1 and sets x ways lengths, aliasing wraps
// through a small span, and kind switches mid-stream.
func analyticTrace(seed uint64, batches int, l1w, cache int64) []pattern {
	r := &rng{s: seed | 1}
	out := make([]pattern, batches)
	for i := range out {
		p := pattern{kind: allKinds[r.next()%uint64(len(allKinds))]}
		switch r.next() % 4 {
		case 0: // long eligible run, usually on fresh sets
			p.start = int64(r.next() % (1 << 12))
			p.n = cache + int64(r.next()%uint64(2*cache))
		case 1: // boundary lengths around the associativity
			p.start = int64(r.next() % 64)
			p.n = l1w + int64(r.next()%5) - 2
		case 2: // aliasing wraps inside one small span
			p.start = int64(r.next() % 32)
			p.n = int64(r.next()%uint64(2*cache)) + 1
		default: // short scattered churn
			p.start = int64(r.next() % (1 << 12))
			p.n = int64(r.next()%24) + 1
		}
		if p.n <= 0 {
			p.n = 1
		}
		out[i] = p
	}
	return out
}

// FuzzAnalyticRange fuzzes the four-way differential property — the
// per-line reference vs AccessRange under off/auto/force — over traces
// interleaving analytic-eligible and irregular runs. The committed
// corpus under testdata/fuzz seeds the boundary cases the regularity
// predicate guards.
func FuzzAnalyticRange(f *testing.F) {
	f.Add(uint64(1), uint8(8), false)
	f.Add(uint64(0x5eed), uint8(24), true)
	f.Add(uint64(0xA11A), uint8(40), false)
	for i := range fuzzGeoms {
		f.Add(uint64(i), uint8(16), i%2 == 0)
	}
	f.Fuzz(func(t *testing.T, seed uint64, batches uint8, pfOn bool) {
		g := fuzzGeoms[seed%uint64(len(fuzzGeoms))]
		spec := tinySpec(g[0], g[1], g[2], g[3], g[4], g[5])
		cache := int64(g[0]*g[1] + g[2]*g[3] + g[4]*g[5])
		trace := analyticTrace(seed, int(batches%48)+1, int64(g[1]), cache)
		wm, ws, wf, _ := replayFull(spec, pfOn, AnalyticOff, 512, trace, true)
		for _, mode := range []AnalyticMode{AnalyticForce, AnalyticAuto, AnalyticOff} {
			gm, gs, gf, _ := replayFull(spec, pfOn, mode, 512, trace, false)
			if gm != wm || gf != wf {
				t.Fatalf("seed=%#x pf=%t mode=%v: counts diverge\nanalytic mid %+v fin %+v\nper-line mid %+v fin %+v",
					seed, pfOn, mode, gm, gf, wm, wf)
			}
			if d := diffState(gs, ws); d != "" {
				t.Fatalf("seed=%#x pf=%t mode=%v: state diverges: %s", seed, pfOn, mode, d)
			}
		}
	})
}

// TestAnalyticStatsAccounting: taken + fallback runs must equal the
// cache-state-bearing AccessRange calls of a trace (NT and
// write-streamed batches are O(1) by nature and counted in neither
// bucket), so the stats can drive honest fallback-rate reporting.
func TestAnalyticStatsAccounting(t *testing.T) {
	spec := tinySpec(2, 2, 4, 2, 4, 4)
	h := New(spec)
	h.SetPrefetch(false)
	h.SetAnalytic(AnalyticForce)
	trace := analyticTrace(0xACC7, 40, 2, 28)
	var want int64
	for _, p := range trace {
		h.AccessRange(p.start, p.n, p.kind)
		if p.kind != AccessWriteNT && p.kind != AccessWriteStreamed {
			want++
		}
	}
	as := h.AnalyticStats()
	if got := as.TakenRuns + as.FallbackRuns(); got != want {
		t.Fatalf("stats account for %d runs, want %d: %+v", got, want, as)
	}
	h.ResetAnalyticStats()
	if !reflect.DeepEqual(h.AnalyticStats(), AnalyticStats{}) {
		t.Fatal("ResetAnalyticStats left residue")
	}
}

// TestGlobalAnalyticStatsAggregation: the process-wide counters sum the
// per-hierarchy ones across hierarchy lifetimes — the campaign-level
// report -analytic-stats prints survives workers creating and dropping
// a hierarchy per scenario.
func TestGlobalAnalyticStatsAggregation(t *testing.T) {
	before := GlobalAnalyticStats()
	var want AnalyticStats
	for _, seed := range []uint64{0xA11, 0x5EED} {
		h := New(tinySpec(2, 2, 4, 2, 4, 4))
		h.SetPrefetch(false)
		h.SetAnalytic(AnalyticForce)
		for _, p := range analyticTrace(seed, 30, 2, 28) {
			h.AccessRange(p.start, p.n, p.kind)
		}
		as := h.AnalyticStats()
		want.TakenRuns += as.TakenRuns
		want.TakenLines += as.TakenLines
		for r := range as.Fallback {
			want.Fallback[r] += as.Fallback[r]
		}
	}
	if want.TakenRuns == 0 {
		t.Fatal("trace produced no analytic-taken runs; the aggregation assertion is vacuous")
	}
	after := GlobalAnalyticStats()
	got := AnalyticStats{
		TakenRuns:  after.TakenRuns - before.TakenRuns,
		TakenLines: after.TakenLines - before.TakenLines,
	}
	for r := range got.Fallback {
		got.Fallback[r] = after.Fallback[r] - before.Fallback[r]
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("global delta %+v, want the per-hierarchy sum %+v", got, want)
	}
	ResetGlobalAnalyticStats()
	if !reflect.DeepEqual(GlobalAnalyticStats(), AnalyticStats{}) {
		t.Fatal("ResetGlobalAnalyticStats left residue")
	}
}

// TestAnalyticStatsString: the one-line report format -analytic-stats
// prints, with and without fallbacks.
func TestAnalyticStatsString(t *testing.T) {
	clean := AnalyticStats{TakenRuns: 5, TakenLines: 640}
	if got, want := clean.String(), "5 runs solved analytically (640 lines), 0 simulated"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	var s AnalyticStats
	s.TakenRuns, s.TakenLines = 2, 128
	s.Fallback[FallbackShort] = 3
	got := s.String()
	if !reflect.DeepEqual(s.FallbackRuns(), int64(3)) {
		t.Fatalf("FallbackRuns() = %d, want 3", s.FallbackRuns())
	}
	for _, want := range []string{"2 runs solved analytically (128 lines), 3 simulated", "short 3", "prefetch 0"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q lacks %q", got, want)
		}
	}
}
