package memsim

import (
	"fmt"
	"testing"

	"cloversim/internal/machine"
)

// perLine replays one range through the reference per-line methods.
func perLine(h *Hierarchy, start, n int64, kind AccessKind) {
	for line := start; line < start+n; line++ {
		switch kind {
		case AccessLoad:
			h.Load(line)
		case AccessRFO:
			h.RFO(line)
		case AccessClaimI2M:
			h.ClaimI2M(line)
		case AccessClaimL2:
			h.ClaimL2(line)
		case AccessWriteNT:
			h.WriteNT(line)
		case AccessWriteNTReverted:
			h.WriteNTReverted(line)
		case AccessWriteStreamed:
			h.WriteStreamed(line)
		}
	}
}

var allKinds = []AccessKind{AccessLoad, AccessRFO, AccessClaimI2M, AccessClaimL2,
	AccessWriteNT, AccessWriteNTReverted, AccessWriteStreamed}

// diffSpecs are the machine models the differential tests sweep: an ItoM
// machine with the stream prefetcher, one with an adjacent-line
// prefetcher (exercising the buddy fetch), and the A64FX claim-zero CPU.
func diffSpecs() []*machine.Spec {
	adj := machine.ICX8360Y()
	adj.Name = "icx+adj"
	adj.PF.AdjacentEnabled = true
	return []*machine.Spec{machine.ICX8360Y(), adj, machine.A64FX()}
}

// xorshift64* PRNG, deterministic pattern generator for the tests.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// pattern is one (start, n, kind) batch of a random access trace.
type pattern struct {
	start int64
	n     int64
	kind  AccessKind
}

// randomTrace draws batches with run lengths spanning partial sets, full
// sets, and multi-set wraps, over an address span that stresses both
// conflict misses and reuse.
func randomTrace(seed uint64, batches int) []pattern {
	r := &rng{s: seed | 1}
	out := make([]pattern, batches)
	for i := range out {
		out[i] = pattern{
			start: int64(r.next() % (1 << 15)),
			n:     int64(r.next()%200) + 1,
			kind:  allKinds[r.next()%uint64(len(allKinds))],
		}
	}
	return out
}

// replay runs a trace on a fresh hierarchy via run and returns the final
// counts, post-flush counts (catching dirty-state divergence), and the
// dirty-line census before the flush.
func replay(spec *machine.Spec, pfOn bool, trace []pattern,
	run func(*Hierarchy, pattern)) (mid Counts, dirty int, final Counts) {
	h := New(spec)
	h.SetPrefetch(pfOn)
	for _, p := range trace {
		run(h, p)
	}
	mid = h.Counts()
	dirty = h.DirtyLines()
	h.Flush()
	return mid, dirty, h.Counts()
}

// TestAccessRangeDifferential: AccessRange must yield bit-identical
// Counts and dirty state to the per-line reference path, across random
// access patterns, prefetch on/off, and every access kind.
func TestAccessRangeDifferential(t *testing.T) {
	for _, spec := range diffSpecs() {
		for _, pfOn := range []bool{true, false} {
			for seed := uint64(1); seed <= 8; seed++ {
				trace := randomTrace(seed*0x9e3779b97f4a7c15, 300)
				wantMid, wantDirty, wantFinal := replay(spec, pfOn, trace,
					func(h *Hierarchy, p pattern) { perLine(h, p.start, p.n, p.kind) })
				gotMid, gotDirty, gotFinal := replay(spec, pfOn, trace,
					func(h *Hierarchy, p pattern) { h.AccessRange(p.start, p.n, p.kind) })
				if gotMid != wantMid {
					t.Fatalf("%s pf=%t seed=%d: counts diverge\nbatched: %+v\nper-line: %+v",
						spec.Name, pfOn, seed, gotMid, wantMid)
				}
				if gotDirty != wantDirty {
					t.Fatalf("%s pf=%t seed=%d: dirty lines %d, per-line %d",
						spec.Name, pfOn, seed, gotDirty, wantDirty)
				}
				if gotFinal != wantFinal {
					t.Fatalf("%s pf=%t seed=%d: post-flush counts diverge\nbatched: %+v\nper-line: %+v",
						spec.Name, pfOn, seed, gotFinal, wantFinal)
				}
			}
		}
	}
}

// TestAccessRangePerKind isolates each kind on a long sequential run and
// a short wrap-around run — the two shapes traffic generators emit.
func TestAccessRangePerKind(t *testing.T) {
	spec := machine.ICX8360Y()
	for _, kind := range allKinds {
		for _, pfOn := range []bool{true, false} {
			t.Run(fmt.Sprintf("%v/pf=%t", kind, pfOn), func(t *testing.T) {
				trace := []pattern{
					{start: 100, n: 4096, kind: kind},  // long stream
					{start: 100, n: 4096, kind: kind},  // full reuse
					{start: 4000, n: 300, kind: kind},  // overlap
					{start: 1 << 20, n: 1, kind: kind}, // singleton far away
				}
				wantMid, wantDirty, wantFinal := replay(spec, pfOn, trace,
					func(h *Hierarchy, p pattern) { perLine(h, p.start, p.n, p.kind) })
				gotMid, gotDirty, gotFinal := replay(spec, pfOn, trace,
					func(h *Hierarchy, p pattern) { h.AccessRange(p.start, p.n, p.kind) })
				if gotMid != wantMid || gotDirty != wantDirty || gotFinal != wantFinal {
					t.Fatalf("counts diverge\nbatched: %+v dirty=%d final=%+v\nper-line: %+v dirty=%d final=%+v",
						gotMid, gotDirty, gotFinal, wantMid, wantDirty, wantFinal)
				}
			})
		}
	}
}

// TestAccessRangeMixedWithPerLine: interleaving batched and per-line
// calls on the SAME hierarchy must behave as one continuous trace, so
// callers may mix APIs freely (the store engine stays per-line while
// read streams batch).
func TestAccessRangeMixedWithPerLine(t *testing.T) {
	spec := machine.ICX8360Y()
	trace := randomTrace(0xf00d, 200)
	wantMid, _, wantFinal := replay(spec, true, trace,
		func(h *Hierarchy, p pattern) { perLine(h, p.start, p.n, p.kind) })
	gotMid, _, gotFinal := replay(spec, true, trace, func(h *Hierarchy, p pattern) {
		if p.n%2 == 0 {
			h.AccessRange(p.start, p.n, p.kind)
		} else {
			perLine(h, p.start, p.n, p.kind)
		}
	})
	if gotMid != wantMid || gotFinal != wantFinal {
		t.Fatalf("mixed trace diverges: %+v vs %+v", gotMid, wantMid)
	}
}

// TestAccessRangeEmptyAndNegative: n <= 0 must be a no-op.
func TestAccessRangeEmptyAndNegative(t *testing.T) {
	h := New(machine.ICX8360Y())
	for _, kind := range allKinds {
		h.AccessRange(42, 0, kind)
		h.AccessRange(42, -3, kind)
	}
	if c := h.Counts(); c != (Counts{}) {
		t.Fatalf("empty ranges produced traffic: %+v", c)
	}
}

// FuzzAccessRange fuzzes the differential property over arbitrary
// (seed, batches, pf) triples. The seed corpus covers each access kind,
// both prefetch states, and degenerate lengths.
func FuzzAccessRange(f *testing.F) {
	f.Add(uint64(1), uint8(4), true)
	f.Add(uint64(2), uint8(1), false)
	f.Add(uint64(0x5eed), uint8(16), true)
	f.Add(uint64(0x9e3779b97f4a7c15), uint8(32), false)
	f.Add(uint64(7), uint8(0), true)
	for i, k := range allKinds {
		f.Add(uint64(k)<<8|uint64(i), uint8(8), i%2 == 0)
	}
	spec := machine.ICX8360Y()
	f.Fuzz(func(t *testing.T, seed uint64, batches uint8, pfOn bool) {
		trace := randomTrace(seed, int(batches%64)+1)
		wantMid, wantDirty, wantFinal := replay(spec, pfOn, trace,
			func(h *Hierarchy, p pattern) { perLine(h, p.start, p.n, p.kind) })
		gotMid, gotDirty, gotFinal := replay(spec, pfOn, trace,
			func(h *Hierarchy, p pattern) { h.AccessRange(p.start, p.n, p.kind) })
		if gotMid != wantMid || gotDirty != wantDirty || gotFinal != wantFinal {
			t.Fatalf("seed=%#x pf=%t: batched %+v dirty=%d vs per-line %+v dirty=%d",
				seed, pfOn, gotMid, gotDirty, wantMid, wantDirty)
		}
	})
}
