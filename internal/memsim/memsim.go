// Package memsim provides a cache-line-accurate simulation of one core's
// view of the memory hierarchy: private L1 and L2 caches, a per-core L3
// slice, hardware prefetcher models, and a memory controller that counts
// read and write cache-line transfers (the CAS_COUNT_RD / CAS_COUNT_WR
// analogue of the paper's LIKWID measurements).
//
// The hierarchy is write-back, write-allocate with LRU replacement.
// Layer conditions (Sec. II-C), partial-line write-allocates and prefetch
// overfetch are emergent properties of the simulation, not parameters.
//
// Hierarchy implements core.Backend, so the SpecI2M store engine of
// internal/core drives it directly.
//
// Two implementations of the semantics coexist: the per-line/batched
// simulation in this file and range.go, and the analytic closed-form
// tier in analytic.go that solves regular sequential runs in O(sets x
// ways). Any change to eviction order, write-allocate policy, LRU
// stamping or the claim semantics MUST be made in both — the
// differential and fuzz suites (range_test.go, analytic_test.go)
// compare them bit-for-bit and will catch a one-sided edit.
package memsim

import (
	"fmt"
	"math/bits"

	"cloversim/internal/machine"
)

// Counts is a snapshot of the memory-controller and hierarchy event
// counters. All volumes are in cache lines; multiply by 64 for bytes.
type Counts struct {
	MemReadLines  int64 // lines read from memory (demand + RFO + prefetch)
	MemWriteLines int64 // lines written to memory (write-backs + NT)
	ItoMLines     int64 // SpecI2M claims (TOR_INSERTS_IA_ITOM analogue)
	NTLines       int64 // non-temporal full/partial line writes
	NTReverted    int64 // NT stores reverted to regular write-allocates
	WSLines       int64 // ARM write-streaming direct writes
	PFLines       int64 // memory reads initiated by the prefetcher
	L1Hits        int64
	L2Hits        int64
	L3Hits        int64
	Loads         int64 // demand load accesses
	RFOs          int64 // write-allocate accesses
}

// Sub returns c - o, counter-wise.
func (c Counts) Sub(o Counts) Counts {
	return Counts{
		MemReadLines:  c.MemReadLines - o.MemReadLines,
		MemWriteLines: c.MemWriteLines - o.MemWriteLines,
		ItoMLines:     c.ItoMLines - o.ItoMLines,
		NTLines:       c.NTLines - o.NTLines,
		NTReverted:    c.NTReverted - o.NTReverted,
		WSLines:       c.WSLines - o.WSLines,
		PFLines:       c.PFLines - o.PFLines,
		L1Hits:        c.L1Hits - o.L1Hits,
		L2Hits:        c.L2Hits - o.L2Hits,
		L3Hits:        c.L3Hits - o.L3Hits,
		Loads:         c.Loads - o.Loads,
		RFOs:          c.RFOs - o.RFOs,
	}
}

// Add returns c + o, counter-wise.
func (c Counts) Add(o Counts) Counts {
	return Counts{
		MemReadLines:  c.MemReadLines + o.MemReadLines,
		MemWriteLines: c.MemWriteLines + o.MemWriteLines,
		ItoMLines:     c.ItoMLines + o.ItoMLines,
		NTLines:       c.NTLines + o.NTLines,
		NTReverted:    c.NTReverted + o.NTReverted,
		WSLines:       c.WSLines + o.WSLines,
		PFLines:       c.PFLines + o.PFLines,
		L1Hits:        c.L1Hits + o.L1Hits,
		L2Hits:        c.L2Hits + o.L2Hits,
		L3Hits:        c.L3Hits + o.L3Hits,
		Loads:         c.Loads + o.Loads,
		RFOs:          c.RFOs + o.RFOs,
	}
}

// ReadBytes returns the memory read volume in bytes.
func (c Counts) ReadBytes() int64 { return c.MemReadLines * 64 }

// WriteBytes returns the memory write volume in bytes.
func (c Counts) WriteBytes() int64 { return c.MemWriteLines * 64 }

// TotalBytes returns the total memory data volume in bytes.
func (c Counts) TotalBytes() int64 { return (c.MemReadLines + c.MemWriteLines) * 64 }

// level is one set-associative, write-back, LRU cache level.
type level struct {
	sets  int
	ways  int
	mask  int64 // sets-1 (sets is a power of two)
	shift uint  // log2(sets), for the presence-filter tag hash
	tags  []int64
	dirty []bool
	stamp []uint32
	clock uint32
	// pred and predWB are the way indices of the most recent demand and
	// write-back hits — pure search-order hints (sequential streams hit
	// the same way across consecutive sets), never semantic state. The
	// write-back stream gets its own slot so the two interleaved
	// streams do not thrash one predictor.
	pred   int
	predWB int
	// filt holds one presence filter per set: the OR of 1<<(tag>>shift
	// & 63) over (a superset of) the set's resident tags. A clear bit
	// proves a line absent, letting the batched fast paths skip miss
	// scans entirely; evictions leave stale bits (false positives) that
	// the fast-path victim scans rebuild away. Like the predictors this
	// is pure search acceleration, never semantic state.
	filt []uint64
	// vq caches, per set, the next few LRU victims computed during a
	// full victim scan. An entry (way, stamp) is still the true victim
	// iff that way's stamp is unchanged: stamps only grow, every
	// mutation of a way reassigns its stamp, and the operations that
	// empty a way without evicting (the claims) clear the set's queue
	// explicitly. Only full sets are cached, so stamps are unique and
	// the first-empty-way rule cannot be bypassed.
	vq []victimQueue
}

// victimQueue caches up to 3 pre-validated future victims of one set.
type victimQueue struct {
	n   uint8
	way [3]uint8
	st  [3]uint32
}

// bit returns the presence-filter bit of a line: hashed from the bits
// above the set index, which advance once per sweep through the sets
// (the low bits are the set index itself and would alias every resident
// tag of a set onto one filter bit).
func (l *level) bit(line int64) uint64 {
	return 1 << (uint64(line>>l.shift) & 63)
}

func newLevel(g machine.CacheGeom) *level {
	sets := g.Sets()
	if sets&(sets-1) != 0 {
		// Round down to a power of two; keeps indexing cheap and is
		// within a few percent of the modeled capacity.
		p := 1
		for p*2 <= sets {
			p *= 2
		}
		sets = p
	}
	l := &level{
		sets:  sets,
		ways:  g.Ways,
		mask:  int64(sets - 1),
		shift: uint(bits.TrailingZeros(uint(sets))),
		tags:  make([]int64, sets*g.Ways),
		dirty: make([]bool, sets*g.Ways),
		stamp: make([]uint32, sets*g.Ways),
		filt:  make([]uint64, sets),
		vq:    make([]victimQueue, sets),
	}
	for i := range l.tags {
		l.tags[i] = -1
	}
	return l
}

// lookup probes for a line; on hit it refreshes LRU and returns the way
// slot index, else -1.
func (l *level) lookup(line int64) int {
	set := int(line&l.mask) * l.ways
	for w := 0; w < l.ways; w++ {
		if l.tags[set+w] == line {
			l.clock++
			l.stamp[set+w] = l.clock
			return set + w
		}
	}
	return -1
}

// victim returns the slot of the LRU way in the line's set.
func (l *level) victim(line int64) int {
	set := int(line&l.mask) * l.ways
	best := set
	bestStamp := l.stamp[set]
	for w := 1; w < l.ways; w++ {
		if l.tags[set+w] == -1 {
			return set + w
		}
		if l.stamp[set+w] < bestStamp {
			bestStamp = l.stamp[set+w]
			best = set + w
		}
	}
	return best
}

// install places a line (possibly dirty), returning the evicted line and
// whether it was dirty (evicted == -1 if the slot was empty).
func (l *level) install(line int64, dirty bool) (evicted int64, evDirty bool) {
	return l.installAt(l.victim(line), line, dirty)
}

// installAt places a line into a specific slot (as precomputed by probe),
// with install's exact LRU clock behaviour. The presence filter picks up
// the new tag here, on both the per-line and the batched path.
func (l *level) installAt(slot int, line int64, dirty bool) (evicted int64, evDirty bool) {
	evicted, evDirty = l.tags[slot], l.dirty[slot]
	l.tags[slot] = line
	l.dirty[slot] = dirty
	l.clock++
	l.stamp[slot] = l.clock
	l.filt[int(line&l.mask)] |= l.bit(line)
	return evicted, evDirty
}

// lookupFast is the batched-path lookup: identical semantics (hit
// refreshes LRU exactly like lookup) but the hit is detected by a
// predicted-way compare — lines of one sequential stream land on the
// same way across consecutive sets — before falling back to the
// unrolled tag scan. Since a line is installed only after a miss
// confirmed its absence, tags are unique per set and the predicted-way
// shortcut cannot change which slot a hit resolves to.
func (l *level) lookupFast(line int64) (int, bool) {
	si := int(line & l.mask)
	set := si * l.ways
	tags := l.tags[set : set+l.ways : set+l.ways]
	if p := l.pred; p < len(tags) && tags[p] == line {
		l.clock++
		l.stamp[set+p] = l.clock
		return set + p, true
	}
	if l.filt[si]&l.bit(line) == 0 {
		return -1, false
	}
	if w := scanTags(tags, line); w >= 0 {
		l.pred = w
		l.clock++
		l.stamp[set+w] = l.clock
		return set + w, true
	}
	l.rebuild(si, tags)
	return -1, false
}

// lookupWB is lookupFast on the write-back predictor slot: dirty
// evictions of a sequential stream are themselves sequential, but lag
// the demand stream, so they predict well only with their own slot.
func (l *level) lookupWB(line int64) (int, bool) {
	si := int(line & l.mask)
	set := si * l.ways
	tags := l.tags[set : set+l.ways : set+l.ways]
	if p := l.predWB; p < len(tags) && tags[p] == line {
		l.clock++
		l.stamp[set+p] = l.clock
		return set + p, true
	}
	if l.filt[si]&l.bit(line) == 0 {
		return -1, false
	}
	if w := scanTags(tags, line); w >= 0 {
		l.predWB = w
		l.clock++
		l.stamp[set+w] = l.clock
		return set + w, true
	}
	l.rebuild(si, tags)
	return -1, false
}

// lookupScan is lookupFast without the way prediction, for probes off
// the sequential demand stream (prefetch candidates) whose interleaved
// way patterns would only thrash the predictors. Candidate lines are
// usually absent everywhere, so the filter skip carries this path.
func (l *level) lookupScan(line int64) (int, bool) {
	si := int(line & l.mask)
	if l.filt[si]&l.bit(line) == 0 {
		return -1, false
	}
	set := si * l.ways
	tags := l.tags[set : set+l.ways : set+l.ways]
	if w := scanTags(tags, line); w >= 0 {
		l.clock++
		l.stamp[set+w] = l.clock
		return set + w, true
	}
	l.rebuild(si, tags)
	return -1, false
}

// probe is lookupFast fused with victim selection in a single pass over
// the set, for the batched demand path where a miss always leads to an
// install: on hit it behaves exactly like lookup and returns (slot,
// true); on miss it returns (victimSlot, false) where victimSlot is the
// slot victim() would pick, valid until something mutates this set.
// probe is used for L1, whose few sets saturate any presence filter —
// so unlike installFast it does not pay for filter rebuilds; the L1
// filter is refreshed only by installAt accumulation and Flush resets.
func (l *level) probe(line int64) (int, bool) {
	set := int(line&l.mask) * l.ways
	tags := l.tags[set : set+l.ways : set+l.ways]
	if p := l.pred; p < len(tags) && tags[p] == line {
		l.clock++
		l.stamp[set+p] = l.clock
		return set + p, true
	}
	stamps := l.stamp[set : set+len(tags)]
	victim := 0
	bestStamp := stamps[0]
	empty := false
	for w, t := range tags {
		if t == line {
			l.pred = w
			l.clock++
			stamps[w] = l.clock
			return set + w, true
		}
		if w == 0 || empty {
			continue
		}
		if t == -1 {
			// victim() returns the first empty way (scanning w=1 up).
			victim = w
			empty = true
		} else if s := stamps[w]; s < bestStamp {
			bestStamp = s
			victim = w
		}
	}
	return set + victim, false
}

// scanTags returns the way holding line, or -1 (tag-only scan, unrolled
// to keep branch overhead off the per-access critical path).
func scanTags(tags []int64, line int64) int {
	w := 0
	for ; w+4 <= len(tags); w += 4 {
		if tags[w] == line {
			return w
		}
		if tags[w+1] == line {
			return w + 1
		}
		if tags[w+2] == line {
			return w + 2
		}
		if tags[w+3] == line {
			return w + 3
		}
	}
	for ; w < len(tags); w++ {
		if tags[w] == line {
			return w
		}
	}
	return -1
}

// victimWay is victim()'s scan over presliced tags: the first empty way
// past way 0, else the LRU way.
func (l *level) victimWay(set int, tags []int64) int {
	stamps := l.stamp[set : set+len(tags)]
	best := 0
	bestStamp := stamps[0]
	for w := 1; w < len(tags); w++ {
		if tags[w] == -1 {
			return w
		}
		if stamps[w] < bestStamp {
			bestStamp = stamps[w]
			best = w
		}
	}
	return best
}

// installFast is install accelerated by the per-set victim queue: a
// cached future victim validates with one stamp compare; on a queue
// miss the full scan runs and refills the queue with the following
// victims (only when the set is full, preserving the first-empty rule).
func (l *level) installFast(line int64, dirty bool) (evicted int64, evDirty bool) {
	si := int(line & l.mask)
	set := si * l.ways
	if q := &l.vq[si]; q.n > 0 {
		slot := set + int(q.way[0])
		if l.stamp[slot] == q.st[0] {
			q.n--
			q.way[0], q.st[0] = q.way[1], q.st[1]
			q.way[1], q.st[1] = q.way[2], q.st[2]
			return l.installAt(slot, line, dirty)
		}
		q.n = 0
	}
	tags := l.tags[set : set+l.ways : set+l.ways]
	stamps := l.stamp[set : set+l.ways]
	// Single pass: victim()'s exact semantics (first empty way past way
	// 0 wins immediately) while collecting the 4 smallest stamps. Full
	// sets have unique stamps (every one came from a clock increment),
	// so the sorted order is unambiguous.
	var w4 [4]uint8
	var s4 [4]uint32
	n := 0
	for w := 0; w < len(tags); w++ {
		if w > 0 && tags[w] == -1 {
			return l.installAt(set+w, line, dirty)
		}
		s := stamps[w]
		if n == 4 && s >= s4[3] {
			continue
		}
		i := n
		if i == 4 {
			i = 3
		}
		for ; i > 0 && s < s4[i-1]; i-- {
			w4[i], s4[i] = w4[i-1], s4[i-1]
		}
		w4[i], s4[i] = uint8(w), s
		if n < 4 {
			n++
		}
	}
	if n > 1 {
		q := &l.vq[si]
		q.n = uint8(n - 1)
		q.way[0], q.st[0] = w4[1], s4[1]
		q.way[1], q.st[1] = w4[2], s4[2]
		q.way[2], q.st[2] = w4[3], s4[3]
	}
	return l.installAt(set+int(w4[0]), line, dirty)
}

// vqClear invalidates the victim queue of line's set — required
// whenever a way is emptied without a stamp reassignment (the claims),
// since an empty way preempts the cached LRU order.
func (l *level) vqClear(line int64) { l.vq[int(line&l.mask)].n = 0 }

// rebuild replaces a set's presence filter with the OR over its
// resident tags, shedding the stale bits evictions leave behind. Called
// on a filter false positive (the filter said maybe-present, the scan
// found nothing), so a saturated filter repairs itself exactly when it
// starts costing wasted scans.
func (l *level) rebuild(si int, tags []int64) {
	var f uint64
	for _, t := range tags {
		if t != -1 {
			f |= l.bit(t)
		}
	}
	l.filt[si] = f
}

// Hierarchy is one core's cache hierarchy plus the memory controller
// counters. It implements core.Backend.
type Hierarchy struct {
	l1, l2, l3 *level
	c          Counts
	spec       *machine.Spec

	pfOn       bool
	pfSlots    [pfSlotCount]int64 // last miss line per detected stream
	pfNext     int
	pfDist     int64
	adjacentOn bool

	// Analytic-tier state (see analytic.go).
	amode  AnalyticMode
	astats AnalyticStats
	aMin   int64 // AnalyticAuto profitability threshold, in lines
	aHuge  bool  // geometry outside the analytic tier's limits
}

const pfSlotCount = 16

// New creates a hierarchy for the machine spec with prefetchers in their
// default (spec) state.
func New(spec *machine.Spec) *Hierarchy {
	h := &Hierarchy{
		l1:         newLevel(spec.L1),
		l2:         newLevel(spec.L2),
		l3:         newLevel(spec.L3Slice()),
		spec:       spec,
		pfOn:       spec.PF.StreamEnabled,
		pfDist:     int64(spec.PF.StreamDistance),
		adjacentOn: spec.PF.AdjacentEnabled,
	}
	for i := range h.pfSlots {
		h.pfSlots[i] = -1
	}
	h.analyticSetup()
	return h
}

// SetPrefetch enables or disables the hardware prefetcher models
// (likwid-features analogue).
func (h *Hierarchy) SetPrefetch(on bool) {
	h.pfOn = on && h.spec.PF.StreamEnabled
	h.adjacentOn = on && h.spec.PF.AdjacentEnabled
}

// PrefetchOn reports whether the stream prefetcher is active.
func (h *Hierarchy) PrefetchOn() bool { return h.pfOn }

// Counts returns a snapshot of all counters.
func (h *Hierarchy) Counts() Counts { return h.c }

// installThrough pushes a line into l3, l2 and l1 (dirty at L1 if dirty),
// propagating dirty evictions down to memory.
func (h *Hierarchy) installThrough(line int64, dirty bool) {
	if ev, d := h.l3.install(line, false); d && ev >= 0 {
		h.c.MemWriteLines++
	}
	h.installL2L1(line, dirty)
}

// installL2L1 installs into L2 and L1 only.
func (h *Hierarchy) installL2L1(line int64, dirty bool) {
	if ev, d := h.l2.install(line, false); d && ev >= 0 {
		h.writebackToL3(ev)
	}
	if ev, d := h.l1.install(line, dirty); d && ev >= 0 {
		h.writebackToL2(ev)
	}
}

// writebackToL2 handles a dirty eviction from L1.
func (h *Hierarchy) writebackToL2(line int64) {
	if slot := h.l2.lookup(line); slot >= 0 {
		h.l2.dirty[slot] = true
		return
	}
	if ev, d := h.l2.install(line, true); d && ev >= 0 {
		h.writebackToL3(ev)
	}
}

// writebackToL3 handles a dirty eviction from L2.
func (h *Hierarchy) writebackToL3(line int64) {
	if slot := h.l3.lookup(line); slot >= 0 {
		h.l3.dirty[slot] = true
		return
	}
	if ev, d := h.l3.install(line, true); d && ev >= 0 {
		h.c.MemWriteLines++
	}
}

// memFetch reads a line from memory (counting) and runs prefetch logic.
// Prefetching only follows demand-load streams: store (RFO) streams are
// handled by the write-allocate-evasion engine, and prefetching them would
// defeat ItoM claims (the hardware suppresses this likewise).
func (h *Hierarchy) memFetch(line int64, allowPF bool) {
	h.c.MemReadLines++
	if !allowPF {
		return
	}
	if h.adjacentOn {
		buddy := line ^ 1
		if h.l3.lookup(buddy) < 0 && h.l2.lookup(buddy) < 0 {
			h.c.MemReadLines++
			h.c.PFLines++
			if ev, d := h.l3.install(buddy, false); d && ev >= 0 {
				h.c.MemWriteLines++
			}
		}
	}
	if h.pfOn {
		h.prefetch(line)
	}
}

// prefetch implements a simple L2 streamer: a miss that is sequential to
// a previous miss arms a stream and pulls the next pfDist lines into L3.
func (h *Hierarchy) prefetch(line int64) {
	armed := false
	for i := range h.pfSlots {
		if h.pfSlots[i] == line-1 || h.pfSlots[i] == line-2 {
			h.pfSlots[i] = line
			armed = true
			break
		}
	}
	if !armed {
		h.pfSlots[h.pfNext] = line
		h.pfNext = (h.pfNext + 1) % pfSlotCount
		return
	}
	for d := int64(1); d <= h.pfDist; d++ {
		l := line + d
		if h.l3.lookup(l) >= 0 || h.l2.lookup(l) >= 0 || h.l1.lookup(l) >= 0 {
			continue
		}
		h.c.MemReadLines++
		h.c.PFLines++
		if ev, dd := h.l3.install(l, false); dd && ev >= 0 {
			h.c.MemWriteLines++
		}
	}
}

// access is the shared load/RFO path.
func (h *Hierarchy) access(line int64, dirty, allowPF bool) {
	if slot := h.l1.lookup(line); slot >= 0 {
		h.c.L1Hits++
		if dirty {
			h.l1.dirty[slot] = true
		}
		return
	}
	if h.l2.lookup(line) >= 0 {
		h.c.L2Hits++
		h.installToL1(line, dirty)
		return
	}
	if h.l3.lookup(line) >= 0 {
		h.c.L3Hits++
		h.installL2L1(line, dirty)
		return
	}
	h.memFetch(line, allowPF)
	h.installThrough(line, dirty)
}

// installToL1 installs a line into L1 only (it already sits in L2).
func (h *Hierarchy) installToL1(line int64, dirty bool) {
	if ev, d := h.l1.install(line, dirty); d && ev >= 0 {
		h.writebackToL2(ev)
	}
}

// Load implements core.Backend.
func (h *Hierarchy) Load(line int64) {
	h.c.Loads++
	h.access(line, false, true)
}

// RFO implements core.Backend.
func (h *Hierarchy) RFO(line int64) {
	h.c.RFOs++
	h.access(line, true, false)
}

// ClaimI2M implements core.Backend: the line is claimed dirty at L3
// without a memory read (SpecI2M ItoM transaction).
func (h *Hierarchy) ClaimI2M(line int64) {
	h.c.ItoMLines++
	// Drop stale private copies so the dirty state lives at L3.
	if slot := h.l1.lookup(line); slot >= 0 {
		h.l1.tags[slot] = -1
		h.l1.dirty[slot] = false
		h.l1.vqClear(line)
	}
	if slot := h.l2.lookup(line); slot >= 0 {
		h.l2.tags[slot] = -1
		h.l2.dirty[slot] = false
		h.l2.vqClear(line)
	}
	if slot := h.l3.lookup(line); slot >= 0 {
		h.l3.dirty[slot] = true
		return
	}
	if ev, d := h.l3.install(line, true); d && ev >= 0 {
		h.c.MemWriteLines++
	}
}

// ClaimL2 implements core.Backend: the line is claimed dirty in the
// private L2 without a memory read (A64FX cache-line zero). The write
// reaches memory via the normal write-back path, and — unlike ItoM — the
// data is immediately reusable from the private cache.
func (h *Hierarchy) ClaimL2(line int64) {
	h.c.ItoMLines++ // counted in the same evasion event class
	if slot := h.l1.lookup(line); slot >= 0 {
		h.l1.tags[slot] = -1
		h.l1.dirty[slot] = false
		h.l1.vqClear(line)
	}
	if slot := h.l2.lookup(line); slot >= 0 {
		h.l2.dirty[slot] = true
		return
	}
	if ev, d := h.l2.install(line, true); d && ev >= 0 {
		h.writebackToL3(ev)
	}
}

// WriteStreamed implements core.Backend: ARM write-streaming mode sends
// the detected store stream straight to memory.
func (h *Hierarchy) WriteStreamed(line int64) {
	h.c.WSLines++
	h.c.MemWriteLines++
}

// WriteNT implements core.Backend: a direct (write-combined) memory write.
func (h *Hierarchy) WriteNT(line int64) {
	h.c.NTLines++
	h.c.MemWriteLines++
}

// WriteNTReverted implements core.Backend: the NT store was demoted to a
// regular write-allocate store (read + eventual write-back).
func (h *Hierarchy) WriteNTReverted(line int64) {
	h.c.NTReverted++
	h.c.RFOs++
	h.access(line, true, false)
}

// Flush writes back every dirty line and invalidates the hierarchy,
// counting the write-backs. Use at region boundaries when residual dirty
// state matters (small working sets).
func (h *Hierarchy) Flush() {
	for _, l := range []*level{h.l1, h.l2, h.l3} {
		for i := range l.tags {
			if l.tags[i] >= 0 && l.dirty[i] {
				h.c.MemWriteLines++
			}
			l.tags[i] = -1
			l.dirty[i] = false
			l.stamp[i] = 0
		}
		for i := range l.filt {
			l.filt[i] = 0
		}
		for i := range l.vq {
			l.vq[i] = victimQueue{}
		}
		l.clock = 0
	}
	for i := range h.pfSlots {
		h.pfSlots[i] = -1
	}
}

// Invalidate drops all cached state without counting write-backs.
func (h *Hierarchy) Invalidate() {
	for _, l := range []*level{h.l1, h.l2, h.l3} {
		for i := range l.tags {
			l.tags[i] = -1
			l.dirty[i] = false
			l.stamp[i] = 0
		}
		for i := range l.filt {
			l.filt[i] = 0
		}
		for i := range l.vq {
			l.vq[i] = victimQueue{}
		}
		l.clock = 0
	}
	for i := range h.pfSlots {
		h.pfSlots[i] = -1
	}
}

// DirtyLines counts dirty lines currently cached (for tests).
func (h *Hierarchy) DirtyLines() int {
	n := 0
	for _, l := range []*level{h.l1, h.l2, h.l3} {
		for i := range l.tags {
			if l.tags[i] >= 0 && l.dirty[i] {
				n++
			}
		}
	}
	return n
}

// String summarizes the hierarchy geometry.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("L1 %d sets x%d | L2 %d sets x%d | L3slice %d sets x%d",
		h.l1.sets, h.l1.ways, h.l2.sets, h.l2.ways, h.l3.sets, h.l3.ways)
}
