package memsim

import (
	"fmt"
	"math"
	"sync/atomic"
)

// This file implements the analytic tier above AccessRange: a closed-form
// transfer function for *regular* sequential runs that computes the
// hit/miss/evict/write-allocate counters AND the resulting cache state
// (tags, dirty bits, LRU stamps, per-level clocks — bit-identical, which
// the differential and fuzz suites in analytic_test.go enforce) by set
// arithmetic instead of simulating line by line.
//
// A run start..start+n-1 of one kind is "regular" when its outcome is
// closed-form per set:
//
//   - every run line is absent from every level it would probe (mixed
//     residency falls back; for the claims, residency in the *target*
//     level is fine — a claim-hit is a pure LRU refresh + dirty mark);
//   - loads see no prefetcher interaction (stream and adjacent-line
//     prefetchers off), store-side kinds never prefetch by construction;
//   - no eviction the run performs may cascade into another level: dirty
//     pre-existing occupancy in a touched L1/L2 set would write back on
//     eviction (falls back), and dirty *installs* (RFO and the claims)
//     must not self-evict where the write-back is not terminal — RFO runs
//     are bounded to one L1 fill per set, ClaimL2 runs to one L2 fill.
//
// Within that class the per-set behaviour is exact: installs consume the
// set in victim order (empty ways above way 0 first, then resident ways
// by LRU stamp — the precise order victim()/installFast use), and once
// every way holds a line of the run the replacement degenerates to FIFO
// rotation, so the middle of a long run is a pure counter update and only
// the trailing `ways` lines of each set are materialized. Cost is
// O(touched sets x ways), independent of run length.
//
// Everything semantic is reproduced exactly; the search-acceleration
// state (presence filters, victim queues, way predictors) is allowed to
// diverge — filters are rebuilt exactly per touched set, victim-queue
// entries self-invalidate through their stamp checks, predictors are
// hints. The differential suite compares semantic state only.

// AnalyticMode selects how AccessRange uses the analytic tier.
type AnalyticMode uint8

const (
	// AnalyticAuto takes the analytic path when a run is regular AND
	// long enough that the predicate scan is cheaper than simulating.
	AnalyticAuto AnalyticMode = iota
	// AnalyticOff always simulates (the reference behaviour).
	AnalyticOff
	// AnalyticForce takes the analytic path whenever the regularity
	// predicate holds, regardless of profitability. Correctness never
	// depends on the mode: irregular runs still fall back.
	AnalyticForce
)

func (m AnalyticMode) String() string {
	switch m {
	case AnalyticAuto:
		return "auto"
	case AnalyticOff:
		return "off"
	case AnalyticForce:
		return "force"
	}
	return "unknown"
}

// ParseAnalyticMode parses the -analytic flag values.
func ParseAnalyticMode(s string) (AnalyticMode, error) {
	switch s {
	case "auto":
		return AnalyticAuto, nil
	case "off":
		return AnalyticOff, nil
	case "force":
		return AnalyticForce, nil
	}
	return AnalyticAuto, fmt.Errorf("memsim: bad analytic mode %q (want auto, off or force)", s)
}

// DefaultAnalytic is the mode New installs on fresh hierarchies. Set it
// (e.g. from a CLI flag) before simulations start; it is read, never
// written, by concurrent workers.
var DefaultAnalytic = AnalyticAuto

// FallbackReason says why a run was simulated instead of solved
// analytically. The fallback-coverage tests pin each reason to the
// irregularity that triggers it, so the predicate can neither rot into
// "always fallback" nor silently widen.
type FallbackReason uint8

const (
	// FallbackPrefetch: a load run with the stream or adjacent-line
	// prefetcher active (prefetch state machines are not closed-form).
	FallbackPrefetch FallbackReason = iota
	// FallbackShort: AnalyticAuto only — the run is too short for the
	// predicate scan to pay for itself.
	FallbackShort
	// FallbackResident: some run line is already resident in a level
	// where the analytic form needs absence (mixed residency).
	FallbackResident
	// FallbackDirty: a touched L1/L2 set holds a dirty line whose
	// eviction would cascade a write-back into another level.
	FallbackDirty
	// FallbackOverflow: a dirty-installing run would self-evict where
	// the write-back is not terminal (RFO past one L1 fill per set,
	// ClaimL2 past one L2 fill), the line range overflows, or the
	// geometry is outside the analytic tier's limits.
	FallbackOverflow
	// NumFallbackReasons sizes AnalyticStats.Fallback.
	NumFallbackReasons
)

func (r FallbackReason) String() string {
	switch r {
	case FallbackPrefetch:
		return "prefetch"
	case FallbackShort:
		return "short"
	case FallbackResident:
		return "resident"
	case FallbackDirty:
		return "dirty"
	case FallbackOverflow:
		return "overflow"
	}
	return "unknown"
}

// AnalyticStats counts analytic-taken vs fallback-simulated runs.
type AnalyticStats struct {
	TakenRuns  int64 // runs served by the analytic tier
	TakenLines int64 // line accesses those runs covered
	Fallback   [NumFallbackReasons]int64
}

// FallbackRuns returns the total runs that fell back to simulation.
func (s AnalyticStats) FallbackRuns() int64 {
	var t int64
	for _, c := range s.Fallback {
		t += c
	}
	return t
}

// String renders the counters for terminal summaries, per-reason
// fallback counts included.
func (s AnalyticStats) String() string {
	out := fmt.Sprintf("%d runs solved analytically (%d lines), %d simulated",
		s.TakenRuns, s.TakenLines, s.FallbackRuns())
	if s.FallbackRuns() == 0 {
		return out
	}
	out += " ("
	for r := FallbackReason(0); r < NumFallbackReasons; r++ {
		if r > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %d", r, s.Fallback[r])
	}
	return out + ")"
}

// globalAstats aggregates analytic-tier effectiveness process-wide
// across every hierarchy, so a whole campaign — where hierarchies are
// created and discarded per scenario inside concurrent workers — can
// report how often the O(1) path actually fired. The counters are
// atomics bumped at the same per-run sites as the per-hierarchy stats:
// reporting state only, never physics, so they stay out of scenario
// configs and store keys just like the AnalyticMode knob.
var globalAstats struct {
	takenRuns, takenLines atomic.Int64
	fallback              [NumFallbackReasons]atomic.Int64
}

// GlobalAnalyticStats snapshots the process-wide analytic counters.
func GlobalAnalyticStats() AnalyticStats {
	var s AnalyticStats
	s.TakenRuns = globalAstats.takenRuns.Load()
	s.TakenLines = globalAstats.takenLines.Load()
	for r := range s.Fallback {
		s.Fallback[r] = globalAstats.fallback[r].Load()
	}
	return s
}

// ResetGlobalAnalyticStats zeroes the process-wide counters (test and
// campaign-boundary hygiene; concurrent simulations may lose increments
// racing the reset, which reporting tolerates).
func ResetGlobalAnalyticStats() {
	globalAstats.takenRuns.Store(0)
	globalAstats.takenLines.Store(0)
	for r := range globalAstats.fallback {
		globalAstats.fallback[r].Store(0)
	}
}

// SetAnalytic selects the analytic mode for this hierarchy.
func (h *Hierarchy) SetAnalytic(m AnalyticMode) { h.amode = m }

// Analytic returns the hierarchy's analytic mode.
func (h *Hierarchy) Analytic() AnalyticMode { return h.amode }

// AnalyticStats returns the analytic-taken/fallback counters.
func (h *Hierarchy) AnalyticStats() AnalyticStats { return h.astats }

// ResetAnalyticStats clears the analytic counters.
func (h *Hierarchy) ResetAnalyticStats() { h.astats = AnalyticStats{} }

// analyticSetup computes the profitability threshold and geometry gate
// at construction time.
func (h *Hierarchy) analyticSetup() {
	h.amode = DefaultAnalytic
	cap1 := int64(h.l1.sets) * int64(h.l1.ways)
	cap2 := int64(h.l2.sets) * int64(h.l2.ways)
	cap3 := int64(h.l3.sets) * int64(h.l3.ways)
	// The predicate scans + per-set transfers touch every cached line
	// once; below roughly one full cache of lines the simulated batched
	// path wins (measured by the *StreamRange benchmarks).
	h.aMin = cap1 + cap2 + cap3
	// The per-set transfer tracks way occupancy in a 64-bit mask.
	h.aHuge = h.l1.ways > 64 || h.l2.ways > 64 || h.l3.ways > 64
}

// tryAnalytic attempts the analytic transfer for one run, returning
// true when it fully applied (counters and cache state updated). On
// false nothing was mutated and the caller must simulate.
func (h *Hierarchy) tryAnalytic(start, n int64, kind AccessKind) bool {
	if h.aHuge || start > math.MaxInt64-n {
		return h.fallback(FallbackOverflow)
	}
	// A uint32 LRU-clock wrap mid-run would let per-line victim()
	// prefer the run's own (wrapped, tiny) stamps over older residents;
	// the closed form assumes fresh stamps always order after old ones,
	// so a run that would wrap any level's clock is simulated instead.
	if uint64(h.l1.clock)+uint64(n) > math.MaxUint32 ||
		uint64(h.l2.clock)+uint64(n) > math.MaxUint32 ||
		uint64(h.l3.clock)+uint64(n) > math.MaxUint32 {
		return h.fallback(FallbackOverflow)
	}
	if h.amode == AnalyticAuto && n < h.aMin {
		return h.fallback(FallbackShort)
	}
	switch kind {
	case AccessLoad:
		if h.pfOn || h.adjacentOn {
			return h.fallback(FallbackPrefetch)
		}
		return h.analyticAccess(start, n, false)
	case AccessRFO, AccessWriteNTReverted:
		return h.analyticAccess(start, n, true)
	case AccessClaimI2M:
		return h.analyticClaimI2M(start, n)
	case AccessClaimL2:
		return h.analyticClaimL2(start, n)
	}
	return false
}

// fallback records the reason and reports "not taken".
func (h *Hierarchy) fallback(r FallbackReason) bool {
	h.astats.Fallback[r]++
	globalAstats.fallback[r].Add(1)
	return false
}

// taken records one analytic-served run.
func (h *Hierarchy) taken(n int64) bool {
	h.astats.TakenRuns++
	h.astats.TakenLines += n
	globalAstats.takenRuns.Add(1)
	globalAstats.takenLines.Add(n)
	return true
}

// analyticAccess is the transfer function for the demand kinds (Load,
// RFO, WriteNTReverted — dirty distinguishes store from load): every
// line misses all three levels, reads memory once, and installs through
// L3/L2/L1; evictions are silent (empty or clean victims, and the run's
// own lines are installed clean except at L1) except dirty pre-existing
// L3 victims, which write back to memory.
func (h *Hierarchy) analyticAccess(start, n int64, dirty bool) bool {
	if dirty && (n+int64(h.l1.sets)-1)/int64(h.l1.sets) > int64(h.l1.ways) {
		// A store run past one L1 fill per set would evict its own dirty
		// lines into L2 — a cascade the closed form does not model.
		return h.fallback(FallbackOverflow)
	}
	if r, ok := h.l1.scanRegular(start, n, true, true); !ok {
		return h.fallback(r)
	}
	if r, ok := h.l2.scanRegular(start, n, true, true); !ok {
		return h.fallback(r)
	}
	if r, ok := h.l3.scanRegular(start, n, true, false); !ok {
		return h.fallback(r)
	}
	h.c.MemReadLines += n
	h.c.MemWriteLines += h.l3.applyRun(start, n, false, true, false)
	h.l2.applyRun(start, n, false, false, false)
	h.l1.applyRun(start, n, dirty, false, false)
	return h.taken(n)
}

// analyticClaimI2M is the transfer for SpecI2M claim runs: lines must
// be absent from the private levels (a resident copy is dropped per
// line — mixed residency), L3-resident lines are refreshed and marked
// dirty, absent lines install dirty, and every eviction of a dirty L3
// line (pre-existing or the run's own under FIFO rotation) writes back
// to memory.
func (h *Hierarchy) analyticClaimI2M(start, n int64) bool {
	if r, ok := h.l1.scanRegular(start, n, true, false); !ok {
		return h.fallback(r)
	}
	if r, ok := h.l2.scanRegular(start, n, true, false); !ok {
		return h.fallback(r)
	}
	h.c.ItoMLines += n
	h.c.MemWriteLines += h.l3.applyRun(start, n, true, true, true)
	return h.taken(n)
}

// analyticClaimL2 is the transfer for A64FX cache-line-zero runs:
// lines must be absent from L1, the run must fit one L2 fill per set
// (its dirty installs must never self-evict — that write-back cascades
// to L3), and no touched L2 set may hold any dirty line for the same
// reason. L2-resident clean run lines are refreshed and marked dirty.
func (h *Hierarchy) analyticClaimL2(start, n int64) bool {
	if (n+int64(h.l2.sets)-1)/int64(h.l2.sets) > int64(h.l2.ways) {
		return h.fallback(FallbackOverflow)
	}
	if r, ok := h.l1.scanRegular(start, n, true, false); !ok {
		return h.fallback(r)
	}
	if r, ok := h.l2.scanRegular(start, n, false, true); !ok {
		return h.fallback(r)
	}
	h.c.ItoMLines += n
	h.l2.applyRun(start, n, true, false, true)
	return h.taken(n)
}

// scanRegular checks the level's part of the regularity predicate over
// the sets the run touches: banResident rejects resident run lines,
// banDirty rejects any dirty occupancy (its eviction would cascade).
// Read-only; cost O(min(n, sets) x ways).
func (l *level) scanRegular(start, n int64, banResident, banDirty bool) (FallbackReason, bool) {
	touched := int64(l.sets)
	if n < touched {
		touched = n
	}
	si := int(start & l.mask)
	end := start + n
	for t := int64(0); t < touched; t++ {
		set := si * l.ways
		for w := 0; w < l.ways; w++ {
			tag := l.tags[set+w]
			if tag < 0 {
				continue
			}
			if banResident && tag >= start && tag < end {
				return FallbackResident, false
			}
			if banDirty && l.dirty[set+w] {
				return FallbackDirty, false
			}
		}
		si = (si + 1) & int(l.mask)
	}
	return 0, true
}

// applyRun applies one run's installs (and, for allowHits, refreshes)
// to every touched set of the level and returns the number of dirty
// lines evicted (counted only when countDirty — the terminal level).
// The level's clock advances by exactly n, and the i-th line of the run
// gets stamp clock0+i+1 — the precise values the per-line path assigns.
func (l *level) applyRun(start, n int64, installDirty, countDirty, allowHits bool) int64 {
	clk0 := l.clock
	l.clock += uint32(n)
	S := int64(l.sets)
	touched := S
	if n < touched {
		touched = n
	}
	var memWrites int64
	si := int(start & l.mask)
	for t := int64(0); t < touched; t++ {
		// The t-th touched set first sees run index t, then every S-th
		// index after it.
		k := (n - t + S - 1) / S
		memWrites += l.applySet(si, start, t, S, k, clk0, installDirty, countDirty, allowHits)
		si = (si + 1) & int(l.mask)
	}
	return memWrites
}

// applySet replays one set's k installs/refreshes exactly, in victim
// order, with FIFO fast-forward once the whole set belongs to the run.
// idx0 is the run index of the set's first line; stamps follow the
// global per-line clock (clk0 + index + 1).
func (l *level) applySet(si int, start, idx0, S, k int64, clk0 uint32, installDirty, countDirty, allowHits bool) int64 {
	W := l.ways
	set := si * W
	tags := l.tags[set : set+W : set+W]
	stamps := l.stamp[set : set+W]
	dirt := l.dirty[set : set+W]

	// Victim order: the exact sequence victim()/installFast consume the
	// set in while any non-run way remains — empty ways above way 0 in
	// ascending order, then every other way (including way 0, empty or
	// not) by ascending stamp, ties to the lower way.
	var order [64]uint8
	on := 0
	for w := 1; w < W; w++ {
		if tags[w] == -1 {
			order[on] = uint8(w)
			on++
		}
	}
	rest0 := on
	for w := 0; w < W; w++ {
		if w > 0 && tags[w] == -1 {
			continue
		}
		i := on
		for ; i > rest0 && stamps[order[i-1]] > stamps[w]; i-- {
			order[i] = order[i-1]
		}
		order[i] = uint8(w)
		on++
	}

	var ring [64]uint8 // ways in the order they became run-owned
	rn := 0
	oi := 0
	head := 0
	var freshMask uint64
	oldCount := 0
	if allowHits {
		for w := 0; w < W; w++ {
			if tags[w] != -1 {
				oldCount++
			}
		}
	}

	var memWrites int64
	for j := int64(0); j < k; j++ {
		idx := idx0 + j*S
		line := start + idx
		st := clk0 + uint32(idx) + 1

		if allowHits && oldCount > 0 {
			if w := scanTags(tags, line); w >= 0 {
				// Claim-hit: pure LRU refresh + dirty mark, exactly like
				// the per-line lookup path.
				stamps[w] = st
				dirt[w] = true
				freshMask |= 1 << uint(w)
				oldCount--
				ring[rn] = uint8(w)
				rn++
				continue
			}
		}

		// Skip order entries consumed by claim-hit refreshes.
		for oi < W && freshMask&(1<<uint(order[oi])) != 0 {
			oi++
		}
		if oi < W {
			w := int(order[oi])
			oi++
			if tags[w] != -1 {
				if countDirty && dirt[w] {
					memWrites++
				}
				if allowHits {
					oldCount--
				}
			}
			tags[w] = line
			dirt[w] = installDirty
			stamps[w] = st
			freshMask |= 1 << uint(w)
			ring[rn] = uint8(w)
			rn++
			continue
		}

		// Every way holds a run line: replacement is FIFO rotation over
		// the ring. Fast-forward the middle — each skipped install
		// evicts one run line (dirty only for dirty-installing kinds) —
		// and materialize only the trailing W installs.
		if remaining := k - j; remaining > int64(W) {
			skip := remaining - int64(W)
			if installDirty && countDirty {
				memWrites += skip
			}
			head = int((int64(head) + skip) % int64(W))
			j += skip
			idx = idx0 + j*S
			line = start + idx
			st = clk0 + uint32(idx) + 1
		}
		w := int(ring[head])
		head = (head + 1) % W
		if installDirty && countDirty {
			memWrites++
		}
		tags[w] = line
		dirt[w] = installDirty
		stamps[w] = st
	}

	// Exact presence-filter rebuild for the touched set (a superset is
	// required; exact is cheapest to reason about). Victim queues and
	// way predictors self-correct: queue entries validate by stamp and
	// every surviving pre-existing way kept its stamp precisely because
	// it was never this set's LRU.
	l.rebuild(si, tags)
	return memWrites
}
