package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out := Line("speedup", "ranks", []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4})
	if !strings.Contains(out, "speedup") {
		t.Fatal("title missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Fatalf("only %d lines", len(lines))
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data points drawn")
	}
	// Monotone series: the topmost marker must be to the right of the
	// bottom one.
	var first, last int
	for _, l := range lines {
		if i := strings.IndexByte(l, '*'); i >= 0 {
			if first == 0 {
				first = i
			}
			last = i
		}
	}
	if last >= first {
		t.Errorf("increasing series should descend left: top col %d, bottom col %d", first, last)
	}
}

func TestRenderMultiSeries(t *testing.T) {
	p := Plot{
		Title:  "fig5",
		XLabel: "cores",
		Series: []Series{
			{Name: "ST-1", X: []float64{1, 2}, Y: []float64{2, 1}},
			{Name: "NT-1", X: []float64{1, 2}, Y: []float64{1, 1.2}},
		},
	}
	out := p.Render()
	for _, want := range []string{"[*] ST-1", "[o] NT-1", "o", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderDegenerate(t *testing.T) {
	if out := Line("empty", "", nil, nil); !strings.Contains(out, "no data") {
		t.Error("empty plot should say so")
	}
	// Constant series must not divide by zero.
	out := Line("const", "x", []float64{1, 2, 3}, []float64{5, 5, 5})
	if strings.Contains(out, "NaN") {
		t.Error("NaN leaked into the render")
	}
	// NaN points are skipped.
	out = Line("nan", "x", []float64{1, math.NaN(), 3}, []float64{1, math.NaN(), 3})
	if !strings.Contains(out, "*") {
		t.Error("valid points should still draw")
	}
}

func TestFixedRange(t *testing.T) {
	lo, hi := 1.0, 2.0
	p := Plot{
		Series:  []Series{{X: []float64{0, 1}, Y: []float64{1.5, 1.5}}},
		YMinFix: &lo, YMaxFix: &hi,
	}
	out := p.Render()
	if !strings.Contains(out, "2.000") || !strings.Contains(out, "1.000") {
		t.Errorf("fixed range not applied:\n%s", out)
	}
}
