// Package asciiplot renders small scatter/line charts in the terminal,
// so the figure CSVs produced by cmd/experiments can be eyeballed
// against the paper without any plotting toolchain.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named data series.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is a chart definition.
type Plot struct {
	Title   string
	XLabel  string
	YLabel  string
	Width   int // plot area columns (default 64)
	Height  int // plot area rows (default 16)
	Series  []Series
	YMinFix *float64 // optional fixed y range
	YMaxFix *float64
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (p Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if p.YMinFix != nil {
		ymin = *p.YMinFix
	}
	if p.YMaxFix != nil {
		ymax = *p.YMaxFix
	}
	if math.IsInf(xmin, 1) {
		return p.Title + " (no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(w-1))
			row := h - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(h-1))
			if col < 0 || col >= w || row < 0 || row >= h {
				continue
			}
			grid[row][col] = m
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for r, line := range grid {
		yval := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%10.3f |%s|\n", yval, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", w/2, xmin, w-w/2, xmax)
	if p.XLabel != "" || len(p.Series) > 0 {
		fmt.Fprintf(&b, "%10s  x: %s   ", "", p.XLabel)
		for si, s := range p.Series {
			fmt.Fprintf(&b, "[%c] %s  ", markers[si%len(markers)], s.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Line is a convenience for a single-series plot.
func Line(title, xlabel string, x, y []float64) string {
	return Plot{Title: title, XLabel: xlabel, Series: []Series{{Name: "", X: x, Y: y}}}.Render()
}
