package trace

import (
	"testing"
	"testing/quick"

	"cloversim/internal/machine"
)

func mkExec() *Executor {
	x := NewExecutor(machine.ICX8360Y())
	x.SetEnv(Env{Pressure: 0, NodeFraction: 1.0 / 72, ActiveSockets: 1, PFOn: false})
	return x
}

func TestArenaAlignment(t *testing.T) {
	ar := NewArena(true)
	for i := 0; i < 5; i++ {
		a := ar.Alloc("x", 0, 99, 0, 9)
		if a.Base%64 != 0 {
			t.Fatalf("aligned arena produced base %d", a.Base)
		}
	}
	un := NewArena(false)
	a := un.Alloc("y", 0, 99, 0, 9)
	if a.Base%64 == 0 {
		t.Fatalf("unaligned arena produced 64-byte-aligned base %d", a.Base)
	}
}

func TestArrayAddressing(t *testing.T) {
	ar := NewArena(true)
	a := ar.Alloc("f", -2, 10, -1, 5)
	if a.RowElems() != 13 {
		t.Fatalf("row elems = %d, want 13", a.RowElems())
	}
	if a.Addr(-2, -1) != a.Base {
		t.Fatal("origin address wrong")
	}
	if a.Addr(-1, -1)-a.Addr(-2, -1) != 8 {
		t.Fatal("j stride wrong")
	}
	if a.Addr(-2, 0)-a.Addr(-2, -1) != 13*8 {
		t.Fatal("k stride wrong")
	}
	if !a.Contains(0, 0) || a.Contains(11, 0) || a.Contains(0, 6) {
		t.Fatal("Contains wrong")
	}
	if a.SizeBytes() != 13*7*8 {
		t.Fatalf("size = %d", a.SizeBytes())
	}
}

func TestArenaNoOverlap(t *testing.T) {
	ar := NewArena(true)
	a := ar.Alloc("a", 0, 1023, 0, 63)
	b := ar.Alloc("b", 0, 1023, 0, 63)
	if b.Base < a.Base+a.SizeBytes() {
		t.Fatalf("arrays overlap: a ends %d, b starts %d", a.Base+a.SizeBytes(), b.Base)
	}
}

// TestStreamingReadVolume: a pure read loop transfers exactly the line
// span of each row once when LC is satisfied.
func TestStreamingReadVolume(t *testing.T) {
	ar := NewArena(true)
	a := ar.Alloc("a", 0, 1023, 0, 127)
	loop := &Loop{
		Name:  "read",
		Reads: []Access{{A: a, DJ: 0, DK: 0}},
	}
	x := mkExec()
	c := x.Run(loop, Bounds{JLo: 0, JHi: 1023, KLo: 0, KHi: 127})
	want := int64(1024 / 8 * 128)
	if c.MemReadLines != want {
		t.Fatalf("read lines = %d, want %d", c.MemReadLines, want)
	}
	if c.MemWriteLines != 0 {
		t.Fatalf("pure reads wrote %d lines", c.MemWriteLines)
	}
}

// TestStencilLayerCondition: the canonical am04 pattern reads each
// mass_flux line once (LC satisfied) and write-allocates the target.
func TestStencilLayerCondition(t *testing.T) {
	ar := NewArena(true)
	mf := ar.Alloc("mf", 0, 2047, 0, 127)
	nf := ar.Alloc("nf", 0, 2047, 0, 127)
	loop := &Loop{
		Name: "am04like",
		Reads: []Access{
			{A: mf, DJ: 0, DK: -1}, {A: mf, DJ: 0, DK: 0},
			{A: mf, DJ: 1, DK: -1}, {A: mf, DJ: 1, DK: 0},
		},
		Writes:     []Write{{A: nf}},
		FlopsPerIt: 4,
	}
	x := mkExec()
	b := Bounds{JLo: 0, JHi: 2046, KLo: 1, KHi: 126}
	c := x.Run(loop, b)
	bpi := float64(c.TotalBytes()) / float64(b.Iterations())
	// LCF + WA: 8 (read) + 8 (WA) + 8 (write) = 24 byte/it.
	if bpi < 23.5 || bpi > 25.0 {
		t.Fatalf("am04-like balance = %.2f byte/it, want ~24", bpi)
	}
}

// TestUpdateStreamNoWA: read-modify-write streams must not produce
// write-allocate reads beyond the explicit load.
func TestUpdateStreamNoWA(t *testing.T) {
	ar := NewArena(true)
	v := ar.Alloc("v", 0, 2047, 0, 63)
	loop := &Loop{
		Name:   "upd",
		Reads:  []Access{{A: v, DJ: 0, DK: 0}},
		Writes: []Write{{A: v, Update: true}},
	}
	x := mkExec()
	b := Bounds{JLo: 0, JHi: 2047, KLo: 0, KHi: 63}
	c := x.Run(loop, b)
	lines := int64(2048 / 8 * 64)
	if c.MemReadLines != lines {
		t.Fatalf("update reads = %d, want %d", c.MemReadLines, lines)
	}
	if c.MemWriteLines != lines {
		t.Fatalf("update write-backs = %d, want %d", c.MemWriteLines, lines)
	}
}

// TestNTStoreStream: with NT mode on, the flagged stream bypasses WAs
// entirely at low core counts.
func TestNTStoreStream(t *testing.T) {
	ar := NewArena(true)
	src := ar.Alloc("src", 0, 2047, 0, 63)
	dst := ar.Alloc("dst", 0, 2047, 0, 63)
	loop := &Loop{
		Name:   "ntcopy",
		Reads:  []Access{{A: src, DJ: 0, DK: 0}},
		Writes: []Write{{A: dst, NT: true}},
	}
	x := mkExec()
	x.NTStores = true
	b := Bounds{JLo: 0, JHi: 2047, KLo: 0, KHi: 63}
	c := x.Run(loop, b)
	lines := int64(2048 / 8 * 64)
	if c.NTLines != lines {
		t.Fatalf("NT lines = %d, want %d", c.NTLines, lines)
	}
	if c.MemReadLines != lines { // only the source
		t.Fatalf("reads = %d, want %d", c.MemReadLines, lines)
	}
}

// TestNTOnlyOneStream: the compiler alignment constraint allows NT on at
// most one write stream per loop.
func TestNTOnlyOneStream(t *testing.T) {
	ar := NewArena(true)
	a := ar.Alloc("a", 0, 511, 0, 31)
	b := ar.Alloc("b", 0, 511, 0, 31)
	loop := &Loop{
		Name:   "2w",
		Writes: []Write{{A: a, NT: true}, {A: b, NT: true}},
	}
	x := mkExec()
	x.NTStores = true
	c := x.Run(loop, Bounds{JLo: 0, JHi: 511, KLo: 0, KHi: 31})
	lines := int64(512 / 8 * 32)
	if c.NTLines != lines {
		t.Fatalf("NT lines = %d, want %d (one stream only)", c.NTLines, lines)
	}
	// Second stream write-allocates.
	if c.MemReadLines != lines {
		t.Fatalf("WA reads = %d, want %d", c.MemReadLines, lines)
	}
}

func TestCountHelpers(t *testing.T) {
	ar := NewArena(true)
	a := ar.Alloc("a", 0, 99, 0, 9)
	b := ar.Alloc("b", 0, 99, 0, 9)
	loop := &Loop{
		Name: "counts",
		Reads: []Access{
			{A: a, DJ: 0, DK: -1}, {A: a, DJ: 1, DK: -1}, {A: a, DJ: 0, DK: 0},
			{A: b, DJ: 0, DK: 0},
		},
		Writes: []Write{{A: b, Update: true}, {A: a, DJ: 0, DK: 0}},
	}
	if got := loop.CountLCF(); got != 2 {
		t.Errorf("LCF = %d, want 2 (distinct arrays)", got)
	}
	if got := loop.CountLCB(); got != 3 {
		t.Errorf("LCB = %d, want 3 (distinct array-row pairs)", got)
	}
	wr, upd := loop.CountWrites()
	if wr != 2 || upd != 1 {
		t.Errorf("writes = %d/%d, want 2/1", wr, upd)
	}
	if err := loop.Validate(); err != nil {
		t.Error(err)
	}
	if err := (&Loop{Name: "empty"}).Validate(); err == nil {
		t.Error("empty loop validated")
	}
}

func TestClassDerivation(t *testing.T) {
	ar := NewArena(true)
	a := ar.Alloc("a", 0, 9, 0, 9)
	b := ar.Alloc("b", 0, 9, 0, 9)
	pure := &Loop{Writes: []Write{{A: a}}}
	if pure.Class() != machine.ClassPureStore {
		t.Error("store-only loop misclassified")
	}
	cp := &Loop{Reads: []Access{{A: b}}, Writes: []Write{{A: a}}}
	if cp.Class() != machine.ClassCopy {
		t.Error("copy loop misclassified")
	}
	st := &Loop{Reads: []Access{{A: b, DK: -1}, {A: b, DK: 0}, {A: b, DK: 1}}, Writes: []Write{{A: a}}}
	if st.Class() != machine.ClassStencil {
		t.Error("stencil loop misclassified")
	}
}

// TestBoundsIterations property: iteration count is positive and
// multiplicative.
func TestBoundsIterationsProperty(t *testing.T) {
	f := func(w, h uint8) bool {
		b := Bounds{JLo: 1, JHi: 1 + int(w%100), KLo: -3, KHi: -3 + int(h%50)}
		return b.Iterations() == int64(w%100+1)*int64(h%50+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRunDeterminism: identical runs produce identical counters.
func TestRunDeterminism(t *testing.T) {
	run := func() int64 {
		ar := NewArena(true)
		src := ar.Alloc("s", 0, 1023, 0, 63)
		dst := ar.Alloc("d", 0, 1023, 0, 63)
		loop := &Loop{
			Name:     "det",
			Reads:    []Access{{A: src, DJ: 0, DK: 0}},
			Writes:   []Write{{A: dst}},
			Eligible: true,
		}
		x := NewExecutor(machine.ICX8360Y())
		x.SetEnv(Env{Pressure: 1, NodeFraction: 0.5, ActiveSockets: 1, PFOn: true})
		x.E.Seed(7)
		c := x.Run(loop, Bounds{JLo: 0, JHi: 1023, KLo: 0, KHi: 63})
		return c.MemReadLines*1000000 + c.MemWriteLines
	}
	if run() != run() {
		t.Fatal("trace replay is not deterministic")
	}
}
