package trace

import (
	"math"
	"testing"

	"cloversim/internal/counters"
	"cloversim/internal/machine"
)

func TestRunMarked(t *testing.T) {
	ar := NewArena(true)
	src := ar.Alloc("src", 0, 1023, 0, 31)
	dst := ar.Alloc("dst", 0, 1023, 0, 31)
	loop := &Loop{
		Name:       "copyk",
		Reads:      []Access{{A: src, DJ: 0, DK: 0}},
		Writes:     []Write{{A: dst}},
		FlopsPerIt: 1,
	}
	x := mkExec()
	m := counters.NewMarker(x.H, counters.GroupSPECI2M)

	b := Bounds{JLo: 0, JHi: 1023, KLo: 0, KHi: 31}
	for i := 0; i < 3; i++ {
		if _, err := x.RunMarked(m, loop, b); err != nil {
			t.Fatal(err)
		}
	}
	r := m.Region("copyk")
	if r == nil || r.Calls != 3 {
		t.Fatalf("region calls: %+v", r)
	}
	if r.Iters != 3*b.Iterations() {
		t.Fatalf("iters %d", r.Iters)
	}
	if r.Flops != 3*b.Iterations() {
		t.Fatalf("flops %d", r.Flops)
	}
	// Serial copy with WA: 16 read + 8 write per element.
	if bpi := r.BytesPerIter(); math.Abs(bpi-24) > 1 {
		t.Fatalf("marked copy balance %.2f, want ~24", bpi)
	}
}

func TestRunMarkedMachineSpread(t *testing.T) {
	// Markers from several simulated cores gather like likwid-mpirun.
	spec := machine.ICX8360Y()
	var ms []*counters.Marker
	for core := 0; core < 3; core++ {
		ar := NewArena(true)
		a := ar.Alloc("a", 0, 255, 0, 15)
		loop := &Loop{Name: "w", Writes: []Write{{A: a}}}
		x := NewExecutor(spec)
		x.SetEnv(Env{Pressure: 0, PFOn: true})
		m := counters.NewMarker(x.H, counters.GroupMEM)
		if _, err := x.RunMarked(m, loop, Bounds{JLo: 0, JHi: 255, KLo: 0, KHi: 15}); err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	agg := counters.Gather(ms...)
	if agg["w"].Calls != 3 {
		t.Fatalf("gathered calls %d", agg["w"].Calls)
	}
}
