// Package trace turns loop-nest descriptions (arrays, stencil offsets,
// write streams) into exact cache-line-granular access sequences and
// replays them through the memory-hierarchy simulator and the
// write-allocate-evasion store engine.
//
// A Loop corresponds to one of the paper's marked regions (Table I lists
// the 22 hotspot loops); replaying it over a rank's local iteration space
// reproduces the memory traffic LIKWID would report, including layer
// conditions, halo overfetch, partial-cache-line write-allocates and
// SpecI2M behaviour.
package trace

import (
	"fmt"
	"sort"

	"cloversim/internal/core"
	"cloversim/internal/machine"
	"cloversim/internal/memsim"
)

// Array is a 2D field laid out row-major in the simulated address space.
type Array struct {
	Name string
	Base int64 // byte address of element (JLo, KLo)
	// JLo..JHi and KLo..KHi are the allocated index bounds (inclusive),
	// including halo columns/rows.
	JLo, JHi, KLo, KHi int
	ElemBytes          int // 8 for float64
}

// RowElems returns the padded row length in elements.
func (a *Array) RowElems() int { return a.JHi - a.JLo + 1 }

// SizeBytes returns the allocation size in bytes.
func (a *Array) SizeBytes() int64 {
	return int64(a.RowElems()) * int64(a.KHi-a.KLo+1) * int64(a.ElemBytes)
}

// Addr returns the byte address of element (j, k).
func (a *Array) Addr(j, k int) int64 {
	return a.Base + (int64(k-a.KLo)*int64(a.RowElems())+int64(j-a.JLo))*int64(a.ElemBytes)
}

// Contains reports whether (j,k) lies within the allocated bounds.
func (a *Array) Contains(j, k int) bool {
	return j >= a.JLo && j <= a.JHi && k >= a.KLo && k <= a.KHi
}

// Arena allocates arrays in a contiguous simulated address space.
type Arena struct {
	next  int64
	align int64
	skew  int64 // extra per-array offset to break 64-byte alignment
}

// NewArena returns an allocator starting at a non-zero base. If aligned
// is false, every allocation is skewed by 8 bytes off the 64-byte
// boundary (modelling the unaligned arrays of the unpatched benchmark).
func NewArena(aligned bool) *Arena {
	a := &Arena{next: 1 << 20, align: 64}
	if !aligned {
		a.skew = 8
	}
	return a
}

// Alloc creates an array covering [jlo,jhi] x [klo,khi].
func (ar *Arena) Alloc(name string, jlo, jhi, klo, khi int) *Array {
	a := &Array{Name: name, JLo: jlo, JHi: jhi, KLo: klo, KHi: khi, ElemBytes: 8}
	base := (ar.next + ar.align - 1) / ar.align * ar.align
	base += ar.skew
	a.Base = base
	ar.next = base + a.SizeBytes() + 2*ar.align // guard gap between arrays
	return a
}

// Access is one read reference with constant stencil offsets.
type Access struct {
	A      *Array
	DJ, DK int
}

// Write is one write stream.
type Write struct {
	A      *Array
	DJ, DK int
	// Update marks read-modify-write streams (the element is loaded
	// before being stored, so no write-allocate is ever needed).
	Update bool
	// NT requests non-temporal stores for this stream (applied only when
	// the executor's NT mode is on and the stream qualifies).
	NT bool
}

// Loop is a rectangular 2D loop nest with stencil reads and write streams.
type Loop struct {
	Name   string
	Reads  []Access
	Writes []Write
	// FlopsPerIt is the floating-point work per inner iteration.
	FlopsPerIt int
	// Eligible marks the loop's stores as recognizable by the SpecI2M
	// heuristics (the paper found ac01/ac05 and the branchy ac02/ac06 are
	// not, Sec. V-B).
	Eligible bool
	// Ranges: the iteration space is j = JLo..JHi, k = KLo..KHi
	// (inclusive), set per execution via Bounds.
}

// Bounds is a concrete iteration space for one loop execution.
type Bounds struct {
	JLo, JHi, KLo, KHi int
}

// Iterations returns the number of inner iterations.
func (b Bounds) Iterations() int64 {
	return int64(b.JHi-b.JLo+1) * int64(b.KHi-b.KLo+1)
}

// Class derives the kernel class for the machine-calibration curves.
func (l *Loop) Class() machine.KernelClass {
	if len(l.Reads) == 0 {
		return machine.ClassPureStore
	}
	if len(l.Reads) <= 1 && len(l.Writes) == 1 {
		return machine.ClassCopy
	}
	return machine.ClassStencil
}

// readGroup is a coalesced per-(array,row-offset) read range.
type readGroup struct {
	a            *Array
	dk           int
	minDJ, maxDJ int
}

// groups coalesces reads by (array, DK): accesses to the same array row
// differ only in DJ and touch one contiguous line range per row.
func (l *Loop) groups() []readGroup {
	m := map[[2]interface{}]*readGroup{}
	var order [][2]interface{}
	for _, r := range l.Reads {
		key := [2]interface{}{r.A, r.DK}
		g, ok := m[key]
		if !ok {
			g = &readGroup{a: r.A, dk: r.DK, minDJ: r.DJ, maxDJ: r.DJ}
			m[key] = g
			order = append(order, key)
			continue
		}
		if r.DJ < g.minDJ {
			g.minDJ = r.DJ
		}
		if r.DJ > g.maxDJ {
			g.maxDJ = r.DJ
		}
	}
	out := make([]readGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *m[k])
	}
	// Deterministic order: lower rows first (matches sweep direction).
	sort.SliceStable(out, func(i, j int) bool { return out[i].dk < out[j].dk })
	return out
}

// CountLCF returns the analytic "elements read per iteration with all
// layer conditions fulfilled": one leading element per distinct array.
func (l *Loop) CountLCF() int {
	seen := map[*Array]bool{}
	for _, r := range l.Reads {
		seen[r.A] = true
	}
	return len(seen)
}

// CountLCB returns the analytic maximum elements read per iteration with
// broken layer conditions: one per distinct (array, row offset).
func (l *Loop) CountLCB() int {
	seen := map[[2]interface{}]bool{}
	for _, r := range l.Reads {
		seen[[2]interface{}{r.A, r.DK}] = true
	}
	return len(seen)
}

// CountWrites returns (writes, updates) per iteration.
func (l *Loop) CountWrites() (wr, upd int) {
	for _, w := range l.Writes {
		wr++
		if w.Update {
			upd++
		}
	}
	return
}

// Validate checks the loop definition.
func (l *Loop) Validate() error {
	if len(l.Writes) == 0 && len(l.Reads) == 0 {
		return fmt.Errorf("trace: loop %s has no accesses", l.Name)
	}
	for _, w := range l.Writes {
		if w.A == nil {
			return fmt.Errorf("trace: loop %s has nil write array", l.Name)
		}
	}
	for _, r := range l.Reads {
		if r.A == nil {
			return fmt.Errorf("trace: loop %s has nil read array", l.Name)
		}
	}
	return nil
}

// Executor replays loops for one simulated core.
type Executor struct {
	H *memsim.Hierarchy
	E *core.StoreEngine
	// NTStores globally enables the per-stream NT flags (the NT_STORE_DIR
	// build knob of the paper's patched CloverLeaf).
	NTStores bool
	// Env describes the run conditions shared by all loops.
	Env Env
}

// Env captures the machine-state part of the store-engine context.
type Env struct {
	Pressure      float64
	NodeFraction  float64
	ActiveSockets int
	PFOn          bool
}

// NewExecutor builds a simulated core for the machine.
func NewExecutor(spec *machine.Spec) *Executor {
	h := memsim.New(spec)
	e := core.NewStoreEngine(h, spec)
	return &Executor{H: h, E: e, Env: Env{PFOn: true}}
}

// SetEnv installs the run conditions (pressure etc.) and prefetch state.
func (x *Executor) SetEnv(env Env) {
	x.Env = env
	x.H.SetPrefetch(env.PFOn)
}

// Run replays one loop over the bounds and returns the traffic delta.
//
// The hierarchy is flushed after the loop (write-backs counted in the
// delta): in the real application every array is far larger than the
// cache, so nothing survives from one loop to the next even though the
// simulation may use a truncated y extent. Within the loop the caches
// work normally, so layer conditions are fully modeled.
func (x *Executor) Run(l *Loop, b Bounds) memsim.Counts {
	before := x.H.Counts()
	x.runBody(l, b)
	x.H.Flush()
	return x.H.Counts().Sub(before)
}

// runBody replays the loop's access pattern.
func (x *Executor) runBody(l *Loop, b Bounds) {
	groups := l.groups()

	// Which write streams actually use NT stores: at most one
	// non-update stream per loop (the compiler's alignment constraint,
	// Sec. V-B), and only when NT mode is on.
	nt := make([]bool, len(l.Writes))
	if x.NTStores {
		for i, w := range l.Writes {
			if w.NT && !w.Update {
				nt[i] = true
				break
			}
		}
	}
	x.E.ConfigureStreams(len(l.Writes), nt)
	x.E.SetContext(core.Context{
		Pressure:      x.Env.Pressure,
		NodeFraction:  x.Env.NodeFraction,
		ActiveSockets: x.Env.ActiveSockets,
		Class:         l.Class(),
		StoreStreams:  len(l.Writes),
		Eligible:      l.Eligible,
		PFOn:          x.Env.PFOn,
	})

	elem := int64(8)
	for k := b.KLo; k <= b.KHi; k++ {
		for _, g := range groups {
			row := k + g.dk
			lo := g.a.Addr(b.JLo+g.minDJ, row)
			hi := g.a.Addr(b.JHi+g.maxDJ, row) + elem - 1
			// Each row is one sequential line run: replay it on the
			// batched memsim fast path.
			x.H.AccessRange(lo>>6, hi>>6-lo>>6+1, memsim.AccessLoad)
		}
		for i, w := range l.Writes {
			row := k + w.DK
			addr := w.A.Addr(b.JLo+w.DJ, row)
			n := int64(b.JHi-b.JLo+1) * elem
			if w.Update {
				// Read-modify-write: the element was already loaded via
				// the Reads list (update streams must appear there too),
				// so the RFO hits in cache and only dirties the line —
				// no write-allocate traffic, one write-back per line.
				lo := addr
				hi := addr + n - 1
				x.H.AccessRange(lo>>6, hi>>6-lo>>6+1, memsim.AccessRFO)
				continue
			}
			x.E.StoreRange(i, addr, n)
		}
	}
	x.E.CloseAll()
}

// RunNoFlush replays a loop without the trailing flush, for callers that
// legitimately measure cache-resident behaviour (microbenchmarks with
// small working sets).
func (x *Executor) RunNoFlush(l *Loop, b Bounds) memsim.Counts {
	before := x.H.Counts()
	x.runBody(l, b)
	return x.H.Counts().Sub(before)
}
