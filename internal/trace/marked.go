package trace

import (
	"cloversim/internal/counters"
	"cloversim/internal/memsim"
)

// RunMarked replays a loop inside a LIKWID-style marker region: the
// region accumulates the traffic delta, the call count, and the loop's
// analytic work (flops, iterations) — the exact measurement flow of the
// paper's instrumented CloverLeaf build.
func (x *Executor) RunMarked(m *counters.Marker, l *Loop, b Bounds) (memsim.Counts, error) {
	m.Start(l.Name)
	c := x.Run(l, b)
	if err := m.Stop(l.Name); err != nil {
		return c, err
	}
	it := b.Iterations()
	m.AddWork(l.Name, int64(l.FlopsPerIt)*it, it)
	return c, nil
}
