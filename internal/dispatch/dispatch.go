// Package dispatch is the remote execution backend of the sweep
// engine: it shards a campaign's cold cells across a fleet of sweepd
// workers over the explicit-scenario form of POST /v1/expand.
//
// The engine stays the host-side brain — memoizer, persistent store
// probe/write-through, deduplication, deterministic grid ordering —
// and hands dispatch one batch of scenarios that genuinely need
// simulation. The fleet turns them into metrics:
//
//   - Capacity-weighted sharding. Each worker advertises its
//     simulation capacity in /v1/healthz; the dispatcher keeps one
//     chunk of that many cells in flight per worker, so a big box
//     naturally pulls more of the campaign than a laptop.
//   - Retry with exclusion. A worker that fails at the transport or
//     HTTP level is excluded for the rest of the batch and its
//     in-flight cells are requeued for the survivors. Only when no
//     live workers remain do the leftover cells fail.
//   - Straggler re-dispatch. When the queue is drained but a chunk
//     has been in flight longer than StragglerAfter, an idle worker
//     re-dispatches it. The first completion wins (the engine's report
//     funnel is idempotent), so duplicated execution can never
//     duplicate results — it only costs the straggler's re-simulation.
//     Recovery from a stalled-but-connected worker therefore needs a
//     second live worker to steal its cells; when the stalled worker
//     is the only one left, the in-flight call is bounded by campaign
//     cancellation (Ctrl-C) and TCP-level failure detection, not by
//     this package — expand requests have no HTTP timeout, because a
//     legitimate cold chunk can simulate for minutes.
//   - Physics hygiene. New refuses to assemble a fleet whose workers
//     disagree with the client's physics version: results simulated
//     under different physics must never merge into one campaign.
//
// Results come back bit-exact (IEEE-754 bits on the wire) and flow
// through the engine's normal write-through, so a distributed campaign
// is byte-identical to a local cold run and exactly as resumable.
//
// Chunks execute over the streaming NDJSON expand mode by default:
// each cell reports the moment its frame arrives, so the engine's
// progress (and any live emitters above it) see remote completions in
// real time instead of at chunk granularity, and a mid-chunk worker
// death costs only the cells whose frames never arrived — the surfaced
// prefix is kept, not re-simulated. Workers predating the streaming
// protocol are detected per response and served buffered,
// transparently; Fleet.Buffered forces the buffered path fleet-wide.
// Workers also advertise their per-request cell cap in healthz, and
// chunks are clamped to it, so a big-capacity worker behind a small
// -max-cells never sees its batches bounced with 400s.
package dispatch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cloversim/internal/sweep"
	"cloversim/internal/sweepd"
)

// defaults for the tunables; see the Fleet fields.
const (
	defaultMaxAttempts    = 3
	defaultStragglerAfter = 30 * time.Second
	healthzTimeout        = 10 * time.Second
)

// worker is one fleet member: its typed client plus the capacity and
// per-request cell cap it advertised at fleet assembly.
type worker struct {
	client   *sweepd.Client
	capacity int
	maxCells int // 0 = not advertised (pre-cap worker), no clamp
}

// chunk is the worker's effective chunk size: its capacity, clamped to
// the largest expand request it accepts.
func (w *worker) chunk() int {
	if w.maxCells > 0 && w.capacity > w.maxCells {
		return w.maxCells
	}
	return w.capacity
}

// Fleet shards scenario batches across sweepd workers. It implements
// sweep.Backend; assemble with New. The exported fields are optional
// tuning, set before the first Execute.
type Fleet struct {
	// MaxAttempts bounds how often one cell may be dispatched (first
	// try, requeues after worker failures or worker-side cancellation,
	// straggler re-dispatches). A cell that exhausts its attempts
	// fails rather than looping forever against a fleet that keeps
	// accepting and bouncing it. <= 0 means 3.
	MaxAttempts int
	// StragglerAfter is how long a dispatched chunk may be in flight
	// before idle workers re-dispatch its cells. <= 0 means 30s. Keep
	// it well above a worker's expected chunk latency: stealing too
	// eagerly wastes simulation, never correctness.
	StragglerAfter time.Duration
	// Buffered forces the buffered expand protocol fleet-wide instead
	// of the streaming default. Results then arrive at chunk
	// granularity: no per-cell progress while a chunk is in flight, and
	// a mid-chunk worker death loses the whole chunk's work. Mixed
	// fleets never need this — a worker that cannot stream is detected
	// per response and served buffered automatically.
	Buffered bool

	workers []*worker
}

// New assembles a fleet from worker base URLs (scheme-less host[:port]
// is promoted to http://). Every worker is probed via /v1/healthz:
// an unreachable worker fails assembly (a fleet that silently starts
// smaller than declared hides operator typos), and so does a worker
// whose physics version differs from the client's — a mixed-physics
// fleet would merge incomparable results into one campaign.
func New(ctx context.Context, urls []string, physics string) (*Fleet, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("dispatch: no workers given")
	}
	// Probe concurrently: with a big fleet, serial 10s health timeouts
	// would delay campaign start (or its fail-fast) by minutes.
	f := &Fleet{workers: make([]*worker, len(urls))}
	errs := make([]error, len(urls))
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			c := sweepd.NewClient(u)
			hctx, cancel := context.WithTimeout(ctx, healthzTimeout)
			h, err := c.Healthz(hctx)
			cancel()
			switch {
			case err != nil:
				errs[i] = fmt.Errorf("dispatch: worker %s: %w", c.BaseURL, err)
				return
			case !h.OK:
				errs[i] = fmt.Errorf("dispatch: worker %s reports not ok", c.BaseURL)
				return
			case h.Physics != physics:
				errs[i] = fmt.Errorf("dispatch: worker %s runs physics %s, this client runs %s; refusing a mixed-physics fleet",
					c.BaseURL, h.Physics, physics)
				return
			}
			// Pin the version on the client too: a worker restarted with
			// a different binary mid-campaign fails its batches (and is
			// then excluded) instead of merging foreign-physics results.
			c.Physics = physics
			capacity := h.Capacity
			if capacity < 1 {
				capacity = 1
			}
			f.workers[i] = &worker{client: c, capacity: capacity, maxCells: h.MaxCells}
		}(i, u)
	}
	wg.Wait()
	// Deterministic error: the first bad worker in argument order, not
	// whichever probe lost the race.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Size reports the number of workers in the fleet.
func (f *Fleet) Size() int { return len(f.workers) }

// Capacity reports the fleet's aggregate simulation capacity.
func (f *Fleet) Capacity() int {
	total := 0
	for _, w := range f.workers {
		total += w.capacity
	}
	return total
}

func (f *Fleet) maxAttempts() int {
	if f.MaxAttempts > 0 {
		return f.MaxAttempts
	}
	return defaultMaxAttempts
}

func (f *Fleet) stragglerAfter() time.Duration {
	if f.StragglerAfter > 0 {
		return f.StragglerAfter
	}
	return defaultStragglerAfter
}

// Execute implements sweep.Backend: one goroutine per worker pulls
// capacity-sized chunks off a shared board until every cell is
// accounted for. Completed cells report exactly once (the board
// deduplicates re-dispatched work); cells that can no longer execute —
// every worker dead, or attempts exhausted — report errors, except
// under a cancelled context, where they are left unreported so the
// engine finalizes them with its distinguished unstarted error.
func (f *Fleet) Execute(ctx context.Context, scenarios []sweep.Scenario, report sweep.ReportFunc) {
	if len(scenarios) == 0 {
		return
	}
	b := newBoard(len(scenarios), len(f.workers))
	// Dispatch requests run under a child context that is cancelled the
	// moment every cell is accounted for: a worker that stalls while
	// connected (frozen process, network black hole) would otherwise
	// hold Execute hostage on its in-flight HTTP call long after
	// straggler re-dispatch finished its cells elsewhere.
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-b.allDone:
			cancel()
		case <-dctx.Done():
		}
	}()
	var wg sync.WaitGroup
	for wi, w := range f.workers {
		wg.Add(1)
		go func(wi int, w *worker) {
			defer wg.Done()
			f.runWorker(dctx, wi, w, b, scenarios, report)
		}(wi, w)
	}
	wg.Wait()
}

// runWorker is one worker's dispatch loop.
func (f *Fleet) runWorker(ctx context.Context, wi int, w *worker, b *board, scenarios []sweep.Scenario, report sweep.ReportFunc) {
	// emit reports board-generated failures (give-ups, dead fleet) —
	// unless the campaign is being cancelled, in which case the cells
	// stay unreported and the engine finalizes them as unstarted, not
	// failed.
	emit := func(fails []failure) {
		cancelled := ctx.Err() != nil
		for _, fl := range fails {
			if !cancelled {
				report(fl.cell, nil, fl.err)
			}
		}
	}
	// handle finalizes one cell's wire result against the board. Shared
	// by the buffered loop and the streaming callback, so the two
	// protocols cannot diverge in retry/dedup semantics.
	handle := func(i int, r sweepd.ExecResult) {
		switch {
		case r.Unstarted:
			// The worker never simulated this cell (its expand
			// deadline, a draining daemon): re-dispatchable.
			emit(b.release(wi, i, f.maxAttempts()))
		case r.Err != nil:
			// A genuine simulation failure is deterministic in the
			// scenario — retrying it elsewhere would just fail again.
			if b.complete(i) {
				report(i, nil, r.Err)
			}
		default:
			if b.complete(i) {
				report(i, r.Metrics, nil)
			}
		}
	}
	for {
		batch := b.take(ctx, wi, w.chunk(), f.stragglerAfter(), f.maxAttempts())
		if len(batch) == 0 {
			return
		}
		sub := make([]sweep.Scenario, len(batch))
		for k, i := range batch {
			sub[k] = scenarios[i]
		}
		var err error
		if f.Buffered {
			var results []sweepd.ExecResult
			if results, err = w.client.ExecuteScenarios(ctx, sub); err == nil {
				for k, r := range results {
					handle(batch[k], r)
				}
			}
		} else {
			// Streaming: each cell finalizes the moment its frame
			// arrives — the engine's progress sees remote completions in
			// real time, and straggler accounting tracks cells, not
			// chunks. surfaced remembers which cells were delivered so a
			// mid-stream failure requeues only the rest.
			surfaced := make([]bool, len(batch))
			_, err = w.client.ExecuteScenariosStream(ctx, sub, func(k int, r sweepd.ExecResult) {
				surfaced[k] = true
				handle(batch[k], r)
			})
			if err != nil {
				var rest []int
				for k, i := range batch {
					if !surfaced[k] {
						rest = append(rest, i)
					}
				}
				batch = rest
			}
		}
		if err != nil {
			// Worker-level failure: exclude this worker for the rest of
			// the batch, requeue its unaccounted cells for the survivors.
			emit(b.workerFailed(wi, batch, f.maxAttempts(),
				fmt.Errorf("dispatch: worker %s failed: %w", w.client.BaseURL, err)))
			return
		}
	}
}

// failure is one cell the board decided can no longer execute.
type failure struct {
	cell int
	err  error
}

// cellState tracks one scenario's dispatch lifecycle on the board.
type cellState struct {
	attempts int
	owners   map[int]bool // worker index -> currently in flight there
	since    time.Time    // start of the most recent dispatch
	done     bool
}

// board is the shared dispatch state: a pending queue, per-cell
// in-flight ownership, and a wake channel so idle workers block
// instead of spinning.
type board struct {
	mu        sync.Mutex
	wake      chan struct{} // closed and replaced on every state change
	allDone   chan struct{} // closed once when remaining reaches 0
	pending   []int
	cells     []cellState
	remaining int // cells not yet done
	live      int // workers not yet failed
	lastFail  error
}

func newBoard(cells, workers int) *board {
	b := &board{
		wake:      make(chan struct{}),
		allDone:   make(chan struct{}),
		pending:   make([]int, cells),
		cells:     make([]cellState, cells),
		remaining: cells,
		live:      workers,
	}
	for i := range b.pending {
		b.pending[i] = i
	}
	return b
}

// decRemaining retires one cell, signalling allDone at zero. Callers
// hold b.mu.
func (b *board) decRemaining() {
	b.remaining--
	if b.remaining == 0 {
		close(b.allDone)
	}
}

// broadcast wakes every blocked take. Callers hold b.mu.
func (b *board) broadcast() {
	close(b.wake)
	b.wake = make(chan struct{})
}

// take hands worker wi its next chunk of up to n cells: pending cells
// first; when the queue is drained, cells another worker has had in
// flight longer than stragglerAfter (and that still have attempts
// left). It blocks while there is nothing to do but other workers are
// still executing, and returns nil when the batch is finished, the
// context is cancelled, or nothing this worker may run remains.
func (b *board) take(ctx context.Context, wi, n int, stragglerAfter time.Duration, maxAttempts int) []int {
	if n < 1 {
		n = 1
	}
	for {
		b.mu.Lock()
		if b.remaining == 0 || ctx.Err() != nil {
			b.mu.Unlock()
			return nil
		}
		var batch []int
		for len(batch) < n && len(b.pending) > 0 {
			i := b.pending[0]
			b.pending = b.pending[1:]
			c := &b.cells[i]
			if c.done {
				continue
			}
			b.claim(c, wi)
			batch = append(batch, i)
		}
		if len(batch) > 0 {
			b.mu.Unlock()
			return batch
		}
		// Queue drained: look for stragglers this worker may steal, and
		// otherwise work out how long until the oldest becomes eligible.
		//lint:allow nondet straggler clock: re-dispatch timing only; first-report-wins keeps results byte-identical
		now := time.Now()
		wait := time.Duration(-1)
		for i := range b.cells {
			c := &b.cells[i]
			if c.done || len(c.owners) == 0 || c.owners[wi] || c.attempts >= maxAttempts {
				continue
			}
			if age := now.Sub(c.since); age >= stragglerAfter {
				b.claim(c, wi)
				batch = append(batch, i)
				if len(batch) == n {
					break
				}
			} else if d := stragglerAfter - age; wait < 0 || d < wait {
				wait = d
			}
		}
		if len(batch) > 0 {
			b.mu.Unlock()
			return batch
		}
		wake := b.wake
		b.mu.Unlock()
		if wait < 0 {
			// Nothing will ever become stealable for this worker without
			// a state change (everything in flight is its own, or out of
			// attempts): block until one happens.
			select {
			case <-wake:
			case <-ctx.Done():
				return nil
			}
			continue
		}
		//lint:allow nondet straggler wake-up timer: scheduling only, never result content
		timer := time.NewTimer(wait + time.Millisecond)
		select {
		case <-wake:
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil
		}
		timer.Stop()
	}
}

// claim marks a cell dispatched to worker wi. The straggler clock
// resets on every claim — a cell that was just re-dispatched must age
// again before a third worker may steal it, or every idle worker would
// pile onto the same straggler at once. Callers hold b.mu.
func (b *board) claim(c *cellState, wi int) {
	c.attempts++
	if c.owners == nil {
		c.owners = make(map[int]bool, 2)
	}
	//lint:allow nondet straggler clock reset on claim: re-dispatch timing only
	c.since = time.Now()
	c.owners[wi] = true
}

// complete finalizes a cell. It reports whether the caller won: a
// re-dispatched cell completes once, every later completion is
// dropped, so duplicated execution can never duplicate results.
func (b *board) complete(i int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := &b.cells[i]
	if c.done {
		return false
	}
	c.done = true
	c.owners = nil
	b.decRemaining()
	b.broadcast()
	return true
}

// release returns one undone cell from worker wi to the queue (the
// worker was cancelled out of it). A cell with no attempts left and no
// other dispatch in flight gives up and is returned as a failure.
func (b *board) release(wi, i int, maxAttempts int) []failure {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.releaseLocked(wi, i, maxAttempts, nil)
}

func (b *board) releaseLocked(wi, i, maxAttempts int, cause error) []failure {
	c := &b.cells[i]
	delete(c.owners, wi)
	if c.done {
		return nil
	}
	if len(c.owners) > 0 {
		// Another worker still has it in flight; its result decides.
		return nil
	}
	if c.attempts >= maxAttempts {
		c.done = true
		b.decRemaining()
		b.broadcast()
		err := fmt.Errorf("dispatch: giving up after %d dispatch attempts", c.attempts)
		if cause != nil {
			err = fmt.Errorf("%w; last: %w", err, cause)
		}
		return []failure{{cell: i, err: err}}
	}
	b.pending = append(b.pending, i)
	b.broadcast()
	return nil
}

// workerFailed excludes worker wi after a transport/HTTP-level failure
// and requeues its in-flight chunk. When it was the last live worker,
// every remaining cell is drained as a failure — there is nobody left
// to execute them.
func (b *board) workerFailed(wi int, batch []int, maxAttempts int, cause error) []failure {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.live--
	b.lastFail = cause
	var fails []failure
	for _, i := range batch {
		fails = append(fails, b.releaseLocked(wi, i, maxAttempts, cause)...)
	}
	if b.live == 0 {
		for i := range b.cells {
			c := &b.cells[i]
			if c.done {
				continue
			}
			c.done = true
			b.decRemaining()
			fails = append(fails, failure{cell: i, err: fmt.Errorf(
				"dispatch: no live workers remain: %w", b.lastFail)})
		}
	}
	b.broadcast()
	return fails
}

// Interface conformance: a fleet is a sweep execution backend.
var _ sweep.Backend = (*Fleet)(nil)
