package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloversim/internal/store"
	"cloversim/internal/sweep"
	"cloversim/internal/sweepd"
)

const testPhysics = "ptest"

// testRunner simulates one scenario deterministically, with a value
// chosen to exercise bit-exact transport (1/3 is not representable).
func testRunner(sims *atomic.Int64) sweep.Runner {
	return func(s sweep.Scenario) (sweep.Metrics, error) {
		sims.Add(1)
		var m sweep.Metrics
		m.Add("v", float64(s.Ranks)/3.0)
		m.Add("w", float64(s.Ranks*1000+s.Threads))
		return m, nil
	}
}

// fleetWorker is one in-process sweepd worker plus its counters.
type fleetWorker struct {
	srv  *httptest.Server
	sims atomic.Int64
	st   *store.Store
}

// startWorker brings up a sweepd worker with the given simulation
// capacity, optionally wrapping its handler (to inject deaths and
// stalls). physics is the store's version, which healthz reports.
func startWorker(t *testing.T, capacity int, physics string, wrap func(http.Handler) http.Handler) *fleetWorker {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "store"), physics)
	if err != nil {
		t.Fatal(err)
	}
	w := &fleetWorker{st: st}
	srv := sweepd.New(st, sweep.IgnoreContext(testRunner(&w.sims)), capacity)
	h := http.Handler(srv.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	w.srv = httptest.NewServer(h)
	t.Cleanup(func() { w.srv.Close(); st.Close() })
	return w
}

// scenarios builds n distinct scenarios.
func scenarios(n int) []sweep.Scenario {
	out := make([]sweep.Scenario, n)
	for i := range out {
		out[i] = sweep.Scenario{Machine: "m", Ranks: i + 1, Threads: i % 3, Seed: 7}
	}
	return out
}

// newFleet assembles a fleet over the given workers or fails the test.
func newFleet(t *testing.T, physics string, ws ...*fleetWorker) *Fleet {
	t.Helper()
	urls := make([]string, len(ws))
	for i, w := range ws {
		urls[i] = w.srv.URL
	}
	f, err := New(context.Background(), urls, physics)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// runCampaign executes the scenarios through a real engine with the
// fleet backend and a persistent client-side store, failing the test
// if the local runner is ever invoked (cold cells must execute
// remotely).
func runCampaign(t *testing.T, f *Fleet, scs []sweep.Scenario) (sweep.Campaign, *store.Store) {
	t.Helper()
	clientStore, err := store.Open(filepath.Join(t.TempDir(), "client"), testPhysics)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clientStore.Close() })
	var localSims atomic.Int64
	eng := sweep.NewEngine(0)
	eng.Backend = f
	eng.Cache = clientStore
	c := eng.RunScenariosContext(context.Background(), scs, func(context.Context, sweep.Scenario) (sweep.Metrics, error) {
		localSims.Add(1)
		return nil, errors.New("local runner must not execute under a fleet backend")
	})
	if n := localSims.Load(); n != 0 {
		t.Errorf("local runner executed %d scenarios; the fleet backend must own execution", n)
	}
	return c, clientStore
}

// TestFleetExecutesCampaign: a healthy 3-worker fleet executes every
// cold cell exactly once in aggregate, bit-exact with local execution,
// and the engine's write-through lands every result in the client
// store.
func TestFleetExecutesCampaign(t *testing.T) {
	a := startWorker(t, 2, testPhysics, nil)
	b := startWorker(t, 2, testPhysics, nil)
	c := startWorker(t, 2, testPhysics, nil)
	f := newFleet(t, testPhysics, a, b, c)
	if f.Size() != 3 || f.Capacity() != 6 {
		t.Fatalf("fleet size %d capacity %d, want 3 and 6", f.Size(), f.Capacity())
	}

	scs := scenarios(12)
	camp, clientStore := runCampaign(t, f, scs)
	if err := camp.Err(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	if len(camp.Results) != 12 {
		t.Fatalf("%d results, want 12", len(camp.Results))
	}
	var ref atomic.Int64
	runLocal := testRunner(&ref)
	for i, r := range camp.Results {
		want, _ := runLocal(scs[i])
		if len(r.Metrics) != len(want) {
			t.Fatalf("result %d: %d metrics, want %d", i, len(r.Metrics), len(want))
		}
		for k := range want {
			if r.Metrics[k] != want[k] {
				t.Errorf("result %d metric %s = %v, want bit-exact %v", i, want[k].Name, r.Metrics[k].Value, want[k].Value)
			}
		}
	}
	total := a.sims.Load() + b.sims.Load() + c.sims.Load()
	if total != 12 {
		t.Errorf("fleet simulated %d cells in aggregate, want exactly 12 (no duplication in a healthy fleet)", total)
	}
	if clientStore.Len() != 12 {
		t.Errorf("client store holds %d records after write-through, want 12", clientStore.Len())
	}
}

// dieAfterSimulating wraps a worker handler so every expand simulates
// normally (work and store writes happen) but the response is a 500 —
// the shape of a worker that dies after computing, before answering.
// healthz stays intact so fleet assembly sees a healthy worker.
func dieAfterSimulating() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				next.ServeHTTP(w, r)
				return
			}
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			http.Error(w, "worker dying", http.StatusInternalServerError)
		})
	}
}

// TestFleetWorkerDiesMidCampaign is the chaos lock for retry with
// exclusion: one of three workers dies after simulating its first
// chunk. The dispatcher must exclude it and re-shard its chunk onto
// the survivors — no lost cells, no duplicated results, and the only
// extra cost is re-simulating the dead worker's in-flight shard.
func TestFleetWorkerDiesMidCampaign(t *testing.T) {
	a := startWorker(t, 2, testPhysics, nil)
	dead := startWorker(t, 2, testPhysics, dieAfterSimulating())
	c := startWorker(t, 2, testPhysics, nil)
	f := newFleet(t, testPhysics, a, dead, c)

	scs := scenarios(12)
	camp, clientStore := runCampaign(t, f, scs)
	if err := camp.Err(); err != nil {
		t.Fatalf("campaign failed despite two live workers: %v", err)
	}

	// No lost cells: every scenario has a successful result; no
	// duplicated cells: results are per-input and each ID appears once
	// per distinct scenario.
	seen := map[string]int{}
	for _, r := range camp.Results {
		if r.Err != nil {
			t.Errorf("cell %s lost to the dead worker: %v", r.ID, r.Err)
		}
		seen[r.ID]++
	}
	if len(seen) != 12 {
		t.Errorf("%d distinct result IDs, want 12", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("cell %s reported %d times, want once", id, n)
		}
	}
	if clientStore.Len() != 12 {
		t.Errorf("client store holds %d records, want all 12", clientStore.Len())
	}

	// Cost accounting: the dead worker simulated exactly its chunk
	// (capacity 2) before dying, and those cells were re-simulated by
	// the survivors — nothing more.
	if n := dead.sims.Load(); n != 2 {
		t.Errorf("dead worker simulated %d cells, want its one chunk of 2", n)
	}
	total := a.sims.Load() + dead.sims.Load() + c.sims.Load()
	if want := int64(12 + 2); total != want {
		t.Errorf("fleet simulated %d cells, want %d (12 + the dead worker's re-simulated shard)", total, want)
	}
}

// stallFirstExpand wraps a worker handler so its first expand request
// blocks for the given delay before simulating — a straggler, not a
// corpse. The stall aborts when the client abandons the request, so
// the test server can shut down promptly.
func stallFirstExpand(delay time.Duration) func(http.Handler) http.Handler {
	var first sync.Once
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				first.Do(func() {
					// Consume the body before stalling: the net/http
					// server only detects a client disconnect (and
					// cancels r.Context) once the request body is read,
					// and the stall must end when the dispatcher
					// abandons the request or server shutdown would
					// block on this handler.
					body, _ := io.ReadAll(r.Body)
					r.Body = io.NopCloser(bytes.NewReader(body))
					t := time.NewTimer(delay)
					defer t.Stop()
					select {
					case <-t.C:
					case <-r.Context().Done():
					}
				})
			}
			next.ServeHTTP(w, r)
		})
	}
}

// TestFleetStragglerReDispatch: a worker that stalls holds its chunk
// hostage; once StragglerAfter passes, idle workers re-dispatch those
// cells and the campaign completes without waiting for the straggler —
// the moment every cell is accounted for, the straggler's in-flight
// request is abandoned and Execute returns. A connected-but-frozen
// worker costs latency bounded by StragglerAfter, never a hang.
func TestFleetStragglerReDispatch(t *testing.T) {
	const stall = 30 * time.Second // far beyond the test timeout if the hang regresses
	a := startWorker(t, 2, testPhysics, nil)
	slow := startWorker(t, 2, testPhysics, stallFirstExpand(stall))
	c := startWorker(t, 2, testPhysics, nil)
	f := newFleet(t, testPhysics, a, slow, c)
	// Long enough that a re-dispatched chunk (trivial simulations)
	// finishes before it could be stolen a second time, short enough
	// to keep the test brisk.
	f.StragglerAfter = 200 * time.Millisecond

	scs := scenarios(12)
	start := time.Now()
	camp, clientStore := runCampaign(t, f, scs)
	elapsed := time.Since(start)
	if err := camp.Err(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	if elapsed >= stall {
		t.Errorf("campaign took %v: Execute waited for the stalled worker", elapsed)
	}
	seen := map[string]int{}
	for _, r := range camp.Results {
		if r.Err != nil {
			t.Errorf("cell %s failed: %v", r.ID, r.Err)
		}
		seen[r.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("cell %s reported %d times, want once (first-wins dedup)", id, n)
		}
	}
	if clientStore.Len() != 12 {
		t.Errorf("client store holds %d records, want 12", clientStore.Len())
	}
	// The stalled worker never simulated (its request was abandoned
	// mid-stall), and its chunk ran exactly once elsewhere.
	total := a.sims.Load() + slow.sims.Load() + c.sims.Load()
	if total != 12 {
		t.Errorf("fleet simulated %d cells, want 12 (the straggler's chunk runs once, elsewhere)", total)
	}
}

// TestFleetRefusesMixedPhysics: fleet assembly must reject a worker
// whose physics version differs from the client's — merging results
// simulated under different physics would silently corrupt campaigns.
func TestFleetRefusesMixedPhysics(t *testing.T) {
	ok := startWorker(t, 2, testPhysics, nil)
	stale := startWorker(t, 2, "pother", nil)
	_, err := New(context.Background(), []string{ok.srv.URL, stale.srv.URL}, testPhysics)
	if err == nil {
		t.Fatal("New accepted a mixed-physics fleet")
	}
	if !strings.Contains(err.Error(), "pother") || !strings.Contains(err.Error(), testPhysics) {
		t.Errorf("error does not name both versions: %v", err)
	}
}

// TestFleetRefusesUnreachableWorker: a dead URL fails assembly rather
// than silently shrinking the fleet.
func TestFleetRefusesUnreachableWorker(t *testing.T) {
	ok := startWorker(t, 2, testPhysics, nil)
	if _, err := New(context.Background(), []string{ok.srv.URL, "127.0.0.1:1"}, testPhysics); err == nil {
		t.Fatal("New accepted an unreachable worker")
	}
	if _, err := New(context.Background(), nil, testPhysics); err == nil {
		t.Fatal("New accepted an empty fleet")
	}
}

// TestFleetAllWorkersDead: when the last live worker fails, the
// remaining cells fail loudly (outside cancellation) instead of
// hanging or vanishing.
func TestFleetAllWorkersDead(t *testing.T) {
	dead := startWorker(t, 2, testPhysics, dieAfterSimulating())
	f := newFleet(t, testPhysics, dead)

	scs := scenarios(6)
	camp, _ := runCampaign(t, f, scs)
	for _, r := range camp.Results {
		if r.Err == nil {
			t.Errorf("cell %s succeeded with no live workers", r.ID)
			continue
		}
		if errors.Is(r.Err, sweep.ErrUnstarted) {
			t.Errorf("cell %s reported unstarted outside cancellation: %v", r.ID, r.Err)
		}
	}
	if camp.Interrupted() {
		t.Error("campaign reads as interrupted; worker death is a failure, not a cancellation")
	}
}

// bounceUnstarted is a fake worker that accepts every expand and
// returns every cell unstarted — the shape of a daemon stuck at its
// expand deadline. healthz reports a healthy worker.
func bounceUnstarted(t *testing.T, physics string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(sweepd.Health{OK: true, Physics: physics, Capacity: 2})
	})
	mux.HandleFunc("POST /v1/expand", func(w http.ResponseWriter, r *http.Request) {
		var spec sweepd.GridSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		type res struct {
			ID        string `json:"id"`
			Key       string `json:"key"`
			Unstarted bool   `json:"unstarted"`
			Error     string `json:"error"`
		}
		out := struct {
			Physics string `json:"physics"`
			Results []res  `json:"results"`
		}{Physics: physics}
		for _, key := range spec.Scenarios {
			s, err := sweep.ParseKey(key)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			out.Results = append(out.Results, res{
				ID: s.ID(), Key: key, Unstarted: true,
				Error: fmt.Sprintf("not started: %s", sweep.ErrUnstarted),
			})
		}
		json.NewEncoder(w).Encode(out)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestFleetGivesUpOnBouncingCells: a worker that keeps accepting and
// bouncing cells must not trap the dispatcher in an infinite requeue
// loop — after MaxAttempts dispatches a cell fails.
func TestFleetGivesUpOnBouncingCells(t *testing.T) {
	srv := bounceUnstarted(t, testPhysics)
	f, err := New(context.Background(), []string{srv.URL}, testPhysics)
	if err != nil {
		t.Fatal(err)
	}
	f.MaxAttempts = 2

	scs := scenarios(3)
	done := make(chan sweep.Campaign, 1)
	go func() {
		camp, _ := runCampaign(t, f, scs)
		done <- camp
	}()
	select {
	case camp := <-done:
		for _, r := range camp.Results {
			if r.Err == nil {
				t.Errorf("cell %s succeeded on a bounce-only worker", r.ID)
			} else if !strings.Contains(r.Err.Error(), "giving up after 2") {
				t.Errorf("cell %s error %v, want a give-up after 2 attempts", r.ID, r.Err)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dispatcher looped forever on a bouncing worker")
	}
}

// TestFleetRejectsMidCampaignPhysicsSwap: a worker whose healthz
// passed assembly but whose responses carry a different physics
// version (restarted with a newer binary, swapped behind a load
// balancer) must have its batches rejected — foreign-physics metrics
// never merge into the campaign or its store.
func TestFleetRejectsMidCampaignPhysicsSwap(t *testing.T) {
	// The real worker simulates under a different physics than it
	// advertises: lie in healthz.
	swapped := startWorker(t, 2, "pswapped", func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodGet {
				json.NewEncoder(w).Encode(sweepd.Health{OK: true, Physics: testPhysics, Capacity: 2})
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	f := newFleet(t, testPhysics, swapped)

	camp, clientStore := runCampaign(t, f, scenarios(4))
	for _, r := range camp.Results {
		if r.Err == nil {
			t.Errorf("cell %s accepted a foreign-physics result", r.ID)
		} else if !strings.Contains(r.Err.Error(), "physics") {
			t.Errorf("cell %s error %v, want a physics rejection", r.ID, r.Err)
		}
	}
	if clientStore.Len() != 0 {
		t.Errorf("client store holds %d foreign-physics records, want 0", clientStore.Len())
	}
}

// TestFleetCancellation: cancelling the campaign context mid-flight
// leaves unexecuted cells unstarted (the engine's distinguished
// cancellation marker), not failed.
func TestFleetCancellation(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	slow := startWorker(t, 1, testPhysics, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				<-release
			}
			next.ServeHTTP(w, r)
		})
	})
	defer once.Do(func() { close(release) })
	f := newFleet(t, testPhysics, slow)

	ctx, cancel := context.WithCancel(context.Background())
	eng := sweep.NewEngine(0)
	eng.Backend = f
	scs := scenarios(5)
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
		once.Do(func() { close(release) })
	}()
	camp := eng.RunScenariosContext(ctx, scs, sweep.IgnoreContext(func(sweep.Scenario) (sweep.Metrics, error) {
		return nil, errors.New("local runner must not execute")
	}))
	if !camp.Interrupted() {
		t.Fatal("cancelled fleet campaign does not read as interrupted")
	}
	for _, r := range camp.Unstarted() {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("unstarted cell %s does not carry the context error: %v", r.ID, r.Err)
		}
	}
}
