package dispatch

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"cloversim/internal/store"
	"cloversim/internal/sweep"
	"cloversim/internal/sweepd"
)

// TestFleetStreamsPerCellProgress: with the streaming protocol, the
// engine's progress sees a remote completion while the rest of its
// chunk is still simulating. The last cell blocks worker-side until
// the client-side engine has reported another cell of the SAME chunk —
// under the buffered protocol that is a deadlock (bounded here by the
// context timeout).
func TestFleetStreamsPerCellProgress(t *testing.T) {
	release := make(chan struct{})
	st, err := store.Open(filepath.Join(t.TempDir(), "store"), testPhysics)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	w := sweepd.New(st, func(ctx context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		if s.Ranks == 4 {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		var m sweep.Metrics
		m.Add("v", float64(s.Ranks)/3.0)
		return m, nil
	}, 4)
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	f, err := New(context.Background(), []string{ts.URL}, testPhysics)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	eng := sweep.NewEngine(0)
	eng.Backend = f
	var once atomic.Bool
	eng.Progress = func(done, total int, r sweep.Result) {
		if r.Scenario.Ranks != 4 && once.CompareAndSwap(false, true) {
			close(release)
		}
	}
	c := eng.RunScenariosContext(ctx, scenarios(4), func(context.Context, sweep.Scenario) (sweep.Metrics, error) {
		return nil, errors.New("local runner must not execute under a fleet backend")
	})
	for _, r := range c.Results {
		if r.Err != nil {
			t.Fatalf("cell %s failed (buffered-granularity progress would deadlock here): %v", r.ID, r.Err)
		}
	}
}

// TestFleetClampsChunksToWorkerMaxCells: a worker whose simulation
// capacity exceeds its advertised per-request cell cap must be fed
// chunks within the cap — otherwise every batch bounces with a 400 and
// the fleet dies on a healthy worker.
func TestFleetClampsChunksToWorkerMaxCells(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "store"), testPhysics)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	var sims atomic.Int64
	srv := sweepd.New(st, sweep.IgnoreContext(testRunner(&sims)), 8)
	srv.MaxCells = 2
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	f, err := New(context.Background(), []string{ts.URL}, testPhysics)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.workers[0].chunk(); got != 2 {
		t.Fatalf("worker chunk = %d with capacity 8 and max_cells 2, want 2", got)
	}
	scs := scenarios(8)
	c, _ := runCampaign(t, f, scs)
	for _, r := range c.Results {
		if r.Err != nil {
			t.Errorf("cell %s failed: %v", r.ID, r.Err)
		}
	}
	if sims.Load() != int64(len(scs)) {
		t.Errorf("%d simulations for %d cells", sims.Load(), len(scs))
	}
}

// TestFleetBufferedOptOut: forcing the buffered protocol fleet-wide
// still executes the campaign correctly — it is a granularity choice,
// never a correctness one.
func TestFleetBufferedOptOut(t *testing.T) {
	w := startWorker(t, 4, testPhysics, nil)
	f := newFleet(t, testPhysics, w)
	f.Buffered = true
	scs := scenarios(6)
	c, _ := runCampaign(t, f, scs)
	for i, r := range c.Results {
		if r.Err != nil {
			t.Fatalf("cell %s failed: %v", r.ID, r.Err)
		}
		if v, _ := r.Metrics.Get("v"); v != float64(scs[i].Ranks)/3.0 {
			t.Errorf("cell %s v = %v, want bit-exact %v", r.ID, v, float64(scs[i].Ranks)/3.0)
		}
	}
	if w.sims.Load() != int64(len(scs)) {
		t.Errorf("%d simulations for %d cells", w.sims.Load(), len(scs))
	}
}

// cutAfterResults wraps a sweepd handler so expand streams die after
// surfacing n result frames: later writes fail, the summary never
// leaves, and the client sees a truncated stream.
func cutAfterResults(n int) func(http.Handler) http.Handler {
	return func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/expand" {
				w = &cutWriter{ResponseWriter: w, allow: n}
			}
			inner.ServeHTTP(w, r)
		})
	}
}

type cutWriter struct {
	http.ResponseWriter
	allow  int
	frames int
	cut    bool
}

func (c *cutWriter) Write(b []byte) (int, error) {
	if c.cut {
		return 0, errors.New("injected connection cut")
	}
	if bytes.Contains(b, []byte(`"result"`)) {
		c.frames++
		if c.frames > c.allow {
			c.cut = true
			return 0, errors.New("injected connection cut")
		}
	}
	return c.ResponseWriter.Write(b)
}

func (c *cutWriter) Unwrap() http.ResponseWriter { return c.ResponseWriter }

// TestFleetKeepsSurfacedPrefixOnStreamDeath: when a worker's stream
// dies mid-chunk, the cells whose frames already arrived are kept —
// only the unsurfaced remainder is requeued for the survivors. The
// campaign completes without failures and the surfaced prefix is never
// re-dispatched.
func TestFleetKeepsSurfacedPrefixOnStreamDeath(t *testing.T) {
	const surfacedBeforeCut = 2
	dying := startWorker(t, 8, testPhysics, cutAfterResults(surfacedBeforeCut))
	healthy := startWorker(t, 1, testPhysics, nil)
	f := newFleet(t, testPhysics, dying, healthy)

	scs := scenarios(8)
	c, clientStore := runCampaign(t, f, scs)
	for i, r := range c.Results {
		if r.Err != nil {
			t.Fatalf("cell %s failed; a mid-stream death must cost only unsurfaced cells: %v", r.ID, r.Err)
		}
		if v, _ := r.Metrics.Get("v"); v != float64(scs[i].Ranks)/3.0 {
			t.Errorf("cell %s v = %v, want bit-exact %v", r.ID, v, float64(scs[i].Ranks)/3.0)
		}
	}
	if clientStore.Len() != len(scs) {
		t.Errorf("client store holds %d records, want %d", clientStore.Len(), len(scs))
	}
	// The surfaced prefix stayed completed: the healthy worker only ever
	// simulated the cells the dying worker failed to surface (plus
	// whatever it grabbed before the death), never the surfaced ones.
	if max := int64(len(scs) - surfacedBeforeCut); healthy.sims.Load() > max {
		t.Errorf("healthy worker simulated %d cells, want <= %d (surfaced prefix must not be re-dispatched)",
			healthy.sims.Load(), max)
	}
}
