package profiler

import (
	"strings"
	"testing"
)

func sample() *Profile {
	return FromKernelSeconds(map[string]float64{
		"advec_mom_kernel":  12998.162,
		"advec_cell_kernel": 7560.869,
		"pdv_kernel":        4553.785,
		"accelerate_kernel": 1953.466,
		"ideal_gas_kernel":  1894.885,
	})
}

func TestProfileSortedAndPercent(t *testing.T) {
	p := sample()
	if p.Entries[0].Name != "advec_mom_kernel" {
		t.Fatalf("top entry = %s", p.Entries[0].Name)
	}
	var sum float64
	for _, e := range p.Entries {
		sum += e.Percent
	}
	if sum < 99.99 || sum > 100.01 {
		t.Fatalf("percentages sum to %g", sum)
	}
	// Listing 2: advec_mom is 35.76% of the total there; here of the
	// 5-kernel subset it must still dominate.
	if p.Entries[0].Percent < 40 {
		t.Errorf("advec_mom share %.1f%%", p.Entries[0].Percent)
	}
}

func TestTop(t *testing.T) {
	p := sample()
	if got := len(p.Top(3)); got != 3 {
		t.Fatalf("Top(3) returned %d", got)
	}
	if got := len(p.Top(100)); got != 5 {
		t.Fatalf("Top(100) returned %d", got)
	}
}

func TestShare(t *testing.T) {
	p := sample()
	s := p.Share("advec_mom_kernel", "advec_cell_kernel", "pdv_kernel")
	if s < 80 || s > 95 {
		t.Errorf("hotspot share = %.1f%%", s)
	}
	if p.Share("nope") != 0 {
		t.Error("unknown kernel has a share")
	}
}

func TestFormat(t *testing.T) {
	out := sample().Format(3)
	if !strings.Contains(out, "<Total>") || !strings.Contains(out, "advec_mom_kernel") {
		t.Fatalf("format missing rows:\n%s", out)
	}
	if strings.Contains(out, "ideal_gas_kernel") {
		t.Fatal("limit not applied")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	p := FromKernelSeconds(map[string]float64{"b": 1, "a": 1, "c": 1})
	if p.Entries[0].Name != "a" || p.Entries[2].Name != "c" {
		t.Fatal("ties must sort by name")
	}
}
