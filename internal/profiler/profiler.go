// Package profiler reproduces the gprofng-style runtime profile of
// Listing 2: exclusive CPU seconds per function, aggregated over all
// ranks, sorted by exclusive time.
package profiler

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is one profile row.
type Entry struct {
	Name    string
	Seconds float64
	Percent float64
}

// Profile is a sorted function profile.
type Profile struct {
	Total   float64
	Entries []Entry
}

// FromKernelSeconds builds a profile from per-kernel aggregate CPU
// seconds (e.g. cloverleaf.NodeModel.KernelSeconds scaled by steps).
func FromKernelSeconds(kernels map[string]float64) *Profile {
	p := &Profile{}
	for name, s := range kernels {
		p.Total += s
		p.Entries = append(p.Entries, Entry{Name: name, Seconds: s})
	}
	sort.Slice(p.Entries, func(i, j int) bool {
		if p.Entries[i].Seconds != p.Entries[j].Seconds {
			return p.Entries[i].Seconds > p.Entries[j].Seconds
		}
		return p.Entries[i].Name < p.Entries[j].Name
	})
	for i := range p.Entries {
		p.Entries[i].Percent = 100 * p.Entries[i].Seconds / p.Total
	}
	return p
}

// Top returns the n most expensive entries.
func (p *Profile) Top(n int) []Entry {
	if n > len(p.Entries) {
		n = len(p.Entries)
	}
	return p.Entries[:n]
}

// Share returns the cumulative percentage of the named functions.
func (p *Profile) Share(names ...string) float64 {
	var s float64
	for _, e := range p.Entries {
		for _, n := range names {
			if e.Name == n {
				s += e.Percent
			}
		}
	}
	return s
}

// Format renders the profile in the gprofng text layout of Listing 2.
func (p *Profile) Format(limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %8s\n", "Name", "Excl. Total", "CPU %")
	fmt.Fprintf(&b, "%-24s %12s %8s\n", "", "sec.", "")
	fmt.Fprintf(&b, "%-24s %12.3f %8.2f\n", "<Total>", p.Total, 100.0)
	for _, e := range p.Top(limit) {
		fmt.Fprintf(&b, "%-24s %12.3f %8.2f\n", e.Name, e.Seconds, e.Percent)
	}
	return b.String()
}
