package sweepd

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"cloversim/internal/store"
	"cloversim/internal/sweep"
)

const syncPhysics = "psync"

func syncStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "store"), syncPhysics)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func putN(t *testing.T, st *store.Store, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		var m sweep.Metrics
		m.Add("v", float64(i)/3.0)
		m.Add("nan", math.NaN())
		if err := st.Put(sweep.Scenario{Machine: "m", Ranks: i + 1, Seed: 3}, m); err != nil {
			t.Fatal(err)
		}
	}
}

// recordsEqualBitExact compares two stores' full live sets for
// bit-exact equality — the convergence criterion of replication.
func recordsEqualBitExact(t *testing.T, a, b *store.Store) {
	t.Helper()
	ra, rb := a.Records(), b.Records()
	if len(ra) != len(rb) {
		t.Fatalf("stores diverge: %d vs %d records", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID || ra[i].Scenario != rb[i].Scenario {
			t.Fatalf("record %d diverges: %s vs %s", i, ra[i].ID, rb[i].ID)
		}
		if len(ra[i].Metrics) != len(rb[i].Metrics) {
			t.Fatalf("record %s metric count diverges", ra[i].ID)
		}
		for j := range ra[i].Metrics {
			ma, mb := ra[i].Metrics[j], rb[i].Metrics[j]
			if ma.Name != mb.Name || math.Float64bits(ma.Value) != math.Float64bits(mb.Value) {
				t.Fatalf("record %s metric %s: %#x vs %#x", ra[i].ID, ma.Name,
					math.Float64bits(ma.Value), math.Float64bits(mb.Value))
			}
		}
	}
}

func nopRunner(context.Context, sweep.Scenario) (sweep.Metrics, error) {
	return nil, fmt.Errorf("sync tests never simulate")
}

// TestSyncConvergesTwoWorkers: worker B replicates from worker A over
// /v1/sync with no shared filesystem, ending with a bit-exact
// identical record set. Follow-up pulls are incremental (watermark),
// and the steady state transfers nothing.
func TestSyncConvergesTwoWorkers(t *testing.T) {
	stA, stB := syncStore(t), syncStore(t)
	putN(t, stA, 0, 5)
	tsA := startServer(t, stA, nopRunner, 1)

	client := NewClient(tsA.URL)
	client.Physics = syncPhysics
	p := &Puller{Client: client, Store: stB}

	n, err := p.Pull(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("first pull applied %d records, want 5", n)
	}
	recordsEqualBitExact(t, stA, stB)

	// A admits two more; the next pull is incremental.
	putN(t, stA, 5, 2)
	if n, err = p.Pull(context.Background()); err != nil || n != 2 {
		t.Fatalf("incremental pull: %d, %v; want 2 records", n, err)
	}
	recordsEqualBitExact(t, stA, stB)

	// Steady state: nothing to transfer.
	if n, err = p.Pull(context.Background()); err != nil || n != 0 {
		t.Fatalf("steady-state pull: %d, %v; want 0 records", n, err)
	}
}

// TestSyncBidirectionalMerge: two workers that each hold records the
// other is missing converge to the union by pulling from each other.
func TestSyncBidirectionalMerge(t *testing.T) {
	stA, stB := syncStore(t), syncStore(t)
	putN(t, stA, 0, 3)
	putN(t, stB, 3, 3)
	tsA := startServer(t, stA, nopRunner, 1)
	tsB := startServer(t, stB, nopRunner, 1)

	cA, cB := NewClient(tsA.URL), NewClient(tsB.URL)
	cA.Physics, cB.Physics = syncPhysics, syncPhysics
	pAB := &Puller{Client: cA, Store: stB} // B pulls from A
	pBA := &Puller{Client: cB, Store: stA} // A pulls from B

	if n, err := pAB.Pull(context.Background()); err != nil || n != 3 {
		t.Fatalf("B<-A pull: %d, %v", n, err)
	}
	// B now holds the union, so A's pull streams all 6 — the 3 records
	// A already holds apply as idempotent no-ops.
	if n, err := pBA.Pull(context.Background()); err != nil || n != 6 {
		t.Fatalf("A<-B pull: %d, %v; want all 6 streamed", n, err)
	}
	if stA.Len() != 6 || stB.Len() != 6 {
		t.Fatalf("stores hold %d and %d records, want 6 each", stA.Len(), stB.Len())
	}
	recordsEqualBitExact(t, stA, stB)
}

// TestSyncRefusesMixedPhysics: both the server (physics query param,
// 409) and the client (header frame check) refuse to merge result sets
// simulated under different physics versions.
func TestSyncRefusesMixedPhysics(t *testing.T) {
	stA := syncStore(t)
	putN(t, stA, 0, 1)
	tsA := startServer(t, stA, nopRunner, 1)

	client := NewClient(tsA.URL)
	client.Physics = "pother"
	_, _, err := client.SyncSince(context.Background(), SyncState{}, func(store.Record) error {
		t.Fatal("record applied across a physics mismatch")
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "mixed-physics") {
		t.Fatalf("server-side refusal missing: %v", err)
	}

	// Client-side defense: a proxy that strips the query still cannot
	// sneak foreign records in — the header frame names the physics.
	resp, err := http.Get(tsA.URL + "/v1/sync")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("paramless sync status %d", resp.StatusCode)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A peer that ignores the physics param and streams its own.
		fmt.Fprintf(w, `{"sync":{"physics":"pforeign","epoch":"e","since":0,"watermark":1,"records":0}}`+"\n")
		fmt.Fprintf(w, `{"summary":{"sent":0,"watermark":1}}`+"\n")
	}))
	t.Cleanup(srv.Close)
	c2 := NewClient(srv.URL)
	c2.Physics = syncPhysics
	if _, _, err := c2.SyncSince(context.Background(), SyncState{}, nil); err == nil ||
		!strings.Contains(err.Error(), "refusing mixed-physics sync") {
		t.Fatalf("client-side refusal missing: %v", err)
	}
}

// TestSyncEpochRestart: compacting the origin renumbers its records
// and mints a new epoch; a puller holding the old watermark must
// transparently restart from zero and still converge (idempotent
// applies, no duplicates).
func TestSyncEpochRestart(t *testing.T) {
	stA, stB := syncStore(t), syncStore(t)
	putN(t, stA, 0, 4)
	tsA := startServer(t, stA, nopRunner, 1)
	client := NewClient(tsA.URL)
	client.Physics = syncPhysics
	p := &Puller{Client: client, Store: stB}

	if n, err := p.Pull(context.Background()); err != nil || n != 4 {
		t.Fatalf("first pull: %d, %v", n, err)
	}
	if _, err := stA.Compact(); err != nil {
		t.Fatal(err)
	}
	putN(t, stA, 4, 1)

	// The old watermark belongs to the pre-compact epoch: the server
	// replays everything, B re-applies idempotently and picks up the
	// new record. No duplicates, full convergence.
	if n, err := p.Pull(context.Background()); err != nil || n != 5 {
		t.Fatalf("post-compact pull: %d, %v; want full 5-record replay", n, err)
	}
	if stB.Len() != 5 {
		t.Fatalf("B holds %d records, want 5", stB.Len())
	}
	recordsEqualBitExact(t, stA, stB)
}

// TestSyncTruncatedStreamKeepsWatermark: a stream that dies before its
// summary frame must error and leave the resume state unadvanced, so
// the records lost with the truncation are pulled again next round.
func TestSyncTruncatedStreamKeepsWatermark(t *testing.T) {
	line, err := store.EncodeRecord(syncPhysics, sweep.Scenario{Machine: "m", Ranks: 1, Seed: 3}, sweep.Metrics{{Name: "v", Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"sync":{"physics":%q,"epoch":"e1","since":0,"watermark":9,"records":3}}`+"\n", syncPhysics)
		fmt.Fprintf(w, `{"record":%s}`+"\n", line[:len(line)-1])
		// ...connection dies here: no summary frame.
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	c.Physics = syncPhysics
	applied := 0
	state, n, err := c.SyncSince(context.Background(), SyncState{Epoch: "old", Watermark: 7},
		func(store.Record) error { applied++; return nil })
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated stream not reported: %v", err)
	}
	if n != 1 || applied != 1 {
		t.Fatalf("applied %d/%d records before truncation, want 1", applied, n)
	}
	if state.Epoch != "old" || state.Watermark != 7 {
		t.Fatalf("truncation advanced the watermark: %+v", state)
	}
}

// TestSyncRejectsForgedRecords: a record frame that fails the store's
// integrity contract (ID not matching its key) must fail the pull, not
// enter the local store.
func TestSyncRejectsForgedRecords(t *testing.T) {
	line, err := store.EncodeRecord(syncPhysics, sweep.Scenario{Machine: "m", Ranks: 1, Seed: 3}, sweep.Metrics{{Name: "v", Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	forged := strings.Replace(string(line[:len(line)-1]), `"id":"`, `"id":"beef`, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"sync":{"physics":%q,"epoch":"e1","since":0,"watermark":1,"records":1}}`+"\n", syncPhysics)
		fmt.Fprintf(w, `{"record":%s}`+"\n", forged)
		fmt.Fprintf(w, `{"summary":{"sent":1,"watermark":1}}`+"\n")
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.Physics = syncPhysics
	if _, _, err := c.SyncSince(context.Background(), SyncState{}, func(store.Record) error {
		t.Fatal("forged record applied")
		return nil
	}); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("forged record not rejected: %v", err)
	}
}

// TestAdminCompact: the admin endpoint compacts a multi-segment live
// store in place and reports the stats; the daemon keeps serving the
// same records afterwards.
func TestAdminCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	// Two sealed segments from previous "processes", then the daemon's
	// own instance.
	for i := 0; i < 2; i++ {
		st, err := store.Open(dir, syncPhysics)
		if err != nil {
			t.Fatal(err)
		}
		putN(t, st, i*2, 2)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := store.Open(dir, syncPhysics)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := startServer(t, st, nopRunner, 1)

	resp, err := http.Post(ts.URL+"/v1/admin/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status %d", resp.StatusCode)
	}
	var cs store.CompactStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	if cs.SegmentsBefore != 2 || cs.SegmentsAfter != 1 || cs.Records != 4 {
		t.Fatalf("compact stats = %s, want 2 segments -> 1, 4 records", cs)
	}
	if st.Len() != 4 {
		t.Fatalf("store serves %d records after compact, want 4", st.Len())
	}
	// And the daemon still serves them over the API.
	r2, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var h Health
	if err := json.NewDecoder(r2.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Records != 4 {
		t.Fatalf("healthz records = %d, want 4", h.Records)
	}
}

// TestPullerRetriesAfterFailedSync: when the local fsync fails after a
// pull, the watermark must not advance — the next pull re-applies the
// same records (idempotently) and re-attempts durability.
func TestPullerRetriesAfterFailedSync(t *testing.T) {
	stA, stB := syncStore(t), syncStore(t)
	putN(t, stA, 0, 3)
	tsA := startServer(t, stA, nopRunner, 1)
	client := NewClient(tsA.URL)
	client.Physics = syncPhysics

	spy := &syncSpyStore{ResultStore: stB, syncErr: fmt.Errorf("disk full")}
	p := &Puller{Client: client, Store: spy}
	if _, err := p.Pull(context.Background()); err == nil {
		t.Fatal("failed fsync not reported")
	}
	spy.syncErr = nil
	n, err := p.Pull(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("retry pull applied %d records, want the same 3 again", n)
	}
	recordsEqualBitExact(t, stA, stB)
}
