// Package sweepd is the campaign result server behind cmd/sweepd: it
// exposes one persistent content-addressed store (internal/store) to
// many concurrent HTTP clients — listing stored scenarios, serving
// results by config hash, and expanding whole campaign grids where
// warm cells come straight from the store and cold cells are simulated
// on a bounded worker pool and written through.
//
// API (all JSON):
//
//	GET  /v1/healthz        liveness + store occupancy
//	GET  /v1/scenarios      every stored record, deterministic key order
//	GET  /v1/results/{id}   one record by scenario config hash
//	POST /v1/expand         expand a grid: warm from store, simulate cold
//
// The expand response uses the exact campaign JSON format cmd/sweep
// writes to campaign.json, so clients can treat the daemon as a remote
// sweep.
//
// Expands are cancellation-correct: each runs under its request
// context (plus the optional Server.ExpandTimeout deadline), so a
// client that disconnects mid-expand stops the server scheduling that
// grid's remaining cold cells and releases its global simulation
// slots immediately; cells already simulating complete and are
// written through, cells never started come back as errors wrapping
// sweep.ErrUnstarted. The store is synced before a 200 response, so
// results the client has been told about survive a daemon crash.
package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime"
	"time"

	"cloversim/internal/store"
	"cloversim/internal/sweep"
	"cloversim/internal/workload"
)

// maxCells bounds one expand request, so a typo'd grid cannot wedge
// the daemon behind a million simulations.
const maxCells = 4096

// ResultStore is the slice of *store.Store the server depends on,
// lifted to an interface so tests can inject durability failures
// (failed Sync) without a real broken filesystem. *store.Store
// implements it.
type ResultStore interface {
	sweep.Cache
	Lookup(id string) (store.Record, bool)
	Records() []store.Record
	Len() int
	Stats() store.Stats
	Physics() string
	Sync() error
}

var _ ResultStore = (*store.Store)(nil)

// Server serves one store. Create with New; safe for concurrent use.
// The exported fields are optional configuration: set them before the
// Handler serves traffic.
type Server struct {
	// ExpandTimeout, when positive, bounds each expand request: the
	// campaign context expires after this long, unstarted cells come
	// back as errors, and the partial response is flagged with an
	// X-Expand-Incomplete header. Zero means no server-side deadline
	// (client disconnect still cancels).
	ExpandTimeout time.Duration
	// ErrorLog receives response-write failures (broken pipes, encode
	// bugs) that cannot reach the client anymore. Nil means
	// log.Default().
	ErrorLog *log.Logger

	st     ResultStore
	eng    *sweep.Engine
	runner sweep.RunnerContext
	sem    chan struct{}
}

// New wires a server onto an open store. The runner simulates cold
// cells; workers bounds simulation concurrency globally across all
// in-flight expand requests (<= 0 means GOMAXPROCS). Results of cold
// simulations are written through to the store.
func New(st ResultStore, runner sweep.RunnerContext, workers int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{st: st, sem: make(chan struct{}, workers)}
	s.eng = sweep.NewEngine(workers)
	s.eng.Cache = st
	// The engine bounds workers per campaign; the semaphore bounds the
	// whole daemon, so concurrent expand requests share one simulation
	// budget instead of multiplying it. The acquire selects on the
	// request context: a cell whose client already disconnected (or
	// whose deadline passed) releases its claim on the global budget
	// immediately instead of simulating into the void.
	s.runner = func(ctx context.Context, sc sweep.Scenario) (sweep.Metrics, error) {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			// The cell never simulated: report it with the engine's
			// distinguished unstarted error, not as a genuine failure.
			return nil, fmt.Errorf("sweepd: waiting for a simulation slot: %w: %w", sweep.ErrUnstarted, ctx.Err())
		}
		defer func() { <-s.sem }()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sweepd: simulation slot acquired after cancellation: %w: %w", sweep.ErrUnstarted, err)
		}
		return runner(ctx, sc)
	}
	return s
}

// logf reports server-side failures that have no client to return to.
func (s *Server) logf(format string, args ...any) {
	l := s.ErrorLog
	if l == nil {
		l = log.Default()
	}
	l.Printf(format, args...)
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("POST /v1/expand", s.handleExpand)
	return mux
}

// writeJSON encodes one response body. Encode failures (typically a
// client that hung up mid-body, occasionally a genuine encoding bug)
// cannot be reported to the client — the status line is gone — so
// they are logged instead of swallowed.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logf("sweepd: %s %s: writing response: %v", r.Method, r.URL.Path, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	s.writeJSON(w, r, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

type healthResponse struct {
	OK      bool   `json:"ok"`
	Physics string `json:"physics"`
	Records int    `json:"records"`
	Stats   string `json:"stats"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, healthResponse{
		OK:      true,
		Physics: s.st.Physics(),
		Records: s.st.Len(),
		Stats:   s.st.Stats().String(),
	})
}

// jsonMetric/jsonRecord mirror the store's wire form: decimal value
// for humans, IEEE-754 bits for clients that need the exact float.
type jsonMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Bits  string  `json:"bits"`
}

type jsonRecord struct {
	ID       string       `json:"id"`
	Key      string       `json:"key"`
	Machine  string       `json:"machine"`
	Workload string       `json:"workload,omitempty"`
	Mode     string       `json:"mode"`
	Ranks    int          `json:"ranks"`
	Mesh     string       `json:"mesh"`
	Threads  int          `json:"threads"`
	Seed     uint64       `json:"seed"`
	Metrics  []jsonMetric `json:"metrics,omitempty"`
}

func toJSONRecord(rec store.Record) jsonRecord {
	jr := jsonRecord{
		ID:       rec.ID,
		Key:      rec.Scenario.Key(),
		Machine:  rec.Scenario.Machine,
		Workload: rec.Scenario.Workload,
		Mode:     rec.Scenario.Mode.Name,
		Ranks:    rec.Scenario.Ranks,
		Mesh:     rec.Scenario.Mesh.String(),
		Threads:  rec.Scenario.Threads,
		Seed:     rec.Scenario.Seed,
	}
	for _, m := range rec.Metrics {
		jr.Metrics = append(jr.Metrics, jsonMetric{
			Name:  m.Name,
			Value: m.Value,
			Bits:  fmt.Sprintf("%016x", math.Float64bits(m.Value)),
		})
	}
	return jr
}

type scenariosResponse struct {
	Physics   string       `json:"physics"`
	Count     int          `json:"count"`
	Scenarios []jsonRecord `json:"scenarios"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	recs := s.st.Records()
	resp := scenariosResponse{
		Physics:   s.st.Physics(),
		Count:     len(recs),
		Scenarios: make([]jsonRecord, 0, len(recs)),
	}
	for _, rec := range recs {
		resp.Scenarios = append(resp.Scenarios, toJSONRecord(rec))
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.st.Lookup(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "no stored result for config hash %q under physics %s", id, s.st.Physics())
		return
	}
	s.writeJSON(w, r, http.StatusOK, toJSONRecord(rec))
}

// GridSpec is the expand request body: the same axes cmd/sweep's flags
// declare, with modes and meshes by name. Empty axes mean the runner
// default, exactly as in sweep.Grid.
type GridSpec struct {
	Machines  []string `json:"machines"`
	Workloads []string `json:"workloads"`
	Modes     []string `json:"modes"`
	Ranks     []int    `json:"ranks"`
	Meshes    []string `json:"meshes"`
	Threads   []int    `json:"threads"`
	MaxRows   int      `json:"maxrows"`
	Seed      uint64   `json:"seed"`
}

// Grid validates the spec and resolves it, through the same shared
// axis validators cmd/sweep's flags use, so the CLI and the HTTP API
// accept identical grids.
func (g GridSpec) Grid() (sweep.Grid, error) {
	grid := sweep.Grid{
		Machines:  g.Machines,
		Workloads: g.Workloads,
		Ranks:     g.Ranks,
		Threads:   g.Threads,
		MaxRows:   g.MaxRows,
		Seed:      g.Seed,
	}
	if err := workload.ValidateAxes(g.Machines, g.Workloads); err != nil {
		return sweep.Grid{}, err
	}
	var err error
	if grid.Modes, err = sweep.ModesByName(g.Modes); err != nil {
		return sweep.Grid{}, err
	}
	if grid.Meshes, err = sweep.ParseMeshes(g.Meshes); err != nil {
		return sweep.Grid{}, err
	}
	return grid, nil
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	var spec GridSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad grid spec: %v", err)
		return
	}
	grid, err := spec.Grid()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if n := grid.Size(); n > maxCells {
		s.writeError(w, r, http.StatusBadRequest, "grid has %d cells, limit %d", n, maxCells)
		return
	}
	// The campaign runs under the request context: a client that
	// disconnects mid-expand stops cold-cell scheduling instead of
	// simulating the rest of the grid into a dead socket, and the
	// per-request deadline (when configured) bounds how long one grid
	// may hold simulation slots.
	ctx := r.Context()
	if s.ExpandTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.ExpandTimeout)
		defer cancel()
	}
	c := s.eng.RunContext(ctx, grid, s.runner)
	// Durability before acknowledgement: a 200 without X-Store-Error
	// asserts every result in the body is durable. The engine memoizer
	// can serve results whose write-through failed — in this request
	// (CacheErr) or an earlier one — so verify each successful cell is
	// indexed and, since the metrics are in hand, repair misses by
	// retrying the Put (a transient disk-full must not condemn the
	// cell to X-Store-Error, let alone for the daemon's lifetime).
	// Post-repair verification subsumes CacheErr: only a cell that is
	// STILL not persistable flags the loss. The Sync runs after the
	// repairs so they ride the same pre-response fsync; it is free on
	// a clean store (the all-warm steady state) and re-attempts a
	// fsync an earlier request failed rather than vouching for it.
	var storeErr error
	for _, res := range c.Results {
		if res.Err != nil {
			continue
		}
		if _, ok := s.st.Lookup(res.ID); ok {
			continue
		}
		if perr := s.st.Put(res.Scenario, res.Metrics); perr != nil {
			storeErr = errors.Join(storeErr, fmt.Errorf("sweepd: result %s served from memory but not persistable: %w", res.ID, perr))
		}
	}
	if err := s.st.Sync(); err != nil {
		storeErr = errors.Join(storeErr, err)
	}
	if c.CacheErr != nil {
		// Worth a trace even when repaired: write-throughs failing at
		// all is an operational smell.
		s.logf("sweepd: POST /v1/expand: write-through: %v", c.CacheErr)
	}
	w.Header().Set("Content-Type", "application/json")
	if storeErr != nil {
		// The campaign is correct — the durability loss is server-side.
		// Discarding computed results would only force clients into a
		// re-simulation loop, so serve them and flag the loss in a
		// header (headers must precede the body).
		s.logf("sweepd: POST /v1/expand: store: %v", storeErr)
		w.Header().Set("X-Store-Error", "store writes failed; results not persisted")
	}
	if c.Interrupted() {
		// Cancelled mid-grid (deadline hit, or client gone — then
		// nobody reads this): the body is a partial campaign whose
		// unstarted cells carry errors. Flag it so clients distinguish
		// "incomplete" from "simulation failed". Keyed on the campaign,
		// not ctx.Err(): a deadline that fires after the last cell
		// finalized did not cost the client anything.
		reason := "campaign cancelled"
		if err := ctx.Err(); err != nil {
			reason = err.Error()
		}
		w.Header().Set("X-Expand-Incomplete", reason)
	}
	w.WriteHeader(http.StatusOK)
	if err := (sweep.JSONEmitter{Indent: true}).Emit(w, c); err != nil {
		s.logf("sweepd: POST /v1/expand: writing campaign: %v", err)
	}
}
