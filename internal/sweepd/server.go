// Package sweepd is the campaign result server behind cmd/sweepd: it
// exposes one persistent content-addressed store (internal/store) to
// many concurrent HTTP clients — listing stored scenarios, serving
// results by config hash, and expanding whole campaign grids where
// warm cells come straight from the store and cold cells are simulated
// on a bounded worker pool and written through.
//
// API (all JSON):
//
//	GET  /v1/healthz           liveness, store occupancy, simulation capacity
//	GET  /v1/scenarios         every stored record, deterministic key order
//	GET  /v1/results/{id}      one record by scenario config hash
//	POST /v1/expand            expand a grid: warm from store, simulate cold
//	GET  /v1/sync              stream records a peer is missing (replication)
//	POST /v1/admin/compact     merge the store's segments into one
//
// An expand body is either a grid (axes by name, the cross product is
// executed) or an explicit scenario list (canonical scenario keys, the
// dispatch protocol's form — the worker executes cells it has never
// seen). The grid form responds with the exact campaign JSON format
// cmd/sweep writes to campaign.json, so clients can treat the daemon
// as a remote sweep; the explicit form responds with a typed result
// list carrying bit-exact IEEE-754 metric bits, so a dispatcher can
// merge fleet results into a byte-identical campaign.
//
// Expand additionally has a streaming mode, negotiated with
// "Accept: application/x-ndjson": the response is NDJSON — one JSON
// object per line — emitting each cell's result (same exact-bits
// encoding as the buffered explicit form) the moment it finalizes,
// framed as a tagged union:
//
//	{"stream":{...}}    first line: physics + scenario count
//	{"result":{...}}    one per cell, completion order
//	{"summary":{...}}   last line: counts + incomplete/store status
//
// Because headers leave with the first flushed frame, the
// X-Expand-Incomplete / X-Store-Error signals of the buffered mode
// ride in the terminal summary frame instead. A stream that ends
// without a summary line was truncated and must not be trusted.
//
// Healthz reports the daemon's simulation capacity (worker slots), the
// number of in-flight expand requests, and the physics version, so a
// dispatcher can weight shards by capacity and refuse mixed-physics
// fleets.
//
// Expands are cancellation-correct: each runs under its request
// context (plus the optional Server.ExpandTimeout deadline), so a
// client that disconnects mid-expand stops the server scheduling that
// grid's remaining cold cells and releases its global simulation
// slots immediately; cells already simulating complete and are
// written through, cells never started come back as errors wrapping
// sweep.ErrUnstarted. The store is synced before a 200 response, so
// results the client has been told about survive a daemon crash.
package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"cloversim/internal/store"
	"cloversim/internal/sweep"
	"cloversim/internal/workload"
)

// DefaultMaxCells bounds one expand request when Server.MaxCells is
// unset, so a typo'd grid cannot wedge the daemon behind a million
// simulations.
const DefaultMaxCells = 4096

// ResultStore is the slice of *store.Store the server depends on,
// lifted to an interface so tests can inject durability failures
// (failed Sync) without a real broken filesystem. *store.Store
// implements it.
type ResultStore interface {
	sweep.Cache
	Lookup(id string) (store.Record, bool)
	Records() []store.Record
	Len() int
	Stats() store.Stats
	Physics() string
	Sync() error
	// Replication and maintenance surface (see sync.go): Epoch and
	// IDsSince drive /v1/sync watermarks, Compact backs the admin
	// compaction endpoint.
	Epoch() string
	IDsSince(since uint64) (ids []string, watermark uint64)
	Compact() (store.CompactStats, error)
}

var _ ResultStore = (*store.Store)(nil)

// Server serves one store. Create with New; safe for concurrent use.
// The exported fields are optional configuration: set them before the
// Handler serves traffic.
type Server struct {
	// ExpandTimeout, when positive, bounds each expand request: the
	// campaign context expires after this long, unstarted cells come
	// back as errors, and the partial response is flagged with an
	// X-Expand-Incomplete header. Zero means no server-side deadline
	// (client disconnect still cancels).
	ExpandTimeout time.Duration
	// ErrorLog receives response-write failures (broken pipes, encode
	// bugs) that cannot reach the client anymore. Nil means
	// log.Default().
	ErrorLog *log.Logger
	// MaxCells caps the cell count of one expand request, grid or
	// explicit form. Zero means DefaultMaxCells. The cap is advertised
	// in /v1/healthz as max_cells so dispatchers can clamp their chunk
	// sizes up front instead of discovering the limit through 400s.
	MaxCells int

	st       ResultStore
	eng      *sweep.Engine
	runner   sweep.RunnerContext
	sem      chan struct{}
	inflight atomic.Int64 // expand requests currently being served
}

// New wires a server onto an open store. The runner simulates cold
// cells; workers bounds simulation concurrency globally across all
// in-flight expand requests (<= 0 means GOMAXPROCS). Results of cold
// simulations are written through to the store.
func New(st ResultStore, runner sweep.RunnerContext, workers int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{st: st, sem: make(chan struct{}, workers)}
	s.eng = sweep.NewEngine(workers)
	s.eng.Cache = st
	// The engine bounds workers per campaign; the semaphore bounds the
	// whole daemon, so concurrent expand requests share one simulation
	// budget instead of multiplying it. The acquire selects on the
	// request context: a cell whose client already disconnected (or
	// whose deadline passed) releases its claim on the global budget
	// immediately instead of simulating into the void.
	s.runner = func(ctx context.Context, sc sweep.Scenario) (sweep.Metrics, error) {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			// The cell never simulated: report it with the engine's
			// distinguished unstarted error, not as a genuine failure.
			return nil, fmt.Errorf("sweepd: waiting for a simulation slot: %w: %w", sweep.ErrUnstarted, ctx.Err())
		}
		defer func() { <-s.sem }()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sweepd: simulation slot acquired after cancellation: %w: %w", sweep.ErrUnstarted, err)
		}
		return runner(ctx, sc)
	}
	return s
}

// maxCells resolves the per-expand cell cap.
func (s *Server) maxCells() int {
	if s.MaxCells > 0 {
		return s.MaxCells
	}
	return DefaultMaxCells
}

// logf reports server-side failures that have no client to return to.
func (s *Server) logf(format string, args ...any) {
	l := s.ErrorLog
	if l == nil {
		l = log.Default()
	}
	l.Printf(format, args...)
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("POST /v1/expand", s.handleExpand)
	mux.HandleFunc("GET /v1/sync", s.handleSync)
	mux.HandleFunc("POST /v1/admin/compact", s.handleCompact)
	return mux
}

// writeJSON encodes one response body. Encode failures (typically a
// client that hung up mid-body, occasionally a genuine encoding bug)
// cannot be reported to the client — the status line is gone — so
// they are logged instead of swallowed.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logf("sweepd: %s %s: writing response: %v", r.Method, r.URL.Path, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	s.writeJSON(w, r, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Health is the /v1/healthz response. Capacity and InFlight are what a
// dispatcher shards by: Capacity is the daemon's global simulation
// worker-slot count (the most cold cells it will run concurrently),
// InFlight the number of expand requests currently being served.
// Physics lets a dispatcher refuse mixed-physics fleets — results
// simulated under different physics versions must never merge into one
// campaign. MaxCells is the largest expand this daemon accepts, so a
// dispatcher clamps its chunk sizes instead of tripping 400s.
type Health struct {
	OK       bool   `json:"ok"`
	Physics  string `json:"physics"`
	Records  int    `json:"records"`
	Stats    string `json:"stats"`
	Capacity int    `json:"capacity"`
	InFlight int    `json:"inflight"`
	MaxCells int    `json:"max_cells"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, Health{
		OK:       true,
		Physics:  s.st.Physics(),
		Records:  s.st.Len(),
		Stats:    s.st.Stats().String(),
		Capacity: cap(s.sem),
		InFlight: int(s.inflight.Load()),
		MaxCells: s.maxCells(),
	})
}

// jsonMetric/jsonRecord mirror the store's wire form: decimal value
// for humans, IEEE-754 bits for clients that need the exact float.
// The decimal mirror is best-effort — JSON cannot carry NaN/Inf, so
// exactly those drop the value field (a pointer, so finite zeros stay)
// and the bits alone are authoritative; encoding NaN as a number would
// abort the whole response encode mid-body.
type jsonMetric struct {
	Name  string   `json:"name"`
	Value *float64 `json:"value,omitempty"`
	Bits  string   `json:"bits"`
}

// toJSONMetrics renders metrics in the shared wire form used by both
// /v1/results and the explicit-expand response, so the two surfaces
// cannot drift.
func toJSONMetrics(ms sweep.Metrics) []jsonMetric {
	out := make([]jsonMetric, 0, len(ms))
	for _, m := range ms {
		jm := jsonMetric{
			Name: m.Name,
			Bits: fmt.Sprintf("%016x", math.Float64bits(m.Value)),
		}
		if v := m.Value; !math.IsNaN(v) && !math.IsInf(v, 0) {
			jm.Value = &v
		}
		out = append(out, jm)
	}
	return out
}

type jsonRecord struct {
	ID       string       `json:"id"`
	Key      string       `json:"key"`
	Machine  string       `json:"machine"`
	Workload string       `json:"workload,omitempty"`
	Mode     string       `json:"mode"`
	Ranks    int          `json:"ranks"`
	Mesh     string       `json:"mesh"`
	Threads  int          `json:"threads"`
	Seed     uint64       `json:"seed"`
	Metrics  []jsonMetric `json:"metrics,omitempty"`
}

func toJSONRecord(rec store.Record) jsonRecord {
	jr := jsonRecord{
		ID:       rec.ID,
		Key:      rec.Scenario.Key(),
		Machine:  rec.Scenario.Machine,
		Workload: rec.Scenario.Workload,
		Mode:     rec.Scenario.Mode.Name,
		Ranks:    rec.Scenario.Ranks,
		Mesh:     rec.Scenario.Mesh.String(),
		Threads:  rec.Scenario.Threads,
		Seed:     rec.Scenario.Seed,
	}
	jr.Metrics = toJSONMetrics(rec.Metrics)
	return jr
}

type scenariosResponse struct {
	Physics   string       `json:"physics"`
	Count     int          `json:"count"`
	Scenarios []jsonRecord `json:"scenarios"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	recs := s.st.Records()
	resp := scenariosResponse{
		Physics:   s.st.Physics(),
		Count:     len(recs),
		Scenarios: make([]jsonRecord, 0, len(recs)),
	}
	for _, rec := range recs {
		resp.Scenarios = append(resp.Scenarios, toJSONRecord(rec))
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.st.Lookup(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "no stored result for config hash %q under physics %s", id, s.st.Physics())
		return
	}
	s.writeJSON(w, r, http.StatusOK, toJSONRecord(rec))
}

// GridSpec is the expand request body: the same axes cmd/sweep's flags
// declare, with modes and meshes by name — or, in its explicit form,
// canonical scenario keys to execute verbatim. It is the shared
// sweep.GridSpec, so the CLI and the HTTP API validate grids through
// one code path.
type GridSpec = sweep.GridSpec

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	var spec GridSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad grid spec: %v", err)
		return
	}
	var scenarios []sweep.Scenario
	explicit := spec.IsExplicit()
	if explicit {
		// Explicit form: the dispatch protocol hands this worker cells
		// it has never seen, as canonical keys. Malformed keys and
		// mixed-form specs are client errors; per-scenario resolution
		// failures (unknown machine, bad ranks) surface as per-cell
		// results, exactly as in a grid expand.
		var err error
		if scenarios, err = spec.Explicit(); err != nil {
			s.writeError(w, r, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		grid, err := spec.Resolve(workload.ValidateAxes)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "%v", err)
			return
		}
		if n, limit := grid.Size(), s.maxCells(); n > limit {
			s.writeError(w, r, http.StatusBadRequest, "grid has %d cells, limit %d", n, limit)
			return
		}
		scenarios = grid.Expand()
	}
	if n, limit := len(scenarios), s.maxCells(); n > limit {
		s.writeError(w, r, http.StatusBadRequest, "%d scenarios, limit %d", n, limit)
		return
	}
	// The campaign runs under the request context: a client that
	// disconnects mid-expand stops cold-cell scheduling instead of
	// simulating the rest of the grid into a dead socket, and the
	// per-request deadline (when configured) bounds how long one grid
	// may hold simulation slots.
	ctx := r.Context()
	if s.ExpandTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.ExpandTimeout)
		defer cancel()
	}
	if acceptsNDJSON(r.Header.Get("Accept")) {
		s.expandStream(w, ctx, scenarios)
		return
	}
	c := s.eng.RunScenariosContext(ctx, scenarios, s.runner)
	storeErr := s.persist(c)
	w.Header().Set("Content-Type", "application/json")
	if storeErr != nil {
		// The campaign is correct — the durability loss is server-side.
		// Discarding computed results would only force clients into a
		// re-simulation loop, so serve them and flag the loss in a
		// header (headers must precede the body).
		s.logf("sweepd: POST /v1/expand: store: %v", storeErr)
		w.Header().Set("X-Store-Error", "store writes failed; results not persisted")
	}
	if c.Interrupted() {
		// Cancelled mid-grid (deadline hit, or client gone — then
		// nobody reads this): the body is a partial campaign whose
		// unstarted cells carry errors. Flag it so clients distinguish
		// "incomplete" from "simulation failed". Keyed on the campaign,
		// not ctx.Err(): a deadline that fires after the last cell
		// finalized did not cost the client anything.
		reason := "campaign cancelled"
		if err := ctx.Err(); err != nil {
			reason = err.Error()
		}
		w.Header().Set("X-Expand-Incomplete", reason)
	}
	w.WriteHeader(http.StatusOK)
	if explicit {
		if err := encodeExecuteResponse(w, s.st.Physics(), c); err != nil {
			s.logf("sweepd: POST /v1/expand: writing results: %v", err)
		}
		return
	}
	if err := (sweep.JSONEmitter{Indent: true}).Emit(w, c); err != nil {
		s.logf("sweepd: POST /v1/expand: writing campaign: %v", err)
	}
}

// persist enforces durability before acknowledgement: a response
// without a store-error signal asserts every result in it is durable.
// The engine memoizer can serve results whose write-through failed —
// in this request (CacheErr) or an earlier one — so verify each
// successful cell is indexed and, since the metrics are in hand,
// repair misses by retrying the Put (a transient disk-full must not
// condemn the cell to a store error, let alone for the daemon's
// lifetime). Post-repair verification subsumes CacheErr: only a cell
// that is STILL not persistable flags the loss. The Sync runs after
// the repairs so they ride the same pre-response fsync; it is free on
// a clean store (the all-warm steady state) and re-attempts a fsync an
// earlier request failed rather than vouching for it.
func (s *Server) persist(c sweep.Campaign) error {
	var storeErr error
	for _, res := range c.Results {
		if res.Err != nil {
			continue
		}
		if _, ok := s.st.Lookup(res.ID); ok {
			continue
		}
		if perr := s.st.Put(res.Scenario, res.Metrics); perr != nil {
			storeErr = errors.Join(storeErr, fmt.Errorf("sweepd: result %s served from memory but not persistable: %w", res.ID, perr))
		}
	}
	if err := s.st.Sync(); err != nil {
		storeErr = errors.Join(storeErr, err)
	}
	if c.CacheErr != nil {
		// Worth a trace even when repaired: write-throughs failing at
		// all is an operational smell.
		s.logf("sweepd: POST /v1/expand: write-through: %v", c.CacheErr)
	}
	return storeErr
}

// acceptsNDJSON reports whether an Accept header asks for the
// streaming expand response. Deliberately an exact media-type match
// per comma-separated entry: */* or application/* keep the buffered
// default — streaming is opt-in, never inferred.
func acceptsNDJSON(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(part, ";")
		if strings.EqualFold(strings.TrimSpace(mt), "application/x-ndjson") {
			return true
		}
	}
	return false
}

// streamFrame is one NDJSON line of a streaming expand: exactly one
// of the fields is set, making each line self-describing.
type streamFrame struct {
	Stream  *streamHeader  `json:"stream,omitempty"`
	Result  *executeResult `json:"result,omitempty"`
	Summary *streamSummary `json:"summary,omitempty"`
}

// streamHeader opens the stream before any cell has finished, letting
// clients fail fast on a physics mismatch instead of discovering it
// after the last cell.
type streamHeader struct {
	Physics   string `json:"physics"`
	Scenarios int    `json:"scenarios"`
}

// streamSummary closes the stream. It carries what the buffered mode
// puts in headers — headers left with the first flushed frame, so
// completion and durability status can only ride here. ok + failed +
// unstarted == scenarios; unstarted cells (cancelled before they ran)
// are not failures. Incomplete and StoreError mirror the
// X-Expand-Incomplete and X-Store-Error header values.
type streamSummary struct {
	Scenarios  int    `json:"scenarios"`
	OK         int    `json:"ok"`
	Failed     int    `json:"failed"`
	Unstarted  int    `json:"unstarted"`
	Incomplete string `json:"incomplete,omitempty"`
	StoreError string `json:"store_error,omitempty"`
}

// expandStream serves one expand as NDJSON frames, emitting each cell
// the moment the engine finalizes it. Results stream before the
// durability repair can run, so — unlike the buffered mode — a frame
// is not an acknowledgement of persistence; the summary's store_error
// is. The engine serializes progress callbacks, so writeFrame needs no
// lock of its own.
func (s *Server) expandStream(w http.ResponseWriter, ctx context.Context, scenarios []sweep.Scenario) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	var writeErr error
	writeFrame := func(f streamFrame) {
		if writeErr != nil {
			return
		}
		b, err := json.Marshal(f)
		if err == nil {
			b = append(b, '\n')
			_, err = w.Write(b)
		}
		if err == nil {
			// Flush per frame: the point of the stream is that the
			// client sees a cell the moment it completes, not when the
			// buffer happens to fill. A writer without flush support
			// (plain buffered proxy) still gets correct bytes.
			if ferr := rc.Flush(); ferr != nil && !errors.Is(ferr, http.ErrNotSupported) {
				err = ferr
			}
		}
		if err != nil {
			// The client is gone (or the connection broke): remember
			// the first failure and stop writing. The campaign itself
			// keeps running under its own context — cancellation is the
			// request context's job, not the response writer's.
			writeErr = err
		}
	}
	writeFrame(streamFrame{Stream: &streamHeader{Physics: s.st.Physics(), Scenarios: len(scenarios)}})
	c := s.eng.RunScenariosContextProgress(ctx, scenarios, s.runner,
		func(done, total int, res sweep.Result) {
			er := toExecuteResult(res)
			writeFrame(streamFrame{Result: &er})
		})
	storeErr := s.persist(c)
	sum := streamSummary{Scenarios: len(c.Results)}
	for _, res := range c.Results {
		switch {
		case res.Err == nil:
			sum.OK++
		case errors.Is(res.Err, sweep.ErrUnstarted):
			sum.Unstarted++
		default:
			sum.Failed++
		}
	}
	if c.Interrupted() {
		// Same keying as the buffered mode's X-Expand-Incomplete: on
		// the campaign, not ctx.Err() — a deadline that fires after the
		// last cell finalized did not cost the client anything.
		reason := "campaign cancelled"
		if err := ctx.Err(); err != nil {
			reason = err.Error()
		}
		sum.Incomplete = reason
	}
	if storeErr != nil {
		s.logf("sweepd: POST /v1/expand: store: %v", storeErr)
		sum.StoreError = "store writes failed; results not persisted"
	}
	writeFrame(streamFrame{Summary: &sum})
	if writeErr != nil {
		s.logf("sweepd: POST /v1/expand: writing stream: %v", writeErr)
	}
}

// executeResponse is the explicit-form expand response: one result per
// requested scenario, in request order. Metric values carry their
// IEEE-754 bits so the dispatcher's merged campaign is bit-exact with
// a local run; Unstarted distinguishes cells this worker was cancelled
// out of (re-dispatchable) from genuine simulation failures (final).
type executeResponse struct {
	Physics string          `json:"physics"`
	Results []executeResult `json:"results"`
}

type executeResult struct {
	ID        string       `json:"id"`
	Key       string       `json:"key"`
	Unstarted bool         `json:"unstarted,omitempty"`
	Error     string       `json:"error,omitempty"`
	Metrics   []jsonMetric `json:"metrics,omitempty"`
}

// toExecuteResult renders one finalized cell in the exact-bits wire
// form — shared by the buffered explicit response and the streaming
// result frames so the two encodings cannot drift.
func toExecuteResult(res sweep.Result) executeResult {
	er := executeResult{ID: res.ID, Key: res.Scenario.Key()}
	if res.Err != nil {
		er.Error = res.Err.Error()
		er.Unstarted = errors.Is(res.Err, sweep.ErrUnstarted)
	} else {
		er.Metrics = toJSONMetrics(res.Metrics)
	}
	return er
}

func encodeExecuteResponse(w io.Writer, physics string, c sweep.Campaign) error {
	resp := executeResponse{
		Physics: physics,
		Results: make([]executeResult, 0, len(c.Results)),
	}
	for _, res := range c.Results {
		resp.Results = append(resp.Results, toExecuteResult(res))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}
