// Package sweepd is the campaign result server behind cmd/sweepd: it
// exposes one persistent content-addressed store (internal/store) to
// many concurrent HTTP clients — listing stored scenarios, serving
// results by config hash, and expanding whole campaign grids where
// warm cells come straight from the store and cold cells are simulated
// on a bounded worker pool and written through.
//
// API (all JSON):
//
//	GET  /v1/healthz        liveness + store occupancy
//	GET  /v1/scenarios      every stored record, deterministic key order
//	GET  /v1/results/{id}   one record by scenario config hash
//	POST /v1/expand         expand a grid: warm from store, simulate cold
//
// The expand response uses the exact campaign JSON format cmd/sweep
// writes to campaign.json, so clients can treat the daemon as a remote
// sweep.
package sweepd

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"

	"cloversim/internal/store"
	"cloversim/internal/sweep"
	"cloversim/internal/workload"
)

// maxCells bounds one expand request, so a typo'd grid cannot wedge
// the daemon behind a million simulations.
const maxCells = 4096

// Server serves one store. Create with New; safe for concurrent use.
type Server struct {
	st     *store.Store
	eng    *sweep.Engine
	runner sweep.Runner
	sem    chan struct{}
}

// New wires a server onto an open store. The runner simulates cold
// cells; workers bounds simulation concurrency globally across all
// in-flight expand requests (<= 0 means GOMAXPROCS). Results of cold
// simulations are written through to the store.
func New(st *store.Store, runner sweep.Runner, workers int) *Server {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{st: st, sem: make(chan struct{}, workers)}
	s.eng = sweep.NewEngine(workers)
	s.eng.Cache = st
	// The engine bounds workers per campaign; the semaphore bounds the
	// whole daemon, so concurrent expand requests share one simulation
	// budget instead of multiplying it.
	s.runner = func(sc sweep.Scenario) (sweep.Metrics, error) {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		return runner(sc)
	}
	return s
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("POST /v1/expand", s.handleExpand)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

type healthResponse struct {
	OK      bool   `json:"ok"`
	Physics string `json:"physics"`
	Records int    `json:"records"`
	Stats   string `json:"stats"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		OK:      true,
		Physics: s.st.Physics(),
		Records: s.st.Len(),
		Stats:   s.st.Stats().String(),
	})
}

// jsonMetric/jsonRecord mirror the store's wire form: decimal value
// for humans, IEEE-754 bits for clients that need the exact float.
type jsonMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Bits  string  `json:"bits"`
}

type jsonRecord struct {
	ID       string       `json:"id"`
	Key      string       `json:"key"`
	Machine  string       `json:"machine"`
	Workload string       `json:"workload,omitempty"`
	Mode     string       `json:"mode"`
	Ranks    int          `json:"ranks"`
	Mesh     string       `json:"mesh"`
	Threads  int          `json:"threads"`
	Seed     uint64       `json:"seed"`
	Metrics  []jsonMetric `json:"metrics,omitempty"`
}

func toJSONRecord(rec store.Record) jsonRecord {
	jr := jsonRecord{
		ID:       rec.ID,
		Key:      rec.Scenario.Key(),
		Machine:  rec.Scenario.Machine,
		Workload: rec.Scenario.Workload,
		Mode:     rec.Scenario.Mode.Name,
		Ranks:    rec.Scenario.Ranks,
		Mesh:     rec.Scenario.Mesh.String(),
		Threads:  rec.Scenario.Threads,
		Seed:     rec.Scenario.Seed,
	}
	for _, m := range rec.Metrics {
		jr.Metrics = append(jr.Metrics, jsonMetric{
			Name:  m.Name,
			Value: m.Value,
			Bits:  fmt.Sprintf("%016x", math.Float64bits(m.Value)),
		})
	}
	return jr
}

type scenariosResponse struct {
	Physics   string       `json:"physics"`
	Count     int          `json:"count"`
	Scenarios []jsonRecord `json:"scenarios"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	recs := s.st.Records()
	resp := scenariosResponse{
		Physics:   s.st.Physics(),
		Count:     len(recs),
		Scenarios: make([]jsonRecord, 0, len(recs)),
	}
	for _, rec := range recs {
		resp.Scenarios = append(resp.Scenarios, toJSONRecord(rec))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.st.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no stored result for config hash %q under physics %s", id, s.st.Physics())
		return
	}
	writeJSON(w, http.StatusOK, toJSONRecord(rec))
}

// GridSpec is the expand request body: the same axes cmd/sweep's flags
// declare, with modes and meshes by name. Empty axes mean the runner
// default, exactly as in sweep.Grid.
type GridSpec struct {
	Machines  []string `json:"machines"`
	Workloads []string `json:"workloads"`
	Modes     []string `json:"modes"`
	Ranks     []int    `json:"ranks"`
	Meshes    []string `json:"meshes"`
	Threads   []int    `json:"threads"`
	MaxRows   int      `json:"maxrows"`
	Seed      uint64   `json:"seed"`
}

// Grid validates the spec and resolves it, through the same shared
// axis validators cmd/sweep's flags use, so the CLI and the HTTP API
// accept identical grids.
func (g GridSpec) Grid() (sweep.Grid, error) {
	grid := sweep.Grid{
		Machines:  g.Machines,
		Workloads: g.Workloads,
		Ranks:     g.Ranks,
		Threads:   g.Threads,
		MaxRows:   g.MaxRows,
		Seed:      g.Seed,
	}
	if err := workload.ValidateAxes(g.Machines, g.Workloads); err != nil {
		return sweep.Grid{}, err
	}
	var err error
	if grid.Modes, err = sweep.ModesByName(g.Modes); err != nil {
		return sweep.Grid{}, err
	}
	if grid.Meshes, err = sweep.ParseMeshes(g.Meshes); err != nil {
		return sweep.Grid{}, err
	}
	return grid, nil
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	var spec GridSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad grid spec: %v", err)
		return
	}
	grid, err := spec.Grid()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if n := grid.Size(); n > maxCells {
		writeError(w, http.StatusBadRequest, "grid has %d cells, limit %d", n, maxCells)
		return
	}
	c := s.eng.Run(grid, s.runner)
	w.Header().Set("Content-Type", "application/json")
	if c.CacheErr != nil {
		// The campaign is correct — the durability loss is server-side.
		// Discarding computed results would only force clients into a
		// re-simulation loop, so serve them and flag the loss in a
		// header (headers must precede the body).
		w.Header().Set("X-Store-Error", "store writes failed; results not persisted")
	}
	w.WriteHeader(http.StatusOK)
	sweep.JSONEmitter{Indent: true}.Emit(w, c)
}
