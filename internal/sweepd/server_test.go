package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloversim"
	"cloversim/internal/store"
	"cloversim/internal/sweep"
)

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "store"), cloversim.PhysicsVersion)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func startServer(t *testing.T, st ResultStore, runner sweep.RunnerContext, workers int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(st, runner, workers).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// smallSpec is a fast real-physics grid: 2 machines x 2 modes, tiny mesh.
func smallSpec() GridSpec {
	return GridSpec{
		Machines:  []string{"icx", "spr8480"},
		Workloads: []string{"jacobi"},
		Modes:     []string{"baseline", "nt"},
		Ranks:     []int{4},
		Threads:   []int{8},
		Meshes:    []string{"1536x1536"},
		MaxRows:   8,
		Seed:      7,
	}
}

func postExpand(t *testing.T, ts *httptest.Server, spec GridSpec) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/expand", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// expandResponse mirrors the campaign JSON shape sweep.JSONEmitter writes.
type expandResponse struct {
	Scenarios int `json:"scenarios"`
	Failed    int `json:"failed"`
	Results   []struct {
		ID      string `json:"id"`
		Machine string `json:"machine"`
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	} `json:"results"`
}

func TestServerEndToEnd(t *testing.T) {
	st := openStore(t)
	var sims atomic.Int64
	runner := func(ctx context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		sims.Add(1)
		return cloversim.RunScenarioContext(ctx, s)
	}
	ts := startServer(t, st, runner, 4)

	// Cold expand simulates every cell and persists it.
	status, body := postExpand(t, ts, smallSpec())
	if status != http.StatusOK {
		t.Fatalf("expand status %d: %s", status, body)
	}
	var exp expandResponse
	if err := json.Unmarshal(body, &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Scenarios != 4 || exp.Failed != 0 {
		t.Fatalf("expand reported %d scenarios %d failed, want 4/0", exp.Scenarios, exp.Failed)
	}
	if sims.Load() != 4 {
		t.Fatalf("cold expand simulated %d, want 4", sims.Load())
	}
	if st.Len() != 4 {
		t.Fatalf("store holds %d records after expand, want 4", st.Len())
	}

	// Warm expand: zero simulations, identical result bytes.
	status, warmBody := postExpand(t, ts, smallSpec())
	if status != http.StatusOK {
		t.Fatalf("warm expand status %d", status)
	}
	if sims.Load() != 4 {
		t.Fatalf("warm expand simulated %d extra cells", sims.Load()-4)
	}
	if !bytes.Equal(body, warmBody) {
		t.Errorf("warm expand response deviates from cold:\ncold:\n%s\nwarm:\n%s", body, warmBody)
	}

	// Listing is complete and deterministic.
	status, listBody := get(t, ts.URL+"/v1/scenarios")
	if status != http.StatusOK {
		t.Fatalf("scenarios status %d", status)
	}
	var list scenariosResponse
	if err := json.Unmarshal(listBody, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 4 || len(list.Scenarios) != 4 {
		t.Fatalf("listing has %d scenarios, want 4", list.Count)
	}
	if list.Physics != cloversim.PhysicsVersion {
		t.Errorf("listing physics %q, want %q", list.Physics, cloversim.PhysicsVersion)
	}
	status, listBody2 := get(t, ts.URL+"/v1/scenarios")
	if status != http.StatusOK || !bytes.Equal(listBody, listBody2) {
		t.Error("repeated listing not byte-stable")
	}

	// Fetch by config hash serves bit-exact values.
	rec0 := list.Scenarios[0]
	status, recBody := get(t, ts.URL+"/v1/results/"+rec0.ID)
	if status != http.StatusOK {
		t.Fatalf("result fetch status %d", status)
	}
	var jr jsonRecord
	if err := json.Unmarshal(recBody, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.ID != rec0.ID || len(jr.Metrics) == 0 {
		t.Fatalf("fetched record %+v malformed", jr)
	}
	stored, ok := st.Lookup(rec0.ID)
	if !ok {
		t.Fatal("listed record missing from store")
	}
	for i, m := range jr.Metrics {
		if want := fmt.Sprintf("%016x", math.Float64bits(stored.Metrics[i].Value)); m.Bits != want {
			t.Errorf("metric %s bits %s, want %s", m.Name, m.Bits, want)
		}
	}

	// Health reflects occupancy.
	status, hb := get(t, ts.URL+"/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	var h Health
	if err := json.Unmarshal(hb, &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Records != 4 {
		t.Errorf("healthz = %+v, want ok with 4 records", h)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	ts := startServer(t, openStore(t), cloversim.RunScenarioContext, 2)
	cases := []struct {
		name string
		spec string
	}{
		{"bad json", "{"},
		{"unknown field", `{"bogus":1}`},
		{"unknown machine", `{"machines":["nope"]}`},
		{"unknown workload", `{"workloads":["nope"]}`},
		{"unknown mode", `{"modes":["nope"]}`},
		{"bad mesh", `{"meshes":["x"]}`},
		{"oversized grid", `{"ranks":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18],
			"threads":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17],
			"meshes":["1x1","2x2","3x3","4x4","5x5","6x6","7x7","8x8","9x9","10x10","11x11","12x12","13x13","14x14"]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/expand", "application/json", bytes.NewReader([]byte(tc.spec)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}

	if status, _ := get(t, ts.URL+"/v1/results/ffffffffffff"); status != http.StatusNotFound {
		t.Errorf("missing result fetch status %d, want 404", status)
	}
	resp, err := http.Get(ts.URL + "/v1/expand") // wrong method
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/expand status %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentHammer is the acceptance-criteria load test: >= 100
// concurrent result fetches (plus listings) succeed while expand
// requests are simulating cold cells, all under the race detector in
// CI. The runner sleeps so simulations genuinely overlap the reads.
func TestConcurrentHammer(t *testing.T) {
	st := openStore(t)
	var sims atomic.Int64
	slowRunner := func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		sims.Add(1)
		time.Sleep(5 * time.Millisecond) // keep cold cells in flight while readers hammer
		var m sweep.Metrics
		m.Add("v", float64(s.Seed))
		m.Add("mode_len", float64(len(s.Mode.Name)))
		return m, nil
	}
	ts := startServer(t, st, slowRunner, 4)

	// Seed a few warm records so fetches have known-good targets.
	warm := GridSpec{Machines: []string{"icx"}, Workloads: []string{"jacobi"},
		Modes: []string{"baseline"}, Ranks: []int{1, 2, 3, 4}, Threads: []int{8}, Seed: 1}
	if status, body := postExpand(t, ts, warm); status != http.StatusOK {
		t.Fatalf("seed expand status %d: %s", status, body)
	}
	ids := make([]string, 0, 4)
	for _, rec := range st.Records() {
		ids = append(ids, rec.ID)
	}
	if len(ids) != 4 {
		t.Fatalf("seeded %d records, want 4", len(ids))
	}

	const fetchers = 120
	const expanders = 4
	errs := make(chan error, fetchers+expanders)
	var wg sync.WaitGroup
	start := make(chan struct{})

	// Expanders keep cold cells simulating throughout.
	for e := 0; e < expanders; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			<-start
			// All expanders request the SAME grid: identical cold cells
			// race through the engine and the store concurrently.
			spec := GridSpec{Machines: []string{"icx", "spr8480"}, Workloads: []string{"stream"},
				Modes: []string{"baseline", "nt", "pf-off"}, Ranks: []int{1, 2, 3, 4, 5},
				Threads: []int{8}, Seed: 100}
			body, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/expand", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			out, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("expander %d: status %d: %s", e, resp.StatusCode, out)
				return
			}
			var exp expandResponse
			if err := json.Unmarshal(out, &exp); err != nil {
				errs <- fmt.Errorf("expander %d: %v", e, err)
				return
			}
			if exp.Failed != 0 {
				errs <- fmt.Errorf("expander %d: %d failed scenarios", e, exp.Failed)
			}
		}(e)
	}

	// >= 100 concurrent readers fetch stored results and listings.
	for f := 0; f < fetchers; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			<-start
			for i := 0; i < 5; i++ {
				var url string
				switch i % 3 {
				case 0, 1:
					url = ts.URL + "/v1/results/" + ids[(f+i)%len(ids)]
				case 2:
					url = ts.URL + "/v1/scenarios"
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- fmt.Errorf("fetcher %d: %v", f, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("fetcher %d: %v", f, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("fetcher %d: status %d for %s: %s", f, resp.StatusCode, url, body)
					return
				}
				if !json.Valid(body) {
					errs <- fmt.Errorf("fetcher %d: invalid JSON from %s", f, url)
					return
				}
			}
		}(f)
	}

	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The expanders' 30 distinct scenarios simulated once each despite
	// concurrent identical requests hitting the engine (the content-
	// addressed store absorbs duplicate writes; the engine may race
	// identical cells at most once per expander).
	if st.Len() != 4+30 {
		t.Errorf("store holds %d records, want 34", st.Len())
	}
	// Every cold record is now fetchable.
	for _, rec := range st.Records() {
		if status, _ := get(t, ts.URL+"/v1/results/"+rec.ID); status != http.StatusOK {
			t.Errorf("stored record %s not servable after hammer", rec.ID)
		}
	}
}

// TestExpandServesResultsDespiteStoreFailure: a store that cannot
// accept writes must not cost clients their correctly computed
// campaign — the response is 200 with the durability loss flagged in
// the X-Store-Error header.
func TestExpandServesResultsDespiteStoreFailure(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := os.MkdirAll(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, cloversim.PhysicsVersion)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := startServer(t, st, cloversim.RunScenarioContext, 2)

	spec := GridSpec{Machines: []string{"icx"}, Workloads: []string{"jacobi"},
		Modes: []string{"baseline"}, Ranks: []int{2}, Threads: []int{4},
		Meshes: []string{"512x512"}, MaxRows: 4}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/expand", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expand with unwritable store status %d, want 200: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("X-Store-Error") == "" {
		t.Error("durability loss not flagged in X-Store-Error header")
	}
	var exp expandResponse
	if err := json.Unmarshal(out, &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Scenarios != 1 || exp.Failed != 0 || len(exp.Results[0].Metrics) == 0 {
		t.Fatalf("campaign results lost alongside the store failure: %s", out)
	}
}
