package sweepd

// sweepd-to-sweepd replication: GET /v1/sync streams the records a
// peer is missing, so a fleet of workers converges to one result set
// with no shared filesystem. The transport reuses the NDJSON frame
// discipline of the expand stream; the payload reuses the store's own
// line encoding, so a pulled record carries the exact IEEE-754 bits —
// and the full per-record integrity contract — of the origin store.
//
//	GET /v1/sync?since=<watermark>&epoch=<epoch>&physics=<version>
//
// responds with NDJSON frames:
//
//	{"sync":{...}}      header: physics, epoch, effective since, watermark, count
//	{"record":{...}}    one per missing record, store line encoding, admission order
//	{"summary":{...}}   terminal: sent count + watermark to resume from
//
// Watermark semantics: record sequence numbers are per-store-INSTANCE
// — minted fresh at every Open and every Compact — so a watermark is
// only meaningful within the epoch that issued it. A client presents
// the epoch its watermark came from; when the server's epoch differs
// (daemon restarted, store compacted) the server ignores `since` and
// replays from zero. Content addressing makes the replay converge: the
// puller's store drops records it already holds as idempotent Puts.
//
// Mixed-physics fleets must never merge result sets, so the physics
// query parameter (always sent by the puller) is checked server-side —
// 409 on mismatch — and the header frame is checked client-side for
// defense against proxies and version skew in between.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"cloversim/internal/store"
)

// syncFrame is one NDJSON line of a /v1/sync response: exactly one
// field is set.
type syncFrame struct {
	Sync    *syncHeader     `json:"sync,omitempty"`
	Record  json.RawMessage `json:"record,omitempty"`
	Summary *syncSummary    `json:"summary,omitempty"`
}

// syncHeader opens the stream: the origin's physics and epoch, the
// watermark the server actually resumed from (zero when the client's
// epoch was foreign), the watermark this stream catches the client up
// to, and how many record frames follow.
type syncHeader struct {
	Physics   string `json:"physics"`
	Epoch     string `json:"epoch"`
	Since     uint64 `json:"since"`
	Watermark uint64 `json:"watermark"`
	Records   int    `json:"records"`
}

// syncSummary closes the stream; a response without one was truncated
// and its watermark must not be advanced.
type syncSummary struct {
	Sent      int    `json:"sent"`
	Watermark uint64 `json:"watermark"`
}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	if p := r.URL.Query().Get("physics"); p != "" && p != s.st.Physics() {
		s.writeError(w, r, http.StatusConflict,
			"sync refused: this store holds physics %s, peer wants %s — mixed-physics result sets must never merge", s.st.Physics(), p)
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad since watermark %q: %v", v, err)
			return
		}
		since = n
	}
	epoch := s.st.Epoch()
	if r.URL.Query().Get("epoch") != epoch {
		// The client's watermark belongs to another store instance (or it
		// never synced): replay everything. Idempotent Puts on the client
		// make the replay converge instead of duplicating.
		since = 0
	}
	ids, watermark := s.st.IDsSince(since)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	var writeErr error
	writeFrame := func(f syncFrame) {
		if writeErr != nil {
			return
		}
		b, err := json.Marshal(f)
		if err == nil {
			b = append(b, '\n')
			_, err = w.Write(b)
		}
		if err == nil {
			if ferr := rc.Flush(); ferr != nil && !errors.Is(ferr, http.ErrNotSupported) {
				err = ferr
			}
		}
		if err != nil {
			writeErr = err
		}
	}
	writeFrame(syncFrame{Sync: &syncHeader{
		Physics: s.st.Physics(), Epoch: epoch,
		Since: since, Watermark: watermark, Records: len(ids),
	}})
	sent := 0
	for _, id := range ids {
		rec, ok := s.st.Lookup(id)
		if !ok {
			continue // dropped between IDsSince and here (lazy-load heal)
		}
		line, err := store.EncodeRecord(s.st.Physics(), rec.Scenario, rec.Metrics)
		if err != nil {
			s.logf("sweepd: GET /v1/sync: encoding %s: %v", id, err)
			continue
		}
		// The store line IS the frame payload: the puller re-validates it
		// with store.DecodeRecord, the same integrity gate recovery uses.
		writeFrame(syncFrame{Record: json.RawMessage(line[:len(line)-1])})
		sent++
	}
	writeFrame(syncFrame{Summary: &syncSummary{Sent: sent, Watermark: watermark}})
	if writeErr != nil {
		s.logf("sweepd: GET /v1/sync: writing stream: %v", writeErr)
	}
}

// handleCompact is the admin trigger for store compaction. The daemon
// owns its store directory exclusively, so this is the safe way to
// compact a live store (cmd/sweep -store-compact is for offline ones).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	cs, err := s.st.Compact()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "compact: %v", err)
		return
	}
	s.logf("sweepd: POST /v1/admin/compact: %s", cs)
	s.writeJSON(w, r, http.StatusOK, cs)
}

// SyncState is a puller's resume position against one peer: the last
// watermark it fully applied, namespaced by the peer epoch that issued
// it. The zero value means "never synced" and pulls everything.
type SyncState struct {
	Epoch     string
	Watermark uint64
}

// SyncSince pulls the records a peer admitted after state, invoking
// apply for each one in admission order, and returns the state to
// resume from next time plus how many records arrived. The returned
// state is only advanced past state when the stream completed with its
// summary frame — a truncated stream returns an error and the caller
// retries from the old watermark (idempotent applies make that safe).
// Records are validated with the store's own decoder, so a corrupt or
// forged frame fails the pull rather than entering the local store.
func (c *Client) SyncSince(ctx context.Context, state SyncState, apply func(store.Record) error) (SyncState, int, error) {
	q := url.Values{}
	q.Set("since", strconv.FormatUint(state.Watermark, 10))
	q.Set("epoch", state.Epoch)
	if c.Physics != "" {
		q.Set("physics", c.Physics)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/sync?"+q.Encode(), nil)
	if err != nil {
		return state, 0, fmt.Errorf("sweepd client: %s: %w", c.BaseURL, err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return state, 0, fmt.Errorf("sweepd client: %s: %w", c.BaseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, rerr := c.readBody(resp.Body, maxHealthzBytes, "sync error response")
		if rerr != nil {
			return state, 0, rerr
		}
		return state, 0, fmt.Errorf("sweepd client: %s: sync status %d: %s", c.BaseURL, resp.StatusCode, errorBody(body))
	}

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	var header *syncHeader
	var sawSummary bool
	applied := 0
	for !sawSummary {
		line, err := readFrameLine(br, maxExpandBytes)
		if err == io.EOF && len(line) == 0 {
			break
		}
		if err != nil && err != io.EOF {
			return state, applied, fmt.Errorf("sweepd client: %s: bad sync stream: %w", c.BaseURL, err)
		}
		atEOF := err == io.EOF
		if len(line) == 0 {
			continue
		}
		var f syncFrame
		if err := json.Unmarshal(line, &f); err != nil {
			return state, applied, fmt.Errorf("sweepd client: %s: bad sync stream: %w", c.BaseURL, err)
		}
		switch {
		case f.Sync != nil:
			if header != nil {
				return state, applied, fmt.Errorf("sweepd client: %s: duplicate sync header frame", c.BaseURL)
			}
			if c.Physics != "" && f.Sync.Physics != c.Physics {
				return state, applied, fmt.Errorf("sweepd client: %s: peer store holds physics %s, want %s — refusing mixed-physics sync", c.BaseURL, f.Sync.Physics, c.Physics)
			}
			header = f.Sync
		case f.Record != nil:
			if header == nil {
				return state, applied, fmt.Errorf("sweepd client: %s: record frame before sync header", c.BaseURL)
			}
			// The frame payload is a store line: decode through the store's
			// integrity gate (physics, key parse, ID re-derivation, metric
			// bits), so a forged or corrupted record cannot enter locally.
			rec, err := store.DecodeRecord(f.Record, header.Physics)
			if err != nil {
				return state, applied, fmt.Errorf("sweepd client: %s: sync record rejected: %w", c.BaseURL, err)
			}
			if err := apply(rec); err != nil {
				return state, applied, fmt.Errorf("sweepd client: %s: applying sync record %s: %w", c.BaseURL, rec.ID, err)
			}
			applied++
		case f.Summary != nil:
			sawSummary = true
			if header == nil {
				return state, applied, fmt.Errorf("sweepd client: %s: sync summary before header", c.BaseURL)
			}
			state = SyncState{Epoch: header.Epoch, Watermark: f.Summary.Watermark}
		default:
			return state, applied, fmt.Errorf("sweepd client: %s: unrecognized sync frame", c.BaseURL)
		}
		if atEOF {
			break
		}
	}
	if !sawSummary {
		return state, applied, fmt.Errorf("sweepd client: %s: sync stream truncated before its summary frame; watermark not advanced", c.BaseURL)
	}
	return state, applied, nil
}

// Puller keeps one local store converged to a peer's result set by
// periodically pulling /v1/sync. It remembers its watermark between
// pulls, so steady-state pulls are cheap (header + summary, no
// records).
type Puller struct {
	Client *Client     // peer to pull from; Physics should be set
	Store  ResultStore // local store records are applied to
	Log    *log.Logger // nil = log.Default()

	state SyncState
}

// Pull runs one sync round against the peer, returning how many
// records were applied. Applied records are fsynced before the
// watermark advances, so a crash never skips records it acknowledged.
func (p *Puller) Pull(ctx context.Context) (int, error) {
	next, n, err := p.Client.SyncSince(ctx, p.state, func(rec store.Record) error {
		return p.Store.Put(rec.Scenario, rec.Metrics)
	})
	if err != nil {
		return n, err
	}
	if n > 0 {
		if err := p.Store.Sync(); err != nil {
			// Not durable: keep the old watermark so the next pull
			// re-applies (idempotently) and re-attempts the fsync.
			return n, err
		}
	}
	p.state = next
	return n, nil
}

// Run pulls every interval until ctx is cancelled, logging failures
// and record counts (silent on empty steady-state rounds). An initial
// pull runs immediately.
func (p *Puller) Run(ctx context.Context, every time.Duration) {
	logf := log.Default().Printf
	if p.Log != nil {
		logf = p.Log.Printf
	}
	//lint:allow nondet replication heartbeat cadence: when to pull, never what the records hold
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		if n, err := p.Pull(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			logf("sweepd: sync from %s: %v", p.Client.BaseURL, err)
		} else if n > 0 {
			logf("sweepd: sync from %s: %d records applied (%d local)", p.Client.BaseURL, n, p.Store.Len())
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
