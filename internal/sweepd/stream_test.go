package sweepd

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cloversim/internal/store"
	"cloversim/internal/sweep"
)

// streamTestRunner exercises the encodings a stream must carry: bit-
// exact finite values, NaN, and a per-cell failure.
func streamTestRunner(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
	if s.Ranks == 3 {
		return nil, fmt.Errorf("injected failure")
	}
	var m sweep.Metrics
	m.Add("v", float64(s.Ranks)/3.0)
	if s.Ranks == 2 {
		m.Add("odd", math.NaN())
	}
	return m, nil
}

// TestExpandStreamRoundTrip: the NDJSON expand mode must deliver the
// same results as the buffered mode — one per requested cell (dups
// included), request-ordered in the returned slice, bit-exact metrics,
// per-cell errors intact — with onResult firing exactly once per cell.
func TestExpandStreamRoundTrip(t *testing.T) {
	ts := httptest.NewServer(New(execStore(t), streamTestRunner, 2).Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.Physics = execPhysics

	scs := execScenarios(4)
	scs = append(scs, scs[0]) // duplicate cell: one frame per requested index
	var fired atomic.Int64
	streamed, err := c.ExecuteScenariosStream(context.Background(), scs, func(i int, r ExecResult) {
		fired.Add(1)
		if want := scs[i].ID(); r.ID != want {
			t.Errorf("onResult index %d carries %s, want %s", i, r.ID, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired.Load() != int64(len(scs)) {
		t.Errorf("onResult fired %d times for %d cells", fired.Load(), len(scs))
	}
	// The warm buffered repeat must agree cell for cell.
	buffered, err := c.ExecuteScenarios(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		s, b := streamed[i], buffered[i]
		if s.ID != b.ID || s.Unstarted != b.Unstarted || (s.Err == nil) != (b.Err == nil) {
			t.Fatalf("cell %d: stream %+v vs buffered %+v", i, s, b)
		}
		if s.Err != nil {
			if !strings.Contains(s.Err.Error(), "injected failure") {
				t.Errorf("cell %d error %v, want the injected failure", i, s.Err)
			}
			continue
		}
		if len(s.Metrics) != len(b.Metrics) {
			t.Fatalf("cell %d: %d streamed metrics vs %d buffered", i, len(s.Metrics), len(b.Metrics))
		}
		for j := range s.Metrics {
			sb := math.Float64bits(s.Metrics[j].Value)
			bb := math.Float64bits(b.Metrics[j].Value)
			if s.Metrics[j].Name != b.Metrics[j].Name || sb != bb {
				t.Errorf("cell %d metric %d: stream %s/%016x vs buffered %s/%016x",
					i, j, s.Metrics[j].Name, sb, b.Metrics[j].Name, bb)
			}
		}
	}
}

// TestExpandStreamIncremental is the point of the protocol: a cell's
// frame must arrive while other cells are still simulating. The second
// cell blocks until the client has SEEN the first cell's result — if
// the server buffered the response, this deadlocks (and the timeout
// fails the test).
func TestExpandStreamIncremental(t *testing.T) {
	firstSeen := make(chan struct{})
	runner := func(ctx context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		if s.Ranks == 2 {
			select {
			case <-firstSeen:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		var m sweep.Metrics
		m.Add("v", float64(s.Ranks))
		return m, nil
	}
	ts := httptest.NewServer(New(execStore(t), runner, 2).Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var once atomic.Bool
	res, err := NewClient(ts.URL).ExecuteScenariosStream(ctx, execScenarios(2), func(i int, r ExecResult) {
		if r.ID == execScenarios(1)[0].ID() && once.CompareAndSwap(false, true) {
			close(firstSeen)
		}
	})
	if err != nil {
		t.Fatalf("streaming expand failed (buffered response would deadlock here): %v", err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Errorf("cell %d failed: %v", i, r.Err)
		}
	}
}

// TestExpandStreamBufferedFallback: a pre-streaming worker ignores the
// Accept header and answers buffered JSON; the streaming client must
// detect that by Content-Type and still deliver every cell.
func TestExpandStreamBufferedFallback(t *testing.T) {
	inner := New(execStore(t), streamTestRunner, 2).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del("Accept") // the old server never saw this header
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	scs := execScenarios(3)
	var fired int
	res, err := NewClient(ts.URL).ExecuteScenariosStream(context.Background(), scs, func(i int, r ExecResult) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if fired != len(scs) {
		t.Errorf("fallback fired onResult %d times for %d cells", fired, len(scs))
	}
	if res[0].Err != nil || res[1].Err != nil || res[2].Err == nil {
		t.Errorf("fallback results wrong: %+v", res)
	}
}

// TestExpandStreamTruncated: a stream that dies before its summary
// frame must error as truncated — the surfaced prefix is real, but the
// batch is unaccounted for and must never pass as complete.
func TestExpandStreamTruncated(t *testing.T) {
	scs := execScenarios(2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintf(w, `{"stream":{"physics":%q,"scenarios":2}}`+"\n", execPhysics)
		fmt.Fprintf(w, `{"result":{"id":%q,"key":%q,"metrics":[{"name":"v","bits":"3ff0000000000000"}]}}`+"\n",
			scs[0].ID(), scs[0].Key())
		// No summary: the worker died mid-campaign.
	}))
	t.Cleanup(ts.Close)

	var surfaced int
	_, err := NewClient(ts.URL).ExecuteScenariosStream(context.Background(), scs, func(i int, r ExecResult) {
		surfaced++
		if v, ok := r.Metrics.Get("v"); !ok || v != 1.0 {
			t.Errorf("surfaced prefix cell carries v=%v, want 1", v)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated stream error = %v, want truncation report", err)
	}
	if surfaced != 1 {
		t.Errorf("surfaced %d cells before truncation, want 1", surfaced)
	}
}

// TestExpandStreamPhysicsMismatch: the header frame lets the client
// fail fast on foreign physics instead of discovering it at the end.
func TestExpandStreamPhysicsMismatch(t *testing.T) {
	ts := httptest.NewServer(New(execStore(t), streamTestRunner, 2).Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.Physics = "other-physics"
	if _, err := c.ExecuteScenariosStream(context.Background(), execScenarios(1), nil); err == nil || !strings.Contains(err.Error(), "physics") {
		t.Fatalf("foreign-physics stream error = %v, want physics mismatch", err)
	}
}

// TestClientOversizedResponses is the regression lock for the bounded-
// read fix: a body over the limit must surface as an explicit
// oversized-response error on both endpoints, not be silently cut and
// reported as a misleading parse failure.
func TestClientOversizedResponses(t *testing.T) {
	huge := strings.Repeat(" ", int(maxHealthzBytes)+1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"padding":%q}`, huge)
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	if _, err := c.Healthz(context.Background()); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized healthz error = %v, want explicit limit report", err)
	}

	old := maxExpandBytes
	maxExpandBytes = 256
	t.Cleanup(func() { maxExpandBytes = old })
	if _, err := c.ExecuteScenarios(context.Background(), execScenarios(1)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized expand error = %v, want explicit limit report", err)
	}
}

// TestMaxCellsConfigurable: the per-expand cap is a Server knob,
// enforced on explicit batches and advertised in healthz so
// dispatchers can clamp chunks up front.
func TestMaxCellsConfigurable(t *testing.T) {
	srv := New(execStore(t), streamTestRunner, 2)
	srv.MaxCells = 2
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxCells != 2 {
		t.Errorf("healthz max_cells = %d, want 2", h.MaxCells)
	}
	if _, err := c.ExecuteScenarios(context.Background(), execScenarios(3)); err == nil || !strings.Contains(err.Error(), "limit 2") {
		t.Errorf("3-cell expand against cap 2: err = %v, want limit rejection", err)
	}
	if _, err := c.ExecuteScenarios(context.Background(), execScenarios(2)); err != nil {
		t.Errorf("2-cell expand within cap failed: %v", err)
	}
}

// TestStreamTotalBeyondFrameCap is the regression for the stream-size
// bound: maxExpandBytes used to cap the ENTIRE NDJSON stream, so a
// legitimate batch whose frames TOGETHER passed the limit failed as a
// bogus decode error even though each frame — the thing that actually
// occupies client memory — was tiny. The bound is per frame now: many
// small frames totaling far past the cap must stream through.
func TestStreamTotalBeyondFrameCap(t *testing.T) {
	old := maxExpandBytes
	maxExpandBytes = 600 // one result frame is ~150 bytes; 20 total far more
	t.Cleanup(func() { maxExpandBytes = old })

	ts := httptest.NewServer(New(execStore(t), streamTestRunner, 2).Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.Physics = execPhysics

	scs := execScenarios(20)
	out, err := c.ExecuteScenariosStream(context.Background(), scs, nil)
	if err != nil {
		t.Fatalf("stream with total size beyond the per-frame cap failed: %v", err)
	}
	if len(out) != len(scs) {
		t.Fatalf("delivered %d of %d results", len(out), len(scs))
	}
	for i, r := range out {
		if r.Err == nil && r.Metrics == nil {
			t.Fatalf("result %d empty", i)
		}
	}
}

// TestStreamOversizedFrameRejected: the per-frame bound still bites —
// a single frame past the cap fails loudly instead of ballooning the
// client's memory, and the error names the limit.
func TestStreamOversizedFrameRejected(t *testing.T) {
	old := maxExpandBytes
	maxExpandBytes = 512
	t.Cleanup(func() { maxExpandBytes = old })

	scs := execScenarios(1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintf(w, `{"stream":{"physics":%q,"scenarios":1}}`+"\n", execPhysics)
		fmt.Fprintf(w, `{"result":{"id":%q,"key":%q,"error":%q}}`+"\n",
			scs[0].ID(), scs[0].Key(), strings.Repeat("x", int(maxExpandBytes)))
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.Physics = execPhysics
	if _, err := c.ExecuteScenariosStream(context.Background(), scs, nil); err == nil ||
		!strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized frame error = %v, want explicit limit report", err)
	}
}

// TestHealthzDefaultMaxCells: an unconfigured server advertises the
// package default, so old deployments keep their historical cap.
func TestHealthzDefaultMaxCells(t *testing.T) {
	ts := httptest.NewServer(New(execStore(t), streamTestRunner, 2).Handler())
	t.Cleanup(ts.Close)
	h, err := NewClient(ts.URL).Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxCells != DefaultMaxCells {
		t.Errorf("healthz max_cells = %d, want default %d", h.MaxCells, DefaultMaxCells)
	}
}

// benchExpand measures one warm expand round trip (the store is
// pre-populated, so the numbers isolate transport + encode/decode, not
// simulation). ReportAllocs makes the buffered-vs-streaming memory
// difference visible in B/op.
func benchExpand(b *testing.B, n int, stream bool) {
	runner := func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		var m sweep.Metrics
		m.Add("v", float64(s.Ranks)/3.0)
		m.Add("w", float64(s.Ranks)*1.5)
		return m, nil
	}
	st, err := store.Open(filepath.Join(b.TempDir(), "store"), execPhysics)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	ts := httptest.NewServer(New(st, runner, 4).Handler())
	b.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	scs := execScenarios(n)
	if _, err := c.ExecuteScenarios(context.Background(), scs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res []ExecResult
		var err error
		if stream {
			res, err = c.ExecuteScenariosStream(context.Background(), scs, func(int, ExecResult) {})
		} else {
			res, err = c.ExecuteScenarios(context.Background(), scs)
		}
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != n {
			b.Fatalf("%d results", len(res))
		}
	}
}

func BenchmarkExpandBuffered(b *testing.B)  { benchExpand(b, 512, false) }
func BenchmarkExpandStreaming(b *testing.B) { benchExpand(b, 512, true) }
