package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"cloversim/internal/sweep"
)

// Client is the typed HTTP client of one sweepd worker — the other
// half of the server's wire protocol, so the dispatch layer never
// hand-rolls JSON against it. It is safe for concurrent use.
type Client struct {
	// BaseURL is the worker's root URL (e.g. "http://host:8075"). A
	// bare host[:port] is promoted to http://.
	BaseURL string
	// HTTPClient, when nil, falls back to http.DefaultClient. Expand
	// calls can legitimately run for minutes (cold simulation), so a
	// client with a global timeout is usually wrong here; bound calls
	// with the context instead.
	HTTPClient *http.Client
	// Physics, when non-empty, makes ExecuteScenarios reject responses
	// simulated under a different physics version. A fleet checks
	// healthz at assembly, but a worker can be restarted with a newer
	// binary (or swapped behind a load balancer) mid-campaign; the
	// per-response check keeps foreign-physics results from ever
	// merging into this campaign or its store.
	Physics string
}

// NewClient returns a client for one worker base URL, promoting a
// scheme-less host[:port] to http://.
func NewClient(base string) *Client {
	base = strings.TrimSuffix(strings.TrimSpace(base), "/")
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{BaseURL: base}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// maxHealthzBytes bounds a healthz body; maxExpandBytes bounds a
// buffered expand body and each individual frame of an NDJSON stream
// (a stream's total size is whatever its batch legitimately needs —
// bounding the whole stream at this limit silently truncated large
// batches): maxCells results at a few KB each stay far below it, while
// an endless body from a wedged worker must not balloon the
// dispatcher's memory. A package var so tests can exercise the
// oversize path without generating 64 MiB.
const maxHealthzBytes = int64(1 << 20)

var maxExpandBytes = int64(64 << 20)

// readBody reads a bounded response body, returning an explicit error
// when the server sends more than limit bytes. It reads limit+1 so
// truncation is detectable: a plain LimitReader(limit) would silently
// cut the body, and the loss would surface downstream as a misleading
// parse error instead of naming the real problem.
func (c *Client) readBody(body io.Reader, limit int64, what string) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(body, limit+1))
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %s: reading %s: %w", c.BaseURL, what, err)
	}
	if int64(len(b)) > limit {
		return nil, fmt.Errorf("sweepd client: %s: %s exceeds %d-byte limit; refusing to parse a truncated body", c.BaseURL, what, limit)
	}
	return b, nil
}

// readFrameLine reads one NDJSON frame line (terminator stripped) from
// a stream, bounding the FRAME at limit bytes — the stream itself may
// be arbitrarily long. The bound is enforced while accumulating, so an
// endless unterminated line fails at limit+1 bytes held instead of
// ballooning memory first. io.EOF accompanies a final unterminated
// frame (possibly empty); the caller decides whether that is truncation.
func readFrameLine(r *bufio.Reader, limit int64) ([]byte, error) {
	var line []byte
	for {
		frag, err := r.ReadSlice('\n')
		line = append(line, frag...)
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		if int64(len(line)) > limit {
			return nil, fmt.Errorf("frame exceeds %d-byte limit", limit)
		}
		switch err {
		case nil:
			return line, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return line, err
		}
	}
}

// errorBody extracts the server's {"error": ...} message from a non-200
// response, falling back to the raw body.
func errorBody(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// Healthz probes the worker's /v1/healthz.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/healthz", nil)
	if err != nil {
		return Health{}, fmt.Errorf("sweepd client: %s: %w", c.BaseURL, err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Health{}, fmt.Errorf("sweepd client: %s: %w", c.BaseURL, err)
	}
	defer resp.Body.Close()
	body, err := c.readBody(resp.Body, maxHealthzBytes, "healthz response")
	if err != nil {
		return Health{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return Health{}, fmt.Errorf("sweepd client: %s: healthz status %d: %s", c.BaseURL, resp.StatusCode, errorBody(body))
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		return Health{}, fmt.Errorf("sweepd client: %s: bad healthz body: %w", c.BaseURL, err)
	}
	return h, nil
}

// ExecResult is one scenario outcome returned by ExecuteScenarios.
// Exactly one of Metrics/Err is meaningful. Unstarted marks a cell the
// worker was cancelled out of before simulating (its expand deadline,
// a dying daemon): the cell is re-dispatchable, unlike a genuine
// simulation failure.
type ExecResult struct {
	ID        string
	Metrics   sweep.Metrics
	Err       error
	Unstarted bool
}

// ExecuteScenarios posts the scenarios to the worker's /v1/expand in
// explicit-key form and returns one result per scenario, in request
// order. Metric values are reconstructed from their IEEE-754 bits, so
// they are bit-exact with what the worker simulated. A transport
// error, a non-200 status or a malformed/mismatched response is a
// worker-level error (the whole batch is unaccounted for); per-cell
// failures ride in the results.
func (c *Client) ExecuteScenarios(ctx context.Context, scenarios []sweep.Scenario) ([]ExecResult, error) {
	resp, err := c.postExpand(ctx, scenarios, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := c.readBody(resp.Body, maxExpandBytes, "expand response")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweepd client: %s: expand status %d: %s", c.BaseURL, resp.StatusCode, errorBody(body))
	}
	return c.decodeBufferedExpand(body, scenarios)
}

// postExpand posts the scenarios in explicit-key form, optionally
// asking for a streaming response via the Accept header.
func (c *Client) postExpand(ctx context.Context, scenarios []sweep.Scenario, accept string) (*http.Response, error) {
	keys := make([]string, len(scenarios))
	for i, s := range scenarios {
		keys[i] = s.Key()
	}
	reqBody, err := json.Marshal(GridSpec{Scenarios: keys})
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %s: encoding request: %w", c.BaseURL, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/expand", bytes.NewReader(reqBody))
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %s: %w", c.BaseURL, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %s: %w", c.BaseURL, err)
	}
	return resp, nil
}

// decodeBufferedExpand parses a buffered explicit-form expand body and
// checks it against the request: same physics, one result per
// scenario, in request order.
func (c *Client) decodeBufferedExpand(body []byte, scenarios []sweep.Scenario) ([]ExecResult, error) {
	var er executeResponse
	if err := json.Unmarshal(body, &er); err != nil {
		return nil, fmt.Errorf("sweepd client: %s: bad expand response: %w", c.BaseURL, err)
	}
	if c.Physics != "" && er.Physics != c.Physics {
		return nil, fmt.Errorf("sweepd client: %s: response simulated under physics %s, want %s", c.BaseURL, er.Physics, c.Physics)
	}
	if len(er.Results) != len(scenarios) {
		return nil, fmt.Errorf("sweepd client: %s: %d results for %d scenarios", c.BaseURL, len(er.Results), len(scenarios))
	}
	out := make([]ExecResult, len(er.Results))
	for i, r := range er.Results {
		if want := scenarios[i].ID(); r.ID != want {
			return nil, fmt.Errorf("sweepd client: %s: result %d is scenario %s, want %s", c.BaseURL, i, r.ID, want)
		}
		res, err := c.decodeExecResult(r)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// decodeExecResult converts one wire result into an ExecResult,
// reconstructing metric values from their IEEE-754 bits — the bits
// field is authoritative; the decimal mirror cannot carry NaN/Inf and
// is for humans.
func (c *Client) decodeExecResult(r executeResult) (ExecResult, error) {
	res := ExecResult{ID: r.ID, Unstarted: r.Unstarted}
	if r.Error != "" {
		res.Err = fmt.Errorf("worker %s: %s", c.BaseURL, r.Error)
		return res, nil
	}
	m := make(sweep.Metrics, 0, len(r.Metrics))
	for _, jm := range r.Metrics {
		bits, err := strconv.ParseUint(jm.Bits, 16, 64)
		if err != nil {
			return ExecResult{}, fmt.Errorf("sweepd client: %s: result %s metric %s: bad bits %q", c.BaseURL, r.ID, jm.Name, jm.Bits)
		}
		m.Add(jm.Name, math.Float64frombits(bits))
	}
	res.Metrics = m
	return res, nil
}

// ExecuteScenariosStream is ExecuteScenarios over the NDJSON expand
// mode: onResult (when non-nil) fires for each cell the moment its
// frame arrives — in completion order, not request order — and the
// full request-ordered result slice is returned at the end, identical
// to what ExecuteScenarios would have returned. A worker predating the
// streaming protocol answers with a buffered body; the client detects
// that by Content-Type and falls back transparently (onResult then
// fires for every cell when the body arrives).
//
// On a non-nil error the batch is unaccounted for, exactly as with
// ExecuteScenarios — but onResult may already have fired for a prefix
// of cells. Those results are valid (they carry bit-exact metrics the
// worker really produced); callers tracking per-cell delivery can keep
// them and re-dispatch only the rest. A stream that dies before its
// terminal summary frame is reported as truncated, never silently
// treated as complete.
func (c *Client) ExecuteScenariosStream(ctx context.Context, scenarios []sweep.Scenario, onResult func(i int, r ExecResult)) ([]ExecResult, error) {
	resp, err := c.postExpand(ctx, scenarios, "application/x-ndjson")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, rerr := c.readBody(resp.Body, maxHealthzBytes, "expand error response")
		if rerr != nil {
			return nil, rerr
		}
		return nil, fmt.Errorf("sweepd client: %s: expand status %d: %s", c.BaseURL, resp.StatusCode, errorBody(body))
	}
	ct, _, _ := strings.Cut(resp.Header.Get("Content-Type"), ";")
	if !strings.EqualFold(strings.TrimSpace(ct), "application/x-ndjson") {
		// Pre-streaming worker: buffered response despite our Accept.
		body, err := c.readBody(resp.Body, maxExpandBytes, "expand response")
		if err != nil {
			return nil, err
		}
		out, err := c.decodeBufferedExpand(body, scenarios)
		if err != nil {
			return nil, err
		}
		if onResult != nil {
			for i, r := range out {
				onResult(i, r)
			}
		}
		return out, nil
	}

	// Results arrive in completion order; match each frame to the
	// earliest not-yet-delivered request index with its scenario ID
	// (duplicate scenarios in one batch each get a frame — the server
	// finalizes one result per requested cell).
	pending := make(map[string][]int, len(scenarios))
	for i, s := range scenarios {
		id := s.ID()
		pending[id] = append(pending[id], i)
	}
	out := make([]ExecResult, len(scenarios))
	delivered := 0
	// The limit bounds each FRAME, not the stream: a stream is as long
	// as the batch demands (held memory stays one frame), while any
	// single oversized line still fails loudly instead of ballooning.
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	var sawHeader, sawSummary bool
	for !sawSummary {
		line, err := readFrameLine(br, maxExpandBytes)
		if err == io.EOF && len(line) == 0 {
			break
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("sweepd client: %s: bad expand stream: %w", c.BaseURL, err)
		}
		atEOF := err == io.EOF
		if len(line) == 0 {
			continue // tolerate blank keepalive lines
		}
		var f streamFrame
		if err := json.Unmarshal(line, &f); err != nil {
			return nil, fmt.Errorf("sweepd client: %s: bad expand stream: %w", c.BaseURL, err)
		}
		switch {
		case f.Stream != nil:
			if sawHeader {
				return nil, fmt.Errorf("sweepd client: %s: duplicate stream header frame", c.BaseURL)
			}
			sawHeader = true
			if c.Physics != "" && f.Stream.Physics != c.Physics {
				return nil, fmt.Errorf("sweepd client: %s: stream simulated under physics %s, want %s", c.BaseURL, f.Stream.Physics, c.Physics)
			}
			if f.Stream.Scenarios != len(scenarios) {
				return nil, fmt.Errorf("sweepd client: %s: stream announces %d results for %d scenarios", c.BaseURL, f.Stream.Scenarios, len(scenarios))
			}
		case f.Result != nil:
			if !sawHeader {
				return nil, fmt.Errorf("sweepd client: %s: result frame before stream header", c.BaseURL)
			}
			q := pending[f.Result.ID]
			if len(q) == 0 {
				return nil, fmt.Errorf("sweepd client: %s: stream delivered unrequested (or extra) result %s", c.BaseURL, f.Result.ID)
			}
			i := q[0]
			pending[f.Result.ID] = q[1:]
			res, err := c.decodeExecResult(*f.Result)
			if err != nil {
				return nil, err
			}
			out[i] = res
			delivered++
			if onResult != nil {
				onResult(i, res)
			}
		case f.Summary != nil:
			sawSummary = true
		default:
			return nil, fmt.Errorf("sweepd client: %s: unrecognized expand stream frame", c.BaseURL)
		}
		if atEOF {
			break
		}
	}
	if !sawSummary {
		return nil, fmt.Errorf("sweepd client: %s: expand stream truncated before its summary frame; batch unaccounted for", c.BaseURL)
	}
	if delivered != len(scenarios) {
		return nil, fmt.Errorf("sweepd client: %s: stream delivered %d of %d results", c.BaseURL, delivered, len(scenarios))
	}
	return out, nil
}
