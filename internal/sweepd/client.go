package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"cloversim/internal/sweep"
)

// Client is the typed HTTP client of one sweepd worker — the other
// half of the server's wire protocol, so the dispatch layer never
// hand-rolls JSON against it. It is safe for concurrent use.
type Client struct {
	// BaseURL is the worker's root URL (e.g. "http://host:8075"). A
	// bare host[:port] is promoted to http://.
	BaseURL string
	// HTTPClient, when nil, falls back to http.DefaultClient. Expand
	// calls can legitimately run for minutes (cold simulation), so a
	// client with a global timeout is usually wrong here; bound calls
	// with the context instead.
	HTTPClient *http.Client
	// Physics, when non-empty, makes ExecuteScenarios reject responses
	// simulated under a different physics version. A fleet checks
	// healthz at assembly, but a worker can be restarted with a newer
	// binary (or swapped behind a load balancer) mid-campaign; the
	// per-response check keeps foreign-physics results from ever
	// merging into this campaign or its store.
	Physics string
}

// NewClient returns a client for one worker base URL, promoting a
// scheme-less host[:port] to http://.
func NewClient(base string) *Client {
	base = strings.TrimSuffix(strings.TrimSpace(base), "/")
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{BaseURL: base}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// errorBody extracts the server's {"error": ...} message from a non-200
// response, falling back to the raw body.
func errorBody(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// Healthz probes the worker's /v1/healthz.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/healthz", nil)
	if err != nil {
		return Health{}, fmt.Errorf("sweepd client: %s: %w", c.BaseURL, err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Health{}, fmt.Errorf("sweepd client: %s: %w", c.BaseURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Health{}, fmt.Errorf("sweepd client: %s: reading healthz: %w", c.BaseURL, err)
	}
	if resp.StatusCode != http.StatusOK {
		return Health{}, fmt.Errorf("sweepd client: %s: healthz status %d: %s", c.BaseURL, resp.StatusCode, errorBody(body))
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		return Health{}, fmt.Errorf("sweepd client: %s: bad healthz body: %w", c.BaseURL, err)
	}
	return h, nil
}

// ExecResult is one scenario outcome returned by ExecuteScenarios.
// Exactly one of Metrics/Err is meaningful. Unstarted marks a cell the
// worker was cancelled out of before simulating (its expand deadline,
// a dying daemon): the cell is re-dispatchable, unlike a genuine
// simulation failure.
type ExecResult struct {
	ID        string
	Metrics   sweep.Metrics
	Err       error
	Unstarted bool
}

// ExecuteScenarios posts the scenarios to the worker's /v1/expand in
// explicit-key form and returns one result per scenario, in request
// order. Metric values are reconstructed from their IEEE-754 bits, so
// they are bit-exact with what the worker simulated. A transport
// error, a non-200 status or a malformed/mismatched response is a
// worker-level error (the whole batch is unaccounted for); per-cell
// failures ride in the results.
func (c *Client) ExecuteScenarios(ctx context.Context, scenarios []sweep.Scenario) ([]ExecResult, error) {
	keys := make([]string, len(scenarios))
	for i, s := range scenarios {
		keys[i] = s.Key()
	}
	reqBody, err := json.Marshal(GridSpec{Scenarios: keys})
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %s: encoding request: %w", c.BaseURL, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/expand", bytes.NewReader(reqBody))
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %s: %w", c.BaseURL, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %s: %w", c.BaseURL, err)
	}
	defer resp.Body.Close()
	// Bounded read: maxCells results at a few KB each stay far below
	// this; an endless body from a wedged worker (or a typo'd URL that
	// answers 200 forever) must not balloon the dispatcher's memory.
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("sweepd client: %s: reading expand response: %w", c.BaseURL, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweepd client: %s: expand status %d: %s", c.BaseURL, resp.StatusCode, errorBody(body))
	}
	var er executeResponse
	if err := json.Unmarshal(body, &er); err != nil {
		return nil, fmt.Errorf("sweepd client: %s: bad expand response: %w", c.BaseURL, err)
	}
	if c.Physics != "" && er.Physics != c.Physics {
		return nil, fmt.Errorf("sweepd client: %s: response simulated under physics %s, want %s", c.BaseURL, er.Physics, c.Physics)
	}
	if len(er.Results) != len(scenarios) {
		return nil, fmt.Errorf("sweepd client: %s: %d results for %d scenarios", c.BaseURL, len(er.Results), len(scenarios))
	}
	out := make([]ExecResult, len(er.Results))
	for i, r := range er.Results {
		if want := scenarios[i].ID(); r.ID != want {
			return nil, fmt.Errorf("sweepd client: %s: result %d is scenario %s, want %s", c.BaseURL, i, r.ID, want)
		}
		res := ExecResult{ID: r.ID, Unstarted: r.Unstarted}
		if r.Error != "" {
			res.Err = fmt.Errorf("worker %s: %s", c.BaseURL, r.Error)
			out[i] = res
			continue
		}
		m := make(sweep.Metrics, 0, len(r.Metrics))
		for _, jm := range r.Metrics {
			// The bits field is authoritative: the decimal mirror cannot
			// carry NaN/Inf and is for humans.
			bits, err := strconv.ParseUint(jm.Bits, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("sweepd client: %s: result %s metric %s: bad bits %q", c.BaseURL, r.ID, jm.Name, jm.Bits)
			}
			m.Add(jm.Name, math.Float64frombits(bits))
		}
		res.Metrics = m
		out[i] = res
	}
	return out, nil
}
