package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cloversim/internal/store"
	"cloversim/internal/sweep"
)

const execPhysics = "pexec"

func execStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "store"), execPhysics)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func execScenarios(n int) []sweep.Scenario {
	out := make([]sweep.Scenario, n)
	for i := range out {
		out[i] = sweep.Scenario{Machine: "m", Ranks: i + 1, Seed: 3}
	}
	return out
}

// TestExpandExplicitScenarios: the explicit form executes cells the
// worker has never seen, responds with bit-exact metrics in request
// order, writes through to the store, and serves repeats warm.
func TestExpandExplicitScenarios(t *testing.T) {
	var sims atomic.Int64
	runner := func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		sims.Add(1)
		var m sweep.Metrics
		m.Add("v", float64(s.Ranks)/3.0)
		return m, nil
	}
	st := execStore(t)
	ts := httptest.NewServer(New(st, runner, 2).Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	scs := execScenarios(4)
	res, err := c.ExecuteScenarios(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d results, want 4", len(res))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("cell %d failed: %v", i, r.Err)
		}
		if want := scs[i].ID(); r.ID != want {
			t.Errorf("result %d is %s, want %s (request order)", i, r.ID, want)
		}
		v, ok := r.Metrics.Get("v")
		if !ok || v != float64(scs[i].Ranks)/3.0 {
			t.Errorf("cell %d metric v = %v, want bit-exact %v", i, v, float64(scs[i].Ranks)/3.0)
		}
	}
	if sims.Load() != 4 {
		t.Fatalf("%d simulations, want 4", sims.Load())
	}
	if st.Len() != 4 {
		t.Errorf("store holds %d records after explicit expand, want 4", st.Len())
	}

	// Warm repeat: served from the store, zero new simulations.
	if _, err := c.ExecuteScenarios(context.Background(), scs); err != nil {
		t.Fatal(err)
	}
	if sims.Load() != 4 {
		t.Errorf("warm repeat simulated %d extra cells, want 0", sims.Load()-4)
	}
}

// TestExpandExplicitNaNMetrics: NaN/Inf metric values must survive the
// wire — the decimal mirror drops them (JSON cannot carry them, and a
// raw NaN would abort the whole response encode mid-body, cascading
// into a worker-level failure), while the authoritative bits round-trip
// them exactly.
func TestExpandExplicitNaNMetrics(t *testing.T) {
	runner := func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		var m sweep.Metrics
		m.Add("nan", math.NaN())
		m.Add("inf", math.Inf(1))
		m.Add("finite", 0.5)
		return m, nil
	}
	ts := httptest.NewServer(New(execStore(t), runner, 2).Handler())
	t.Cleanup(ts.Close)

	res, err := NewClient(ts.URL).ExecuteScenarios(context.Background(), execScenarios(1))
	if err != nil {
		t.Fatalf("NaN metrics broke the batch: %v", err)
	}
	if res[0].Err != nil {
		t.Fatalf("cell failed: %v", res[0].Err)
	}
	if v, ok := res[0].Metrics.Get("nan"); !ok || !math.IsNaN(v) {
		t.Errorf("nan metric = %v (present %t), want NaN", v, ok)
	}
	if v, ok := res[0].Metrics.Get("inf"); !ok || !math.IsInf(v, 1) {
		t.Errorf("inf metric = %v (present %t), want +Inf", v, ok)
	}
	if v, _ := res[0].Metrics.Get("finite"); v != 0.5 {
		t.Errorf("finite metric = %v, want 0.5", v)
	}
}

// TestExpandExplicitPerCellFailure: a failing cell rides in its result
// (Err set, Unstarted false) without failing the batch.
func TestExpandExplicitPerCellFailure(t *testing.T) {
	boom := errors.New("injected failure")
	runner := func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		if s.Ranks == 2 {
			return nil, boom
		}
		var m sweep.Metrics
		m.Add("v", 1)
		return m, nil
	}
	ts := httptest.NewServer(New(execStore(t), runner, 2).Handler())
	t.Cleanup(ts.Close)

	res, err := NewClient(ts.URL).ExecuteScenarios(context.Background(), execScenarios(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		failed := i == 1 // ranks == 2
		if failed {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "injected failure") {
				t.Errorf("cell %d error %v, want the injected failure", i, r.Err)
			}
			if r.Unstarted {
				t.Errorf("cell %d marked unstarted; it genuinely failed", i)
			}
		} else if r.Err != nil {
			t.Errorf("cell %d failed: %v", i, r.Err)
		}
	}
}

// TestExpandExplicitRejects: malformed keys and mixed grid/explicit
// specs are client errors, not executions.
func TestExpandExplicitRejects(t *testing.T) {
	ts := httptest.NewServer(New(execStore(t), func(context.Context, sweep.Scenario) (sweep.Metrics, error) {
		t.Error("runner executed for a rejected spec")
		return nil, nil
	}, 2).Handler())
	t.Cleanup(ts.Close)

	key := execScenarios(1)[0].Key()
	for name, body := range map[string]string{
		"bad key":    `{"scenarios": ["not a key"]}`,
		"mixed form": fmt.Sprintf(`{"machines": ["icx"], "scenarios": [%q]}`, key),
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/expand", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestHealthzCapacityAndInflight: healthz must advertise the daemon's
// simulation capacity and the number of expand requests in flight —
// the two numbers the dispatch layer shards by.
func TestHealthzCapacityAndInflight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	runner := func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		close(started)
		<-release
		var m sweep.Metrics
		m.Add("v", 1)
		return m, nil
	}
	ts := httptest.NewServer(New(execStore(t), runner, 3).Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Capacity != 3 || h.InFlight != 0 || h.Physics != execPhysics {
		t.Fatalf("idle healthz = %+v, want ok, capacity 3, inflight 0, physics %s", h, execPhysics)
	}

	// Park one expand in the runner and observe it in healthz.
	done := make(chan error, 1)
	go func() {
		_, err := c.ExecuteScenarios(context.Background(), execScenarios(1))
		done <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("expand never reached the runner")
	}
	if h, err = c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if h.InFlight != 1 {
		t.Errorf("healthz inflight = %d with one parked expand, want 1", h.InFlight)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestClientPromotesSchemelessURLs locks the -workers ergonomics:
// "host:port" means http.
func TestClientPromotesSchemelessURLs(t *testing.T) {
	for in, want := range map[string]string{
		"host:8075":          "http://host:8075",
		"http://host:8075/":  "http://host:8075",
		"https://host":       "https://host",
		" host.example.com ": "http://host.example.com",
	} {
		if got := NewClient(in).BaseURL; got != want {
			t.Errorf("NewClient(%q).BaseURL = %q, want %q", in, got, want)
		}
	}
}

// TestExplicitSpecJSONShape pins the wire form of the explicit request
// so the client and server cannot drift: scenarios ride under the
// "scenarios" key alongside the grid axes.
func TestExplicitSpecJSONShape(t *testing.T) {
	key := execScenarios(1)[0].Key()
	buf, err := json.Marshal(GridSpec{Scenarios: []string{key}})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`{"scenarios":[%q]}`, key)
	if string(buf) != want {
		t.Errorf("explicit spec encodes as %s, want %s", buf, want)
	}
}
