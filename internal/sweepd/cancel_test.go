package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cloversim/internal/sweep"
)

// syntheticMetrics builds valid scenario-derived metrics without real
// physics, keeping cancellation tests fast.
func syntheticMetrics(s sweep.Scenario) sweep.Metrics {
	var m sweep.Metrics
	m.Add("v", float64(s.Ranks))
	return m
}

// wideSpec is a 30-cell grid of cheap cells for cancellation tests.
func wideSpec() GridSpec {
	return GridSpec{
		Machines:  []string{"icx", "spr8480"},
		Workloads: []string{"stream"},
		Modes:     []string{"baseline", "nt", "pf-off"},
		Ranks:     []int{1, 2, 3, 4, 5},
		Threads:   []int{8},
		Seed:      900,
	}
}

// TestExpandClientDisconnectStopsSimulation is the tentpole's daemon
// half: a client that disconnects mid-expand must stop the server
// simulating that grid's remaining cold cells, release its global
// semaphore slots immediately, and leave the daemon fully responsive
// — abandoned requests cannot starve live ones.
func TestExpandClientDisconnectStopsSimulation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	st := openStore(t)
	var sims atomic.Int64
	var blocking atomic.Bool
	blocking.Store(true)
	started := make(chan struct{})
	var once sync.Once
	runner := func(ctx context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		sims.Add(1)
		once.Do(func() { close(started) })
		if blocking.Load() {
			// Simulate a long-running cell; it finishes only once the
			// request is abandoned (or the failsafe trips).
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(10 * time.Second):
				return nil, errors.New("cancellation never arrived")
			}
		}
		return syntheticMetrics(s), nil
	}
	ts := startServer(t, st, runner, 1) // one global slot: contention is total

	body, err := json.Marshal(wideSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/expand", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
			err = errors.New("expand of a blocked grid returned before disconnect")
		}
		errc <- err
	}()
	<-started // the first cold cell is simulating
	cancel()  // client walks away
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("disconnected request returned %v, want context.Canceled", err)
	}

	// The abandoned expand must stop scheduling: with the request
	// context dead, no further cells may enter the runner. Give the
	// handler a moment to unwind, then verify the count stays put.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && sims.Load() > 1 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := sims.Load(); got != 1 {
		t.Errorf("abandoned expand simulated %d cells, want only the 1 in flight at disconnect", got)
	}

	// The global slot must be free again: a fresh expand (non-blocking
	// runner) completes promptly. Before cancellable semaphore acquire,
	// this would queue behind 29 zombie cells.
	blocking.Store(false)
	spec := GridSpec{Machines: []string{"icx"}, Workloads: []string{"stream"},
		Modes: []string{"baseline"}, Ranks: []int{7, 8}, Threads: []int{8}, Seed: 901}
	status, out := postExpand(t, ts, spec)
	if status != http.StatusOK {
		t.Fatalf("post-disconnect expand status %d: %s", status, out)
	}
	var exp expandResponse
	if err := json.Unmarshal(out, &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Scenarios != 2 || exp.Failed != 0 {
		t.Errorf("post-disconnect expand: %d scenarios, %d failed; want 2/0 (semaphore slot leaked?)", exp.Scenarios, exp.Failed)
	}

	// No goroutine pile-up: the abandoned expand's workers all exited.
	ts.Client().CloseIdleConnections()
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline+10 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+10 {
		t.Errorf("goroutines grew from %d to %d after the abandoned expand", baseline, n)
	}
}

// TestExpandTimeout: the server-side deadline bounds an expand. The
// response is a partial campaign flagged with X-Expand-Incomplete,
// unstarted cells carry errors, and the simulation count proves the
// grid was cut short.
func TestExpandTimeout(t *testing.T) {
	st := openStore(t)
	var sims atomic.Int64
	runner := func(ctx context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		sims.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
		return syntheticMetrics(s), nil
	}
	srv := New(st, runner, 1)
	srv.ExpandTimeout = 60 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	body, err := json.Marshal(wideSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/expand", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timed-out expand status %d: %s", resp.StatusCode, out)
	}
	if h := resp.Header.Get("X-Expand-Incomplete"); !strings.Contains(h, "deadline") {
		t.Errorf("X-Expand-Incomplete header = %q, want a deadline marker", h)
	}
	var exp expandResponse
	if err := json.Unmarshal(out, &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Scenarios != 30 {
		t.Errorf("partial campaign reports %d scenarios, want all 30 finalized", exp.Scenarios)
	}
	if exp.Failed == 0 {
		t.Error("timed-out expand reports zero failed cells; unstarted cells must carry errors")
	}
	if got := sims.Load(); got >= 30 {
		t.Errorf("deadline did not stop the grid: %d cells simulated", got)
	}
	// Only completed cells were persisted.
	if st.Len() >= 30 || int64(st.Len()) > sims.Load() {
		t.Errorf("store holds %d records after %d simulations", st.Len(), sims.Load())
	}
}

// TestExpandStarvedCellsReportUnstarted: a request whose cells spend
// their whole life waiting on the global semaphore (another expand
// holds the only slot) must report them as unstarted when its deadline
// fires — they are skipped work, not simulation failures — and flag
// the response incomplete.
func TestExpandStarvedCellsReportUnstarted(t *testing.T) {
	st := openStore(t)
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	runner := func(ctx context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		if s.Ranks == 1 {
			// The hog cell: holds the only slot until released,
			// deliberately ignoring its own deadline so the slot stays
			// occupied well past the starved request's.
			once.Do(func() { close(started) })
			select {
			case <-release:
			case <-time.After(10 * time.Second):
				return nil, errors.New("never released")
			}
		}
		return syntheticMetrics(s), nil
	}
	srv := New(st, runner, 1) // one global slot for the whole daemon
	srv.ExpandTimeout = 150 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Expand A grabs the only slot and sits on it.
	hogSpec := GridSpec{Machines: []string{"icx"}, Workloads: []string{"stream"},
		Modes: []string{"baseline"}, Ranks: []int{1}, Threads: []int{8}, Seed: 910}
	hogBody, _ := json.Marshal(hogSpec)
	hogDone := make(chan struct{})
	go func() {
		defer close(hogDone)
		resp, err := http.Post(ts.URL+"/v1/expand", "application/json", bytes.NewReader(hogBody))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	// Expand B starves behind it until the deadline.
	spec := GridSpec{Machines: []string{"icx"}, Workloads: []string{"stream"},
		Modes: []string{"baseline"}, Ranks: []int{21, 22}, Threads: []int{8}, Seed: 911}
	status, out := postExpand(t, ts, spec)
	if status != http.StatusOK {
		t.Fatalf("starved expand status %d: %s", status, out)
	}
	var exp struct {
		Results []struct {
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out, &exp); err != nil {
		t.Fatal(err)
	}
	unstarted := 0
	for _, r := range exp.Results {
		if strings.Contains(r.Error, sweep.ErrUnstarted.Error()) {
			unstarted++
		}
	}
	if unstarted != 2 {
		t.Errorf("%d of 2 starved cells marked unstarted; response:\n%s", unstarted, out)
	}
	close(release)
	<-hogDone
}

// syncSpyStore wraps a ResultStore to count or fail Sync calls.
type syncSpyStore struct {
	ResultStore
	syncs   atomic.Int64
	syncErr error
}

func (s *syncSpyStore) Sync() error {
	s.syncs.Add(1)
	if s.syncErr != nil {
		return s.syncErr
	}
	return s.ResultStore.Sync()
}

// TestExpandSyncsBeforeResponding: the 200 response is a durability
// acknowledgement, so the store must be fsynced before the body goes
// out — a daemon crash after the response cannot lose results the
// client believes are persisted.
func TestExpandSyncsBeforeResponding(t *testing.T) {
	spy := &syncSpyStore{ResultStore: openStore(t)}
	runner := func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		return syntheticMetrics(s), nil
	}
	ts := startServer(t, spy, runner, 2)
	spec := GridSpec{Machines: []string{"icx"}, Workloads: []string{"stream"},
		Modes: []string{"baseline"}, Ranks: []int{1, 2}, Threads: []int{8}, Seed: 902}
	if status, out := postExpand(t, ts, spec); status != http.StatusOK {
		t.Fatalf("expand status %d: %s", status, out)
	}
	if spy.syncs.Load() == 0 {
		t.Error("cold expand responded 200 without syncing the store")
	}
	// A fully-warm expand must also end clean — Sync is called
	// unconditionally (it is free on a clean store) so a dirty store
	// left by an earlier failed fsync gets retried, never vouched for.
	if status, out := postExpand(t, ts, spec); status != http.StatusOK {
		t.Fatalf("warm expand status %d: %s", status, out)
	}
}

// putFailStore wraps a ResultStore so every write-through fails,
// simulating a full disk while the in-memory engine keeps working.
type putFailStore struct {
	ResultStore
}

func (s *putFailStore) Put(sweep.Scenario, sweep.Metrics) error {
	return errors.New("put: disk full")
}

// flakyPutStore fails the first `failures` write-throughs, then
// delegates — a disk that filled up and was cleared.
type flakyPutStore struct {
	ResultStore
	remaining atomic.Int64
}

func (s *flakyPutStore) Put(sc sweep.Scenario, m sweep.Metrics) error {
	if s.remaining.Add(-1) >= 0 {
		return errors.New("put: disk full")
	}
	return s.ResultStore.Put(sc, m)
}

// TestExpandRepairsTransientPutFailure: a transient write-through
// failure must not cost the client an X-Store-Error when the store
// recovers — the handler's verification loop retries the Put with the
// in-hand metrics before responding, so the cell is persisted and the
// response is clean, in the same request when possible and on the
// next one at the latest.
func TestExpandRepairsTransientPutFailure(t *testing.T) {
	real := openStore(t)
	flaky := &flakyPutStore{ResultStore: real}
	flaky.remaining.Store(2) // both engine write-throughs fail; the repair retry succeeds
	runner := func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		return syntheticMetrics(s), nil
	}
	ts := startServer(t, flaky, runner, 2)
	spec := GridSpec{Machines: []string{"icx"}, Workloads: []string{"stream"},
		Modes: []string{"baseline"}, Ranks: []int{15, 16}, Threads: []int{8}, Seed: 905}
	body, _ := json.Marshal(spec)

	resp, err := http.Post(ts.URL+"/v1/expand", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get("X-Store-Error"); h != "" {
		t.Errorf("repaired expand still flags X-Store-Error %q", h)
	}
	if real.Len() != 2 {
		t.Errorf("repair persisted %d records, want 2", real.Len())
	}

	// The warm repeat finds everything durable and stays clean.
	resp, err = http.Post(ts.URL+"/v1/expand", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get("X-Store-Error"); h != "" {
		t.Errorf("warm expand after repair flags X-Store-Error %q", h)
	}
}

// TestWarmExpandAfterFailedPutsStillFlagsLoss: when write-throughs
// fail, the engine memoizer still holds the results, so a repeat of
// the same grid is served warm from memory — but those results are
// NOT in the store (and the repair retry also fails), so the response
// must keep saying so. Before the Lookup verification, the warm 200
// carried no X-Store-Error and falsely promised durability.
func TestWarmExpandAfterFailedPutsStillFlagsLoss(t *testing.T) {
	broken := &putFailStore{ResultStore: openStore(t)}
	runner := func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		return syntheticMetrics(s), nil
	}
	var logged bytes.Buffer
	srv := New(broken, runner, 2)
	srv.ErrorLog = log.New(&logged, "", 0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	spec := GridSpec{Machines: []string{"icx"}, Workloads: []string{"stream"},
		Modes: []string{"baseline"}, Ranks: []int{5, 6}, Threads: []int{8}, Seed: 904}
	body, _ := json.Marshal(spec)
	for pass, label := range []string{"cold", "warm"} {
		resp, err := http.Post(ts.URL+"/v1/expand", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s expand status %d: %s", label, resp.StatusCode, out)
		}
		if resp.Header.Get("X-Store-Error") == "" {
			t.Errorf("%s expand (pass %d) carries no X-Store-Error despite nothing being persisted", label, pass)
		}
		var exp expandResponse
		if err := json.Unmarshal(out, &exp); err != nil {
			t.Fatal(err)
		}
		if exp.Scenarios != 2 || exp.Failed != 0 {
			t.Fatalf("%s expand lost the campaign: %s", label, out)
		}
	}
}

// TestExpandSurfacesSyncFailure: a failed fsync is a durability loss
// exactly like a failed Put, and reaches the client through the same
// X-Store-Error path.
func TestExpandSurfacesSyncFailure(t *testing.T) {
	spy := &syncSpyStore{ResultStore: openStore(t), syncErr: errors.New("fsync: disk on fire")}
	runner := func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		return syntheticMetrics(s), nil
	}
	var logged bytes.Buffer
	srv := New(spy, runner, 2)
	srv.ErrorLog = log.New(&logged, "", 0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	spec := GridSpec{Machines: []string{"icx"}, Workloads: []string{"stream"},
		Modes: []string{"baseline"}, Ranks: []int{3}, Threads: []int{8}, Seed: 903}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/expand", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expand status %d: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("X-Store-Error") == "" {
		t.Error("sync failure not flagged in X-Store-Error header")
	}
	var exp expandResponse
	if err := json.Unmarshal(out, &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Scenarios != 1 || exp.Failed != 0 {
		t.Errorf("campaign lost alongside the sync failure: %s", out)
	}
	if !strings.Contains(logged.String(), "disk on fire") {
		t.Errorf("sync failure not logged:\n%s", logged.String())
	}
}

// brokenPipeWriter fails every body write the way a hung-up client
// does.
type brokenPipeWriter struct {
	header http.Header
	status int
}

func (w *brokenPipeWriter) Header() http.Header { return w.header }

func (w *brokenPipeWriter) WriteHeader(status int) { w.status = status }

func (w *brokenPipeWriter) Write([]byte) (int, error) {
	return 0, fmt.Errorf("write: %w", syscall.EPIPE)
}

// TestWriteJSONLogsBrokenPipe: response-encode failures have no client
// left to report to, so they must reach the server log instead of
// vanishing — otherwise handler bugs (and systematic client hangups)
// are invisible.
func TestWriteJSONLogsBrokenPipe(t *testing.T) {
	var logged bytes.Buffer
	srv := New(openStore(t), func(_ context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		return syntheticMetrics(s), nil
	}, 1)
	srv.ErrorLog = log.New(&logged, "", 0)
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	w := &brokenPipeWriter{header: http.Header{}}
	srv.writeJSON(w, req, http.StatusOK, map[string]string{"ok": "true"})
	if w.status != http.StatusOK {
		t.Fatalf("status %d written, want 200", w.status)
	}
	if out := logged.String(); !strings.Contains(out, "broken pipe") || !strings.Contains(out, "/v1/healthz") {
		t.Errorf("broken pipe not logged with the request path:\n%q", out)
	}
}
