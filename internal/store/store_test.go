package store

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cloversim/internal/sweep"
)

func scenario(machine, workload string, seed uint64) sweep.Scenario {
	nt, _ := sweep.ModeByName("nt")
	return sweep.Scenario{
		Machine:  machine,
		Workload: workload,
		Mode:     nt,
		Ranks:    4,
		Mesh:     sweep.Mesh{X: 1536, Y: 1536},
		Threads:  8,
		MaxRows:  8,
		Seed:     seed,
	}
}

func metrics(vals ...float64) sweep.Metrics {
	var m sweep.Metrics
	for i, v := range vals {
		m.Add("m"+string(rune('a'+i)), v)
	}
	return m
}

func mustOpen(t *testing.T, dir, physics string) *Store {
	t.Helper()
	s, err := Open(dir, physics)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// equalBits compares metrics for bit-exact equality (NaN == NaN, -0 != +0).
func equalBits(t *testing.T, got, want sweep.Metrics) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d metrics, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Errorf("metric %d name %q, want %q", i, got[i].Name, want[i].Name)
		}
		if gb, wb := math.Float64bits(got[i].Value), math.Float64bits(want[i].Value); gb != wb {
			t.Errorf("metric %s bits %#x, want %#x", want[i].Name, gb, wb)
		}
	}
}

func TestPutGetReopenBitExact(t *testing.T) {
	dir := t.TempDir()
	sc := scenario("icx", "jacobi", 1)
	// Deliberately hostile values: NaN, infinities, negative zero,
	// denormals, and a value that needs all 17 digits in decimal.
	m := metrics(math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1),
		5e-324, 0.1+0.2, 14.476623456789012)

	s := mustOpen(t, dir, "p1")
	if _, ok := s.Get(sc); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	if err := s.Put(sc, m); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(sc)
	if !ok {
		t.Fatal("Get missed a freshly Put scenario")
	}
	equalBits(t, got, m)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, "p1")
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d records, want 1", s2.Len())
	}
	got, ok = s2.Get(sc)
	if !ok {
		t.Fatal("Get missed after reopen")
	}
	equalBits(t, got, m)
	rec, ok := s2.Lookup(sc.ID())
	if !ok || rec.Scenario != sc {
		t.Fatalf("Lookup(%s) = %+v, %t; want original scenario back", sc.ID(), rec.Scenario, ok)
	}
}

func TestPutIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	sc := scenario("icx", "jacobi", 1)
	s := mustOpen(t, dir, "p1")
	for i := 0; i < 3; i++ {
		if err := s.Put(sc, metrics(1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPattern))
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Fatalf("segment holds %d lines, want 1 (Put must be a no-op on duplicates)", n)
	}
}

func TestPhysicsVersionIsolation(t *testing.T) {
	dir := t.TempDir()
	sc := scenario("icx", "jacobi", 1)
	s := mustOpen(t, dir, "p1")
	if err := s.Put(sc, metrics(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A new physics version must not serve the stale record...
	s2 := mustOpen(t, dir, "p2")
	if _, ok := s2.Get(sc); ok {
		t.Fatal("p2 store served a p1 record")
	}
	if st := s2.Stats(); st.Stale != 1 || st.Records != 0 {
		t.Fatalf("stats = %+v, want 1 stale, 0 records", st)
	}
	// ...and can record its own result for the same scenario.
	if err := s2.Put(sc, metrics(2)); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// The original version still sees its own record, not p2's.
	s3 := mustOpen(t, dir, "p1")
	got, ok := s3.Get(sc)
	if !ok {
		t.Fatal("p1 record lost after p2 wrote")
	}
	equalBits(t, got, metrics(1))
}

func TestRecoveryTolerance(t *testing.T) {
	dir := t.TempDir()
	keep := scenario("icx", "jacobi", 1)
	torn := scenario("icx", "stream", 2)
	s := mustOpen(t, dir, "p1")
	if err := s.Put(keep, metrics(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(torn, metrics(4)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, segPattern))
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: tear the final record's line.
	data = data[:len(data)-7]
	// And a separate segment of assorted damage: garbage, a record
	// whose key does not hash to its ID, an overlong line, and an
	// unterminated tail.
	evil := scenario("spr8480", "jacobi", 3)
	evilLine, err := EncodeRecord("p1", evil, metrics(9))
	if err != nil {
		t.Fatal(err)
	}
	forged := strings.Replace(string(evilLine), `"id":"`+evil.ID()+`"`, `"id":"000000000000"`, 1)
	damage := "not json at all\n" +
		forged +
		"{\"id\":\"deadbeef\"," + strings.Repeat("x", maxLineBytes+4096) + "\n" +
		string(evilLine) +
		"{\"id\":\"trunc" // torn tail, no newline
	if err := os.WriteFile(data2path(dir), []byte(damage), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, "p1")
	st := s2.Stats()
	if s2.Len() != 2 {
		t.Fatalf("recovered %d records (%s), want 2 (keep + evil)", s2.Len(), st)
	}
	if _, ok := s2.Get(keep); !ok {
		t.Error("intact record lost in recovery")
	}
	if _, ok := s2.Get(evil); !ok {
		t.Error("valid record after damage lost in recovery")
	}
	if _, ok := s2.Get(torn); ok {
		t.Error("torn record served")
	}
	// Five corrupt lines: the torn tail of segment one, then garbage,
	// the forged ID, the overlong line and the unterminated tail of the
	// damage segment.
	if st.Corrupt != 5 {
		t.Errorf("stats report %s, want 5 corrupt", st)
	}
}

// data2path names the damage segment so it sorts after the real one.
func data2path(dir string) string { return filepath.Join(dir, "seg-999999.jsonl") }

func TestDuplicateAcrossSegmentsFirstWins(t *testing.T) {
	dir := t.TempDir()
	sc := scenario("icx", "jacobi", 1)
	s := mustOpen(t, dir, "p1")
	if err := s.Put(sc, metrics(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// A second writer (different process) records the same scenario
	// with IDENTICAL bytes — the benign convergence case: first segment
	// wins on recovery and the re-encounter is a duplicate, no alarm.
	line, err := EncodeRecord("p1", sc, metrics(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(data2path(dir), line, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, "p1")
	if st := s2.Stats(); st.Duplicates != 1 || st.Conflicts != 0 || st.Records != 1 {
		t.Fatalf("stats = %s, want 1 record 1 duplicate 0 conflicts", st)
	}
	got, _ := s2.Get(sc)
	equalBits(t, got, metrics(1))
}

// TestDuplicateWithDifferentBitsIsConflict is the regression for
// recovery silently laundering a real disagreement as a benign
// duplicate: the same scenario ID recorded with DIFFERENT metric bits
// must surface as a Conflict naming the ID, while resolution stays
// deterministic first-wins.
func TestDuplicateWithDifferentBitsIsConflict(t *testing.T) {
	dir := t.TempDir()
	sc := scenario("icx", "jacobi", 1)
	s := mustOpen(t, dir, "p1")
	if err := s.Put(sc, metrics(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	line, err := EncodeRecord("p1", sc, metrics(2)) // same ID, different bits
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(data2path(dir), line, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, "p1")
	st := s2.Stats()
	if st.Conflicts != 1 || st.Duplicates != 0 || st.Records != 1 {
		t.Fatalf("stats = %s, want 1 record 1 conflict 0 duplicates", st)
	}
	if len(st.ConflictIDs) != 1 || st.ConflictIDs[0] != sc.ID() {
		t.Fatalf("ConflictIDs = %v, want [%s]", st.ConflictIDs, sc.ID())
	}
	if !strings.Contains(st.String(), "CONFLICTING") {
		t.Fatalf("Stats.String() = %q does not surface the conflict", st)
	}
	got, _ := s2.Get(sc)
	equalBits(t, got, metrics(1)) // first record wins, deterministically
}

// TestSegmentRolloverRecoveryOrder is the regression for the lexical
// segment sort: seg-1000000 (unpadded overflow past the %06d width)
// sorts lexically BEFORE seg-999999, so first-record-wins recovery
// would resurrect the older record's rival. Numeric ordering must win.
func TestSegmentRolloverRecoveryOrder(t *testing.T) {
	dir := t.TempDir()
	sc := scenario("icx", "jacobi", 1)
	older, err := EncodeRecord("p1", sc, metrics(1))
	if err != nil {
		t.Fatal(err)
	}
	newer, err := EncodeRecord("p1", sc, metrics(2))
	if err != nil {
		t.Fatal(err)
	}
	// seg-999999 was written first (lower segment number), seg-1000000
	// after rollover. Recovery must keep seg-999999's record.
	if err := os.WriteFile(filepath.Join(dir, "seg-999999.jsonl"), older, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-1000000.jsonl"), newer, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, "p1")
	got, ok := s.Get(sc)
	if !ok {
		t.Fatal("record lost across rollover")
	}
	equalBits(t, got, metrics(1))
	// And the next segment this process claims must be numbered past
	// the true maximum, not past the lexical maximum.
	if err := s.Put(scenario("icx", "stream", 2), metrics(3)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, "seg-1000001.jsonl")); err != nil {
		t.Fatalf("expected seg-1000001.jsonl after rollover: %v", err)
	}
}

func TestSeparateOpensUseSeparateSegments(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, "p1")
	if err := a.Put(scenario("icx", "jacobi", 1), metrics(1)); err != nil {
		t.Fatal(err)
	}
	b := mustOpen(t, dir, "p1")
	if err := b.Put(scenario("icx", "stream", 2), metrics(2)); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPattern))
	if len(segs) != 2 {
		t.Fatalf("%d segments, want 2 (one per writer)", len(segs))
	}
	s := mustOpen(t, dir, "p1")
	if s.Len() != 2 {
		t.Fatalf("recovered %d records across segments, want 2", s.Len())
	}
}

func TestRecordsDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "p1")
	scs := []sweep.Scenario{
		scenario("spr8480", "stream", 3),
		scenario("icx", "jacobi", 1),
		scenario("icx", "stream", 2),
	}
	for _, sc := range scs {
		if err := s.Put(sc, metrics(1)); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Records()
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Scenario.Key() >= recs[i].Scenario.Key() {
			t.Fatalf("Records not sorted by key at %d", i)
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "p1")
	const writers, readers, n = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Overlapping seed ranges force concurrent duplicate Puts.
				sc := scenario("icx", "jacobi", uint64(i))
				if err := s.Put(sc, metrics(float64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				sc := scenario("icx", "jacobi", uint64(i))
				if m, ok := s.Get(sc); ok && len(m) != 1 {
					t.Errorf("Get(%d) returned %d metrics", i, len(m))
					return
				}
				s.Records()
				s.Stats()
			}
		}()
	}
	wg.Wait()
	if s.Len() != n {
		t.Fatalf("store holds %d records, want %d", s.Len(), n)
	}
	s.Close()
	s2 := mustOpen(t, dir, "p1")
	if s2.Len() != n {
		t.Fatalf("reopen holds %d records, want %d (duplicate suppression failed)", s2.Len(), n)
	}
}

func TestOpenRejectsEmptyPhysics(t *testing.T) {
	if _, err := Open(t.TempDir(), ""); err == nil {
		t.Fatal("Open with empty physics version succeeded")
	}
}

func TestAccessorsAndSync(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "p1")
	if s.Physics() != "p1" || s.Dir() != dir {
		t.Fatalf("accessors: physics %q dir %q", s.Physics(), s.Dir())
	}
	if err := s.Sync(); err != nil { // no active segment yet
		t.Fatal(err)
	}
	if err := s.Put(scenario("icx", "jacobi", 1), metrics(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().String(); !strings.Contains(got, "1 records in 1 segments") {
		t.Fatalf("Stats.String() = %q", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestSyncAfterCloseIsSafe locks down the shutdown contract sweepd
// relies on: when a forced shutdown closes the store while a late
// handler still calls Sync, the Sync is a clean no-op — never a panic
// or an error on a file that is already durable.
func TestSyncAfterCloseIsSafe(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "p1")
	if err := s.Put(scenario("icx", "jacobi", 9), metrics(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after Close = %v, want nil no-op", err)
	}
	// Put, by contrast, must fail loudly: resurrecting a fresh segment
	// after Close would leave it unsynced and unclosed, silently
	// breaking the durability contract a forced daemon shutdown
	// depends on.
	if err := s.Put(scenario("icx", "jacobi", 10), metrics(4)); err == nil {
		t.Fatal("Put after Close succeeded; want an error routing the loss to the caller")
	}
	if s.Len() != 1 {
		t.Fatalf("store indexed a post-Close record: %d records, want 1", s.Len())
	}
}

// TestSyncDirtyTracking: Sync must be free on a clean store (callers
// sit on response paths and invoke it unconditionally) and must only
// clear the dirty mark on success, so a failed fsync is retried by
// the next Sync instead of silently vouched for.
func TestSyncDirtyTracking(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "p1")
	if s.dirty {
		t.Fatal("fresh store is dirty")
	}
	if err := s.Put(scenario("icx", "jacobi", 11), metrics(5)); err != nil {
		t.Fatal(err)
	}
	if !s.dirty {
		t.Fatal("Put did not mark the store dirty")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.dirty {
		t.Fatal("successful Sync did not mark the store clean")
	}
	if err := s.Sync(); err != nil { // clean: free no-op
		t.Fatal(err)
	}
	if err := s.Put(scenario("icx", "jacobi", 12), metrics(6)); err != nil {
		t.Fatal(err)
	}
	if !s.dirty {
		t.Fatal("second Put did not re-mark the store dirty")
	}
}

// TestPutAfterTornWriteDoesNotMergeLines: a failed append may leave a
// partial, newline-less line at the segment tail; the next successful
// Put must not glue its record onto that garbage (which would corrupt
// BOTH records on recovery). The poisoned store prepends a newline,
// so recovery drops only the torn line and keeps the new record.
func TestPutAfterTornWriteDoesNotMergeLines(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "p1")
	if err := s.Put(scenario("icx", "jacobi", 20), metrics(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: partial garbage lands, Put reports error.
	// A real failed write also invalidates the seal-time sidecar (the
	// landed byte count is unknown, so offsets cannot be trusted).
	if _, err := s.active.Write([]byte(`{"id":"deadbeef","phys":"p1","key":"torn`)); err != nil {
		t.Fatal(err)
	}
	s.torn = true
	s.activeIndexOK = false
	// The next Put must survive recovery intact.
	if err := s.Put(scenario("icx", "jacobi", 21), metrics(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, "p1")
	if s2.Len() != 2 {
		t.Fatalf("recovered %d records, want both survivors of the torn write", s2.Len())
	}
	if _, ok := s2.Get(scenario("icx", "jacobi", 21)); !ok {
		t.Fatal("record appended after the torn write did not survive recovery")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Errorf("recovery counted %d corrupt lines, want exactly the torn one", st.Corrupt)
	}
}

// TestConcurrentPutSync hammers Put against Sync the way sweepd does:
// every expand handler syncs before responding while other expands
// are still writing through. Run under -race in CI.
func TestConcurrentPutSync(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "p1")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := s.Put(scenario("icx", "jacobi", uint64(w*100+i)), metrics(float64(i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if err := s.Sync(); err != nil {
					t.Errorf("Sync: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Fatalf("store holds %d records, want 100", s.Len())
	}
}

func TestOpenFailsOnUnusableDir(t *testing.T) {
	dir := t.TempDir()
	// A regular file where the store directory should be.
	path := filepath.Join(dir, "blocked")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "p1"); err == nil {
		t.Fatal("Open on a file path succeeded")
	}
	if _, err := Open(filepath.Join(path, "sub"), "p1"); err == nil {
		t.Fatal("Open under a file path succeeded")
	}
}

func TestStaleErrorMessage(t *testing.T) {
	line, err := EncodeRecord("p9", scenario("icx", "jacobi", 1), metrics(1))
	if err != nil {
		t.Fatal(err)
	}
	_, derr := DecodeRecord(line[:len(line)-1], "p1")
	if !isStale(derr) || !strings.Contains(derr.Error(), "p9") {
		t.Fatalf("stale decode error = %v", derr)
	}
}

func TestSegmentNumberingSkipsForeignNames(t *testing.T) {
	dir := t.TempDir()
	// A foreign file matching the glob but not the numbering scheme
	// must not break segment claiming.
	if err := os.WriteFile(filepath.Join(dir, "seg-zzz.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, "p1")
	if err := s.Put(scenario("icx", "jacobi", 1), metrics(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, "seg-000001.jsonl")); err != nil {
		t.Fatalf("expected seg-000001.jsonl: %v", err)
	}
}
