// Package store is the persistent, content-addressed campaign result
// store: every simulated scenario is recorded once, keyed by its
// config hash (sweep.Scenario.ID) plus the physics version of the
// simulator that produced it, in an append-only JSONL segment format.
//
// It is the durability layer that turns the in-process sweep engine
// into a resumable, servable system: cmd/sweep -store skips every
// already-simulated cell of a campaign grid, and cmd/sweepd serves one
// store to many concurrent HTTP clients.
//
// Design points:
//
//   - Content addressing. A record's identity is the scenario's config
//     hash; the physics version namespaces it. Writing the same
//     scenario twice is a no-op, so concurrent writers converge
//     instead of conflicting.
//   - Append-safe segments. Each record is one JSON line appended with
//     a single O_APPEND write, so a crash can only tear the final
//     line, never an earlier record.
//   - Corruption-tolerant recovery. Open scans every segment and
//     tolerates torn tails, garbage lines, duplicate records and
//     records whose key no longer hashes to their claimed ID; damage
//     is counted in Stats, never fatal, and never a panic.
//   - Version hygiene. Records from other physics versions are
//     retained on disk but never served, so bumping the version
//     invalidates every stale result at once without deleting data.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cloversim/internal/sweep"
)

// segPattern matches segment files. Segments are scanned in lexical
// order on Open; each process appends to a fresh, exclusively created
// segment so two processes sharing a store directory never interleave
// writes within one file.
const segPattern = "seg-*.jsonl"

// maxLineBytes bounds one record line during recovery, so a corrupt
// segment full of unbroken garbage cannot balloon memory. Real records
// are a few hundred bytes.
const maxLineBytes = 1 << 20

// Record is one stored campaign result: the scenario that produced it
// (rebuilt from its canonical key string) and its bit-exact metrics.
type Record struct {
	ID       string
	Scenario sweep.Scenario
	Metrics  sweep.Metrics
}

// Stats summarizes what Open found while recovering a store directory.
type Stats struct {
	Segments   int // segment files scanned
	Records    int // live records indexed (current physics version)
	Stale      int // well-formed records under other physics versions
	Corrupt    int // undecodable or integrity-failed lines skipped
	Duplicates int // re-encounters of an already-indexed ID
}

func (s Stats) String() string {
	return fmt.Sprintf("%d records in %d segments (%d stale, %d corrupt, %d duplicate)",
		s.Records, s.Segments, s.Stale, s.Corrupt, s.Duplicates)
}

// Store is a disk-backed result store. It is safe for concurrent use;
// reads are served from an in-memory index populated at Open and kept
// in sync by Put. Store implements sweep.Cache, so it plugs into the
// engine as the persistent tier directly.
type Store struct {
	dir     string
	physics string

	mu     sync.RWMutex
	index  map[string]Record // scenario ID -> record (current physics only)
	active *os.File          // lazily created on first Put
	closed bool              // Close was called; Put must not resurrect a segment
	dirty  bool              // appended since the last successful fsync
	torn   bool              // last append failed; tail may hold a partial line
	stats  Stats
}

// Open recovers the store in dir for the given physics version,
// creating the directory if needed. Damaged segments degrade to Stats
// counts; only unreadable directories and I/O errors fail.
func Open(dir, physics string) (*Store, error) {
	if physics == "" {
		return nil, fmt.Errorf("store: empty physics version")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, physics: physics, index: map[string]Record{}}
	segs, err := s.segments()
	if err != nil {
		return nil, err
	}
	for _, seg := range segs {
		if err := s.recoverSegment(seg); err != nil {
			return nil, err
		}
	}
	s.stats.Segments = len(segs)
	s.stats.Records = len(s.index)
	return s, nil
}

// segments lists the store's segment files in lexical (creation)
// order.
func (s *Store) segments() ([]string, error) {
	segs, err := filepath.Glob(filepath.Join(s.dir, segPattern))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(segs)
	return segs, nil
}

// recoverSegment indexes one segment, first record per ID wins.
// Undecodable lines — torn tails, hand edits, bit rot — are counted
// and skipped.
func (s *Store) recoverSegment(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	for {
		line, err := readLine(r)
		if len(line) > 0 {
			switch rec, derr := DecodeRecord(line, s.physics); {
			case derr == nil:
				if _, dup := s.index[rec.ID]; dup {
					s.stats.Duplicates++
				} else {
					s.index[rec.ID] = rec
				}
			case isStale(derr):
				s.stats.Stale++
			default:
				s.stats.Corrupt++
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", path, err)
		}
	}
}

// readLine reads one newline-terminated line, returning it without the
// terminator. Memory is bounded: a line longer than maxLineBytes has
// its tail consumed but discarded, and the truncated prefix is
// returned (it fails decoding and counts as corrupt, rather than
// ballooning recovery memory or aborting it). io.EOF accompanies the
// final, unterminated line.
func readLine(r *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		frag, err := r.ReadSlice('\n')
		if len(line) < maxLineBytes {
			line = append(line, frag...)
			if len(line) > maxLineBytes {
				line = line[:maxLineBytes]
			}
		}
		switch err {
		case nil:
			if n := len(line); n > 0 && line[n-1] == '\n' {
				line = line[:n-1]
			}
			return line, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return line, err
		}
	}
}

// isStale reports whether a decode error means "fine record, other
// physics version" rather than corruption.
func isStale(err error) bool { _, ok := err.(*staleError); return ok }

type staleError struct{ got string }

func (e *staleError) Error() string { return "store: record from physics version " + e.got }

// lineRecord is the JSONL wire form of one record. The scenario rides
// as its canonical key string (sweep.ParseKey rebuilds it; the ID must
// re-derive from it, which is the per-record integrity check). Metric
// values ride as hex-encoded IEEE-754 bits so a round trip through the
// store is bit-exact; the decimal form is informational for humans and
// grep.
type lineRecord struct {
	ID      string       `json:"id"`
	Physics string       `json:"phys"`
	Key     string       `json:"key"`
	Metrics []lineMetric `json:"metrics"`
}

type lineMetric struct {
	Name  string  `json:"name"`
	Bits  string  `json:"bits"`
	Value float64 `json:"value,omitempty"`
}

// EncodeRecord renders one record as a JSONL line (newline included).
func EncodeRecord(physics string, sc sweep.Scenario, m sweep.Metrics) ([]byte, error) {
	lr := lineRecord{
		ID:      sc.ID(),
		Physics: physics,
		Key:     sc.Key(),
		Metrics: make([]lineMetric, 0, len(m)),
	}
	for _, mt := range m {
		lm := lineMetric{Name: mt.Name, Bits: strconv.FormatUint(math.Float64bits(mt.Value), 16)}
		// The decimal mirror is best-effort: JSON cannot carry NaN/Inf,
		// and omitempty drops zeros — the bits field alone is
		// authoritative.
		if !math.IsNaN(mt.Value) && !math.IsInf(mt.Value, 0) {
			lm.Value = mt.Value
		}
		lr.Metrics = append(lr.Metrics, lm)
	}
	buf, err := json.Marshal(lr)
	if err != nil {
		return nil, fmt.Errorf("store: encode %s: %w", lr.ID, err)
	}
	return append(buf, '\n'), nil
}

// DecodeRecord parses and verifies one JSONL line. It never panics on
// arbitrary input. Beyond JSON well-formedness it enforces the store's
// integrity invariants: the physics version must match (a mismatch is
// the distinguished stale error), the key must parse as a canonical
// scenario key, the scenario must hash back to the claimed ID, and
// every metric must carry decodable bits under a non-empty name.
func DecodeRecord(line []byte, physics string) (Record, error) {
	var lr lineRecord
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&lr); err != nil {
		return Record{}, fmt.Errorf("store: bad record line: %w", err)
	}
	if dec.More() {
		return Record{}, fmt.Errorf("store: trailing data after record")
	}
	if lr.Physics != physics {
		return Record{}, &staleError{got: lr.Physics}
	}
	sc, err := sweep.ParseKey(lr.Key)
	if err != nil {
		return Record{}, fmt.Errorf("store: record %s: %w", lr.ID, err)
	}
	if id := sc.ID(); id != lr.ID {
		return Record{}, fmt.Errorf("store: record claims ID %s but its key hashes to %s", lr.ID, id)
	}
	m := make(sweep.Metrics, 0, len(lr.Metrics))
	for _, lm := range lr.Metrics {
		if lm.Name == "" {
			return Record{}, fmt.Errorf("store: record %s: unnamed metric", lr.ID)
		}
		bits, err := strconv.ParseUint(lm.Bits, 16, 64)
		if err != nil {
			return Record{}, fmt.Errorf("store: record %s metric %s: bad bits %q", lr.ID, lm.Name, lm.Bits)
		}
		m.Add(lm.Name, math.Float64frombits(bits))
	}
	return Record{ID: lr.ID, Scenario: sc, Metrics: m}, nil
}

// Get serves a scenario's stored metrics, or ok=false when this store
// (under this physics version) has never seen it. The returned metrics
// are shared with the index: treat them as read-only.
func (s *Store) Get(sc sweep.Scenario) (sweep.Metrics, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.index[sc.ID()]
	if !ok {
		return nil, false
	}
	return rec.Metrics, true
}

// Lookup serves a stored record by its config hash.
func (s *Store) Lookup(id string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.index[id]
	return rec, ok
}

// Put durably records one scenario result. Content addressing makes it
// idempotent: an ID already present (from this process, a previous
// one, or a concurrent writer recovered at Open) is a successful
// no-op, so the first write wins and the store never mutates a record.
func (s *Store) Put(sc sweep.Scenario, m sweep.Metrics) error {
	line, err := EncodeRecord(s.physics, sc, m)
	if err != nil {
		return err
	}
	rec := Record{ID: sc.ID(), Scenario: sc, Metrics: m}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// A forced shutdown can race a straggling write-through against
		// Close. Creating a fresh segment here would silently leave an
		// unsynced, unclosed file behind; failing loudly routes the
		// loss into the caller's durability-error path instead.
		return fmt.Errorf("store: put %s after close", rec.ID)
	}
	if _, dup := s.index[rec.ID]; dup {
		return nil
	}
	if s.active == nil {
		if err := s.createSegmentLocked(); err != nil {
			return err
		}
	}
	// One write syscall per record: O_APPEND guarantees the line lands
	// contiguously at the tail, so a torn write can only be a truncated
	// final line, which recovery skips. That guarantee requires never
	// appending directly after a failed write — the tail may hold a
	// partial, newline-less line that the next record would merge into,
	// corrupting BOTH on recovery. A leading newline terminates any
	// such garbage (recovery skips it as corrupt, or as a blank line)
	// so this record starts clean; it rides in the same single write.
	if s.torn {
		line = append([]byte{'\n'}, line...)
	}
	if _, err := s.active.Write(line); err != nil {
		// Unknown how many bytes landed: poison the tail.
		s.torn = true
		return fmt.Errorf("store: append %s: %w", rec.ID, err)
	}
	s.torn = false
	s.dirty = true
	s.index[rec.ID] = rec
	s.stats.Records = len(s.index)
	return nil
}

// createSegmentLocked opens this process's own append segment,
// numbered one past the highest existing segment. O_EXCL retries give
// concurrent openers distinct files.
func (s *Store) createSegmentLocked() error {
	segs, err := s.segments()
	if err != nil {
		return err
	}
	next := 1
	if len(segs) > 0 {
		last := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(segs[len(segs)-1]), "seg-"), ".jsonl")
		if n, err := strconv.Atoi(last); err == nil && n >= next {
			next = n + 1
		}
	}
	for try := 0; try < 1000; try, next = try+1, next+1 {
		path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", next))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			s.active = f
			s.stats.Segments++
			return nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return fmt.Errorf("store: create segment: %w", err)
		}
	}
	return fmt.Errorf("store: could not claim a fresh segment in %s", s.dir)
}

// Len reports how many live records the store holds.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats reports recovery and occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Physics reports the version this store was opened under.
func (s *Store) Physics() string { return s.physics }

// Dir reports the store's directory.
func (s *Store) Dir() string { return s.dir }

// Records lists the live records sorted by canonical key — a
// deterministic order for listings and serving.
func (s *Store) Records() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.index))
	for _, rec := range s.index {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Scenario.Key() < out[j].Scenario.Key()
	})
	return out
}

// Sync flushes the active segment to stable storage. It is free when
// the store is clean — nothing appended since the last successful
// Sync — so callers on a response path may invoke it unconditionally;
// and because a failed fsync leaves the store dirty, the next Sync
// retries instead of silently vouching for unflushed bytes.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil || !s.dirty {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	s.dirty = false
	return nil
}

// Close syncs and closes the active segment. Afterwards reads and
// Sync remain safe no-ops, but Put fails: a closed store accepts no
// new records (see Put).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.active == nil {
		return nil
	}
	f := s.active
	s.active = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

// Interface conformance: the store is the engine's persistent tier.
var _ sweep.Cache = (*Store)(nil)
