// Package store is the persistent, content-addressed campaign result
// store: every simulated scenario is recorded once, keyed by its
// config hash (sweep.Scenario.ID) plus the physics version of the
// simulator that produced it, in an append-only JSONL segment format.
//
// It is the durability layer that turns the in-process sweep engine
// into a resumable, servable system: cmd/sweep -store skips every
// already-simulated cell of a campaign grid, and cmd/sweepd serves one
// store to many concurrent HTTP clients.
//
// Design points:
//
//   - Content addressing. A record's identity is the scenario's config
//     hash; the physics version namespaces it. Writing the same
//     scenario twice is a no-op, so concurrent writers converge
//     instead of conflicting.
//   - Append-safe segments. Each record is one JSON line appended with
//     a single O_APPEND write, so a crash can only tear the final
//     line, never an earlier record.
//   - Corruption-tolerant recovery. Open scans every segment and
//     tolerates torn tails, garbage lines, duplicate records and
//     records whose key no longer hashes to their claimed ID; damage
//     is counted in Stats, never fatal, and never a panic. A duplicate
//     whose metric bits differ from the indexed record is a Conflict —
//     counted and reported separately, first record still wins.
//   - Indexed segments. Each sealed segment carries a checksummed
//     index sidecar (seg-N.idx, see sidecar.go) mapping record IDs to
//     byte offsets, so Open is O(segments) — records load lazily from
//     their offsets on first access — and a missing or damaged sidecar
//     degrades to a full replay of that one segment, never an error.
//   - Compaction. Compact (compact.go) merges every segment into one
//     deduplicated segment with a crash-safe publish protocol,
//     dropping stale-physics and corrupt lines.
//   - Version hygiene. Records from other physics versions are
//     retained on disk but never served, so bumping the version
//     invalidates every stale result at once without deleting data.
//     (Compact, an explicit admin operation, is the one exception: it
//     prunes foreign-physics records.)
package store

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cloversim/internal/sweep"
)

// segPattern matches segment files. Segments are scanned in numeric
// order on Open (seg-2 before seg-10, regardless of zero padding);
// each process appends to a fresh, exclusively created segment so two
// processes sharing a store directory never interleave writes within
// one file.
const segPattern = "seg-*.jsonl"

// maxLineBytes bounds one record line during recovery, so a corrupt
// segment full of unbroken garbage cannot balloon memory. Real records
// are a few hundred bytes.
const maxLineBytes = 1 << 20

// maxConflictIDs caps how many conflicting record IDs Stats retains
// for reporting; the count keeps incrementing past the cap.
const maxConflictIDs = 8

// Record is one stored campaign result: the scenario that produced it
// (rebuilt from its canonical key string) and its bit-exact metrics.
type Record struct {
	ID       string
	Scenario sweep.Scenario
	Metrics  sweep.Metrics
}

// Stats summarizes what Open found while recovering a store directory
// plus damage discovered later (a lazily loaded record that no longer
// decodes counts as corrupt at that point).
type Stats struct {
	Segments   int // segment files scanned
	Sidecars   int // segments recovered via a valid index sidecar (no replay)
	Records    int // live records indexed (current physics version)
	Stale      int // well-formed records under other physics versions
	Corrupt    int // undecodable or integrity-failed lines skipped
	Duplicates int // benign re-encounters of an already-indexed ID (same bits)
	Conflicts  int // re-encounters whose metric bits DIFFER from the indexed record

	// ConflictIDs names the first few conflicting record IDs (capped at
	// maxConflictIDs) so operators can find the offending lines; the
	// Conflicts count is not capped.
	ConflictIDs []string
}

func (s Stats) String() string {
	msg := fmt.Sprintf("%d records in %d segments (%d stale, %d corrupt, %d duplicate)",
		s.Records, s.Segments, s.Stale, s.Corrupt, s.Duplicates)
	if s.Conflicts > 0 {
		msg += fmt.Sprintf(", %d CONFLICTING duplicates %v", s.Conflicts, s.ConflictIDs)
	}
	return msg
}

// indexEntry is one indexed record. Entries recovered from a sidecar
// start unloaded — only the segment location and canonical hash are
// known — and materialize into rec on first access. Entries from a
// full replay or a Put are born loaded.
type indexEntry struct {
	seq    uint64 // monotone per-store-instance sequence (sync watermarks)
	hash   uint64 // canonical line hash (duplicate-vs-conflict detection)
	loaded bool
	rec    Record // valid when loaded

	// Lazy location, valid when !loaded:
	seg string // segment path
	off int64  // byte offset of the record's line
	n   int64  // line length in bytes, newline excluded
}

// Store is a disk-backed result store. It is safe for concurrent use;
// reads are served from an in-memory index populated at Open and kept
// in sync by Put. Records behind a sidecar-recovered segment load
// lazily on first access. Store implements sweep.Cache, so it plugs
// into the engine as the persistent tier directly.
type Store struct {
	dir     string
	physics string

	mu      sync.RWMutex
	index   map[string]*indexEntry // scenario ID -> entry (current physics only)
	active  *os.File               // lazily created on first Put
	closed  bool                   // Close was called; Put must not resurrect a segment
	dirty   bool                   // appended since the last successful fsync
	torn    bool                   // last append failed; tail may hold a partial line
	stats   Stats
	nextSeq uint64 // next sequence number to assign
	epoch   string // sync-watermark namespace; fresh per Open and per Compact

	// Active-segment bookkeeping for the seal-time sidecar.
	activePath    string
	activeOff     int64          // bytes appended so far
	activeEntries []sidecarEntry // one per record appended, in order
	activeIndexOK bool           // offsets trusted (no torn write since creation)
}

// Open recovers the store in dir for the given physics version,
// creating the directory if needed. Segments with a valid index
// sidecar recover in O(1) record work (records load lazily); the rest
// replay line by line, and their sidecars are regenerated best-effort.
// Damaged segments degrade to Stats counts; only unreadable
// directories and I/O errors fail.
func Open(dir, physics string) (*Store, error) {
	if physics == "" {
		return nil, fmt.Errorf("store: empty physics version")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, physics: physics, index: map[string]*indexEntry{}, epoch: newEpoch()}
	if err := s.recoverAllLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// newEpoch mints the store instance's sync-watermark namespace: sync
// sequence numbers are only comparable within one epoch, so every Open
// (and every Compact, which renumbers) gets a fresh one.
func newEpoch() string {
	var b [8]byte
	//lint:allow nondet epoch identity only: namespaces sync watermarks, never touches record content
	if _, err := rand.Read(b[:]); err != nil {
		//lint:allow nondet epoch-mint fallback when the system RNG fails; same identity-only role
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// recoverAllLocked (re)builds the in-memory index from the segment
// files. Callers hold the write lock or exclusive ownership (Open).
func (s *Store) recoverAllLocked() error {
	segs, err := s.segments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if s.recoverFromSidecar(seg) {
			s.stats.Sidecars++
			continue
		}
		if err := s.replaySegment(seg); err != nil {
			return err
		}
	}
	s.stats.Segments = len(segs)
	s.stats.Records = len(s.index)
	return nil
}

// segments lists the store's segment files in recovery order: numeric
// segment number ascending (seg-999999 before seg-1000000, which a
// lexical sort would invert past the zero-padding width), with
// non-numeric names — foreign files matching the glob — after all
// numeric ones, in lexical order among themselves.
func (s *Store) segments() ([]string, error) {
	segs, err := filepath.Glob(filepath.Join(s.dir, segPattern))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Slice(segs, func(i, j int) bool { return segLess(segs[i], segs[j]) })
	return segs, nil
}

// segLess orders segment paths in recovery order (see segments).
func segLess(a, b string) bool {
	na, oka := segNumber(a)
	nb, okb := segNumber(b)
	switch {
	case oka && okb && na != nb:
		return na < nb
	case oka != okb:
		return oka // numeric before non-numeric
	default:
		return a < b
	}
}

// segNumber parses a segment file's number. Zero padding is
// insignificant: seg-000007 and seg-7 are the same segment number.
func segNumber(path string) (int64, bool) {
	base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "seg-"), ".jsonl")
	if base == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(base, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// replaySegment indexes one segment line by line, first record per ID
// wins. Undecodable lines — torn tails, hand edits, bit rot — are
// counted and skipped. On success the segment's index sidecar is
// regenerated best-effort, so the next Open recovers it lazily.
func (s *Store) replaySegment(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var entries []sidecarEntry
	var off int64
	r := bufio.NewReaderSize(f, 64<<10)
	for {
		line, consumed, err := readLine(r)
		// A truncated overlong line consumed more bytes than it returned;
		// its sidecar entry would point at garbage, so only exact lines
		// (terminator aside) are indexable.
		exact := int64(len(line)) == consumed || int64(len(line)) == consumed-1
		if len(line) > 0 {
			switch rec, derr := DecodeRecord(line, s.physics); {
			case derr == nil:
				h := canonicalHash(s.physics, rec)
				if exact {
					entries = append(entries, sidecarEntry{physics: s.physics, id: rec.ID, off: off, n: int64(len(line)), hash: h})
				}
				s.admitLocked(rec, h)
			case isStale(derr):
				s.stats.Stale++
				// Index the foreign record in the sidecar too, so a later
				// Open under ITS physics version can still skip the replay.
				// A line that does not validate under its own claimed
				// version is left out (it would be corrupt there anyway).
				if got := stalePhysics(derr); exact && got != "" {
					if frec, ferr := DecodeRecord(line, got); ferr == nil {
						entries = append(entries, sidecarEntry{physics: got, id: frec.ID, off: off, n: int64(len(line)), hash: canonicalHash(got, frec)})
					}
				}
			default:
				s.stats.Corrupt++
			}
		}
		off += consumed
		if err == io.EOF {
			// Best-effort regeneration: a read-only directory or a full
			// disk must not fail recovery — the sidecar is an
			// optimization, the segment stays the source of truth.
			writeSidecar(path, off, entries) //nolint:errcheck // best-effort regeneration; the segment stays the source of truth
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", path, err)
		}
	}
}

// recoverFromSidecar indexes one segment from its sidecar without
// reading any record bytes. It reports false — caller replays — when
// the sidecar is missing, fails its checksum, or describes a different
// segment size than the file on disk (the segment grew or was
// truncated after the sidecar was written).
func (s *Store) recoverFromSidecar(path string) bool {
	entries, ok := readSidecar(path)
	if !ok {
		return false
	}
	for _, e := range entries {
		if e.physics != s.physics {
			s.stats.Stale++
			continue
		}
		if _, dup := s.index[e.id]; dup {
			s.noteDuplicateLocked(e.id, e.hash)
			continue
		}
		s.nextSeq++
		s.index[e.id] = &indexEntry{
			seq: s.nextSeq, hash: e.hash,
			seg: path, off: e.off, n: e.n,
		}
	}
	return true
}

// admitLocked indexes one decoded live record, first-wins.
func (s *Store) admitLocked(rec Record, hash uint64) {
	if _, dup := s.index[rec.ID]; dup {
		s.noteDuplicateLocked(rec.ID, hash)
		return
	}
	s.nextSeq++
	s.index[rec.ID] = &indexEntry{seq: s.nextSeq, hash: hash, loaded: true, rec: rec}
}

// noteDuplicateLocked classifies a re-encountered ID: identical
// canonical bytes are a benign duplicate (concurrent writers
// converging); different bytes mean two simulations of one scenario
// disagreed — a conflict that dedup must not launder silently. Either
// way the first indexed record wins, deterministically.
func (s *Store) noteDuplicateLocked(id string, hash uint64) {
	if e := s.index[id]; e.hash == hash {
		s.stats.Duplicates++
		return
	}
	s.stats.Conflicts++
	if len(s.stats.ConflictIDs) < maxConflictIDs {
		s.stats.ConflictIDs = append(s.stats.ConflictIDs, id)
	}
}

// canonicalHash fingerprints a record's canonical encoded line, so
// equality of hashes means equality of scenario and exact metric bits
// regardless of cosmetic differences in the on-disk JSON.
func canonicalHash(physics string, rec Record) uint64 {
	line, err := EncodeRecord(physics, rec.Scenario, rec.Metrics)
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(bytes.TrimSuffix(line, []byte("\n")))
	return h.Sum64()
}

// readLine reads one newline-terminated line, returning it without the
// terminator plus the total bytes consumed (terminator included).
// Memory is bounded: a line longer than maxLineBytes has its tail
// consumed but discarded, and the truncated prefix is returned (it
// fails decoding and counts as corrupt, rather than ballooning
// recovery memory or aborting it). io.EOF accompanies the final,
// unterminated line.
func readLine(r *bufio.Reader) ([]byte, int64, error) {
	var line []byte
	var consumed int64
	for {
		frag, err := r.ReadSlice('\n')
		consumed += int64(len(frag))
		if len(line) < maxLineBytes {
			line = append(line, frag...)
			if len(line) > maxLineBytes {
				line = line[:maxLineBytes]
			}
		}
		switch err {
		case nil:
			if n := len(line); n > 0 && line[n-1] == '\n' {
				line = line[:n-1]
			}
			return line, consumed, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return line, consumed, err
		}
	}
}

// isStale reports whether a decode error means "fine record, other
// physics version" rather than corruption.
func isStale(err error) bool { _, ok := err.(*staleError); return ok }

// stalePhysics extracts the physics version a stale decode error names.
func stalePhysics(err error) string {
	if se, ok := err.(*staleError); ok {
		return se.got
	}
	return ""
}

type staleError struct{ got string }

func (e *staleError) Error() string { return "store: record from physics version " + e.got }

// lineRecord is the JSONL wire form of one record. The scenario rides
// as its canonical key string (sweep.ParseKey rebuilds it; the ID must
// re-derive from it, which is the per-record integrity check). Metric
// values ride as hex-encoded IEEE-754 bits so a round trip through the
// store is bit-exact; the decimal form is informational for humans and
// grep.
type lineRecord struct {
	ID      string       `json:"id"`
	Physics string       `json:"phys"`
	Key     string       `json:"key"`
	Metrics []lineMetric `json:"metrics"`
}

type lineMetric struct {
	Name  string  `json:"name"`
	Bits  string  `json:"bits"`
	Value float64 `json:"value,omitempty"`
}

// EncodeRecord renders one record as a JSONL line (newline included).
func EncodeRecord(physics string, sc sweep.Scenario, m sweep.Metrics) ([]byte, error) {
	lr := lineRecord{
		ID:      sc.ID(),
		Physics: physics,
		Key:     sc.Key(),
		Metrics: make([]lineMetric, 0, len(m)),
	}
	for _, mt := range m {
		lm := lineMetric{Name: mt.Name, Bits: strconv.FormatUint(math.Float64bits(mt.Value), 16)}
		// The decimal mirror is best-effort: JSON cannot carry NaN/Inf,
		// and omitempty drops zeros — the bits field alone is
		// authoritative.
		if !math.IsNaN(mt.Value) && !math.IsInf(mt.Value, 0) {
			lm.Value = mt.Value
		}
		lr.Metrics = append(lr.Metrics, lm)
	}
	buf, err := json.Marshal(lr)
	if err != nil {
		return nil, fmt.Errorf("store: encode %s: %w", lr.ID, err)
	}
	return append(buf, '\n'), nil
}

// DecodeRecord parses and verifies one JSONL line. It never panics on
// arbitrary input. Beyond JSON well-formedness it enforces the store's
// integrity invariants: the physics version must match (a mismatch is
// the distinguished stale error), the key must parse as a canonical
// scenario key, the scenario must hash back to the claimed ID, and
// every metric must carry decodable bits under a non-empty name.
func DecodeRecord(line []byte, physics string) (Record, error) {
	var lr lineRecord
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&lr); err != nil {
		return Record{}, fmt.Errorf("store: bad record line: %w", err)
	}
	if dec.More() {
		return Record{}, fmt.Errorf("store: trailing data after record")
	}
	if lr.Physics != physics {
		return Record{}, &staleError{got: lr.Physics}
	}
	sc, err := sweep.ParseKey(lr.Key)
	if err != nil {
		return Record{}, fmt.Errorf("store: record %s: %w", lr.ID, err)
	}
	if id := sc.ID(); id != lr.ID {
		return Record{}, fmt.Errorf("store: record claims ID %s but its key hashes to %s", lr.ID, id)
	}
	m := make(sweep.Metrics, 0, len(lr.Metrics))
	for _, lm := range lr.Metrics {
		if lm.Name == "" {
			return Record{}, fmt.Errorf("store: record %s: unnamed metric", lr.ID)
		}
		bits, err := strconv.ParseUint(lm.Bits, 16, 64)
		if err != nil {
			return Record{}, fmt.Errorf("store: record %s metric %s: bad bits %q", lr.ID, lm.Name, lm.Bits)
		}
		m.Add(lm.Name, math.Float64frombits(bits))
	}
	return Record{ID: lr.ID, Scenario: sc, Metrics: m}, nil
}

// Get serves a scenario's stored metrics, or ok=false when this store
// (under this physics version) has never seen it. The returned metrics
// are shared with the index: treat them as read-only.
func (s *Store) Get(sc sweep.Scenario) (sweep.Metrics, bool) {
	rec, ok := s.Lookup(sc.ID())
	if !ok {
		return nil, false
	}
	return rec.Metrics, true
}

// Lookup serves a stored record by its config hash, reading it from
// its segment offset on first access when the segment was recovered
// via sidecar. A record whose bytes no longer decode — the sidecar
// outlived the data — is dropped from the index and counted corrupt,
// so the caller (and the engine above it) treats the scenario as never
// simulated and a fresh Put can heal the store.
func (s *Store) Lookup(id string) (Record, bool) {
	s.mu.RLock()
	e, ok := s.index[id]
	if !ok {
		s.mu.RUnlock()
		return Record{}, false
	}
	if e.loaded {
		rec := e.rec
		s.mu.RUnlock()
		return rec, true
	}
	seg, off, n := e.seg, e.off, e.n
	s.mu.RUnlock()

	rec, err := s.loadAt(seg, off, n, id)

	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok = s.index[id]
	if !ok {
		// Compact or a concurrent failed load rebuilt the index under us.
		return Record{}, false
	}
	if e.loaded {
		return e.rec, true
	}
	if err != nil {
		delete(s.index, id)
		s.stats.Corrupt++
		s.stats.Records = len(s.index)
		return Record{}, false
	}
	e.rec = rec
	e.loaded = true
	return rec, true
}

// loadAt reads and verifies one record line at a sidecar-indexed
// offset. The decode enforces the full integrity contract, and the ID
// must be the one the index sent us here for.
func (s *Store) loadAt(seg string, off, n int64, id string) (Record, error) {
	if n <= 0 || n > maxLineBytes {
		return Record{}, fmt.Errorf("store: implausible record length %d", n)
	}
	f, err := os.Open(seg)
	if err != nil {
		return Record{}, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, n), buf); err != nil {
		return Record{}, fmt.Errorf("store: reading %s@%d: %w", seg, off, err)
	}
	rec, err := DecodeRecord(buf, s.physics)
	if err != nil {
		return Record{}, err
	}
	if rec.ID != id {
		return Record{}, fmt.Errorf("store: offset %s@%d holds record %s, index expected %s", seg, off, rec.ID, id)
	}
	return rec, nil
}

// loadAllLocked materializes every lazy entry in deterministic
// (segment, offset) order — sequential within each segment, and the
// same read schedule on every run, so two stores recovering the same
// segments issue identical I/O. Entries that fail to load are dropped
// and counted corrupt, mirroring Lookup.
func (s *Store) loadAllLocked() {
	var pending []*indexEntry
	ids := map[*indexEntry]string{}
	for id, e := range s.index {
		if !e.loaded {
			pending = append(pending, e)
			ids[e] = id
		}
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].seg != pending[j].seg {
			return segLess(pending[i].seg, pending[j].seg)
		}
		return pending[i].off < pending[j].off
	})
	for _, e := range pending {
		rec, err := s.loadAt(e.seg, e.off, e.n, ids[e])
		if err != nil {
			delete(s.index, ids[e])
			s.stats.Corrupt++
			continue
		}
		e.rec = rec
		e.loaded = true
	}
	s.stats.Records = len(s.index)
}

// Put durably records one scenario result. Content addressing makes it
// idempotent: an ID already present (from this process, a previous
// one, or a concurrent writer recovered at Open) is a successful
// no-op, so the first write wins and the store never mutates a record.
func (s *Store) Put(sc sweep.Scenario, m sweep.Metrics) error {
	line, err := EncodeRecord(s.physics, sc, m)
	if err != nil {
		return err
	}
	rec := Record{ID: sc.ID(), Scenario: sc, Metrics: m}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// A forced shutdown can race a straggling write-through against
		// Close. Creating a fresh segment here would silently leave an
		// unsynced, unclosed file behind; failing loudly routes the
		// loss into the caller's durability-error path instead.
		return fmt.Errorf("store: put %s after close", rec.ID)
	}
	if _, dup := s.index[rec.ID]; dup {
		return nil
	}
	if s.active == nil {
		if err := s.createSegmentLocked(); err != nil {
			return err
		}
	}
	// One write syscall per record: O_APPEND guarantees the line lands
	// contiguously at the tail, so a torn write can only be a truncated
	// final line, which recovery skips. That guarantee requires never
	// appending directly after a failed write — the tail may hold a
	// partial, newline-less line that the next record would merge into,
	// corrupting BOTH on recovery. A leading newline terminates any
	// such garbage (recovery skips it as corrupt, or as a blank line)
	// so this record starts clean; it rides in the same single write.
	payload := line
	if s.torn {
		payload = append([]byte{'\n'}, line...)
	}
	if _, err := s.active.Write(payload); err != nil {
		// Unknown how many bytes landed: poison the tail, and give up on
		// the seal-time sidecar for this segment — its offsets can no
		// longer be trusted (the next Open replays and regenerates it).
		s.torn = true
		s.activeIndexOK = false
		return fmt.Errorf("store: append %s: %w", rec.ID, err)
	}
	recOff := s.activeOff + int64(len(payload)-len(line))
	s.activeOff += int64(len(payload))
	s.torn = false
	s.dirty = true
	hash := lineHash(line)
	if s.activeIndexOK {
		s.activeEntries = append(s.activeEntries, sidecarEntry{
			physics: s.physics, id: rec.ID, off: recOff, n: int64(len(line)) - 1, hash: hash,
		})
	}
	s.nextSeq++
	s.index[rec.ID] = &indexEntry{seq: s.nextSeq, hash: hash, loaded: true, rec: rec}
	s.stats.Records = len(s.index)
	return nil
}

// lineHash is canonicalHash for a line that is already the canonical
// encoding (fresh from EncodeRecord, trailing newline included).
func lineHash(line []byte) uint64 {
	h := fnv.New64a()
	h.Write(bytes.TrimSuffix(line, []byte("\n")))
	return h.Sum64()
}

// createSegmentLocked opens this process's own append segment,
// numbered one past the highest existing segment number. O_EXCL
// retries give concurrent openers distinct files.
func (s *Store) createSegmentLocked() error {
	segs, err := s.segments()
	if err != nil {
		return err
	}
	next := int64(1)
	for _, seg := range segs {
		if n, ok := segNumber(seg); ok && n >= next {
			next = n + 1
		}
	}
	for try := 0; try < 1000; try, next = try+1, next+1 {
		path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", next))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			s.active = f
			s.activePath = path
			s.activeOff = 0
			s.activeEntries = nil
			s.activeIndexOK = true
			s.stats.Segments++
			return nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return fmt.Errorf("store: create segment: %w", err)
		}
	}
	return fmt.Errorf("store: could not claim a fresh segment in %s", s.dir)
}

// Len reports how many live records the store holds.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats reports recovery and occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.ConflictIDs = append([]string(nil), s.stats.ConflictIDs...)
	return st
}

// Physics reports the version this store was opened under.
func (s *Store) Physics() string { return s.physics }

// Dir reports the store's directory.
func (s *Store) Dir() string { return s.dir }

// Epoch identifies this store instance for sync watermarks: sequence
// numbers from IDsSince are only comparable while the epoch is
// unchanged. Open and Compact both mint a fresh epoch (recovery order
// — and with it every record's sequence number — may differ).
func (s *Store) Epoch() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// IDsSince lists the IDs of records admitted after the given sequence
// watermark, in admission order, plus the current watermark (the
// highest sequence assigned). A client that stores the returned
// watermark and calls back with it sees exactly the records admitted
// in between — within one Epoch.
func (s *Store) IDsSince(since uint64) (ids []string, watermark uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type seqID struct {
		seq uint64
		id  string
	}
	var picked []seqID
	for id, e := range s.index {
		if e.seq > since {
			picked = append(picked, seqID{e.seq, id})
		}
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i].seq < picked[j].seq })
	ids = make([]string, len(picked))
	for i, p := range picked {
		ids[i] = p.id
	}
	return ids, s.nextSeq
}

// Records lists the live records sorted by canonical key — a
// deterministic order for listings and serving. It materializes every
// lazily indexed record.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loadAllLocked()
	out := make([]Record, 0, len(s.index))
	for _, e := range s.index {
		out = append(out, e.rec)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Scenario.Key() < out[j].Scenario.Key()
	})
	return out
}

// Sync flushes the active segment to stable storage. It is free when
// the store is clean — nothing appended since the last successful
// Sync — so callers on a response path may invoke it unconditionally;
// and because a failed fsync leaves the store dirty, the next Sync
// retries instead of silently vouching for unflushed bytes.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil || !s.dirty {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	s.dirty = false
	return nil
}

// Close syncs and closes the active segment, sealing it with an index
// sidecar so the next Open skips its replay. Afterwards reads and
// Sync remain safe no-ops, but Put fails: a closed store accepts no
// new records (see Put).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return s.sealActiveLocked()
}

// sealActiveLocked syncs, sidecars and closes the active segment (if
// any). A failed sidecar write is not an error — the segment is the
// source of truth and the next Open regenerates the sidecar — but a
// failed sync or close is: those bytes may not be durable.
func (s *Store) sealActiveLocked() error {
	if s.active == nil {
		return nil
	}
	f := s.active
	s.active = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	s.dirty = false
	if s.activeIndexOK {
		writeSidecar(s.activePath, s.activeOff, s.activeEntries) //nolint:errcheck // best-effort; recovery rebuilds a missing or stale sidecar
	}
	s.activeEntries = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

// Interface conformance: the store is the engine's persistent tier.
var _ sweep.Cache = (*Store)(nil)
