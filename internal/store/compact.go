package store

// Segment compaction: Compact merges every segment — the active one is
// sealed first — into one deduplicated segment holding exactly the
// store's live records, dropping stale-physics records, corrupt lines,
// and duplicate re-encounters (conflicting duplicates are counted and
// reported, first record still wins, exactly as in recovery).
//
// The publish protocol is crash-safe; a crash at ANY point recovers to
// a correct index because the new segment is only ever visible as a
// superset-consistent replacement:
//
//  1. Write every surviving line to compact.tmp (invisible to the
//     segment glob) and fsync it.
//  2. Remove the lowest segment's sidecar — its stamped size could
//     coincidentally match the new content, and a stale sidecar must
//     never describe fresh bytes.
//  3. Atomically rename compact.tmp over the lowest segment and fsync
//     the directory. From this instant the lowest segment holds every
//     live record; the higher segments now contain only duplicates of
//     it (or droppable lines), so recovery is correct whether or not
//     they still exist.
//  4. Remove the higher segments and their sidecars.
//  5. Write the new segment's sidecar and fsync the directory.
//
// Compaction requires exclusive ownership of the store directory: a
// concurrent writer process appending its own segment would have that
// segment merged-and-removed mid-write. The embedding daemon (sweepd)
// owns its store, so its admin endpoint is safe; for offline stores
// use cmd/sweep -store-compact while nothing else runs.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// CompactStats reports what one Compact did.
type CompactStats struct {
	SegmentsBefore    int   `json:"segments_before"`
	SegmentsAfter     int   `json:"segments_after"`
	Records           int   `json:"records"`            // live records kept
	DroppedStale      int   `json:"dropped_stale"`      // foreign-physics records pruned
	DroppedCorrupt    int   `json:"dropped_corrupt"`    // undecodable lines pruned
	DroppedDuplicates int   `json:"dropped_duplicates"` // benign duplicate lines pruned
	Conflicts         int   `json:"conflicts"`          // duplicates with differing bits (first wins)
	BytesBefore       int64 `json:"bytes_before"`
	BytesAfter        int64 `json:"bytes_after"`
}

func (cs CompactStats) String() string {
	return fmt.Sprintf("compacted %d segments (%d bytes) into %d (%d bytes): %d records kept, dropped %d stale + %d corrupt + %d duplicate, %d conflicts",
		cs.SegmentsBefore, cs.BytesBefore, cs.SegmentsAfter, cs.BytesAfter,
		cs.Records, cs.DroppedStale, cs.DroppedCorrupt, cs.DroppedDuplicates, cs.Conflicts)
}

// Compact merges all segments into one deduplicated, sidecar-indexed
// segment and rebuilds the in-memory index from the result. It blocks
// reads and writes for the duration. The store's sync Epoch changes:
// record sequence numbers are renumbered, so replication watermarks
// held by peers become foreign and those peers transparently restart
// from zero (content addressing makes the re-pull converge).
func (s *Store) Compact() (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CompactStats{}, errors.New("store: compact after close")
	}
	if err := s.sealActiveLocked(); err != nil {
		return CompactStats{}, err
	}
	segs, err := s.segments()
	if err != nil {
		return CompactStats{}, err
	}
	if len(segs) == 0 {
		return CompactStats{}, nil
	}

	cs := CompactStats{SegmentsBefore: len(segs), SegmentsAfter: 1}
	for _, seg := range segs {
		if fi, err := os.Stat(seg); err == nil {
			cs.BytesBefore += fi.Size()
		}
	}

	tmpPath := filepath.Join(s.dir, "compact.tmp")
	entries, err := s.mergeSegments(tmpPath, segs, &cs)
	if err != nil {
		os.Remove(tmpPath)
		return CompactStats{}, err
	}

	// Publish (steps 2-5 of the protocol above).
	target := segs[0]
	if err := os.Remove(sidecarPath(target)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		os.Remove(tmpPath)
		return CompactStats{}, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, target); err != nil {
		os.Remove(tmpPath)
		return CompactStats{}, fmt.Errorf("store: compact: %w", err)
	}
	syncDir(s.dir)
	for _, seg := range segs[1:] {
		if err := os.Remove(sidecarPath(seg)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return CompactStats{}, fmt.Errorf("store: compact: %w", err)
		}
		if err := os.Remove(seg); err != nil {
			return CompactStats{}, fmt.Errorf("store: compact: %w", err)
		}
	}
	writeSidecar(target, cs.BytesAfter, entries) //nolint:errcheck // segment is the source of truth; next Open regenerates
	syncDir(s.dir)

	// Rebuild the in-memory view from the published state. Sequence
	// numbers are reassigned, so the epoch must change with them.
	s.index = map[string]*indexEntry{}
	s.stats = Stats{}
	s.nextSeq = 0
	s.epoch = newEpoch()
	if err := s.recoverAllLocked(); err != nil {
		return cs, err
	}
	return cs, nil
}

// mergeSegments streams every segment in recovery order into one new
// file at tmpPath, keeping the first occurrence of each live record
// verbatim (bytes preserved exactly — the exact-IEEE-754-bits contract
// carries through compaction trivially) and dropping everything else.
// It returns the sidecar entries of the merged segment and fills in
// the drop counters and BytesAfter.
func (s *Store) mergeSegments(tmpPath string, segs []string, cs *CompactStats) ([]sidecarEntry, error) {
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: compact: %w", err)
	}
	defer tmp.Close()
	out := bufio.NewWriterSize(tmp, 256<<10)

	seen := map[string]uint64{} // id -> canonical hash of the kept record
	var entries []sidecarEntry
	var outOff int64
	for _, seg := range segs {
		if err := s.mergeOneSegment(seg, out, &outOff, seen, &entries, cs); err != nil {
			return nil, err
		}
	}
	if err := out.Flush(); err != nil {
		return nil, fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return nil, fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("store: compact: %w", err)
	}
	cs.Records = len(entries)
	cs.BytesAfter = outOff
	return entries, nil
}

func (s *Store) mergeOneSegment(seg string, out *bufio.Writer, outOff *int64, seen map[string]uint64, entries *[]sidecarEntry, cs *CompactStats) error {
	f, err := os.Open(seg)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	for {
		// A line truncated by the maxLineBytes bound never decodes, so
		// the exactness check recovery needs is implied here.
		line, _, err := readLine(r)
		if len(line) > 0 {
			switch rec, derr := DecodeRecord(line, s.physics); {
			case derr == nil:
				h := canonicalHash(s.physics, rec)
				if prev, dup := seen[rec.ID]; dup {
					if prev == h {
						cs.DroppedDuplicates++
					} else {
						cs.Conflicts++
					}
					break
				}
				if _, werr := out.Write(line); werr != nil {
					return fmt.Errorf("store: compact: %w", werr)
				}
				if werr := out.WriteByte('\n'); werr != nil {
					return fmt.Errorf("store: compact: %w", werr)
				}
				seen[rec.ID] = h
				*entries = append(*entries, sidecarEntry{
					physics: s.physics, id: rec.ID, off: *outOff, n: int64(len(line)), hash: h,
				})
				*outOff += int64(len(line)) + 1
			case isStale(derr):
				cs.DroppedStale++
			default:
				cs.DroppedCorrupt++
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: compact: reading %s: %w", seg, err)
		}
	}
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable. Best-effort: not every filesystem supports it, and the
// protocol stays correct without it — only the crash window widens.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // best-effort durability; unsupported on some filesystems (see func comment)
		d.Close()
	}
}
