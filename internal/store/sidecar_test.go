package store

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sealStore writes n records and closes the store so its segment gets
// a sidecar, returning the scenarios written.
func sealStore(t *testing.T, dir, physics string, n int) []Record {
	t.Helper()
	s, err := Open(dir, physics)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < n; i++ {
		sc := scenario("icx", "jacobi", uint64(i+1))
		m := metrics(float64(i), math.NaN(), 0.1+float64(i))
		if err := s.Put(sc, m); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, Record{ID: sc.ID(), Scenario: sc, Metrics: m})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// onlySidecar returns the single .idx path in dir.
func onlySidecar(t *testing.T, dir string) string {
	t.Helper()
	idx, err := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	if err != nil || len(idx) != 1 {
		t.Fatalf("want exactly one sidecar, got %v (%v)", idx, err)
	}
	return idx[0]
}

func TestSidecarRecoveryBitExact(t *testing.T) {
	dir := t.TempDir()
	recs := sealStore(t, dir, "p1", 10)
	onlySidecar(t, dir) // Close must have sealed the segment with one

	s := mustOpen(t, dir, "p1")
	st := s.Stats()
	if st.Sidecars != 1 || st.Segments != 1 || st.Records != len(recs) {
		t.Fatalf("stats = %s (sidecars=%d), want sidecar recovery of %d records", st, st.Sidecars, len(recs))
	}
	for _, want := range recs {
		got, ok := s.Lookup(want.ID)
		if !ok {
			t.Fatalf("record %s lost behind sidecar", want.ID)
		}
		if got.Scenario != want.Scenario {
			t.Fatalf("scenario changed through sidecar recovery: %+v vs %+v", got.Scenario, want.Scenario)
		}
		equalBits(t, got.Metrics, want.Metrics)
	}
}

// TestSidecarOpenReadsNoRecordBytes proves the O(segments) claim: after
// sealing, the segment's record bytes are overwritten with same-size
// garbage; Open still recovers via the (still size-valid) sidecar, so
// it cannot have replayed a single line.
func TestSidecarOpenReadsNoRecordBytes(t *testing.T) {
	dir := t.TempDir()
	recs := sealStore(t, dir, "p1", 3)
	seg := filepath.Join(strings.TrimSuffix(onlySidecar(t, dir), ".idx") + ".jsonl")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	garbage := bytes.Repeat([]byte("x"), int(info.Size()))
	if err := os.WriteFile(seg, garbage, 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir, "p1")
	if st := s.Stats(); st.Sidecars != 1 || st.Records != len(recs) {
		t.Fatalf("stats = %s, want untouched sidecar recovery", st)
	}
	// First access discovers the rot, drops the entry, and the store
	// self-heals: the scenario reads as never-simulated and a fresh Put
	// rewrites it.
	sc := recs[0].Scenario
	if _, ok := s.Get(sc); ok {
		t.Fatal("Get served a record whose bytes were destroyed")
	}
	if st := s.Stats(); st.Corrupt == 0 || st.Records != len(recs)-1 {
		t.Fatalf("stats = %s, want the rotted record dropped and counted", st)
	}
	if err := s.Put(sc, recs[0].Metrics); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(sc)
	if !ok {
		t.Fatal("re-Put after self-heal did not serve")
	}
	equalBits(t, got, recs[0].Metrics)
}

func TestSidecarCorruptionFallsBackToReplay(t *testing.T) {
	dir := t.TempDir()
	recs := sealStore(t, dir, "p1", 5)
	idx := onlySidecar(t, dir)
	orig, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"bitflip":     append(append([]byte{}, orig[:len(orig)/2]...), append([]byte{orig[len(orig)/2] ^ 0x40}, orig[len(orig)/2+1:]...)...),
		"torn":        orig[:len(orig)-7],
		"empty":       {},
		"garbage":     []byte("not a sidecar at all\n"),
		"bad-magic":   bytes.Replace(orig, []byte("v1"), []byte("v9"), 1),
		"no-trailer":  orig[:bytes.LastIndex(orig[:len(orig)-1], []byte("\n"))+1],
		"wrong-size":  bytes.Replace(orig, []byte("size="), []byte("size=9"), 1),
		"neg-offsets": bytes.Replace(orig, []byte(" 0 "), []byte(" -1 "), 1),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(idx, data, 0o644); err != nil {
				t.Fatal(err)
			}
			s := mustOpen(t, dir, "p1")
			st := s.Stats()
			if st.Sidecars != 0 {
				t.Fatalf("damaged sidecar (%s) was accepted: %s", name, st)
			}
			if st.Records != len(recs) {
				t.Fatalf("replay fallback lost records: %s, want %d", st, len(recs))
			}
			for _, want := range recs {
				got, ok := s.Lookup(want.ID)
				if !ok {
					t.Fatalf("record %s lost", want.ID)
				}
				equalBits(t, got.Metrics, want.Metrics)
			}
			s.Close()
			// The replay must have regenerated a valid sidecar: the next
			// open goes back to the fast path.
			s2 := mustOpen(t, dir, "p1")
			if st := s2.Stats(); st.Sidecars != 1 {
				t.Fatalf("replay did not regenerate the sidecar: %s", st)
			}
		})
	}
}

// TestSidecarSizeGuard: bytes appended to a sealed segment (another
// writer, a partial copy) invalidate its sidecar via the stamped-size
// check, so the new record is not invisible.
func TestSidecarSizeGuard(t *testing.T) {
	dir := t.TempDir()
	recs := sealStore(t, dir, "p1", 2)
	seg := strings.TrimSuffix(onlySidecar(t, dir), ".idx") + ".jsonl"

	extra := scenario("spr", "stream", 99)
	line, err := EncodeRecord("p1", extra, metrics(42))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(line); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := mustOpen(t, dir, "p1")
	st := s.Stats()
	if st.Sidecars != 0 {
		t.Fatalf("stale sidecar accepted for a grown segment: %s", st)
	}
	if st.Records != len(recs)+1 {
		t.Fatalf("stats = %s, want %d records", st, len(recs)+1)
	}
	if _, ok := s.Get(extra); !ok {
		t.Fatal("appended record invisible behind stale sidecar")
	}
}

// TestSidecarServesForeignPhysics: one sidecar carries entries for every
// physics version present in the segment, so an Open under the OTHER
// version also skips the replay.
func TestSidecarServesForeignPhysics(t *testing.T) {
	dir := t.TempDir()
	seg := filepath.Join(dir, "seg-000001.jsonl")
	scA, scB := scenario("icx", "jacobi", 1), scenario("icx", "stream", 2)
	lineA, err := EncodeRecord("p1", scA, metrics(1))
	if err != nil {
		t.Fatal(err)
	}
	lineB, err := EncodeRecord("p2", scB, metrics(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, append(lineA, lineB...), 0o644); err != nil {
		t.Fatal(err)
	}

	// First open (p1) replays the mixed segment and regenerates the
	// sidecar, which must describe the p2 line too.
	s1 := mustOpen(t, dir, "p1")
	if st := s1.Stats(); st.Sidecars != 0 || st.Records != 1 || st.Stale != 1 {
		t.Fatalf("p1 stats = %s, want 1 record 1 stale via replay", st)
	}
	s1.Close()

	s2 := mustOpen(t, dir, "p2")
	if st := s2.Stats(); st.Sidecars != 1 || st.Records != 1 || st.Stale != 1 {
		t.Fatalf("p2 stats = %s, want sidecar recovery of the p2 record", st)
	}
	got, ok := s2.Get(scB)
	if !ok {
		t.Fatal("p2 record invisible through the sidecar")
	}
	equalBits(t, got, metrics(2))
}

// TestSidecarDuplicateClassification: duplicate IDs across a
// sidecar-recovered segment and a replayed one classify as duplicate or
// conflict from hashes alone, without loading the sealed record.
func TestSidecarDuplicateClassification(t *testing.T) {
	dir := t.TempDir()
	recs := sealStore(t, dir, "p1", 1)
	sc := recs[0].Scenario

	// A second segment re-records the same scenario twice: once with
	// identical bits (benign) and once with different bits (conflict).
	same, err := EncodeRecord("p1", sc, recs[0].Metrics)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := EncodeRecord("p1", sc, metrics(777))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-000002.jsonl"), append(same, diff...), 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir, "p1")
	st := s.Stats()
	if st.Sidecars != 1 || st.Duplicates != 1 || st.Conflicts != 1 || st.Records != 1 {
		t.Fatalf("stats = %s (sidecars=%d), want 1 dup + 1 conflict against the sidecar entry", st, st.Sidecars)
	}
	got, _ := s.Get(sc)
	equalBits(t, got, recs[0].Metrics) // sealed (first) record still wins
}

// FuzzSidecarRecovery throws arbitrary sidecar bytes at Open over a
// real, valid segment: recovery must never panic, never error, and
// every record it serves must be genuine (bit-exact against what the
// segment holds) no matter what the sidecar claims.
func FuzzSidecarRecovery(f *testing.F) {
	// Build one real segment + sidecar to harvest seeds from.
	seedDir := f.TempDir()
	s, err := Open(seedDir, "p1")
	if err != nil {
		f.Fatal(err)
	}
	sc := scenario("icx", "jacobi", 1)
	wantMetrics := metrics(1.5, math.Inf(-1))
	if err := s.Put(sc, wantMetrics); err != nil {
		f.Fatal(err)
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	segBytes, err := os.ReadFile(filepath.Join(seedDir, "seg-000001.jsonl"))
	if err != nil {
		f.Fatal(err)
	}
	realIdx, err := os.ReadFile(filepath.Join(seedDir, "seg-000001.idx"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(realIdx)
	f.Add([]byte{})
	f.Add([]byte(sidecarMagic + " size=0 entries=0\ncrc32 00000000\n"))
	f.Add(bytes.Repeat([]byte("A"), 512))
	f.Add([]byte(fmt.Sprintf("%s size=%d entries=1\n%s 0 10 0000000000000000 p1\ncrc32 deadbeef\n", sidecarMagic, len(segBytes), sc.ID())))

	f.Fuzz(func(t *testing.T, idx []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-000001.jsonl"), segBytes, 0o644); err != nil {
			t.Skip()
		}
		if err := os.WriteFile(filepath.Join(dir, "seg-000001.idx"), idx, 0o644); err != nil {
			t.Skip()
		}
		st, err := Open(dir, "p1")
		if err != nil {
			t.Fatalf("Open errored on fuzzed sidecar: %v", err)
		}
		defer st.Close()
		// Whatever path recovery took, served records must be genuine.
		for _, rec := range st.Records() {
			if rec.ID != sc.ID() {
				t.Fatalf("sidecar conjured record %s not present in segment", rec.ID)
			}
			equalBits(t, rec.Metrics, wantMetrics)
		}
		if st.Len() != st.Stats().Records {
			t.Fatalf("Len %d disagrees with Stats.Records %d", st.Len(), st.Stats().Records)
		}
	})
}
