package store

// The index sidecar: each sealed segment seg-N.jsonl may carry a
// seg-N.idx file mapping record IDs to byte offsets, so Open can index
// the segment without replaying a single record line. The sidecar is a
// pure optimization — the segment stays the source of truth:
//
//   - It is checksummed (CRC32 trailer over the whole body) and stamps
//     the segment's byte size. A torn, hand-edited or bit-rotted
//     sidecar, or one whose segment grew or shrank after it was
//     written, fails validation and that one segment degrades to a
//     full replay; recovery regenerates the sidecar afterwards.
//   - It is written on seal (Store.Close), after compaction, and
//     best-effort after every replay, always via write-to-temp +
//     fsync + atomic rename, so a crash mid-write can never publish a
//     half sidecar.
//   - Entries carry the record's physics version, so one sidecar
//     serves Opens under any version (foreign entries count as stale
//     without being read), and a canonical content hash, so duplicate
//     IDs across segments can be classified as benign duplicates or
//     conflicts without loading either record.
//
// Format (plain text, one record per line):
//
//	cloversim-store-idx v1 size=<segment bytes> entries=<count>
//	<id> <offset> <length> <hash:16-hex> <physics>
//	...
//	crc32 <8-hex checksum of everything above>

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"
)

const sidecarMagic = "cloversim-store-idx v1"

// maxSidecarBytes bounds how much of a sidecar file recovery will
// read: a sidecar larger than this is treated as invalid (replay wins)
// rather than ballooning memory.
const maxSidecarBytes = 1 << 28

// sidecarEntry locates one record line inside its segment.
type sidecarEntry struct {
	physics string
	id      string
	off     int64  // byte offset of the line within the segment
	n       int64  // line length, terminating newline excluded
	hash    uint64 // canonical content hash (see canonicalHash)
}

// sidecarPath names the sidecar of a segment file.
func sidecarPath(segPath string) string {
	return strings.TrimSuffix(segPath, ".jsonl") + ".idx"
}

// writeSidecar publishes the index sidecar for one sealed segment
// atomically (temp + fsync + rename). size is the segment's byte size
// at seal time — the staleness guard readSidecar checks.
func writeSidecar(segPath string, size int64, entries []sidecarEntry) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s size=%d entries=%d\n", sidecarMagic, size, len(entries))
	for _, e := range entries {
		// Physics rides last so it may contain spaces; IDs are config
		// hashes and never do.
		fmt.Fprintf(&buf, "%s %d %d %016x %s\n", e.id, e.off, e.n, e.hash, e.physics)
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	fmt.Fprintf(&buf, "crc32 %08x\n", sum)

	path := sidecarPath(segPath)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: sidecar: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sidecar: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sidecar: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: sidecar: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: sidecar: %w", err)
	}
	return nil
}

// readSidecar loads and validates a segment's sidecar. ok=false — for
// any reason: missing file, bad magic, failed checksum, implausible
// entries, or a segment whose current size differs from the stamped
// one — means the caller must replay the segment instead. It never
// panics on arbitrary sidecar bytes.
func readSidecar(segPath string) ([]sidecarEntry, bool) {
	info, err := os.Stat(segPath)
	if err != nil {
		return nil, false
	}
	if fi, err := os.Stat(sidecarPath(segPath)); err != nil || fi.Size() > maxSidecarBytes {
		return nil, false
	}
	data, err := os.ReadFile(sidecarPath(segPath))
	if err != nil || len(data) == 0 || int64(len(data)) > maxSidecarBytes || data[len(data)-1] != '\n' {
		return nil, false
	}

	// Trailer: last line must be "crc32 <hex>" checksumming all bytes
	// before it.
	cut := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	sumHex, ok := strings.CutPrefix(string(data[cut:len(data)-1]), "crc32 ")
	if !ok {
		return nil, false
	}
	want, err := strconv.ParseUint(sumHex, 16, 32)
	if err != nil || crc32.ChecksumIEEE(data[:cut]) != uint32(want) {
		return nil, false
	}

	// Header: magic, stamped segment size, entry count.
	body := data[:cut]
	nl := bytes.IndexByte(body, '\n')
	if nl < 0 {
		return nil, false
	}
	var size int64
	var count int
	if _, err := fmt.Sscanf(string(body[:nl]), sidecarMagic+" size=%d entries=%d", &size, &count); err != nil {
		return nil, false
	}
	if size != info.Size() {
		return nil, false // segment grew or shrank after the sidecar was written
	}
	body = body[nl+1:]
	// The checksum guards against corruption, not internal consistency:
	// bound the allocation by what the body could plausibly hold.
	if count < 0 || int64(count) > int64(len(body))/8+1 {
		return nil, false
	}

	entries := make([]sidecarEntry, 0, count)
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			return nil, false
		}
		parts := strings.SplitN(string(body[:nl]), " ", 5)
		body = body[nl+1:]
		if len(parts) != 5 || parts[0] == "" {
			return nil, false
		}
		off, err1 := strconv.ParseInt(parts[1], 10, 64)
		n, err2 := strconv.ParseInt(parts[2], 10, 64)
		hash, err3 := strconv.ParseUint(parts[3], 16, 64)
		if err1 != nil || err2 != nil || err3 != nil ||
			off < 0 || n <= 0 || n > maxLineBytes || off+n > size {
			return nil, false
		}
		entries = append(entries, sidecarEntry{
			physics: parts[4], id: parts[0], off: off, n: n, hash: hash,
		})
	}
	if len(entries) != count {
		return nil, false
	}
	return entries, true
}
