package store

import (
	"bufio"
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloversim/internal/sweep"
)

// FuzzDecodeRecord throws arbitrary bytes at the JSONL record decoder.
// The invariants: never panic, and any line that decodes successfully
// must survive a re-encode/re-decode round trip bit-identically (the
// decoder only accepts records the store could itself have written).
func FuzzDecodeRecord(f *testing.F) {
	nt, _ := sweep.ModeByName("nt")
	seedScenario := sweep.Scenario{Machine: "icx", Workload: "jacobi", Mode: nt,
		Ranks: 4, Mesh: sweep.Mesh{X: 1536, Y: 1536}, Threads: 8, MaxRows: 8, Seed: 0x5eed}
	var m sweep.Metrics
	m.Add("store_ratio", 1.3245)
	m.Add("weird", math.NaN())
	if line, err := EncodeRecord("p1", seedScenario, m); err == nil {
		f.Add(line)
	}
	f.Add([]byte(`{"id":"x","phys":"p1","key":"","metrics":null}`))
	f.Add([]byte(`{"id":"","phys":"","key":"machine= workload= mode=","metrics":[{"name":"a","bits":"zz"}]}`))
	f.Add([]byte("not json"))
	f.Add([]byte(`{"id":"a","phys":"p1","key":"k","metrics":[]}{"trailing":1}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeRecord(line, "p1")
		if err != nil {
			return
		}
		// Accepted records must be canonical: re-encoding reproduces a
		// decodable record with the same ID and bit-identical metrics.
		line2, err := EncodeRecord("p1", rec.Scenario, rec.Metrics)
		if err != nil {
			t.Fatalf("accepted record %s does not re-encode: %v", rec.ID, err)
		}
		rec2, err := DecodeRecord(line2, "p1")
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if rec2.ID != rec.ID || rec2.Scenario != rec.Scenario {
			t.Fatalf("round trip changed identity: %+v vs %+v", rec, rec2)
		}
		if len(rec2.Metrics) != len(rec.Metrics) {
			t.Fatalf("round trip changed metric count")
		}
		for i := range rec.Metrics {
			if rec.Metrics[i].Name != rec2.Metrics[i].Name ||
				math.Float64bits(rec.Metrics[i].Value) != math.Float64bits(rec2.Metrics[i].Value) {
				t.Fatalf("round trip changed metric %d: %+v vs %+v", i, rec.Metrics[i], rec2.Metrics[i])
			}
		}
	})
}

// FuzzSegmentRecovery fuzzes the whole segment scan path: arbitrary
// segment bytes must recover without panicking or erroring, and every
// record the recovery indexes must be servable.
func FuzzSegmentRecovery(f *testing.F) {
	nt, _ := sweep.ModeByName("nt")
	sc := sweep.Scenario{Machine: "icx", Mode: nt, Seed: 1}
	var m sweep.Metrics
	m.Add("a", 1)
	line, _ := EncodeRecord("p1", sc, m)
	f.Add(append([]byte("garbage\n"), line...))
	f.Add(bytes.Repeat([]byte("x"), 4096))
	f.Add([]byte("\n\n\n"))
	f.Add(line[:len(line)-3])

	f.Fuzz(func(t *testing.T, segment []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-000001.jsonl"), segment, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir, "p1")
		if err != nil {
			t.Fatalf("recovery errored on damaged segment: %v", err)
		}
		defer s.Close()
		for _, rec := range s.Records() {
			if got, ok := s.Get(rec.Scenario); !ok || len(got) != len(rec.Metrics) {
				t.Fatalf("indexed record %s not servable", rec.ID)
			}
		}
		if s.Len() != s.Stats().Records {
			t.Fatalf("Len %d disagrees with Stats.Records %d", s.Len(), s.Stats().Records)
		}
	})
}

// FuzzReadLine checks the bounded line reader against arbitrary input:
// it must return every byte of input that fits the bound, terminate,
// and reassemble the original stream's structure (no invented lines).
func FuzzReadLine(f *testing.F) {
	f.Add([]byte("a\nb\nc"))
	f.Add([]byte(strings.Repeat("x", maxLineBytes+10) + "\nok\n"))
	f.Add([]byte("\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReaderSize(bytes.NewReader(data), 16) // tiny buffer forces ErrBufferFull path
		lines := 0
		var total int64
		for {
			line, consumed, err := readLine(r)
			total += consumed
			if len(line) > maxLineBytes {
				t.Fatalf("readLine returned %d bytes, bound is %d", len(line), maxLineBytes)
			}
			if bytes.IndexByte(line, '\n') >= 0 {
				t.Fatal("readLine returned an embedded newline")
			}
			if int64(len(line)) > consumed {
				t.Fatalf("readLine returned %d bytes but consumed only %d", len(line), consumed)
			}
			lines++
			if lines > bytes.Count(data, []byte("\n"))+1 {
				t.Fatal("readLine invented lines")
			}
			if err != nil {
				// The offset accounting behind sidecar entries: every byte
				// of input must be attributed to exactly one line.
				if total != int64(len(data)) {
					t.Fatalf("readLine consumed %d of %d bytes", total, len(data))
				}
				return
			}
		}
	})
}
