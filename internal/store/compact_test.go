package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// messyStore builds a store directory with several segments containing
// live records, a benign duplicate, a conflicting duplicate, a stale
// foreign-physics record and raw garbage — one of everything Compact
// must handle. Returns the live records.
func messyStore(t *testing.T, dir string) []Record {
	t.Helper()
	var live []Record
	for i := 0; i < 3; i++ { // three sealed segments, two records each
		s, err := Open(dir, "p1")
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			sc := scenario("icx", "jacobi", uint64(10*i+j+1))
			m := metrics(float64(i), math.NaN(), math.Copysign(0, -1))
			if err := s.Put(sc, m); err != nil {
				t.Fatal(err)
			}
			live = append(live, Record{ID: sc.ID(), Scenario: sc, Metrics: m})
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A fourth, hand-written segment: benign duplicate of live[0],
	// conflicting duplicate of live[1], a stale p0 record, and garbage.
	var extra bytes.Buffer
	dup, err := EncodeRecord("p1", live[0].Scenario, live[0].Metrics)
	if err != nil {
		t.Fatal(err)
	}
	conflict, err := EncodeRecord("p1", live[1].Scenario, metrics(424242))
	if err != nil {
		t.Fatal(err)
	}
	stale, err := EncodeRecord("p0", scenario("spr", "stream", 77), metrics(7))
	if err != nil {
		t.Fatal(err)
	}
	extra.Write(dup)
	extra.Write(conflict)
	extra.Write(stale)
	extra.WriteString("{torn garbage that decodes as nothing\n")
	if err := os.WriteFile(filepath.Join(dir, "seg-000099.jsonl"), extra.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return live
}

func checkLive(t *testing.T, s *Store, live []Record) {
	t.Helper()
	if s.Len() != len(live) {
		t.Fatalf("store holds %d records, want %d (%s)", s.Len(), len(live), s.Stats())
	}
	for _, want := range live {
		got, ok := s.Lookup(want.ID)
		if !ok {
			t.Fatalf("record %s lost", want.ID)
		}
		if got.Scenario != want.Scenario {
			t.Fatalf("scenario mutated: %+v vs %+v", got.Scenario, want.Scenario)
		}
		equalBits(t, got.Metrics, want.Metrics)
	}
}

func TestCompactMergesToOneSegment(t *testing.T) {
	dir := t.TempDir()
	live := messyStore(t, dir)

	s := mustOpen(t, dir, "p1")
	epochBefore := s.Epoch()
	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.SegmentsBefore != 4 || cs.SegmentsAfter != 1 {
		t.Fatalf("compact stats = %s, want 4 segments -> 1", cs)
	}
	if cs.Records != len(live) || cs.DroppedDuplicates != 1 || cs.Conflicts != 1 ||
		cs.DroppedStale != 1 || cs.DroppedCorrupt != 1 {
		t.Fatalf("compact stats = %s, want %d records, 1 of each drop class", cs, len(live))
	}
	if cs.BytesAfter >= cs.BytesBefore || cs.BytesAfter <= 0 {
		t.Fatalf("compact stats = %s, bytes must shrink", cs)
	}
	if s.Epoch() == epochBefore {
		t.Fatal("Compact renumbered records but kept the epoch")
	}
	checkLive(t, s, live)

	// On disk: exactly one segment, with a valid sidecar, and the next
	// Open recovers through it.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 1 {
		t.Fatalf("segments on disk after compact: %v", segs)
	}
	s.Close()
	s2 := mustOpen(t, dir, "p1")
	if st := s2.Stats(); st.Sidecars != 1 || st.Segments != 1 || st.Stale != 0 || st.Corrupt != 0 {
		t.Fatalf("post-compact reopen stats = %s, want clean sidecar recovery", st)
	}
	checkLive(t, s2, live)
}

func TestCompactKeepsFirstRecordOnConflict(t *testing.T) {
	dir := t.TempDir()
	live := messyStore(t, dir)
	s := mustOpen(t, dir, "p1")
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// live[1] had a conflicting rival in a later segment; the original
	// must have survived compaction byte-for-byte.
	got, ok := s.Lookup(live[1].ID)
	if !ok {
		t.Fatal("conflicted record lost")
	}
	equalBits(t, got.Metrics, live[1].Metrics)
}

func TestCompactEmptyAndIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "p1")
	if cs, err := s.Compact(); err != nil || cs.SegmentsBefore != 0 {
		t.Fatalf("compact of empty store: %v %s", err, cs)
	}
	live := messyStore(t, dir)
	s2 := mustOpen(t, dir, "p1")
	if _, err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	cs, err := s2.Compact() // second compact is a clean no-op merge
	if err != nil {
		t.Fatal(err)
	}
	if cs.SegmentsBefore != 1 || cs.Records != len(live) ||
		cs.DroppedStale+cs.DroppedCorrupt+cs.DroppedDuplicates+cs.Conflicts != 0 {
		t.Fatalf("re-compact stats = %s, want nothing to do", cs)
	}
	checkLive(t, s2, live)
}

func TestCompactThenPutThenReopen(t *testing.T) {
	dir := t.TempDir()
	live := messyStore(t, dir)
	s := mustOpen(t, dir, "p1")
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	sc := scenario("spr", "tealeaf", 500)
	m := metrics(3.14159, math.Inf(1))
	if err := s.Put(sc, m); err != nil {
		t.Fatal(err)
	}
	live = append(live, Record{ID: sc.ID(), Scenario: sc, Metrics: m})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, "p1")
	checkLive(t, s2, live)
}

func TestCompactAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "p1")
	s.Close()
	if _, err := s.Compact(); err == nil {
		t.Fatal("Compact on a closed store succeeded")
	}
}

// TestCompactCrashStates reconstructs the on-disk state after a crash
// at each point of the publish protocol and proves Open recovers the
// full live set from every one of them.
func TestCompactCrashStates(t *testing.T) {
	build := func(t *testing.T) (string, []Record) {
		dir := t.TempDir()
		live := messyStore(t, dir)
		return dir, live
	}
	// compactedBytes runs a real compaction in a scratch copy of dir and
	// returns the merged segment's bytes — the exact content compact.tmp
	// holds before the rename.
	compactedBytes := func(t *testing.T, dir string) []byte {
		t.Helper()
		scratch := t.TempDir()
		segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
		for _, seg := range segs {
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(scratch, filepath.Base(seg)), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s, err := Open(scratch, "p1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		merged, _ := filepath.Glob(filepath.Join(scratch, "seg-*.jsonl"))
		if len(merged) != 1 {
			t.Fatalf("scratch compact left %v", merged)
		}
		data, err := os.ReadFile(merged[0])
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	t.Run("crash-before-rename", func(t *testing.T) {
		// compact.tmp fully written, nothing published. The tmp file does
		// not match the segment glob, so recovery sees the old world.
		dir, live := build(t)
		if err := os.WriteFile(filepath.Join(dir, "compact.tmp"), compactedBytes(t, dir), 0o644); err != nil {
			t.Fatal(err)
		}
		checkLive(t, mustOpen(t, dir, "p1"), live)
	})

	t.Run("crash-after-rename-before-removal", func(t *testing.T) {
		// The merged segment replaced the lowest one (its sidecar already
		// removed); every higher segment still exists. Their content is
		// now pure duplicates of the merged segment — recovery must land
		// on the same live set, first-wins.
		dir, live := build(t)
		merged := compactedBytes(t, dir)
		segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
		target := segs[0]
		os.Remove(sidecarPath(target))
		if err := os.WriteFile(target, merged, 0o644); err != nil {
			t.Fatal(err)
		}
		s := mustOpen(t, dir, "p1")
		checkLive(t, s, live)
		if st := s.Stats(); st.Conflicts != 1 {
			// The hand-written rival record still conflicts on re-scan; it
			// must NOT have been laundered into the merged segment.
			t.Fatalf("stats = %s, want the surviving rival still flagged", st)
		}
	})

	t.Run("crash-mid-removal", func(t *testing.T) {
		// Rename done, some higher segments already removed.
		dir, live := build(t)
		merged := compactedBytes(t, dir)
		segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
		target := segs[0]
		os.Remove(sidecarPath(target))
		if err := os.WriteFile(target, merged, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, seg := range segs[1:3] {
			os.Remove(sidecarPath(seg))
			if err := os.Remove(seg); err != nil {
				t.Fatal(err)
			}
		}
		checkLive(t, mustOpen(t, dir, "p1"), live)
	})

	t.Run("crash-before-new-sidecar", func(t *testing.T) {
		// Everything removed, new sidecar never written: plain replay.
		dir, live := build(t)
		merged := compactedBytes(t, dir)
		segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
		target := segs[0]
		os.Remove(sidecarPath(target))
		if err := os.WriteFile(target, merged, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, seg := range segs[1:] {
			os.Remove(sidecarPath(seg))
			if err := os.Remove(seg); err != nil {
				t.Fatal(err)
			}
		}
		s := mustOpen(t, dir, "p1")
		if st := s.Stats(); st.Sidecars != 0 || st.Segments != 1 {
			t.Fatalf("stats = %s, want one sidecar-less segment", st)
		}
		checkLive(t, s, live)
	})
}

// FuzzCompactionRecovery: a store whose directory holds arbitrary
// leftover bytes in compact.tmp plus fuzz-chosen segment damage must
// compact (or refuse) without panicking, and whatever survives must be
// genuine records.
func FuzzCompactionRecovery(f *testing.F) {
	line, err := EncodeRecord("p1", scenario("icx", "jacobi", 1), metrics(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("leftover"), line)
	f.Add([]byte{}, []byte("garbage\n"))
	f.Add(line, line[:len(line)/2])

	f.Fuzz(func(t *testing.T, tmp, segment []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "compact.tmp"), tmp, 0o644); err != nil {
			t.Skip()
		}
		if err := os.WriteFile(filepath.Join(dir, "seg-000001.jsonl"), segment, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir, "p1")
		if err != nil {
			t.Fatalf("Open errored: %v", err)
		}
		defer s.Close()
		before := s.Records()
		cs, err := s.Compact()
		if err != nil {
			return // refusal is fine; panics and corruption are not
		}
		after := s.Records()
		if len(after) != len(before) || cs.Records != len(before) {
			t.Fatalf("compact changed live set: %d -> %d (%s)", len(before), len(after), cs)
		}
		for i := range before {
			if before[i].ID != after[i].ID {
				t.Fatalf("compact reordered/replaced records: %s vs %s", before[i].ID, after[i].ID)
			}
			equalBits(t, after[i].Metrics, before[i].Metrics)
		}
	})
}

// BenchmarkStoreOpen measures cold Open at 1e5 records, with sidecars
// (the sealed fast path) and without (full replay) — the ratio is the
// point of the sidecar tier.
func BenchmarkStoreOpen(b *testing.B) {
	const n = 100_000
	dir := b.TempDir()
	s, err := Open(dir, "p1")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put(scenario("icx", "jacobi", uint64(i+1)), metrics(float64(i), 0.25)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("sidecar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := Open(dir, "p1")
			if err != nil {
				b.Fatal(err)
			}
			if s.Len() != n {
				b.Fatalf("recovered %d records, want %d", s.Len(), n)
			}
			s.Close()
		}
	})
	b.Run("replay", func(b *testing.B) {
		idx, _ := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
		for _, p := range idx {
			if err := os.Remove(p); err != nil {
				b.Fatal(err)
			}
		}
		defer func() { // regeneration happens inside the loop; strip again for repeatability
			idx, _ := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
			for _, p := range idx {
				os.Remove(p)
			}
		}()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			idx, _ := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
			for _, p := range idx {
				os.Remove(p)
			}
			b.StartTimer()
			s, err := Open(dir, "p1")
			if err != nil {
				b.Fatal(err)
			}
			if s.Len() != n {
				b.Fatalf("recovered %d records, want %d", s.Len(), n)
			}
			s.Close()
		}
	})
}
