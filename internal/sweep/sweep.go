// Package sweep is a concurrent experiment-campaign engine: a
// declarative parameter grid (machine preset x workload x
// write-allocate-evasion mode x ranks x mesh x threads) expands into
// scenarios with stable
// config-hash IDs, a bounded worker pool executes them in parallel, and
// pluggable emitters render the results in deterministic grid order.
//
// The paper is fundamentally a sweep study — CloverLeaf traffic and
// runtime across machines, evasion modes, rank counts and problem sizes
// — and this package is the shared subsystem that turns "one figure at
// a time" into "whole-paper campaign in one parallel run".
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Mode is one write-allocate-evasion configuration of the patched
// CloverLeaf: the config.mk build knobs (non-temporal stores, loop
// restructuring) plus the run-time switches the paper toggles via MSR
// (SpecI2M) and likwid-features (hardware prefetchers).
type Mode struct {
	Name          string
	NTStores      bool // non-temporal destination stores
	OptimizeLoops bool // restructured/fused loop variants
	SpecI2MOff    bool // write-allocate evasion disabled (MSR bit)
	PFOff         bool // hardware prefetchers disabled
}

// allModes, modeIndex and modeNames are package-level so the lookup
// helpers below stay allocation-free in campaign hot loops (they used
// to rebuild a slice per call).
var (
	allModes = []Mode{
		{Name: "baseline"},
		{Name: "speci2m-off", SpecI2MOff: true},
		{Name: "nt", NTStores: true},
		{Name: "nt-opt", NTStores: true, OptimizeLoops: true},
		{Name: "pf-off", PFOff: true},
	}
	modeIndex = func() map[string]Mode {
		m := make(map[string]Mode, len(allModes))
		for _, mode := range allModes {
			m[mode.Name] = mode
		}
		return m
	}()
	modeNames = func() []string {
		out := make([]string, len(allModes))
		for i, m := range allModes {
			out[i] = m.Name
		}
		return out
	}()
)

// AllModes lists the evasion configurations the paper evaluates:
// the unmodified build, the build with SpecI2M disabled (the
// no-evasion baseline), non-temporal stores, NT plus restructured
// loops, and the prefetcher-off ablation. The returned slice is shared
// package state: treat it as read-only (copy before mutating).
func AllModes() []Mode { return allModes }

// ModeByName resolves a mode by its name without allocating.
func ModeByName(name string) (Mode, bool) {
	m, ok := modeIndex[name]
	return m, ok
}

// ModeNames lists the names of AllModes. The returned slice is shared
// package state: treat it as read-only.
func ModeNames() []string { return modeNames }

// ModesByName resolves a list of mode names into a fresh Mode slice —
// the shared axis validation behind cmd/sweep -modes and the sweepd
// grid spec, so the two surfaces cannot drift.
func ModesByName(names []string) ([]Mode, error) {
	var out []Mode
	for _, name := range names {
		m, ok := ModeByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown mode %q (have %v)", name, modeNames)
		}
		out = append(out, m)
	}
	return out, nil
}

// ParseMeshes parses a list of WxH strings — the shared mesh-axis
// validation behind cmd/sweep -mesh and the sweepd grid spec.
func ParseMeshes(ss []string) ([]Mesh, error) {
	var out []Mesh
	for _, s := range ss {
		m, err := ParseMesh(s)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Mesh is a global problem size; the zero value means the paper's
// default 15360^2 grid.
type Mesh struct {
	X, Y int
}

func (m Mesh) String() string {
	if m.X == 0 && m.Y == 0 {
		return "default"
	}
	return fmt.Sprintf("%dx%d", m.X, m.Y)
}

// ParseMesh parses "WxH" (e.g. "15360x15360").
func ParseMesh(s string) (Mesh, error) {
	var m Mesh
	if _, err := fmt.Sscanf(strings.TrimSpace(s), "%dx%d", &m.X, &m.Y); err != nil {
		return Mesh{}, fmt.Errorf("sweep: bad mesh %q (want WxH): %v", s, err)
	}
	if m.X <= 0 || m.Y <= 0 {
		return Mesh{}, fmt.Errorf("sweep: bad mesh %q (dimensions must be positive)", s)
	}
	return m, nil
}

// Scenario is one point of a campaign grid. Zero-valued fields mean
// "runner default" (full node for Ranks/Threads, paper mesh for Mesh);
// they stay zero in the canonical key so the hash is declaration-stable.
type Scenario struct {
	Machine  string // machine preset name (machine.ByName)
	Workload string // workload name (internal/workload registry); "" = runner default
	Mode     Mode
	Ranks    int  // MPI rank count; 0 = full node
	Mesh     Mesh // global problem size; zero = workload default
	Threads  int  // microbenchmark core count; 0 = full node
	MaxRows  int  // y-extent truncation; 0 = runner default, <0 = full
	Seed     uint64
}

// Key is the canonical, human-readable configuration string the ID
// hashes. Every field participates, so two scenarios collide exactly
// when they are configured identically.
func (s Scenario) Key() string {
	return fmt.Sprintf(
		"machine=%s workload=%s mode=%s nt=%t opt=%t i2moff=%t pfoff=%t ranks=%d mesh=%s threads=%d maxrows=%d seed=%#x",
		s.Machine, s.Workload, s.Mode.Name, s.Mode.NTStores, s.Mode.OptimizeLoops,
		s.Mode.SpecI2MOff, s.Mode.PFOff,
		s.Ranks, s.Mesh, s.Threads, s.MaxRows, s.Seed)
}

// ID is the stable config hash (12 hex chars of SHA-256 of Key): equal
// across runs, processes and machines for equal configurations.
func (s Scenario) ID() string {
	h := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(h[:6])
}

// Label is a short human-readable tag for progress output.
func (s Scenario) Label() string {
	l := s.Machine
	if s.Workload != "" {
		l += "/" + s.Workload
	}
	l += "/" + s.Mode.Name
	if s.Ranks > 0 {
		l += fmt.Sprintf("/r%d", s.Ranks)
	}
	if s.Threads > 0 {
		l += fmt.Sprintf("/t%d", s.Threads)
	}
	return l
}

// Grid declares a campaign as a cross product of parameter axes. Empty
// axes contribute a single zero (runner-default) value, so the minimal
// grid {Machines: ["icx"]} is one scenario.
type Grid struct {
	Machines  []string
	Workloads []string
	Modes     []Mode
	Ranks     []int
	Meshes    []Mesh
	Threads   []int
	// MaxRows and Seed are campaign-wide, not axes.
	MaxRows int
	Seed    uint64
}

func orDefault[T any](xs []T) []T {
	if len(xs) == 0 {
		var zero T
		return []T{zero}
	}
	return xs
}

// Size returns the number of scenarios Expand produces.
func (g Grid) Size() int {
	return len(orDefault(g.Machines)) * len(orDefault(g.Workloads)) * len(orDefault(g.Modes)) *
		len(orDefault(g.Meshes)) * len(orDefault(g.Ranks)) * len(orDefault(g.Threads))
}

// Expand produces the scenario list in deterministic grid order:
// machine (outermost), workload, mode, mesh, ranks, threads
// (innermost). Emitters preserve this order regardless of execution
// interleaving.
func (g Grid) Expand() []Scenario {
	out := make([]Scenario, 0, g.Size())
	for _, mach := range orDefault(g.Machines) {
		for _, wl := range orDefault(g.Workloads) {
			for _, mode := range orDefault(g.Modes) {
				for _, mesh := range orDefault(g.Meshes) {
					for _, ranks := range orDefault(g.Ranks) {
						for _, threads := range orDefault(g.Threads) {
							out = append(out, Scenario{
								Machine:  mach,
								Workload: wl,
								Mode:     mode,
								Ranks:    ranks,
								Mesh:     mesh,
								Threads:  threads,
								MaxRows:  g.MaxRows,
								Seed:     g.Seed,
							})
						}
					}
				}
			}
		}
	}
	return out
}
