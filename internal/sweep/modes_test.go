package sweep

import "testing"

// TestModeLookupAllocFree guards the satellite fix: the mode helpers
// used to rebuild a slice per call inside campaign hot loops. They must
// stay allocation-free.
func TestModeLookupAllocFree(t *testing.T) {
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := ModeByName("nt"); !ok {
			t.Fatal("nt mode missing")
		}
		if _, ok := ModeByName("bogus"); ok {
			t.Fatal("bogus mode resolved")
		}
		if len(AllModes()) == 0 || len(ModeNames()) == 0 {
			t.Fatal("empty mode tables")
		}
	}); n != 0 {
		t.Errorf("mode lookups allocate %.1f objects per run, want 0", n)
	}
}

// TestModeTablesConsistent: the package-level index and name list must
// stay in sync with the mode list itself.
func TestModeTablesConsistent(t *testing.T) {
	all := AllModes()
	names := ModeNames()
	if len(all) != len(names) {
		t.Fatalf("AllModes has %d entries, ModeNames %d", len(all), len(names))
	}
	for i, m := range all {
		if names[i] != m.Name {
			t.Errorf("ModeNames[%d] = %q, want %q", i, names[i], m.Name)
		}
		got, ok := ModeByName(m.Name)
		if !ok || got != m {
			t.Errorf("ModeByName(%q) = %+v, %t, want %+v", m.Name, got, ok, m)
		}
	}
}

// BenchmarkModeByName is the benchmark guard for the lookup hot path.
func BenchmarkModeByName(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := ModeByName("nt-opt"); !ok {
			b.Fatal("mode missing")
		}
	}
}

// BenchmarkAllModes guards the former per-call slice rebuild.
func BenchmarkAllModes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(AllModes()) == 0 {
			b.Fatal("no modes")
		}
	}
}
