package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingCache is a Cache that counts probes and write-throughs.
type countingCache struct {
	mu   sync.Mutex
	gets int
	puts int
	data map[string]Metrics
}

func (c *countingCache) Get(s Scenario) (Metrics, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	m, ok := c.data[s.ID()]
	return m, ok
}

func (c *countingCache) Put(s Scenario, m Metrics) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if c.data == nil {
		c.data = map[string]Metrics{}
	}
	c.data[s.ID()] = m
	return nil
}

func (c *countingCache) counts() (gets, puts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gets, c.puts
}

// TestRunContextCancellationStopsScheduling is the tentpole lockdown:
// cancelling a campaign mid-flight stops cold cells being scheduled,
// lets already-running scenarios complete AND write through to the
// persistent tier, and finalizes every unstarted cell with the
// distinguished ErrUnstarted/context.Canceled error — while the
// progress callback still fires exactly once per scenario.
func TestRunContextCancellationStopsScheduling(t *testing.T) {
	g := testGrid() // 12 unique scenarios
	const workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var invocations atomic.Int64
	started := make(chan struct{}, 16)
	runner := func(rctx context.Context, s Scenario) (Metrics, error) {
		invocations.Add(1)
		started <- struct{}{}
		// A long-running cell: completes only after the cancellation,
		// proving running work is never abandoned.
		select {
		case <-rctx.Done():
		case <-time.After(10 * time.Second):
			return nil, errors.New("cancellation never arrived")
		}
		var m Metrics
		m.Add("v", 1)
		return m, nil
	}

	cache := &countingCache{}
	e := NewEngine(workers)
	e.Cache = cache
	var progress atomic.Int64
	doneSeen := make(map[int]bool)
	var doneMu sync.Mutex
	e.Progress = func(done, total int, r Result) {
		progress.Add(1)
		if total != 12 || done < 1 || done > 12 {
			t.Errorf("bad progress counters done=%d total=%d", done, total)
		}
		doneMu.Lock()
		if doneSeen[done] {
			t.Errorf("done count %d reported twice", done)
		}
		doneSeen[done] = true
		doneMu.Unlock()
	}

	campaign := make(chan Campaign, 1)
	go func() { campaign <- e.RunContext(ctx, g, runner) }()
	<-started
	<-started // both workers hold a scenario
	cancel()
	c := <-campaign

	if got := invocations.Load(); got != workers {
		t.Errorf("runner invoked %d times after cancellation, want exactly %d (the in-flight cells)", got, workers)
	}
	if !c.Interrupted() {
		t.Error("campaign does not report itself interrupted")
	}
	unstarted := c.Unstarted()
	if len(unstarted) != 12-workers {
		t.Fatalf("%d unstarted cells, want %d", len(unstarted), 12-workers)
	}
	for _, r := range unstarted {
		if !errors.Is(r.Err, ErrUnstarted) {
			t.Errorf("unstarted cell %s error %v does not wrap ErrUnstarted", r.ID, r.Err)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("unstarted cell %s error %v does not wrap context.Canceled", r.ID, r.Err)
		}
	}
	completed := 0
	for _, r := range c.Results {
		if r.Err == nil {
			if v, ok := r.Metrics.Get("v"); !ok || v != 1 {
				t.Errorf("completed cell %s missing metrics", r.ID)
			}
			completed++
		}
	}
	if completed != workers {
		t.Errorf("%d completed cells, want %d", completed, workers)
	}
	if _, puts := cache.counts(); puts != workers {
		t.Errorf("write-through ran %d times, want %d: completed results must persist even after cancellation", puts, workers)
	}
	if got := progress.Load(); got != 12 {
		t.Errorf("progress fired %d times, want 12 (every scenario finalizes, even unstarted ones)", got)
	}
	if err := c.Err(); err == nil {
		t.Error("interrupted campaign should report an aggregate error")
	}
}

// TestRunContextPreCancelled: an already-dead context performs no work
// at all — no cache probes, no simulations — yet still returns one
// finalized Result per scenario.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var invocations atomic.Int64
	cache := &countingCache{}
	e := NewEngine(4)
	e.Cache = cache
	c := e.RunContext(ctx, testGrid(), func(context.Context, Scenario) (Metrics, error) {
		invocations.Add(1)
		return nil, nil
	})
	if invocations.Load() != 0 {
		t.Errorf("pre-cancelled campaign ran %d simulations, want 0", invocations.Load())
	}
	if gets, puts := cache.counts(); gets != 0 || puts != 0 {
		t.Errorf("pre-cancelled campaign touched the cache (%d gets, %d puts), want none", gets, puts)
	}
	if len(c.Results) != 12 || len(c.Unstarted()) != 12 {
		t.Errorf("%d results, %d unstarted; want 12/12", len(c.Results), len(c.Unstarted()))
	}
}

// TestRunContextDeadline: a deadline-cancelled campaign wraps
// context.DeadlineExceeded, so callers can distinguish timeouts from
// interrupts.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := NewEngine(2).RunContext(ctx, testGrid(), IgnoreContext(echoRunner))
	if len(c.Unstarted()) != 12 {
		t.Fatalf("%d unstarted, want 12", len(c.Unstarted()))
	}
	if err := c.Results[0].Err; !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrUnstarted) {
		t.Errorf("deadline error %v should wrap both context.DeadlineExceeded and ErrUnstarted", err)
	}
}

// TestRunContextCancelDuringCacheProbe: cancellation between
// second-tier probes stops the probing loop — exactly one Get happens
// when the first probe triggers the cancel.
func TestRunContextCancelDuringCacheProbe(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cache := &cancellingCache{cancel: cancel}
	e := NewEngine(2)
	e.Cache = cache
	var invocations atomic.Int64
	c := e.RunContext(ctx, testGrid(), func(context.Context, Scenario) (Metrics, error) {
		invocations.Add(1)
		return nil, nil
	})
	if got := cache.gets.Load(); got != 1 {
		t.Errorf("cache probed %d times after cancellation, want 1", got)
	}
	if invocations.Load() != 0 {
		t.Errorf("cancelled campaign still simulated %d cells", invocations.Load())
	}
	if len(c.Unstarted()) != 12 {
		t.Errorf("%d unstarted, want 12", len(c.Unstarted()))
	}
}

// cancellingCache cancels the campaign from inside its first Get.
type cancellingCache struct {
	gets   atomic.Int64
	cancel context.CancelFunc
}

func (c *cancellingCache) Get(Scenario) (Metrics, bool) {
	if c.gets.Add(1) == 1 {
		c.cancel()
	}
	return nil, false
}

func (c *cancellingCache) Put(Scenario, Metrics) error { return nil }

// TestConcurrentCampaignsIndependentProgress is the regression lock
// for the shared-progress race: two campaigns running concurrently on
// ONE engine (exactly what sweepd does across expand requests) must
// each see their own monotonically complete done counts. Before the
// per-run counter, RunScenarios reset the shared e.done on entry, so
// a second campaign clobbered the first one's counts mid-flight.
func TestConcurrentCampaignsIndependentProgress(t *testing.T) {
	gridA := testGrid() // 12 scenarios, total identifies the campaign
	gridB := Grid{      // 6 scenarios, disjoint IDs from gridA
		Machines: []string{"x0", "x1", "x2"},
		Modes:    []Mode{{Name: "a"}},
		Ranks:    []int{1, 2},
		Seed:     7,
	}
	e := NewEngine(4)
	var mu sync.Mutex
	seen := map[int][]int{} // total -> done values, in callback order
	e.Progress = func(done, total int, r Result) {
		mu.Lock()
		seen[total] = append(seen[total], done)
		mu.Unlock()
	}
	slow := func(s Scenario) (Metrics, error) {
		time.Sleep(time.Millisecond) // force the campaigns to interleave
		return echoRunner(s)
	}
	var wg sync.WaitGroup
	for _, g := range []Grid{gridA, gridB} {
		wg.Add(1)
		go func(g Grid) {
			defer wg.Done()
			if c := e.Run(g, slow); len(c.Failed()) != 0 {
				t.Errorf("campaign failed: %v", c.Err())
			}
		}(g)
	}
	wg.Wait()

	for total, want := range map[int]int{12: 12, 6: 6} {
		done := seen[total]
		if len(done) != want {
			t.Fatalf("campaign of %d scenarios fired %d progress callbacks, want %d (counts corrupted by the concurrent campaign?)", total, len(done), want)
		}
		hit := make([]bool, want+1)
		for _, d := range done {
			if d < 1 || d > want || hit[d] {
				t.Fatalf("campaign of %d scenarios saw done counts %v, want a permutation of 1..%d", total, done, want)
			}
			hit[d] = true
		}
	}
}
