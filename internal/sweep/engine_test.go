package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// testGrid is a 12-scenario grid whose runner output depends only on
// the scenario, so campaigns are comparable across worker counts.
func testGrid() Grid {
	return Grid{
		Machines: []string{"m0", "m1", "m2"},
		Modes:    []Mode{{Name: "a"}, {Name: "b", NTStores: true}},
		Ranks:    []int{1, 2},
		Seed:     42,
	}
}

// echoRunner derives metrics purely from the scenario.
func echoRunner(s Scenario) (Metrics, error) {
	var m Metrics
	m.Add("ranks", float64(s.Ranks))
	m.Add("machlen", float64(len(s.Machine)))
	if s.Mode.NTStores {
		m.Add("nt", 1)
	}
	return m, nil
}

func TestResultsInGridOrder(t *testing.T) {
	g := testGrid()
	want := g.Expand()
	for _, workers := range []int{1, 4, 16} {
		c := NewEngine(workers).Run(g, echoRunner)
		if len(c.Results) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(c.Results), len(want))
		}
		for i, r := range c.Results {
			if r.Scenario != want[i] {
				t.Errorf("workers=%d: result %d is %s, want %s",
					workers, i, r.Scenario.Label(), want[i].Label())
			}
			if r.ID != want[i].ID() {
				t.Errorf("workers=%d: result %d ID mismatch", workers, i)
			}
		}
	}
}

func TestErrorIsolation(t *testing.T) {
	g := testGrid()
	boom := errors.New("boom")
	c := NewEngine(4).Run(g, func(s Scenario) (Metrics, error) {
		if s.Machine == "m1" && s.Ranks == 2 {
			return nil, boom
		}
		return echoRunner(s)
	})
	failed := c.Failed()
	if len(failed) != 2 { // m1 x {a,b} x ranks=2
		t.Fatalf("%d failed scenarios, want 2", len(failed))
	}
	for _, r := range failed {
		if !errors.Is(r.Err, boom) {
			t.Errorf("failure %s carries %v, want boom", r.ID, r.Err)
		}
	}
	// Everyone else still ran.
	ok := 0
	for _, r := range c.Results {
		if r.Err == nil {
			if _, found := r.Metrics.Get("ranks"); !found {
				t.Errorf("successful scenario %s missing metrics", r.ID)
			}
			ok++
		}
	}
	if ok != len(c.Results)-2 {
		t.Errorf("%d ok scenarios, want %d", ok, len(c.Results)-2)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "2 of 12") {
		t.Errorf("campaign error %v should summarize 2 of 12 failures", err)
	}
}

func TestPanicIsolation(t *testing.T) {
	g := Grid{Machines: []string{"ok", "bad"}}
	c := NewEngine(2).Run(g, func(s Scenario) (Metrics, error) {
		if s.Machine == "bad" {
			panic("kaboom")
		}
		return echoRunner(s)
	})
	if c.Results[0].Err != nil {
		t.Errorf("healthy scenario failed: %v", c.Results[0].Err)
	}
	if err := c.Results[1].Err; err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic not isolated into error, got %v", err)
	}
}

func TestCacheHitsViaRunCounter(t *testing.T) {
	g := testGrid()
	var runs atomic.Int64
	counting := func(s Scenario) (Metrics, error) {
		runs.Add(1)
		return echoRunner(s)
	}
	e := NewEngine(4)
	c1 := e.Run(g, counting)
	if got := runs.Load(); got != 12 {
		t.Fatalf("first campaign executed %d scenarios, want 12", got)
	}
	if e.CacheSize() != 12 {
		t.Fatalf("cache holds %d results, want 12", e.CacheSize())
	}
	// Same grid again: every scenario hash hits the cache.
	c2 := e.Run(g, counting)
	if got := runs.Load(); got != 12 {
		t.Errorf("second campaign re-executed scenarios: counter %d, want 12", got)
	}
	for i, r := range c2.Results {
		if !r.Cached {
			t.Errorf("second-campaign result %d not served from cache", i)
		}
		if fmt.Sprint(r.Metrics) != fmt.Sprint(c1.Results[i].Metrics) {
			t.Errorf("cached metrics differ at %d", i)
		}
	}
	// A fresh scenario still executes.
	e.Run(Grid{Machines: []string{"new"}}, counting)
	if got := runs.Load(); got != 13 {
		t.Errorf("novel scenario should execute once, counter %d, want 13", got)
	}
}

func TestDuplicateScenariosDedupWithinCampaign(t *testing.T) {
	s := Scenario{Machine: "m", Ranks: 4}
	var runs atomic.Int64
	c := NewEngine(4).RunScenarios([]Scenario{s, s, s}, func(Scenario) (Metrics, error) {
		runs.Add(1)
		var m Metrics
		m.Add("v", 1)
		return m, nil
	})
	if got := runs.Load(); got != 1 {
		t.Fatalf("duplicate hash executed %d times, want 1", got)
	}
	if c.Results[0].Cached {
		t.Error("first occurrence should be a real execution")
	}
	for i := 1; i < 3; i++ {
		if !c.Results[i].Cached {
			t.Errorf("duplicate %d not marked cached", i)
		}
		if v, found := c.Results[i].Metrics.Get("v"); !found || v != 1 {
			t.Errorf("duplicate %d missing copied metrics", i)
		}
	}
}

func TestFailedScenariosAreNotCached(t *testing.T) {
	g := Grid{Machines: []string{"flaky"}}
	var runs atomic.Int64
	runner := func(Scenario) (Metrics, error) {
		if runs.Add(1) == 1 {
			return nil, errors.New("transient")
		}
		return Metrics{{"v", 2}}, nil
	}
	e := NewEngine(1)
	if err := e.Run(g, runner).Err(); err == nil {
		t.Fatal("first campaign should fail")
	}
	c := e.Run(g, runner) // retry re-executes instead of caching the error
	if err := c.Err(); err != nil {
		t.Fatalf("retry did not re-execute: %v", err)
	}
	if runs.Load() != 2 {
		t.Errorf("runner ran %d times, want 2", runs.Load())
	}
}

func TestProgressCallback(t *testing.T) {
	g := testGrid()
	var calls atomic.Int64
	e := NewEngine(4)
	e.Progress = func(done, total int, r Result) {
		calls.Add(1)
		if total != 12 || done < 1 || done > 12 {
			t.Errorf("bad progress counters done=%d total=%d", done, total)
		}
		// Callbacks run without the engine lock: using the engine from
		// inside Progress must not deadlock.
		_ = e.CacheSize()
	}
	e.Run(g, echoRunner)
	if calls.Load() != 12 {
		t.Errorf("progress fired %d times, want 12", calls.Load())
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 100)
	if err := ForEach(7, len(out), func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	// Lowest-index error wins deterministically.
	err := ForEach(7, 10, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("err%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "err3" {
		t.Errorf("ForEach error = %v, want err3", err)
	}
	// Panics become errors.
	if err := ForEach(2, 2, func(i int) error { panic("eek") }); err == nil {
		t.Error("panic not surfaced")
	}
}
