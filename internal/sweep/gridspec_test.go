package sweep

import (
	"fmt"
	"strings"
	"testing"
)

// TestGridSpecResolve: the shared names-based spec expands through the
// same mode/mesh validators as before, with the axis validator
// injected (the machine/workload registries live above this package).
func TestGridSpecResolve(t *testing.T) {
	var sawMachines, sawWorkloads []string
	spec := GridSpec{
		Machines:  []string{"icx"},
		Workloads: []string{"stream"},
		Modes:     []string{"baseline", "nt"},
		Meshes:    []string{"128x64"},
		Ranks:     []int{2, 4},
		MaxRows:   8,
		Seed:      42,
	}
	grid, err := spec.Resolve(func(machines, workloads []string) error {
		sawMachines, sawWorkloads = machines, workloads
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sawMachines) != 1 || sawMachines[0] != "icx" || len(sawWorkloads) != 1 {
		t.Errorf("validator saw machines %v workloads %v", sawMachines, sawWorkloads)
	}
	if grid.Size() != 4 {
		t.Errorf("grid size %d, want 4 (2 modes x 2 ranks)", grid.Size())
	}
	if len(grid.Modes) != 2 || grid.Modes[1].Name != "nt" || !grid.Modes[1].NTStores {
		t.Errorf("modes resolved to %+v", grid.Modes)
	}
	if len(grid.Meshes) != 1 || grid.Meshes[0] != (Mesh{X: 128, Y: 64}) {
		t.Errorf("meshes resolved to %+v", grid.Meshes)
	}
	if grid.MaxRows != 8 || grid.Seed != 42 {
		t.Errorf("maxrows/seed = %d/%d, want 8/42", grid.MaxRows, grid.Seed)
	}

	// Validator failures and unknown modes/meshes are errors.
	if _, err := spec.Resolve(func([]string, []string) error { return fmt.Errorf("nope") }); err == nil || err.Error() != "nope" {
		t.Errorf("axis validator error not surfaced: %v", err)
	}
	bad := spec
	bad.Modes = []string{"warp-drive"}
	if _, err := bad.Resolve(nil); err == nil {
		t.Error("unknown mode resolved")
	}
	bad = spec
	bad.Meshes = []string{"banana"}
	if _, err := bad.Resolve(nil); err == nil {
		t.Error("bad mesh resolved")
	}
}

// TestGridSpecExplicit: the explicit form round-trips canonical keys
// and rejects malformed keys and mixed specs.
func TestGridSpecExplicit(t *testing.T) {
	want := []Scenario{
		{Machine: "icx", Ranks: 4, Seed: 9},
		{Machine: "spr8480", Workload: "jacobi", Mode: Mode{Name: "nt", NTStores: true}, Threads: 8},
	}
	spec := GridSpec{Scenarios: []string{want[0].Key(), want[1].Key()}}
	if !spec.IsExplicit() {
		t.Fatal("explicit spec not recognized")
	}
	got, err := spec.Explicit()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scenario %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := spec.Resolve(nil); err == nil {
		t.Error("explicit spec resolved as a grid")
	}

	mixed := spec
	mixed.Machines = []string{"icx"}
	if _, err := mixed.Explicit(); err == nil || !strings.Contains(err.Error(), "cannot be combined") {
		t.Errorf("mixed spec error %v, want a combination rejection", err)
	}
	bad := GridSpec{Scenarios: []string{"garbage"}}
	if _, err := bad.Explicit(); err == nil {
		t.Error("malformed key parsed")
	}
	if _, err := (GridSpec{}).Explicit(); err == nil {
		t.Error("axis-form spec produced explicit scenarios")
	}
}

// TestGridSpecExplicitDuplicateKeys: duplicates are the store's and the
// engine's documented convergence case, not damage — the explicit form
// preserves them verbatim (position i in, position i out) and leaves
// dedup to the memoizer.
func TestGridSpecExplicitDuplicateKeys(t *testing.T) {
	s := Scenario{Machine: "icx", Workload: "stream", Ranks: 4}
	spec := GridSpec{Scenarios: []string{s.Key(), s.Key(), s.Key()}}
	got, err := spec.Explicit()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("explicit form collapsed %d duplicate keys to %d scenarios", 3, len(got))
	}
	for i, g := range got {
		if g != s {
			t.Errorf("scenario %d = %+v, want %+v", i, g, s)
		}
	}
}

// TestGridSpecMixingRejectedPerAxis: every single axis field set
// alongside explicit scenarios makes the spec ambiguous — each one
// must reject on its own, including the scalar MaxRows and Seed fields.
func TestGridSpecMixingRejectedPerAxis(t *testing.T) {
	key := Scenario{Machine: "icx"}.Key()
	muts := map[string]func(*GridSpec){
		"machines":  func(g *GridSpec) { g.Machines = []string{"icx"} },
		"workloads": func(g *GridSpec) { g.Workloads = []string{"stream"} },
		"modes":     func(g *GridSpec) { g.Modes = []string{"baseline"} },
		"ranks":     func(g *GridSpec) { g.Ranks = []int{4} },
		"meshes":    func(g *GridSpec) { g.Meshes = []string{"128x64"} },
		"threads":   func(g *GridSpec) { g.Threads = []int{8} },
		"maxrows":   func(g *GridSpec) { g.MaxRows = 8 },
		"seed":      func(g *GridSpec) { g.Seed = 1 },
	}
	for name, mut := range muts {
		spec := GridSpec{Scenarios: []string{key}}
		mut(&spec)
		if _, err := spec.Explicit(); err == nil || !strings.Contains(err.Error(), "cannot be combined") {
			t.Errorf("%s alongside explicit scenarios: err %v, want a combination rejection", name, err)
		}
	}
}

// TestExplicitSpecRoundTripsRefinedValues: ExplicitSpec is the inverse
// of Explicit for arbitrary numeric axis values — the adaptive driver's
// refined midpoints (ranks no preset lists, meshes no flag would ever
// name) must survive the key round-trip bit-exactly, because that is
// how refinement waves reach fleet workers.
func TestExplicitSpecRoundTripsRefinedValues(t *testing.T) {
	want := []Scenario{
		{Machine: "icx", Workload: "jacobi", Ranks: 37, MaxRows: 8, Seed: 24301},
		{Machine: "spr8480", Workload: "jacobi", Mesh: Mesh{X: 1234, Y: 777}, MaxRows: -1},
		{Machine: "icx", Workload: "stream", Mode: Mode{Name: "nt", NTStores: true}, Threads: 111},
	}
	spec := ExplicitSpec(want)
	if !spec.IsExplicit() || spec.axesSet() {
		t.Fatalf("ExplicitSpec produced a non-explicit or mixed spec: %+v", spec)
	}
	got, err := spec.Explicit()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip returned %d scenarios, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scenario %d round-tripped to %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Key() != want[i].Key() {
			t.Errorf("scenario %d key drifted: %q vs %q", i, got[i].Key(), want[i].Key())
		}
	}
}
