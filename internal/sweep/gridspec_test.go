package sweep

import (
	"fmt"
	"strings"
	"testing"
)

// TestGridSpecResolve: the shared names-based spec expands through the
// same mode/mesh validators as before, with the axis validator
// injected (the machine/workload registries live above this package).
func TestGridSpecResolve(t *testing.T) {
	var sawMachines, sawWorkloads []string
	spec := GridSpec{
		Machines:  []string{"icx"},
		Workloads: []string{"stream"},
		Modes:     []string{"baseline", "nt"},
		Meshes:    []string{"128x64"},
		Ranks:     []int{2, 4},
		MaxRows:   8,
		Seed:      42,
	}
	grid, err := spec.Resolve(func(machines, workloads []string) error {
		sawMachines, sawWorkloads = machines, workloads
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sawMachines) != 1 || sawMachines[0] != "icx" || len(sawWorkloads) != 1 {
		t.Errorf("validator saw machines %v workloads %v", sawMachines, sawWorkloads)
	}
	if grid.Size() != 4 {
		t.Errorf("grid size %d, want 4 (2 modes x 2 ranks)", grid.Size())
	}
	if len(grid.Modes) != 2 || grid.Modes[1].Name != "nt" || !grid.Modes[1].NTStores {
		t.Errorf("modes resolved to %+v", grid.Modes)
	}
	if len(grid.Meshes) != 1 || grid.Meshes[0] != (Mesh{X: 128, Y: 64}) {
		t.Errorf("meshes resolved to %+v", grid.Meshes)
	}
	if grid.MaxRows != 8 || grid.Seed != 42 {
		t.Errorf("maxrows/seed = %d/%d, want 8/42", grid.MaxRows, grid.Seed)
	}

	// Validator failures and unknown modes/meshes are errors.
	if _, err := spec.Resolve(func([]string, []string) error { return fmt.Errorf("nope") }); err == nil || err.Error() != "nope" {
		t.Errorf("axis validator error not surfaced: %v", err)
	}
	bad := spec
	bad.Modes = []string{"warp-drive"}
	if _, err := bad.Resolve(nil); err == nil {
		t.Error("unknown mode resolved")
	}
	bad = spec
	bad.Meshes = []string{"banana"}
	if _, err := bad.Resolve(nil); err == nil {
		t.Error("bad mesh resolved")
	}
}

// TestGridSpecExplicit: the explicit form round-trips canonical keys
// and rejects malformed keys and mixed specs.
func TestGridSpecExplicit(t *testing.T) {
	want := []Scenario{
		{Machine: "icx", Ranks: 4, Seed: 9},
		{Machine: "spr8480", Workload: "jacobi", Mode: Mode{Name: "nt", NTStores: true}, Threads: 8},
	}
	spec := GridSpec{Scenarios: []string{want[0].Key(), want[1].Key()}}
	if !spec.IsExplicit() {
		t.Fatal("explicit spec not recognized")
	}
	got, err := spec.Explicit()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scenario %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := spec.Resolve(nil); err == nil {
		t.Error("explicit spec resolved as a grid")
	}

	mixed := spec
	mixed.Machines = []string{"icx"}
	if _, err := mixed.Explicit(); err == nil || !strings.Contains(err.Error(), "cannot be combined") {
		t.Errorf("mixed spec error %v, want a combination rejection", err)
	}
	bad := GridSpec{Scenarios: []string{"garbage"}}
	if _, err := bad.Explicit(); err == nil {
		t.Error("malformed key parsed")
	}
	if _, err := (GridSpec{}).Explicit(); err == nil {
		t.Error("axis-form spec produced explicit scenarios")
	}
}
