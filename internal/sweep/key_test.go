package sweep

import (
	"testing"
)

// TestParseKeyRoundTrip: every representable scenario (registry-style
// names, no whitespace) must survive Key -> ParseKey exactly — the
// persistent store trusts this inverse to rebuild scenarios from disk.
func TestParseKeyRoundTrip(t *testing.T) {
	scenarios := []Scenario{
		{},
		{Machine: "icx"},
		{Machine: "spr8480", Workload: "jacobi", Mode: Mode{Name: "nt", NTStores: true},
			Ranks: 72, Mesh: Mesh{X: 15360, Y: 15360}, Threads: 36, MaxRows: -1, Seed: 0x5eed},
		{Machine: "a64fx", Workload: "stream", Mode: Mode{Name: "nt-opt", NTStores: true, OptimizeLoops: true},
			Ranks: 1, Threads: 1, MaxRows: 8, Seed: ^uint64(0)},
		{Machine: "clx", Mode: Mode{Name: "pf-off", PFOff: true}, Seed: 1},
		{Machine: "icx-snc0", Workload: "riemann", Mode: Mode{Name: "speci2m-off", SpecI2MOff: true},
			Mesh: Mesh{X: 1, Y: 999999}},
	}
	for _, want := range scenarios {
		got, err := ParseKey(want.Key())
		if err != nil {
			t.Errorf("ParseKey(%q): %v", want.Key(), err)
			continue
		}
		if got != want {
			t.Errorf("ParseKey(Key()) = %+v, want %+v", got, want)
		}
		if got.ID() != want.ID() {
			t.Errorf("round trip changed ID: %s -> %s", want.ID(), got.ID())
		}
	}
}

func TestParseKeyRejectsMalformed(t *testing.T) {
	nt, _ := ModeByName("nt")
	valid := Scenario{Machine: "icx", Mode: nt, Seed: 1}.Key()
	bad := []string{
		"",
		"machine=icx",
		valid + " extra=1",
		"machine=icx workload= mode=nt nt=maybe opt=false i2moff=false pfoff=false ranks=4 mesh=default threads=8 maxrows=8 seed=0x1",
		"machine=icx workload= mode=nt nt=true opt=false i2moff=false pfoff=false ranks=four mesh=default threads=8 maxrows=8 seed=0x1",
		"machine=icx workload= mode=nt nt=true opt=false i2moff=false pfoff=false ranks=4 mesh=0x0 threads=8 maxrows=8 seed=0x1",
		"machine=icx workload= mode=nt nt=true opt=false i2moff=false pfoff=false ranks=4 mesh=default threads=8 maxrows=8 seed=1",
		"machine=icx workload= mode=nt nt=true opt=false i2moff=false pfoff=false ranks=4 mesh=default threads=8 maxrows=8 seed=0xzz",
		"ranks=4 workload= mode=nt nt=true opt=false i2moff=false pfoff=false machine=icx mesh=default threads=8 maxrows=8 seed=0x1", // reordered fields
	}
	for _, key := range bad {
		if _, err := ParseKey(key); err == nil {
			t.Errorf("ParseKey accepted malformed key %q", key)
		}
	}
}

// FuzzParseKey: arbitrary strings must never panic, and any key that
// parses must be canonicalizable — re-keying the parsed scenario and
// parsing again must reach a fixed point with an unchanged ID.
func FuzzParseKey(f *testing.F) {
	f.Add(Scenario{Machine: "icx", Workload: "jacobi", Mode: Mode{Name: "nt", NTStores: true},
		Ranks: 4, Mesh: Mesh{X: 1536, Y: 1536}, Threads: 8, MaxRows: 8, Seed: 0x5eed}.Key())
	f.Add(Scenario{}.Key())
	f.Add("machine=icx workload= mode= nt=false opt=false i2moff=false pfoff=false ranks=0 mesh=default threads=0 maxrows=0 seed=0x0")
	f.Add("not a key")
	f.Add("machine= workload= mode= nt= opt= i2moff= pfoff= ranks= mesh= threads= maxrows= seed=")

	f.Fuzz(func(t *testing.T, key string) {
		s, err := ParseKey(key)
		if err != nil {
			return
		}
		again, err := ParseKey(s.Key())
		if err != nil {
			t.Fatalf("canonical key of accepted scenario does not reparse: %q: %v", s.Key(), err)
		}
		if again != s {
			t.Fatalf("canonicalization not a fixed point: %+v vs %+v", s, again)
		}
		if again.ID() != s.ID() {
			t.Fatalf("canonicalization changed ID")
		}
	})
}
