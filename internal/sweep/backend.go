package sweep

import (
	"context"
	"runtime"
	"sync"
)

// ReportFunc receives one finalized cold-cell outcome from a Backend:
// i indexes the scenario slice passed to Execute, and exactly one of
// m/err is meaningful. Implementations provided by the engine are safe
// for concurrent use and idempotent — the first report for an index
// wins, repeats are dropped — so a backend that re-dispatches work
// (straggler recovery, retry after a worker failure) may report an
// index twice without corrupting the campaign.
type ReportFunc func(i int, m Metrics, err error)

// Backend executes the cold cells of a campaign: the scenarios that
// survived the engine's memoizer and persistent-cache tiers and
// actually need simulation. The engine owns everything around
// execution — deduplication, cache probes, write-through, progress,
// deterministic grid ordering — so a backend only has to turn
// scenarios into metrics.
//
// Contract: Execute must call report exactly once per index before
// returning (duplicates are tolerated, gaps are not — though the
// engine defensively finalizes unreported cells as failures). Under a
// cancelled ctx, cells that never started must be reported with an
// error wrapping ErrUnstarted and ctx.Err() so cancellation stays
// distinguishable from genuine failures; already-running cells may
// complete and report normally. Report callbacks may be invoked
// concurrently.
//
// The default backend is LocalBackend (the in-process bounded worker
// pool); internal/dispatch provides a fleet backend that shards the
// batch across remote sweepd workers.
type Backend interface {
	Execute(ctx context.Context, scenarios []Scenario, report ReportFunc)
}

// LocalBackend executes scenarios on an in-process bounded worker
// pool — the engine's historical execution strategy, now one
// implementation of the Backend interface. Runner panics are isolated
// into per-scenario errors; cancellation is observed at dispatch and
// at the worker-slot acquire, so a cancelled batch stops starting new
// scenarios while running ones complete.
type LocalBackend struct {
	// Workers bounds concurrent scenario executions (<= 0 means
	// GOMAXPROCS).
	Workers int
	// Run executes one scenario. It must be set.
	Run RunnerContext
}

// Execute implements Backend.
func (b *LocalBackend) Execute(ctx context.Context, scenarios []Scenario, report ReportFunc) {
	if ctx == nil {
		//lint:allow ctxflow nil-ctx compat defaulting so a hand-rolled Backend caller cannot crash the pool
		ctx = context.Background()
	}
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range scenarios {
		if ctx.Err() != nil {
			// Dispatch-time cancellation: finalize without scheduling.
			report(i, nil, unstartedErr(ctx, scenarios[i], scenarios[i].ID()))
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				// The batch was cancelled while this scenario queued for
				// a worker slot: finalize it unstarted so the pool drains
				// without doing new work.
				report(i, nil, unstartedErr(ctx, scenarios[i], scenarios[i].ID()))
				return
			}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				// Slot acquired in a race with cancellation: still no new
				// work.
				report(i, nil, unstartedErr(ctx, scenarios[i], scenarios[i].ID()))
				return
			}
			m, err := runSafe(ctx, b.Run, scenarios[i])
			report(i, m, err)
		}(i)
	}
	wg.Wait()
}

// Interface conformance.
var _ Backend = (*LocalBackend)(nil)
