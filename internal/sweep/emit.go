package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"cloversim/internal/asciiplot"
	"cloversim/internal/csvout"
)

// Emitter renders a campaign. Emitters see results in grid order and
// must be byte-stable: the same campaign always renders identically.
type Emitter interface {
	Emit(w io.Writer, c Campaign) error
}

// Table renders the campaign as a csvout table: scenario identity
// columns followed by the union of metric columns (first-appearance
// order); failed scenarios carry their error in the status column and
// blank metric cells. Cache provenance (Result.Cached) deliberately
// does not appear: a resumed campaign served from the persistent store
// must render byte-identically to the cold run that populated it.
func (c Campaign) Table() *csvout.Table {
	metrics := c.MetricNames()
	header := append([]string{"id", "machine", "workload", "mode", "ranks", "mesh", "threads", "status"}, metrics...)
	t := csvout.New(header...)
	for _, r := range c.Results {
		status := "ok"
		if r.Err != nil {
			status = "error: " + r.Err.Error()
		}
		row := []interface{}{r.ID, r.Scenario.Machine, r.Scenario.Workload, r.Scenario.Mode.Name,
			r.Scenario.Ranks, r.Scenario.Mesh.String(), r.Scenario.Threads, status}
		for _, name := range metrics {
			if v, ok := r.Metrics.Get(name); ok {
				row = append(row, v)
			} else {
				row = append(row, "")
			}
		}
		t.Add(row...)
	}
	return t
}

// CSVEmitter writes the campaign table as CSV.
type CSVEmitter struct{}

func (CSVEmitter) Emit(w io.Writer, c Campaign) error { return c.Table().WriteCSV(w) }

// jsonMetric/jsonResult/jsonCampaign fix the field order (struct
// marshaling is deterministic; metrics stay an ordered array). Value
// is a pointer because JSON cannot carry NaN/±Inf: a non-finite metric
// — which the sweepd wire layer deliberately supports via IEEE-754
// bits — encodes as a null decimal mirror plus an authoritative Bits
// field, instead of aborting the whole campaign encode with
// encoding/json's "unsupported value". Finite metrics carry no Bits
// field, so campaigns without non-finite values (the golden fixtures)
// encode byte-identically to the historical form.
type jsonMetric struct {
	Name  string   `json:"name"`
	Value *float64 `json:"value"`
	Bits  string   `json:"bits,omitempty"`
}

// toJSONMetric renders one metric in the campaign JSON form, shared by
// the buffered JSONEmitter and the streaming JSONStream so the two
// paths cannot drift.
func toJSONMetric(m Metric) jsonMetric {
	jm := jsonMetric{Name: m.Name}
	if v := m.Value; math.IsNaN(v) || math.IsInf(v, 0) {
		jm.Bits = fmt.Sprintf("%016x", math.Float64bits(v))
	} else {
		jm.Value = &v
	}
	return jm
}

// jsonResult carries no cache-provenance field: warm (store-served)
// and cold campaigns must encode byte-identically.
type jsonResult struct {
	ID       string       `json:"id"`
	Machine  string       `json:"machine"`
	Workload string       `json:"workload,omitempty"`
	Mode     string       `json:"mode"`
	Ranks    int          `json:"ranks"`
	Mesh     string       `json:"mesh"`
	Threads  int          `json:"threads"`
	Seed     uint64       `json:"seed"`
	Error    string       `json:"error,omitempty"`
	Metrics  []jsonMetric `json:"metrics,omitempty"`
}

type jsonCampaign struct {
	Scenarios int          `json:"scenarios"`
	Failed    int          `json:"failed"`
	Results   []jsonResult `json:"results"`
}

// JSONEmitter writes the campaign as deterministic JSON (fixed field
// order, metrics as an ordered array).
type JSONEmitter struct {
	Indent bool
}

func (e JSONEmitter) Emit(w io.Writer, c Campaign) error {
	out := jsonCampaign{
		Scenarios: len(c.Results),
		Failed:    len(c.Failed()),
		Results:   make([]jsonResult, 0, len(c.Results)),
	}
	for _, r := range c.Results {
		out.Results = append(out.Results, toJSONResult(r))
	}
	enc := json.NewEncoder(w)
	if e.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(out)
}

// toJSONResult renders one result in the campaign JSON form — the
// shared element encoding of the buffered and streaming JSON paths.
// It carries no cache-provenance field: warm and cold campaigns must
// encode byte-identically.
func toJSONResult(r Result) jsonResult {
	jr := jsonResult{
		ID:       r.ID,
		Machine:  r.Scenario.Machine,
		Workload: r.Scenario.Workload,
		Mode:     r.Scenario.Mode.Name,
		Ranks:    r.Scenario.Ranks,
		Mesh:     r.Scenario.Mesh.String(),
		Threads:  r.Scenario.Threads,
		Seed:     r.Scenario.Seed,
	}
	if r.Err != nil {
		jr.Error = r.Err.Error()
	}
	for _, m := range r.Metrics {
		jr.Metrics = append(jr.Metrics, toJSONMetric(m))
	}
	return jr
}

// SummaryEmitter renders a terminal summary: completion counts plus an
// ASCII chart of one metric, one series per evasion mode, x = scenario
// index within the mode (grid order).
type SummaryEmitter struct {
	Metric string // default: first metric of the campaign
	Width  int
	Height int
}

func (e SummaryEmitter) Emit(w io.Writer, c Campaign) error {
	// ok counts cache-served results too: summary output, like every
	// emitter, must not distinguish warm campaigns from cold ones.
	ok, failed := 0, 0
	for _, r := range c.Results {
		if r.Err != nil {
			failed++
		} else {
			ok++
		}
	}
	fmt.Fprintf(w, "campaign: %d scenarios (%d ok, %d failed)\n",
		len(c.Results), ok, failed)
	for _, r := range c.Failed() {
		fmt.Fprintf(w, "  FAILED %s %s: %v\n", r.ID, r.Scenario.Label(), r.Err)
	}

	metric := e.Metric
	if metric == "" {
		names := c.MetricNames()
		if len(names) == 0 {
			return nil
		}
		metric = names[0]
	}
	var series []asciiplot.Series
	idx := map[string]int{}
	for _, r := range c.Results {
		v, found := r.Metrics.Get(metric)
		if !found {
			continue
		}
		name := r.Scenario.Mode.Name
		if r.Scenario.Workload != "" {
			name = r.Scenario.Workload + "/" + name
		}
		i, seen := idx[name]
		if !seen {
			i = len(series)
			idx[name] = i
			series = append(series, asciiplot.Series{Name: name})
		}
		s := &series[i]
		s.X = append(s.X, float64(len(s.X)))
		s.Y = append(s.Y, v)
	}
	if len(series) == 0 {
		return nil
	}
	_, err := io.WriteString(w, asciiplot.Plot{
		Title:  metric + " by mode (x = scenario index)",
		XLabel: "scenario",
		Width:  e.Width,
		Height: e.Height,
		Series: series,
	}.Render())
	return err
}

// ProgressLine formats one engine progress callback for terminal use.
func ProgressLine(done, total int, r Result) string {
	status := "ok"
	switch {
	case r.Err != nil:
		status = "ERROR: " + r.Err.Error()
	case r.Cached:
		status = "cached"
	}
	return fmt.Sprintf("[%*d/%d] %s %-28s %s", len(fmt.Sprint(total)), done, total, r.ID, r.Scenario.Label(), status)
}
