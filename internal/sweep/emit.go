package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"cloversim/internal/asciiplot"
	"cloversim/internal/csvout"
)

// Emitter renders a campaign. Emitters see results in grid order and
// must be byte-stable: the same campaign always renders identically.
type Emitter interface {
	Emit(w io.Writer, c Campaign) error
}

// Table renders the campaign as a csvout table: scenario identity
// columns followed by the union of metric columns (first-appearance
// order); failed scenarios carry their error in the status column and
// blank metric cells. Cache provenance (Result.Cached) deliberately
// does not appear: a resumed campaign served from the persistent store
// must render byte-identically to the cold run that populated it.
func (c Campaign) Table() *csvout.Table {
	metrics := c.MetricNames()
	header := append([]string{"id", "machine", "workload", "mode", "ranks", "mesh", "threads", "status"}, metrics...)
	t := csvout.New(header...)
	for _, r := range c.Results {
		status := "ok"
		if r.Err != nil {
			status = "error: " + r.Err.Error()
		}
		row := []interface{}{r.ID, r.Scenario.Machine, r.Scenario.Workload, r.Scenario.Mode.Name,
			r.Scenario.Ranks, r.Scenario.Mesh.String(), r.Scenario.Threads, status}
		for _, name := range metrics {
			if v, ok := r.Metrics.Get(name); ok {
				row = append(row, v)
			} else {
				row = append(row, "")
			}
		}
		t.Add(row...)
	}
	return t
}

// CSVEmitter writes the campaign table as CSV.
type CSVEmitter struct{}

func (CSVEmitter) Emit(w io.Writer, c Campaign) error { return c.Table().WriteCSV(w) }

// jsonMetric/jsonResult/jsonCampaign fix the field order (struct
// marshaling is deterministic; metrics stay an ordered array).
type jsonMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// jsonResult carries no cache-provenance field: warm (store-served)
// and cold campaigns must encode byte-identically.
type jsonResult struct {
	ID       string       `json:"id"`
	Machine  string       `json:"machine"`
	Workload string       `json:"workload,omitempty"`
	Mode     string       `json:"mode"`
	Ranks    int          `json:"ranks"`
	Mesh     string       `json:"mesh"`
	Threads  int          `json:"threads"`
	Seed     uint64       `json:"seed"`
	Error    string       `json:"error,omitempty"`
	Metrics  []jsonMetric `json:"metrics,omitempty"`
}

type jsonCampaign struct {
	Scenarios int          `json:"scenarios"`
	Failed    int          `json:"failed"`
	Results   []jsonResult `json:"results"`
}

// JSONEmitter writes the campaign as deterministic JSON (fixed field
// order, metrics as an ordered array).
type JSONEmitter struct {
	Indent bool
}

func (e JSONEmitter) Emit(w io.Writer, c Campaign) error {
	out := jsonCampaign{
		Scenarios: len(c.Results),
		Failed:    len(c.Failed()),
		Results:   make([]jsonResult, 0, len(c.Results)),
	}
	for _, r := range c.Results {
		jr := jsonResult{
			ID:       r.ID,
			Machine:  r.Scenario.Machine,
			Workload: r.Scenario.Workload,
			Mode:     r.Scenario.Mode.Name,
			Ranks:    r.Scenario.Ranks,
			Mesh:     r.Scenario.Mesh.String(),
			Threads:  r.Scenario.Threads,
			Seed:     r.Scenario.Seed,
		}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		}
		for _, m := range r.Metrics {
			jr.Metrics = append(jr.Metrics, jsonMetric{m.Name, m.Value})
		}
		out.Results = append(out.Results, jr)
	}
	enc := json.NewEncoder(w)
	if e.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(out)
}

// SummaryEmitter renders a terminal summary: completion counts plus an
// ASCII chart of one metric, one series per evasion mode, x = scenario
// index within the mode (grid order).
type SummaryEmitter struct {
	Metric string // default: first metric of the campaign
	Width  int
	Height int
}

func (e SummaryEmitter) Emit(w io.Writer, c Campaign) error {
	// ok counts cache-served results too: summary output, like every
	// emitter, must not distinguish warm campaigns from cold ones.
	ok, failed := 0, 0
	for _, r := range c.Results {
		if r.Err != nil {
			failed++
		} else {
			ok++
		}
	}
	fmt.Fprintf(w, "campaign: %d scenarios (%d ok, %d failed)\n",
		len(c.Results), ok, failed)
	for _, r := range c.Failed() {
		fmt.Fprintf(w, "  FAILED %s %s: %v\n", r.ID, r.Scenario.Label(), r.Err)
	}

	metric := e.Metric
	if metric == "" {
		names := c.MetricNames()
		if len(names) == 0 {
			return nil
		}
		metric = names[0]
	}
	var series []asciiplot.Series
	idx := map[string]int{}
	for _, r := range c.Results {
		v, found := r.Metrics.Get(metric)
		if !found {
			continue
		}
		name := r.Scenario.Mode.Name
		if r.Scenario.Workload != "" {
			name = r.Scenario.Workload + "/" + name
		}
		i, seen := idx[name]
		if !seen {
			i = len(series)
			idx[name] = i
			series = append(series, asciiplot.Series{Name: name})
		}
		s := &series[i]
		s.X = append(s.X, float64(len(s.X)))
		s.Y = append(s.Y, v)
	}
	if len(series) == 0 {
		return nil
	}
	_, err := io.WriteString(w, asciiplot.Plot{
		Title:  metric + " by mode (x = scenario index)",
		XLabel: "scenario",
		Width:  e.Width,
		Height: e.Height,
		Series: series,
	}.Render())
	return err
}

// ProgressLine formats one engine progress callback for terminal use.
func ProgressLine(done, total int, r Result) string {
	status := "ok"
	switch {
	case r.Err != nil:
		status = "ERROR: " + r.Err.Error()
	case r.Cached:
		status = "cached"
	}
	return fmt.Sprintf("[%*d/%d] %s %-28s %s", len(fmt.Sprint(total)), done, total, r.ID, r.Scenario.Label(), status)
}
