package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func emitBytes(t *testing.T, e Emitter, c Campaign) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := e.Emit(&b, c); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestEmittersByteStable: the same grid + seed must render byte-identical
// CSV and JSON regardless of worker count and across repeated runs.
func TestEmittersByteStable(t *testing.T) {
	g := testGrid()
	var wantCSV, wantJSON []byte
	for _, workers := range []int{1, 4, 8, 1, 4, 8} {
		c := NewEngine(workers).Run(g, echoRunner)
		csv := emitBytes(t, CSVEmitter{}, c)
		js := emitBytes(t, JSONEmitter{Indent: true}, c)
		if wantCSV == nil {
			wantCSV, wantJSON = csv, js
			continue
		}
		if !bytes.Equal(csv, wantCSV) {
			t.Errorf("workers=%d: CSV output differs:\n%s\nvs\n%s", workers, csv, wantCSV)
		}
		if !bytes.Equal(js, wantJSON) {
			t.Errorf("workers=%d: JSON output differs", workers)
		}
	}
}

func TestCSVShape(t *testing.T) {
	c := NewEngine(2).Run(testGrid(), echoRunner)
	lines := strings.Split(strings.TrimSpace(string(emitBytes(t, CSVEmitter{}, c))), "\n")
	if len(lines) != 13 { // header + 12 scenarios
		t.Fatalf("%d CSV lines, want 13", len(lines))
	}
	head := lines[0]
	for _, col := range []string{"id", "machine", "mode", "ranks", "mesh", "threads", "status", "ranks", "machlen", "nt"} {
		if !strings.Contains(head, col) {
			t.Errorf("CSV header %q missing column %q", head, col)
		}
	}
	// Metric column union: mode "a" rows lack the nt metric -> blank cell.
	if !strings.Contains(lines[1], ",ok,") {
		t.Errorf("row 1 %q missing ok status", lines[1])
	}
}

func TestJSONShapeAndErrors(t *testing.T) {
	c := NewEngine(2).Run(testGrid(), func(s Scenario) (Metrics, error) {
		if s.Machine == "m2" {
			return nil, errors.New("dead machine")
		}
		return echoRunner(s)
	})
	var out struct {
		Scenarios int `json:"scenarios"`
		Failed    int `json:"failed"`
		Results   []struct {
			ID      string `json:"id"`
			Machine string `json:"machine"`
			Error   string `json:"error"`
			Metrics []struct {
				Name  string  `json:"name"`
				Value float64 `json:"value"`
			} `json:"metrics"`
		} `json:"results"`
	}
	if err := json.Unmarshal(emitBytes(t, JSONEmitter{}, c), &out); err != nil {
		t.Fatal(err)
	}
	if out.Scenarios != 12 || out.Failed != 4 {
		t.Fatalf("scenarios=%d failed=%d, want 12/4", out.Scenarios, out.Failed)
	}
	for _, r := range out.Results {
		if r.Machine == "m2" {
			if r.Error == "" || len(r.Metrics) != 0 {
				t.Errorf("failed result %s should carry error and no metrics", r.ID)
			}
		} else if r.Error != "" || len(r.Metrics) == 0 {
			t.Errorf("ok result %s malformed", r.ID)
		}
	}
}

func TestSummaryEmitter(t *testing.T) {
	c := NewEngine(2).Run(testGrid(), echoRunner)
	s := string(emitBytes(t, SummaryEmitter{Metric: "ranks"}, c))
	if !strings.Contains(s, "12 scenarios") {
		t.Errorf("summary missing counts: %q", s)
	}
	if !strings.Contains(s, "ranks by mode") {
		t.Errorf("summary missing chart title: %q", s)
	}
	// One legend entry per mode.
	for _, mode := range []string{" a ", " b "} {
		if !strings.Contains(s, mode) {
			t.Errorf("summary legend missing mode%q", mode)
		}
	}
}

func TestProgressLine(t *testing.T) {
	r := Result{Scenario: Scenario{Machine: "icx", Mode: Mode{Name: "nt"}, Ranks: 8}, ID: "abc123"}
	line := ProgressLine(3, 12, r)
	for _, frag := range []string{"3/12", "abc123", "icx/nt/r8", "ok"} {
		if !strings.Contains(line, frag) {
			t.Errorf("progress line %q missing %q", line, frag)
		}
	}
	r.Err = errors.New("oops")
	if line := ProgressLine(4, 12, r); !strings.Contains(line, "ERROR: oops") {
		t.Errorf("error line %q", line)
	}
}
