package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cloversim/internal/csvout"
)

// StreamEmitter is the incremental half of Emitter: results arrive one
// at a time in arbitrary completion order (an engine Progress hook, a
// fleet's trickle of remote completions), are spilled to disk in grid
// order with bounded memory, and Close assembles final bytes that are
// byte-identical to the corresponding buffered emitter rendering the
// completed Campaign.
//
// Memory model: only out-of-order completions are held — a result
// whose grid predecessors have all arrived is formatted and spilled
// immediately, so the high-water mark is the campaign's out-of-
// orderness (roughly O(workers x chunk) under a fleet), never
// O(campaign). The artifact headers that depend on the whole campaign
// (the CSV metric-column union, the JSON failed count) are written at
// Close from the spill, which is why the final bytes can be identical
// to the buffered path without holding the campaign in memory.
type StreamEmitter interface {
	// Add consumes one finalized result. Exactly one Add per campaign
	// scenario (duplicates included — the engine's Progress hook fires
	// once per input scenario) must arrive before Close.
	Add(r Result) error
	// Close writes the final artifact and releases the spill. It fails
	// if results are missing: a stream cut short must not masquerade as
	// a complete campaign.
	Close() error
}

// reorder reassembles completion-order results into grid order: Add
// hands back the run of results that became contiguous, holding only
// the out-of-order tail. Results are matched to grid indices by
// scenario ID; duplicate IDs (in-campaign dedup copies) fill their
// indices in grid order, which is sound because the engine gives every
// copy identical metrics and error.
type reorder struct {
	next    int
	total   int
	byID    map[string][]int
	pending map[int]Result
	maxHeld int
}

func newReorder(scenarios []Scenario) *reorder {
	o := &reorder{
		total:   len(scenarios),
		byID:    make(map[string][]int, len(scenarios)),
		pending: map[int]Result{},
	}
	for i, s := range scenarios {
		id := s.ID()
		o.byID[id] = append(o.byID[id], i)
	}
	return o
}

// add assigns r its grid index and returns the now-contiguous run of
// results starting at the spill frontier (empty when r is ahead of it).
func (o *reorder) add(r Result) ([]Result, error) {
	idxs := o.byID[r.ID]
	if len(idxs) == 0 {
		return nil, fmt.Errorf("sweep: stream emitter: unexpected result %s (%s): not in this campaign's grid, or already emitted", r.ID, r.Scenario.Label())
	}
	i := idxs[0]
	o.byID[r.ID] = idxs[1:]
	if _, dup := o.pending[i]; dup || i < o.next {
		return nil, fmt.Errorf("sweep: stream emitter: duplicate result for grid index %d (%s)", i, r.ID)
	}
	o.pending[i] = r
	if n := len(o.pending); n > o.maxHeld {
		o.maxHeld = n
	}
	var ready []Result
	for {
		r, ok := o.pending[o.next]
		if !ok {
			return ready, nil
		}
		delete(o.pending, o.next)
		o.next++
		ready = append(ready, r)
	}
}

// complete reports whether every grid index has been spilled.
func (o *reorder) complete() bool { return o.next == o.total }

// spillFile creates the temp file an incremental emitter spills
// grid-ordered rows into until the campaign-dependent header is known.
func spillFile(kind string) (*os.File, error) {
	f, err := os.CreateTemp("", "sweep-"+kind+"-spill-*")
	if err != nil {
		return nil, fmt.Errorf("sweep: stream emitter: creating spill: %w", err)
	}
	return f, nil
}

// discardSpill closes and removes a spill file (best effort: the
// artifact error, if any, is the one worth reporting).
func discardSpill(f *os.File) {
	if f == nil {
		return
	}
	f.Close()
	os.Remove(f.Name())
}

// CSVStream is the incremental counterpart of CSVEmitter: rows spill
// to a temp file in grid order as results arrive, and Close writes the
// header (whose metric-column union is only known once every row has
// been seen) followed by the rows, padded to the final column count —
// byte-identical to CSVEmitter rendering the completed campaign.
// Create with NewCSVStream; not safe for concurrent use (the engine
// serializes Progress callbacks).
type CSVStream struct {
	w       io.Writer
	spill   *os.File
	spillW  *csv.Writer
	order   *reorder
	metrics []string // column union so far, first-appearance in grid order
	seen    map[string]bool
	err     error
	closed  bool
}

// NewCSVStream starts an incremental CSV emission for the given
// campaign scenarios (grid order — the order CSVEmitter would render).
func NewCSVStream(w io.Writer, scenarios []Scenario) (*CSVStream, error) {
	spill, err := spillFile("csv")
	if err != nil {
		return nil, err
	}
	return &CSVStream{
		w:      w,
		spill:  spill,
		spillW: csv.NewWriter(spill),
		order:  newReorder(scenarios),
		seen:   map[string]bool{},
	}, nil
}

// MaxBuffered reports the high-water mark of out-of-order results held
// in memory — the quantity the bounded-memory contract is about.
func (s *CSVStream) MaxBuffered() int { return s.order.maxHeld }

// Add consumes one finalized result (any completion order).
func (s *CSVStream) Add(r Result) error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return fmt.Errorf("sweep: CSV stream: Add after Close")
	}
	ready, err := s.order.add(r)
	if err != nil {
		return s.fail(err)
	}
	for _, r := range ready {
		// The metric union grows in first-appearance grid order —
		// exactly the buffered Table's column order — because rows spill
		// in grid order.
		for _, m := range r.Metrics {
			if !s.seen[m.Name] {
				s.seen[m.Name] = true
				s.metrics = append(s.metrics, m.Name)
			}
		}
		status := "ok"
		if r.Err != nil {
			status = "error: " + r.Err.Error()
		}
		row := []string{r.ID, r.Scenario.Machine, r.Scenario.Workload, r.Scenario.Mode.Name,
			csvout.FormatCell(r.Scenario.Ranks), r.Scenario.Mesh.String(), csvout.FormatCell(r.Scenario.Threads), status}
		for _, name := range s.metrics {
			if v, ok := r.Metrics.Get(name); ok {
				row = append(row, csvout.FormatCell(v))
			} else {
				row = append(row, "")
			}
		}
		if err := s.spillW.Write(row); err != nil {
			return s.fail(fmt.Errorf("sweep: CSV stream: spilling row: %w", err))
		}
	}
	return nil
}

// Close writes header + padded rows to the destination and removes the
// spill. The campaign must be complete.
func (s *CSVStream) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err != nil {
		return s.err
	}
	defer discardSpill(s.spill)
	if !s.order.complete() {
		return fmt.Errorf("sweep: CSV stream: campaign incomplete: %d of %d results arrived", s.order.next, s.order.total)
	}
	s.spillW.Flush()
	if err := s.spillW.Error(); err != nil {
		return fmt.Errorf("sweep: CSV stream: flushing spill: %w", err)
	}
	if _, err := s.spill.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("sweep: CSV stream: rewinding spill: %w", err)
	}
	header := append([]string{"id", "machine", "workload", "mode", "ranks", "mesh", "threads", "status"}, s.metrics...)
	out := csv.NewWriter(s.w)
	if err := out.Write(header); err != nil {
		return err
	}
	// Rows spilled before a metric column was discovered are short; pad
	// them with the blank cells the buffered table would carry. A csv
	// round-trip re-encodes parsed fields byte-identically (quoting is a
	// deterministic function of the field content), so padded rows match
	// the buffered emitter exactly.
	in := csv.NewReader(s.spill)
	in.FieldsPerRecord = -1
	for {
		rec, err := in.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("sweep: CSV stream: reading spill: %w", err)
		}
		for len(rec) < len(header) {
			rec = append(rec, "")
		}
		if err := out.Write(rec); err != nil {
			return err
		}
	}
	out.Flush()
	return out.Error()
}

func (s *CSVStream) fail(err error) error {
	s.err = err
	return err
}

// JSONStream is the incremental counterpart of JSONEmitter: result
// elements spill to a temp file in grid order as they arrive, and
// Close wraps them in the campaign envelope (whose failed count is
// only known once every result has been seen) — byte-identical to
// JSONEmitter rendering the completed campaign, in both indented and
// compact form. Create with NewJSONStream; not safe for concurrent
// use.
type JSONStream struct {
	w      io.Writer
	indent bool
	spill  *os.File
	order  *reorder
	count  int
	failed int
	err    error
	closed bool
}

// NewJSONStream starts an incremental JSON emission for the given
// campaign scenarios (grid order). indent selects the indented form
// cmd/sweep writes to campaign.json.
func NewJSONStream(w io.Writer, scenarios []Scenario, indent bool) (*JSONStream, error) {
	spill, err := spillFile("json")
	if err != nil {
		return nil, err
	}
	return &JSONStream{
		w:      w,
		indent: indent,
		spill:  spill,
		order:  newReorder(scenarios),
	}, nil
}

// MaxBuffered reports the high-water mark of out-of-order results held
// in memory.
func (s *JSONStream) MaxBuffered() int { return s.order.maxHeld }

// Add consumes one finalized result (any completion order).
func (s *JSONStream) Add(r Result) error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return fmt.Errorf("sweep: JSON stream: Add after Close")
	}
	ready, err := s.order.add(r)
	if err != nil {
		return s.fail(err)
	}
	for _, r := range ready {
		if r.Err != nil {
			s.failed++
		}
		var buf []byte
		var merr error
		if s.indent {
			// The element exactly as json.Encoder lays it out at depth
			// two of the campaign envelope: four-space element prefix,
			// two-space indent steps.
			buf, merr = json.MarshalIndent(toJSONResult(r), "    ", "  ")
		} else {
			buf, merr = json.Marshal(toJSONResult(r))
		}
		if merr != nil {
			return s.fail(fmt.Errorf("sweep: JSON stream: encoding result %s: %w", r.ID, merr))
		}
		var sep string
		if s.count > 0 {
			sep = ","
			if s.indent {
				sep = ",\n"
			}
		}
		lead := ""
		if s.indent {
			lead = "    "
		}
		if _, err := fmt.Fprintf(s.spill, "%s%s%s", sep, lead, buf); err != nil {
			return s.fail(fmt.Errorf("sweep: JSON stream: spilling result: %w", err))
		}
		s.count++
	}
	return nil
}

// Close writes the campaign envelope around the spilled elements and
// removes the spill. The campaign must be complete.
func (s *JSONStream) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err != nil {
		return s.err
	}
	defer discardSpill(s.spill)
	if !s.order.complete() {
		return fmt.Errorf("sweep: JSON stream: campaign incomplete: %d of %d results arrived", s.order.next, s.order.total)
	}
	if _, err := s.spill.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("sweep: JSON stream: rewinding spill: %w", err)
	}
	prefix, suffix := `{"scenarios":%d,"failed":%d,"results":[`, "]}\n"
	if s.indent {
		prefix = "{\n  \"scenarios\": %d,\n  \"failed\": %d,\n  \"results\": ["
		suffix = "\n  ]\n}\n"
	}
	if s.count == 0 {
		// encoding/json renders an empty array with no inner newline.
		suffix = "]\n}\n"
		if !s.indent {
			suffix = "]}\n"
		}
	}
	if _, err := fmt.Fprintf(s.w, prefix, s.order.total, s.failed); err != nil {
		return err
	}
	if s.count > 0 {
		if s.indent {
			if _, err := io.WriteString(s.w, "\n"); err != nil {
				return err
			}
		}
		if _, err := io.Copy(s.w, s.spill); err != nil {
			return fmt.Errorf("sweep: JSON stream: copying spill: %w", err)
		}
	}
	_, err := io.WriteString(s.w, suffix)
	return err
}

func (s *JSONStream) fail(err error) error {
	s.err = err
	return err
}

// Interface conformance.
var (
	_ StreamEmitter = (*CSVStream)(nil)
	_ StreamEmitter = (*JSONStream)(nil)
)
