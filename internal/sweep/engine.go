package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Metric is one named scalar result. Metrics are an ordered slice (not
// a map) so emitter output is byte-stable.
type Metric struct {
	Name  string
	Value float64
}

// Metrics is a scenario's ordered result set.
type Metrics []Metric

// Add appends a metric.
func (m *Metrics) Add(name string, v float64) { *m = append(*m, Metric{name, v}) }

// Get returns a metric by name.
func (m Metrics) Get(name string) (float64, bool) {
	for _, x := range m {
		if x.Name == name {
			return x.Value, true
		}
	}
	return 0, false
}

// Result is one scenario's outcome. Exactly one of Metrics/Err is
// meaningful; Cached marks results served from the engine cache or
// deduplicated within a campaign.
type Result struct {
	Scenario Scenario
	ID       string
	Metrics  Metrics
	Err      error
	Cached   bool
}

// Runner executes one scenario.
type Runner func(Scenario) (Metrics, error)

// Campaign is an executed grid: results in deterministic grid order.
type Campaign struct {
	Results []Result
	// CacheErr aggregates persistence failures from the engine's
	// second-tier Cache (store writes). It is separate from scenario
	// errors: the simulations succeeded, but their results were not
	// durably recorded, so a resumed campaign would re-run them.
	CacheErr error
}

// Failed returns the results that carry errors.
func (c Campaign) Failed() []Result {
	var out []Result
	for _, r := range c.Results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Err aggregates per-scenario failures (nil when everything succeeded).
// Scenario errors are isolated — a campaign always completes — so this
// is a summary, not an abort signal.
func (c Campaign) Err() error {
	failed := c.Failed()
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("sweep: %d of %d scenarios failed; first: %s (%s): %w",
		len(failed), len(c.Results), failed[0].Scenario.Label(), failed[0].ID, failed[0].Err)
}

// MetricNames returns the union of metric names in first-appearance
// order across results (grid order), which is deterministic.
func (c Campaign) MetricNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, r := range c.Results {
		for _, m := range r.Metrics {
			if !seen[m.Name] {
				seen[m.Name] = true
				names = append(names, m.Name)
			}
		}
	}
	return names
}

// Cache is the engine's optional second result tier behind the
// in-memory memoizer — typically a persistent, content-addressed store
// (internal/store) that survives the process and makes campaigns
// resumable. Get is consulted once per novel config hash before the
// scenario is scheduled; Put is called once per freshly simulated
// success. Implementations must be safe for concurrent use.
type Cache interface {
	Get(Scenario) (Metrics, bool)
	Put(Scenario, Metrics) error
}

// Engine executes campaigns on a bounded worker pool with per-scenario
// result caching. The zero value is usable; Workers defaults to
// runtime.GOMAXPROCS(0).
type Engine struct {
	// Workers bounds concurrent scenario executions.
	Workers int
	// Cache, when set, is the persistent second tier behind the
	// in-memory memoizer: hits skip simulation entirely (Result.Cached),
	// fresh successes are written through. Put errors do not fail
	// scenarios; they aggregate into Campaign.CacheErr.
	Cache Cache
	// Progress, when set, is called once per finalized scenario (from
	// worker goroutines, serialized by the engine, without holding the
	// engine lock — calling back into the engine is safe). Completion
	// order is nondeterministic; only emitter output is ordered.
	Progress func(done, total int, r Result)

	mu    sync.Mutex
	cache map[string]Metrics // scenario ID -> successful metrics
	done  int

	progressMu sync.Mutex // serializes Progress callbacks
}

// NewEngine returns an engine with the given worker bound (<=0 means
// GOMAXPROCS).
func NewEngine(workers int) *Engine { return &Engine{Workers: workers} }

// CacheSize reports how many scenario results the engine holds.
func (e *Engine) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Run expands the grid and executes it.
func (e *Engine) Run(g Grid, run Runner) Campaign {
	return e.RunScenarios(g.Expand(), run)
}

// RunScenarios executes an explicit scenario list. Scenarios run
// concurrently (bounded by Workers) but the returned results are in
// input order. A scenario whose config hash was already executed — in
// this campaign, a previous one on the same engine, or (when Cache is
// set) any prior process that wrote the persistent store — is served
// from cache; a scenario that fails is reported in its Result without
// aborting the rest.
func (e *Engine) RunScenarios(scenarios []Scenario, run Runner) Campaign {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(scenarios)
	results := make([]Result, total)
	e.mu.Lock()
	if e.cache == nil {
		e.cache = map[string]Metrics{}
	}
	e.done = 0
	// Partition: cache hits finalize immediately, the first occurrence
	// of each novel ID executes, repeats copy from the first.
	first := map[string]int{}
	var exec, hits []int
	for i, s := range scenarios {
		id := s.ID()
		results[i] = Result{Scenario: s, ID: id}
		if _, dup := first[id]; dup {
			continue // filled after the pool drains
		}
		first[id] = i
		if m, hit := e.cache[id]; hit {
			results[i].Metrics = m
			results[i].Cached = true
			hits = append(hits, i)
			continue
		}
		exec = append(exec, i)
	}
	e.mu.Unlock()

	// Second tier: probe the persistent cache for memoizer misses,
	// outside the engine lock (Cache implementations take their own
	// locks and may be arbitrary user code). Warm hits skip simulation
	// and seed the memoizer for in-campaign duplicates.
	if e.Cache != nil {
		cold := exec[:0]
		for _, i := range exec {
			if m, hit := e.Cache.Get(scenarios[i]); hit {
				results[i].Metrics = m
				results[i].Cached = true
				e.mu.Lock()
				e.cache[results[i].ID] = m
				e.mu.Unlock()
				hits = append(hits, i)
				continue
			}
			cold = append(cold, i)
		}
		exec = cold
	}
	for _, i := range hits {
		e.progress(total, results[i])
	}

	var putMu sync.Mutex
	var putErrs []error
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, i := range exec {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, err := runSafe(run, scenarios[i])
			e.mu.Lock()
			results[i].Metrics, results[i].Err = m, err
			if err == nil {
				// Errors are not cached: a retried campaign re-runs them.
				e.cache[results[i].ID] = m
			}
			r := results[i]
			e.mu.Unlock()
			if err == nil && e.Cache != nil {
				// Write-through to the persistent tier, outside the
				// engine lock. A failed Put degrades resumability, not
				// the scenario: the result stands, the error aggregates.
				if perr := e.Cache.Put(scenarios[i], m); perr != nil {
					putMu.Lock()
					putErrs = append(putErrs, fmt.Errorf("sweep: store %s (%s): %w",
						r.ID, scenarios[i].Label(), perr))
					putMu.Unlock()
				}
			}
			e.progress(total, r)
		}(i)
	}
	wg.Wait()

	for i := range scenarios {
		j := first[results[i].ID]
		if j == i {
			continue
		}
		results[i].Metrics = results[j].Metrics
		results[i].Err = results[j].Err
		results[i].Cached = true
		e.progress(total, results[i])
	}
	return Campaign{Results: results, CacheErr: errors.Join(putErrs...)}
}

// progress finalizes one scenario's done count and fires the Progress
// callback outside the engine lock (so callbacks may use the engine)
// but serialized, so terminal output does not interleave.
func (e *Engine) progress(total int, r Result) {
	e.mu.Lock()
	e.done++
	done := e.done
	cb := e.Progress
	e.mu.Unlock()
	if cb != nil {
		e.progressMu.Lock()
		cb(done, total, r)
		e.progressMu.Unlock()
	}
}

// runSafe isolates runner panics into per-scenario errors so one bad
// scenario cannot kill the campaign.
func runSafe(run Runner, s Scenario) (m Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("sweep: scenario %s (%s) panicked: %v", s.ID(), s.Label(), r)
		}
	}()
	return run(s)
}

// ForEach runs fn(0..n-1) on a bounded worker pool and returns the
// lowest-index error (deterministic regardless of completion order).
// It is the shared replacement for the ad-hoc WaitGroup+semaphore
// loops the experiment drivers used to carry.
func ForEach(workers, n int, fn func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("sweep: task %d panicked: %v", i, r)
				}
			}()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
