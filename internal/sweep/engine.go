package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Metric is one named scalar result. Metrics are an ordered slice (not
// a map) so emitter output is byte-stable.
type Metric struct {
	Name  string
	Value float64
}

// Metrics is a scenario's ordered result set.
type Metrics []Metric

// Add appends a metric.
func (m *Metrics) Add(name string, v float64) { *m = append(*m, Metric{name, v}) }

// Get returns a metric by name.
func (m Metrics) Get(name string) (float64, bool) {
	for _, x := range m {
		if x.Name == name {
			return x.Value, true
		}
	}
	return 0, false
}

// Result is one scenario's outcome. Exactly one of Metrics/Err is
// meaningful; Cached marks results served from the engine cache or
// deduplicated within a campaign.
type Result struct {
	Scenario Scenario
	ID       string
	Metrics  Metrics
	Err      error
	Cached   bool
}

// Runner executes one scenario.
type Runner func(Scenario) (Metrics, error)

// RunnerContext is the cancellation-aware runner form: the engine
// passes it the campaign context so a long-running simulation can
// observe cancellation (returning early with ctx.Err() is fine — the
// scenario is then a failure, not a cached result). Runners that
// ignore the context keep the engine's coarser guarantee: running
// cells complete, unstarted cells never start.
type RunnerContext func(context.Context, Scenario) (Metrics, error)

// IgnoreContext adapts a context-free Runner to the RunnerContext
// form. The adapted runner is not interruptible mid-scenario;
// cancellation still stops unstarted cells at dispatch.
func IgnoreContext(run Runner) RunnerContext {
	return func(_ context.Context, s Scenario) (Metrics, error) { return run(s) }
}

// ErrUnstarted marks a scenario a cancelled campaign never started:
// its Result carries an error wrapping both ErrUnstarted and the
// context's error (context.Canceled or context.DeadlineExceeded), so
// callers can tell "skipped because the campaign was cancelled" apart
// from genuine simulation failures with errors.Is.
var ErrUnstarted = errors.New("not started: campaign cancelled")

// Campaign is an executed grid: results in deterministic grid order.
type Campaign struct {
	Results []Result
	// CacheErr aggregates persistence failures from the engine's
	// second-tier Cache (store writes). It is separate from scenario
	// errors: the simulations succeeded, but their results were not
	// durably recorded, so a resumed campaign would re-run them.
	CacheErr error
}

// Failed returns the results that carry errors.
func (c Campaign) Failed() []Result {
	var out []Result
	for _, r := range c.Results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Unstarted returns the results of scenarios a cancelled campaign
// never started (their errors wrap ErrUnstarted).
func (c Campaign) Unstarted() []Result {
	var out []Result
	for _, r := range c.Results {
		if errors.Is(r.Err, ErrUnstarted) {
			out = append(out, r)
		}
	}
	return out
}

// Interrupted reports whether the campaign was cut short by context
// cancellation — i.e. at least one scenario never started. Completed
// results are still valid (and were written through to the Cache).
func (c Campaign) Interrupted() bool { return len(c.Unstarted()) > 0 }

// Err aggregates per-scenario failures (nil when everything succeeded).
// Scenario errors are isolated — a campaign always completes — so this
// is a summary, not an abort signal.
func (c Campaign) Err() error {
	failed := c.Failed()
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("sweep: %d of %d scenarios failed; first: %s (%s): %w",
		len(failed), len(c.Results), failed[0].Scenario.Label(), failed[0].ID, failed[0].Err)
}

// MetricNames returns the union of metric names in first-appearance
// order across results (grid order), which is deterministic.
func (c Campaign) MetricNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, r := range c.Results {
		for _, m := range r.Metrics {
			if !seen[m.Name] {
				seen[m.Name] = true
				names = append(names, m.Name)
			}
		}
	}
	return names
}

// Cache is the engine's optional second result tier behind the
// in-memory memoizer — typically a persistent, content-addressed store
// (internal/store) that survives the process and makes campaigns
// resumable. Get is consulted once per novel config hash before the
// scenario is scheduled; Put is called once per freshly simulated
// success. Implementations must be safe for concurrent use.
type Cache interface {
	Get(Scenario) (Metrics, bool)
	Put(Scenario, Metrics) error
}

// Engine executes campaigns with per-scenario result caching. The
// host side — grid expansion, deduplication, the in-memory memoizer,
// the persistent second-tier cache, write-through, progress and
// deterministic result ordering — always runs in-process; the
// execution of cold cells is delegated to a pluggable Backend. The
// zero value is usable: execution defaults to a LocalBackend over the
// per-call runner, with Workers defaulting to runtime.GOMAXPROCS(0).
type Engine struct {
	// Workers bounds concurrent scenario executions of the default
	// local backend. It is ignored when Backend is set.
	Workers int
	// Backend, when set, executes the campaign's cold cells in place
	// of the default in-process pool — e.g. a dispatch fleet sharding
	// them across remote sweepd workers. The per-call runner is then
	// unused. Results flow back through the same memoization,
	// write-through and progress paths as local execution, so emitter
	// output and store contents are identical either way.
	Backend Backend
	// Cache, when set, is the persistent second tier behind the
	// in-memory memoizer: hits skip simulation entirely (Result.Cached),
	// fresh successes are written through. Put errors do not fail
	// scenarios; they aggregate into Campaign.CacheErr.
	Cache Cache
	// Progress, when set, is called once per finalized scenario (from
	// worker goroutines, serialized by the engine, without holding the
	// engine lock — calling back into the engine is safe). Completion
	// order is nondeterministic; only emitter output is ordered.
	Progress func(done, total int, r Result)

	mu    sync.Mutex
	cache map[string]Metrics // scenario ID -> successful metrics

	progressMu sync.Mutex // serializes Progress callbacks
}

// run is the per-campaign state: its own done counter, so two
// campaigns running concurrently on one engine (as sweepd does across
// expand requests) report independent Progress(done, total) counts,
// plus the campaign's own progress hook (RunScenariosContextProgress),
// which lets concurrent campaigns on a shared engine stream their
// completions to different consumers.
type run struct {
	mu       sync.Mutex
	done     int
	total    int
	progress func(done, total int, r Result)
}

// NewEngine returns an engine with the given worker bound (<=0 means
// GOMAXPROCS).
func NewEngine(workers int) *Engine { return &Engine{Workers: workers} }

// CacheSize reports how many scenario results the engine holds.
func (e *Engine) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Run expands the grid and executes it.
func (e *Engine) Run(g Grid, run Runner) Campaign {
	return e.RunContext(context.Background(), g, IgnoreContext(run))
}

// RunContext expands the grid and executes it under ctx: cancellation
// stops scheduling cold cells (see RunScenariosContext).
func (e *Engine) RunContext(ctx context.Context, g Grid, run RunnerContext) Campaign {
	return e.RunScenariosContext(ctx, g.Expand(), run)
}

// RunScenarios executes an explicit scenario list without a
// cancellation point (context.Background); see RunScenariosContext.
func (e *Engine) RunScenarios(scenarios []Scenario, run Runner) Campaign {
	return e.RunScenariosContext(context.Background(), scenarios, IgnoreContext(run))
}

// RunScenariosContextProgress is RunScenariosContext with a
// per-campaign progress hook: progress is called once per finalized
// scenario (serialized, after the engine-level Progress callback, with
// the same no-engine-lock guarantee). Two campaigns sharing one engine
// — sweepd serving concurrent expand requests — can each stream their
// completions to their own response without racing on the engine-level
// Progress field.
func (e *Engine) RunScenariosContextProgress(ctx context.Context, scenarios []Scenario, runner RunnerContext, progress func(done, total int, r Result)) Campaign {
	return e.runScenarios(ctx, scenarios, runner, progress)
}

// RunScenariosContext executes an explicit scenario list. Scenarios
// run concurrently (bounded by Workers) but the returned results are
// in input order. A scenario whose config hash was already executed —
// in this campaign, a previous one on the same engine, or (when Cache
// is set) any prior process that wrote the persistent store — is
// served from cache; a scenario that fails is reported in its Result
// without aborting the rest.
//
// Cancelling ctx stops the campaign scheduling new work — at the
// dispatch loop, at the worker-slot acquire, and between second-tier
// cache probes — and the call returns promptly with partial results:
// already-running scenarios complete (and write through to Cache as
// usual), already-finalized results stand, and every never-started
// scenario carries an error wrapping ErrUnstarted and ctx.Err(). The
// campaign still contains one finalized Result per input scenario.
func (e *Engine) RunScenariosContext(ctx context.Context, scenarios []Scenario, runner RunnerContext) Campaign {
	return e.runScenarios(ctx, scenarios, runner, nil)
}

func (e *Engine) runScenarios(ctx context.Context, scenarios []Scenario, runner RunnerContext, progress func(done, total int, r Result)) Campaign {
	if ctx == nil {
		//lint:allow ctxflow nil-ctx compat defaulting for the context-free Run/RunScenarios forms
		ctx = context.Background()
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(scenarios)
	results := make([]Result, total)
	prog := &run{total: total, progress: progress}
	e.mu.Lock()
	if e.cache == nil {
		e.cache = map[string]Metrics{}
	}
	// Partition: cache hits finalize immediately, the first occurrence
	// of each novel ID executes, repeats copy from the first.
	first := map[string]int{}
	var exec, hits []int
	for i, s := range scenarios {
		id := s.ID()
		results[i] = Result{Scenario: s, ID: id}
		if _, dup := first[id]; dup {
			continue // filled after the pool drains
		}
		first[id] = i
		if m, hit := e.cache[id]; hit {
			results[i].Metrics = m
			results[i].Cached = true
			hits = append(hits, i)
			continue
		}
		exec = append(exec, i)
	}
	e.mu.Unlock()

	// Second tier: probe the persistent cache for memoizer misses,
	// outside the engine lock (Cache implementations take their own
	// locks and may be arbitrary user code). Warm hits skip simulation
	// and seed the memoizer for in-campaign duplicates. A cancelled
	// campaign stops probing: the rest go to the dispatch loop, which
	// finalizes them as unstarted.
	if e.Cache != nil {
		cold := make([]int, 0, len(exec))
		for n, i := range exec {
			if ctx.Err() != nil {
				cold = append(cold, exec[n:]...)
				break
			}
			if m, hit := e.Cache.Get(scenarios[i]); hit {
				results[i].Metrics = m
				results[i].Cached = true
				e.mu.Lock()
				e.cache[results[i].ID] = m
				e.mu.Unlock()
				hits = append(hits, i)
				continue
			}
			cold = append(cold, i)
		}
		exec = cold
	}
	for _, i := range hits {
		e.progress(prog, results[i])
	}

	var putMu sync.Mutex
	var putErrs []error
	if len(exec) > 0 {
		// Execution: the cold cells go to the backend as one batch,
		// indexed 0..len(exec)-1. The report callback is the single
		// funnel back into the engine — memoization, write-through and
		// progress — and it is idempotent (first report per cell wins),
		// so backends that re-dispatch work cannot double-finalize.
		cold := make([]Scenario, len(exec))
		for k, i := range exec {
			cold[k] = scenarios[i]
		}
		reported := make([]bool, len(exec))
		report := func(k int, m Metrics, err error) {
			if k < 0 || k >= len(exec) {
				return // defensive: a buggy backend must not panic the campaign
			}
			i := exec[k]
			e.mu.Lock()
			if reported[k] {
				e.mu.Unlock()
				return
			}
			reported[k] = true
			results[i].Metrics, results[i].Err = m, err
			if err == nil {
				// Errors are not cached: a retried campaign re-runs them.
				e.cache[results[i].ID] = m
			}
			r := results[i]
			e.mu.Unlock()
			if err == nil && e.Cache != nil {
				// Write-through to the persistent tier, outside the
				// engine lock — unconditionally, even after cancellation:
				// a completed simulation is durable work a resumed
				// campaign must not repeat. This holds for remote
				// backends too: metrics computed on a worker land in the
				// local store, so a distributed campaign is resumable
				// exactly like a local one. A failed Put degrades
				// resumability, not the scenario: the result stands, the
				// error aggregates.
				if perr := e.Cache.Put(scenarios[i], m); perr != nil {
					putMu.Lock()
					putErrs = append(putErrs, fmt.Errorf("sweep: store %s (%s): %w",
						r.ID, scenarios[i].Label(), perr))
					putMu.Unlock()
				}
			}
			e.progress(prog, r)
		}
		backend := e.Backend
		if backend == nil {
			backend = &LocalBackend{Workers: workers, Run: runner}
		}
		panicErr := executeSafe(ctx, backend, cold, report)
		// Finalize anything the backend failed to report: under a
		// cancelled context that is normal (unstarted cells), otherwise
		// it is a backend bug (or panic) that must surface as a
		// per-scenario failure, never as a silently absent result.
		for k, i := range exec {
			e.mu.Lock()
			done := reported[k]
			e.mu.Unlock()
			if done {
				continue
			}
			var err error
			switch {
			case panicErr != nil:
				err = fmt.Errorf("sweep: backend panicked executing %s (%s): %w",
					results[i].ID, scenarios[i].Label(), panicErr)
			case ctx.Err() != nil:
				err = unstartedErr(ctx, scenarios[i], results[i].ID)
			default:
				err = fmt.Errorf("sweep: backend never reported scenario %s (%s)",
					results[i].ID, scenarios[i].Label())
			}
			report(k, nil, err)
		}
	}

	for i := range scenarios {
		j := first[results[i].ID]
		if j == i {
			continue
		}
		results[i].Metrics = results[j].Metrics
		results[i].Err = results[j].Err
		results[i].Cached = true
		e.progress(prog, results[i])
	}
	return Campaign{Results: results, CacheErr: errors.Join(putErrs...)}
}

// unstartedErr builds the distinguished error a cancelled campaign
// attaches to every scenario it never started: errors.Is sees both
// ErrUnstarted and the context error (context.Canceled or
// context.DeadlineExceeded).
func unstartedErr(ctx context.Context, s Scenario, id string) error {
	return fmt.Errorf("sweep: scenario %s (%s) %w: %w", id, s.Label(), ErrUnstarted, ctx.Err())
}

// progress finalizes one scenario's done count and fires the Progress
// callback outside the engine lock (so callbacks may use the engine)
// but serialized, so terminal output does not interleave — including
// across concurrent campaigns, whose counts stay independent because
// the counter lives in per-run state.
func (e *Engine) progress(p *run, r Result) {
	p.mu.Lock()
	p.done++
	done := p.done
	p.mu.Unlock()
	e.mu.Lock()
	cb := e.Progress
	e.mu.Unlock()
	if cb == nil && p.progress == nil {
		return
	}
	e.progressMu.Lock()
	defer e.progressMu.Unlock()
	if cb != nil {
		cb(done, p.total, r)
	}
	if p.progress != nil {
		p.progress(done, p.total, r)
	}
}

// executeSafe runs one backend batch, isolating a backend panic into
// an error instead of killing the campaign: the engine finalizes the
// unreported cells with it.
func executeSafe(ctx context.Context, b Backend, scenarios []Scenario, report ReportFunc) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	b.Execute(ctx, scenarios, report)
	return nil
}

// runSafe isolates runner panics into per-scenario errors so one bad
// scenario cannot kill the campaign.
func runSafe(ctx context.Context, run RunnerContext, s Scenario) (m Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("sweep: scenario %s (%s) panicked: %v", s.ID(), s.Label(), r)
		}
	}()
	return run(ctx, s)
}

// ForEach runs fn(0..n-1) on a bounded worker pool and returns the
// lowest-index error (deterministic regardless of completion order).
// It is the shared replacement for the ad-hoc WaitGroup+semaphore
// loops the experiment drivers used to carry. It is the
// context-free compatibility form of ForEachContext.
func ForEach(workers, n int, fn func(int) error) error {
	return ForEachContext(context.Background(), workers, n, fn)
}

// ForEachContext is ForEach under a context: cancellation stops
// scheduling new tasks — running ones complete — and every task that
// never started reports ctx's error, so the lowest-index-error
// contract stays deterministic.
func ForEachContext(ctx context.Context, workers, n int, fn func(int) error) error {
	if ctx == nil {
		//lint:allow ctxflow nil-ctx compat defaulting for the context-free ForEach form
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("sweep: task %d: %w", i, err)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = fmt.Errorf("sweep: task %d: %w", i, ctx.Err())
				return
			}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("sweep: task %d panicked: %v", i, r)
				}
			}()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
