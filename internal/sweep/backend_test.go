package sweep

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// TestLocalBackendIsDefault: an engine without an explicit Backend
// must behave exactly as before the dispatch refactor — cold cells run
// on the in-process pool via the per-call runner.
func TestLocalBackendIsDefault(t *testing.T) {
	var runs atomic.Int64
	eng := NewEngine(2)
	c := eng.RunScenarios(testScenarios(4), func(s Scenario) (Metrics, error) {
		runs.Add(1)
		var m Metrics
		m.Add("v", float64(s.Ranks))
		return m, nil
	})
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 4 {
		t.Fatalf("runner executed %d times, want 4", runs.Load())
	}
}

// reportingBackend records what the engine hands a backend and reports
// canned outcomes.
type reportingBackend struct {
	got  [][]Scenario
	skip int // leave the first N cells unreported (contract violation)
}

func (b *reportingBackend) Execute(_ context.Context, scs []Scenario, report ReportFunc) {
	b.got = append(b.got, scs)
	for i := range scs {
		if i < b.skip {
			continue
		}
		var m Metrics
		m.Add("v", float64(scs[i].Ranks))
		report(i, m, nil)
		// Duplicate and out-of-range reports must be harmless.
		report(i, nil, errors.New("duplicate report"))
		report(len(scs)+7, nil, errors.New("out of range"))
	}
}

// TestEngineRoutesColdCellsThroughBackend: only memoizer/cache misses
// reach the backend, results land in grid order, and duplicate or
// out-of-range reports cannot corrupt the campaign.
func TestEngineRoutesColdCellsThroughBackend(t *testing.T) {
	b := &reportingBackend{}
	eng := NewEngine(0)
	eng.Backend = b
	scs := testScenarios(3)
	scs = append(scs, scs[0]) // in-campaign duplicate: must not reach the backend
	c := eng.RunScenarios(scs, func(Scenario) (Metrics, error) {
		t.Error("per-call runner executed despite an explicit backend")
		return nil, nil
	})
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 1 || len(b.got[0]) != 3 {
		t.Fatalf("backend saw batches %v, want one batch of the 3 distinct cold cells", b.got)
	}
	for i, r := range c.Results {
		if v, _ := r.Metrics.Get("v"); v != float64(scs[i].Ranks) {
			t.Errorf("result %d metric v = %v, want %v", i, v, float64(scs[i].Ranks))
		}
	}
	if !c.Results[3].Cached {
		t.Error("duplicate scenario not served from the memoizer")
	}

	// A second campaign on the same engine is all-warm: the backend
	// must not be consulted at all.
	before := len(b.got)
	if err := eng.RunScenarios(testScenarios(3), nil).Err(); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != before {
		t.Error("warm campaign reached the backend")
	}
}

// TestEngineFinalizesUnreportedCells: a backend that drops cells on
// the floor (a bug) must yield loud per-scenario failures, never
// silently absent results.
func TestEngineFinalizesUnreportedCells(t *testing.T) {
	eng := NewEngine(0)
	eng.Backend = &reportingBackend{skip: 2}
	c := eng.RunScenarios(testScenarios(4), nil)
	var failed int
	for _, r := range c.Results {
		if r.Err != nil {
			failed++
			if !strings.Contains(r.Err.Error(), "backend never reported") {
				t.Errorf("unreported cell error %v, want a backend-bug marker", r.Err)
			}
		}
	}
	if failed != 2 {
		t.Fatalf("%d failed results, want the 2 unreported cells", failed)
	}
}

type panickyBackend struct{}

func (panickyBackend) Execute(context.Context, []Scenario, ReportFunc) { panic("backend exploded") }

// TestEnginePanickingBackend: a backend panic is isolated into
// per-scenario errors carrying the panic value.
func TestEnginePanickingBackend(t *testing.T) {
	eng := NewEngine(0)
	eng.Backend = panickyBackend{}
	c := eng.RunScenarios(testScenarios(2), nil)
	for _, r := range c.Results {
		if r.Err == nil || !strings.Contains(r.Err.Error(), "backend exploded") {
			t.Errorf("result %s error %v, want the backend panic", r.ID, r.Err)
		}
	}
}

// TestEngineWritesBackendResultsThrough: results computed by a backend
// (i.e. remotely) must write through to the persistent tier exactly
// like local ones.
func TestEngineWritesBackendResultsThrough(t *testing.T) {
	cache := newFakeCache()
	eng := NewEngine(0)
	eng.Backend = &reportingBackend{}
	eng.Cache = cache
	if err := eng.RunScenarios(testScenarios(3), nil).Err(); err != nil {
		t.Fatal(err)
	}
	if n := cache.puts.Load(); n != 3 {
		t.Fatalf("persistent tier received %d writes after a backend campaign, want 3", n)
	}
}

// TestLocalBackendCancellation: the extracted local pool preserves the
// engine's cancellation contract — unstarted cells carry ErrUnstarted
// plus the context error.
func TestLocalBackendCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := &LocalBackend{Workers: 2, Run: func(context.Context, Scenario) (Metrics, error) {
		t.Error("runner executed under a cancelled context")
		return nil, nil
	}}
	var reports atomic.Int64
	scs := testScenarios(3)
	b.Execute(ctx, scs, func(i int, m Metrics, err error) {
		reports.Add(1)
		if !errors.Is(err, ErrUnstarted) || !errors.Is(err, context.Canceled) {
			t.Errorf("cell %d error %v, want ErrUnstarted wrapping context.Canceled", i, err)
		}
	})
	if reports.Load() != 3 {
		t.Fatalf("%d reports, want 3 (every cell accounted for)", reports.Load())
	}
}

// testScenarios builds n distinct scenarios.
func testScenarios(n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = Scenario{Machine: "m", Ranks: i + 1}
	}
	return out
}
