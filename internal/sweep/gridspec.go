package sweep

import "fmt"

// GridSpec is the names-based declaration of a campaign shared by
// cmd/sweep's flags and sweepd's POST /v1/expand JSON body: axes carry
// machine/workload/mode/mesh values by name, and Resolve validates and
// expands them through the same helpers on both surfaces, so the CLI
// and the HTTP API accept identical grids (satellite of the backend
// refactor: the two used to validate independently).
//
// A spec declares work in exactly one of two forms:
//
//   - Axis form: the cross product of the axis fields (empty axes mean
//     the runner default, as in Grid).
//   - Explicit form: Scenarios lists canonical scenario key strings
//     (Scenario.Key), the dispatch protocol's way of handing a worker
//     cells it has never seen. No axis field may be set alongside.
type GridSpec struct {
	Machines  []string `json:"machines,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Modes     []string `json:"modes,omitempty"`
	Ranks     []int    `json:"ranks,omitempty"`
	Meshes    []string `json:"meshes,omitempty"`
	Threads   []int    `json:"threads,omitempty"`
	MaxRows   int      `json:"maxrows,omitempty"`
	Seed      uint64   `json:"seed,omitempty"`
	// Scenarios, when non-empty, selects the explicit form: canonical
	// scenario keys to execute verbatim. Mutually exclusive with every
	// axis field.
	Scenarios []string `json:"scenarios,omitempty"`
}

// IsExplicit reports whether the spec is in explicit-scenario form.
func (g GridSpec) IsExplicit() bool { return len(g.Scenarios) > 0 }

// axesSet reports whether any axis field carries a value.
func (g GridSpec) axesSet() bool {
	return len(g.Machines)+len(g.Workloads)+len(g.Modes)+len(g.Ranks)+
		len(g.Meshes)+len(g.Threads) > 0 || g.MaxRows != 0 || g.Seed != 0
}

// Resolve validates the axis form and expands it into a Grid. The
// machine and workload axes live in registries this package cannot see
// (internal/workload imports sweep), so their validator is injected —
// both the CLI and sweepd pass workload.ValidateAxes. An explicit-form
// spec does not resolve to a grid; use Explicit.
func (g GridSpec) Resolve(validateAxes func(machines, workloads []string) error) (Grid, error) {
	if g.IsExplicit() {
		return Grid{}, fmt.Errorf("sweep: spec lists explicit scenarios; it does not expand as a grid")
	}
	grid := Grid{
		Machines:  g.Machines,
		Workloads: g.Workloads,
		Ranks:     g.Ranks,
		Threads:   g.Threads,
		MaxRows:   g.MaxRows,
		Seed:      g.Seed,
	}
	if validateAxes != nil {
		if err := validateAxes(g.Machines, g.Workloads); err != nil {
			return Grid{}, err
		}
	}
	var err error
	if grid.Modes, err = ModesByName(g.Modes); err != nil {
		return Grid{}, err
	}
	if grid.Meshes, err = ParseMeshes(g.Meshes); err != nil {
		return Grid{}, err
	}
	return grid, nil
}

// ExplicitSpec builds the explicit-scenario form of a spec from
// resolved scenarios — the inverse of Explicit. Callers that compute a
// cell set instead of declaring a grid (the adaptive search driver's
// refinement waves, dispatch handing cells to a worker) round-trip
// through it: every Scenario.Key, including refined numeric axis
// values no preset list contains, parses back to an identical
// scenario.
func ExplicitSpec(scenarios []Scenario) GridSpec {
	keys := make([]string, len(scenarios))
	for i, s := range scenarios {
		keys[i] = s.Key()
	}
	return GridSpec{Scenarios: keys}
}

// Explicit parses the explicit form back into scenarios, rejecting
// malformed keys and any axis field set alongside (a spec that mixes
// the two forms is ambiguous, so it is an error, not a merge).
func (g GridSpec) Explicit() ([]Scenario, error) {
	if !g.IsExplicit() {
		return nil, fmt.Errorf("sweep: spec lists no explicit scenarios")
	}
	if g.axesSet() {
		return nil, fmt.Errorf("sweep: explicit scenarios cannot be combined with grid axes")
	}
	out := make([]Scenario, 0, len(g.Scenarios))
	for i, key := range g.Scenarios {
		s, err := ParseKey(key)
		if err != nil {
			return nil, fmt.Errorf("sweep: scenario %d: %w", i, err)
		}
		out = append(out, s)
	}
	return out, nil
}
