package sweep

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeCache is an in-memory sweep.Cache with call counting and an
// injectable Put failure.
type fakeCache struct {
	mu     sync.Mutex
	m      map[string]Metrics
	gets   atomic.Int64
	puts   atomic.Int64
	putErr error
}

func newFakeCache() *fakeCache { return &fakeCache{m: map[string]Metrics{}} }

func (c *fakeCache) Get(s Scenario) (Metrics, bool) {
	c.gets.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.m[s.ID()]
	return m, ok
}

func (c *fakeCache) Put(s Scenario, m Metrics) error {
	c.puts.Add(1)
	if c.putErr != nil {
		return c.putErr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[s.ID()] = m
	return nil
}

func cacheGrid() Grid {
	return Grid{
		Machines: []string{"a", "b"},
		Modes:    []Mode{{Name: "m1"}, {Name: "m2"}},
	}
}

func countingRunner(calls *atomic.Int64) Runner {
	return func(s Scenario) (Metrics, error) {
		calls.Add(1)
		var m Metrics
		m.Add("v", float64(len(s.Machine)+len(s.Mode.Name)))
		return m, nil
	}
}

// TestCacheTierMakesCampaignsResumable is the heart of resumability: a
// fresh engine (fresh process) backed by a warm cache must complete the
// whole campaign without one runner invocation, and produce the same
// results.
func TestCacheTierMakesCampaignsResumable(t *testing.T) {
	cache := newFakeCache()
	var cold atomic.Int64
	c1 := (&Engine{Cache: cache}).Run(cacheGrid(), countingRunner(&cold))
	if err := c1.Err(); err != nil {
		t.Fatal(err)
	}
	if cold.Load() != 4 {
		t.Fatalf("cold run executed %d scenarios, want 4", cold.Load())
	}
	if cache.puts.Load() != 4 {
		t.Fatalf("cold run wrote %d cache entries, want 4", cache.puts.Load())
	}

	var warm atomic.Int64
	c2 := (&Engine{Cache: cache}).Run(cacheGrid(), countingRunner(&warm))
	if err := c2.Err(); err != nil {
		t.Fatal(err)
	}
	if warm.Load() != 0 {
		t.Fatalf("warm run executed %d scenarios, want 0", warm.Load())
	}
	if len(c1.Results) != len(c2.Results) {
		t.Fatalf("result counts differ")
	}
	for i := range c1.Results {
		if !c2.Results[i].Cached {
			t.Errorf("warm result %d not marked Cached", i)
		}
		if fmt.Sprint(c1.Results[i].Metrics) != fmt.Sprint(c2.Results[i].Metrics) {
			t.Errorf("warm result %d metrics differ", i)
		}
	}
	// Warm hits must not be written back (Put stays at 4).
	if cache.puts.Load() != 4 {
		t.Fatalf("warm run wrote %d extra cache entries", cache.puts.Load()-4)
	}
}

// TestMemoizerShadowsCacheTier: within one engine, a repeated campaign
// is served by the in-memory tier without consulting the persistent one
// again.
func TestMemoizerShadowsCacheTier(t *testing.T) {
	cache := newFakeCache()
	eng := &Engine{Cache: cache}
	var calls atomic.Int64
	eng.Run(cacheGrid(), countingRunner(&calls))
	probes := cache.gets.Load()
	eng.Run(cacheGrid(), countingRunner(&calls))
	if calls.Load() != 4 {
		t.Fatalf("re-run executed %d fresh scenarios, want 0 extra (4 total)", calls.Load())
	}
	if cache.gets.Load() != probes {
		t.Fatalf("re-run probed the persistent tier %d more times; memoizer should shadow it",
			cache.gets.Load()-probes)
	}
}

// TestCachePutErrorsAggregate: persistence failures must not fail
// scenarios, only surface on Campaign.CacheErr.
func TestCachePutErrorsAggregate(t *testing.T) {
	cache := newFakeCache()
	cache.putErr = errors.New("disk full")
	var calls atomic.Int64
	c := (&Engine{Cache: cache}).Run(cacheGrid(), countingRunner(&calls))
	if err := c.Err(); err != nil {
		t.Fatalf("scenario results polluted by cache failure: %v", err)
	}
	if c.CacheErr == nil || !errors.Is(c.CacheErr, cache.putErr) {
		t.Fatalf("CacheErr = %v, want aggregation of %v", c.CacheErr, cache.putErr)
	}
}

// TestFailedScenariosNotPersisted: errors stay out of the durable tier
// so a resumed campaign retries them.
func TestFailedScenariosNotPersisted(t *testing.T) {
	cache := newFakeCache()
	boom := errors.New("boom")
	c := (&Engine{Cache: cache}).Run(cacheGrid(), func(s Scenario) (Metrics, error) {
		if s.Machine == "a" {
			return nil, boom
		}
		var m Metrics
		m.Add("v", 1)
		return m, nil
	})
	if c.Err() == nil {
		t.Fatal("campaign with failures reported success")
	}
	if cache.puts.Load() != 2 {
		t.Fatalf("%d cache writes, want 2 (failures must not persist)", cache.puts.Load())
	}
	// The retry: failed scenarios re-execute, successes come warm.
	var retries atomic.Int64
	c2 := (&Engine{Cache: cache}).Run(cacheGrid(), func(s Scenario) (Metrics, error) {
		retries.Add(1)
		var m Metrics
		m.Add("v", 1)
		return m, nil
	})
	if err := c2.Err(); err != nil {
		t.Fatal(err)
	}
	if retries.Load() != 2 {
		t.Fatalf("resume executed %d scenarios, want exactly the 2 failed ones", retries.Load())
	}
}
