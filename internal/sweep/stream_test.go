package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// streamRunner extends echoRunner with the awkward cases the wire and
// emitters must survive: a NaN metric, a +Inf metric and a genuine
// failure.
func streamRunner(s Scenario) (Metrics, error) {
	if s.Machine == "m2" && s.Mode.Name == "a" && s.Ranks == 2 {
		return nil, errors.New("injected failure")
	}
	m, _ := echoRunner(s)
	if s.Machine == "m1" {
		m.Add("oddity", math.NaN())
	}
	if s.Machine == "m2" {
		m.Add("oddity", math.Inf(1))
	}
	return m, nil
}

// feedStream drives a StreamEmitter with the campaign's results in the
// given order and closes it.
func feedStream(t *testing.T, se StreamEmitter, c Campaign, order []int) {
	t.Helper()
	for _, i := range order {
		if err := se.Add(c.Results[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamEmittersByteIdentical: the incremental CSV and JSON
// emitters, fed results in arbitrary completion orders (including
// duplicates from in-campaign dedup and a late-appearing metric
// column), must produce final bytes identical to the buffered
// emitters rendering the completed campaign.
func TestStreamEmittersByteIdentical(t *testing.T) {
	scenarios := testGrid().Expand()
	// An in-campaign duplicate: the engine finalizes one Result per
	// input scenario, so the stream must accept the copy too.
	scenarios = append(scenarios, scenarios[3])
	c := NewEngine(4).RunScenarios(scenarios, streamRunner)

	wantCSV := emitBytes(t, CSVEmitter{}, c)
	wantJSONIndent := emitBytes(t, JSONEmitter{Indent: true}, c)
	wantJSONCompact := emitBytes(t, JSONEmitter{}, c)

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		order := rng.Perm(len(c.Results))
		if trial == 0 { // in order
			for i := range order {
				order[i] = i
			}
		}
		if trial == 1 { // fully reversed: worst-case reordering
			for i := range order {
				order[i] = len(order) - 1 - i
			}
		}

		var csvBuf bytes.Buffer
		cs, err := NewCSVStream(&csvBuf, scenarios)
		if err != nil {
			t.Fatal(err)
		}
		feedStream(t, cs, c, order)
		if !bytes.Equal(csvBuf.Bytes(), wantCSV) {
			t.Fatalf("trial %d: streamed CSV deviates from buffered:\nstream:\n%s\nbuffered:\n%s", trial, csvBuf.Bytes(), wantCSV)
		}

		for _, indent := range []bool{true, false} {
			want := wantJSONCompact
			if indent {
				want = wantJSONIndent
			}
			var jsonBuf bytes.Buffer
			js, err := NewJSONStream(&jsonBuf, scenarios, indent)
			if err != nil {
				t.Fatal(err)
			}
			feedStream(t, js, c, order)
			if !bytes.Equal(jsonBuf.Bytes(), want) {
				t.Fatalf("trial %d indent=%t: streamed JSON deviates from buffered:\nstream:\n%s\nbuffered:\n%s", trial, indent, jsonBuf.Bytes(), want)
			}
		}
	}
}

// TestStreamEmittersEmptyCampaign: the zero-scenario edge must match
// the buffered emitters too (header-only CSV, empty results array).
func TestStreamEmittersEmptyCampaign(t *testing.T) {
	c := Campaign{}
	var scenarios []Scenario
	var csvBuf bytes.Buffer
	cs, err := NewCSVStream(&csvBuf, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, cs, c, nil)
	if want := emitBytes(t, CSVEmitter{}, c); !bytes.Equal(csvBuf.Bytes(), want) {
		t.Errorf("empty CSV stream %q, want %q", csvBuf.Bytes(), want)
	}
	for _, indent := range []bool{true, false} {
		var jsonBuf bytes.Buffer
		js, err := NewJSONStream(&jsonBuf, scenarios, indent)
		if err != nil {
			t.Fatal(err)
		}
		feedStream(t, js, c, nil)
		if want := emitBytes(t, JSONEmitter{Indent: indent}, c); !bytes.Equal(jsonBuf.Bytes(), want) {
			t.Errorf("indent=%t: empty JSON stream %q, want %q", indent, jsonBuf.Bytes(), want)
		}
	}
}

// TestStreamBoundedMemory: the emitters hold only out-of-order
// completions — a feed whose displacement is bounded by a window w
// must never buffer more than w results, regardless of campaign size.
func TestStreamBoundedMemory(t *testing.T) {
	g := Grid{Machines: []string{"m0", "m1", "m2", "m3"}, Modes: []Mode{{Name: "a"}, {Name: "b"}},
		Ranks: []int{1, 2, 3}, Seed: 9}
	scenarios := g.Expand() // 24 cells
	c := NewEngine(4).RunScenarios(scenarios, echoRunner)

	const window = 4
	// Bounded out-of-orderness: swap within blocks of `window`.
	order := make([]int, len(c.Results))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(2))
	for b := 0; b+window <= len(order); b += window {
		rng.Shuffle(window, func(i, j int) { order[b+i], order[b+j] = order[b+j], order[b+i] })
	}

	var csvBuf, jsonBuf bytes.Buffer
	cs, err := NewCSVStream(&csvBuf, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	js, err := NewJSONStream(&jsonBuf, scenarios, true)
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, cs, c, order)
	feedStream(t, js, c, order)
	if got := cs.MaxBuffered(); got > window {
		t.Errorf("CSV stream buffered %d results for window-%d feed, want <= %d", got, window, window)
	}
	if got := js.MaxBuffered(); got > window {
		t.Errorf("JSON stream buffered %d results for window-%d feed, want <= %d", got, window, window)
	}
	if !bytes.Equal(csvBuf.Bytes(), emitBytes(t, CSVEmitter{}, c)) {
		t.Error("windowed CSV stream deviates from buffered emitter")
	}
}

// TestStreamIncompleteClose: a stream cut short must refuse to
// masquerade as a complete campaign.
func TestStreamIncompleteClose(t *testing.T) {
	scenarios := testGrid().Expand()
	c := NewEngine(2).RunScenarios(scenarios, echoRunner)
	var buf bytes.Buffer
	cs, err := NewCSVStream(&buf, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Add(c.Results[0]); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("Close after 1 of %d results: err = %v, want incomplete", len(scenarios), err)
	}
	js, err := NewJSONStream(&buf, scenarios, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := js.Close(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("JSON Close with no results: err = %v, want incomplete", err)
	}
}

// TestStreamRejectsForeignResult: a result that is not part of the
// declared grid is an error, not a silent extra row.
func TestStreamRejectsForeignResult(t *testing.T) {
	scenarios := testGrid().Expand()
	var buf bytes.Buffer
	cs, err := NewCSVStream(&buf, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	foreign := Scenario{Machine: "elsewhere", Seed: 1}
	if err := cs.Add(Result{Scenario: foreign, ID: foreign.ID()}); err == nil {
		t.Error("foreign result accepted")
	}
}

// TestJSONEmitterNonFinite is the regression lock for the NaN bugfix:
// a campaign containing NaN/Inf metrics — which the sweepd wire layer
// deliberately supports via IEEE-754 bits — must emit (the old code
// died with json: unsupported value), rendering non-finite values as a
// null decimal mirror plus authoritative bits, while finite metrics
// keep the historical {"name","value"} shape.
func TestJSONEmitterNonFinite(t *testing.T) {
	var m Metrics
	m.Add("nan", math.NaN())
	m.Add("ninf", math.Inf(-1))
	m.Add("finite", 1.5)
	s := Scenario{Machine: "m0", Mode: Mode{Name: "a"}, Seed: 1}
	c := Campaign{Results: []Result{{Scenario: s, ID: s.ID(), Metrics: m}}}

	out := emitBytes(t, JSONEmitter{Indent: true}, c)
	var doc struct {
		Results []struct {
			Metrics []struct {
				Name  string   `json:"name"`
				Value *float64 `json:"value"`
				Bits  string   `json:"bits"`
			} `json:"metrics"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, out)
	}
	got := doc.Results[0].Metrics
	if got[0].Value != nil || got[0].Bits == "" {
		t.Errorf("NaN metric = %+v, want null value with bits", got[0])
	}
	if bits := got[1].Bits; bits != "fff0000000000000" {
		t.Errorf("-Inf bits = %q, want fff0000000000000", bits)
	}
	if got[2].Value == nil || *got[2].Value != 1.5 || got[2].Bits != "" {
		t.Errorf("finite metric = %+v, want plain value 1.5 without bits", got[2])
	}
	// Finite-only campaigns must keep their historical bytes: no bits
	// field, value as a bare number.
	finite := NewEngine(1).RunScenarios(testGrid().Expand(), echoRunner)
	if out := emitBytes(t, JSONEmitter{Indent: true}, finite); bytes.Contains(out, []byte(`"bits"`)) {
		t.Error("finite campaign emits bits fields; goldens would change")
	}
}

// TestRunScenariosContextProgress: the per-campaign hook fires once
// per scenario alongside the engine-level Progress callback, with the
// per-run done counter.
func TestRunScenariosContextProgress(t *testing.T) {
	eng := NewEngine(3)
	var engineCalls, runCalls int
	eng.Progress = func(done, total int, r Result) { engineCalls++ }
	scenarios := testGrid().Expand()
	seen := map[string]int{}
	var last int
	c := eng.RunScenariosContextProgress(context.Background(), scenarios, IgnoreContext(echoRunner),
		func(done, total int, r Result) {
			runCalls++
			seen[r.ID]++
			if total != len(scenarios) {
				t.Errorf("total = %d, want %d", total, len(scenarios))
			}
			if done != last+1 {
				t.Errorf("done jumped %d -> %d; progress must be serialized", last, done)
			}
			last = done
		})
	if len(c.Results) != len(scenarios) {
		t.Fatalf("%d results", len(c.Results))
	}
	if runCalls != len(scenarios) || engineCalls != len(scenarios) {
		t.Errorf("per-run hook fired %d times, engine hook %d, want %d each", runCalls, engineCalls, len(scenarios))
	}
	for _, s := range scenarios {
		if seen[s.ID()] == 0 {
			t.Errorf("scenario %s never reached the per-run hook", s.ID())
		}
	}
}
