package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// keyFields is the exact field sequence Scenario.Key emits. ParseKey
// rejects any deviation, so a key string is either canonical or an
// error — there is no lenient middle ground for the store's integrity
// check to miss.
var keyFields = []string{
	"machine", "workload", "mode", "nt", "opt", "i2moff", "pfoff",
	"ranks", "mesh", "threads", "maxrows", "seed",
}

// ParseKey inverts Scenario.Key: it parses the canonical configuration
// string back into a Scenario. The persistent result store uses it to
// rebuild scenarios from stored records and to reject records whose key
// no longer hashes to their claimed ID (bit rot, hand edits, torn
// writes).
//
// Keys are canonical only for machine/workload/mode names without
// whitespace or '=' — which registry names guarantee. ParseKey never
// panics; malformed input returns an error.
func ParseKey(key string) (Scenario, error) {
	var s Scenario
	tokens := strings.Split(key, " ")
	if len(tokens) != len(keyFields) {
		return Scenario{}, fmt.Errorf("sweep: key has %d fields, want %d", len(tokens), len(keyFields))
	}
	vals := make(map[string]string, len(keyFields))
	for i, tok := range tokens {
		name, val, ok := strings.Cut(tok, "=")
		if !ok || name != keyFields[i] {
			return Scenario{}, fmt.Errorf("sweep: key field %d is %q, want %q=...", i, tok, keyFields[i])
		}
		vals[name] = val
	}

	s.Machine = vals["machine"]
	s.Workload = vals["workload"]
	s.Mode.Name = vals["mode"]
	var err error
	parseBool := func(field string, dst *bool) {
		if err != nil {
			return
		}
		v, e := strconv.ParseBool(vals[field])
		if e != nil {
			err = fmt.Errorf("sweep: key field %s=%q: %v", field, vals[field], e)
			return
		}
		*dst = v
	}
	parseInt := func(field string, dst *int) {
		if err != nil {
			return
		}
		v, e := strconv.Atoi(vals[field])
		if e != nil {
			err = fmt.Errorf("sweep: key field %s=%q: %v", field, vals[field], e)
			return
		}
		*dst = v
	}
	parseBool("nt", &s.Mode.NTStores)
	parseBool("opt", &s.Mode.OptimizeLoops)
	parseBool("i2moff", &s.Mode.SpecI2MOff)
	parseBool("pfoff", &s.Mode.PFOff)
	parseInt("ranks", &s.Ranks)
	parseInt("threads", &s.Threads)
	parseInt("maxrows", &s.MaxRows)
	if err != nil {
		return Scenario{}, err
	}

	if mesh := vals["mesh"]; mesh != "default" {
		m, e := ParseMesh(mesh)
		if e != nil {
			return Scenario{}, fmt.Errorf("sweep: key field mesh=%q: %v", mesh, e)
		}
		s.Mesh = m
	}

	seed := vals["seed"]
	if !strings.HasPrefix(seed, "0x") {
		return Scenario{}, fmt.Errorf("sweep: key field seed=%q: want 0x-prefixed hex", seed)
	}
	v, e := strconv.ParseUint(seed[2:], 16, 64)
	if e != nil {
		return Scenario{}, fmt.Errorf("sweep: key field seed=%q: %v", seed, e)
	}
	s.Seed = v
	return s, nil
}
