package sweep

import (
	"strings"
	"testing"
)

func TestGridExpandOrderAndSize(t *testing.T) {
	g := Grid{
		Machines: []string{"icx", "clx"},
		Modes:    []Mode{{Name: "baseline"}, {Name: "nt", NTStores: true}},
		Ranks:    []int{1, 8},
		Threads:  []int{4},
		Seed:     7,
	}
	scs := g.Expand()
	if len(scs) != g.Size() || len(scs) != 8 {
		t.Fatalf("expanded %d scenarios, Size()=%d, want 8", len(scs), g.Size())
	}
	// Grid order: machine outermost, then mode, mesh, ranks, threads.
	want := []string{
		"icx/baseline/r1/t4", "icx/baseline/r8/t4",
		"icx/nt/r1/t4", "icx/nt/r8/t4",
		"clx/baseline/r1/t4", "clx/baseline/r8/t4",
		"clx/nt/r1/t4", "clx/nt/r8/t4",
	}
	for i, s := range scs {
		if s.Label() != want[i] {
			t.Errorf("scenario %d = %s, want %s", i, s.Label(), want[i])
		}
		if s.Seed != 7 {
			t.Errorf("scenario %d seed = %d, want campaign seed 7", i, s.Seed)
		}
	}
}

func TestGridEmptyAxesDefault(t *testing.T) {
	g := Grid{Machines: []string{"icx"}}
	scs := g.Expand()
	if len(scs) != 1 {
		t.Fatalf("minimal grid expanded to %d scenarios, want 1", len(scs))
	}
	s := scs[0]
	if s.Ranks != 0 || s.Threads != 0 || s.Mesh != (Mesh{}) {
		t.Errorf("empty axes should produce runner defaults, got %+v", s)
	}
	if s.Mesh.String() != "default" {
		t.Errorf("zero mesh renders %q, want \"default\"", s.Mesh.String())
	}
}

func TestScenarioIDStableAndDistinct(t *testing.T) {
	a := Scenario{Machine: "icx", Mode: Mode{Name: "nt", NTStores: true}, Ranks: 8, Seed: 1}
	b := a
	if a.ID() != b.ID() {
		t.Fatal("identical scenarios must hash identically")
	}
	if len(a.ID()) != 12 {
		t.Fatalf("ID %q not 12 hex chars", a.ID())
	}
	// Every field must participate in the hash.
	mutations := []Scenario{
		{Machine: "clx", Mode: a.Mode, Ranks: 8, Seed: 1},
		{Machine: "icx", Mode: Mode{Name: "nt"}, Ranks: 8, Seed: 1}, // NTStores flag differs
		{Machine: "icx", Mode: a.Mode, Ranks: 9, Seed: 1},
		{Machine: "icx", Mode: a.Mode, Ranks: 8, Seed: 2},
		{Machine: "icx", Mode: a.Mode, Ranks: 8, Mesh: Mesh{100, 100}, Seed: 1},
		{Machine: "icx", Mode: a.Mode, Ranks: 8, Threads: 3, Seed: 1},
		{Machine: "icx", Mode: a.Mode, Ranks: 8, MaxRows: 5, Seed: 1},
	}
	for i, m := range mutations {
		if m.ID() == a.ID() {
			t.Errorf("mutation %d (%s) collides with base (%s)", i, m.Key(), a.Key())
		}
	}
}

func TestModeRoundTrip(t *testing.T) {
	if len(AllModes()) < 4 {
		t.Fatalf("want >=4 evasion modes, have %d", len(AllModes()))
	}
	for _, name := range ModeNames() {
		m, ok := ModeByName(name)
		if !ok || m.Name != name {
			t.Errorf("mode %q does not round-trip", name)
		}
	}
	if _, ok := ModeByName("bogus"); ok {
		t.Error("bogus mode resolved")
	}
}

func TestParseMesh(t *testing.T) {
	m, err := ParseMesh("15360x7680")
	if err != nil || m.X != 15360 || m.Y != 7680 {
		t.Fatalf("ParseMesh = %v, %v", m, err)
	}
	if m.String() != "15360x7680" {
		t.Errorf("String() = %q", m.String())
	}
	for _, bad := range []string{"", "x", "12x", "0x5", "-3x4"} {
		if _, err := ParseMesh(bad); err == nil {
			t.Errorf("ParseMesh(%q) should fail", bad)
		}
	}
}

func TestKeyContainsEveryAxis(t *testing.T) {
	s := Scenario{Machine: "icx", Mode: Mode{Name: "nt-opt", NTStores: true, OptimizeLoops: true},
		Ranks: 72, Mesh: Mesh{3840, 3840}, Threads: 36, MaxRows: 16, Seed: 0xbeef}
	key := s.Key()
	for _, frag := range []string{"machine=icx", "mode=nt-opt", "ranks=72", "mesh=3840x3840",
		"threads=36", "maxrows=16", "seed=0xbeef"} {
		if !strings.Contains(key, frag) {
			t.Errorf("key %q missing %q", key, frag)
		}
	}
}
