package sweep

import (
	"strconv"
	"testing"
)

// benchRunner does a small deterministic amount of arithmetic per
// scenario so engine throughput measures dispatch overhead against
// non-trivial (but cheap) work.
func benchRunner(s Scenario) (Metrics, error) {
	acc := float64(s.Ranks)
	for i := 0; i < 2048; i++ {
		acc += 1.0 / float64(i+s.Threads+1)
	}
	var m Metrics
	m.Add("acc", acc)
	return m, nil
}

// BenchmarkEngineThroughput is the dispatch-layer baseline for
// BENCH_sweep.json: scenarios executed per op through the full engine
// path (memoizer partition, local backend pool, result ordering), on a
// fresh engine each iteration so nothing is served from cache.
func BenchmarkEngineThroughput(b *testing.B) {
	const cells = 256
	scenarios := make([]Scenario, cells)
	for i := range scenarios {
		scenarios[i] = Scenario{Machine: "m" + strconv.Itoa(i%4), Ranks: i + 1, Threads: i % 7}
	}
	for _, workers := range []int{1, 8} {
		b.Run("workers"+strconv.Itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := NewEngine(workers).RunScenarios(scenarios, benchRunner)
				if err := c.Err(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cells), "scenarios/op")
		})
	}
}

// BenchmarkEngineWarmCampaign measures the all-warm path: every cell
// served from the memoizer. This is the steady state of a resumed
// campaign and should stay allocation-light.
func BenchmarkEngineWarmCampaign(b *testing.B) {
	const cells = 256
	scenarios := make([]Scenario, cells)
	for i := range scenarios {
		scenarios[i] = Scenario{Machine: "m", Ranks: i + 1}
	}
	eng := NewEngine(8)
	if err := eng.RunScenarios(scenarios, benchRunner).Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := eng.RunScenarios(scenarios, benchRunner)
		if err := c.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
