// Package csvout writes the experiment results as CSV files (the
// artifact's gather_likwid_* scripts produce the same shape) and renders
// aligned text tables for terminal output.
package csvout

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Table is an in-memory result table.
type Table struct {
	Header []string
	Rows   [][]string
}

// New creates a table with the given column names.
func New(header ...string) *Table {
	return &Table{Header: header}
}

// FormatCell renders one value the way Add does: floats with four
// decimals, everything else with %v. Exported so incremental emitters
// that bypass Table can format cells byte-identically to it.
func FormatCell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.4f", x)
	case float32:
		return fmt.Sprintf("%.4f", x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Add appends a row; values are formatted with %v, floats with %.4f.
func (t *Table) Add(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = FormatCell(v)
	}
	t.Rows = append(t.Rows, row)
}

// WriteCSV writes the table to w in CSV format.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to path, creating parent directories.
func (t *Table) SaveCSV(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// Format renders an aligned text table.
func (t *Table) Format() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
