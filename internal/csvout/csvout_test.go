package csvout

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tb := New("ranks", "ratio")
	tb.Add(1, 2.0)
	tb.Add(72, 1.218)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "ranks,ratio\n1,2.0000\n72,1.2180\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestSaveCSVCreatesDirs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "deep", "out.csv")
	tb := New("a")
	tb.Add("x")
	if err := tb.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "a\nx\n") {
		t.Fatalf("file content %q", data)
	}
}

func TestFormatAlignment(t *testing.T) {
	tb := New("loop", "byte/it")
	tb.Add("am04", 24.05)
	tb.Add("pdv01", 120.77)
	out := tb.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("format lines = %d:\n%s", len(lines), out)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestMixedTypes(t *testing.T) {
	tb := New("a", "b", "c", "d")
	tb.Add(1, "s", true, float32(1.5))
	if tb.Rows[0][2] != "true" || tb.Rows[0][3] != "1.5000" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}
