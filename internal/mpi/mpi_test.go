package mpi

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSendRecvRoundtrip(t *testing.T) {
	w := NewWorld(2, DefaultTimeModel())
	var got []float64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend([]float64{1, 2, 3}, 1, 42)
		} else {
			buf := make([]float64, 3)
			req := c.Irecv(buf, 0, 42)
			if err := c.Wait(req); err != nil {
				t.Error(err)
			}
			got = buf
		}
	})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("received %v", got)
	}
}

func TestIsendCopiesEagerly(t *testing.T) {
	w := NewWorld(2, DefaultTimeModel())
	var got float64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			data := []float64{7}
			c.Isend(data, 1, 0)
			data[0] = 99 // must not affect the message
		} else {
			buf := make([]float64, 1)
			c.Wait(c.Irecv(buf, 0, 0))
			got = buf[0]
		}
	})
	if got != 7 {
		t.Fatalf("eager copy violated: got %g", got)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := NewWorld(2, DefaultTimeModel())
	var a, b float64
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend([]float64{1}, 1, 10)
			c.Isend([]float64{2}, 1, 20)
		} else {
			// Receive the second message first.
			b2 := make([]float64, 1)
			c.Wait(c.Irecv(b2, 0, 20))
			a2 := make([]float64, 1)
			c.Wait(c.Irecv(a2, 0, 10))
			a, b = a2[0], b2[0]
		}
	})
	if a != 1 || b != 2 {
		t.Fatalf("tag matching failed: %g %g", a, b)
	}
}

func TestWaitallMixed(t *testing.T) {
	w := NewWorld(2, DefaultTimeModel())
	ok := false
	w.Run(func(c *Comm) {
		peer := 1 - c.Rank()
		buf := make([]float64, 4)
		reqs := []*Request{
			c.Irecv(buf, peer, 5),
			c.Isend([]float64{float64(c.Rank()), 1, 2, 3}, peer, 5),
			nil, // Waitall must tolerate nils
		}
		if err := c.Waitall(reqs); err != nil {
			t.Error(err)
		}
		if c.Rank() == 0 && buf[0] == 1 {
			ok = true
		}
	})
	if !ok {
		t.Fatal("exchange failed")
	}
}

func TestSizeMismatchError(t *testing.T) {
	w := NewWorld(2, DefaultTimeModel())
	var err error
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Isend([]float64{1, 2}, 1, 0)
		} else {
			buf := make([]float64, 5)
			err = c.Wait(c.Irecv(buf, 0, 0))
		}
	})
	if err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func TestAllreduceOps(t *testing.T) {
	for _, tc := range []struct {
		op   Op
		want float64
	}{
		{OpSum, 0 + 1 + 2 + 3 + 4 + 5},
		{OpMin, 0},
		{OpMax, 5},
	} {
		w := NewWorld(6, DefaultTimeModel())
		results := make([]float64, 6)
		w.Run(func(c *Comm) {
			results[c.Rank()] = c.AllreduceScalar(float64(c.Rank()), tc.op)
		})
		for r, got := range results {
			if got != tc.want {
				t.Fatalf("op %v rank %d: got %g want %g", tc.op, r, got, tc.want)
			}
		}
	}
}

func TestAllreduceRepeated(t *testing.T) {
	// Generation counting must survive many consecutive reductions.
	w := NewWorld(4, DefaultTimeModel())
	bad := false
	w.Run(func(c *Comm) {
		for i := 0; i < 200; i++ {
			got := c.AllreduceScalar(float64(i), OpSum)
			if got != float64(4*i) {
				bad = true
			}
		}
	})
	if bad {
		t.Fatal("repeated allreduce corrupted a generation")
	}
}

// Property: Allreduce(sum) equals the serial sum for random vectors.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(vals [5]float64) bool {
		// Bound magnitudes: reduction order is nondeterministic, so the
		// comparison must tolerate rounding (not overflow).
		for i := range vals {
			if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
				vals[i] = 1
			}
			vals[i] = math.Remainder(vals[i], 1000)
		}
		w := NewWorld(5, DefaultTimeModel())
		var out [5]float64
		w.Run(func(c *Comm) {
			out[c.Rank()] = c.AllreduceScalar(vals[c.Rank()], OpSum)
		})
		want := 0.0
		for _, v := range vals {
			want += v
		}
		for _, o := range out {
			if math.Abs(o-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAllreduceVector(t *testing.T) {
	w := NewWorld(3, DefaultTimeModel())
	var got []float64
	w.Run(func(c *Comm) {
		r := c.Allreduce([]float64{float64(c.Rank()), 1}, OpSum)
		if c.Rank() == 0 {
			got = r
		}
	})
	if got[0] != 3 || got[1] != 3 {
		t.Fatalf("vector allreduce = %v", got)
	}
}

func TestReduceRoot(t *testing.T) {
	w := NewWorld(4, DefaultTimeModel())
	var rootGot []float64
	nonRootNil := true
	w.Run(func(c *Comm) {
		r := c.Reduce([]float64{1}, OpSum, 2)
		if c.Rank() == 2 {
			rootGot = r
		} else if r != nil {
			nonRootNil = false
		}
	})
	if rootGot[0] != 4 || !nonRootNil {
		t.Fatalf("reduce: root %v nonRootNil %v", rootGot, nonRootNil)
	}
}

func TestBarrier(t *testing.T) {
	w := NewWorld(8, DefaultTimeModel())
	phase := make([]int, 8)
	w.Run(func(c *Comm) {
		phase[c.Rank()] = 1
		c.Barrier()
		// After the barrier every rank must see every phase set.
		for r, p := range phase {
			if p != 1 {
				t.Errorf("rank %d saw rank %d phase %d after barrier", c.Rank(), r, p)
			}
		}
	})
}

func TestTimesAccumulate(t *testing.T) {
	w := NewWorld(2, DefaultTimeModel())
	comms := w.Run(func(c *Comm) {
		peer := 1 - c.Rank()
		buf := make([]float64, 1024)
		c.Waitall([]*Request{
			c.Irecv(buf, peer, 1),
			c.Isend(make([]float64, 1024), peer, 1),
		})
		c.AllreduceScalar(1, OpMin)
		c.Barrier()
	})
	for _, c := range comms {
		tt := c.Times
		if tt.Isend <= 0 || tt.Waitall <= 0 || tt.Allreduce <= 0 || tt.Barrier <= 0 {
			t.Fatalf("times not accumulated: %+v", tt)
		}
		sum := tt.Add(tt)
		if math.Abs(sum.Total()-2*tt.Total()) > 1e-15 {
			t.Fatal("Times.Add/Total inconsistent")
		}
	}
}

func TestSingleRankCollectives(t *testing.T) {
	w := NewWorld(1, DefaultTimeModel())
	w.Run(func(c *Comm) {
		if got := c.AllreduceScalar(3, OpSum); got != 3 {
			t.Errorf("1-rank allreduce = %g", got)
		}
		c.Barrier()
		if c.Times.Allreduce != 0 {
			t.Error("1-rank allreduce should cost nothing in the model")
		}
	})
}
