// Package mpi is an in-process message-passing substrate with the subset
// of MPI semantics CloverLeaf needs: non-blocking point-to-point
// (Isend/Irecv/Waitall), Allreduce, Reduce, and Barrier, executed by one
// goroutine per rank.
//
// Besides executing communication for real (data moves between ranks),
// every call also charges an analytic time model (latency + volume /
// bandwidth, log-tree reductions) so the relative MPI time breakdown of
// the paper's Fig. 4 can be reproduced without wall-clock noise.
package mpi

import (
	"fmt"
	"math"
	"sync"
)

// Op is a reduction operator.
type Op int

const (
	OpSum Op = iota
	OpMin
	OpMax
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	default:
		return a + b
	}
}

// TimeModel parameterizes the analytic communication cost model.
type TimeModel struct {
	Latency          float64 // seconds per point-to-point message
	Bandwidth        float64 // bytes/s payload bandwidth
	ReductionLatency float64 // seconds per tree stage of a reduction
}

// DefaultTimeModel matches the intra-node Intel MPI figures used for the
// machine presets.
func DefaultTimeModel() TimeModel {
	return TimeModel{Latency: 1.4e-6, Bandwidth: 11e9, ReductionLatency: 1.9e-6}
}

// Times accumulates modeled time per MPI call category (Fig. 4 rows).
type Times struct {
	Isend     float64
	Waitall   float64
	Allreduce float64
	Reduce    float64
	Barrier   float64
}

// Total returns the summed modeled MPI time.
func (t Times) Total() float64 {
	return t.Isend + t.Waitall + t.Allreduce + t.Reduce + t.Barrier
}

// Add returns t + o.
func (t Times) Add(o Times) Times {
	return Times{
		Isend:     t.Isend + o.Isend,
		Waitall:   t.Waitall + o.Waitall,
		Allreduce: t.Allreduce + o.Allreduce,
		Reduce:    t.Reduce + o.Reduce,
		Barrier:   t.Barrier + o.Barrier,
	}
}

type message struct {
	tag  int
	data []float64
}

// mailbox is an unbounded ordered queue for one (src,dst) pair.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.q = append(m.q, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take blocks until a message with the tag is present and removes it.
func (m *mailbox) take(tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.q {
			if msg.tag == tag {
				m.q = append(m.q[:i], m.q[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// reducer implements generation-counted collective rendezvous.
type reducer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	gen    uint64
	count  int
	acc    []float64
	result []float64
}

func newReducer() *reducer {
	r := &reducer{}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// World owns the ranks' shared communication state.
type World struct {
	size int
	tm   TimeModel
	mail [][]*mailbox // mail[dst][src]
	red  *reducer
	bar  *reducer
}

// NewWorld creates a communicator world of the given size.
func NewWorld(size int, tm TimeModel) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	w := &World{size: size, tm: tm, red: newReducer(), bar: newReducer()}
	w.mail = make([][]*mailbox, size)
	for d := range w.mail {
		w.mail[d] = make([]*mailbox, size)
		for s := range w.mail[d] {
			w.mail[d][s] = newMailbox()
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes body once per rank, each in its own goroutine, and waits
// for all to finish. It returns the per-rank communicators for post-run
// inspection (modeled times).
//
//lint:allow ctxflow rank goroutines are one cell's bounded physics; they always terminate with the hydro step
func (w *World) Run(body func(c *Comm)) []*Comm {
	comms := make([]*Comm, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		comms[r] = &Comm{w: w, rank: r}
		go func(c *Comm) {
			defer wg.Done()
			body(c)
		}(comms[r])
	}
	wg.Wait()
	return comms
}

// Comm is one rank's endpoint.
type Comm struct {
	w     *World
	rank  int
	Times Times
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// reqKind distinguishes request types.
type reqKind int

const (
	reqSend reqKind = iota
	reqRecv
)

// Request is a non-blocking operation handle.
type Request struct {
	kind  reqKind
	c     *Comm
	peer  int
	tag   int
	buf   []float64
	bytes int64
	done  bool
}

// Isend posts a non-blocking send of data to rank dst. The data is copied
// immediately (eager protocol).
func (c *Comm) Isend(data []float64, dst, tag int) *Request {
	cp := make([]float64, len(data))
	copy(cp, data)
	c.w.mail[dst][c.rank].put(message{tag: tag, data: cp})
	c.Times.Isend += 0.2e-6 // posting overhead; transfer charged at Waitall
	return &Request{kind: reqSend, c: c, peer: dst, tag: tag, bytes: int64(len(data) * 8)}
}

// Irecv posts a non-blocking receive into buf from rank src.
func (c *Comm) Irecv(buf []float64, src, tag int) *Request {
	return &Request{kind: reqRecv, c: c, peer: src, tag: tag, buf: buf, bytes: int64(len(buf) * 8)}
}

// Wait completes one request.
func (c *Comm) Wait(r *Request) error {
	if r.done {
		return nil
	}
	r.done = true
	if r.kind == reqRecv {
		msg := c.w.mail[c.rank][r.peer].take(r.tag)
		if len(msg.data) != len(r.buf) {
			return fmt.Errorf("mpi: rank %d recv size %d != posted %d (tag %d from %d)",
				c.rank, len(msg.data), len(r.buf), r.tag, r.peer)
		}
		copy(r.buf, msg.data)
	}
	c.Times.Waitall += c.w.tm.Latency + float64(r.bytes)/c.w.tm.Bandwidth
	return nil
}

// Waitall completes all requests.
func (c *Comm) Waitall(reqs []*Request) error {
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if err := c.Wait(r); err != nil {
			return err
		}
	}
	return nil
}

// stages returns the number of tree stages for a collective.
func (c *Comm) stages() float64 {
	if c.w.size <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(c.w.size)))
}

// rendezvous performs the shared collective protocol on r. combine merges
// the caller's contribution into the accumulator.
func (c *Comm) rendezvous(r *reducer, in []float64, op Op) []float64 {
	r.mu.Lock()
	g := r.gen
	if r.count == 0 {
		r.acc = append(r.acc[:0], in...)
	} else {
		for i := range in {
			r.acc[i] = op.apply(r.acc[i], in[i])
		}
	}
	r.count++
	if r.count == c.w.size {
		r.result = append(r.result[:0], r.acc...)
		r.count = 0
		r.gen++
		r.cond.Broadcast()
	} else {
		for r.gen == g {
			r.cond.Wait()
		}
	}
	out := make([]float64, len(r.result))
	copy(out, r.result)
	r.mu.Unlock()
	return out
}

// Allreduce combines in across all ranks with op; every rank receives the
// result.
func (c *Comm) Allreduce(in []float64, op Op) []float64 {
	out := c.rendezvous(c.w.red, in, op)
	c.Times.Allreduce += c.stages() * c.w.tm.ReductionLatency * 2
	return out
}

// AllreduceScalar is Allreduce for a single value.
func (c *Comm) AllreduceScalar(v float64, op Op) float64 {
	return c.Allreduce([]float64{v}, op)[0]
}

// Reduce combines in across all ranks; only the root's return value is
// meaningful (all ranks receive it here, but the time model charges the
// cheaper one-way tree).
func (c *Comm) Reduce(in []float64, op Op, root int) []float64 {
	out := c.rendezvous(c.w.red, in, op)
	c.Times.Reduce += c.stages() * c.w.tm.ReductionLatency
	if c.rank != root {
		return nil
	}
	return out
}

// Barrier synchronizes all ranks.
func (c *Comm) Barrier() {
	c.rendezvous(c.w.bar, nil, OpSum)
	c.Times.Barrier += c.stages() * c.w.tm.ReductionLatency
}
