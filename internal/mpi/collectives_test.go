package mpi

import "testing"

func TestBcast(t *testing.T) {
	w := NewWorld(5, DefaultTimeModel())
	got := make([][]float64, 5)
	w.Run(func(c *Comm) {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{3.14, 2.71}
		} else {
			data = []float64{0, 0} // ignored off-root
		}
		got[c.Rank()] = c.Bcast(data, 2)
	})
	for r, v := range got {
		if len(v) != 2 || v[0] != 3.14 || v[1] != 2.71 {
			t.Fatalf("rank %d received %v", r, v)
		}
	}
}

func TestBcastSingleRank(t *testing.T) {
	w := NewWorld(1, DefaultTimeModel())
	w.Run(func(c *Comm) {
		out := c.Bcast([]float64{7}, 0)
		if out[0] != 7 {
			t.Errorf("1-rank bcast = %v", out)
		}
	})
}

func TestBcastIsolation(t *testing.T) {
	// The root's buffer must be copied, not aliased.
	w := NewWorld(2, DefaultTimeModel())
	var seen float64
	w.Run(func(c *Comm) {
		data := []float64{1}
		out := c.Bcast(data, 0)
		if c.Rank() == 0 {
			out[0] = 99 // must not corrupt the other rank's copy
		} else {
			seen = out[0]
		}
	})
	if seen != 1 {
		t.Fatalf("bcast aliasing: rank 1 saw %g", seen)
	}
}

func TestGather(t *testing.T) {
	w := NewWorld(4, DefaultTimeModel())
	var rows [][]float64
	w.Run(func(c *Comm) {
		out := c.Gather([]float64{float64(c.Rank()), float64(c.Rank() * 10)}, 1)
		if c.Rank() == 1 {
			rows = out
		} else if out != nil {
			t.Errorf("non-root rank %d got %v", c.Rank(), out)
		}
	})
	if len(rows) != 4 {
		t.Fatalf("gathered %d rows", len(rows))
	}
	for r, v := range rows {
		if v[0] != float64(r) || v[1] != float64(r*10) {
			t.Fatalf("row %d = %v", r, v)
		}
	}
}

func TestSendrecvRing(t *testing.T) {
	// Shift values around a ring — the classic Sendrecv smoke test.
	const n = 6
	w := NewWorld(n, DefaultTimeModel())
	got := make([]float64, n)
	w.Run(func(c *Comm) {
		dst := (c.Rank() + 1) % n
		src := (c.Rank() + n - 1) % n
		recv := make([]float64, 1)
		if err := c.Sendrecv([]float64{float64(c.Rank())}, dst, recv, src, 9); err != nil {
			t.Error(err)
		}
		got[c.Rank()] = recv[0]
	})
	for r := 0; r < n; r++ {
		want := float64((r + n - 1) % n)
		if got[r] != want {
			t.Fatalf("ring shift: rank %d got %g, want %g", r, got[r], want)
		}
	}
}

func TestCollectivesChargeTime(t *testing.T) {
	w := NewWorld(3, DefaultTimeModel())
	comms := w.Run(func(c *Comm) {
		c.Bcast([]float64{1}, 0)
		c.Gather([]float64{1}, 0)
	})
	for _, c := range comms {
		if c.Times.Isend == 0 && c.Times.Waitall == 0 {
			t.Fatalf("rank %d charged no time for collectives", c.Rank())
		}
	}
}
