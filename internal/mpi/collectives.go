package mpi

// Additional collectives beyond CloverLeaf's core set, for completeness
// of the substrate (the SPEC harness uses gather/broadcast during setup
// and result collection).

// bcast/gather reuse the mailbox fabric with reserved negative tags so
// they never collide with user point-to-point traffic.
const (
	tagBcast  = -1000
	tagGather = -2000
)

// Bcast distributes root's data to all ranks; every rank returns the
// broadcast value. data is only read on the root.
func (c *Comm) Bcast(data []float64, root int) []float64 {
	if c.w.size == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	if c.rank == root {
		for r := 0; r < c.w.size; r++ {
			if r == root {
				continue
			}
			cp := make([]float64, len(data))
			copy(cp, data)
			c.w.mail[r][root].put(message{tag: tagBcast, data: cp})
		}
		c.Times.Isend += c.stages() * c.w.tm.ReductionLatency
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	msg := c.w.mail[c.rank][root].take(tagBcast)
	c.Times.Waitall += c.stages() * c.w.tm.ReductionLatency
	return msg.data
}

// Gather collects each rank's contribution on the root (rank order
// preserved). Non-root ranks return nil.
func (c *Comm) Gather(data []float64, root int) [][]float64 {
	if c.rank != root {
		cp := make([]float64, len(data))
		copy(cp, data)
		c.w.mail[root][c.rank].put(message{tag: tagGather, data: cp})
		c.Times.Isend += 0.2e-6
		return nil
	}
	out := make([][]float64, c.w.size)
	out[root] = append([]float64(nil), data...)
	for r := 0; r < c.w.size; r++ {
		if r == root {
			continue
		}
		msg := c.w.mail[root][r].take(tagGather)
		out[r] = msg.data
		c.Times.Waitall += c.w.tm.Latency + float64(len(msg.data)*8)/c.w.tm.Bandwidth
	}
	return out
}

// Sendrecv performs a simultaneous send to dst and receive from src with
// the same tag — the halo-exchange primitive many MPI codes use instead
// of Isend/Irecv/Waitall.
func (c *Comm) Sendrecv(send []float64, dst int, recv []float64, src, tag int) error {
	reqs := []*Request{
		c.Irecv(recv, src, tag),
		c.Isend(send, dst, tag),
	}
	return c.Waitall(reqs)
}
