package riemann

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSodStarState checks the textbook values of the Sod problem
// (Toro, Table 4.1): p* = 0.30313, u* = 0.92745.
func TestSodStarState(t *testing.T) {
	s, err := Sod().Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.PStar-0.30313) > 1e-4 {
		t.Errorf("p* = %.5f, want 0.30313", s.PStar)
	}
	if math.Abs(s.UStar-0.92745) > 1e-4 {
		t.Errorf("u* = %.5f, want 0.92745", s.UStar)
	}
}

// TestSodRegions checks the density plateaus (Toro: rho*L = 0.42632,
// rho*R = 0.26557) and the undisturbed far fields at t = 0.25.
func TestSodRegions(t *testing.T) {
	s, err := Sod().Solve()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		xi   float64
		rho  float64
		name string
	}{
		{-2.0, 1.0, "undisturbed left"},
		{0.5, 0.42632, "left star (after rarefaction)"},
		{1.2, 0.26557, "right star (post shock)"},
		{2.5, 0.125, "undisturbed right"},
	}
	for _, c := range cases {
		got := s.Sample(c.xi).Rho
		if math.Abs(got-c.rho) > 1e-4 {
			t.Errorf("%s: rho(%g) = %.5f, want %.5f", c.name, c.xi, got, c.rho)
		}
	}
	// Shock speed: S = 1.75216 for Sod; just behind it the star state,
	// just ahead the right state.
	if got := s.Sample(1.74).Rho; math.Abs(got-0.26557) > 1e-4 {
		t.Errorf("behind shock rho = %.5f", got)
	}
	if got := s.Sample(1.76).Rho; math.Abs(got-0.125) > 1e-6 {
		t.Errorf("ahead of shock rho = %.5f", got)
	}
}

// TestRarefactionFanContinuity: the solution inside the fan connects the
// head and tail states continuously.
func TestRarefactionFanContinuity(t *testing.T) {
	s, _ := Sod().Solve()
	// Sod's left rarefaction: head at -aL = -1.18322, tail at
	// u* - a*L ~= -0.07027.
	head := s.Sample(-1.1833)
	if math.Abs(head.Rho-1.0) > 1e-3 {
		t.Errorf("fan head rho = %g", head.Rho)
	}
	prev := head.Rho
	for xi := -1.18; xi <= -0.08; xi += 0.01 {
		cur := s.Sample(xi).Rho
		if cur > prev+1e-12 {
			t.Fatalf("density not monotone in the fan at xi=%g", xi)
		}
		prev = cur
	}
}

// TestSymmetricProblem: mirrored states give mirrored solutions with a
// stationary contact.
func TestSymmetricProblem(t *testing.T) {
	p := Problem{
		Left:  State{Rho: 1, U: 0, P: 1},
		Right: State{Rho: 1, U: 0, P: 1},
		Gamma: 1.4,
	}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.UStar) > 1e-12 || math.Abs(s.PStar-1) > 1e-9 {
		t.Errorf("trivial problem: p*=%g u*=%g", s.PStar, s.UStar)
	}
}

// TestStrongShock: a pressure jump of 10^4 still converges.
func TestStrongShock(t *testing.T) {
	p := Problem{
		Left:  State{Rho: 1, U: 0, P: 1000},
		Right: State{Rho: 1, U: 0, P: 0.1},
		Gamma: 1.4,
	}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.PStar <= 0.1 || s.PStar >= 1000 {
		t.Errorf("p* = %g out of bounds", s.PStar)
	}
	if s.UStar <= 0 {
		t.Errorf("u* = %g, shock must move right", s.UStar)
	}
}

func TestInvalidInput(t *testing.T) {
	p := Problem{Left: State{Rho: -1, P: 1}, Right: State{Rho: 1, P: 1}, Gamma: 1.4}
	if _, err := p.Solve(); err == nil {
		t.Error("negative density accepted")
	}
}

func TestProfile(t *testing.T) {
	s, _ := Sod().Solve()
	prof := s.Profile(0.2, 0, 1, 0.5, 100)
	if len(prof) != 100 {
		t.Fatalf("%d cells", len(prof))
	}
	if math.Abs(prof[0].Rho-1.0) > 1e-9 || math.Abs(prof[99].Rho-0.125) > 1e-9 {
		t.Errorf("far fields wrong: %g %g", prof[0].Rho, prof[99].Rho)
	}
	// t=0: pure initial condition.
	ic := s.Profile(0, 0, 1, 0.5, 10)
	if ic[0].Rho != 1 || ic[9].Rho != 0.125 {
		t.Error("t=0 profile not the initial condition")
	}
}

// Property: star pressure lies between the minimum and maximum of a
// randomized two-state problem when both states are at rest (no vacuum).
func TestStarPressureBoundsProperty(t *testing.T) {
	f := func(pl, pr, rl, rr uint8) bool {
		p := Problem{
			Left:  State{Rho: 0.1 + float64(rl%50)/10, P: 0.1 + float64(pl%80)/10},
			Right: State{Rho: 0.1 + float64(rr%50)/10, P: 0.1 + float64(pr%80)/10},
			Gamma: 1.4,
		}
		s, err := p.Solve()
		if err != nil {
			return false
		}
		lo := math.Min(p.Left.P, p.Right.P)
		hi := math.Max(p.Left.P, p.Right.P)
		// For states at rest, p* lies within [lo, hi].
		return s.PStar >= lo-1e-9 && s.PStar <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
