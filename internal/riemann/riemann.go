// Package riemann provides an exact solver for the Riemann problem of
// the 1D compressible Euler equations (Toro's classic iterative scheme).
// It serves as ground truth for validating the CloverLeaf hydrodynamics
// implementation: a Sod shock tube run through the full 2D solver must
// reproduce the exact density/pressure/velocity profiles.
package riemann

import (
	"fmt"
	"math"
)

// State is a primitive-variable gas state.
type State struct {
	Rho float64 // density
	U   float64 // velocity
	P   float64 // pressure
}

// Problem is a Riemann problem: two constant states meeting at x=0.
type Problem struct {
	Left, Right State
	Gamma       float64
}

// Sod returns the canonical Sod shock-tube problem.
func Sod() Problem {
	return Problem{
		Left:  State{Rho: 1.0, U: 0, P: 1.0},
		Right: State{Rho: 0.125, U: 0, P: 0.1},
		Gamma: 1.4,
	}
}

// soundSpeed returns the speed of sound of a state.
func (p Problem) soundSpeed(s State) float64 {
	return math.Sqrt(p.Gamma * s.P / s.Rho)
}

// pressureFunction evaluates f_K(p) and its derivative for one side
// (Toro Sec. 4.3): the velocity change across the wave as a function of
// the star pressure.
func (pr Problem) pressureFunction(p float64, s State) (f, df float64) {
	g := pr.Gamma
	a := pr.soundSpeed(s)
	if p > s.P {
		// Shock: Rankine-Hugoniot.
		A := 2 / ((g + 1) * s.Rho)
		B := (g - 1) / (g + 1) * s.P
		f = (p - s.P) * math.Sqrt(A/(p+B))
		df = math.Sqrt(A/(B+p)) * (1 - (p-s.P)/(2*(B+p)))
		return
	}
	// Rarefaction: isentropic relation.
	f = 2 * a / (g - 1) * (math.Pow(p/s.P, (g-1)/(2*g)) - 1)
	df = 1 / (s.Rho * a) * math.Pow(p/s.P, -(g+1)/(2*g))
	return
}

// Solution holds the star-region quantities of a solved problem.
type Solution struct {
	Problem
	PStar float64 // star-region pressure
	UStar float64 // star-region (contact) velocity
}

// Solve computes the star state with Newton-Raphson iteration.
func (pr Problem) Solve() (Solution, error) {
	g := pr.Gamma
	l, r := pr.Left, pr.Right
	if l.Rho <= 0 || r.Rho <= 0 || l.P <= 0 || r.P <= 0 || g <= 1 {
		return Solution{}, fmt.Errorf("riemann: non-physical input %+v", pr)
	}
	// Initial guess: two-rarefaction approximation.
	aL, aR := pr.soundSpeed(l), pr.soundSpeed(r)
	z := (g - 1) / (2 * g)
	p := math.Pow((aL+aR-0.5*(g-1)*(r.U-l.U))/(aL/math.Pow(l.P, z)+aR/math.Pow(r.P, z)), 1/z)
	if p < 1e-10 {
		p = 1e-10
	}
	for i := 0; i < 100; i++ {
		fL, dL := pr.pressureFunction(p, l)
		fR, dR := pr.pressureFunction(p, r)
		change := (fL + fR + (r.U - l.U)) / (dL + dR)
		p -= change
		if p <= 0 {
			p = 1e-12
		}
		if math.Abs(change) < 1e-12*p {
			fL, _ = pr.pressureFunction(p, l)
			fR, _ = pr.pressureFunction(p, r)
			return Solution{Problem: pr, PStar: p, UStar: 0.5 * (l.U + r.U + fR - fL)}, nil
		}
	}
	return Solution{}, fmt.Errorf("riemann: Newton iteration did not converge")
}

// Sample evaluates the self-similar solution at xi = x/t (the initial
// discontinuity sits at xi = 0).
func (s Solution) Sample(xi float64) State {
	g := s.Gamma
	if xi <= s.UStar {
		return s.sampleSide(xi, s.Left, -1, g)
	}
	return s.sampleSide(xi, s.Right, +1, g)
}

// sampleSide handles one side of the contact. sign is -1 for left, +1
// for right.
func (s Solution) sampleSide(xi float64, k State, sign float64, g float64) State {
	a := s.soundSpeed(k)
	if s.PStar > k.P {
		// Shock on this side.
		sp := k.U + sign*a*math.Sqrt((g+1)/(2*g)*s.PStar/k.P+(g-1)/(2*g))
		if sign*xi >= sign*sp {
			return k // ahead of the shock
		}
		ratio := s.PStar / k.P
		rho := k.Rho * (ratio + (g-1)/(g+1)) / ((g-1)/(g+1)*ratio + 1)
		return State{Rho: rho, U: s.UStar, P: s.PStar}
	}
	// Rarefaction on this side.
	aStar := a * math.Pow(s.PStar/k.P, (g-1)/(2*g))
	head := k.U + sign*a
	tail := s.UStar + sign*aStar
	switch {
	case sign*xi >= sign*head:
		return k // ahead of the head
	case sign*xi <= sign*tail:
		rho := k.Rho * math.Pow(s.PStar/k.P, 1/g)
		return State{Rho: rho, U: s.UStar, P: s.PStar}
	default:
		// Inside the fan.
		u := 2 / (g + 1) * (-sign*a + (g-1)/2*k.U + xi)
		af := 2 / (g + 1) * (a - sign*(g-1)/2*(k.U-xi))
		rho := k.Rho * math.Pow(af/a, 2/(g-1))
		p := k.P * math.Pow(af/a, 2*g/(g-1))
		return State{Rho: rho, U: u, P: p}
	}
}

// ProfileStats summarizes a sampled profile: the mean state and the
// density extrema. Campaign workloads emit these as physics metrics, so
// a perturbed solver shows up as a changed campaign fixture.
type ProfileStats struct {
	MeanRho, MeanU, MeanP float64
	MinRho, MaxRho        float64
}

// Stats computes the profile summary of states (zero value for empty
// input).
func Stats(states []State) ProfileStats {
	if len(states) == 0 {
		return ProfileStats{}
	}
	s := ProfileStats{MinRho: states[0].Rho, MaxRho: states[0].Rho}
	for _, st := range states {
		s.MeanRho += st.Rho
		s.MeanU += st.U
		s.MeanP += st.P
		if st.Rho < s.MinRho {
			s.MinRho = st.Rho
		}
		if st.Rho > s.MaxRho {
			s.MaxRho = st.Rho
		}
	}
	n := float64(len(states))
	s.MeanRho /= n
	s.MeanU /= n
	s.MeanP /= n
	return s
}

// Profile samples the solution at time t on a uniform grid of n cells
// spanning [x0, x1] with the initial discontinuity at xDiaphragm.
func (s Solution) Profile(t, x0, x1, xDiaphragm float64, n int) []State {
	out := make([]State, n)
	dx := (x1 - x0) / float64(n)
	for i := range out {
		x := x0 + (float64(i)+0.5)*dx
		if t <= 0 {
			if x < xDiaphragm {
				out[i] = s.Left
			} else {
				out[i] = s.Right
			}
			continue
		}
		out[i] = s.Sample((x - xDiaphragm) / t)
	}
	return out
}
