package sweepcli

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloversim"
	"cloversim/internal/sweep"
)

// readOutputs loads campaign.csv and campaign.json from an output dir.
func readOutputs(t *testing.T, dir string) (csv, json []byte) {
	t.Helper()
	csv, err := os.ReadFile(filepath.Join(dir, "campaign.csv"))
	if err != nil {
		t.Fatal(err)
	}
	json, err = os.ReadFile(filepath.Join(dir, "campaign.json"))
	if err != nil {
		t.Fatal(err)
	}
	return csv, json
}

// TestE2EStreamByteIdentity is the end-to-end lockdown of the
// streaming tentpole: -stream campaigns — cold local, warm from the
// store, and sharded across a fleet over the NDJSON expand transport —
// must all produce campaign.csv and campaign.json byte-identical to
// the buffered default, and the CSV must still match the committed
// golden fixture.
func TestE2EStreamByteIdentity(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")
	outBuffered := filepath.Join(t.TempDir(), "buffered")

	var sims atomic.Int64
	code, _, stderr := runCLI(t, e2eArgs(storeDir, outBuffered), countRunner(&sims))
	if code != ExitOK {
		t.Fatalf("buffered run exit %d, stderr:\n%s", code, stderr)
	}
	wantCSV, wantJSON := readOutputs(t, outBuffered)

	// Cold streaming run: fresh store, incremental emitters.
	outCold := filepath.Join(t.TempDir(), "stream-cold")
	coldStore := filepath.Join(t.TempDir(), "store-cold")
	var coldSims atomic.Int64
	code, _, stderr = runCLI(t, append(e2eArgs(coldStore, outCold), "-stream"), countRunner(&coldSims))
	if code != ExitOK {
		t.Fatalf("cold -stream run exit %d, stderr:\n%s", code, stderr)
	}
	if coldSims.Load() != 12 {
		t.Fatalf("cold -stream run simulated %d scenarios, want 12", coldSims.Load())
	}

	// Warm streaming run: every cell served from the store, still
	// identical (cache provenance must not leak into streamed rows).
	outWarm := filepath.Join(t.TempDir(), "stream-warm")
	var warmSims atomic.Int64
	code, _, stderr = runCLI(t, append(e2eArgs(storeDir, outWarm), "-stream"), countRunner(&warmSims))
	if code != ExitOK {
		t.Fatalf("warm -stream run exit %d, stderr:\n%s", code, stderr)
	}
	if warmSims.Load() != 0 {
		t.Fatalf("warm -stream run simulated %d scenarios, want 0", warmSims.Load())
	}

	// Fleet streaming run: results arrive per-cell over NDJSON expand
	// streams AND spill through the incremental emitters — the full
	// streaming path, end to end.
	hosts, workerSims := startFleet(t, 3)
	outFleet := filepath.Join(t.TempDir(), "stream-fleet")
	var localSims atomic.Int64
	args := append(e2eArgs(filepath.Join(t.TempDir(), "store-fleet"), outFleet), "-stream", "-workers", hosts)
	code, _, stderr = runCLI(t, args, countRunner(&localSims))
	if code != ExitOK {
		t.Fatalf("fleet -stream run exit %d, stderr:\n%s", code, stderr)
	}
	if localSims.Load() != 0 {
		t.Fatalf("fleet -stream run simulated %d scenarios locally, want 0", localSims.Load())
	}
	var total int64
	for _, s := range workerSims {
		total += s.Load()
	}
	if total != 12 {
		t.Fatalf("fleet simulated %d scenarios in aggregate, want exactly 12", total)
	}

	for _, run := range []struct{ name, dir string }{
		{"cold -stream", outCold}, {"warm -stream", outWarm}, {"fleet -stream", outFleet},
	} {
		csv, json := readOutputs(t, run.dir)
		if !bytes.Equal(csv, wantCSV) {
			t.Errorf("%s campaign.csv deviates from buffered run:\ngot:\n%s\nwant:\n%s", run.name, csv, wantCSV)
		}
		if !bytes.Equal(json, wantJSON) {
			t.Errorf("%s campaign.json deviates from buffered run", run.name)
		}
	}

	// And the golden fixture still holds for the streamed CSV.
	golden, err := os.ReadFile(filepath.Join("testdata", "e2e_campaign.csv.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if csv, _ := readOutputs(t, outCold); !bytes.Equal(csv, golden) {
		t.Errorf("streamed campaign.csv deviates from the committed golden")
	}
}

// TestE2EStreamCancelledCampaign: a campaign cancelled before any cell
// starts is fully deterministic (every cell unstarted with the same
// context error), so the buffered and streaming paths must produce
// byte-identical partial artifacts — and both exit ExitInterrupted.
func TestE2EStreamCancelledCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-start cancellation: deterministic all-unstarted campaign

	dirs := map[string]string{
		"buffered": filepath.Join(t.TempDir(), "buffered"),
		"stream":   filepath.Join(t.TempDir(), "stream"),
	}
	for name, dir := range dirs {
		args := e2eArgs(filepath.Join(t.TempDir(), "store-"+name), dir)
		if name == "stream" {
			args = append(args, "-stream")
		}
		var stdout, stderr bytes.Buffer
		code := MainWithRunnerContext(ctx, args, &stdout, &stderr, sweep.IgnoreContext(cloversim.RunScenario))
		if code != ExitInterrupted {
			t.Fatalf("%s cancelled run exit %d, want %d; stderr:\n%s", name, code, ExitInterrupted, stderr.Bytes())
		}
		if !strings.Contains(stderr.String(), "0 of 12 scenarios completed") {
			t.Errorf("%s cancelled run stderr does not report the interruption:\n%s", name, stderr.Bytes())
		}
	}
	bufCSV, bufJSON := readOutputs(t, dirs["buffered"])
	strCSV, strJSON := readOutputs(t, dirs["stream"])
	if !bytes.Equal(bufCSV, strCSV) {
		t.Errorf("cancelled campaign.csv differs between buffered and -stream:\nbuffered:\n%s\nstream:\n%s", bufCSV, strCSV)
	}
	if !bytes.Equal(bufJSON, strJSON) {
		t.Errorf("cancelled campaign.json differs between buffered and -stream")
	}
}

// watchWriter forwards to buf and fires trigger on every write — the
// seam that lets a runner block until the CLI has SHOWN progress.
type watchWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	trigger func([]byte)
}

func (w *watchWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.Write(b)
	w.trigger(b)
	return n, err
}

func (w *watchWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestE2EProgressBeforeCompletion: -progress must report completions
// while the campaign is still running — the spr8480 half of the grid
// blocks until the live counter has appeared on stderr for the icx
// half, so a progress line that only materialized at campaign end
// would deadlock (bounded by the runner's timeout).
func TestE2EProgressBeforeCompletion(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	stderr := &watchWriter{trigger: func(b []byte) {
		if bytes.Contains(b, []byte("scenarios complete")) {
			once.Do(func() { close(release) })
		}
	}}
	runner := func(s sweep.Scenario) (sweep.Metrics, error) {
		if s.Machine == "spr8480" {
			select {
			case <-release:
			case <-time.After(60 * time.Second):
				return nil, context.DeadlineExceeded
			}
		}
		return cloversim.RunScenario(s)
	}

	var stdout bytes.Buffer
	// One worker slot per cell: the blocked spr8480 goroutines park on
	// the release channel without starving the icx half of the pool
	// (with a small pool they can win the semaphore first and deadlock
	// even though icx cells were dispatched earlier).
	args := append(e2eArgs(filepath.Join(t.TempDir(), "store"), filepath.Join(t.TempDir(), "out")), "-progress", "-workers", "12")
	code := MainWithRunner(args, &stdout, stderr, runner)
	if code != ExitOK {
		t.Fatalf("-progress run exit %d (progress only at campaign end would time the blocked half out); stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "12/12 scenarios complete (0 failed)") {
		t.Errorf("stderr lacks the final progress line:\n%q", stderr.String())
	}
}
