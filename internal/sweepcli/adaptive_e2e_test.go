package sweepcli

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"cloversim"
	"cloversim/internal/store"
	"cloversim/internal/sweep"
	"cloversim/internal/sweepd"
)

// adaptiveArgs is the harness adaptive campaign: a single track with
// the ranks axis bracketed at [1, 256], searched for the frontier of a
// synthetic metric with a known flip between 37 and 38.
func adaptiveArgs(storeDir, outDir string) []string {
	return []string{
		"-q",
		"-machines", "icx",
		"-workloads", "jacobi",
		"-modes", "baseline",
		"-mesh", "1536x1536",
		"-maxrows", "8",
		"-ranks", "1,256",
		"-threads", "8",
		"-seed", "24301",
		"-adaptive", "ranks",
		"-target", "gt:m:0",
		"-store", storeDir,
		"-out", outDir,
	}
}

// frontierRunner is the synthetic physics behind adaptiveArgs: metric m
// crosses zero between ranks 37 and 38, deterministically, so the e2e
// suite can assert the exact bracket without paying for real memsim
// runs per probe.
func frontierRunner(n *atomic.Int64) sweep.Runner {
	return func(s sweep.Scenario) (sweep.Metrics, error) {
		if n != nil {
			n.Add(1)
		}
		var m sweep.Metrics
		m.Add("m", float64(s.Ranks)-37.5)
		return m, nil
	}
}

// startFrontierFleet is startFleet with the synthetic frontier runner
// on every worker, so the fleet and the local adaptive runs execute
// identical physics.
func startFrontierFleet(t *testing.T, n int) (string, []*atomic.Int64) {
	t.Helper()
	urls := make([]string, n)
	sims := make([]*atomic.Int64, n)
	for i := range urls {
		st, err := store.Open(filepath.Join(t.TempDir(), "wstore"), cloversim.PhysicsVersion)
		if err != nil {
			t.Fatal(err)
		}
		count := &atomic.Int64{}
		sims[i] = count
		srv := sweepd.New(st, sweep.IgnoreContext(frontierRunner(count)), 2)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); st.Close() })
		urls[i] = ts.URL
	}
	return strings.Join(urls, ","), sims
}

// TestE2EAdaptiveLocalFleetByteIdentity is the end-to-end lockdown of
// the adaptive tentpole: the same search run locally, sharded across a
// fleet, and warm from the fleet-populated store must produce
// byte-identical frontier.csv, frontier.json and (normalized) stdout;
// the fleet client simulates nothing; the warm run simulates nothing
// anywhere; and the whole search costs <= 1/10 of the 256-cell
// exhaustive cross product.
func TestE2EAdaptiveLocalFleetByteIdentity(t *testing.T) {
	outLocal := filepath.Join(t.TempDir(), "local")
	outFleet := filepath.Join(t.TempDir(), "fleet")
	storeLocal := filepath.Join(t.TempDir(), "slocal")
	storeFleet := filepath.Join(t.TempDir(), "sfleet")

	var localSims atomic.Int64
	code, localStdout, localStderr := runCLI(t, adaptiveArgs(storeLocal, outLocal), frontierRunner(&localSims))
	if code != ExitOK {
		t.Fatalf("local adaptive run exit %d, stderr:\n%s", code, localStderr)
	}
	if localSims.Load() == 0 || localSims.Load() > 25 {
		t.Fatalf("local adaptive run simulated %d cells, want 1..25 (<= 1/10 of the 256-cell cross product)", localSims.Load())
	}

	// The bracket is exact: the frontier row pins [37, 38].
	csv, err := os.ReadFile(filepath.Join(outLocal, "frontier.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), ",37,38,") {
		t.Errorf("frontier.csv does not bracket [37, 38]:\n%s", csv)
	}

	hosts, workerSims := startFrontierFleet(t, 3)
	var clientSims atomic.Int64
	args := append(adaptiveArgs(storeFleet, outFleet), "-workers", hosts)
	code, fleetStdout, fleetStderr := runCLI(t, args, frontierRunner(&clientSims))
	if code != ExitOK {
		t.Fatalf("fleet adaptive run exit %d, stderr:\n%s", code, fleetStderr)
	}
	if clientSims.Load() != 0 {
		t.Fatalf("fleet adaptive run simulated %d cells locally, want 0", clientSims.Load())
	}
	var total int64
	for _, s := range workerSims {
		total += s.Load()
	}
	if total != localSims.Load() {
		t.Fatalf("fleet simulated %d cells in aggregate, want the local run's %d (identical trajectory, no lost or duplicated probes)",
			total, localSims.Load())
	}

	normLocal := normalize(localStdout, map[string]string{outLocal: "$OUT", storeLocal: "$STORE"})
	normFleet := normalize(fleetStdout, map[string]string{outFleet: "$OUT", storeFleet: "$STORE"})
	if !bytes.Equal(normLocal, normFleet) {
		t.Errorf("fleet stdout deviates from local stdout:\nlocal:\n%s\nfleet:\n%s", normLocal, normFleet)
	}
	for _, name := range []string{"frontier.csv", "frontier.json"} {
		local, err := os.ReadFile(filepath.Join(outLocal, name))
		if err != nil {
			t.Fatal(err)
		}
		fleet, err := os.ReadFile(filepath.Join(outFleet, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(local, fleet) {
			t.Errorf("fleet %s deviates from local run:\nlocal:\n%s\nfleet:\n%s", name, local, fleet)
		}
	}

	// Write-through: the fleet's results landed in the client store, so
	// a warm local re-run simulates nothing and emits the same bytes.
	outWarm := filepath.Join(t.TempDir(), "warm")
	var warmSims atomic.Int64
	code, warmStdout, warmStderr := runCLI(t, adaptiveArgs(storeFleet, outWarm), frontierRunner(&warmSims))
	if code != ExitOK {
		t.Fatalf("warm adaptive run exit %d, stderr:\n%s", code, warmStderr)
	}
	if warmSims.Load() != 0 {
		t.Fatalf("warm adaptive run simulated %d cells, want 0 (store must serve every probe)", warmSims.Load())
	}
	normWarm := normalize(warmStdout, map[string]string{outWarm: "$OUT", storeFleet: "$STORE"})
	if !bytes.Equal(normLocal, normWarm) {
		t.Errorf("warm stdout deviates from cold stdout:\ncold:\n%s\nwarm:\n%s", normLocal, normWarm)
	}
	for _, name := range []string{"frontier.csv", "frontier.json"} {
		cold, err := os.ReadFile(filepath.Join(outLocal, name))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := os.ReadFile(filepath.Join(outWarm, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cold, warm) {
			t.Errorf("warm %s deviates from cold run", name)
		}
	}
}

// TestE2EAdaptiveUsageErrors: the adaptive flag surface rejects
// malformed invocations as usage errors (exit 2) before any work runs.
func TestE2EAdaptiveUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-adaptive", "ranks"},                                     // no -target
		{"-target", "gt:m:0"},                                      // no -adaptive
		{"-adaptive", "seed", "-target", "gt:m:0"},                 // bad axis
		{"-adaptive", "ranks", "-target", "sign:m"},                // bad predicate
		{"-adaptive", "ranks", "-target", "gt:m:0", "-stream"},     // stream is exhaustive-only
		{"-adaptive", "ranks", "-target", "gt:m:0", "-ranks", "4"}, // one seed cannot bracket
		{"-adaptive", "ranks", "-target", "delta:m:nt/baseline", "-ranks", "1,8", "-modes", "baseline"}, // delta owns the modes
	}
	for _, extra := range cases {
		args := append([]string{"-q", "-machines", "icx", "-workloads", "jacobi",
			"-ranks", "1,256", "-out", filepath.Join(t.TempDir(), "o")}, extra...)
		var sims atomic.Int64
		code, _, stderr := runCLI(t, args, frontierRunner(&sims))
		if code != ExitUsage {
			t.Errorf("args %v exit %d, want %d; stderr:\n%s", extra, code, ExitUsage, stderr)
		}
		if sims.Load() != 0 {
			t.Errorf("args %v simulated %d cells before failing usage", extra, sims.Load())
		}
	}
}

// TestE2EAdaptiveDeltaTarget drives the mode-pair predicate through
// the CLI: nt beats baseline below rank 41, and the emitted frontier
// brackets [40, 41] with the mode column carrying the pair.
func TestE2EAdaptiveDeltaTarget(t *testing.T) {
	run := func(s sweep.Scenario) (sweep.Metrics, error) {
		var m sweep.Metrics
		switch s.Mode.Name {
		case "baseline":
			m.Add("ratio", 1.5)
		case "nt":
			if s.Ranks <= 40 {
				m.Add("ratio", 1.0)
			} else {
				m.Add("ratio", 2.0)
			}
		}
		return m, nil
	}
	out := filepath.Join(t.TempDir(), "out")
	args := []string{
		"-q", "-machines", "icx", "-workloads", "jacobi",
		"-mesh", "1536x1536", "-maxrows", "8", "-ranks", "1,128", "-threads", "8",
		"-adaptive", "ranks", "-target", "delta:ratio:nt/baseline",
		"-out", out,
	}
	code, stdout, stderr := runCLI(t, args, run)
	if code != ExitOK {
		t.Fatalf("delta adaptive run exit %d, stderr:\n%s", code, stderr)
	}
	csv, err := os.ReadFile(filepath.Join(out, "frontier.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), ",40,41,") {
		t.Errorf("frontier.csv does not bracket [40, 41]:\n%s", csv)
	}
	if !strings.Contains(string(csv), "nt/baseline") {
		t.Errorf("frontier.csv mode column does not carry the pair:\n%s", csv)
	}
	if !strings.Contains(string(stdout), "frontier=1 intervals") {
		t.Errorf("summary does not report one frontier interval:\n%s", stdout)
	}
}

// TestE2EAdaptiveSharesStoreWithExhaustive: adaptive probes are plain
// campaign cells — an exhaustive run over the same scenarios is served
// entirely from the store an adaptive search populated.
func TestE2EAdaptiveSharesStoreWithExhaustive(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")
	var adaptiveSims atomic.Int64
	code, _, stderr := runCLI(t, adaptiveArgs(storeDir, filepath.Join(t.TempDir(), "a")), frontierRunner(&adaptiveSims))
	if code != ExitOK {
		t.Fatalf("adaptive run exit %d, stderr:\n%s", code, stderr)
	}
	// Exhaustively enumerate two cells the search must have visited:
	// its bracketing seeds.
	var sims atomic.Int64
	args := []string{
		"-q",
		"-machines", "icx", "-workloads", "jacobi", "-modes", "baseline",
		"-mesh", "1536x1536", "-maxrows", "8", "-ranks", "1,256", "-threads", "8",
		"-seed", "24301", "-plot", "m",
		"-store", storeDir, "-out", filepath.Join(t.TempDir(), "x"),
	}
	code, _, stderr = runCLI(t, args, frontierRunner(&sims))
	if code != ExitOK {
		t.Fatalf("exhaustive run exit %d, stderr:\n%s", code, stderr)
	}
	if sims.Load() != 0 {
		t.Errorf("exhaustive run over visited cells simulated %d, want 0 (adaptive probes are ordinary store records)", sims.Load())
	}
}

// TestAnalyticStatsFlag: -analytic-stats reports the memsim analytic
// tier's campaign-wide effectiveness on stderr — stderr only, because
// stdout is byte-compared across cold, warm and fleet runs whose
// counters legitimately differ.
func TestAnalyticStatsFlag(t *testing.T) {
	args := []string{
		"-q",
		"-machines", "icx", "-workloads", "stream", "-modes", "baseline",
		"-mesh", "1536x1536", "-maxrows", "8", "-ranks", "4", "-threads", "8",
		"-out", filepath.Join(t.TempDir(), "out"),
		"-analytic-stats",
	}
	code, stdout, stderr := runCLI(t, args, cloversim.RunScenario)
	if code != ExitOK {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(string(stderr), "sweep: analytic tier: ") {
		t.Errorf("stderr lacks the analytic-tier report:\n%s", stderr)
	}
	if !strings.Contains(string(stderr), "solved analytically") {
		t.Errorf("report does not carry AnalyticStats.String():\n%s", stderr)
	}
	if strings.Contains(string(stdout), "analytic tier") {
		t.Errorf("analytic-tier report leaked onto byte-compared stdout:\n%s", stdout)
	}

	// Off by default: without the flag, stderr stays clean.
	args = args[:len(args)-1]
	code, _, stderr = runCLI(t, args, cloversim.RunScenario)
	if code != ExitOK {
		t.Fatalf("exit %d without -analytic-stats, stderr:\n%s", code, stderr)
	}
	if strings.Contains(string(stderr), "analytic tier") {
		t.Errorf("analytic-tier report printed without -analytic-stats:\n%s", stderr)
	}
}

// TestAnalyticStatsFlagAdaptive: the report also covers adaptive
// campaigns (probes run the same memsim physics underneath).
func TestAnalyticStatsFlagAdaptive(t *testing.T) {
	args := append(adaptiveArgs(filepath.Join(t.TempDir(), "s"), filepath.Join(t.TempDir(), "o")),
		"-analytic-stats")
	code, _, stderr := runCLI(t, args, frontierRunner(nil))
	if code != ExitOK {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(string(stderr), "sweep: analytic tier: ") {
		t.Errorf("adaptive stderr lacks the analytic-tier report:\n%s", stderr)
	}
}
