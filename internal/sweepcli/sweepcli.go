// Package sweepcli is the cmd/sweep program as a library: flag
// parsing, grid construction, engine execution, emitter output and
// exit-code policy, runnable in-process against injected streams and
// runners so the end-to-end test harness can golden-compare real CLI
// behavior (and count simulations) without spawning a process.
package sweepcli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"cloversim"
	"cloversim/internal/dispatch"
	"cloversim/internal/machine"
	"cloversim/internal/memsim"
	"cloversim/internal/store"
	"cloversim/internal/sweep"
	"cloversim/internal/workload"
)

// Exit codes. Scenario failures and I/O failures are runtime errors
// (1); unparseable flags and unknown axis values are usage errors (2);
// an interrupted campaign (SIGINT/SIGTERM or a cancelled context)
// whose completed cells were emitted — and persisted, when -store is
// set — exits 3 so scripts can tell "partial but resumable" apart
// from "failed". A durability failure (store write or sync) is always
// a runtime error, even when the run was also interrupted: the
// partial-results-persisted promise of exit 3 would be a lie.
const (
	ExitOK          = 0
	ExitRuntime     = 1
	ExitUsage       = 2
	ExitInterrupted = 3
)

// Main runs the sweep CLI against the production runner and physics,
// with SIGINT/SIGTERM cancelling the campaign: running scenarios
// complete and persist, unstarted ones are skipped, the partial
// campaign is emitted, and the exit code is ExitInterrupted.
//
//lint:allow ctxflow CLI root: mints the process signal context; its goroutine is the signal-unregister watcher bounded by it
func Main(argv []string, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// Once the first signal has cancelled the campaign, unregister
		// the handler: a second Ctrl-C gets default die-now behavior
		// instead of being swallowed while an uninterruptible in-flight
		// scenario finishes.
		<-ctx.Done()
		stop()
	}()
	return MainWithRunnerContext(ctx, argv, stdout, stderr, cloversim.RunScenarioContext)
}

// MainWithRunner is Main with an injectable scenario runner — the seam
// the e2e harness uses to prove a warm store performs zero simulation
// work. No signal handling is installed; the campaign is
// uncancellable.
func MainWithRunner(argv []string, stdout, stderr io.Writer, runner sweep.Runner) int {
	return MainWithRunnerContext(context.Background(), argv, stdout, stderr, sweep.IgnoreContext(runner))
}

// MainWithRunnerContext is the CLI core: campaign execution runs
// under ctx, so cancelling it interrupts the sweep (exit code
// ExitInterrupted, partial results emitted and persisted). Main wires
// ctx to SIGINT/SIGTERM; tests drive cancellation directly.
func MainWithRunnerContext(ctx context.Context, argv []string, stdout, stderr io.Writer, runner sweep.RunnerContext) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		machines  = fs.String("machines", "all", "comma-separated machine presets, or all of "+strings.Join(machine.Names(), ","))
		workloads = fs.String("workloads", "all", "comma-separated workloads, or all of "+strings.Join(workload.Names(), ","))
		modes     = fs.String("modes", "all", "comma-separated evasion modes, or all of "+strings.Join(sweep.ModeNames(), ","))
		ranks     = fs.String("ranks", "", "comma-separated rank counts (default: full node)")
		threads   = fs.String("threads", "", "comma-separated microbenchmark core counts (default: full node)")
		mesh      = fs.String("mesh", "", "comma-separated problem sizes WxH (default: 15360x15360)")
		maxRows   = fs.Int("maxrows", 0, "y-extent truncation (0 = fast default 32, -1 = paper-faithful full extent)")
		seed      = fs.Uint64("seed", 0, "deterministic PRNG seed (0 = default)")
		workers   = fs.String("workers", "0", "local worker count (0 = GOMAXPROCS), or a comma-separated list of sweepd worker URLs to shard the campaign across a fleet")
		out       = fs.String("out", "results/sweep", "output directory for campaign.csv and campaign.json")
		storeDir  = fs.String("store", "", "persistent result store directory; already-simulated scenarios are served from it and fresh results are recorded, making campaigns resumable")
		plot      = fs.String("plot", "store_ratio", "metric for the ASCII summary chart (empty = first metric)")
		quiet     = fs.Bool("q", false, "suppress per-scenario progress and the result table")
		progress  = fs.Bool("progress", false, "live completion counter on stderr, updated as each scenario finishes (combines with -q for quiet-but-visible campaigns)")
		stream    = fs.Bool("stream", false, "write campaign.csv and campaign.json incrementally as results complete, holding only out-of-order completions in memory; final bytes are identical to the buffered default")
		analytic  = fs.String("analytic", "auto", "memsim analytic fast path: auto, off or force — all three simulate identical physics (golden-verified), so this never affects results or store keys")
		astats    = fs.Bool("analytic-stats", false, "report memsim analytic-tier effectiveness (runs solved in O(1) vs per-reason simulation fallbacks) on stderr after the campaign")
		compact   = fs.Bool("store-compact", false, "compact the -store directory (merge all segments into one, dropping stale and corrupt lines) and exit without running a campaign; requires exclusive ownership of the store")
		adaptive  = fs.String("adaptive", "", "adaptive frontier search along this numeric axis (ranks, threads or mesh) instead of the exhaustive cross product; needs -target and at least two axis values as the bracketing seeds")
		target    = fs.String("target", "", "frontier predicate for -adaptive: delta:<metric>:<modeA>/<modeB>, lt:<metric>:<value>, gt:<metric>:<value>, or model:<metric>:<analytic-metric>:<reltol>")
		tol       = fs.Int("tol", 1, "adaptive: stop refining an interval once its axis gap is at most this (mesh: larger componentwise distance)")
		maxRounds = fs.Int("max-rounds", 16, "adaptive: refinement wave bound")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return ExitOK
		}
		return ExitUsage
	}
	amode, err := memsim.ParseAnalyticMode(*analytic)
	if err != nil {
		return usage(stderr, err)
	}
	// Pinned process-wide rather than threaded through the scenario
	// config: the knob selects an implementation path, never physics,
	// and must not perturb scenario hashes.
	memsim.DefaultAnalytic = amode
	if *astats {
		// The counters are process-global; zero them so the report
		// covers exactly this invocation.
		memsim.ResetGlobalAnalyticStats()
	}

	if *compact {
		// Maintenance mode: compact and exit. No campaign runs, so none
		// of the grid flags apply; misuse without a store is a usage
		// error, a failed compaction a runtime one.
		if *storeDir == "" {
			return usage(stderr, errors.New("-store-compact requires -store"))
		}
		return runCompact(stdout, stderr, *storeDir)
	}

	// -workers is overloaded: an integer sizes the local pool, anything
	// else is a fleet of sweepd worker URLs for the remote backend.
	var localWorkers int
	var workerHosts []string
	if n, err := strconv.Atoi(strings.TrimSpace(*workers)); err == nil {
		localWorkers = n
	} else {
		workerHosts = splitList(*workers)
		if len(workerHosts) == 0 {
			return usage(stderr, fmt.Errorf("bad -workers %q: want a count or a list of sweepd URLs", *workers))
		}
	}

	// The grid resolves through the same names-based GridSpec the
	// sweepd HTTP API decodes, so the two surfaces cannot drift.
	spec := sweep.GridSpec{
		Machines:  machine.Names(),
		Workloads: workload.Names(),
		Modes:     sweep.ModeNames(),
		MaxRows:   *maxRows,
		Seed:      *seed,
	}
	if *machines != "all" {
		spec.Machines = splitList(*machines)
	}
	if *workloads != "all" {
		spec.Workloads = splitList(*workloads)
	}
	if *modes != "all" {
		spec.Modes = splitList(*modes)
	}
	spec.Meshes = splitList(*mesh)
	if spec.Ranks, err = intList(*ranks); err != nil {
		return usage(stderr, err)
	}
	if spec.Threads, err = intList(*threads); err != nil {
		return usage(stderr, err)
	}
	grid, err := spec.Resolve(workload.ValidateAxes)
	if err != nil {
		return usage(stderr, err)
	}

	eng := sweep.NewEngine(localWorkers)
	// workersDesc names the execution backend in the startup banner.
	workersDesc := func() string {
		if nw := localWorkers; nw > 0 {
			return fmt.Sprintf("%d workers", nw)
		}
		return fmt.Sprintf("%d workers", runtime.GOMAXPROCS(0))
	}()
	if len(workerHosts) > 0 {
		// Remote backend: shard this campaign's cold cells across the
		// fleet. The memoizer, store probe/write-through and emitters
		// are untouched — distributed output is byte-identical to local.
		fleet, err := dispatch.New(ctx, workerHosts, cloversim.PhysicsVersion)
		if err != nil {
			return runtimeErr(stderr, err)
		}
		eng.Backend = fleet
		workersDesc = fmt.Sprintf("fleet of %d workers (capacity %d)", fleet.Size(), fleet.Capacity())
	}
	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir, cloversim.PhysicsVersion)
		if err != nil {
			return runtimeErr(stderr, err)
		}
		// Belt for the early-return paths below; the success path
		// Closes explicitly (Close is idempotent) so sync errors reach
		// the exit code.
		defer st.Close()
		if stats := st.Stats(); stats.Corrupt > 0 {
			// Corruption is survivable but worth a trace on stderr
			// (stdout stays byte-identical between cold and warm runs).
			// Duplicates are NOT damage: concurrent writers converging
			// on the same scenario is the store's documented behavior.
			fmt.Fprintf(stderr, "sweep: store %s recovered with damage: %s\n", *storeDir, stats)
		}
		if !*quiet {
			fmt.Fprintf(stdout, "store: %s holds %d results under physics %s\n",
				*storeDir, st.Len(), cloversim.PhysicsVersion)
		}
		eng.Cache = st
	}
	if *adaptive != "" || *target != "" {
		// Adaptive frontier search: the grid is a search space, not an
		// enumeration. Everything set up above — engine, memoizer,
		// store write-through, local or fleet backend — applies
		// unchanged; only which cells run is decided wave by wave.
		if *adaptive == "" {
			return usage(stderr, errors.New("-target requires -adaptive"))
		}
		if *target == "" {
			return usage(stderr, errors.New("-adaptive requires -target"))
		}
		if *stream {
			return usage(stderr, errors.New("-stream applies to exhaustive campaigns; -adaptive has its own frontier emitters"))
		}
		code := runAdaptive(ctx, adaptiveRun{
			grid: grid, axis: *adaptive, target: *target,
			tol: *tol, maxRounds: *maxRounds,
			modesSet: *modes != "all",
			eng:      eng, store: st, runner: runner,
			out: *out, quiet: *quiet, liveProgress: *progress,
			workersDesc: workersDesc,
			stdout:      stdout, stderr: stderr,
		})
		reportAnalyticStats(stderr, *astats)
		return code
	}
	if !*quiet {
		fmt.Fprintf(stdout, "sweep: %d scenarios (%d machines x %d workloads x %d modes), %s\n",
			grid.Size(), len(grid.Machines), len(grid.Workloads), len(grid.Modes), workersDesc)
		eng.Progress = func(done, total int, r sweep.Result) {
			fmt.Fprintln(stdout, sweep.ProgressLine(done, total, r))
		}
	}

	// Per-campaign hooks (the live counter, the incremental emitters)
	// ride the engine's serialized progress funnel, which fires exactly
	// once per scenario — warm hits, in-campaign duplicates and
	// never-started cells included — so the stream emitters always see
	// a complete campaign.
	scenarios := grid.Expand()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return runtimeErr(stderr, err)
	}
	csvPath := filepath.Join(*out, "campaign.csv")
	jsonPath := filepath.Join(*out, "campaign.json")
	var hooks []func(done, total int, r sweep.Result)
	if *progress {
		// One carriage-returned line on stderr: stdout keeps its
		// byte-stable contract, and -q campaigns stay observable.
		failed := 0
		hooks = append(hooks, func(done, total int, r sweep.Result) {
			if r.Err != nil && !errors.Is(r.Err, sweep.ErrUnstarted) {
				failed++
			}
			fmt.Fprintf(stderr, "\rsweep: %d/%d scenarios complete (%d failed)", done, total, failed)
		})
	}
	var streamErr error
	var streamClose func() error
	if *stream {
		// Incremental artifacts: rows spill to disk in grid order as
		// results finalize, the files assemble at Close, and the final
		// bytes match the buffered emitters exactly. Memory holds only
		// completions that arrived ahead of a still-running cell.
		csvFile, err := os.Create(csvPath)
		if err != nil {
			return runtimeErr(stderr, err)
		}
		cs, err := sweep.NewCSVStream(csvFile, scenarios)
		if err != nil {
			csvFile.Close()
			return runtimeErr(stderr, err)
		}
		jsonFile, err := os.Create(jsonPath)
		if err != nil {
			cs.Close()
			csvFile.Close()
			return runtimeErr(stderr, err)
		}
		js, err := sweep.NewJSONStream(jsonFile, scenarios, true)
		if err != nil {
			cs.Close()
			csvFile.Close()
			jsonFile.Close()
			return runtimeErr(stderr, err)
		}
		hooks = append(hooks, func(done, total int, r sweep.Result) {
			if streamErr != nil {
				return
			}
			if err := cs.Add(r); err != nil {
				streamErr = err
				return
			}
			if err := js.Add(r); err != nil {
				streamErr = err
			}
		})
		streamClose = func() error {
			errs := streamErr
			for _, close := range []func() error{cs.Close, csvFile.Close, js.Close, jsonFile.Close} {
				if err := close(); err != nil {
					errs = errors.Join(errs, err)
				}
			}
			return errs
		}
	}
	var perRun func(done, total int, r sweep.Result)
	if len(hooks) > 0 {
		perRun = func(done, total int, r sweep.Result) {
			for _, h := range hooks {
				h(done, total, r)
			}
		}
	}
	c := eng.RunScenariosContextProgress(ctx, scenarios, runner, perRun)
	if *progress {
		fmt.Fprintln(stderr) // terminate the carriage-returned line
	}
	reportAnalyticStats(stderr, *astats)

	if streamClose != nil {
		if err := streamClose(); err != nil {
			return runtimeErr(stderr, err)
		}
	} else {
		if err := emitFile(csvPath, sweep.CSVEmitter{}, c); err != nil {
			return runtimeErr(stderr, err)
		}
		if err := emitFile(jsonPath, sweep.JSONEmitter{Indent: true}, c); err != nil {
			return runtimeErr(stderr, err)
		}
	}

	if !*quiet {
		fmt.Fprintf(stdout, "\n%s\n", c.Table().Format())
	}
	if err := (sweep.SummaryEmitter{Metric: *plot}).Emit(stdout, c); err != nil {
		return runtimeErr(stderr, err)
	}
	fmt.Fprintf(stdout, "wrote %s and %s\n", csvPath, jsonPath)

	code := ExitOK
	if c.CacheErr != nil {
		// Results were computed and emitted, but the store did not
		// durably record them: a resumed campaign would re-simulate.
		// Scripts must see that.
		fmt.Fprintln(stderr, "sweep: store writes failed:", c.CacheErr)
		code = ExitRuntime
	}
	if st != nil {
		// Explicit Close: a failed sync (EIO/ENOSPC surfacing at
		// fsync) means the records are not durable, which breaks the
		// resumability contract just like a failed Put.
		if err := st.Close(); err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			code = ExitRuntime
		}
	}
	if unstarted := c.Unstarted(); len(unstarted) > 0 {
		// The campaign was interrupted: completed cells were emitted
		// (and, with -store, persisted and fsynced by the Close above),
		// never-started cells carry ErrUnstarted. Genuine simulation
		// failures among the completed cells still get reported, but
		// the exit code stays ExitInterrupted unless durability broke
		// (code is already ExitRuntime then): "interrupted, partial
		// results persisted" is the stronger signal for scripts, which
		// re-run the campaign to finish it either way.
		completed := len(c.Results) - len(unstarted)
		fmt.Fprintf(stderr, "sweep: interrupted: %d of %d scenarios completed, %d not started\n",
			completed, len(c.Results), len(unstarted))
		for _, r := range c.Failed() {
			if !errors.Is(r.Err, sweep.ErrUnstarted) {
				fmt.Fprintf(stderr, "sweep: %s (%s): %v\n", r.Scenario.Label(), r.ID, r.Err)
			}
		}
		if code == ExitOK {
			code = ExitInterrupted
		}
		return code
	}
	// Error isolation means the campaign always completes and both
	// files are written — but scripts still need a failure signal:
	// any failed scenario makes the exit code non-zero.
	if err := c.Err(); err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		code = ExitRuntime
	}
	return code
}

// runCompact is the -store-compact maintenance mode: open the store,
// merge its segments, report, exit. The caller must own the store
// directory exclusively — see store.Compact's protocol doc.
func runCompact(stdout, stderr io.Writer, dir string) int {
	st, err := store.Open(dir, cloversim.PhysicsVersion)
	if err != nil {
		return runtimeErr(stderr, err)
	}
	defer st.Close()
	if stats := st.Stats(); stats.Corrupt > 0 || stats.Conflicts > 0 {
		fmt.Fprintf(stderr, "sweep: store %s recovered with damage: %s\n", dir, stats)
	}
	cs, err := st.Compact()
	if err != nil {
		return runtimeErr(stderr, err)
	}
	if err := st.Close(); err != nil {
		return runtimeErr(stderr, err)
	}
	fmt.Fprintf(stdout, "store %s: %s\n", dir, cs)
	return ExitOK
}

func usage(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "sweep:", err)
	return ExitUsage
}

func runtimeErr(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "sweep:", err)
	return ExitRuntime
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func intList(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func emitFile(path string, e sweep.Emitter, c sweep.Campaign) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := e.Emit(f, c); err != nil {
		return err
	}
	return f.Close()
}
