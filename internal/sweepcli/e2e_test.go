package sweepcli

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"cloversim"
	"cloversim/internal/memsim"
	"cloversim/internal/sweep"
)

// updateGolden regenerates this package's e2e fixtures:
//
//	go test -run TestE2E -update-golden ./internal/sweepcli
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/e2e_*.golden fixtures")

// e2eArgs is the harness campaign: two machines x two workloads x
// three modes on a reduced mesh — small enough for every CI pass,
// broad enough to exercise multi-metric column union and the summary
// chart.
func e2eArgs(storeDir, outDir string) []string {
	return []string{
		"-q",
		"-machines", "icx,spr8480",
		"-workloads", "jacobi,stream",
		"-modes", "baseline,speci2m-off,nt",
		"-mesh", "1536x1536",
		"-maxrows", "8",
		"-ranks", "4",
		"-threads", "8",
		"-seed", "24301",
		"-plot", "jacobi_ratio",
		"-store", storeDir,
		"-out", outDir,
	}
}

// countRunner wraps the production runner and counts real simulations.
func countRunner(n *atomic.Int64) sweep.Runner {
	return func(s sweep.Scenario) (sweep.Metrics, error) {
		n.Add(1)
		return cloversim.RunScenario(s)
	}
}

// normalize replaces run-specific temp paths so stdout can be compared
// across runs and against a committed fixture.
func normalize(out []byte, repl map[string]string) []byte {
	for from, to := range repl {
		out = bytes.ReplaceAll(out, []byte(from), []byte(to))
	}
	return out
}

// runCLI executes the CLI in-process and returns exit code, stdout and
// stderr.
func runCLI(t *testing.T, args []string, runner sweep.Runner) (int, []byte, []byte) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := MainWithRunner(args, &stdout, &stderr, runner)
	return code, stdout.Bytes(), stderr.Bytes()
}

// TestE2EResumableCampaign is the end-to-end lockdown of the tentpole:
// a cold run populates the store; a warm re-run in a fresh "process"
// (fresh engine, fresh streams) performs ZERO simulations yet produces
// byte-identical stdout, CSV and JSON; and both match committed golden
// fixtures.
func TestE2EResumableCampaign(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")
	outCold := filepath.Join(t.TempDir(), "cold")
	outWarm := filepath.Join(t.TempDir(), "warm")

	var coldSims atomic.Int64
	code, coldStdout, coldStderr := runCLI(t, e2eArgs(storeDir, outCold), countRunner(&coldSims))
	if code != ExitOK {
		t.Fatalf("cold run exit %d, stderr:\n%s", code, coldStderr)
	}
	if coldSims.Load() != 12 {
		t.Fatalf("cold run simulated %d scenarios, want 12", coldSims.Load())
	}

	var warmSims atomic.Int64
	code, warmStdout, warmStderr := runCLI(t, e2eArgs(storeDir, outWarm), countRunner(&warmSims))
	if code != ExitOK {
		t.Fatalf("warm run exit %d, stderr:\n%s", code, warmStderr)
	}
	if warmSims.Load() != 0 {
		t.Fatalf("warm run simulated %d scenarios, want 0 (store must serve every cell)", warmSims.Load())
	}

	// Stdout differs only in the -out path; normalized it must be
	// byte-identical.
	normCold := normalize(coldStdout, map[string]string{outCold: "$OUT"})
	normWarm := normalize(warmStdout, map[string]string{outWarm: "$OUT"})
	if !bytes.Equal(normCold, normWarm) {
		t.Errorf("warm stdout deviates from cold stdout:\ncold:\n%s\nwarm:\n%s", normCold, normWarm)
	}
	for _, name := range []string{"campaign.csv", "campaign.json"} {
		cold, err := os.ReadFile(filepath.Join(outCold, name))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := os.ReadFile(filepath.Join(outWarm, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cold, warm) {
			t.Errorf("warm %s deviates from cold run", name)
		}
	}

	// Golden comparison against committed fixtures.
	stdoutPath := filepath.Join("testdata", "e2e_stdout.golden")
	csvPath := filepath.Join("testdata", "e2e_campaign.csv.golden")
	csv, err := os.ReadFile(filepath.Join(outCold, "campaign.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(stdoutPath, normCold, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(csvPath, csv, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s and %s", stdoutPath, csvPath)
		return
	}
	wantStdout, err := os.ReadFile(stdoutPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create the fixture)", err)
	}
	if !bytes.Equal(normCold, wantStdout) {
		t.Errorf("stdout deviates from %s:\ngot:\n%s\nwant:\n%s", stdoutPath, normCold, wantStdout)
	}
	wantCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv, wantCSV) {
		t.Errorf("campaign CSV deviates from %s:\ngot:\n%s\nwant:\n%s", csvPath, csv, wantCSV)
	}
}

// TestE2EPartialResume: an interrupted campaign (subset of the grid)
// leaves a partially warm store; the full campaign then simulates only
// the missing cells.
func TestE2EPartialResume(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")

	partial := e2eArgs(storeDir, filepath.Join(t.TempDir(), "p"))
	for i, a := range partial {
		if a == "baseline,speci2m-off,nt" {
			partial[i] = "baseline" // 4 of the 12 cells
		}
	}
	var sims atomic.Int64
	if code, _, errOut := runCLI(t, partial, countRunner(&sims)); code != ExitOK {
		t.Fatalf("partial run exit %d: %s", code, errOut)
	}
	if sims.Load() != 4 {
		t.Fatalf("partial run simulated %d, want 4", sims.Load())
	}

	sims.Store(0)
	if code, _, errOut := runCLI(t, e2eArgs(storeDir, filepath.Join(t.TempDir(), "f")), countRunner(&sims)); code != ExitOK {
		t.Fatalf("resumed run exit %d: %s", code, errOut)
	}
	if sims.Load() != 8 {
		t.Fatalf("resumed run simulated %d scenarios, want exactly the 8 cold ones", sims.Load())
	}
}

// TestExitCodeOnScenarioFailure is the regression lock for the exit
// status contract: scenario failures inside the worker pool must
// surface as a non-zero exit even though the campaign completes and
// both output files are written.
func TestExitCodeOnScenarioFailure(t *testing.T) {
	outDir := filepath.Join(t.TempDir(), "out")
	boom := errors.New("injected failure")
	failing := func(s sweep.Scenario) (sweep.Metrics, error) {
		if s.Mode.Name == "nt" {
			return nil, boom
		}
		return cloversim.RunScenario(s)
	}
	args := append([]string{}, e2eArgs(filepath.Join(t.TempDir(), "store"), outDir)...)
	code, _, stderr := runCLI(t, args, failing)
	if code != ExitRuntime {
		t.Fatalf("exit code %d with failing scenarios, want %d", code, ExitRuntime)
	}
	if !strings.Contains(string(stderr), "injected failure") {
		t.Errorf("stderr does not name the failure:\n%s", stderr)
	}
	// Error isolation: the emitters still ran.
	for _, name := range []string{"campaign.csv", "campaign.json"} {
		if _, err := os.Stat(filepath.Join(outDir, name)); err != nil {
			t.Errorf("failed campaign did not write %s: %v", name, err)
		}
	}
	// And the failures were not persisted: a retry with a healed runner
	// succeeds and exits 0 from the same store.
	var sims atomic.Int64
	code, _, stderr = runCLI(t, args, countRunner(&sims))
	if code != ExitOK {
		t.Fatalf("healed retry exit %d: %s", code, stderr)
	}
	if sims.Load() != 4 {
		t.Fatalf("healed retry simulated %d scenarios, want the 4 previously failed", sims.Load())
	}
}

// TestExitCodeOnUsageError: unknown axis values are usage errors.
func TestExitCodeOnUsageError(t *testing.T) {
	cases := [][]string{
		{"-machines", "nonexistent"},
		{"-workloads", "nonexistent"},
		{"-modes", "nonexistent"},
		{"-mesh", "bogus"},
		{"-ranks", "x"},
		{"-nosuchflag"},
		{"-analytic", "fast"},
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args, cloversim.RunScenario); code != ExitUsage {
			t.Errorf("args %v exit %d, want %d", args, code, ExitUsage)
		}
	}
}

// TestAnalyticFlagBothWays: the -analytic knob selects the memsim
// implementation path, never the physics — a campaign forced onto the
// analytic tier must produce byte-identical CSV and JSON to one forced
// off it, end to end through the CLI.
func TestAnalyticFlagBothWays(t *testing.T) {
	defer func(prev memsim.AnalyticMode) { memsim.DefaultAnalytic = prev }(memsim.DefaultAnalytic)
	var outs [2]string
	for i, mode := range []string{"force", "off"} {
		outs[i] = filepath.Join(t.TempDir(), mode)
		args := append(e2eArgs(filepath.Join(t.TempDir(), "store-"+mode), outs[i]), "-analytic", mode)
		if code, _, stderr := runCLI(t, args, cloversim.RunScenario); code != ExitOK {
			t.Fatalf("-analytic %s exit %d, stderr:\n%s", mode, code, stderr)
		}
	}
	for _, name := range []string{"campaign.csv", "campaign.json"} {
		force, err := os.ReadFile(filepath.Join(outs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		off, err := os.ReadFile(filepath.Join(outs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(force, off) {
			t.Errorf("%s diverges between -analytic force and -analytic off", name)
		}
	}
}

// TestExitCodeOnStoreWriteFailure: a store that cannot accept writes
// must fail the run (resumability silently lost is an error), while
// still emitting results.
func TestExitCodeOnStoreWriteFailure(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	storeDir := filepath.Join(t.TempDir(), "store")
	if err := os.MkdirAll(storeDir, 0o555); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, e2eArgs(storeDir, filepath.Join(t.TempDir(), "out")), cloversim.RunScenario)
	if code != ExitRuntime {
		t.Fatalf("exit %d with unwritable store, want %d; stderr:\n%s", code, ExitRuntime, stderr)
	}
}
