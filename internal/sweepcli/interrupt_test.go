package sweepcli

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cloversim"
	"cloversim/internal/store"
	"cloversim/internal/sweep"
)

// TestE2ESIGINTInterruptsCampaign drives the real signal path: a
// campaign is interrupted by an actual SIGINT to this process, the
// in-flight scenario completes and persists, unstarted scenarios are
// skipped, the partial campaign files are written, and the exit code
// is the documented ExitInterrupted (3). A re-run against the same
// store resumes exactly the unfinished cells.
func TestE2ESIGINTInterruptsCampaign(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")
	outDir := filepath.Join(t.TempDir(), "out")
	// One worker: a single in-flight cell, eleven queued behind it.
	args := append([]string{"-workers", "1"}, e2eArgs(storeDir, outDir)...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var sims atomic.Int64
	started := make(chan struct{})
	var once sync.Once
	runner := func(rctx context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		sims.Add(1)
		once.Do(func() { close(started) })
		// A long-running cell: it finishes only after the interrupt,
		// proving in-flight work is completed and persisted, not torn.
		select {
		case <-rctx.Done():
		case <-time.After(10 * time.Second):
			return nil, errors.New("SIGINT never cancelled the campaign")
		}
		var m sweep.Metrics
		m.Add("v", 42)
		return m, nil
	}
	go func() {
		<-started
		syscall.Kill(os.Getpid(), syscall.SIGINT)
	}()

	var stdout, stderr bytes.Buffer
	code := MainWithRunnerContext(ctx, args, &stdout, &stderr, runner)
	if code != ExitInterrupted {
		t.Fatalf("interrupted campaign exit %d, want %d; stderr:\n%s", code, ExitInterrupted, stderr.Bytes())
	}
	if got := sims.Load(); got != 1 {
		t.Errorf("interrupted campaign simulated %d cells, want only the 1 in flight at SIGINT", got)
	}
	if msg := stderr.String(); !strings.Contains(msg, "interrupted: 1 of 12 scenarios completed") {
		t.Errorf("stderr does not report the interruption:\n%s", msg)
	}

	// The store holds exactly the completed cell — durable, because the
	// CLI closed (and thus synced) the store before exiting.
	st, err := store.Open(storeDir, cloversim.PhysicsVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 1 {
		t.Fatalf("store holds %d records after interrupt, want exactly the 1 completed cell", st.Len())
	}

	// The partial campaign was still emitted, with unstarted cells
	// carrying their distinguished error.
	raw, err := os.ReadFile(filepath.Join(outDir, "campaign.json"))
	if err != nil {
		t.Fatalf("interrupted campaign did not write campaign.json: %v", err)
	}
	var emitted struct {
		Scenarios int `json:"scenarios"`
		Failed    int `json:"failed"`
		Results   []struct {
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &emitted); err != nil {
		t.Fatal(err)
	}
	if emitted.Scenarios != 12 || emitted.Failed != 11 {
		t.Errorf("campaign.json reports %d scenarios, %d failed; want 12 with 11 unstarted", emitted.Scenarios, emitted.Failed)
	}
	unstarted := 0
	for _, r := range emitted.Results {
		if strings.Contains(r.Error, sweep.ErrUnstarted.Error()) {
			unstarted++
		}
	}
	if unstarted != 11 {
		t.Errorf("%d results marked unstarted in campaign.json, want 11", unstarted)
	}
	if _, err := os.Stat(filepath.Join(outDir, "campaign.csv")); err != nil {
		t.Errorf("interrupted campaign did not write campaign.csv: %v", err)
	}

	// Resume: the same campaign against the same store simulates only
	// the 11 cells the interrupt skipped, then exits 0.
	var resumed atomic.Int64
	code, _, errOut := runCLI(t, e2eArgs(storeDir, filepath.Join(t.TempDir(), "resume")), countRunner(&resumed))
	if code != ExitOK {
		t.Fatalf("resumed campaign exit %d: %s", code, errOut)
	}
	if resumed.Load() != 11 {
		t.Errorf("resumed campaign simulated %d cells, want the 11 unfinished ones", resumed.Load())
	}
}

// TestInterruptExitCodePrecedence: exit 3 promises "partial results
// persisted", so a store that failed to accept writes must override it
// with the runtime-error code.
func TestInterruptExitCodePrecedence(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	storeDir := filepath.Join(t.TempDir(), "store")
	if err := os.MkdirAll(storeDir, 0o555); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	runner := func(rctx context.Context, s sweep.Scenario) (sweep.Metrics, error) {
		once.Do(cancel) // interrupt as soon as the first cell runs
		var m sweep.Metrics
		m.Add("v", 1)
		return m, nil
	}
	args := append([]string{"-workers", "1"}, e2eArgs(storeDir, filepath.Join(t.TempDir(), "out"))...)
	var stdout, stderr bytes.Buffer
	code := MainWithRunnerContext(ctx, args, &stdout, &stderr, runner)
	if code != ExitRuntime {
		t.Fatalf("interrupted campaign with unwritable store exit %d, want %d (durability loss outranks the interrupt); stderr:\n%s",
			code, ExitRuntime, stderr.Bytes())
	}
	if msg := stderr.String(); !strings.Contains(msg, "interrupted") {
		t.Errorf("stderr should still report the interruption:\n%s", msg)
	}
}

// TestCancelledBeforeStart: a context that is already dead yields a
// fully-unstarted campaign, zero simulations, and exit 3 — the CLI
// never hangs on a doomed run.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sims atomic.Int64
	args := e2eArgs(filepath.Join(t.TempDir(), "store"), filepath.Join(t.TempDir(), "out"))
	var stdout, stderr bytes.Buffer
	code := MainWithRunnerContext(ctx, args, &stdout, &stderr, func(context.Context, sweep.Scenario) (sweep.Metrics, error) {
		sims.Add(1)
		return nil, nil
	})
	if code != ExitInterrupted {
		t.Fatalf("pre-cancelled run exit %d, want %d", code, ExitInterrupted)
	}
	if sims.Load() != 0 {
		t.Errorf("pre-cancelled run simulated %d cells", sims.Load())
	}
	if !strings.Contains(stderr.String(), "interrupted: 0 of 12 scenarios completed") {
		t.Errorf("stderr does not report the fully-unstarted campaign:\n%s", stderr.String())
	}
}
