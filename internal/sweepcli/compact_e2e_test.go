package sweepcli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// TestE2ECompactedStoreByteIdentity: compaction is invisible to
// campaigns. A cold run populates a multi-record store; -store-compact
// rewrites it into one sidecar-indexed segment; a warm run in a fresh
// "process" then performs ZERO simulations and produces stdout, CSV
// and JSON byte-identical to the uncompacted cold run.
func TestE2ECompactedStoreByteIdentity(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")
	outCold := filepath.Join(t.TempDir(), "cold")
	outWarm := filepath.Join(t.TempDir(), "warm")

	var coldSims atomic.Int64
	code, coldStdout, coldStderr := runCLI(t, e2eArgs(storeDir, outCold), countRunner(&coldSims))
	if code != ExitOK {
		t.Fatalf("cold run exit %d, stderr:\n%s", code, coldStderr)
	}

	code, compactStdout, compactStderr := runCLI(t,
		[]string{"-store", storeDir, "-store-compact"}, countRunner(&coldSims))
	if code != ExitOK {
		t.Fatalf("-store-compact exit %d, stderr:\n%s", code, compactStderr)
	}
	if !strings.Contains(string(compactStdout), "compacted") {
		t.Fatalf("-store-compact stdout missing report:\n%s", compactStdout)
	}
	segs, err := filepath.Glob(filepath.Join(storeDir, "seg-*.jsonl"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments after compact: %v (%v), want exactly one", segs, err)
	}
	if _, err := os.Stat(strings.TrimSuffix(segs[0], ".jsonl") + ".idx"); err != nil {
		t.Fatalf("compacted segment has no index sidecar: %v", err)
	}

	var warmSims atomic.Int64
	code, warmStdout, warmStderr := runCLI(t, e2eArgs(storeDir, outWarm), countRunner(&warmSims))
	if code != ExitOK {
		t.Fatalf("warm run exit %d, stderr:\n%s", code, warmStderr)
	}
	if warmSims.Load() != 0 {
		t.Fatalf("warm run after compact simulated %d scenarios, want 0", warmSims.Load())
	}

	normCold := normalize(coldStdout, map[string]string{outCold: "$OUT"})
	normWarm := normalize(warmStdout, map[string]string{outWarm: "$OUT"})
	if !bytes.Equal(normCold, normWarm) {
		t.Errorf("warm stdout after compact deviates from cold:\ncold:\n%s\nwarm:\n%s", normCold, normWarm)
	}
	for _, name := range []string{"campaign.csv", "campaign.json"} {
		cold, err := os.ReadFile(filepath.Join(outCold, name))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := os.ReadFile(filepath.Join(outWarm, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cold, warm) {
			t.Errorf("warm %s after compact deviates from uncompacted cold run", name)
		}
	}
}

// TestCompactFlagUsage: -store-compact without a store is a usage
// error, and a fresh empty store compacts cleanly (exit 0).
func TestCompactFlagUsage(t *testing.T) {
	code, _, stderr := runCLI(t, []string{"-store-compact"}, nil)
	if code != ExitUsage {
		t.Fatalf("-store-compact without -store: exit %d, want %d\n%s", code, ExitUsage, stderr)
	}
	code, _, stderr = runCLI(t, []string{"-store", filepath.Join(t.TempDir(), "s"), "-store-compact"}, nil)
	if code != ExitOK {
		t.Fatalf("compact of empty store: exit %d\n%s", code, stderr)
	}
}
