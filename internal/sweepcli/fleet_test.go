package sweepcli

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"cloversim"
	"cloversim/internal/store"
	"cloversim/internal/sweep"
	"cloversim/internal/sweepd"
)

// startFleet brings up n in-process sweepd workers, each with its own
// store and a counting production runner, and returns the -workers
// flag value plus the per-worker simulation counters.
func startFleet(t *testing.T, n int) (string, []*atomic.Int64) {
	t.Helper()
	urls := make([]string, n)
	sims := make([]*atomic.Int64, n)
	for i := range urls {
		st, err := store.Open(filepath.Join(t.TempDir(), "wstore"), cloversim.PhysicsVersion)
		if err != nil {
			t.Fatal(err)
		}
		count := &atomic.Int64{}
		sims[i] = count
		srv := sweepd.New(st, sweep.IgnoreContext(countRunner(count)), 2)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); st.Close() })
		urls[i] = ts.URL
	}
	return strings.Join(urls, ","), sims
}

// TestE2EFleetByteIdentity is the end-to-end lockdown of the dispatch
// tentpole: the harness campaign sharded across a fleet of three
// in-process sweepd workers must produce byte-identical stdout, CSV
// and JSON to a local cold run; every cold cell must simulate on the
// fleet (zero local simulations, exactly twelve in aggregate); and the
// write-through of remote results into the client's -store must make
// the distributed campaign resumable exactly like a local one.
func TestE2EFleetByteIdentity(t *testing.T) {
	outLocal := filepath.Join(t.TempDir(), "local")
	outFleet := filepath.Join(t.TempDir(), "fleet")
	storeLocal := filepath.Join(t.TempDir(), "slocal")
	storeFleet := filepath.Join(t.TempDir(), "sfleet")

	var localSims atomic.Int64
	code, localStdout, localStderr := runCLI(t, e2eArgs(storeLocal, outLocal), countRunner(&localSims))
	if code != ExitOK {
		t.Fatalf("local run exit %d, stderr:\n%s", code, localStderr)
	}
	if localSims.Load() != 12 {
		t.Fatalf("local cold run simulated %d scenarios, want 12", localSims.Load())
	}

	hosts, workerSims := startFleet(t, 3)
	var clientSims atomic.Int64
	args := append(e2eArgs(storeFleet, outFleet), "-workers", hosts)
	code, fleetStdout, fleetStderr := runCLI(t, args, countRunner(&clientSims))
	if code != ExitOK {
		t.Fatalf("fleet run exit %d, stderr:\n%s", code, fleetStderr)
	}
	if clientSims.Load() != 0 {
		t.Fatalf("fleet run simulated %d scenarios locally, want 0 (the fleet owns execution)", clientSims.Load())
	}
	var total int64
	for _, s := range workerSims {
		total += s.Load()
	}
	if total != 12 {
		t.Fatalf("fleet simulated %d scenarios in aggregate, want exactly 12 (no lost or duplicated cells)", total)
	}

	// Byte-identity: a sharded campaign must be indistinguishable from
	// a local one on every output surface.
	normLocal := normalize(localStdout, map[string]string{outLocal: "$OUT", storeLocal: "$STORE"})
	normFleet := normalize(fleetStdout, map[string]string{outFleet: "$OUT", storeFleet: "$STORE"})
	if !bytes.Equal(normLocal, normFleet) {
		t.Errorf("fleet stdout deviates from local stdout:\nlocal:\n%s\nfleet:\n%s", normLocal, normFleet)
	}
	for _, name := range []string{"campaign.csv", "campaign.json"} {
		local, err := os.ReadFile(filepath.Join(outLocal, name))
		if err != nil {
			t.Fatal(err)
		}
		fleet, err := os.ReadFile(filepath.Join(outFleet, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(local, fleet) {
			t.Errorf("fleet %s deviates from local run:\nlocal:\n%s\nfleet:\n%s", name, local, fleet)
		}
	}

	// Resumability: remote results were written through to the client
	// store, so a local warm re-run simulates nothing anywhere.
	var warmSims atomic.Int64
	code, _, warmStderr := runCLI(t, e2eArgs(storeFleet, filepath.Join(t.TempDir(), "warm")), countRunner(&warmSims))
	if code != ExitOK {
		t.Fatalf("warm run exit %d, stderr:\n%s", code, warmStderr)
	}
	if warmSims.Load() != 0 {
		t.Fatalf("warm run after a fleet campaign simulated %d scenarios, want 0 (write-through must persist remote results)", warmSims.Load())
	}
}

// TestFleetUsageErrors: a -workers value that is neither a count nor a
// URL list is a usage error; an unreachable fleet is a runtime error.
func TestFleetUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, []string{"-workers", ","}, nil); code != ExitUsage {
		t.Errorf("-workers ',' exit %d, want %d", code, ExitUsage)
	}
	args := append(e2eArgs(filepath.Join(t.TempDir(), "s"), filepath.Join(t.TempDir(), "o")),
		"-workers", "127.0.0.1:1")
	if code, _, _ := runCLI(t, args, nil); code != ExitRuntime {
		t.Errorf("unreachable fleet exit %d, want %d", code, ExitRuntime)
	}
}
