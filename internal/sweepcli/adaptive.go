package sweepcli

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cloversim/internal/memsim"
	"cloversim/internal/search"
	"cloversim/internal/store"
	"cloversim/internal/sweep"
	"cloversim/internal/workload"
)

// adaptiveRun carries the CLI context of one -adaptive invocation into
// runAdaptive: the resolved grid, the fully wired engine (backend and
// tier-2 store included), the emit targets and the flag values the
// adaptive path interprets itself.
type adaptiveRun struct {
	grid      sweep.Grid
	axis      string
	target    string
	tol       int
	maxRounds int
	// modesSet reports whether -modes was given explicitly; a delta
	// target owns the mode axis, so combining the two is a usage error
	// rather than a silent override.
	modesSet     bool
	eng          *sweep.Engine
	store        *store.Store
	runner       sweep.RunnerContext
	out          string
	quiet        bool
	liveProgress bool
	workersDesc  string
	stdout       io.Writer
	stderr       io.Writer
}

// runAdaptive executes an adaptive frontier-search campaign and writes
// frontier.csv and frontier.json into -out. The exit-code contract is
// the campaign one: usage errors 2, probe or durability failures 1,
// an interrupted search with its partial frontier emitted 3.
func runAdaptive(ctx context.Context, a adaptiveRun) int {
	axis, err := search.ParseAxis(a.axis)
	if err != nil {
		return usage(a.stderr, err)
	}
	target, err := search.ParseTarget(a.target)
	if err != nil {
		return usage(a.stderr, err)
	}
	grid := a.grid
	if target.Kind == search.TargetDelta {
		if a.modesSet {
			return usage(a.stderr, fmt.Errorf("a delta target supplies its own mode pair (%s/%s); drop -modes",
				target.ModeA.Name, target.ModeB.Name))
		}
		// The default grid carries every mode; the delta predicate owns
		// the axis instead.
		grid.Modes = nil
	}
	plan := &search.Plan{
		Grid:      grid,
		Axis:      axis,
		Target:    target,
		Tol:       a.tol,
		MaxRounds: a.maxRounds,
		Surrogate: workload.Analytic,
	}
	if err := plan.Validate(); err != nil {
		return usage(a.stderr, err)
	}

	if !a.quiet {
		tracks := len(grid.Machines) * len(grid.Workloads)
		if n := len(grid.Modes); n > 0 {
			tracks *= n
		}
		fmt.Fprintf(a.stdout, "sweep: adaptive %s search, target %s, %s\n", axis, target, a.workersDesc)
		fmt.Fprintf(a.stdout, "sweep: %d tracks (%d machines x %d workloads), tol %d, max %d rounds\n",
			tracks, len(grid.Machines), len(grid.Workloads), plan.Tol, plan.MaxRounds)
		a.eng.Progress = func(done, total int, r sweep.Result) {
			fmt.Fprintln(a.stdout, sweep.ProgressLine(done, total, r))
		}
	}
	var perRun func(done, total int, r sweep.Result)
	if a.liveProgress {
		// The live counter resets per wave: each refinement round is
		// its own engine campaign.
		perRun = func(done, total int, r sweep.Result) {
			fmt.Fprintf(a.stderr, "\rsweep: wave: %d/%d probes complete", done, total)
		}
	}

	outcome, searchErr := plan.Run(ctx, a.eng, a.runner, perRun)
	if a.liveProgress {
		fmt.Fprintln(a.stderr)
	}
	if outcome == nil {
		return runtimeErr(a.stderr, searchErr)
	}

	if err := os.MkdirAll(a.out, 0o755); err != nil {
		return runtimeErr(a.stderr, err)
	}
	csvPath := filepath.Join(a.out, "frontier.csv")
	jsonPath := filepath.Join(a.out, "frontier.json")
	if err := emitFrontier(csvPath, search.CSVEmitter{}.Emit, outcome); err != nil {
		return runtimeErr(a.stderr, err)
	}
	if err := emitFrontier(jsonPath, search.JSONEmitter{Indent: true}.Emit, outcome); err != nil {
		return runtimeErr(a.stderr, err)
	}
	if !a.quiet {
		fmt.Fprintf(a.stdout, "\n%s\n", outcome.Table().Format())
	}
	fmt.Fprintf(a.stdout, "%s\n", outcome.Summary())
	fmt.Fprintf(a.stdout, "wrote %s and %s\n", csvPath, jsonPath)

	code := ExitOK
	if outcome.CacheErr != nil {
		fmt.Fprintln(a.stderr, "sweep: store writes failed:", outcome.CacheErr)
		code = ExitRuntime
	}
	if a.store != nil {
		if err := a.store.Close(); err != nil {
			fmt.Fprintln(a.stderr, "sweep:", err)
			code = ExitRuntime
		}
	}
	if searchErr != nil {
		fmt.Fprintln(a.stderr, "sweep:", searchErr)
		code = ExitRuntime
	}
	if outcome.Interrupted {
		fmt.Fprintf(a.stderr, "sweep: interrupted: %d cells visited over %d rounds; partial frontier emitted\n",
			outcome.Visited, outcome.Rounds)
		if code == ExitOK {
			code = ExitInterrupted
		}
	}
	return code
}

// emitFrontier writes one frontier artifact.
func emitFrontier(path string, emit func(io.Writer, *search.Outcome) error, o *search.Outcome) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := emit(f, o); err != nil {
		return err
	}
	return f.Close()
}

// reportAnalyticStats prints the campaign-wide memsim analytic-tier
// effectiveness summary (-analytic-stats) on stderr — stderr, not
// stdout, because the counters legitimately differ between cold, warm
// and fleet runs while stdout is byte-compared across all three.
func reportAnalyticStats(stderr io.Writer, enabled bool) {
	if !enabled {
		return
	}
	fmt.Fprintf(stderr, "sweep: analytic tier: %s\n", memsim.GlobalAnalyticStats())
}
