package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllPresetsValidate(t *testing.T) {
	for _, name := range Names() {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
	if _, ok := ByName("not-a-machine"); ok {
		t.Error("bogus preset resolved")
	}
}

func TestAllPresetsEnumerable(t *testing.T) {
	specs := AllPresets()
	names := Names()
	if len(specs) != len(names) {
		t.Fatalf("AllPresets returned %d specs, want %d", len(specs), len(names))
	}
	for i, s := range specs {
		if s.Name != names[i] {
			t.Errorf("preset %d is %q, want %q (Names order)", i, s.Name, names[i])
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", s.Name, err)
		}
	}
	// Fresh specs each call: campaign-local mutations must not leak.
	a, b := AllPresets(), AllPresets()
	a[0].CoresPerSocket = 1
	if b[0].CoresPerSocket == 1 || AllPresets()[0].CoresPerSocket == 1 {
		t.Error("AllPresets must return fresh specs, not shared pointers")
	}
}

func TestCacheGeom(t *testing.T) {
	g := CacheGeom{SizeBytes: 48 * 1024, Ways: 12, LineBytes: 64}
	if g.Sets() != 64 {
		t.Errorf("ICX L1 sets = %d, want 64", g.Sets())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	bad := CacheGeom{SizeBytes: 1000, Ways: 3, LineBytes: 64}
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent geometry accepted")
	}
}

func TestCurveAt(t *testing.T) {
	c := Curve{{0.2, 0}, {0.5, 0.6}, {1.0, 1.0}}
	cases := []struct{ x, want float64 }{
		{0.0, 0}, {0.2, 0}, {0.35, 0.3}, {0.5, 0.6}, {0.75, 0.8}, {1.0, 1.0}, {2.0, 1.0},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("curve(%g) = %g, want %g", cse.x, got, cse.want)
		}
	}
	if (Curve{}).At(0.5) != 0 {
		t.Error("empty curve should evaluate to 0")
	}
}

func TestCurveValidate(t *testing.T) {
	if err := (Curve{{0.5, 0}, {0.4, 1}}).Validate(); err == nil {
		t.Error("non-monotone X accepted")
	}
	if err := (Curve{{0.5, 1.5}}).Validate(); err == nil {
		t.Error("Y > 1 accepted")
	}
}

// TestCurveMonotoneInputs: piecewise-linear interpolation stays within
// the hull of the Y values.
func TestCurveBoundsProperty(t *testing.T) {
	c := Curve{{0.1, 0}, {0.5, 0.7}, {1.0, 0.95}}
	f := func(x float64) bool {
		y := c.At(math.Abs(x))
		return y >= 0 && y <= 0.95
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopologyICX(t *testing.T) {
	s := ICX8360Y()
	if s.Cores() != 72 || s.NUMADomains() != 4 || s.CoresPerDomain() != 18 {
		t.Fatalf("ICX topology wrong: %d cores, %d domains, %d cpd",
			s.Cores(), s.NUMADomains(), s.CoresPerDomain())
	}
	if s.DomainOf(0) != 0 || s.DomainOf(17) != 0 || s.DomainOf(18) != 1 || s.DomainOf(71) != 3 {
		t.Error("DomainOf misassigns cores")
	}
	if s.SocketOf(35) != 0 || s.SocketOf(36) != 1 {
		t.Error("SocketOf misassigns cores")
	}
	if s.ActiveDomains(1) != 1 || s.ActiveDomains(18) != 1 || s.ActiveDomains(19) != 2 || s.ActiveDomains(72) != 4 {
		t.Error("ActiveDomains wrong")
	}
	if s.ActiveSockets(36) != 1 || s.ActiveSockets(37) != 2 {
		t.Error("ActiveSockets wrong")
	}
}

func TestActiveInDomain(t *testing.T) {
	s := ICX8360Y()
	cases := []struct{ n, d, want int }{
		{10, 0, 10}, {10, 1, 0}, {20, 0, 18}, {20, 1, 2}, {72, 3, 18},
	}
	for _, c := range cases {
		if got := s.ActiveInDomain(c.n, c.d); got != c.want {
			t.Errorf("ActiveInDomain(%d,%d) = %d, want %d", c.n, c.d, got, c.want)
		}
	}
	// Partition property: per-domain actives sum to n.
	for n := 0; n <= 72; n++ {
		sum := 0
		for d := 0; d < s.NUMADomains(); d++ {
			sum += s.ActiveInDomain(n, d)
		}
		if sum != n {
			t.Fatalf("ActiveInDomain does not partition %d cores (sum %d)", n, sum)
		}
	}
}

func TestMemoryModel(t *testing.T) {
	s := ICX8360Y()
	// Fig. 2: saturation at about 9 cores.
	sat := s.Mem.SaturationCores()
	if sat < 8 || sat > 10 {
		t.Errorf("ICX domain saturates at %.1f cores, want ~9", sat)
	}
	if s.Mem.Bandwidth(18) != s.Mem.DomainBandwidth {
		t.Error("full domain should be saturated")
	}
	if s.Mem.Bandwidth(1) != s.Mem.CoreBandwidth {
		t.Error("single core gets its core bandwidth")
	}
	if s.Mem.Pressure(0) != 0 {
		t.Error("no cores, no pressure")
	}
}

func TestPressureAtOccupancy(t *testing.T) {
	s := ICX8360Y()
	if got := s.PressureAt(0, 9); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("9 of 18 cores should give occupancy 0.5, got %g", got)
	}
	if got := s.PressureAt(0, 72); got != 1 {
		t.Errorf("full node: occupancy of core 0 = %g, want 1", got)
	}
	// A core in the freshly touched domain sees low occupancy.
	if got := s.PressureAt(18, 19); math.Abs(got-1.0/18) > 1e-12 {
		t.Errorf("first core of domain 1 at 19 ranks: occupancy %g", got)
	}
}

func TestEvasionEffBasics(t *testing.T) {
	s := ICX8360Y()
	// Below threshold: no evasion (SpecI2M needs bandwidth draw).
	if e := s.EvasionEff(0.05, ClassPureStore, 1, 1, true); e != 0 {
		t.Errorf("serial evasion = %g, want 0", e)
	}
	// Saturated single socket: ~0.955 for one stream (store ratio 1.045).
	e1 := s.EvasionEff(1, ClassPureStore, 1, 1, true)
	if math.Abs(e1-0.955) > 0.01 {
		t.Errorf("saturated 1-stream evasion = %g, want ~0.955", e1)
	}
	// More streams evade less on ICX (Fig. 5).
	e3 := s.EvasionEff(1, ClassPureStore, 3, 1, true)
	if e3 >= e1 {
		t.Errorf("3-stream evasion %g should be below 1-stream %g", e3, e1)
	}
	// Two sockets lose efficiency (Fig. 5: 1.06 -> 1.2-1.25).
	e2s := s.EvasionEff(1, ClassPureStore, 1, 2, true)
	if e2s >= e1 || math.Abs(e2s-0.78) > 0.03 {
		t.Errorf("two-socket evasion = %g, want ~0.78", e2s)
	}
	// Copy kernels barely notice the second socket (Fig. 8).
	ec := s.EvasionEff(1, ClassCopy, 1, 2, true)
	if ec < 0.94 {
		t.Errorf("two-socket copy evasion = %g, want >= 0.94", ec)
	}
	// Prefetchers off degrade evasion.
	enopf := s.EvasionEff(1, ClassPureStore, 1, 1, false)
	if enopf >= e1 {
		t.Errorf("PF-off evasion %g should be below %g", enopf, e1)
	}
	// Disabled feature evades nothing.
	off := *s
	off.I2M.Enabled = false
	if e := off.EvasionEff(1, ClassPureStore, 1, 1, true); e != 0 {
		t.Errorf("disabled SpecI2M evasion = %g", e)
	}
}

func TestEvasionEffSPRKickIn(t *testing.T) {
	s := SPR8480()
	// Fig. 10: no benefit before ~18 of 56 cores.
	if e := s.EvasionEff(17.0/56, ClassPureStore, 1, 1, true); e != 0 {
		t.Errorf("SPR evasion at 17 cores = %g, want 0", e)
	}
	// Full socket: about half the WAs evaded.
	if e := s.EvasionEff(1, ClassPureStore, 1, 1, true); math.Abs(e-0.5) > 0.05 {
		t.Errorf("SPR full-socket evasion = %g, want ~0.5", e)
	}
	// No stream-count sensitivity on SPR.
	if s.EvasionEff(1, ClassPureStore, 1, 1, true) != s.EvasionEff(1, ClassPureStore, 3, 1, true) {
		t.Error("SPR should not differentiate stream counts")
	}
}

// Property: evasion efficiency is always within [0,1] and monotone
// non-decreasing in pressure.
func TestEvasionEffProperty(t *testing.T) {
	s := ICX8360Y()
	f := func(p1, p2 float64, streams uint8, sockets uint8) bool {
		a, b := math.Mod(math.Abs(p1), 1), math.Mod(math.Abs(p2), 1)
		if a > b {
			a, b = b, a
		}
		st := int(streams%4) + 1
		so := int(sockets%2) + 1
		ea := s.EvasionEff(a, ClassStencil, st, so, true)
		eb := s.EvasionEff(b, ClassStencil, st, so, true)
		return ea >= 0 && eb <= 1 && ea <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNTRevert(t *testing.T) {
	s := ICX8360Y()
	if r := s.NTRevert(1.0 / 72); r > 0.01 {
		t.Errorf("serial NT revert = %g, want ~0", r)
	}
	r := s.NTRevert(1)
	if math.Abs(r-0.165) > 0.01 {
		t.Errorf("full-node NT revert = %g, want ~0.165 (Fig. 5)", r)
	}
}

func TestMinRun(t *testing.T) {
	s := ICX8360Y()
	if s.MinRun(true) >= s.MinRun(false) {
		t.Errorf("PF-off warm-up %d should exceed PF-on %d", s.MinRun(false), s.MinRun(true))
	}
	// SPR tolerates strip-mining better: shorter warm-up (Fig. 11).
	if SPR8480().MinRun(true) >= s.MinRun(true) {
		t.Error("SPR warm-up should be shorter than ICX")
	}
}

func TestL3Slice(t *testing.T) {
	s := ICX8360Y()
	sl := s.L3Slice()
	if err := sl.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 54 * 1024 * 1024 / 36
	if sl.SizeBytes > want || sl.SizeBytes < want-sl.Ways*64 {
		t.Errorf("L3 slice = %d bytes, want ~%d", sl.SizeBytes, want)
	}
}

func TestSNCVariants(t *testing.T) {
	snc := SPR8470SNCOn()
	if snc.NUMADomains() != 8 {
		t.Errorf("8470 SNC4 domains = %d, want 8", snc.NUMADomains())
	}
	off := SPR8470()
	// SNC on: smaller domains saturate faster, so evasion kicks in at
	// fewer absolute cores.
	kickOn := snc.I2M.PressureThreshold * float64(snc.CoresPerDomain())
	kickOff := off.I2M.PressureThreshold * float64(off.CoresPerDomain())
	if kickOn >= kickOff {
		t.Errorf("SNC-on kick-in %.1f cores should be below SNC-off %.1f", kickOn, kickOff)
	}
	icxOff := ICX8360YSNCOff()
	if icxOff.NUMADomains() != 2 {
		t.Errorf("ICX SNC-off domains = %d, want 2", icxOff.NUMADomains())
	}
}
