package machine

// ARM presets modeling the two alternative write-allocate-evasion
// mechanisms the paper discusses in Sec. II-D: the Neoverse N1's
// automatic write-streaming mode (store streams bypass the caches) and
// the Fujitsu A64FX's cache-line claim ("cache line zero") plus sector
// cache. These are extension machines: the paper's measurements are all
// Intel, but the mechanisms slot into the same engine and make the
// library useful for cross-architecture what-if studies.
const (
	NameNeoverseN1 = "n1"
	NameA64FX      = "a64fx"
)

// NeoverseN1 returns an Ampere-Altra-like single-socket Neoverse N1
// system (80 cores, 8ch DDR4-3200). Write-streaming mode is a static
// per-core detector: unlike SpecI2M it does not need bandwidth pressure
// and therefore works at any core count — a store ratio near 1.0 even
// serially.
func NeoverseN1() *Spec {
	s := &Spec{
		Name:           NameNeoverseN1,
		Sockets:        1,
		CoresPerSocket: 80,
		NUMAPerSocket:  1,
		FreqHz:         3.0e9,
		L1:             CacheGeom{SizeBytes: 64 * kib, Ways: 4, LineBytes: 64},
		L2:             CacheGeom{SizeBytes: 1024 * kib, Ways: 8, LineBytes: 64},
		L3:             CacheGeom{SizeBytes: 32 * mib, Ways: 16, LineBytes: 64},
		L3SliceWays:    16,
		Mem: Memory{
			DomainBandwidth: 180 * gb,
			CoreBandwidth:   9 * gb,
			LatencyNS:       95,
		},
		I2M: SpecI2M{
			Enabled: true,
			Mode:    EvasionWriteStream,
			// N1 write-streaming: a fixed miss-streak threshold opens
			// the window ("write-streaming mode", N1 TRM); no bandwidth
			// gating, no stream-count penalty.
			MinRunLines:       4,
			MinRunLinesNoPF:   4,
			BridgeLines:       0,
			PressureThreshold: 0,
			EffPureStore: []Curve{
				{{0, 0.97}, {1, 0.97}},
			},
			EffCopy:           Curve{{0, 0.97}, {1, 0.97}},
			EffStencil:        Curve{{0, 0.95}, {1, 0.95}},
			SocketPenalty:     0,
			SocketPenaltyExp:  1,
			CopySocketPenalty: 0,
			EffNoPF:           1,
		},
		NT: NTStore{
			RevertFraction: Curve{{0.02, 0.0}, {1.0, 0.02}},
		},
		PF: Prefetch{
			StreamEnabled:  true,
			StreamDistance: 8,
			StreamTrigger:  2,
		},
		FlopsPerCycle:    8,
		MPILatency:       1.6e-6,
		MPIBandwidth:     9 * gb,
		AllreduceLatency: 2.0e-6,
	}
	return s
}

// A64FX returns a Fujitsu A64FX node (48 compute cores in 4 CMGs, HBM2).
// Evasion uses cache-line claim at the private/CMG L2 ("cache line
// zero"): claimed data is immediately reusable from cache — at the cost
// of cache capacity, which the sector cache (Sec. II-C) mitigates on the
// real chip.
func A64FX() *Spec {
	s := &Spec{
		Name:           NameA64FX,
		Sockets:        1,
		CoresPerSocket: 48,
		NUMAPerSocket:  4, // CMGs
		FreqHz:         2.2e9,
		L1:             CacheGeom{SizeBytes: 64 * kib, Ways: 4, LineBytes: 64},
		// 8 MiB L2 per 12-core CMG: ~680 KiB slice per core; there is no
		// L3, so the model gives the L2 share to both levels.
		L2:          CacheGeom{SizeBytes: 512 * kib, Ways: 16, LineBytes: 64},
		L3:          CacheGeom{SizeBytes: 8 * mib * 48 / 12, Ways: 16, LineBytes: 64},
		L3SliceWays: 16,
		Mem: Memory{
			DomainBandwidth: 220 * gb, // HBM2 per CMG (measured ~850/node)
			CoreBandwidth:   35 * gb,
			LatencyNS:       130,
		},
		I2M: SpecI2M{
			Enabled: true,
			Mode:    EvasionClaimZero,
			// DC ZVA is compiler-issued, not speculative: the "detector"
			// is effectively always warm, independent of loop length.
			MinRunLines:       1,
			MinRunLinesNoPF:   1,
			BridgeLines:       8,
			PressureThreshold: 0,
			EffPureStore: []Curve{
				{{0, 0.98}, {1, 0.98}},
			},
			EffCopy:           Curve{{0, 0.98}, {1, 0.98}},
			EffStencil:        Curve{{0, 0.98}, {1, 0.98}},
			SocketPenalty:     0,
			SocketPenaltyExp:  1,
			CopySocketPenalty: 0,
			EffNoPF:           1,
		},
		NT: NTStore{
			RevertFraction: Curve{{0.02, 0.0}, {1.0, 0.02}},
		},
		PF: Prefetch{
			StreamEnabled:  true,
			StreamDistance: 8,
			StreamTrigger:  2,
		},
		FlopsPerCycle:    32, // 2x 512-bit SVE FMA
		MPILatency:       1.8e-6,
		MPIBandwidth:     8 * gb,
		AllreduceLatency: 2.2e-6,
	}
	return s
}
