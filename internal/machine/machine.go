// Package machine defines parameterized models of the server CPUs used in
// the paper: Intel Xeon Platinum 8360Y ("Ice Lake SP"), 8470 and 8480+
// ("Sapphire Rapids"). A Spec captures everything the simulator needs:
// cache geometry, NUMA/Sub-NUMA topology, memory bandwidth saturation, and
// the calibration of the SpecI2M write-allocate-evasion feature and of
// non-temporal stores.
//
// The evasion-efficiency curves are phenomenological (the paper itself
// models SpecI2M with a phenomenological factor, Sec. V-B); everything
// else — layer conditions, partial-line write-allocates, prefetch traffic,
// short-loop detector resets — is mechanistic and lives in internal/core
// and internal/memsim.
package machine

import "fmt"

// CacheGeom describes one cache level.
type CacheGeom struct {
	SizeBytes int // total capacity in bytes
	Ways      int // associativity
	LineBytes int // cache line size (64 on all modeled CPUs)
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeom) Sets() int { return g.SizeBytes / (g.Ways * g.LineBytes) }

// Validate reports an error if the geometry is not self-consistent.
func (g CacheGeom) Validate() error {
	if g.LineBytes <= 0 || g.Ways <= 0 || g.SizeBytes <= 0 {
		return fmt.Errorf("machine: non-positive cache geometry %+v", g)
	}
	if g.SizeBytes%(g.Ways*g.LineBytes) != 0 {
		return fmt.Errorf("machine: size %d not divisible by ways*line %d", g.SizeBytes, g.Ways*g.LineBytes)
	}
	return nil
}

// CurvePoint is one calibration point of an efficiency curve: at bandwidth
// pressure X (0..1 within a ccNUMA domain), the efficiency is Y.
type CurvePoint struct {
	X, Y float64
}

// Curve is a piecewise-linear function over CurvePoints with constant
// extrapolation beyond the endpoints. Points must be sorted by X.
type Curve []CurvePoint

// At evaluates the curve at x.
func (c Curve) At(x float64) float64 {
	if len(c) == 0 {
		return 0
	}
	if x <= c[0].X {
		return c[0].Y
	}
	last := c[len(c)-1]
	if x >= last.X {
		return last.Y
	}
	for i := 1; i < len(c); i++ {
		if x <= c[i].X {
			a, b := c[i-1], c[i]
			t := (x - a.X) / (b.X - a.X)
			return a.Y + t*(b.Y-a.Y)
		}
	}
	return last.Y
}

// Validate checks strictly increasing X coordinates and Y within [0,1].
func (c Curve) Validate() error {
	for i := range c {
		if i > 0 && c[i].X <= c[i-1].X {
			return fmt.Errorf("machine: curve X not strictly increasing at %d", i)
		}
		if c[i].Y < 0 || c[i].Y > 1 {
			return fmt.Errorf("machine: curve Y out of [0,1] at %d", i)
		}
	}
	return nil
}

// KernelClass distinguishes store-path behaviour classes. The paper's
// measurements show SpecI2M effectiveness depends strongly on the kernel
// shape: pure store streams (Fig. 5), a simple copy (Figs. 6/8), and
// multi-stream stencil loops (Fig. 7, phenomenological factor 1.2).
type KernelClass int

const (
	// ClassPureStore is a kernel consisting only of store streams.
	ClassPureStore KernelClass = iota
	// ClassCopy is a kernel with exactly one write stream and at most one
	// read stream (a(:) = b(:)).
	ClassCopy
	// ClassStencil is everything else: multiple read streams feeding one
	// or two write streams.
	ClassStencil
)

func (k KernelClass) String() string {
	switch k {
	case ClassPureStore:
		return "pure-store"
	case ClassCopy:
		return "copy"
	case ClassStencil:
		return "stencil"
	}
	return "unknown"
}

// EvasionMode selects the hardware mechanism used to avoid
// write-allocates once the run detector fires (Sec. II-D of the paper
// surveys all three).
type EvasionMode int

const (
	// EvasionItoM claims the line dirty at the L3 without a memory read
	// — Intel's SpecI2M (ICX, SPR).
	EvasionItoM EvasionMode = iota
	// EvasionWriteStream sends detected store streams straight to memory
	// like non-temporal stores — ARM's write-streaming mode (Neoverse
	// N1). Unlike SpecI2M it does not require bandwidth pressure: it
	// works serially too.
	EvasionWriteStream
	// EvasionClaimZero claims the line in the private L2 (cache line
	// zero, DC ZVA) — Fujitsu A64FX; claimed data is immediately
	// reusable from cache but occupies it.
	EvasionClaimZero
)

func (m EvasionMode) String() string {
	switch m {
	case EvasionWriteStream:
		return "write-stream"
	case EvasionClaimZero:
		return "claim-zero"
	default:
		return "itom"
	}
}

// SpecI2M holds the calibration of the dynamic write-allocate-evasion
// feature ("SpecI2M", Ice Lake SP and later) or one of its architectural
// siblings (see EvasionMode).
type SpecI2M struct {
	// Enabled mirrors the (NDA-gated) MSR bit that turns the feature off.
	Enabled bool
	// Mode selects the evasion mechanism (default ItoM).
	Mode EvasionMode
	// MinRunLines is the number of consecutive full-line stores to one
	// stream before the run detector opens the evasion window. Short inner
	// loops never warm the detector — the root of the prime-number effect.
	MinRunLines int
	// MinRunLinesNoPF is the detector warm-up when hardware prefetchers
	// are disabled (the paper's "PF off" experiments show long prefetched
	// streams help the feature).
	MinRunLinesNoPF int
	// BridgeLines is the largest hole (in untouched full lines) between
	// consecutive full-line stores that does not reset the run detector.
	// This reproduces Fig. 8: halo sizes of 8 or 16 elements (1-2 line
	// holes) keep evasion alive, arbitrary halos do not.
	BridgeLines int
	// PressureThreshold is the fraction of domain bandwidth saturation
	// below which the feature does not act at all ("requires significant
	// bandwidth draw", Sec. V-A).
	PressureThreshold float64
	// EffPureStore is the evasion efficiency vs domain pressure for
	// store-only kernels, indexed by store-stream count (index 0 -> one
	// stream). Stream counts beyond the last index reuse the last curve.
	EffPureStore []Curve
	// EffCopy is the efficiency for copy-like kernels (one write stream
	// plus one read stream); loads throttle the store rate per core,
	// which empirically improves evasion (Fig. 6 vs Fig. 5).
	EffCopy Curve
	// EffStencil is the efficiency for multi-stream stencil loops.
	EffStencil Curve
	// SocketPenalty and SocketPenaltyExp model the efficiency loss when
	// more than one socket is active: factor = 1 - p*(sockets-1)^exp.
	// Fig. 5: store ratio 1.06 on one ICX socket but 1.20-1.25 on two.
	SocketPenalty    float64
	SocketPenaltyExp float64
	// CopySocketPenalty is the (smaller) penalty for copy kernels
	// (Fig. 8 is measured on the full node yet reaches ratio 1.04).
	CopySocketPenalty float64
	// EffNoPF scales efficiency when hardware prefetchers are off.
	EffNoPF float64
}

// NTStore calibrates non-temporal store behaviour.
type NTStore struct {
	// RevertFraction is the fraction of NT stores that nevertheless incur
	// a write-allocate, as a function of the fraction of the node's cores
	// that are active (Fig. 5: 0 at 1 core, ~0.165 at the full node).
	RevertFraction Curve
}

// Memory describes one ccNUMA domain's memory subsystem.
type Memory struct {
	DomainBandwidth float64 // saturated bandwidth per ccNUMA domain, bytes/s
	CoreBandwidth   float64 // single-core achievable bandwidth, bytes/s
	LatencyNS       float64 // idle memory latency
}

// SaturationCores returns the number of cores needed to saturate one
// ccNUMA domain (Fig. 2: about 9 on ICX).
func (m Memory) SaturationCores() float64 { return m.DomainBandwidth / m.CoreBandwidth }

// Bandwidth returns the aggregate bandwidth achieved by n active cores in
// one domain (linear ramp with saturation).
func (m Memory) Bandwidth(n int) float64 {
	b := float64(n) * m.CoreBandwidth
	if b > m.DomainBandwidth {
		return m.DomainBandwidth
	}
	return b
}

// Pressure returns the bandwidth-saturation fraction for n active cores in
// one ccNUMA domain.
func (m Memory) Pressure(n int) float64 {
	if n <= 0 {
		return 0
	}
	return m.Bandwidth(n) / m.DomainBandwidth
}

// Prefetch configures the hardware prefetcher models.
type Prefetch struct {
	StreamEnabled   bool // L2 stream prefetcher
	AdjacentEnabled bool // adjacent-cache-line prefetcher
	StreamDistance  int  // lines ahead fetched by the streamer
	StreamTrigger   int  // sequential misses needed to arm a stream
}

// Spec is a complete machine model.
type Spec struct {
	Name             string
	Sockets          int
	CoresPerSocket   int
	NUMAPerSocket    int // ccNUMA domains per socket (2 with SNC on ICX)
	FreqHz           float64
	L1, L2           CacheGeom // private per core
	L3               CacheGeom // shared per socket; simulator uses a per-core slice
	L3SliceWays      int       // associativity of the modeled per-core L3 slice
	Mem              Memory    // per ccNUMA domain
	I2M              SpecI2M
	NT               NTStore
	PF               Prefetch
	FlopsPerCycle    float64 // peak DP flops/cycle/core
	MPILatency       float64 // seconds per point-to-point message
	MPIBandwidth     float64 // bytes/s intra-node message payload bandwidth
	AllreduceLatency float64 // seconds per reduction stage
}

// Cores returns the total core count of the node.
func (s *Spec) Cores() int { return s.Sockets * s.CoresPerSocket }

// NUMADomains returns the total number of ccNUMA domains.
func (s *Spec) NUMADomains() int { return s.Sockets * s.NUMAPerSocket }

// CoresPerDomain returns the number of cores in one ccNUMA domain.
func (s *Spec) CoresPerDomain() int { return s.CoresPerSocket / s.NUMAPerSocket }

// DomainOf returns the ccNUMA domain index of a core under compact pinning.
func (s *Spec) DomainOf(core int) int { return core / s.CoresPerDomain() }

// SocketOf returns the socket index of a core under compact pinning.
func (s *Spec) SocketOf(core int) int { return core / s.CoresPerSocket }

// ActiveInDomain returns how many of cores [0,nActive) fall into domain d
// under compact pinning (fill domains in order).
func (s *Spec) ActiveInDomain(nActive, d int) int {
	cpd := s.CoresPerDomain()
	lo := d * cpd
	if nActive <= lo {
		return 0
	}
	n := nActive - lo
	if n > cpd {
		return cpd
	}
	return n
}

// ActiveDomains returns the number of ccNUMA domains touched by the first
// nActive cores under compact pinning.
func (s *Spec) ActiveDomains(nActive int) int {
	if nActive <= 0 {
		return 0
	}
	d := (nActive + s.CoresPerDomain() - 1) / s.CoresPerDomain()
	if m := s.NUMADomains(); d > m {
		return m
	}
	return d
}

// ActiveSockets returns the number of sockets touched by the first nActive
// cores under compact pinning.
func (s *Spec) ActiveSockets(nActive int) int {
	if nActive <= 0 {
		return 0
	}
	d := (nActive + s.CoresPerSocket - 1) / s.CoresPerSocket
	if d > s.Sockets {
		return s.Sockets
	}
	return d
}

// PressureAt returns the load metric that drives the SpecI2M efficiency
// curves for the given core when nActive cores run under compact
// pinning: the occupancy of the core's own ccNUMA domain. (Bandwidth
// saturates at ~half occupancy on ICX, but the paper's Fig. 6 shows
// evasion keeps improving until the domain is full — occupancy is the
// observable the calibration targets are expressed in.)
func (s *Spec) PressureAt(core, nActive int) float64 {
	return float64(s.ActiveInDomain(nActive, s.DomainOf(core))) / float64(s.CoresPerDomain())
}

// L3Slice returns the geometry of the per-core L3 share used by the
// simulator (total socket L3 divided by cores per socket).
func (s *Spec) L3Slice() CacheGeom {
	size := s.L3.SizeBytes / s.CoresPerSocket
	ways := s.L3SliceWays
	unit := ways * s.L3.LineBytes
	size -= size % unit
	return CacheGeom{SizeBytes: size, Ways: ways, LineBytes: s.L3.LineBytes}
}

// Validate checks the whole spec for consistency.
func (s *Spec) Validate() error {
	if s.Sockets <= 0 || s.CoresPerSocket <= 0 || s.NUMAPerSocket <= 0 {
		return fmt.Errorf("machine %s: non-positive topology", s.Name)
	}
	if s.CoresPerSocket%s.NUMAPerSocket != 0 {
		return fmt.Errorf("machine %s: cores per socket %d not divisible by NUMA domains %d",
			s.Name, s.CoresPerSocket, s.NUMAPerSocket)
	}
	for _, g := range []CacheGeom{s.L1, s.L2, s.L3, s.L3Slice()} {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("machine %s: %w", s.Name, err)
		}
	}
	if s.Mem.DomainBandwidth <= 0 || s.Mem.CoreBandwidth <= 0 {
		return fmt.Errorf("machine %s: non-positive bandwidth", s.Name)
	}
	if len(s.I2M.EffPureStore) == 0 {
		return fmt.Errorf("machine %s: missing pure-store efficiency curves", s.Name)
	}
	curves := append([]Curve{s.I2M.EffCopy, s.I2M.EffStencil, s.NT.RevertFraction}, s.I2M.EffPureStore...)
	for _, c := range curves {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("machine %s: %w", s.Name, err)
		}
	}
	if s.I2M.MinRunLines <= 0 || s.I2M.MinRunLinesNoPF <= 0 {
		return fmt.Errorf("machine %s: non-positive detector warm-up", s.Name)
	}
	return nil
}

// EvasionEff returns the SpecI2M evasion efficiency (probability that an
// eligible full-line store with a warm run detector is claimed as ItoM
// instead of triggering a read-for-ownership) for a core under the given
// conditions.
func (s *Spec) EvasionEff(pressure float64, class KernelClass, storeStreams, activeSockets int, pfOn bool) float64 {
	if !s.I2M.Enabled || pressure < s.I2M.PressureThreshold {
		return 0
	}
	var e float64
	penalty := s.I2M.SocketPenalty
	switch class {
	case ClassPureStore:
		idx := storeStreams - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s.I2M.EffPureStore) {
			idx = len(s.I2M.EffPureStore) - 1
		}
		e = s.I2M.EffPureStore[idx].At(pressure)
	case ClassCopy:
		e = s.I2M.EffCopy.At(pressure)
		penalty = s.I2M.CopySocketPenalty
	default:
		e = s.I2M.EffStencil.At(pressure)
	}
	if activeSockets > 1 {
		f := 1.0
		x := float64(activeSockets - 1)
		exp := s.I2M.SocketPenaltyExp
		if exp <= 0 {
			exp = 1
		}
		f -= penalty * pow(x, exp)
		if f < 0 {
			f = 0
		}
		e *= f
	}
	if !pfOn {
		e *= s.I2M.EffNoPF
	}
	if e < 0 {
		e = 0
	}
	if e > 1 {
		e = 1
	}
	return e
}

// pow is a tiny x^y for y >= 0 without importing math in the hot path.
func pow(x, y float64) float64 {
	if x == 0 {
		return 0
	}
	if y == 1 {
		return x
	}
	// exp(y*ln x) via the math package would be fine; keep it simple and
	// accurate for the small exponents used here.
	return mathPow(x, y)
}

// NTRevert returns the fraction of NT stores that still incur a
// write-allocate when nodeFraction of the node's cores are active.
func (s *Spec) NTRevert(nodeFraction float64) float64 {
	return s.NT.RevertFraction.At(nodeFraction)
}

// MinRun returns the detector warm-up length given prefetcher state.
func (s *Spec) MinRun(pfOn bool) int {
	if pfOn {
		return s.I2M.MinRunLines
	}
	return s.I2M.MinRunLinesNoPF
}
