package machine

// Preset names accepted by ByName and the CLIs.
const (
	NameICX8360Y       = "icx"       // 2x Xeon Platinum 8360Y, SNC on (paper testbed)
	NameICX8360YSNCOff = "icx-snc0"  // same chip with SNC off (for ablations)
	NameSPR8470        = "spr8470"   // 2x Xeon Platinum 8470, SNC off
	NameSPR8470SNCOn   = "spr8470+s" // 8470 with SNC on (Fig. 9)
	NameSPR8480        = "spr8480"   // 2x Xeon Platinum 8480+, SNC off
)

const (
	kib = 1024
	mib = 1024 * 1024
	gb  = 1e9 // decimal GB, matching LIKWID volume reporting
)

// ICX8360Y returns the paper's primary testbed: a two-socket Intel Xeon
// Platinum 8360Y "Ice Lake SP" node, 36 cores/socket at a fixed 2.4 GHz,
// 8 channels DDR4-3200 per socket, Sub-NUMA Clustering on (two ccNUMA
// domains per socket, four per node).
//
// Calibration targets (paper):
//   - Fig. 2: domain bandwidth saturates at ~9 cores; ~400 GB/s node.
//   - Fig. 5: store ratio 2.0 serial; ~1.06 at a full socket; 1.20-1.25
//     at the full node; mild degradation with 2-3 streams; NT ratio
//     1.0 -> 1.16-1.17.
//   - Fig. 6: copy-kernel write-allocates almost fully evaded by 17
//     threads (one SNC domain).
//   - Fig. 7: stencil loops at 72 ranks follow a phenomenological
//     SpecI2M factor of 1.2 on evadable write streams (evasion ~0.8).
//   - Fig. 8: copy read/write ratio averages ~1.35 / 1.09 / 1.04 for
//     inner dimensions 216 / 530 / 1920 on the full node.
func ICX8360Y() *Spec {
	s := &Spec{
		Name:           NameICX8360Y,
		Sockets:        2,
		CoresPerSocket: 36,
		NUMAPerSocket:  2,
		FreqHz:         2.4e9,
		L1:             CacheGeom{SizeBytes: 48 * kib, Ways: 12, LineBytes: 64},
		L2:             CacheGeom{SizeBytes: 1280 * kib, Ways: 20, LineBytes: 64},
		L3:             CacheGeom{SizeBytes: 54 * mib, Ways: 12, LineBytes: 64},
		L3SliceWays:    12,
		Mem: Memory{
			// 8ch DDR4-3200 = 204.8 GB/s/socket theoretical; ~88%
			// achievable, split across two SNC domains.
			DomainBandwidth: 90 * gb,
			CoreBandwidth:   10.5 * gb, // saturation at ~8.6 cores (Fig. 2)
			LatencyNS:       85,
		},
		I2M: SpecI2M{
			Enabled:         true,
			MinRunLines:     5,
			MinRunLinesNoPF: 24,
			BridgeLines:     2,
			// Curves are parameterized by ccNUMA-domain *occupancy*
			// (active cores / domain cores): evasion starts around 3 of
			// 18 cores and keeps improving to the full domain (Figs 5/6).
			PressureThreshold: 0.10,
			EffPureStore: []Curve{
				{{0.10, 0.00}, {0.30, 0.30}, {0.50, 0.75}, {0.75, 0.92}, {1.00, 0.955}},
				{{0.10, 0.00}, {0.30, 0.24}, {0.50, 0.66}, {0.75, 0.87}, {1.00, 0.935}},
				{{0.10, 0.00}, {0.30, 0.19}, {0.50, 0.58}, {0.75, 0.83}, {1.00, 0.915}},
			},
			EffCopy:    Curve{{0.08, 0.00}, {0.28, 0.50}, {0.50, 0.80}, {0.94, 0.985}, {1.00, 0.99}},
			EffStencil: Curve{{0.10, 0.00}, {0.30, 0.35}, {0.55, 0.75}, {0.90, 0.95}, {1.00, 0.97}},
			// Two active sockets: pure-store/stencil efficiency x0.82
			// (store ratio 1.06 -> ~1.22); copy barely affected.
			SocketPenalty:     0.18,
			SocketPenaltyExp:  1.0,
			CopySocketPenalty: 0.033,
			EffNoPF:           0.80,
		},
		NT: NTStore{
			RevertFraction: Curve{{0.02, 0.0}, {0.25, 0.04}, {0.5, 0.09}, {1.0, 0.165}},
		},
		PF: Prefetch{
			StreamEnabled:   true,
			AdjacentEnabled: false,
			StreamDistance:  8,
			StreamTrigger:   2,
		},
		FlopsPerCycle:    16,
		MPILatency:       1.4e-6,
		MPIBandwidth:     11 * gb,
		AllreduceLatency: 1.9e-6,
	}
	return s
}

// ICX8360YSNCOff is the 8360Y with Sub-NUMA Clustering disabled: one
// ccNUMA domain per socket. Used for ablation benchmarks.
func ICX8360YSNCOff() *Spec {
	s := ICX8360Y()
	s.Name = NameICX8360YSNCOff
	s.NUMAPerSocket = 1
	s.Mem.DomainBandwidth *= 2
	return s
}

// SPR8470 returns the two-socket Xeon Platinum 8470 "Sapphire Rapids"
// node (52 cores/socket, 2.0 GHz, 8ch DDR5-4800), SNC off.
//
// Fig. 9 calibration: SpecI2M kicks in only near domain saturation and
// evades less than on ICX; the 8470 evades less than the 8480+ for a
// single stream; NT behaves like ICX.
func SPR8470() *Spec {
	s := &Spec{
		Name:           NameSPR8470,
		Sockets:        2,
		CoresPerSocket: 52,
		NUMAPerSocket:  1,
		FreqHz:         2.0e9,
		L1:             CacheGeom{SizeBytes: 48 * kib, Ways: 12, LineBytes: 64},
		L2:             CacheGeom{SizeBytes: 2048 * kib, Ways: 16, LineBytes: 64},
		L3:             CacheGeom{SizeBytes: 105 * mib, Ways: 15, LineBytes: 64},
		L3SliceWays:    15,
		Mem: Memory{
			// 8ch DDR5-4800 = 307.2 GB/s/socket theoretical, ~85% achievable.
			DomainBandwidth: 260 * gb,
			CoreBandwidth:   12 * gb,
			LatencyNS:       110,
		},
		I2M: SpecI2M{
			Enabled:         true,
			MinRunLines:     3, // tolerates strip-mining gaps better (Fig. 11)
			MinRunLinesNoPF: 16,
			BridgeLines:     2,
			// Only after ~18 of 52 cores does any benefit appear
			// (Fig. 10): threshold at 0.32 domain occupancy.
			PressureThreshold: 0.32,
			// No stream-count differentiation on SPR, and only about a
			// third of the WAs are evaded on the 8470 (Sec. V-D: 66% of
			// WAs NOT evaded for one stream -> ratio ~1.66).
			EffPureStore: []Curve{
				{{0.32, 0.00}, {0.60, 0.15}, {1.00, 0.34}},
				{{0.32, 0.00}, {0.60, 0.15}, {1.00, 0.34}},
				{{0.32, 0.00}, {0.60, 0.15}, {1.00, 0.34}},
			},
			EffCopy:           Curve{{0.32, 0.00}, {0.60, 0.60}, {1.00, 0.99}},
			EffStencil:        Curve{{0.32, 0.00}, {0.60, 0.45}, {1.00, 0.90}},
			SocketPenalty:     0.10,
			SocketPenaltyExp:  1.0,
			CopySocketPenalty: 0.033,
			EffNoPF:           0.80,
		},
		NT: NTStore{
			RevertFraction: Curve{{0.02, 0.0}, {0.25, 0.05}, {0.5, 0.10}, {1.0, 0.18}},
		},
		PF: Prefetch{
			StreamEnabled:   true,
			AdjacentEnabled: false,
			StreamDistance:  8,
			StreamTrigger:   2,
		},
		FlopsPerCycle:    16,
		MPILatency:       1.4e-6,
		MPIBandwidth:     13 * gb,
		AllreduceLatency: 1.9e-6,
	}
	return s
}

// SPR8470SNCOn is the 8470 with Sub-NUMA Clustering enabled (four ccNUMA
// domains per socket, SNC4). SpecI2M kicks in much faster (small domains
// saturate sooner) but full-socket efficiency is ~5% worse (Fig. 9).
func SPR8470SNCOn() *Spec {
	s := SPR8470()
	s.Name = NameSPR8470SNCOn
	s.NUMAPerSocket = 4 // 13 cores per domain
	s.Mem.DomainBandwidth /= 4
	for i := range s.I2M.EffPureStore {
		c := s.I2M.EffPureStore[i]
		for j := range c {
			c[j].Y *= 0.95
		}
	}
	s.I2M.SocketPenalty = 0.08
	return s
}

// SPR8480 returns the two-socket Xeon Platinum 8480+ node (56
// cores/socket, 2.0 GHz, SNC off). Fig. 10 calibration: SpecI2M only
// beneficial after ~18 cores, evades ~50% at a full socket, no stream
// count sensitivity; NT ratio rises to ~1.18. Fig. 11: copy evasion is
// insensitive to aligned strip-mining gaps (MinRunLines smaller than
// ICX), ~10% better than ICX for short aligned rows.
func SPR8480() *Spec {
	s := SPR8470()
	s.Name = NameSPR8480
	s.CoresPerSocket = 56
	s.Mem.DomainBandwidth = 270 * gb
	s.I2M.MinRunLines = 2
	s.I2M.EffPureStore = []Curve{
		{{0.32, 0.00}, {0.60, 0.22}, {1.00, 0.50}},
		{{0.32, 0.00}, {0.60, 0.22}, {1.00, 0.50}},
		{{0.32, 0.00}, {0.60, 0.22}, {1.00, 0.50}},
	}
	return s
}

// NameCLX8280 is a Cascade Lake SP preset — the generation BEFORE
// SpecI2M was introduced. It serves as the no-write-allocate-evasion
// baseline: store ratios stay at 2.0 at every core count unless NT
// stores are used.
const NameCLX8280 = "clx"

// CLX8280 returns a two-socket Xeon Platinum 8280 "Cascade Lake SP"
// node (28 cores/socket, 6ch DDR4-2933, no SNC, no SpecI2M).
func CLX8280() *Spec {
	s := &Spec{
		Name:           NameCLX8280,
		Sockets:        2,
		CoresPerSocket: 28,
		NUMAPerSocket:  1,
		FreqHz:         2.7e9,
		L1:             CacheGeom{SizeBytes: 32 * kib, Ways: 8, LineBytes: 64},
		L2:             CacheGeom{SizeBytes: 1024 * kib, Ways: 16, LineBytes: 64},
		L3:             CacheGeom{SizeBytes: 1408 * kib * 28, Ways: 11, LineBytes: 64}, // 38.5 MiB
		L3SliceWays:    11,
		Mem: Memory{
			DomainBandwidth: 115 * gb,
			CoreBandwidth:   12 * gb,
			LatencyNS:       80,
		},
		I2M: SpecI2M{
			Enabled:           false, // the whole point of this preset
			MinRunLines:       8,
			MinRunLinesNoPF:   24,
			BridgeLines:       0,
			PressureThreshold: 2, // unreachable
			EffPureStore:      []Curve{{{0, 0}, {1, 0}}},
			EffCopy:           Curve{{0, 0}, {1, 0}},
			EffStencil:        Curve{{0, 0}, {1, 0}},
			EffNoPF:           1,
		},
		NT: NTStore{
			RevertFraction: Curve{{0.02, 0.0}, {1.0, 0.05}},
		},
		PF: Prefetch{
			StreamEnabled:   true,
			AdjacentEnabled: false,
			StreamDistance:  8,
			StreamTrigger:   2,
		},
		FlopsPerCycle:    16,
		MPILatency:       1.4e-6,
		MPIBandwidth:     10 * gb,
		AllreduceLatency: 1.9e-6,
	}
	return s
}

// ByName returns the preset machine spec for a CLI name.
func ByName(name string) (*Spec, bool) {
	switch name {
	case NameICX8360Y:
		return ICX8360Y(), true
	case NameICX8360YSNCOff:
		return ICX8360YSNCOff(), true
	case NameSPR8470:
		return SPR8470(), true
	case NameSPR8470SNCOn:
		return SPR8470SNCOn(), true
	case NameSPR8480:
		return SPR8480(), true
	case NameCLX8280:
		return CLX8280(), true
	case NameNeoverseN1:
		return NeoverseN1(), true
	case NameA64FX:
		return A64FX(), true
	}
	return nil, false
}

// Names lists all preset names.
func Names() []string {
	return []string{NameICX8360Y, NameICX8360YSNCOff, NameSPR8470, NameSPR8470SNCOn,
		NameSPR8480, NameCLX8280, NameNeoverseN1, NameA64FX}
}

// AllPresets returns fresh specs for every preset, in Names order, so
// campaign drivers can enumerate the whole machine park instead of
// resolving presets one name at a time.
func AllPresets() []*Spec {
	names := Names()
	out := make([]*Spec, len(names))
	for i, name := range names {
		s, ok := ByName(name)
		if !ok {
			panic("machine: preset " + name + " listed in Names but not resolvable")
		}
		out[i] = s
	}
	return out
}
