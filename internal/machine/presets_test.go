package machine

import "testing"

// TestPresetGeometryInvariants is the table-driven validation of every
// registered machine preset: the cache geometry invariants the memsim
// hierarchy and the layer-condition analysis rely on.
func TestPresetGeometryInvariants(t *testing.T) {
	presets := AllPresets()
	if len(presets) != len(Names()) {
		t.Fatalf("AllPresets returned %d specs for %d names", len(presets), len(Names()))
	}
	for _, spec := range presets {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if err := spec.Validate(); err != nil {
				t.Fatal(err)
			}
			// Capacity hierarchy: private L1 <= private L2 <= shared L3.
			if !(spec.L1.SizeBytes <= spec.L2.SizeBytes && spec.L2.SizeBytes <= spec.L3.SizeBytes) {
				t.Errorf("cache sizes not monotone: L1 %d, L2 %d, L3 %d",
					spec.L1.SizeBytes, spec.L2.SizeBytes, spec.L3.SizeBytes)
			}
			levels := map[string]CacheGeom{
				"L1": spec.L1, "L2": spec.L2, "L3": spec.L3, "L3slice": spec.L3Slice(),
			}
			for name, g := range levels {
				// All modeled CPUs use 64-byte lines; core.LineBytes and
				// the trace generators hard-code this.
				if g.LineBytes != 64 {
					t.Errorf("%s line size %d, want 64", name, g.LineBytes)
				}
				// Associativity divides the capacity into whole sets.
				if g.SizeBytes%(g.Ways*g.LineBytes) != 0 {
					t.Errorf("%s size %d not divisible by ways*line %d",
						name, g.SizeBytes, g.Ways*g.LineBytes)
				}
				if g.Sets() < 1 {
					t.Errorf("%s has %d sets", name, g.Sets())
				}
			}
			// Topology: cores divide evenly into NUMA domains and the
			// pressure model covers the whole node.
			if spec.CoresPerSocket%spec.NUMAPerSocket != 0 {
				t.Errorf("cores/socket %d not divisible by NUMA/socket %d",
					spec.CoresPerSocket, spec.NUMAPerSocket)
			}
			if got := spec.ActiveDomains(spec.Cores()); got != spec.NUMADomains() {
				t.Errorf("full node touches %d domains, want %d", got, spec.NUMADomains())
			}
			if p := spec.PressureAt(0, spec.Cores()); p != 1 {
				t.Errorf("full-node pressure at core 0 = %g, want 1", p)
			}
			// The evasion calibration must stay inside [0, 1] wherever
			// the simulator can evaluate it.
			for _, class := range []KernelClass{ClassPureStore, ClassCopy, ClassStencil} {
				for _, pressure := range []float64{0, 0.25, 0.5, 0.75, 1} {
					for _, sockets := range []int{1, spec.Sockets} {
						e := spec.EvasionEff(pressure, class, 2, sockets, true)
						if e < 0 || e > 1 {
							t.Errorf("EvasionEff(%g, %v, sockets=%d) = %g outside [0,1]",
								pressure, class, sockets, e)
						}
					}
				}
			}
		})
	}
}

// TestByNameTable: every listed name resolves, resolves fresh (no
// shared mutable spec), and unknown names fail.
func TestByNameTable(t *testing.T) {
	for _, name := range Names() {
		a, ok := ByName(name)
		if !ok || a.Name != name {
			t.Fatalf("preset %q does not round-trip", name)
		}
		b, _ := ByName(name)
		if a == b {
			t.Errorf("preset %q returns a shared pointer; campaigns mutate spec copies", name)
		}
	}
	if _, ok := ByName("bogus-machine"); ok {
		t.Error("bogus machine resolved")
	}
}
