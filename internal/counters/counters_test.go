package counters

import (
	"testing"

	"cloversim/internal/memsim"
)

// fakeSource is a controllable counter source.
type fakeSource struct{ c memsim.Counts }

func (f *fakeSource) Counts() memsim.Counts { return f.c }

func TestMarkerRegionDelta(t *testing.T) {
	src := &fakeSource{}
	m := NewMarker(src, GroupMEMDP)
	if m.Group() != GroupMEMDP {
		t.Fatal("group lost")
	}

	m.Start("am04")
	src.c.MemReadLines += 10
	src.c.MemWriteLines += 4
	if err := m.Stop("am04"); err != nil {
		t.Fatal(err)
	}
	m.AddWork("am04", 400, 100)

	r := m.Region("am04")
	if r.Calls != 1 || r.C.MemReadLines != 10 || r.C.MemWriteLines != 4 {
		t.Fatalf("region: %+v", r)
	}
	if r.ReadBytes() != 640 || r.WriteBytes() != 256 {
		t.Fatal("byte volumes wrong")
	}
	if got := r.BytesPerIter(); got != float64(14*64)/100 {
		t.Fatalf("BytesPerIter = %g", got)
	}
	if r.ReadPerIter() != 6.4 || r.WritePerIter() != 2.56 {
		t.Fatal("per-iter volumes wrong")
	}
}

func TestMarkerAccumulatesCalls(t *testing.T) {
	src := &fakeSource{}
	m := NewMarker(src, GroupMEM)
	for i := 0; i < 3; i++ {
		m.Start("r")
		src.c.MemReadLines += 5
		if err := m.Stop("r"); err != nil {
			t.Fatal(err)
		}
	}
	r := m.Region("r")
	if r.Calls != 3 || r.C.MemReadLines != 15 {
		t.Fatalf("accumulation: %+v", r)
	}
}

func TestStopWithoutStart(t *testing.T) {
	m := NewMarker(&fakeSource{}, GroupMEM)
	if err := m.Stop("never"); err == nil {
		t.Fatal("Stop without Start must error (the LIKWID failure mode)")
	}
}

func TestRegionsSorted(t *testing.T) {
	src := &fakeSource{}
	m := NewMarker(src, GroupMEM)
	for _, n := range []string{"pdv00", "am04", "ac01"} {
		m.Start(n)
		m.Stop(n)
	}
	rs := m.Regions()
	if len(rs) != 3 || rs[0].Name != "ac01" || rs[2].Name != "pdv00" {
		t.Fatalf("regions unsorted: %v", []string{rs[0].Name, rs[1].Name, rs[2].Name})
	}
}

func TestGather(t *testing.T) {
	s1, s2 := &fakeSource{}, &fakeSource{}
	m1, m2 := NewMarker(s1, GroupSPECI2M), NewMarker(s2, GroupSPECI2M)

	m1.Start("k")
	s1.c.ItoMLines += 3
	m1.Stop("k")
	m1.AddWork("k", 10, 5)

	m2.Start("k")
	s2.c.ItoMLines += 4
	m2.Stop("k")
	m2.AddWork("k", 20, 5)

	agg := Gather(m1, nil, m2)
	k := agg["k"]
	if k.Calls != 2 || k.C.ItoMLines != 7 || k.Flops != 30 || k.Iters != 10 {
		t.Fatalf("gather: %+v", k)
	}
	if k.ItoMBytes() != 7*64 {
		t.Fatal("ItoM volume wrong")
	}
}

func TestZeroIterGuards(t *testing.T) {
	r := &Region{}
	if r.BytesPerIter() != 0 || r.ReadPerIter() != 0 || r.WritePerIter() != 0 {
		t.Fatal("zero-iteration region should report 0, not NaN")
	}
}
