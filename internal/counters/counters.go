// Package counters provides a LIKWID-like measurement layer over the
// memory-hierarchy simulator: named marker regions (the Marker API
// analogue), performance groups (MEM, MEM_DP, SPECI2M), and derived
// metrics such as code balance in byte/iteration — the quantity all of
// the paper's loop-level figures report.
package counters

import (
	"fmt"
	"sort"

	"cloversim/internal/memsim"
)

// Group names, mirroring the LIKWID performance groups used in the paper.
const (
	GroupMEM     = "MEM"     // memory read/write volumes and bandwidth
	GroupMEMDP   = "MEM_DP"  // MEM plus double-precision flop counts
	GroupSPECI2M = "SPECI2M" // MEM plus TOR_INSERTS_IA_ITOM (Listing 4)
)

// Source exposes the live counter state of a simulated core.
type Source interface {
	Counts() memsim.Counts
}

// Region accumulates measurements of one marked code region.
type Region struct {
	Name  string
	Calls int64
	C     memsim.Counts
	Flops int64
	Iters int64 // inner loop iterations attributed to the region
}

// ReadBytes returns the region's memory read volume in bytes.
func (r *Region) ReadBytes() int64 { return r.C.ReadBytes() }

// WriteBytes returns the region's memory write volume in bytes.
func (r *Region) WriteBytes() int64 { return r.C.WriteBytes() }

// ItoMBytes returns the SpecI2M claim volume in bytes (Listing 4 metric).
func (r *Region) ItoMBytes() int64 { return r.C.ItoMLines * 64 }

// BytesPerIter returns the measured code balance in byte/it.
func (r *Region) BytesPerIter() float64 {
	if r.Iters == 0 {
		return 0
	}
	return float64(r.C.TotalBytes()) / float64(r.Iters)
}

// ReadPerIter returns the read volume per iteration in bytes.
func (r *Region) ReadPerIter() float64 {
	if r.Iters == 0 {
		return 0
	}
	return float64(r.ReadBytes()) / float64(r.Iters)
}

// WritePerIter returns the write volume per iteration in bytes.
func (r *Region) WritePerIter() float64 {
	if r.Iters == 0 {
		return 0
	}
	return float64(r.WriteBytes()) / float64(r.Iters)
}

// Marker is a per-core marker-API instance.
type Marker struct {
	src     Source
	group   string
	regions map[string]*Region
	open    map[string]memsim.Counts
}

// NewMarker creates a marker layer over a counter source.
func NewMarker(src Source, group string) *Marker {
	return &Marker{src: src, group: group, regions: map[string]*Region{}, open: map[string]memsim.Counts{}}
}

// Group returns the active performance group name.
func (m *Marker) Group() string { return m.group }

// Start opens a region (LIKWID_MARKER_START).
func (m *Marker) Start(name string) {
	m.open[name] = m.src.Counts()
}

// Stop closes a region and accumulates the delta (LIKWID_MARKER_STOP).
func (m *Marker) Stop(name string) error {
	begin, ok := m.open[name]
	if !ok {
		return fmt.Errorf("counters: region %q stopped without start", name)
	}
	delete(m.open, name)
	r := m.region(name)
	r.Calls++
	r.C = r.C.Add(m.src.Counts().Sub(begin))
	return nil
}

// AddWork attributes flops and iterations to a region (the simulator
// replays addresses, not arithmetic, so work is attributed analytically).
func (m *Marker) AddWork(name string, flops, iters int64) {
	r := m.region(name)
	r.Flops += flops
	r.Iters += iters
}

func (m *Marker) region(name string) *Region {
	r, ok := m.regions[name]
	if !ok {
		r = &Region{Name: name}
		m.regions[name] = r
	}
	return r
}

// Region returns a region by name (nil if never touched).
func (m *Marker) Region(name string) *Region { return m.regions[name] }

// Regions returns all regions sorted by name.
func (m *Marker) Regions() []*Region {
	out := make([]*Region, 0, len(m.regions))
	for _, r := range m.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Gather merges per-rank markers into one aggregate view, as
// likwid-mpirun does across MPI processes.
func Gather(ms ...*Marker) map[string]*Region {
	agg := map[string]*Region{}
	for _, m := range ms {
		if m == nil {
			continue
		}
		for name, r := range m.regions {
			a, ok := agg[name]
			if !ok {
				a = &Region{Name: name}
				agg[name] = a
			}
			a.Calls += r.Calls
			a.C = a.C.Add(r.C)
			a.Flops += r.Flops
			a.Iters += r.Iters
		}
	}
	return agg
}
