package search

import (
	"fmt"
	"strconv"
	"strings"

	"cloversim/internal/sweep"
)

// TargetKind selects the predicate family of a frontier search.
type TargetKind uint8

const (
	// TargetDelta classifies a point by comparing one metric across two
	// evasion modes: true iff the metric under ModeA is strictly below
	// the metric under ModeB ("A beats B" for lower-is-better metrics
	// like traffic ratios). Each probe point costs two scenarios.
	TargetDelta TargetKind = iota
	// TargetBelow is a threshold predicate: true iff metric < Threshold.
	TargetBelow
	// TargetAbove is a threshold predicate: true iff metric > Threshold.
	TargetAbove
	// TargetModel classifies a point by analytic-vs-simulated
	// divergence: true iff |sim(Metric) - analytic(AnalyticMetric)|
	// exceeds RelTol * |analytic(AnalyticMetric)|. It requires the
	// workload to answer its Analytic hook.
	TargetModel
)

// Target is a parsed frontier predicate: the boolean classification of
// one axis point from the metrics of its probe scenarios. The frontier
// is where the classification flips between adjacent axis values.
type Target struct {
	Kind   TargetKind
	Metric string
	// AnalyticMetric is the surrogate metric TargetModel compares
	// Metric against (workload analytic hooks publish their own metric
	// names, e.g. jacobi_bytes_lcf vs the simulated jacobi_total_bpi).
	AnalyticMetric string
	ModeA, ModeB   sweep.Mode // TargetDelta's mode pair
	Threshold      float64    // TargetBelow / TargetAbove
	RelTol         float64    // TargetModel relative tolerance

	raw string
}

// String returns the canonical grammar form the target was parsed from.
func (t Target) String() string { return t.raw }

// Probes reports how many scenarios one axis point costs: two for the
// mode-pair delta, one otherwise.
func (t Target) Probes() int {
	if t.Kind == TargetDelta {
		return 2
	}
	return 1
}

// ParseTarget parses the -target predicate grammar:
//
//	delta:<metric>:<modeA>/<modeB>   true iff metric(modeA) < metric(modeB)
//	lt:<metric>:<value>              true iff metric < value
//	gt:<metric>:<value>              true iff metric > value
//	model:<metric>:<analytic>:<tol>  true iff |sim-analytic| > tol*|analytic|
//
// Mode names in the delta form are separated by '/' because mode names
// themselves contain dashes (nt-opt, pf-off).
func ParseTarget(s string) (Target, error) {
	t := Target{raw: strings.TrimSpace(s)}
	parts := strings.Split(t.raw, ":")
	bad := func(format string, args ...interface{}) (Target, error) {
		return Target{}, fmt.Errorf("search: bad target %q: %s", s, fmt.Sprintf(format, args...))
	}
	if len(parts) < 3 {
		return bad("want kind:metric:... (kinds: delta, lt, gt, model)")
	}
	kind, metric := parts[0], parts[1]
	if metric == "" {
		return bad("empty metric name")
	}
	t.Metric = metric
	switch kind {
	case "delta":
		if len(parts) != 3 {
			return bad("want delta:<metric>:<modeA>/<modeB>")
		}
		names := strings.Split(parts[2], "/")
		if len(names) != 2 {
			return bad("want two '/'-separated mode names, got %q", parts[2])
		}
		var ok bool
		if t.ModeA, ok = sweep.ModeByName(names[0]); !ok {
			return bad("unknown mode %q (have %v)", names[0], sweep.ModeNames())
		}
		if t.ModeB, ok = sweep.ModeByName(names[1]); !ok {
			return bad("unknown mode %q (have %v)", names[1], sweep.ModeNames())
		}
		if t.ModeA.Name == t.ModeB.Name {
			return bad("delta needs two distinct modes")
		}
		t.Kind = TargetDelta
	case "lt", "gt":
		if len(parts) != 3 {
			return bad("want %s:<metric>:<value>", kind)
		}
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return bad("threshold %q: %v", parts[2], err)
		}
		t.Threshold = v
		t.Kind = TargetBelow
		if kind == "gt" {
			t.Kind = TargetAbove
		}
	case "model":
		if len(parts) != 4 {
			return bad("want model:<metric>:<analytic-metric>:<reltol>")
		}
		if parts[2] == "" {
			return bad("empty analytic metric name")
		}
		t.AnalyticMetric = parts[2]
		v, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || v < 0 {
			return bad("relative tolerance %q: want a non-negative number", parts[3])
		}
		t.RelTol = v
		t.Kind = TargetModel
	default:
		return bad("unknown kind %q (want delta, lt, gt or model)", kind)
	}
	return t, nil
}

// classify evaluates the predicate on one point's simulated probe
// metrics (one entry per probe, TargetDelta order [ModeA, ModeB]) and,
// when the analytic surrogate answered for the probes, on the surrogate
// metrics too. model is nil when the surrogate could not classify the
// point (no analytic hook, or the hook does not publish Metric); for
// TargetModel the surrogate participates in the class itself and model
// is always nil.
func (t Target) classify(sim, analytic []sweep.Metrics) (class bool, model *bool, err error) {
	if len(sim) != t.Probes() {
		return false, nil, fmt.Errorf("search: target %s: point has %d probes, want %d", t, len(sim), t.Probes())
	}
	get := func(ms sweep.Metrics, name, role string) (float64, error) {
		v, ok := ms.Get(name)
		if !ok {
			return 0, fmt.Errorf("search: target %s: %s metric %q absent from probe result", t, role, name)
		}
		return v, nil
	}
	switch t.Kind {
	case TargetDelta:
		a, err := get(sim[0], t.Metric, "simulated")
		if err != nil {
			return false, nil, err
		}
		b, err := get(sim[1], t.Metric, "simulated")
		if err != nil {
			return false, nil, err
		}
		class = a < b
		if len(analytic) == 2 && analytic[0] != nil && analytic[1] != nil {
			ma, oka := analytic[0].Get(t.Metric)
			mb, okb := analytic[1].Get(t.Metric)
			if oka && okb {
				m := ma < mb
				model = &m
			}
		}
		return class, model, nil
	case TargetBelow, TargetAbove:
		v, err := get(sim[0], t.Metric, "simulated")
		if err != nil {
			return false, nil, err
		}
		class = v < t.Threshold
		if t.Kind == TargetAbove {
			class = v > t.Threshold
		}
		if len(analytic) >= 1 && analytic[0] != nil {
			if av, ok := analytic[0].Get(t.Metric); ok {
				m := av < t.Threshold
				if t.Kind == TargetAbove {
					m = av > t.Threshold
				}
				model = &m
			}
		}
		return class, model, nil
	case TargetModel:
		v, err := get(sim[0], t.Metric, "simulated")
		if err != nil {
			return false, nil, err
		}
		if len(analytic) < 1 || analytic[0] == nil {
			return false, nil, fmt.Errorf("search: target %s: workload has no analytic surrogate", t)
		}
		av, err := get(analytic[0], t.AnalyticMetric, "analytic")
		if err != nil {
			return false, nil, err
		}
		diff := v - av
		if diff < 0 {
			diff = -diff
		}
		bound := av
		if bound < 0 {
			bound = -bound
		}
		return diff > t.RelTol*bound, nil, nil
	}
	return false, nil, fmt.Errorf("search: target %s: unknown kind %d", t, t.Kind)
}
