package search

import (
	"context"
	"sync/atomic"
	"testing"

	"cloversim/internal/sweep"
)

// BenchmarkAdaptiveVsExhaustive quantifies the tentpole win: locating a
// frontier on a 2-track x 1024-value grid adaptively versus running the
// full cross product. The cells/op metric is the load the backends
// (memsim locally, the fleet remotely) would actually carry; the
// per-cell runner is synthetic so the benchmark isolates driver
// overhead plus cell count rather than memsim throughput.
func BenchmarkAdaptiveVsExhaustive(b *testing.B) {
	const lo, hi = 1, 1024
	thresholds := map[string]float64{"icx": 137.5, "spr8480": 900.5}
	target, err := ParseTarget("gt:m:0")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("adaptive", func(b *testing.B) {
		var cells atomic.Int64
		for i := 0; i < b.N; i++ {
			plan := &Plan{
				Grid:   sweep.Grid{Machines: []string{"icx", "spr8480"}, Ranks: []int{lo, hi}},
				Axis:   AxisRanks,
				Target: target,
			}
			out, err := plan.Run(context.Background(), sweep.NewEngine(4),
				sweep.IgnoreContext(syntheticRunner(AxisRanks, thresholds, &cells)), nil)
			if err != nil {
				b.Fatal(err)
			}
			if out.FrontierCount() != 2 {
				b.Fatalf("frontier count %d, want 2", out.FrontierCount())
			}
		}
		b.ReportMetric(float64(cells.Load())/float64(b.N), "cells/op")
	})

	b.Run("exhaustive", func(b *testing.B) {
		var cells atomic.Int64
		var scenarios []sweep.Scenario
		for _, mach := range []string{"icx", "spr8480"} {
			for v := lo; v <= hi; v++ {
				scenarios = append(scenarios, apply(AxisRanks, sweep.Scenario{Machine: mach}, Value{X: v}))
			}
		}
		for i := 0; i < b.N; i++ {
			eng := sweep.NewEngine(4)
			c := eng.RunScenarios(scenarios, syntheticRunner(AxisRanks, thresholds, &cells))
			if err := c.Err(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(cells.Load())/float64(b.N), "cells/op")
	})
}
