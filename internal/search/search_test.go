package search

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"cloversim/internal/sweep"
)

// syntheticRunner builds a deterministic runner with a per-machine
// frontier: metric "m" is value - threshold(machine), so gt:m:0 flips
// between threshold and threshold+1 on the refinement axis.
func syntheticRunner(axis Axis, thresholds map[string]float64, sims *atomic.Int64) sweep.Runner {
	return func(s sweep.Scenario) (sweep.Metrics, error) {
		if sims != nil {
			sims.Add(1)
		}
		t, ok := thresholds[s.Machine]
		if !ok {
			return nil, fmt.Errorf("no threshold for machine %q", s.Machine)
		}
		v := valueOf(axis, s)
		var m sweep.Metrics
		m.Add("m", float64(v.X)-t)
		return m, nil
	}
}

// exhaustiveFrontier classifies every integer axis value in [lo, hi]
// through the runner and returns the flip intervals — the reference the
// adaptive driver must reproduce.
func exhaustiveFrontier(t *testing.T, eng *sweep.Engine, run sweep.Runner, base sweep.Scenario, axis Axis, lo, hi int, target Target) []Interval {
	t.Helper()
	var scenarios []sweep.Scenario
	for v := lo; v <= hi; v++ {
		scenarios = append(scenarios, apply(axis, base, Value{X: v}))
	}
	c := eng.RunScenarios(scenarios, run)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	var out []Interval
	var prev *Point
	for i, r := range c.Results {
		class, _, err := target.classify([]sweep.Metrics{r.Metrics}, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := Point{Value: Value{X: lo + i}, Class: class}
		if prev != nil && prev.Class != p.Class {
			out = append(out, Interval{Lo: prev.Value, Hi: p.Value, LoClass: prev.Class, HiClass: p.Class})
		}
		prev = &p
	}
	return out
}

func mustTarget(t *testing.T, s string) Target {
	t.Helper()
	tg, err := ParseTarget(s)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

// TestParseTarget pins the predicate grammar: every documented form
// parses, every malformed string is rejected with a usage-shaped error.
func TestParseTarget(t *testing.T) {
	good := []struct {
		in   string
		kind TargetKind
	}{
		{"delta:store_ratio:nt/baseline", TargetDelta},
		{"delta:x:nt-opt/pf-off", TargetDelta},
		{"lt:jacobi_ratio:1.25", TargetBelow},
		{"gt:m:0", TargetAbove},
		{"model:jacobi_total_bpi:jacobi_bytes_lcf:0.1", TargetModel},
	}
	for _, g := range good {
		tg, err := ParseTarget(g.in)
		if err != nil {
			t.Errorf("ParseTarget(%q): %v", g.in, err)
			continue
		}
		if tg.Kind != g.kind {
			t.Errorf("ParseTarget(%q) kind %d, want %d", g.in, tg.Kind, g.kind)
		}
		if tg.String() != g.in {
			t.Errorf("ParseTarget(%q).String() = %q", g.in, tg.String())
		}
	}
	bad := []string{
		"", "gt", "gt:m", "sign:m:0", "lt:m:abc", "lt::1",
		"delta:m:nt", "delta:m:nt/nt", "delta:m:nt/bogus", "delta:m:nt/baseline:x",
		"model:m:0.1", "model:m::0.1", "model:m:am:-1", "model:m:am:x",
	}
	for _, b := range bad {
		if _, err := ParseTarget(b); err == nil {
			t.Errorf("ParseTarget(%q) accepted, want error", b)
		}
	}
}

func TestParseAxis(t *testing.T) {
	for _, s := range []string{"ranks", "threads", "mesh"} {
		if _, err := ParseAxis(s); err != nil {
			t.Errorf("ParseAxis(%q): %v", s, err)
		}
	}
	for _, s := range []string{"", "seed", "machine"} {
		if _, err := ParseAxis(s); err == nil {
			t.Errorf("ParseAxis(%q) accepted, want error", s)
		}
	}
}

// TestAdaptiveFindsExhaustiveFrontier is the differential lockdown of
// the tentpole: on a two-track grid with per-track thresholds, the
// adaptive driver must locate exactly the frontier interval the full
// cross product implies, while simulating an order of magnitude fewer
// cells.
func TestAdaptiveFindsExhaustiveFrontier(t *testing.T) {
	const lo, hi = 1, 256
	thresholds := map[string]float64{"icx": 37.5, "spr8480": 171.5}
	target := mustTarget(t, "gt:m:0")

	// Reference: the exhaustive cross product, one engine per track so
	// cache state cannot leak into the adaptive run.
	var exhaustiveSims atomic.Int64
	wantIntervals := map[string][]Interval{}
	for _, mach := range []string{"icx", "spr8480"} {
		eng := sweep.NewEngine(4)
		run := syntheticRunner(AxisRanks, thresholds, &exhaustiveSims)
		wantIntervals[mach] = exhaustiveFrontier(t, eng, run, sweep.Scenario{Machine: mach}, AxisRanks, lo, hi, target)
		if len(wantIntervals[mach]) != 1 {
			t.Fatalf("machine %s: exhaustive frontier has %d intervals, want 1", mach, len(wantIntervals[mach]))
		}
	}

	var adaptiveSims atomic.Int64
	plan := &Plan{
		Grid:   sweep.Grid{Machines: []string{"icx", "spr8480"}, Ranks: []int{lo, hi}},
		Axis:   AxisRanks,
		Target: target,
	}
	out, err := plan.Run(context.Background(), sweep.NewEngine(4),
		sweep.IgnoreContext(syntheticRunner(AxisRanks, thresholds, &adaptiveSims)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Interrupted {
		t.Fatal("outcome interrupted without cancellation")
	}
	if len(out.Tracks) != 2 {
		t.Fatalf("got %d tracks, want 2", len(out.Tracks))
	}
	for i, mach := range []string{"icx", "spr8480"} {
		tr := out.Tracks[i]
		if tr.Base.Machine != mach {
			t.Fatalf("track %d machine %q, want %q (grid order)", i, tr.Base.Machine, mach)
		}
		want := wantIntervals[mach]
		if len(tr.Intervals) != len(want) {
			t.Fatalf("machine %s: adaptive found %d intervals, want %d", mach, len(tr.Intervals), len(want))
		}
		for j, iv := range tr.Intervals {
			if iv != want[j] {
				t.Errorf("machine %s interval %d: adaptive %+v, exhaustive %+v", mach, j, iv, want[j])
			}
		}
	}

	// The perf claim: >= 10x fewer simulated cells than the cross
	// product (2 tracks x 256 values = 512 cells exhaustive).
	exhaustiveCells := int64(2 * (hi - lo + 1))
	if adaptiveSims.Load()*10 > exhaustiveCells {
		t.Errorf("adaptive simulated %d cells, want <= %d (1/10 of %d)",
			adaptiveSims.Load(), exhaustiveCells/10, exhaustiveCells)
	}
	if out.Visited != int(adaptiveSims.Load()) {
		t.Errorf("outcome.Visited %d != %d simulations (cold engine: every visited cell simulates once)",
			out.Visited, adaptiveSims.Load())
	}
}

// TestAdaptiveDeterministic: the visited-cell set, the refinement
// trajectory and the emitted bytes must be identical across engine
// worker counts (and, via the CI -cpu matrix, GOMAXPROCS values).
func TestAdaptiveDeterministic(t *testing.T) {
	thresholds := map[string]float64{"icx": 100.5, "spr8480": 13.5}
	var outs []*Outcome
	var csvs, jsons [][]byte
	for _, workers := range []int{1, 4, 8} {
		plan := &Plan{
			Grid:   sweep.Grid{Machines: []string{"icx", "spr8480"}, Ranks: []int{1, 512}},
			Axis:   AxisRanks,
			Target: mustTarget(t, "gt:m:0"),
		}
		out, err := plan.Run(context.Background(), sweep.NewEngine(workers),
			sweep.IgnoreContext(syntheticRunner(AxisRanks, thresholds, nil)), nil)
		if err != nil {
			t.Fatal(err)
		}
		var csvBuf, jsonBuf bytes.Buffer
		if err := (CSVEmitter{}).Emit(&csvBuf, out); err != nil {
			t.Fatal(err)
		}
		if err := (JSONEmitter{Indent: true}).Emit(&jsonBuf, out); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
		csvs = append(csvs, csvBuf.Bytes())
		jsons = append(jsons, jsonBuf.Bytes())
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Visited != outs[0].Visited || outs[i].Rounds != outs[0].Rounds {
			t.Errorf("workers run %d: visited=%d rounds=%d, want visited=%d rounds=%d",
				i, outs[i].Visited, outs[i].Rounds, outs[0].Visited, outs[0].Rounds)
		}
		if !bytes.Equal(csvs[i], csvs[0]) {
			t.Errorf("workers run %d: CSV bytes deviate:\n%s\nvs\n%s", i, csvs[i], csvs[0])
		}
		if !bytes.Equal(jsons[i], jsons[0]) {
			t.Errorf("workers run %d: JSON bytes deviate", i)
		}
	}
}

// TestDeltaTarget: the mode-pair predicate runs two probes per point
// and flips where the NT metric crosses the baseline metric.
func TestDeltaTarget(t *testing.T) {
	// baseline metric constant 1.5; nt metric = 1.0 for ranks <= 40,
	// 2.0 above: nt beats baseline up to rank 40.
	run := func(s sweep.Scenario) (sweep.Metrics, error) {
		var m sweep.Metrics
		switch s.Mode.Name {
		case "baseline":
			m.Add("ratio", 1.5)
		case "nt":
			if s.Ranks <= 40 {
				m.Add("ratio", 1.0)
			} else {
				m.Add("ratio", 2.0)
			}
		default:
			return nil, fmt.Errorf("unexpected mode %q", s.Mode.Name)
		}
		return m, nil
	}
	var sims atomic.Int64
	counting := func(s sweep.Scenario) (sweep.Metrics, error) {
		sims.Add(1)
		return run(s)
	}
	plan := &Plan{
		Grid:   sweep.Grid{Machines: []string{"icx"}, Ranks: []int{1, 128}},
		Axis:   AxisRanks,
		Target: mustTarget(t, "delta:ratio:nt/baseline"),
	}
	out, err := plan.Run(context.Background(), sweep.NewEngine(4), sweep.IgnoreContext(counting), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tracks) != 1 {
		t.Fatalf("got %d tracks, want 1 (delta target owns the mode axis)", len(out.Tracks))
	}
	tr := out.Tracks[0]
	if tr.Base.Mode.Name != "" {
		t.Errorf("track base mode %q, want zero", tr.Base.Mode.Name)
	}
	want := Interval{Lo: Value{X: 40}, Hi: Value{X: 41}, LoClass: true, HiClass: false}
	if len(tr.Intervals) != 1 || tr.Intervals[0] != want {
		t.Fatalf("intervals %+v, want [%+v]", tr.Intervals, want)
	}
	if int64(out.Visited) != sims.Load() {
		t.Errorf("visited %d != %d sims (two probes per point, each a distinct scenario)", out.Visited, sims.Load())
	}
	for _, p := range tr.Points {
		if len(p.Results) != 2 {
			t.Fatalf("point %v carries %d probe results, want 2", p.Value, len(p.Results))
		}
	}
}

// TestMeshAxis: mesh values refine componentwise and render as WxH.
func TestMeshAxis(t *testing.T) {
	run := func(s sweep.Scenario) (sweep.Metrics, error) {
		var m sweep.Metrics
		// Flip when row length exceeds 1000 columns.
		m.Add("m", float64(s.Mesh.X)-1000.5)
		return m, nil
	}
	plan := &Plan{
		Grid:   sweep.Grid{Machines: []string{"icx"}, Meshes: []sweep.Mesh{{X: 64, Y: 8}, {X: 4096, Y: 8}}},
		Axis:   AxisMesh,
		Target: mustTarget(t, "gt:m:0"),
	}
	out, err := plan.Run(context.Background(), sweep.NewEngine(2), sweep.IgnoreContext(run), nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := out.Tracks[0]
	if len(tr.Intervals) != 1 {
		t.Fatalf("got %d intervals, want 1", len(tr.Intervals))
	}
	iv := tr.Intervals[0]
	if iv.Lo.X != 1000 || iv.Hi.X != 1001 || iv.Lo.Y != 8 || iv.Hi.Y != 8 {
		t.Errorf("mesh frontier bracket %sx..%s, want 1000x8..1001x8",
			iv.Lo.format(AxisMesh), iv.Hi.format(AxisMesh))
	}
	if got := iv.Lo.format(AxisMesh); got != "1000x8" {
		t.Errorf("mesh value renders %q, want 1000x8", got)
	}
}

// TestSurrogateDisagreementRefines: an interval with no predicate flip
// is still refined where the analytic surrogate disagrees with
// simulation — the model-mistrust half of the refinement rule.
func TestSurrogateDisagreementRefines(t *testing.T) {
	// Simulation: constant class (m always positive). Surrogate: agrees
	// everywhere except at value 1 where it predicts the other class.
	run := func(s sweep.Scenario) (sweep.Metrics, error) {
		var m sweep.Metrics
		m.Add("m", 1.0)
		return m, nil
	}
	surrogate := func(s sweep.Scenario) (sweep.Metrics, bool) {
		var m sweep.Metrics
		if s.Ranks == 1 {
			m.Add("m", -1.0) // disagrees with simulation
		} else {
			m.Add("m", 1.0)
		}
		return m, true
	}
	mk := func(withSurrogate bool) *Outcome {
		plan := &Plan{
			Grid:   sweep.Grid{Machines: []string{"icx"}, Ranks: []int{1, 9}},
			Axis:   AxisRanks,
			Target: mustTarget(t, "gt:m:0"),
		}
		if withSurrogate {
			plan.Surrogate = surrogate
		}
		out, err := plan.Run(context.Background(), sweep.NewEngine(2), sweep.IgnoreContext(run), nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	without := mk(false)
	if without.Visited != 2 {
		t.Fatalf("without surrogate: visited %d, want 2 (no flip, nothing refined)", without.Visited)
	}
	with := mk(true)
	if with.Visited <= without.Visited {
		t.Errorf("with disagreeing surrogate: visited %d, want > %d (disagreement refines)", with.Visited, without.Visited)
	}
	if with.FrontierCount() != 0 {
		t.Errorf("frontier count %d, want 0 (the predicate never flips)", with.FrontierCount())
	}
	// The surrogate classification is surfaced per point.
	var sawModel bool
	for _, p := range with.Tracks[0].Points {
		if p.Model != nil {
			sawModel = true
		}
	}
	if !sawModel {
		t.Error("no point carries the surrogate classification")
	}
}

// TestModelTarget: the analytic-vs-simulated divergence predicate
// brackets where the model error crosses the relative tolerance.
func TestModelTarget(t *testing.T) {
	// Simulated metric: value; analytic model: value up to 100, then
	// stuck at 100 — divergence exceeds 10% once value > 111.
	run := func(s sweep.Scenario) (sweep.Metrics, error) {
		var m sweep.Metrics
		m.Add("m", float64(s.Ranks))
		return m, nil
	}
	surrogate := func(s sweep.Scenario) (sweep.Metrics, bool) {
		v := float64(s.Ranks)
		if v > 100 {
			v = 100
		}
		var m sweep.Metrics
		m.Add("am", v)
		return m, true
	}
	plan := &Plan{
		Grid:      sweep.Grid{Machines: []string{"icx"}, Ranks: []int{1, 512}},
		Axis:      AxisRanks,
		Target:    mustTarget(t, "model:m:am:0.1"),
		Surrogate: surrogate,
	}
	out, err := plan.Run(context.Background(), sweep.NewEngine(2), sweep.IgnoreContext(run), nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := out.Tracks[0]
	if len(tr.Intervals) != 1 {
		t.Fatalf("got %d intervals, want 1", len(tr.Intervals))
	}
	want := Interval{Lo: Value{X: 110}, Hi: Value{X: 111}, LoClass: false, HiClass: true}
	if tr.Intervals[0] != want {
		t.Errorf("interval %+v, want %+v (divergence >10%% above 110)", tr.Intervals[0], want)
	}
}

// TestCacheSharing: adaptive campaigns share the engine result tiers
// with prior runs — a second identical search simulates nothing.
func TestCacheSharing(t *testing.T) {
	thresholds := map[string]float64{"icx": 37.5}
	var sims atomic.Int64
	eng := sweep.NewEngine(4)
	plan := &Plan{
		Grid:   sweep.Grid{Machines: []string{"icx"}, Ranks: []int{1, 256}},
		Axis:   AxisRanks,
		Target: mustTarget(t, "gt:m:0"),
	}
	runner := sweep.IgnoreContext(syntheticRunner(AxisRanks, thresholds, &sims))
	first, err := plan.Run(context.Background(), eng, runner, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold := sims.Load()
	if cold == 0 {
		t.Fatal("cold run simulated nothing")
	}
	second, err := plan.Run(context.Background(), eng, runner, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sims.Load() != cold {
		t.Errorf("warm adaptive run simulated %d extra cells, want 0 (memoizer shared)", sims.Load()-cold)
	}
	if second.Visited != first.Visited {
		t.Errorf("warm visited %d != cold visited %d (trajectory must not depend on cache state)",
			second.Visited, first.Visited)
	}
}

// TestInterrupted: a cancelled context surfaces as a partial,
// non-erroring outcome, mirroring the engine's campaign contract.
func TestInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan := &Plan{
		Grid:   sweep.Grid{Machines: []string{"icx"}, Ranks: []int{1, 64}},
		Axis:   AxisRanks,
		Target: mustTarget(t, "gt:m:0"),
	}
	out, err := plan.Run(ctx, sweep.NewEngine(2),
		sweep.IgnoreContext(syntheticRunner(AxisRanks, map[string]float64{"icx": 10}, nil)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Interrupted {
		t.Fatal("outcome not marked interrupted under a cancelled context")
	}
	if len(out.Tracks[0].Points) != 0 {
		t.Errorf("%d points classified under a pre-cancelled context, want 0", len(out.Tracks[0].Points))
	}
}

// TestProbeFailure: a failing probe aborts refinement and surfaces as
// the returned error alongside the partial outcome.
func TestProbeFailure(t *testing.T) {
	boom := errors.New("boom")
	run := func(s sweep.Scenario) (sweep.Metrics, error) {
		if s.Ranks == 64 {
			return nil, boom
		}
		var m sweep.Metrics
		m.Add("m", float64(s.Ranks)-32.5)
		return m, nil
	}
	plan := &Plan{
		Grid:   sweep.Grid{Machines: []string{"icx"}, Ranks: []int{1, 64}},
		Axis:   AxisRanks,
		Target: mustTarget(t, "gt:m:0"),
	}
	out, err := plan.Run(context.Background(), sweep.NewEngine(2), sweep.IgnoreContext(run), nil)
	if err == nil {
		t.Fatal("probe failure did not surface as an error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not wrap the probe failure", err)
	}
	if out == nil {
		t.Fatal("no partial outcome alongside the error")
	}
	if out.Rounds != 1 {
		t.Errorf("refinement continued past the failing wave: %d rounds", out.Rounds)
	}
}

// TestValidate pins the plan-invariant errors the CLI maps to usage
// exits.
func TestValidate(t *testing.T) {
	base := sweep.Grid{Machines: []string{"icx"}, Ranks: []int{1, 8}}
	cases := []struct {
		name string
		plan Plan
	}{
		{"bad axis", Plan{Grid: base, Axis: "seed", Target: mustTarget(t, "gt:m:0")}},
		{"one seed", Plan{Grid: sweep.Grid{Machines: []string{"icx"}, Ranks: []int{4}}, Axis: AxisRanks, Target: mustTarget(t, "gt:m:0")}},
		{"dup seeds", Plan{Grid: sweep.Grid{Machines: []string{"icx"}, Ranks: []int{4, 4}}, Axis: AxisRanks, Target: mustTarget(t, "gt:m:0")}},
		{"non-positive seed", Plan{Grid: sweep.Grid{Machines: []string{"icx"}, Ranks: []int{0, 8}}, Axis: AxisRanks, Target: mustTarget(t, "gt:m:0")}},
		{"delta with modes", Plan{Grid: sweep.Grid{Machines: []string{"icx"}, Ranks: []int{1, 8}, Modes: sweep.AllModes()}, Axis: AxisRanks, Target: mustTarget(t, "delta:m:nt/baseline")}},
		{"model without surrogate", Plan{Grid: base, Axis: AxisRanks, Target: mustTarget(t, "model:m:am:0.1")}},
	}
	for _, c := range cases {
		p := c.plan
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted, want error", c.name)
		}
	}
	ok := Plan{Grid: base, Axis: AxisRanks, Target: mustTarget(t, "gt:m:0")}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestEmittersRenderBothSections: the frontier artifacts carry the
// bracketing intervals AND every visited cell in grid order.
func TestEmittersRenderBothSections(t *testing.T) {
	plan := &Plan{
		Grid:   sweep.Grid{Machines: []string{"icx"}, Ranks: []int{1, 16}},
		Axis:   AxisRanks,
		Target: mustTarget(t, "gt:m:0"),
	}
	out, err := plan.Run(context.Background(), sweep.NewEngine(2),
		sweep.IgnoreContext(syntheticRunner(AxisRanks, map[string]float64{"icx": 8.5}, nil)), nil)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := (CSVEmitter{}).Emit(&csvBuf, out); err != nil {
		t.Fatal(err)
	}
	s := csvBuf.String()
	if !strings.Contains(s, "frontier,icx") || !strings.Contains(s, "cell,icx") {
		t.Errorf("CSV lacks frontier or cell rows:\n%s", s)
	}
	// Cells in ascending axis order, values in the ranks column syntax.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	var prev int
	for _, l := range lines[1:] {
		f := strings.Split(l, ",")
		if f[0] != "cell" {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(f[8], "%d", &v); err != nil {
			t.Fatalf("cell value %q not numeric: %v", f[8], err)
		}
		if v <= prev {
			t.Fatalf("cell values not strictly ascending: %d after %d", v, prev)
		}
		prev = v
	}
	if prev == 0 {
		t.Fatal("no cell rows parsed")
	}
	var jsonBuf bytes.Buffer
	if err := (JSONEmitter{}).Emit(&jsonBuf, out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"axis":"ranks"`, `"intervals":`, `"cells":`, `"target":"gt:m:0"`} {
		if !strings.Contains(jsonBuf.String(), want) {
			t.Errorf("JSON lacks %s:\n%s", want, jsonBuf.String())
		}
	}
}
