package search

import (
	"encoding/json"
	"fmt"
	"io"

	"cloversim/internal/csvout"
)

// Emitters render an Outcome byte-stably: the same outcome always
// renders identically, across runs, GOMAXPROCS values and backends —
// the frontier analogue of the sweep emitters' contract.

// trackContext renders a track's non-axis identity columns; the
// refined axis column carries "*" and a TargetDelta track's mode column
// carries the predicate's mode pair.
func (o *Outcome) trackContext(t TrackResult) (machine, workload, mode, ranks, mesh, threads string) {
	machine = t.Base.Machine
	workload = t.Base.Workload
	mode = t.Base.Mode.Name
	if o.Target.Kind == TargetDelta {
		mode = o.Target.ModeA.Name + "/" + o.Target.ModeB.Name
	}
	ranks = fmt.Sprintf("%d", t.Base.Ranks)
	mesh = t.Base.Mesh.String()
	threads = fmt.Sprintf("%d", t.Base.Threads)
	switch o.Axis {
	case AxisRanks:
		ranks = "*"
	case AxisThreads:
		threads = "*"
	case AxisMesh:
		mesh = "*"
	}
	return
}

// Table renders the outcome as one csvout table: interval rows
// (kind=frontier) carry the bracketing endpoints and their
// classifications, cell rows (kind=cell) carry every visited point in
// grid order — track order first, axis value ascending within a track.
// The model column is the surrogate's classification ("" when the
// analytic hook could not answer).
func (o *Outcome) Table() *csvout.Table {
	t := csvout.New("kind", "machine", "workload", "mode", "ranks", "mesh", "threads",
		"axis", "value", "class", "model", "lo", "hi", "lo_class", "hi_class", "ids")
	for _, tr := range o.Tracks {
		machine, workload, mode, ranks, mesh, threads := o.trackContext(tr)
		for _, iv := range tr.Intervals {
			t.Add("frontier", machine, workload, mode, ranks, mesh, threads,
				string(o.Axis), "", "", "",
				iv.Lo.format(o.Axis), iv.Hi.format(o.Axis),
				iv.LoClass, iv.HiClass, "")
		}
		for _, p := range tr.Points {
			model := ""
			if p.Model != nil {
				model = fmt.Sprintf("%t", *p.Model)
			}
			ids := ""
			for i, r := range p.Results {
				if i > 0 {
					ids += "+"
				}
				ids += r.ID
			}
			t.Add("cell", machine, workload, mode, ranks, mesh, threads,
				string(o.Axis), p.Value.format(o.Axis), p.Class, model,
				"", "", "", "", ids)
		}
	}
	return t
}

// CSVEmitter writes the outcome table as CSV.
type CSVEmitter struct{}

// Emit renders o to w.
func (CSVEmitter) Emit(w io.Writer, o *Outcome) error { return o.Table().WriteCSV(w) }

// jsonValue/jsonCell/jsonInterval/jsonTrack/jsonOutcome fix the field
// order so the JSON frontier artifact is deterministic, exactly like
// the campaign JSON emitters.
type jsonCell struct {
	Value string   `json:"value"`
	Class bool     `json:"class"`
	Model *bool    `json:"model,omitempty"`
	IDs   []string `json:"ids"`
}

type jsonInterval struct {
	Lo      string `json:"lo"`
	Hi      string `json:"hi"`
	LoClass bool   `json:"lo_class"`
	HiClass bool   `json:"hi_class"`
}

type jsonTrack struct {
	Machine   string         `json:"machine"`
	Workload  string         `json:"workload,omitempty"`
	Mode      string         `json:"mode"`
	Ranks     string         `json:"ranks"`
	Mesh      string         `json:"mesh"`
	Threads   string         `json:"threads"`
	Intervals []jsonInterval `json:"intervals"`
	Cells     []jsonCell     `json:"cells"`
}

type jsonOutcome struct {
	Axis        string      `json:"axis"`
	Target      string      `json:"target"`
	Rounds      int         `json:"rounds"`
	Visited     int         `json:"visited"`
	Frontier    int         `json:"frontier"`
	Interrupted bool        `json:"interrupted,omitempty"`
	Tracks      []jsonTrack `json:"tracks"`
}

// JSONEmitter writes the outcome as deterministic JSON.
type JSONEmitter struct {
	Indent bool
}

// Emit renders o to w.
func (e JSONEmitter) Emit(w io.Writer, o *Outcome) error {
	doc := jsonOutcome{
		Axis:     string(o.Axis),
		Target:   o.Target.String(),
		Rounds:   o.Rounds,
		Visited:  o.Visited,
		Frontier: o.FrontierCount(),

		Interrupted: o.Interrupted,
		Tracks:      make([]jsonTrack, 0, len(o.Tracks)),
	}
	for _, tr := range o.Tracks {
		machine, workload, mode, ranks, mesh, threads := o.trackContext(tr)
		jt := jsonTrack{
			Machine: machine, Workload: workload, Mode: mode,
			Ranks: ranks, Mesh: mesh, Threads: threads,
			Intervals: []jsonInterval{},
			Cells:     []jsonCell{},
		}
		for _, iv := range tr.Intervals {
			jt.Intervals = append(jt.Intervals, jsonInterval{
				Lo: iv.Lo.format(o.Axis), Hi: iv.Hi.format(o.Axis),
				LoClass: iv.LoClass, HiClass: iv.HiClass,
			})
		}
		for _, p := range tr.Points {
			jc := jsonCell{Value: p.Value.format(o.Axis), Class: p.Class, Model: p.Model, IDs: []string{}}
			for _, r := range p.Results {
				jc.IDs = append(jc.IDs, r.ID)
			}
			jt.Cells = append(jt.Cells, jc)
		}
		doc.Tracks = append(doc.Tracks, jt)
	}
	enc := json.NewEncoder(w)
	if e.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(doc)
}

// Summary is the one-line terminal digest of an adaptive campaign.
func (o *Outcome) Summary() string {
	s := fmt.Sprintf("adaptive: axis=%s target=%s rounds=%d visited=%d cells frontier=%d intervals",
		o.Axis, o.Target, o.Rounds, o.Visited, o.FrontierCount())
	if o.Interrupted {
		s += " (interrupted)"
	}
	return s
}
