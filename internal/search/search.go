// Package search is the adaptive campaign driver: it treats a sweep
// grid as a search space instead of an enumeration. The paper's real
// questions are frontier questions — *where* does non-temporal
// write-allocate evasion beat the baseline, *at which* rank, mesh or
// thread count does a stencil's layer condition break — yet an
// exhaustive campaign pays for the full cross product even though most
// cells are far from any decision boundary.
//
// A Plan takes a resolved sweep.Grid, one numeric refinement axis
// (ranks, mesh or threads) and a Target predicate over sweep.Metrics,
// and runs in deterministic *waves*: each round the pending probe
// points of every track (the cross product of the non-axis grid
// dimensions) are resolved into explicit scenarios and executed through
// one Engine.RunScenariosContextProgress call — so the memoizer, the
// tier-2 store write-through, local and fleet backends, streaming
// progress and cancellation semantics all apply unchanged — and then
// only the intervals where the predicate changes sign, or where the
// workload's cheap Analytic surrogate disagrees with simulation, are
// bisected; everything else is pruned. Because refinement decisions are
// made between waves from completed results only, the visited-cell set
// and the refinement trajectory are bit-deterministic regardless of
// backend parallelism, and because every result is a content-addressed
// store record, adaptive and exhaustive campaigns share cache both
// ways.
package search

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"cloversim/internal/sweep"
)

// Axis is the numeric grid dimension a Plan refines along.
type Axis string

const (
	AxisRanks   Axis = "ranks"
	AxisThreads Axis = "threads"
	AxisMesh    Axis = "mesh"
)

// ParseAxis validates a -adaptive axis name.
func ParseAxis(s string) (Axis, error) {
	switch Axis(s) {
	case AxisRanks, AxisThreads, AxisMesh:
		return Axis(s), nil
	}
	return "", fmt.Errorf("search: bad axis %q (want ranks, threads or mesh)", s)
}

// Value is one point on the refinement axis: X carries the rank or
// thread count, and the mesh axis uses both components (X columns, Y
// rows). Values order lexicographically by (X, Y) and refine by
// componentwise integer midpoints.
type Value struct{ X, Y int }

// valueOf extracts the axis value of a scenario.
func valueOf(axis Axis, s sweep.Scenario) Value {
	switch axis {
	case AxisRanks:
		return Value{X: s.Ranks}
	case AxisThreads:
		return Value{X: s.Threads}
	default:
		return Value{X: s.Mesh.X, Y: s.Mesh.Y}
	}
}

// String renders the value in the axis's native syntax.
func (v Value) format(axis Axis) string {
	if axis == AxisMesh {
		return fmt.Sprintf("%dx%d", v.X, v.Y)
	}
	return fmt.Sprintf("%d", v.X)
}

func (v Value) less(o Value) bool {
	if v.X != o.X {
		return v.X < o.X
	}
	return v.Y < o.Y
}

// mid returns the componentwise integer midpoint.
func mid(a, b Value) Value { return Value{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2} }

// gap is the largest componentwise distance between two values — the
// interval width the tolerance is compared against.
func gap(a, b Value) int {
	dx, dy := b.X-a.X, b.Y-a.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dy > dx {
		return dy
	}
	return dx
}

// apply instantiates a track's base scenario at an axis value.
func apply(axis Axis, base sweep.Scenario, v Value) sweep.Scenario {
	switch axis {
	case AxisRanks:
		base.Ranks = v.X
	case AxisThreads:
		base.Threads = v.X
	default:
		base.Mesh = sweep.Mesh{X: v.X, Y: v.Y}
	}
	return base
}

// Plan is one adaptive frontier-search campaign.
type Plan struct {
	// Grid is the resolved base grid. The refinement axis's values are
	// the seed probe points (at least two are required: the initial
	// bracketing interval endpoints); the remaining dimensions form the
	// tracks the search runs independently over. For TargetDelta plans
	// the mode axis is owned by the predicate's mode pair and must be
	// left empty.
	Grid sweep.Grid
	// Axis is the numeric dimension refined between waves.
	Axis Axis
	// Target classifies each probe point; the frontier is where the
	// classification flips between adjacent axis values.
	Target Target
	// Tol stops refining an interval once its axis gap is <= Tol
	// (default 1, the integer resolution limit). For the mesh axis the
	// gap is the larger componentwise distance.
	Tol int
	// MaxRounds bounds the number of refinement waves (default 16 —
	// enough to bisect any int32-sized interval to unit resolution).
	MaxRounds int
	// Surrogate, when set, evaluates a scenario's cheap analytic model
	// (workload.Analytic) without simulating. It classifies candidate
	// points ahead of simulation: intervals whose endpoints the
	// surrogate and the simulation classify identically and whose
	// predicate does not flip are pruned; where the surrogate disagrees
	// with simulation the model is untrustworthy and the interval is
	// refined even without a sign change. TargetModel plans require it.
	Surrogate func(sweep.Scenario) (sweep.Metrics, bool)
}

// Point is one visited axis point of one track.
type Point struct {
	Value Value
	// Class is the predicate's simulated classification.
	Class bool
	// Model is the surrogate's classification, nil when the analytic
	// hook could not answer for this predicate.
	Model *bool
	// Results are the probe results in probe order (TargetDelta:
	// [ModeA, ModeB]).
	Results []sweep.Result
}

// Interval is one bracketing interval of the frontier: the predicate
// classifies the endpoints differently, and no visited point lies
// between them.
type Interval struct {
	Lo, Hi           Value
	LoClass, HiClass bool
}

// TrackResult is one track's search outcome: the visited points in
// ascending axis order and the bracketing intervals between them.
type TrackResult struct {
	// Base is the track's scenario template: the refinement axis field
	// is zero, and for TargetDelta plans the mode is zero too (the
	// predicate owns it).
	Base      sweep.Scenario
	Points    []Point
	Intervals []Interval
}

// Outcome is a completed (or interrupted) adaptive campaign.
type Outcome struct {
	Axis   Axis
	Target Target
	// Rounds is the number of executed waves.
	Rounds int
	// Visited counts the unique scenarios handed to the engine across
	// all waves — the adaptive analogue of Grid.Size(), and the number
	// an exhaustive cross product is compared against. Cache-served
	// cells count: the driver scheduled them.
	Visited int
	// Interrupted reports that ctx was cancelled mid-wave: the points
	// classified so far stand, unfinished probes are dropped.
	Interrupted bool
	// CacheErr aggregates tier-2 store write failures across waves
	// (sweep.Campaign.CacheErr semantics).
	CacheErr error
	Tracks   []TrackResult
}

// FrontierCount returns the total bracketing intervals across tracks.
func (o *Outcome) FrontierCount() int {
	n := 0
	for _, t := range o.Tracks {
		n += len(t.Intervals)
	}
	return n
}

// pointState is the driver's per-point bookkeeping.
type pointState struct {
	value    Value
	class    bool
	model    *bool
	disagree bool // surrogate answered and disagrees with simulation
	results  []sweep.Result
}

// track is the driver's per-track state. Points are kept sorted by
// axis value; membership is tracked in a keyed map but every
// order-sensitive walk runs over the sorted slice, never the map.
type track struct {
	base   sweep.Scenario
	points []*pointState // sorted ascending by value
	seen   map[Value]bool
}

func (tr *track) insert(p *pointState) {
	i := sort.Search(len(tr.points), func(i int) bool { return !tr.points[i].value.less(p.value) })
	tr.points = append(tr.points, nil)
	copy(tr.points[i+1:], tr.points[i:])
	tr.points[i] = p
}

// seedValues extracts, sorts and deduplicates the refinement axis's
// grid values.
func seedValues(g sweep.Grid, axis Axis) ([]Value, error) {
	var vals []Value
	switch axis {
	case AxisRanks:
		for _, r := range g.Ranks {
			vals = append(vals, Value{X: r})
		}
	case AxisThreads:
		for _, t := range g.Threads {
			vals = append(vals, Value{X: t})
		}
	case AxisMesh:
		for _, m := range g.Meshes {
			vals = append(vals, Value{X: m.X, Y: m.Y})
		}
	default:
		return nil, fmt.Errorf("search: bad axis %q", axis)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].less(vals[j]) })
	dedup := vals[:0]
	for i, v := range vals {
		if i == 0 || vals[i-1] != v {
			dedup = append(dedup, v)
		}
	}
	vals = dedup
	if len(vals) < 2 {
		return nil, fmt.Errorf("search: axis %s needs at least two seed values to bracket a frontier (got %d)", axis, len(vals))
	}
	for _, v := range vals {
		if v.X <= 0 || (axis == AxisMesh && v.Y <= 0) {
			return nil, fmt.Errorf("search: axis %s seed value %s must be positive", axis, v.format(axis))
		}
	}
	return vals, nil
}

// tracksOf expands the non-axis grid dimensions into track templates in
// grid order.
func tracksOf(g sweep.Grid, axis Axis, delta bool) []sweep.Scenario {
	tg := g
	switch axis {
	case AxisRanks:
		tg.Ranks = nil
	case AxisThreads:
		tg.Threads = nil
	case AxisMesh:
		tg.Meshes = nil
	}
	if delta {
		tg.Modes = nil
	}
	return tg.Expand()
}

// probes lists the scenarios one point costs, in deterministic probe
// order.
func (p *Plan) probes(base sweep.Scenario, v Value) []sweep.Scenario {
	s := apply(p.Axis, base, v)
	if p.Target.Kind == TargetDelta {
		a, b := s, s
		a.Mode, b.Mode = p.Target.ModeA, p.Target.ModeB
		return []sweep.Scenario{a, b}
	}
	return []sweep.Scenario{s}
}

// Validate checks the plan invariants shared by Run and the CLI's
// usage-error path: a known axis, at least two seed values, an empty
// mode axis under TargetDelta, and a surrogate for TargetModel.
func (p *Plan) Validate() error {
	if _, err := ParseAxis(string(p.Axis)); err != nil {
		return err
	}
	if _, err := seedValues(p.Grid, p.Axis); err != nil {
		return err
	}
	if p.Target.Kind == TargetDelta && len(p.Grid.Modes) > 0 {
		return fmt.Errorf("search: a delta target owns the mode axis (%s vs %s); drop the grid's mode values",
			p.Target.ModeA.Name, p.Target.ModeB.Name)
	}
	if p.Target.Kind == TargetModel && p.Surrogate == nil {
		return fmt.Errorf("search: target %s needs an analytic surrogate", p.Target)
	}
	return nil
}

// Run executes the adaptive campaign: waves of explicit scenarios
// through eng (whose memoizer, tier-2 cache, backend and progress
// semantics apply unchanged), bisection between waves. The runner is
// only consulted by local backends, exactly as in Engine.RunContext.
//
// Cancelling ctx stops the search at the current wave: classified
// points stand, Outcome.Interrupted is set, and no error is returned
// (mirroring the engine's partial-campaign contract). Probe failures —
// scenario errors or predicate evaluation errors — abort refinement and
// surface as the returned error alongside the partial outcome.
func (p *Plan) Run(ctx context.Context, eng *sweep.Engine, runner sweep.RunnerContext, progress func(done, total int, r sweep.Result)) (*Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	seeds, err := seedValues(p.Grid, p.Axis)
	if err != nil {
		return nil, err
	}
	tol := p.Tol
	if tol <= 0 {
		tol = 1
	}
	maxRounds := p.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 16
	}
	bases := tracksOf(p.Grid, p.Axis, p.Target.Kind == TargetDelta)
	tracks := make([]*track, len(bases))
	pending := make([][]Value, len(tracks))
	for i, b := range bases {
		tracks[i] = &track{base: b, seen: map[Value]bool{}}
		pending[i] = append([]Value(nil), seeds...)
		for _, v := range seeds {
			tracks[i].seen[v] = true
		}
	}

	out := &Outcome{Axis: p.Axis, Target: p.Target}
	visited := map[string]bool{} // scenario ID -> scheduled (count only)
	var errs []error
	var cacheErrs []error

	for round := 0; round < maxRounds; round++ {
		// Assemble the wave in deterministic order: tracks in grid
		// order, each track's pending values ascending, probe order
		// within a point fixed by the target.
		type ref struct {
			track int
			value Value
		}
		var refs []ref
		var batch []sweep.Scenario
		for ti, tr := range tracks {
			sort.Slice(pending[ti], func(i, j int) bool { return pending[ti][i].less(pending[ti][j]) })
			for _, v := range pending[ti] {
				refs = append(refs, ref{ti, v})
				batch = append(batch, p.probes(tr.base, v)...)
			}
			pending[ti] = nil
		}
		if len(refs) == 0 {
			break
		}
		out.Rounds++
		for _, s := range batch {
			visited[s.ID()] = true
		}
		camp := eng.RunScenariosContextProgress(ctx, batch, runner, progress)
		if camp.CacheErr != nil {
			cacheErrs = append(cacheErrs, camp.CacheErr)
		}

		// Harvest: map results back to points, classify, insert.
		probeN := p.Target.Probes()
		interrupted := false
		for ri, rf := range refs {
			rs := camp.Results[ri*probeN : ri*probeN+probeN]
			ps := &pointState{value: rf.value, results: append([]sweep.Result(nil), rs...)}
			var unstarted, failed bool
			sim := make([]sweep.Metrics, probeN)
			for pi, r := range rs {
				if errors.Is(r.Err, sweep.ErrUnstarted) {
					unstarted = true
					continue
				}
				if r.Err != nil {
					failed = true
					errs = append(errs, fmt.Errorf("search: probe %s (%s): %w", r.ID, r.Scenario.Label(), r.Err))
					continue
				}
				sim[pi] = r.Metrics
			}
			if unstarted {
				interrupted = true
				continue
			}
			if failed {
				continue
			}
			analytic := make([]sweep.Metrics, probeN)
			if p.Surrogate != nil {
				for pi := range rs {
					if m, ok := p.Surrogate(rs[pi].Scenario); ok {
						analytic[pi] = m
					}
				}
			}
			class, model, cerr := p.Target.classify(sim, analytic)
			if cerr != nil {
				errs = append(errs, cerr)
				continue
			}
			ps.class, ps.model = class, model
			ps.disagree = model != nil && *model != class
			tracks[rf.track].insert(ps)
		}
		if interrupted {
			out.Interrupted = true
			break
		}
		if len(errs) > 0 {
			// A failed probe poisons refinement decisions; stop rather
			// than search on partial information.
			break
		}

		// Refine: bisect intervals whose classification flips or whose
		// endpoints the surrogate and the simulation disagree on; prune
		// everything else.
		for ti, tr := range tracks {
			for i := 0; i+1 < len(tr.points); i++ {
				a, b := tr.points[i], tr.points[i+1]
				if a.class == b.class && !a.disagree && !b.disagree {
					continue
				}
				if gap(a.value, b.value) <= tol {
					continue
				}
				m := mid(a.value, b.value)
				if m == a.value || m == b.value || tr.seen[m] {
					continue
				}
				tr.seen[m] = true
				pending[ti] = append(pending[ti], m)
			}
		}
	}

	out.Visited = len(visited)
	out.CacheErr = errors.Join(cacheErrs...)
	for _, tr := range tracks {
		res := TrackResult{Base: tr.base}
		for _, ps := range tr.points {
			res.Points = append(res.Points, Point{Value: ps.value, Class: ps.class, Model: ps.model, Results: ps.results})
		}
		for i := 0; i+1 < len(tr.points); i++ {
			a, b := tr.points[i], tr.points[i+1]
			if a.class != b.class {
				res.Intervals = append(res.Intervals, Interval{
					Lo: a.value, Hi: b.value, LoClass: a.class, HiClass: b.class,
				})
			}
		}
		out.Tracks = append(out.Tracks, res)
	}
	return out, errors.Join(errs...)
}
