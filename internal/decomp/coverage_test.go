package decomp

import "testing"

// TestDecomposeCoversExactly is the table-driven tiling validation: for
// a spread of rank counts (including the primes behind the paper's
// prime-number effect) and mesh shapes, the rank subdomains must cover
// the mesh exactly — every cell in exactly one tile, no overlap, no
// gaps, all bounds inside the mesh.
func TestDecomposeCoversExactly(t *testing.T) {
	cases := []struct {
		ranks, gx, gy int
	}{
		{1, 100, 100},
		{2, 100, 100},
		{4, 64, 64},
		{6, 100, 40},
		{17, 100, 100},   // prime
		{19, 1536, 1536}, // prime, paper rank count
		{36, 1536, 1536},
		{71, 1536, 1536}, // prime, the paper's pathological count
		{72, 1536, 1536},
		{72, 15360, 15360},
		{7, 37, 29}, // prime ranks on an odd non-square mesh
		{12, 30, 90},
	}
	for _, tc := range cases {
		subs := Decompose(tc.ranks, tc.gx, tc.gy)
		if len(subs) != tc.ranks {
			t.Errorf("%d ranks on %dx%d: %d subdomains", tc.ranks, tc.gx, tc.gy, len(subs))
			continue
		}
		area := 0
		for _, s := range subs {
			if s.XMin < 1 || s.YMin < 1 || s.XMax > tc.gx || s.YMax > tc.gy {
				t.Errorf("%d ranks on %dx%d: rank %d bounds [%d,%d]x[%d,%d] outside mesh",
					tc.ranks, tc.gx, tc.gy, s.Rank, s.XMin, s.XMax, s.YMin, s.YMax)
			}
			if s.XSpan() < 1 || s.YSpan() < 1 {
				t.Errorf("%d ranks on %dx%d: rank %d empty tile", tc.ranks, tc.gx, tc.gy, s.Rank)
			}
			area += s.XSpan() * s.YSpan()
		}
		if area != tc.gx*tc.gy {
			t.Errorf("%d ranks on %dx%d: tiles cover %d cells, mesh has %d",
				tc.ranks, tc.gx, tc.gy, area, tc.gx*tc.gy)
		}
		// Pairwise overlap: with the exact area sum above this also
		// proves there are no gaps.
		for i := 0; i < len(subs); i++ {
			for j := i + 1; j < len(subs); j++ {
				a, b := subs[i], subs[j]
				if a.XMin <= b.XMax && b.XMin <= a.XMax && a.YMin <= b.YMax && b.YMin <= a.YMax {
					t.Errorf("%d ranks on %dx%d: ranks %d and %d overlap",
						tc.ranks, tc.gx, tc.gy, a.Rank, b.Rank)
				}
			}
		}
	}
}

// TestFactorizeConsistent: the chunk grid multiplies back to the rank
// count, and prime counts on wide meshes cut the inner dimension.
func TestFactorizeConsistent(t *testing.T) {
	for n := 1; n <= 96; n++ {
		cx, cy := Factorize(n, 15360, 15360)
		if cx*cy != n {
			t.Errorf("Factorize(%d) = %dx%d != %d", n, cx, cy, n)
		}
		if IsPrime(n) && n > 1 && cx != n {
			t.Errorf("prime %d on a square mesh should cut x into %d chunks, got %dx%d", n, n, cx, cy)
		}
	}
}
