// Package decomp reimplements CloverLeaf's 2D domain decomposition
// (clover_decompose): the number of MPI ranks is factorized into a
// chunks_x × chunks_y grid so that subdomains stay as square as possible.
// For a square mesh and a prime rank count the only nontrivial
// factorization is 1 × n, and CloverLeaf then cuts the *inner* (x)
// dimension — the geometric root of the paper's prime-number effect.
package decomp

// IsPrime reports whether n is prime.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Factorize returns (chunksX, chunksY) for n ranks on a gridX x gridY
// mesh, following CloverLeaf's algorithm: pick the smallest divisor c of
// n with (n/c)/c <= gridX/gridY as chunksY; if none exists below n (n
// prime), cut the x dimension into n chunks.
func Factorize(n, gridX, gridY int) (cx, cy int) {
	if n <= 1 {
		return 1, 1
	}
	meshRatio := float64(gridX) / float64(gridY)
	for c := 1; c <= n; c++ {
		if n%c != 0 {
			continue
		}
		fx := float64(n / c)
		fy := float64(c)
		if fx/fy <= meshRatio {
			cx, cy = n/c, c
			break
		}
	}
	if cx == 0 || cy == n && n > 1 {
		// No balanced split found (prime n on a square mesh): CloverLeaf
		// cuts along x when the mesh is at least as wide as tall.
		if meshRatio >= 1 {
			return n, 1
		}
		return 1, n
	}
	return cx, cy
}

// Subdomain is one rank's cell range (global, inclusive, 1-based like the
// Fortran code).
type Subdomain struct {
	Rank                   int
	XMin, XMax, YMin, YMax int
	CoordX, CoordY         int // position in the chunk grid
}

// XSpan returns the inner x extent in cells.
func (s Subdomain) XSpan() int { return s.XMax - s.XMin + 1 }

// YSpan returns the inner y extent in cells.
func (s Subdomain) YSpan() int { return s.YMax - s.YMin + 1 }

// Decompose splits a gridX x gridY mesh over n ranks. Leftover cells
// (grid not divisible by the chunk count) are distributed to the first
// chunks in each dimension, as CloverLeaf does.
func Decompose(n, gridX, gridY int) []Subdomain {
	cx, cy := Factorize(n, gridX, gridY)
	dx, mx := gridX/cx, gridX%cx
	dy, my := gridY/cy, gridY%cy

	xlo := make([]int, cx+1)
	xlo[0] = 1
	for i := 0; i < cx; i++ {
		w := dx
		if i < mx {
			w++
		}
		xlo[i+1] = xlo[i] + w
	}
	ylo := make([]int, cy+1)
	ylo[0] = 1
	for i := 0; i < cy; i++ {
		h := dy
		if i < my {
			h++
		}
		ylo[i+1] = ylo[i] + h
	}

	subs := make([]Subdomain, 0, n)
	rank := 0
	for ky := 0; ky < cy; ky++ {
		for kx := 0; kx < cx; kx++ {
			subs = append(subs, Subdomain{
				Rank:   rank,
				XMin:   xlo[kx],
				XMax:   xlo[kx+1] - 1,
				YMin:   ylo[ky],
				YMax:   ylo[ky+1] - 1,
				CoordX: kx,
				CoordY: ky,
			})
			rank++
		}
	}
	return subs
}

// Neighbors returns the ranks adjacent to s in the chunk grid
// (left, right, bottom, top), or -1 at the mesh boundary.
func Neighbors(s Subdomain, cx, cy int) (left, right, bottom, top int) {
	idx := func(x, y int) int { return y*cx + x }
	left, right, bottom, top = -1, -1, -1, -1
	if s.CoordX > 0 {
		left = idx(s.CoordX-1, s.CoordY)
	}
	if s.CoordX < cx-1 {
		right = idx(s.CoordX+1, s.CoordY)
	}
	if s.CoordY > 0 {
		bottom = idx(s.CoordX, s.CoordY-1)
	}
	if s.CoordY < cy-1 {
		top = idx(s.CoordX, s.CoordY+1)
	}
	return
}

// InnerDim returns the local inner (x) dimension of the largest chunk for
// n ranks on the square paper grid — the quantity the paper correlates
// with SpecI2M failure (216 for 71 ranks, 809 for 19, 1920 for 64/72).
func InnerDim(n, gridX, gridY int) int {
	cx, _ := Factorize(n, gridX, gridY)
	d := gridX / cx
	if gridX%cx != 0 {
		d++
	}
	return d
}
