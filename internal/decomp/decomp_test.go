package decomp

import (
	"testing"
	"testing/quick"
)

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{
		2: true, 3: true, 5: true, 7: true, 17: true, 19: true,
		37: true, 71: true, 1: false, 0: false, -3: false,
		4: false, 9: false, 38: false, 72: false, 15360: false,
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestFactorizeSquare checks the CloverLeaf factorization on the paper's
// square Tiny grid for the rank counts the paper discusses.
func TestFactorizeSquare(t *testing.T) {
	cases := []struct{ n, cx, cy int }{
		{1, 1, 1},
		{2, 2, 1}, // 2 is prime: the fallback cuts the inner dimension
		{4, 2, 2},
		{36, 6, 6},
		{64, 8, 8},
		{72, 8, 9},
		{19, 19, 1}, // prime: inner (x) dimension is cut
		{37, 37, 1},
		{71, 71, 1},
	}
	for _, c := range cases {
		cx, cy := Factorize(c.n, 15360, 15360)
		if cx != c.cx || cy != c.cy {
			t.Errorf("Factorize(%d) = %dx%d, want %dx%d", c.n, cx, cy, c.cx, c.cy)
		}
	}
}

// TestInnerDimPaperValues checks the local inner dimensions the paper
// quotes: ~216 for 71 ranks, 809 for 19, 1920 for 64 and 72.
func TestInnerDimPaperValues(t *testing.T) {
	cases := map[int]int{71: 217, 19: 809, 64: 1920, 72: 1920, 1: 15360}
	for n, want := range cases {
		if got := InnerDim(n, 15360, 15360); got != want {
			t.Errorf("InnerDim(%d) = %d, want %d", n, got, want)
		}
	}
	// Non-prime counts above 1 rank have inner dimensions >= 1920.
	for n := 2; n <= 72; n++ {
		if !IsPrime(n) {
			if d := InnerDim(n, 15360, 15360); d < 1920 {
				t.Errorf("non-prime %d ranks has inner dim %d < 1920", n, d)
			}
		}
	}
}

// TestFactorizeProperty: cx*cy == n for any n, and primes always cut x on
// wide-or-square meshes.
func TestFactorizeProperty(t *testing.T) {
	f := func(n uint8, gx, gy uint16) bool {
		nn := int(n%200) + 1
		gxx, gyy := int(gx%4000)+100, int(gy%4000)+100
		cx, cy := Factorize(nn, gxx, gyy)
		if cx*cy != nn || cx < 1 || cy < 1 {
			return false
		}
		if IsPrime(nn) && gxx >= gyy && cx != nn {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDecomposePartition: subdomains tile the mesh exactly.
func TestDecomposePartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 12, 19, 36, 71, 72} {
		subs := Decompose(n, 15360, 15360)
		if len(subs) != n {
			t.Fatalf("n=%d: got %d subdomains", n, len(subs))
		}
		cells := 0
		for i, s := range subs {
			if s.Rank != i {
				t.Fatalf("n=%d: rank %d at index %d", n, s.Rank, i)
			}
			if s.XMax < s.XMin || s.YMax < s.YMin {
				t.Fatalf("n=%d: empty subdomain %+v", n, s)
			}
			cells += s.XSpan() * s.YSpan()
		}
		if cells != 15360*15360 {
			t.Errorf("n=%d: subdomains cover %d cells, want %d", n, cells, 15360*15360)
		}
	}
}

// TestDecomposeBalance: spans differ by at most one cell.
func TestDecomposeBalance(t *testing.T) {
	for _, n := range []int{5, 7, 19, 71} {
		subs := Decompose(n, 15360, 15360)
		minX, maxX := 1<<30, 0
		for _, s := range subs {
			if s.XSpan() < minX {
				minX = s.XSpan()
			}
			if s.XSpan() > maxX {
				maxX = s.XSpan()
			}
		}
		if maxX-minX > 1 {
			t.Errorf("n=%d: x spans range %d..%d", n, minX, maxX)
		}
	}
}

func TestNeighbors(t *testing.T) {
	subs := Decompose(6, 600, 600) // 2x3 or 3x2 grid
	cx, cy := Factorize(6, 600, 600)
	if cx*cy != 6 {
		t.Fatal("bad factorization")
	}
	seen := map[int]int{}
	for _, s := range subs {
		l, r, b, tp := Neighbors(s, cx, cy)
		for _, nb := range []int{l, r, b, tp} {
			if nb >= 0 {
				seen[nb]++
				// Symmetry: the neighbor must list s back.
				ns := subs[nb]
				nl, nr, nb2, nt := Neighbors(ns, cx, cy)
				if nl != s.Rank && nr != s.Rank && nb2 != s.Rank && nt != s.Rank {
					t.Errorf("rank %d lists %d but not vice versa", s.Rank, ns.Rank)
				}
			}
		}
	}
	if len(seen) != 6 {
		t.Errorf("not all ranks appear as neighbors in a 2x3 grid: %v", seen)
	}
}

func TestNeighborsEdges(t *testing.T) {
	subs := Decompose(4, 100, 100) // 2x2
	l, r, b, tp := Neighbors(subs[0], 2, 2)
	if l != -1 || b != -1 {
		t.Errorf("corner rank 0 should have no left/bottom, got %d/%d", l, b)
	}
	if r != 1 || tp != 2 {
		t.Errorf("rank 0 neighbors = right %d top %d, want 1/2", r, tp)
	}
}
