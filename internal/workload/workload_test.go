package workload

import (
	"math"
	"reflect"
	"testing"

	"cloversim/internal/machine"
	"cloversim/internal/sweep"
)

func TestRegistryCoversAllWorkloads(t *testing.T) {
	want := []string{"cloverleaf", "jacobi", "riemann", "stream"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v (sorted)", got, want)
	}
	for _, name := range want {
		w, ok := ByName(name)
		if !ok || w.Name() != name {
			t.Errorf("workload %q does not round-trip", name)
		}
		if w.Description() == "" {
			t.Errorf("workload %q has no description", name)
		}
		if m := w.DefaultMesh(); m.X <= 0 || m.Y <= 0 {
			t.Errorf("workload %q default mesh %v not positive", name, m)
		}
	}
}

func TestResolveDefaults(t *testing.T) {
	w, cfg, err := Resolve(sweep.Scenario{Machine: "icx"})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != DefaultName {
		t.Errorf("empty workload resolved to %q, want %q", w.Name(), DefaultName)
	}
	spec, _ := machine.ByName("icx")
	if cfg.Ranks != spec.Cores() || cfg.Threads != spec.Cores() {
		t.Errorf("zero ranks/threads should resolve to full node, got %d/%d", cfg.Ranks, cfg.Threads)
	}
	if cfg.MeshX != 15360 || cfg.MeshY != 15360 {
		t.Errorf("zero mesh should resolve to workload default, got %dx%d", cfg.MeshX, cfg.MeshY)
	}
	if cfg.Seed == 0 {
		t.Error("zero seed should resolve to a fixed default")
	}

	if _, _, err := Resolve(sweep.Scenario{Machine: "icx", Workload: "bogus"}); err == nil {
		t.Error("unknown workload must fail")
	}
	if _, _, err := Resolve(sweep.Scenario{Machine: "bogus", Workload: "stream"}); err == nil {
		t.Error("unknown machine must fail")
	}
	if _, _, err := Resolve(sweep.Scenario{Machine: "icx", Workload: "stream", Ranks: 200}); err == nil {
		t.Error("rank count beyond the node must fail for every workload")
	}
	if _, _, err := Resolve(sweep.Scenario{Machine: "icx", Workload: "jacobi", Threads: 200}); err == nil {
		t.Error("thread count beyond the node must fail for every workload")
	}
}

// kernelScenario is a fast scenario for the kernel workloads.
func kernelScenario(mach, wl, mode string) sweep.Scenario {
	m, _ := sweep.ModeByName(mode)
	return sweep.Scenario{
		Machine: mach, Workload: wl, Mode: m,
		Threads: 8, Ranks: 8, Mesh: sweep.Mesh{X: 2048, Y: 16}, Seed: 0x5eed,
	}
}

func metric(t *testing.T, m sweep.Metrics, name string) float64 {
	t.Helper()
	v, ok := m.Get(name)
	if !ok {
		t.Fatalf("metric %s missing (have %v)", name, m)
	}
	return v
}

// TestStreamPhysics: on the no-evasion CLX the copy kernel pays the
// full write-allocate (ratio 1.5 = 24/16 byte/it); NT stores drop it
// to ~1.0; ICX under full-socket pressure evades most of it.
func TestStreamPhysics(t *testing.T) {
	base, err := Run(kernelScenario("clx", "stream", "baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if r := metric(t, base, "stream_copy_ratio"); r < 1.45 {
		t.Errorf("CLX copy ratio %.3f, want ~1.5 (full write-allocate)", r)
	}
	if r := metric(t, base, "stream_triad_ratio"); r < 1.3 {
		t.Errorf("CLX triad ratio %.3f, want ~1.33", r)
	}

	nt, err := Run(kernelScenario("clx", "stream", "nt"))
	if err != nil {
		t.Fatal(err)
	}
	if r := metric(t, nt, "stream_copy_ratio"); r > 1.1 {
		t.Errorf("CLX NT copy ratio %.3f, want ~1.0", r)
	}

	icx := kernelScenario("icx", "stream", "baseline")
	icx.Threads = 36
	evaded, err := Run(icx)
	if err != nil {
		t.Fatal(err)
	}
	if r := metric(t, evaded, "stream_copy_ratio"); r > 1.25 {
		t.Errorf("ICX full-socket copy ratio %.3f, want substantial evasion", r)
	}
	if v := metric(t, evaded, "stream_copy_itom_bpi"); v <= 0 {
		t.Errorf("ICX evasion must claim ItoM lines, got %.3f byte/it", v)
	}
}

// TestJacobiPhysics: the stencil reads ~8 byte/it with fulfilled layer
// conditions; the write allocate adds 8 on CLX and is evaded on ICX.
func TestJacobiPhysics(t *testing.T) {
	base, err := Run(kernelScenario("clx", "jacobi", "baseline"))
	if err != nil {
		t.Fatal(err)
	}
	read := metric(t, base, "jacobi_read_bpi")
	if read < 14 || read > 20 {
		t.Errorf("CLX jacobi read %.2f byte/it, want ~16 (stream + write-allocate)", read)
	}
	icx := kernelScenario("icx", "jacobi", "baseline")
	icx.Threads = 36
	evaded, err := Run(icx)
	if err != nil {
		t.Fatal(err)
	}
	if re := metric(t, evaded, "jacobi_read_bpi"); re >= read-2 {
		t.Errorf("ICX jacobi read %.2f byte/it, want write-allocate evasion vs CLX %.2f", re, read)
	}
}

// TestRiemannPhysics: the Sod star state matches Toro's reference, and
// the 3-stream write-out pays full write-allocates on CLX.
func TestRiemannPhysics(t *testing.T) {
	m, err := Run(kernelScenario("clx", "riemann", "baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if p := metric(t, m, "riemann_pstar"); math.Abs(p-0.30313) > 1e-3 {
		t.Errorf("pstar %.5f, want 0.30313", p)
	}
	if u := metric(t, m, "riemann_ustar"); math.Abs(u-0.92745) > 1e-3 {
		t.Errorf("ustar %.5f, want 0.92745", u)
	}
	if r := metric(t, m, "riemann_store_ratio"); r < 1.9 {
		t.Errorf("CLX 3-stream store ratio %.3f, want ~2.0", r)
	}
}

// TestWorkloadsDeterministic: every workload must produce bit-identical
// metrics for identical configs (campaign output is byte-compared).
func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range Names() {
		s := kernelScenario("icx", name, "nt")
		a, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: repeated runs differ:\n%v\nvs\n%v", name, a, b)
		}
	}
}

// TestAnalyticHooks: every registered workload must answer its analytic
// hook with finite values.
func TestAnalyticHooks(t *testing.T) {
	for _, name := range Names() {
		w, _ := ByName(name)
		_, cfg, err := Resolve(sweep.Scenario{Machine: "icx", Workload: name})
		if err != nil {
			t.Fatal(err)
		}
		m, ok := w.Analytic(cfg)
		if !ok {
			t.Errorf("%s: no analytic model", name)
			continue
		}
		if len(m) == 0 {
			t.Errorf("%s: empty analytic metrics", name)
		}
		for _, x := range m {
			if math.IsNaN(x.Value) || math.IsInf(x.Value, 0) {
				t.Errorf("%s: analytic metric %s = %v", name, x.Name, x.Value)
			}
		}
	}
}

// TestJacobiAnalyticLC: the default jacobi mesh satisfies a layer
// condition in cache on ICX, and the analytic bounds bracket the
// simulated traffic.
func TestJacobiAnalyticLC(t *testing.T) {
	w, _ := ByName("jacobi")
	_, cfg, err := Resolve(sweep.Scenario{Machine: "icx", Workload: "jacobi"})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := w.Analytic(cfg)
	if lvl := metric(t, m, "jacobi_lc_level"); lvl < 1 || lvl > 3 {
		t.Errorf("default mesh LC level %v, want cache-resident (1..3)", lvl)
	}
}
