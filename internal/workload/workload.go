// Package workload is the pluggable workload registry of the sweep
// campaigns: every workload exposes the same contract — a name, a
// traffic generator that replays the workload's memory accesses through
// the memsim hierarchy and the write-allocate-evasion store engine, an
// analytic-model hook, and mesh/size semantics — so one campaign can
// cross machines x evasion modes x workloads.
//
// The paper's claim is that write-allocate evasion effects generalize
// beyond CloverLeaf to any streaming or stencil kernel; this registry
// is where that generalization lives. Registered here: the CloverLeaf
// hydro step (the paper's subject), STREAM-style copy/triad kernels,
// a 2D Jacobi stencil, and a Riemann-solver profile writer.
//
// Adding a workload: implement Workload, call Register from an init
// function, and it becomes addressable from cmd/sweep -workloads and
// the root RunScenario runner.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"cloversim/internal/machine"
	"cloversim/internal/sweep"
)

// Config is one resolved workload execution request: scenario axes with
// runner defaults already applied (machine resolved, full node for
// zero rank/thread counts, workload default mesh for a zero mesh).
type Config struct {
	Machine *machine.Spec // resolved machine preset (never nil)
	Mode    sweep.Mode    // evasion-mode knobs (NT, loops, MSR, PF)
	Ranks   int           // MPI rank count (>= 1)
	Threads int           // active core count for pressure (>= 1)
	MeshX   int           // problem size, workload semantics
	MeshY   int
	MaxRows int // y-extent truncation; 0 = runner default, <0 = full
	Seed    uint64
}

// EffectiveSpec returns the machine spec with the mode's MSR knob
// applied (SpecI2M disabled on a copy when the mode asks for it).
func (c Config) EffectiveSpec() *machine.Spec {
	if !c.Mode.SpecI2MOff || !c.Machine.I2M.Enabled {
		return c.Machine
	}
	s := *c.Machine
	s.I2M.Enabled = false
	return &s
}

// Workload is one registered campaign workload.
type Workload interface {
	// Name is the registry key (cmd/sweep -workloads syntax).
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// DefaultMesh is the problem size used when the scenario leaves
	// the mesh axis zero. Semantics are workload-defined: global grid
	// for cloverleaf, elements-per-row x rows for the kernels.
	DefaultMesh() sweep.Mesh
	// Run simulates the workload under the config and returns its
	// ordered metrics. Implementations must be deterministic in the
	// config (campaign output is byte-compared across runs).
	Run(Config) (sweep.Metrics, error)
	// Analytic returns the workload's analytic traffic model (code
	// balances, layer-condition expectations) for the config, or
	// ok=false when no analytic model exists. It never simulates.
	Analytic(Config) (m sweep.Metrics, ok bool)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Workload{}
)

// Register adds a workload to the registry; it panics on an empty or
// duplicate name (registration is an init-time programming error).
func Register(w Workload) {
	name := w.Name()
	if name == "" {
		panic("workload: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("workload: duplicate Register of " + name)
	}
	registry[name] = w
}

// ByName resolves a registered workload.
func ByName(name string) (Workload, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	return w, ok
}

// Names lists the registered workload names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultName is the workload a scenario with an empty Workload field
// runs: the paper's own subject.
const DefaultName = "cloverleaf"

// ValidateAxes checks machine and workload axis values against their
// registries — the shared grid validation behind cmd/sweep's flags and
// sweepd's grid spec, so the CLI and the HTTP API accept identical
// grids.
func ValidateAxes(machines, workloads []string) error {
	for _, m := range machines {
		if _, ok := machine.ByName(m); !ok {
			return fmt.Errorf("unknown machine %q (have %v)", m, machine.Names())
		}
	}
	for _, w := range workloads {
		if _, ok := ByName(w); !ok {
			return fmt.Errorf("unknown workload %q (have %v)", w, Names())
		}
	}
	return nil
}

// Resolve maps a sweep scenario onto (workload, config), applying the
// runner defaults: empty workload name means DefaultName, zero
// rank/thread counts mean the full node, a zero mesh means the
// workload's default.
func Resolve(s sweep.Scenario) (Workload, Config, error) {
	name := s.Workload
	if name == "" {
		name = DefaultName
	}
	w, ok := ByName(name)
	if !ok {
		return nil, Config{}, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	spec, ok := machine.ByName(s.Machine)
	if !ok {
		return nil, Config{}, fmt.Errorf("workload: unknown machine %q (have %v)", s.Machine, machine.Names())
	}
	cfg := Config{
		Machine: spec,
		Mode:    s.Mode,
		Ranks:   s.Ranks,
		Threads: s.Threads,
		MeshX:   s.Mesh.X,
		MeshY:   s.Mesh.Y,
		MaxRows: s.MaxRows,
		Seed:    s.Seed,
	}
	if cfg.Ranks <= 0 {
		cfg.Ranks = spec.Cores()
	}
	if cfg.Threads <= 0 {
		cfg.Threads = spec.Cores()
	}
	if cfg.Ranks > spec.Cores() {
		return nil, Config{}, fmt.Errorf("workload %s: rank count %d outside 1..%d on %s",
			name, cfg.Ranks, spec.Cores(), spec.Name)
	}
	if cfg.Threads > spec.Cores() {
		return nil, Config{}, fmt.Errorf("workload %s: thread count %d outside 1..%d on %s",
			name, cfg.Threads, spec.Cores(), spec.Name)
	}
	if cfg.MeshX == 0 && cfg.MeshY == 0 {
		m := w.DefaultMesh()
		cfg.MeshX, cfg.MeshY = m.X, m.Y
	}
	if cfg.MeshX <= 0 || cfg.MeshY <= 0 {
		return nil, Config{}, fmt.Errorf("workload %s: non-positive mesh %dx%d", name, cfg.MeshX, cfg.MeshY)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5eed
	}
	return w, cfg, nil
}

// Run resolves and executes a scenario — the standard sweep.Runner.
func Run(s sweep.Scenario) (sweep.Metrics, error) {
	w, cfg, err := Resolve(s)
	if err != nil {
		return nil, err
	}
	return w.Run(cfg)
}

// Analytic resolves a scenario and evaluates its workload's analytic
// model without simulating — the cheap surrogate the adaptive search
// driver (internal/search) uses to prune refinement intervals. It
// answers ok=false when the scenario does not resolve or the workload
// has no analytic model; like Run, it is deterministic in the scenario.
func Analytic(s sweep.Scenario) (sweep.Metrics, bool) {
	w, cfg, err := Resolve(s)
	if err != nil {
		return nil, false
	}
	return w.Analytic(cfg)
}
