package workload

import (
	"cloversim/internal/trace"
)

// newKernelExecutor builds the simulated core the kernel workloads
// (stream, jacobi, riemann) run on: one representative core of the
// scenario's most-pressured ccNUMA domain under compact pinning, with
// the evasion-mode knobs applied. Kernel workloads model per-core
// traffic ratios, which are pressure- but not count-weighted, so a
// single representative core suffices (the bench package carries the
// count-weighted microbenchmarks).
func newKernelExecutor(c Config) *trace.Executor {
	spec := c.EffectiveSpec()
	x := trace.NewExecutor(spec)
	x.NTStores = c.Mode.NTStores
	x.SetEnv(trace.Env{
		Pressure:      spec.PressureAt(0, c.Threads),
		NodeFraction:  float64(c.Threads) / float64(spec.Cores()),
		ActiveSockets: spec.ActiveSockets(c.Threads),
		PFOn:          !c.Mode.PFOff,
	})
	x.E.Seed(c.Seed ^ 0x9e3779b97f4a7c15)
	return x
}
