package workload

import (
	"cloversim/internal/model"
	"cloversim/internal/sweep"
	"cloversim/internal/trace"
)

// jacobiWL models a 2D 5-point Jacobi sweep (b = c*(a[W]+a[E]+a[S]+
// a[N])): the textbook stencil whose layer conditions (Sec. II-C) and
// write-allocate behaviour the paper's analysis generalizes to. Mesh
// semantics: X inner columns, Y inner rows, plus a one-cell halo.
type jacobiWL struct{}

func init() { Register(jacobiWL{}) }

func (jacobiWL) Name() string { return "jacobi" }

func (jacobiWL) Description() string {
	return "2D 5-point Jacobi stencil: layer conditions and write-allocate traffic"
}

// DefaultMesh uses rows long enough that three of them still satisfy
// the L2 layer condition, over enough rows to stream.
func (jacobiWL) DefaultMesh() sweep.Mesh { return sweep.Mesh{X: 4096, Y: 48} }

// jacobiLoop builds the stencil loop over a fresh arena.
func jacobiLoop(c Config) (*trace.Loop, trace.Bounds) {
	ar := trace.NewArena(true)
	a := ar.Alloc("a", 0, c.MeshX+1, 0, c.MeshY+1)
	b := ar.Alloc("b", 0, c.MeshX+1, 0, c.MeshY+1)
	l := &trace.Loop{
		Name: "jacobi5",
		Reads: []trace.Access{
			{A: a, DJ: 0, DK: -1},
			{A: a, DJ: -1, DK: 0},
			{A: a, DJ: 1, DK: 0},
			{A: a, DJ: 0, DK: 1},
		},
		Writes:     []trace.Write{{A: b, NT: true}},
		FlopsPerIt: 4,
		Eligible:   true,
	}
	return l, trace.Bounds{JLo: 1, JHi: c.MeshX, KLo: 1, KHi: c.MeshY}
}

func (jacobiWL) Run(c Config) (sweep.Metrics, error) {
	l, b := jacobiLoop(c)
	x := newKernelExecutor(c)
	cnt, iters := x.Run(l, b), float64(b.Iterations())
	var out sweep.Metrics
	out.Add("jacobi_read_bpi", float64(cnt.ReadBytes())/iters)
	out.Add("jacobi_write_bpi", float64(cnt.WriteBytes())/iters)
	out.Add("jacobi_itom_bpi", float64(cnt.ItoMLines*64)/iters)
	out.Add("jacobi_total_bpi", float64(cnt.TotalBytes())/iters)
	// Ratio vs the LC-fulfilled, no-WA minimum of 16 byte/it.
	out.Add("jacobi_ratio", float64(cnt.TotalBytes())/(16*iters))
	return out, nil
}

// Analytic evaluates the layer conditions of the stencil for the
// config's row length on the config's machine: the innermost cache
// level satisfying the LC and the resulting code-balance bounds.
func (jacobiWL) Analytic(c Config) (sweep.Metrics, bool) {
	l, _ := jacobiLoop(c)
	lc := model.AnalyzeLC(l, c.MeshX+2, c.Machine)
	var out sweep.Metrics
	out.Add("jacobi_lc_level", float64(lc.Level))
	out.Add("jacobi_bytes_lcf", float64(lc.BytesPerItLCF))
	out.Add("jacobi_bytes_lcb", float64(lc.BytesPerItLCB))
	out.Add("jacobi_max_block", float64(lc.MaxBlock))
	return out, true
}
