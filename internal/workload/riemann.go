package workload

import (
	"cloversim/internal/riemann"
	"cloversim/internal/sweep"
	"cloversim/internal/trace"
)

// riemannWL couples the exact Riemann solver (the repo's hydrodynamics
// ground truth) with the store path: it solves the Sod problem, then
// writes the sampled rho/u/p profiles out as three pure store streams —
// the post-processing I/O shape of a solver, and the 3-stream
// pure-store case of Fig. 5. Mesh semantics: X sample cells per
// profile, Y profile rows (time snapshots).
type riemannWL struct{}

func init() { Register(riemannWL{}) }

func (riemannWL) Name() string { return "riemann" }

func (riemannWL) Description() string {
	return "Sod shock tube: exact solver physics plus 3-stream profile write-out traffic"
}

// DefaultMesh writes 4096-cell profiles for 32 snapshots.
func (riemannWL) DefaultMesh() sweep.Mesh { return sweep.Mesh{X: 4096, Y: 32} }

// riemannLoop builds the profile write-out loop: three store streams,
// no reads (the sampled states come from registers/compute).
func riemannLoop(c Config) (*trace.Loop, trace.Bounds) {
	ar := trace.NewArena(true)
	rho := ar.Alloc("rho", 1, c.MeshX, 1, c.MeshY)
	u := ar.Alloc("u", 1, c.MeshX, 1, c.MeshY)
	p := ar.Alloc("p", 1, c.MeshX, 1, c.MeshY)
	l := &trace.Loop{
		Name: "riemann_profile",
		Writes: []trace.Write{
			{A: rho, NT: true},
			{A: u},
			{A: p},
		},
		FlopsPerIt: 12, // per-cell sampling cost estimate
		Eligible:   true,
	}
	return l, trace.Bounds{JLo: 1, JHi: c.MeshX, KLo: 1, KHi: c.MeshY}
}

func (riemannWL) Run(c Config) (sweep.Metrics, error) {
	sol, err := riemann.Sod().Solve()
	if err != nil {
		return nil, err
	}
	states := sol.Profile(0.2, 0, 1, 0.5, c.MeshX)
	stats := riemann.Stats(states)

	l, b := riemannLoop(c)
	x := newKernelExecutor(c)
	cnt, iters := x.Run(l, b), float64(b.Iterations())

	var out sweep.Metrics
	out.Add("riemann_pstar", sol.PStar)
	out.Add("riemann_ustar", sol.UStar)
	out.Add("riemann_rho_mean", stats.MeanRho)
	out.Add("riemann_write_bpi", float64(cnt.WriteBytes())/iters)
	out.Add("riemann_itom_bpi", float64(cnt.ItoMLines*64)/iters)
	// Store ratio over the 24 byte/it initiated (Fig. 5 y axis): 2.0 =
	// every store pays a write-allocate read, 1.0 = all evaded.
	out.Add("riemann_store_ratio", float64(cnt.TotalBytes())/(24*iters))
	return out, nil
}

// Analytic returns the exact star state — the solver's own closed-form
// ground truth — plus the store-traffic bounds of the write-out loop.
func (riemannWL) Analytic(c Config) (sweep.Metrics, bool) {
	sol, err := riemann.Sod().Solve()
	if err != nil {
		return nil, false
	}
	var out sweep.Metrics
	out.Add("riemann_pstar", sol.PStar)
	out.Add("riemann_ustar", sol.UStar)
	out.Add("riemann_bytes_min", 24)
	out.Add("riemann_bytes_wa", 48)
	return out, true
}
