package workload

import (
	"cloversim/internal/bench"
	"cloversim/internal/cloverleaf"
	"cloversim/internal/model"
	"cloversim/internal/sweep"
)

// cloverleafWL is the paper's subject: the patched CloverLeaf hydro
// step traffic study plus time model at the scenario's rank count, and
// the store/copy microbenchmarks at the scenario's thread count, all
// under the scenario's evasion mode.
type cloverleafWL struct{}

func init() { Register(cloverleafWL{}) }

func (cloverleafWL) Name() string { return "cloverleaf" }

func (cloverleafWL) Description() string {
	return "CloverLeaf hydro step: traffic study, time model and store/copy microbenchmarks"
}

// DefaultMesh is the paper's 15360^2 global grid.
func (cloverleafWL) DefaultMesh() sweep.Mesh { return sweep.Mesh{X: 15360, Y: 15360} }

func (cloverleafWL) Run(c Config) (sweep.Metrics, error) {
	maxRows := c.MaxRows
	switch {
	case maxRows == 0:
		maxRows = 32 // tractable default; traffic/it is row-invariant
	case maxRows < 0:
		maxRows = 0 // paper-faithful full extent
	}

	to := cloverleaf.TrafficOptions{
		Machine:       c.Machine,
		Ranks:         c.Ranks,
		GridX:         c.MeshX,
		GridY:         c.MeshY,
		MaxRows:       maxRows,
		AlignArrays:   true,
		NTStores:      c.Mode.NTStores,
		OptimizeLoops: c.Mode.OptimizeLoops,
		SpecI2MOff:    c.Mode.SpecI2MOff,
		PFOff:         c.Mode.PFOff,
		Seed:          c.Seed,
	}
	m, err := cloverleaf.ModelNode(to)
	if err != nil {
		return nil, err
	}

	var out sweep.Metrics
	out.Add("step_sec", m.StepSeconds)
	out.Add("total_step_sec", m.TotalStepSeconds)
	out.Add("mpi_sec", m.MPIPerStep.Total())
	out.Add("bandwidth_gbs", m.BandwidthBytes/1e9)
	out.Add("bytes_per_cell", m.Traffic.BytesPerStep()/m.Traffic.InnerCells)

	// The microbenchmarks honor the SpecI2M MSR knob via a spec copy.
	bspec := c.EffectiveSpec()
	st, err := bench.RunStore(bench.StoreOptions{
		Machine: bspec, Streams: 1, NT: c.Mode.NTStores, Cores: c.Threads,
		BytesPerStream: 2 << 20, PFOff: c.Mode.PFOff, Seed: c.Seed,
	})
	if err != nil {
		return nil, err
	}
	out.Add("store_ratio", st.Ratio())
	cp, err := bench.RunCopy(bench.CopyOptions{
		Machine: bspec, Cores: c.Threads, Elems: 1 << 18,
		NT: c.Mode.NTStores, PFOff: c.Mode.PFOff, Seed: c.Seed,
	})
	if err != nil {
		return nil, err
	}
	out.Add("copy_read_bpi", cp.ReadPerIt())
	out.Add("copy_write_bpi", cp.WritePerIt())
	out.Add("copy_itom_bpi", cp.ItoMPerIt())
	return out, nil
}

// Analytic aggregates the Table I code-balance model over the hotspot
// loops: the whole-step bytes per cell with layer conditions fulfilled,
// without and with full write-allocates (the no-evasion bound).
func (cloverleafWL) Analytic(Config) (sweep.Metrics, bool) {
	var min, wa float64
	for _, r := range model.Table1 {
		min += float64(r.BytesMin())
		wa += float64(r.BytesLCFWA())
	}
	var out sweep.Metrics
	out.Add("table1_bytes_min", min)
	out.Add("table1_bytes_lcf_wa", wa)
	return out, true
}
