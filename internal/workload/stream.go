package workload

import (
	"cloversim/internal/model"
	"cloversim/internal/sweep"
	"cloversim/internal/trace"
)

// streamWL models the STREAM-style copy and triad kernels: the
// canonical pure streaming workloads the paper's microbenchmarks
// bracket. Copy (a = b) is the Fig. 6/8 shape; triad (a = b + s*c)
// adds a second read stream. Mesh semantics: X elements per row, Y
// rows, row-major — one contiguous stream per array.
type streamWL struct{}

func init() { Register(streamWL{}) }

func (streamWL) Name() string { return "stream" }

func (streamWL) Description() string {
	return "STREAM copy/triad kernels: per-element traffic and write-allocate ratios"
}

// DefaultMesh keeps each array at 2 MiB (8192 x 32 doubles): larger
// than the private caches, small enough for fast campaigns.
func (streamWL) DefaultMesh() sweep.Mesh { return sweep.Mesh{X: 8192, Y: 32} }

// streamLoops builds the copy and triad loop definitions over a fresh
// arena sized to the config's mesh.
func streamLoops(c Config) (copyL, triadL *trace.Loop, b trace.Bounds) {
	ar := trace.NewArena(true)
	a := ar.Alloc("a", 1, c.MeshX, 1, c.MeshY)
	bb := ar.Alloc("b", 1, c.MeshX, 1, c.MeshY)
	cc := ar.Alloc("c", 1, c.MeshX, 1, c.MeshY)
	copyL = &trace.Loop{
		Name:     "stream_copy",
		Reads:    []trace.Access{{A: bb}},
		Writes:   []trace.Write{{A: a, NT: true}},
		Eligible: true,
	}
	triadL = &trace.Loop{
		Name:       "stream_triad",
		Reads:      []trace.Access{{A: bb}, {A: cc}},
		Writes:     []trace.Write{{A: a, NT: true}},
		FlopsPerIt: 2,
		Eligible:   true,
	}
	return copyL, triadL, trace.Bounds{JLo: 1, JHi: c.MeshX, KLo: 1, KHi: c.MeshY}
}

func (streamWL) Run(c Config) (sweep.Metrics, error) {
	copyL, triadL, b := streamLoops(c)
	var out sweep.Metrics

	x := newKernelExecutor(c)
	cnt, iters := x.Run(copyL, b), float64(b.Iterations())
	out.Add("stream_copy_read_bpi", float64(cnt.ReadBytes())/iters)
	out.Add("stream_copy_write_bpi", float64(cnt.WriteBytes())/iters)
	out.Add("stream_copy_itom_bpi", float64(cnt.ItoMLines*64)/iters)
	// Traffic ratio vs the ideal 16 byte/it (8 read + 8 write): 1.0 =
	// all write-allocates evaded, 1.5 = every store pays an RFO.
	out.Add("stream_copy_ratio", float64(cnt.TotalBytes())/(16*iters))

	cnt, iters = x.Run(triadL, b), float64(b.Iterations())
	out.Add("stream_triad_read_bpi", float64(cnt.ReadBytes())/iters)
	out.Add("stream_triad_write_bpi", float64(cnt.WriteBytes())/iters)
	out.Add("stream_triad_itom_bpi", float64(cnt.ItoMLines*64)/iters)
	out.Add("stream_triad_ratio", float64(cnt.TotalBytes())/(24*iters))
	return out, nil
}

// Analytic returns the code-balance bounds of both kernels from the
// loop models: minimum (no write-allocates) and with full WAs.
func (streamWL) Analytic(c Config) (sweep.Metrics, bool) {
	copyL, triadL, _ := streamLoops(c)
	var out sweep.Metrics
	cm := model.FromLoop(copyL)
	tm := model.FromLoop(triadL)
	out.Add("stream_copy_bytes_min", float64(cm.BytesMin()))
	out.Add("stream_copy_bytes_wa", float64(cm.BytesLCFWA()))
	out.Add("stream_triad_bytes_min", float64(tm.BytesMin()))
	out.Add("stream_triad_bytes_wa", float64(tm.BytesLCFWA()))
	return out, true
}
