// Package flow is a ctxflow fixture (every non-main package is in
// scope).
package flow

import (
	"context"
	"time"
)

// WithCtx discards its caller's cancellation.
func WithCtx(ctx context.Context) error {
	_ = context.Background() // want `context.Background\(\) minted while a context.Context parameter is in scope`
	return ctx.Err()
}

// WithTODO does the same via TODO.
func WithTODO(ctx context.Context) error {
	_ = context.TODO() // want `context.TODO\(\) minted while a context.Context parameter is in scope`
	return ctx.Err()
}

// NoCtx has no context parameter: minting a root here is fine.
func NoCtx() context.Context {
	return context.Background()
}

// InLiteral: the enclosing function's ctx is still in scope inside
// the literal.
func InLiteral(ctx context.Context) func() {
	_ = ctx
	return func() {
		_ = context.Background() // want `context.Background\(\) minted while a context.Context parameter is in scope`
	}
}

// LitParam: the literal takes its own ctx.
func LitParam() func(context.Context) {
	return func(ctx context.Context) {
		_ = ctx
		_ = context.Background() // want `context.Background\(\) minted while a context.Context parameter is in scope`
	}
}

// Spawn launches a goroutine with no way to cancel it.
func Spawn(done chan struct{}) { // want `exported Spawn launches goroutines but accepts no context.Context`
	go func() { done <- struct{}{} }()
}

// SpawnCtx is the cancellable form: clean.
func SpawnCtx(ctx context.Context, done chan struct{}) {
	go func() {
		select {
		case done <- struct{}{}:
		case <-ctx.Done():
		}
	}()
}

// spawn is unexported: package-internal plumbing is exempt.
func spawn(done chan struct{}) {
	go func() { done <- struct{}{} }()
}

// Nap blocks with no way to cancel the wait.
func Nap() { // want `exported Nap calls time.Sleep but accepts no context.Context`
	time.Sleep(time.Millisecond)
}

type hidden struct{}

// Spawn on an unexported receiver type is not callable from outside:
// exempt.
func (hidden) Spawn(done chan struct{}) {
	go func() { done <- struct{}{} }()
}

// Compat is a documented context-free compatibility shim.
//
//lint:allow ctxflow fixture: compat shim, the goroutine is bounded by the call
func Compat(done chan struct{}) {
	go func() { done <- struct{}{} }()
}
