// Command tool shows that package main is exempt: roots of the
// context tree are minted here.
package main

import "context"

func run(ctx context.Context) {
	_ = context.Background()
	go func() {}()
}

func main() {
	run(context.Background())
}
