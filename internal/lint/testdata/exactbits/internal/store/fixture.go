// Package store is an exactbits fixture inside the determinism scope.
package store

import (
	"encoding/json"
	"fmt"
	"io"
)

// BareMetric carries a float64 with no bits mirror.
type BareMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// GuardedMetric pairs the decimal mirror with an authoritative bits
// field — the repo's established exact-bits encoding.
type GuardedMetric struct {
	Name  string   `json:"name"`
	Value *float64 `json:"value"`
	Bits  string   `json:"bits,omitempty"`
}

func EncodeBare(w io.Writer, m BareMetric) error {
	return json.NewEncoder(w).Encode(m) // want `reaches encoding/json with a bare float`
}

func EncodeGuarded(w io.Writer, m GuardedMetric) error {
	return json.NewEncoder(w).Encode(m)
}

func MarshalMap(m map[string]float64) ([]byte, error) {
	return json.Marshal(m) // want `reaches encoding/json with a bare float`
}

func MarshalNested(v struct{ Inner []BareMetric }) ([]byte, error) {
	return json.Marshal(v) // want `reaches encoding/json with a bare float`
}

// MarshalInts has no floats anywhere: clean.
func MarshalInts(v struct {
	N  int      `json:"n"`
	Xs []string `json:"xs"`
}) ([]byte, error) {
	return json.Marshal(v)
}

// SkippedField is excluded from marshaling: clean.
func SkippedField(w io.Writer, v struct {
	Value float64 `json:"-"`
	Name  string  `json:"name"`
}) error {
	return json.NewEncoder(w).Encode(v)
}

func LossyPrecision(v float64) string {
	return fmt.Sprintf("%.3f", v) // want `float formatted with lossy verb %\.3f`
}

func LossyDefault(v float64) string {
	return fmt.Sprintf("%f", v) // want `float formatted with lossy verb %f`
}

func LossyError(v float64) error {
	return fmt.Errorf("bad value %.2g", v) // want `float formatted with lossy verb %\.2g`
}

// RoundTrip uses only exact or shortest-round-trip verbs: clean.
func RoundTrip(v float64) string {
	return fmt.Sprintf("%g %v %x", v, v, v)
}

// NonFloatArgs format non-floats with lossy-for-float verbs: clean.
func NonFloatArgs(n int, s string) string {
	return fmt.Sprintf("%.3s %d", s, n)
}

// AllowedEncode documents a justified suppression.
func AllowedEncode(w io.Writer, m BareMetric) error {
	//lint:allow exactbits fixture: display-only payload, finiteness guaranteed upstream
	return json.NewEncoder(w).Encode(m)
}
