// Package other sits outside the determinism-critical scope.
package other

import (
	"encoding/json"
	"fmt"
)

type BareMetric struct {
	Value float64 `json:"value"`
}

func Marshal(m BareMetric) ([]byte, error) {
	return json.Marshal(m)
}

func Lossy(v float64) string {
	return fmt.Sprintf("%.3f", v)
}
