// Package sweep is a mapiter fixture inside the determinism scope
// (import path cloversim/internal/sweep in the fixture module).
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// UnsortedKeys collects map keys and never sorts them.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside iteration over map m without a deterministic sort`
	}
	return keys
}

// SortedKeys is the canonical collect-then-sort loop: clean.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortedLater is clean too: the sort may sit in a later block.
func SortedLater(m map[string]int, flag bool) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	if flag {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	return keys
}

// SumValues accumulates floats in map order — no sort can fix this.
func SumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum inside iteration over map m`
	}
	return sum
}

// RebuiltSum is the deterministic form of SumValues: clean.
func RebuiltSum(m map[string]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// PrintAll writes output in map order.
func PrintAll(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside iteration over map m`
	}
}

// EncodeAll streams JSON in map order.
func EncodeAll(enc *json.Encoder, m map[string]int) error {
	for k := range m {
		if err := enc.Encode(k); err != nil { // want `enc.Encode inside iteration over map m`
			return err
		}
	}
	return nil
}

// WriteAll writes to an io.Writer method in map order.
func WriteAll(w io.Writer, m map[string]int) {
	for k := range m {
		w.Write([]byte(k)) // want `w.Write inside iteration over map m`
	}
}

// SendAll delivers on a channel in map order.
func SendAll(ch chan<- string, m map[string]int) {
	for k := range m {
		ch <- k // want `channel send inside iteration over map m`
	}
}

// SliceRange ranges a slice: order is the slice's own, clean.
func SliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// LoopLocal appends only to a slice scoped inside the iteration:
// nothing order-sensitive escapes.
func LoopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		n += len(local)
	}
	return n
}

// Allowed documents a justified suppression.
func Allowed(m map[string]int) map[string]bool {
	set := map[string]bool{}
	var keys []string
	for k := range m {
		//lint:allow mapiter fixture: keys feed a set, order deliberately irrelevant
		keys = append(keys, k)
		set[k] = true
	}
	_ = keys
	return set
}
