// Package other sits outside the determinism-critical scope: the same
// shapes that fire in internal/sweep stay silent here.
package other

func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func SumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
