// Package sweep exercises the //lint:allow hygiene rules (run with
// the nondet analyzer): a reasonless allow suppresses nothing and is
// itself reported, an unknown analyzer name is reported, and an allow
// with nothing to suppress is reported as unused.
package sweep

import "time"

// MissingReason: the bare allow does NOT suppress — both the nondet
// finding and the missing-reason finding fire.
func MissingReason() int64 {
	return time.Now().UnixNano() //lint:allow nondet // want `lint:allow nondet is missing a reason` `time.Now is nondeterministic`
}

func UnknownAnalyzer() int64 {
	//lint:allow bogus because reasons // want `lint:allow names unknown analyzer "bogus"`
	return 0
}

func Unused() int64 {
	//lint:allow nondet overly cautious annotation // want `unused lint:allow nondet`
	return 1
}

// Valid is the suppression-path positive: reasoned allow, finding
// gone, no hygiene noise.
func Valid() int64 {
	//lint:allow nondet fixture: epoch identity only
	return time.Now().UnixNano()
}
