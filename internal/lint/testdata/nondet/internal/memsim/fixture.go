// Package memsim is a nondet fixture inside the physics/simulation
// scope.
package memsim

import (
	cryptorand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now is nondeterministic`
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since is nondeterministic`
}

func Jitter() float64 {
	return rand.Float64() // want `rand.Float64 is an entropy source`
}

func Pid() int {
	return os.Getpid() // want `os.Getpid is nondeterministic`
}

func Token() ([]byte, error) {
	b := make([]byte, 8)
	_, err := cryptorand.Read(b) // want `rand.Read is an entropy source`
	return b, err
}

// Deterministic time arithmetic on injected values is fine.
func Add(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// Epoch is annotated epoch code: the allow carries a reason.
func Epoch() int64 {
	//lint:allow nondet fixture: epoch identity only, never record content
	return time.Now().UnixNano()
}
