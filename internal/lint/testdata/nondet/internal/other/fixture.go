// Package other sits outside the nondet scope: wall clocks are fine
// in auxiliary tooling packages.
package other

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
