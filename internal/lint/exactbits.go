package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ExactBits guards the exact-bits invariant on every wire and disk
// format: scenario-metric float64 values are carried as IEEE-754 bits,
// never as bare decimal floats.
//
// Rule 1 (the NaN/±Inf class, PR 7's JSONEmitter bug): a value whose
// type transitively contains a bare float64/float32 must not reach
// encoding/json — json.Marshal fails outright on non-finite values,
// and nothing in the schema carries the authoritative bits. A struct
// is exempt when it pairs its float fields with a bits field (a
// sibling whose name or json tag contains "bits"), the repo's
// established encoding (sweep.jsonMetric, store's line metrics).
//
// Rule 2 (decimal truncation): formatting a float with a lossy fmt
// verb — %f/%e (default precision 6) or any explicit precision —
// destroys bits. Shortest-round-trip forms (%v, %g without precision,
// %x) are exempt.
//
// Scoped to the determinism-critical packages.
var ExactBits = &Analyzer{
	Name: "exactbits",
	Doc:  "flag float64 values reaching encoding/json or lossy fmt verbs without the bits-field encoding",
	Run:  runExactBits,
}

func runExactBits(p *Pass) error {
	if !pkgScope(p.PkgPath, determinismPkgs) {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkJSONSink(p, call)
			checkLossyFmt(p, call)
			return true
		})
	}
	return nil
}

// checkJSONSink flags json.Marshal/MarshalIndent and
// (*json.Encoder).Encode arguments whose type holds unguarded floats.
func checkJSONSink(p *Pass, call *ast.CallExpr) {
	var arg ast.Expr
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch {
		case isPkgFunc(p, sel, "encoding/json", "Marshal"), isPkgFunc(p, sel, "encoding/json", "MarshalIndent"):
			if len(call.Args) > 0 {
				arg = call.Args[0]
			}
		case sel.Sel.Name == "Encode" && isEncoderType(p.TypesInfo.TypeOf(sel.X)):
			if len(call.Args) > 0 {
				arg = call.Args[0]
			}
		}
	}
	if arg == nil {
		return
	}
	t := p.TypesInfo.TypeOf(arg)
	if t == nil {
		return
	}
	if path := unguardedFloatPath(t, "", map[types.Type]bool{}); path != "" {
		p.Report(arg.Pos(), "%s reaches encoding/json with a bare float (%s): non-finite values fail to encode and decimal output is not bit-authoritative — pair the field with a bits mirror (cf. sweep.jsonMetric) or encode math.Float64bits", exprString(p.Fset, arg), path)
	}
}

// unguardedFloatPath walks t looking for a float64/float32 that would
// be marshaled by encoding/json without a bits-field guard. It returns
// a human-readable path to the first offender, or "".
func unguardedFloatPath(t types.Type, path string, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsFloat != 0 {
			if path == "" {
				path = typeName(t)
			}
			return path
		}
	case *types.Pointer:
		return unguardedFloatPath(u.Elem(), path, seen)
	case *types.Slice:
		return unguardedFloatPath(u.Elem(), path+"[]", seen)
	case *types.Array:
		return unguardedFloatPath(u.Elem(), path+"[]", seen)
	case *types.Map:
		return unguardedFloatPath(u.Elem(), path+"[key]", seen)
	case *types.Struct:
		guarded := structHasBitsField(u)
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() || jsonTagName(u.Tag(i)) == "-" {
				continue
			}
			ft := f.Type()
			if ptr, ok := ft.Underlying().(*types.Pointer); ok {
				ft = ptr.Elem()
			}
			if b, ok := ft.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				if guarded {
					continue
				}
				return path + "." + f.Name()
			}
			if sub := unguardedFloatPath(f.Type(), path+"."+f.Name(), seen); sub != "" {
				return sub
			}
		}
	}
	return ""
}

// structHasBitsField reports whether the struct carries an IEEE-754
// bits mirror: any field whose name or json tag contains "bits".
func structHasBitsField(s *types.Struct) bool {
	for i := 0; i < s.NumFields(); i++ {
		if strings.Contains(strings.ToLower(s.Field(i).Name()), "bits") {
			return true
		}
		if strings.Contains(strings.ToLower(jsonTagName(s.Tag(i))), "bits") {
			return true
		}
	}
	return false
}

func jsonTagName(tag string) string {
	// reflect.StructTag.Get without importing reflect at analysis
	// time: the loader gives us raw tags.
	for tag != "" {
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		i = strings.IndexByte(tag, ':')
		if i < 0 {
			break
		}
		name := tag[:i]
		rest := tag[i+1:]
		if len(rest) == 0 || rest[0] != '"' {
			break
		}
		j := strings.IndexByte(rest[1:], '"')
		if j < 0 {
			break
		}
		val := rest[1 : 1+j]
		tag = rest[j+2:]
		if name == "json" {
			if c := strings.IndexByte(val, ','); c >= 0 {
				val = val[:c]
			}
			return val
		}
	}
	return ""
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// checkLossyFmt flags float arguments formatted with lossy verbs in
// fmt's printf family.
func checkLossyFmt(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	var fmtIdx int
	switch {
	case isPkgFunc(p, sel, "fmt", "Sprintf"), isPkgFunc(p, sel, "fmt", "Printf"), isPkgFunc(p, sel, "fmt", "Errorf"):
		fmtIdx = 0
	case isPkgFunc(p, sel, "fmt", "Fprintf"):
		fmtIdx = 1
	default:
		return
	}
	if len(call.Args) <= fmtIdx {
		return
	}
	tv, ok := p.TypesInfo.Types[call.Args[fmtIdx]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := parseVerbs(constant.StringVal(tv.Value))
	args := call.Args[fmtIdx+1:]
	for i, v := range verbs {
		if i >= len(args) {
			break
		}
		if !v.lossy {
			continue
		}
		at := p.TypesInfo.TypeOf(args[i])
		if at == nil || !isFloat(at) {
			continue
		}
		p.Report(args[i].Pos(), "float formatted with lossy verb %%%s: decimal truncation destroys bits — use %%v/%%g (shortest round-trip) or the bits-field encoding", v.text)
	}
}

type fmtVerb struct {
	text  string
	lossy bool
}

// parseVerbs extracts the verb sequence from a printf format string,
// marking verbs that truncate floats: %f/%e/%F/%E (default precision
// 6) and any verb with an explicit precision. %v, %g without
// precision, and %x are shortest-round-trip or exact. A `*` width or
// precision consumes an argument slot of its own.
func parseVerbs(format string) []fmtVerb {
	var out []fmtVerb
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		start := i
		hasPrec := false
		for i < len(format) {
			c := format[i]
			if c == '*' {
				out = append(out, fmtVerb{"*", false}) // width/precision arg slot
				i++
				continue
			}
			if c == '.' {
				hasPrec = true
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789[]", rune(c)) {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		lossy := hasPrec || verb == 'f' || verb == 'F' || verb == 'e' || verb == 'E'
		if verb == 'x' || verb == 'X' || verb == 'b' {
			lossy = false // exact binary/hex forms
		}
		out = append(out, fmtVerb{format[start : i+1], lossy})
	}
	return out
}

// isPkgFunc reports whether sel denotes <pkgpath>.<name>.
func isPkgFunc(p *Pass, sel *ast.SelectorExpr, pkgPath, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}
