package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// Load lists patterns in dir with the go tool and type-checks every
// matched (non-dependency) package from source, resolving imports
// through the compiler export data that `go list -export` produces.
// It is the offline, stdlib-only equivalent of
// golang.org/x/tools/go/packages.Load(NeedSyntax|NeedTypes...).
//
// Test files are not loaded: the suite checks shipped code only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports, nil)

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
			}
			files = append(files, f)
		}
		pkg, err := TypeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// TypeCheck type-checks one parsed package against imp and wraps it
// for analysis. Shared by Load and cmd/cloverlint's `go vet -vettool`
// unit mode (which gets its file lists and export data from the vet
// config instead of go list).
func TypeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// ExportImporter returns a types.Importer resolving import paths
// through compiler export-data files (import path -> file), as
// produced by `go list -export` or a vet config's PackageFile map.
// canon maps source import paths to canonical package paths (vet's
// ImportMap); it may be nil.
func ExportImporter(fset *token.FileSet, exports map[string]string, canon map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return exportImporter{
		canon: canon,
		gc:    importer.ForCompiler(fset, "gc", lookup),
	}
}

// exportImporter resolves imports through compiler export data,
// delegating the decode to the standard gc importer.
type exportImporter struct {
	canon map[string]string
	gc    types.Importer
}

func (i exportImporter) Import(path string) (*types.Package, error) {
	if c, ok := i.canon[path]; ok {
		path = c
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.Import(path)
}
