package lint

// All is the cloverlint suite, in reporting order.
var All = []*Analyzer{MapIter, ExactBits, CtxFlow, NonDet}

// Names returns the analyzer names of All (the valid //lint:allow
// targets).
func Names() []string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return names
}

// ByName returns the analyzers matching the given names.
func ByName(names []string) ([]*Analyzer, bool) {
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range All {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// determinismPkgs are the packages whose outputs must be byte-identical
// across runs, schedules, and deployment shapes (local pool, fleet,
// streamed): the campaign execution path and every wire/disk format it
// feeds. mapiter and exactbits are scoped here.
var determinismPkgs = []string{
	"cloversim/internal/search",
	"cloversim/internal/sweep",
	"cloversim/internal/store",
	"cloversim/internal/sweepd",
	"cloversim/internal/dispatch",
	"cloversim/internal/memsim",
	"cloversim/internal/workload",
}

// nondetPkgs are the packages where wall clocks, PIDs, and entropy may
// not appear unannotated: the physics/simulation core (results are a
// pure function of the scenario config) plus the determinism-critical
// execution path above. Epoch/heartbeat code inside these packages
// carries an explicit //lint:allow nondet <reason>.
var nondetPkgs = append([]string{
	"cloversim",
	"cloversim/internal/cloverleaf",
	"cloversim/internal/model",
	"cloversim/internal/trace",
	"cloversim/internal/machine",
	"cloversim/internal/riemann",
}, determinismPkgs...)
