package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the repo's cancellation contract (PR 4): contexts
// flow down the call stack, they are not minted mid-stack.
//
// Rule 1: calling context.Background() or context.TODO() inside a
// function that already has a context.Context parameter in scope
// discards the caller's cancellation — an expand that should abort on
// client disconnect quietly becomes immortal. Deliberate nil-ctx
// compatibility defaulting carries a //lint:allow ctxflow <reason>.
//
// Rule 2: an exported function or method (on an exported type) that
// launches goroutines or sleeps without accepting a context.Context
// gives its callers no way to bound it.
//
// Package main is exempt: roots of the context tree live there.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background/TODO where a ctx is in scope, and un-cancellable exported APIs",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) error {
	if p.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasCtx := funcHasCtxParam(p, fd.Type)
			checkCtxMinting(p, fd.Body, hasCtx)
			if !hasCtx && exportedOutsidePkg(fd) {
				checkUnboundedExported(p, fd)
			}
		}
	}
	return nil
}

// checkCtxMinting walks body flagging context.Background/TODO calls
// while a ctx parameter is in scope; function literals extend the
// scope with their own parameters.
func checkCtxMinting(p *Pass, body ast.Node, ctxInScope bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxMinting(p, n.Body, ctxInScope || funcHasCtxParam(p, n.Type))
			return false
		case *ast.CallExpr:
			if !ctxInScope {
				return true
			}
			if name, ok := contextPkgCall(p, n); ok && (name == "Background" || name == "TODO") {
				p.Report(n.Pos(), "context.%s() minted while a context.Context parameter is in scope — this discards the caller's cancellation; thread the ctx through (or annotate deliberate nil-ctx defaulting with //lint:allow ctxflow <reason>)", name)
			}
		}
		return true
	})
}

// checkUnboundedExported flags exported ctx-less functions whose body
// launches goroutines or sleeps.
func checkUnboundedExported(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			p.Report(fd.Pos(), "exported %s launches goroutines but accepts no context.Context — callers cannot cancel it", fd.Name.Name)
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
					p.Report(fd.Pos(), "exported %s calls time.Sleep but accepts no context.Context — callers cannot cancel the wait", fd.Name.Name)
					return false
				}
			}
		}
		return true
	})
}

// funcHasCtxParam reports whether ft declares a context.Context
// parameter.
func funcHasCtxParam(p *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(p.TypesInfo.Types[field.Type].Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// contextPkgCall reports whether call is context.<Name>() and returns
// Name.
func contextPkgCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}

// exportedOutsidePkg reports whether fd is callable from outside the
// package: exported name, and for methods an exported receiver type.
func exportedOutsidePkg(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
