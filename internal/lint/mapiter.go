package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter guards the repo's first determinism invariant: campaign
// output is byte-identical across runs, worker counts, and deployment
// shapes. Go map iteration order is deliberately randomized, so a
// `range` over a map that feeds anything order-sensitive — appending
// to a slice that is never deterministically sorted afterwards,
// writing to an output stream, accumulating floating-point values
// (float addition is not associative) — is exactly the bug class that
// produced the PR 1 emitter nondeterminism. Scoped to the
// determinism-critical packages.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration feeding order-sensitive sinks (unsorted appends, output writes, float accumulation)",
	Run:  runMapIter,
}

func runMapIter(p *Pass) error {
	if !pkgScope(p.PkgPath, determinismPkgs) {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := p.TypesInfo.TypeOf(rng.X); t == nil {
					return true
				} else if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(p, fd, rng)
				return true
			})
		}
	}
	return nil
}

// checkMapRangeBody inspects one map-range body for order-sensitive
// sinks.
func checkMapRangeBody(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	mapExpr := exprString(p.Fset, rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAppend(p, fd, rng, mapExpr, n)
			checkFloatAccum(p, rng, mapExpr, n)
		case *ast.CallExpr:
			checkOutputWrite(p, rng, mapExpr, n)
		case *ast.SendStmt:
			p.Report(n.Pos(), "channel send inside iteration over map %s: delivery order follows randomized map order", mapExpr)
		}
		return true
	})
}

// checkAppend flags `x = append(x, ...)` inside a map-range body when
// x outlives the loop and no deterministic sort of x follows the loop
// in the same function.
func checkAppend(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, mapExpr string, as *ast.AssignStmt) {
	for _, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := p.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		obj := rootObject(p, call.Args[0])
		if obj == nil || declaredWithin(obj, rng) {
			continue
		}
		if sortedAfter(p, fd, rng, obj) {
			continue
		}
		p.Report(as.Pos(), "append to %s inside iteration over map %s without a deterministic sort afterwards: element order follows randomized map order", obj.Name(), mapExpr)
	}
}

// checkFloatAccum flags floating-point accumulation (x += v, x = x+v)
// into a variable that outlives the loop: float addition is not
// associative, so the sum depends on map order. No sort can fix this —
// accumulate into a sorted slice instead.
func checkFloatAccum(p *Pass, rng *ast.RangeStmt, mapExpr string, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 {
		return
	}
	obj := rootObject(p, as.Lhs[0])
	if obj == nil || declaredWithin(obj, rng) {
		return
	}
	t := p.TypesInfo.TypeOf(as.Lhs[0])
	if t == nil || !isFloat(t) {
		return
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		p.Report(as.Pos(), "floating-point accumulation into %s inside iteration over map %s: float arithmetic is order-sensitive and map order is random", obj.Name(), mapExpr)
	case token.ASSIGN:
		if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok && refsObject(p, bin, obj) {
			p.Report(as.Pos(), "floating-point accumulation into %s inside iteration over map %s: float arithmetic is order-sensitive and map order is random", obj.Name(), mapExpr)
		}
	}
}

// checkOutputWrite flags direct output inside a map-range body:
// fmt.Print*/Fprint*, io.WriteString, or Write*/Encode methods on an
// io.Writer-shaped receiver (including *json.Encoder and *csv.Writer,
// which wrap one).
func checkOutputWrite(p *Pass, rng *ast.RangeStmt, mapExpr string, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Package function: fmt.Fprintf / fmt.Println / io.WriteString.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
			path, name := pn.Imported().Path(), sel.Sel.Name
			if path == "fmt" && (len(name) >= 5 && (name[:5] == "Print" || name[:6] == "Fprint")) {
				p.Report(call.Pos(), "fmt.%s inside iteration over map %s: output order follows randomized map order", name, mapExpr)
			}
			if path == "io" && name == "WriteString" {
				p.Report(call.Pos(), "io.WriteString inside iteration over map %s: output order follows randomized map order", mapExpr)
			}
			return
		}
	}
	// Method call: Write/WriteString/... or Encode on a writer.
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
	default:
		return
	}
	recv := p.TypesInfo.TypeOf(sel.X)
	if recv == nil {
		return
	}
	if types.Implements(recv, ioWriterIface) || types.Implements(types.NewPointer(recv), ioWriterIface) || isEncoderType(recv) {
		p.Report(call.Pos(), "%s.%s inside iteration over map %s: output order follows randomized map order", exprString(p.Fset, sel.X), sel.Sel.Name, mapExpr)
	}
}

// sortedAfter reports whether some sort.* / slices.* call referencing
// obj appears lexically after the range statement inside fd's body —
// the deterministic-sort escape hatch for collect-then-sort loops.
func sortedAfter(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if refsObject(p, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// rootObject peels index/selector/paren/star wrappers and returns the
// base identifier's object: for `bySeg[k]` it is bySeg, for `s.out` it
// is s.
func rootObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			if o := p.TypesInfo.Uses[t]; o != nil {
				return o
			}
			return p.TypesInfo.Defs[t]
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the
// range statement (loop-local variables are order-insensitive from the
// caller's point of view).
func declaredWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// refsObject reports whether expr mentions obj.
func refsObject(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ioWriterIface is a structural io.Writer for types.Implements checks
// (built by hand: the loader has no handle on the io package itself).
var ioWriterIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType)),
		false)
	i := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig),
	}, nil)
	i.Complete()
	return i
}()

// isEncoderType reports whether t (or *t) is encoding/json.Encoder or
// encoding/csv.Writer — output sinks that do not themselves implement
// io.Writer.
func isEncoderType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "encoding/json" && name == "Encoder") ||
		(path == "encoding/csv" && name == "Writer")
}
