// Package linttest runs cloverlint analyzers over fixture packages,
// in the style of golang.org/x/tools/go/analysis/analysistest:
// fixture files carry `// want "regexp"` comments naming the
// diagnostics the analyzers must produce on that line, and the run
// fails on any mismatch in either direction.
//
// A fixture directory mirrors a `module cloversim` tree (so import
// paths land inside or outside the analyzers' package scopes exactly
// as they would in the real repo). Run copies it into a temporary
// module, compiles and loads it with the production loader, and
// matches diagnostics.
package linttest

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cloversim/internal/lint"
)

// wantRe matches the rightmost want comment on a line; expectRe pulls
// the individual quoted/backquoted patterns out of it.
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.+)$`)
	expectRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

// Run copies the fixture tree rooted at fixtureDir into a fresh
// `module cloversim` and checks the analyzers' diagnostics against the
// fixture's want comments.
func Run(t *testing.T, fixtureDir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module cloversim\n\ngo 1.24\n"), 0o666); err != nil {
		t.Fatal(err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "relpath:line" -> expectations

	err := filepath.WalkDir(fixtureDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(fixtureDir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		dst := filepath.Join(tmp, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o777); err != nil {
			return err
		}
		if err := os.WriteFile(dst, data, 0o666); err != nil {
			return err
		}
		sc := bufio.NewScanner(strings.NewReader(string(data)))
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", rel, line)
			for _, q := range expectRe.FindAllStringSubmatch(m[1], -1) {
				pat := q[1]
				if pat == "" {
					pat = q[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s: bad want pattern %q: %w", key, pat, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}

	pkgs, err := lint.Load(tmp)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		ds, err := lint.Run(pkg, analyzers, lint.Names())
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, ds...)
	}

	for _, d := range diags {
		rel, err := filepath.Rel(tmp, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		key := fmt.Sprintf("%s:%d", rel, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}
