package lint

import (
	"go/ast"
	"go/types"
)

// NonDet flags sources of nondeterminism — wall clocks, random number
// generators, process identity — inside the physics/simulation and
// determinism-critical packages. A scenario's metrics must be a pure
// function of its config: entropy anywhere on that path can split
// byte-identical campaigns between two runs or two fleet workers.
// Epoch and heartbeat code (store sync epochs, straggler timers) is
// legitimate but must say so: //lint:allow nondet <reason>.
var NonDet = &Analyzer{
	Name: "nondet",
	Doc:  "flag wall-clock, RNG, and process-identity entropy in simulation and determinism-critical packages",
	Run:  runNonDet,
}

// nondetBannedPkgs are packages any reference into which is entropy.
var nondetBannedPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// nondetBannedFuncs are specific entropy-bearing functions in
// otherwise fine packages.
var nondetBannedFuncs = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true,
		"Tick": true, "After": true, "AfterFunc": true,
		"NewTimer": true, "NewTicker": true,
	},
	"os": {
		"Getpid": true, "Getppid": true, "Hostname": true,
	},
}

func runNonDet(p *Pass) error {
	if !pkgScope(p.PkgPath, nondetPkgs) {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if nondetBannedPkgs[path] {
				p.Report(sel.Pos(), "%s.%s is an entropy source in a determinism-scoped package; results must be a pure function of the scenario config (annotate epoch/heartbeat code with //lint:allow nondet <reason>)", pn.Imported().Name(), sel.Sel.Name)
				return true
			}
			if fns, ok := nondetBannedFuncs[path]; ok && fns[sel.Sel.Name] {
				p.Report(sel.Pos(), "%s.%s is nondeterministic in a determinism-scoped package; results must be a pure function of the scenario config (annotate epoch/heartbeat code with //lint:allow nondet <reason>)", path, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
