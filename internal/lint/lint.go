// Package lint is cloverlint: a suite of static analyzers that
// machine-check the repository's determinism, exact-bits, and context
// invariants at the source level, before any differential test runs.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) so the analyzers read like —
// and could later be mechanically ported to — standard go/analysis
// passes. The framework itself is standard-library only: packages are
// loaded via `go list -export` (internal/lint.Load) and type-checked
// with go/types against compiler export data, so the tool runs in the
// same offline environment as the build.
//
// Findings are suppressed per line with an explicit, reasoned
// annotation:
//
//	//lint:allow <analyzer> <reason>
//
// either trailing the offending line or standing alone on the line
// above it. The reason is mandatory — a bare allow is itself a
// diagnostic — and an allow that suppresses nothing is reported as
// unused, so annotations cannot silently outlive the code they excuse.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package via the Pass and reports findings with
// Pass.Report; it must not retain the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// annotations. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant guarded.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees. Test files
	// (*_test.go) are excluded by the loader: the invariants guard
	// shipped code, and tests legitimately use wall clocks,
	// context.Background, and unsorted iteration.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's import path as reported by go list
	// (Pkg.Path() for source-checked packages; kept separate so
	// scoping never depends on type-checker internals).
	PkgPath string

	diags []Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// AllowName is the pseudo-analyzer name under which the framework
// reports annotation-hygiene findings (missing reasons, unused or
// unknown allows). It is not suppressible.
const AllowName = "allow"

// Run executes the given analyzers over one loaded package, applies
// //lint:allow suppression, and returns the surviving diagnostics in
// stable (file, line, column, analyzer) order. Annotation-hygiene
// findings — an allow with no reason, an allow naming an unknown
// analyzer, an allow that suppressed nothing — are appended under the
// "allow" pseudo-analyzer.
//
// known lists every analyzer name the caller considers valid in
// annotations (usually All names); ran must be a subset actually
// executed here. An allow for a known-but-not-ran analyzer is left
// alone: single-analyzer fixture runs must not misreport the other
// analyzers' annotations as unknown or unused.
func Run(pkg *Package, analyzers []*Analyzer, known []string) ([]Diagnostic, error) {
	allows := collectAllows(pkg)
	var out []Diagnostic
	ranSet := map[string]bool{}
	for _, a := range analyzers {
		ranSet[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			PkgPath:   pkg.PkgPath,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		for _, d := range pass.diags {
			if al := allows.match(a.Name, d.Pos); al != nil {
				al.used = true
				continue
			}
			out = append(out, d)
		}
	}
	knownSet := map[string]bool{AllowName: false}
	for _, n := range known {
		knownSet[n] = true
	}
	for _, al := range allows.all {
		switch {
		case !knownSet[al.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: AllowName,
				Pos:      al.pos,
				Message:  fmt.Sprintf("lint:allow names unknown analyzer %q", al.analyzer),
			})
		case al.reason == "":
			out = append(out, Diagnostic{
				Analyzer: AllowName,
				Pos:      al.pos,
				Message:  fmt.Sprintf("lint:allow %s is missing a reason: write //lint:allow %s <why this is safe>", al.analyzer, al.analyzer),
			})
		case ranSet[al.analyzer] && !al.used:
			out = append(out, Diagnostic{
				Analyzer: AllowName,
				Pos:      al.pos,
				Message:  fmt.Sprintf("unused lint:allow %s: the analyzer reports nothing here — delete the annotation", al.analyzer),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// pkgScope reports whether path is one of the listed import paths.
// Paths are compared exactly: the analyzers are scoped to this
// repository's packages by full path, module prefix included.
func pkgScope(path string, scoped []string) bool {
	for _, s := range scoped {
		if path == s {
			return true
		}
	}
	return false
}

// exprString renders a (small) expression for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	s := b.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		writeExpr(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.IndexExpr:
		writeExpr(b, e.X)
		b.WriteString("[...]")
	case *ast.CallExpr:
		writeExpr(b, e.Fun)
		b.WriteString("(...)")
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, e.X)
	case *ast.ParenExpr:
		writeExpr(b, e.X)
	default:
		b.WriteString("expr")
	}
}
