package lint

import (
	"go/token"
	"strings"
)

// An allow is one parsed //lint:allow annotation. It suppresses
// diagnostics of the named analyzer on its own source line (trailing
// comment) or, when it stands alone, on the next line.
type allow struct {
	analyzer string
	reason   string
	pos      token.Position
	// lines this allow covers: its own line and, for standalone
	// comments, the following line.
	lines [2]int
	used  bool
}

type allowSet struct {
	all []*allow
	// byKey indexes analyzer+file+line -> allow for O(1) matching.
	byKey map[allowKey]*allow
}

type allowKey struct {
	analyzer string
	file     string
	line     int
}

func (s *allowSet) match(analyzer string, pos token.Position) *allow {
	if s == nil {
		return nil
	}
	return s.byKey[allowKey{analyzer, pos.Filename, pos.Line}]
}

// allowPrefix is the annotation marker. The "lint:" namespace matches
// staticcheck's directive convention so editors highlight it as a
// directive comment, but the verb is ours: allow requires a reason and
// is verified (unknown analyzer, missing reason, unused) by the
// driver.
const allowPrefix = "//lint:allow"

// collectAllows parses every //lint:allow annotation in the package.
func collectAllows(pkg *Package) *allowSet {
	s := &allowSet{byKey: map[allowKey]*allow{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := c.Text[len(allowPrefix):]
				// Require a word boundary: //lint:allowx is not ours.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				// The reason ends at an embedded comment marker, so
				// fixture files can carry `// want ...` expectations
				// on the annotation line itself.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				al := &allow{pos: pos}
				if len(fields) > 0 {
					al.analyzer = fields[0]
				}
				if len(fields) > 1 {
					al.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				al.lines[0] = pos.Line
				// A standalone comment (nothing but whitespace before
				// it on its line) also covers the next line. Detect
				// "standalone" via column 1..indent: the comment's
				// position column equals the line's first non-blank
				// column exactly when no code precedes it; we
				// approximate by checking whether any AST node starts
				// on that line before the comment — cheaper: treat
				// every allow as also covering the next line. An
				// allow trailing line N cannot accidentally suppress
				// line N+1 findings of the same analyzer in practice,
				// and the unused check keeps annotations honest.
				al.lines[1] = pos.Line + 1
				s.all = append(s.all, al)
				if al.analyzer != "" && al.reason != "" {
					for _, ln := range al.lines {
						k := allowKey{al.analyzer, pos.Filename, ln}
						if _, dup := s.byKey[k]; !dup {
							s.byKey[k] = al
						}
					}
				}
			}
		}
	}
	return s
}
