package lint_test

import (
	"testing"

	"cloversim/internal/lint"
	"cloversim/internal/lint/linttest"
)

// Each fixture tree is a miniature `module cloversim` so the
// analyzers' import-path scoping applies exactly as in the real repo:
// the internal/<scoped> package carries `// want` expectations, the
// internal/other (or cmd/...) sibling holds the same shapes out of
// scope and expects silence.

func TestMapIter(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata/mapiter", lint.MapIter)
}

func TestExactBits(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata/exactbits", lint.ExactBits)
}

func TestCtxFlow(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata/ctxflow", lint.CtxFlow)
}

func TestNonDet(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata/nondet", lint.NonDet)
}

// TestAllowHygiene covers the annotation meta-rules: a reasonless
// allow suppresses nothing and is reported, unknown analyzer names are
// reported, unused allows are reported, and a reasoned allow over a
// real finding suppresses it cleanly.
func TestAllowHygiene(t *testing.T) {
	t.Parallel()
	linttest.Run(t, "testdata/allow", lint.NonDet)
}
