package lint

import (
	"go/ast"
	"go/types"
	"testing"
)

// TestLoadRepo loads a real dependency-bearing package of this module
// and checks the type information is genuine: identifiers resolve to
// objects and map types are recognized, which every analyzer depends
// on.
func TestLoadRepo(t *testing.T) {
	pkgs, err := Load("../..", "./internal/sweep")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "cloversim/internal/sweep" {
		t.Fatalf("PkgPath = %q", p.PkgPath)
	}
	if p.Types == nil || !p.Types.Complete() {
		t.Fatalf("incomplete types.Package")
	}
	maps, uses := 0, 0
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if tv, ok := p.Info.Types[e]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						maps++
					}
				}
			}
			if id, ok := n.(*ast.Ident); ok {
				if p.Info.Uses[id] != nil {
					uses++
				}
			}
			return true
		})
	}
	if maps == 0 {
		t.Errorf("no map-typed expressions resolved — type info is hollow")
	}
	if uses < 100 {
		t.Errorf("only %d uses resolved — type info is hollow", uses)
	}
}
