package model

import (
	"strings"
	"testing"
)

func TestECMAm04(t *testing.T) {
	row, _ := Table1ByName("am04")
	mach := ICXECMMachine()
	e := NewECM(row.LoopModel, mach, false)
	if !e.MemoryBound() {
		t.Fatalf("am04 must be memory bound: %s", e)
	}
	// With WAs: 3 elements/iteration cross the memory link = 24 B/it =
	// 192 B/CL; at 10.5 GB/s and 2.4 GHz that is 192/(10.5/2.4) = ~43.9 cy/CL.
	if e.TL3Mem < 40 || e.TL3Mem > 48 {
		t.Errorf("am04 TL3Mem = %.1f cy/CL, want ~44", e.TL3Mem)
	}
	// Evading the WA removes a third of the memory term.
	ev := NewECM(row.LoopModel, mach, true)
	ratio := ev.TL3Mem / e.TL3Mem
	if ratio < 0.60 || ratio > 0.72 {
		t.Errorf("WA evasion memory-term ratio %.3f, want ~2/3", ratio)
	}
	if ev.CyclesPerCL() >= e.CyclesPerCL() {
		t.Error("evasion must lower the ECM prediction")
	}
}

func TestECMCoreBoundLoop(t *testing.T) {
	// A compute-heavy loop with tiny traffic is core bound.
	m := LoopModel{Name: "flops", RDLCF: 1, RDLCB: 1, WR: 0, FlopsIt: 200}
	e := NewECM(m, ICXECMMachine(), true)
	if e.MemoryBound() {
		t.Errorf("200 flop/it loop must be core bound: %s", e)
	}
	if e.CyclesPerCL() != e.TOL {
		t.Errorf("core-bound prediction should equal TOL")
	}
}

func TestECMThroughputConversion(t *testing.T) {
	row, _ := Table1ByName("am04")
	e := NewECM(row.LoopModel, ICXECMMachine(), false)
	its := e.ItersPerSecond(2.4e9)
	// Roofline equivalent: 10.5 GB/s / 24 B/it = 437.5 M it/s.
	if its < 300e6 || its > 500e6 {
		t.Errorf("am04 throughput = %.0f Mit/s, want ~437", its/1e6)
	}
}

func TestECMString(t *testing.T) {
	row, _ := Table1ByName("pdv00")
	s := NewECM(row.LoopModel, ICXECMMachine(), false).String()
	if !strings.Contains(s, "cy/CL") || !strings.Contains(s, "|") {
		t.Errorf("ECM notation malformed: %s", s)
	}
}

func TestECMTableCoversAllLoops(t *testing.T) {
	tbl := ECMTable(ICXECMMachine(), false)
	if len(tbl) != 22 {
		t.Fatalf("%d ECM rows", len(tbl))
	}
	for name, e := range tbl {
		if e.CyclesPerCL() <= 0 {
			t.Errorf("%s: non-positive prediction", name)
		}
		// All CloverLeaf hotspots are memory bound on ICX (the premise
		// of the whole paper).
		if !e.MemoryBound() {
			t.Errorf("%s should be memory bound: %s", name, e)
		}
	}
}
