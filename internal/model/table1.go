package model

// Table1Row is one row of the paper's Table I, including the measured
// single-core code balance (byte/it_meas,1).
type Table1Row struct {
	LoopModel
	MeasuredSingleCore float64 // paper's byte/it_meas,1 column
}

// Table1 is the paper's Table I verbatim: the performance-model input for
// each of the 22 loops in the three hotspot functions (advec_mom "am",
// advec_cell "ac", pdv). The derived byte/it columns follow from the
// LoopModel methods and are unit-tested against the paper's numbers.
var Table1 = []Table1Row{
	{LoopModel{"am00", 5, 3, 4, 2, 0, 4}, 56.32},
	{LoopModel{"am01", 5, 3, 4, 2, 0, 4}, 56.28},
	{LoopModel{"am02", 4, 2, 3, 2, 0, 2}, 48.25},
	{LoopModel{"am03", 4, 2, 2, 2, 0, 2}, 48.15},
	{LoopModel{"am04", 2, 1, 2, 1, 0, 4}, 24.05},
	{LoopModel{"am05", 5, 3, 5, 2, 0, 10}, 56.97},
	{LoopModel{"am06", 4, 3, 3, 1, 0, 9}, 40.22},
	{LoopModel{"am07", 4, 4, 4, 1, 1, 4}, 40.08},
	{LoopModel{"am08", 2, 1, 2, 1, 0, 4}, 24.06},
	{LoopModel{"am09", 5, 3, 6, 2, 0, 10}, 56.56},
	{LoopModel{"am10", 4, 3, 5, 1, 0, 8}, 41.49},
	{LoopModel{"am11", 4, 4, 5, 1, 1, 4}, 40.08},
	{LoopModel{"ac00", 5, 3, 4, 2, 0, 6}, 56.33},
	{LoopModel{"ac01", 4, 2, 2, 2, 0, 2}, 48.25},
	{LoopModel{"ac02", 6, 4, 4, 2, 0, 17}, 64.70},
	{LoopModel{"ac03", 6, 6, 6, 2, 2, 10}, 64.45},
	{LoopModel{"ac04", 5, 3, 4, 2, 0, 6}, 56.29},
	{LoopModel{"ac05", 4, 2, 3, 2, 0, 2}, 48.33},
	{LoopModel{"ac06", 6, 4, 8, 2, 0, 17}, 66.24},
	{LoopModel{"ac07", 6, 6, 9, 2, 2, 10}, 64.85},
	{LoopModel{"pdv00", 11, 9, 12, 2, 0, 49}, 104.73},
	{LoopModel{"pdv01", 13, 11, 16, 2, 0, 45}, 120.77},
}

// Table1ByName returns the Table I row for a loop name.
func Table1ByName(name string) (Table1Row, bool) {
	for _, r := range Table1 {
		if r.Name == name {
			return r, true
		}
	}
	return Table1Row{}, false
}

// HotspotLoopNames lists the 22 loop names in table order.
func HotspotLoopNames() []string {
	out := make([]string, len(Table1))
	for i, r := range Table1 {
		out[i] = r.Name
	}
	return out
}
