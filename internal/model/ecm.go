package model

import (
	"fmt"
	"math"
	"strings"
)

// ECM implements the Execution-Cache-Memory model (Stengel et al., ICS'15
// — the paper's reference [9] and the origin of the layer-condition
// analysis). It predicts single-core runtime in cycles per cache line of
// work (8 iterations for double-precision streams) as
//
//	T = max(T_OL, T_nOL + T_L1L2 + T_L2L3 + T_L3Mem)
//
// where the data-transfer terms follow from the loop's per-iteration
// traffic at each memory-hierarchy level.
type ECM struct {
	// Core terms, cycles per cache line (8 iterations).
	TOL  float64 // overlapping core time (arithmetic)
	TnOL float64 // non-overlapping core time (load/store issue)
	// Transfer terms, cycles per cache line.
	TL1L2  float64
	TL2L3  float64
	TL3Mem float64
}

// ECMMachine holds the machine inputs of the ECM model. Values are
// per-cycle transfer widths in bytes (full-duplex simplification).
type ECMMachine struct {
	FreqHz       float64
	L1L2Bytes    float64 // bytes/cycle between L1 and L2 (64 on ICX)
	L2L3Bytes    float64 // bytes/cycle between L2 and L3 (~32 on ICX)
	MemBandwidth float64 // bytes/s single-core memory bandwidth
	FlopsPerCy   float64 // DP flops per cycle
	LoadsPerCy   float64 // L1 load ports (2 on ICX)
	StoresPerCy  float64 // L1 store ports (1-2)
}

// ICXECMMachine returns ECM inputs for the Ice Lake SP testbed.
func ICXECMMachine() ECMMachine {
	return ECMMachine{
		FreqHz:       2.4e9,
		L1L2Bytes:    64,
		L2L3Bytes:    32,
		MemBandwidth: 10.5e9,
		FlopsPerCy:   16,
		LoadsPerCy:   2,
		StoresPerCy:  2,
	}
}

// NewECM builds the ECM decomposition of a loop on a machine. The loop's
// traffic is taken from the analytic model: with fulfilled layer
// conditions, RDLCF elements cross every hierarchy level per iteration;
// written elements cross all levels once (plus the write-allocate when
// not evaded).
func NewECM(m LoopModel, mach ECMMachine, waEvaded bool) ECM {
	const elemsPerCL = 8
	// Per-cache-line element transfers across each inter-level link.
	reads := float64(m.RDLCF)
	writes := float64(m.WR)
	wa := 0.0
	if !waEvaded {
		wa = float64(m.Evadable())
	}
	// Bytes per cache line of work across each link: reads come up,
	// writes go down, write-allocates come up too.
	linkBytes := (reads + writes + wa) * ElemBytes * elemsPerCL

	var e ECM
	e.TOL = float64(m.FlopsIt) * elemsPerCL / mach.FlopsPerCy
	loads := reads + float64(m.RDWR)
	e.TnOL = (loads*elemsPerCL/8)/mach.LoadsPerCy + (writes*elemsPerCL/8)/mach.StoresPerCy
	e.TL1L2 = linkBytes / mach.L1L2Bytes
	e.TL2L3 = linkBytes / mach.L2L3Bytes
	e.TL3Mem = linkBytes / (mach.MemBandwidth / mach.FreqHz)
	return e
}

// CyclesPerCL returns the ECM prediction in cycles per cache line.
func (e ECM) CyclesPerCL() float64 {
	return math.Max(e.TOL, e.TnOL+e.TL1L2+e.TL2L3+e.TL3Mem)
}

// ItersPerSecond converts the prediction to iteration throughput.
func (e ECM) ItersPerSecond(freqHz float64) float64 {
	cy := e.CyclesPerCL()
	if cy == 0 {
		return math.Inf(1)
	}
	return freqHz / cy * 8
}

// MemoryBound reports whether the memory term dominates.
func (e ECM) MemoryBound() bool {
	return e.TL3Mem > e.TOL && e.TL3Mem > e.TnOL
}

// String renders the model in the conventional ECM notation
// {TOL ‖ TnOL | TL1L2 | TL2L3 | TL3Mem} cy/CL.
func (e ECM) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "{%.1f ‖ %.1f | %.1f | %.1f | %.1f} cy/CL = %.1f cy/CL",
		e.TOL, e.TnOL, e.TL1L2, e.TL2L3, e.TL3Mem, e.CyclesPerCL())
	return b.String()
}

// ECMTable builds the ECM decomposition for all Table I loops.
func ECMTable(mach ECMMachine, waEvaded bool) map[string]ECM {
	out := make(map[string]ECM, len(Table1))
	for _, r := range Table1 {
		out[r.Name] = NewECM(r.LoopModel, mach, waEvaded)
	}
	return out
}
